#include "strings/string_sort.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "pram/parallel_for.hpp"
#include "prim/integer_sort.hpp"
#include "prim/merge.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"

namespace sfcp::strings {

StringList make_string_list(const std::vector<std::vector<u32>>& strings) {
  StringList list;
  list.offsets.push_back(0);
  for (const auto& s : strings) {
    list.data.insert(list.data.end(), s.begin(), s.end());
    list.offsets.push_back(static_cast<u32>(list.data.size()));
  }
  return list;
}

int compare_spans(std::span<const u32> a, std::span<const u32> b) {
  const std::size_t k = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < k; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

namespace {

std::vector<u32> sort_std(const StringList& list) {
  std::vector<u32> order(list.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<u32>(i);
  std::stable_sort(order.begin(), order.end(), [&](u32 x, u32 y) {
    const int c = compare_spans(list.view(x), list.view(y));
    return c != 0 ? c < 0 : x < y;
  });
  pram::charge(static_cast<u64>(
      static_cast<double>(list.total_symbols() + list.size()) *
      std::log2(static_cast<double>(list.size()) + 2.0)));
  return order;
}

// Bentley–Sedgewick 3-way radix quicksort on (string, depth) with an
// explicit work stack; equal strings tie-break by index.
std::vector<u32> sort_msd(const StringList& list) {
  const std::size_t m = list.size();
  std::vector<u32> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = static_cast<u32>(i);
  struct Job {
    std::size_t lo, hi, depth;
  };
  // Symbol at `depth` of string id, with end-of-string < every symbol.
  auto at = [&](u32 id, std::size_t depth) -> u64 {
    const auto v = list.view(id);
    return depth < v.size() ? static_cast<u64>(v[depth]) + 1 : 0;
  };
  std::vector<Job> stack;
  if (m > 1) stack.push_back({0, m, 0});
  u64 work = 0;
  while (!stack.empty()) {
    const Job job = stack.back();
    stack.pop_back();
    const std::size_t len = job.hi - job.lo;
    if (len <= 1) continue;
    if (len <= 16) {
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(job.lo),
                order.begin() + static_cast<std::ptrdiff_t>(job.hi), [&](u32 x, u32 y) {
                  const int c = compare_spans(list.view(x).subspan(std::min<std::size_t>(
                                                  job.depth, list.view(x).size())),
                                              list.view(y).subspan(std::min<std::size_t>(
                                                  job.depth, list.view(y).size())));
                  return c != 0 ? c < 0 : x < y;
                });
      work += len * 8;
      continue;
    }
    const u64 pivot = at(order[job.lo + len / 2], job.depth);
    std::size_t lt = job.lo, i = job.lo, gt = job.hi;
    while (i < gt) {
      const u64 c = at(order[i], job.depth);
      if (c < pivot) {
        std::swap(order[lt++], order[i++]);
      } else if (c > pivot) {
        std::swap(order[i], order[--gt]);
      } else {
        ++i;
      }
    }
    work += len;
    stack.push_back({job.lo, lt, job.depth});
    stack.push_back({gt, job.hi, job.depth});
    if (pivot != 0) {
      stack.push_back({lt, gt, job.depth + 1});
    } else {
      // All strings in [lt, gt) ended; order them by index for determinism.
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(lt),
                order.begin() + static_cast<std::ptrdiff_t>(gt));
    }
  }
  pram::charge(work);
  return order;
}

// --- the paper's parallel algorithm -------------------------------------

struct Level {
  std::vector<u32> data;     // current symbols (dense ranks after level 0)
  std::vector<u32> offsets;  // CSR, size m+1
  std::vector<u32> ids;      // original string index of each current string
};

std::span<const u32> level_view(const Level& lv, std::size_t i) {
  return std::span<const u32>(lv.data).subspan(lv.offsets[i], lv.offsets[i + 1] - lv.offsets[i]);
}

// Parallel comparison sort used on the O(n/log n) residue (Cole-mergesort
// substitute, see DESIGN.md): merge-path merge sort with O(1)-ish span
// comparisons on the reduced strings.
std::vector<u32> base_sort(const Level& lv) {
  std::vector<u32> idx(lv.ids.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<u32>(i);
  prim::parallel_merge_sort(std::span<u32>(idx), [&](u32 x, u32 y) {
    const int c = compare_spans(level_view(lv, x), level_view(lv, y));
    return c != 0 ? c < 0 : lv.ids[x] < lv.ids[y];
  });
  std::vector<u32> sorted_ids(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) sorted_ids[i] = lv.ids[idx[i]];
  pram::charge(lv.data.size() + lv.ids.size());
  return sorted_ids;
}

std::vector<u32> sort_parallel_rec(Level lv, std::size_t residue_threshold) {
  const std::size_t m = lv.ids.size();
  if (m <= 1) return lv.ids;
  if (lv.data.size() <= residue_threshold) return base_sort(lv);

  // Step 1: split unit-length strings from longer ones.
  std::vector<u32> unit_idx, long_idx;
  for (std::size_t i = 0; i < m; ++i) {
    (lv.offsets[i + 1] - lv.offsets[i] == 1 ? unit_idx : long_idx).push_back(static_cast<u32>(i));
  }
  pram::charge(m);

  // Sort units by (symbol, original id) with one integer-sort pass.
  std::vector<u32> sorted_unit_ids;
  if (!unit_idx.empty()) {
    std::vector<u64> keys(unit_idx.size());
    pram::parallel_for(0, unit_idx.size(), [&](std::size_t t) {
      keys[t] = pack_pair(lv.data[lv.offsets[unit_idx[t]]], lv.ids[unit_idx[t]]);
    });
    const std::vector<u32> ord = prim::sort_order_by_key(keys);
    sorted_unit_ids.resize(unit_idx.size());
    pram::parallel_for(0, ord.size(), [&](std::size_t t) {
      sorted_unit_ids[t] = lv.ids[unit_idx[ord[t]]];
    });
  }
  if (long_idx.empty()) return sorted_unit_ids;

  // Remember each long string's first symbol for the final merge, before
  // the symbols are renamed away.
  std::vector<u32> long_first(long_idx.size());
  for (std::size_t t = 0; t < long_idx.size(); ++t) {
    long_first[t] = lv.data[lv.offsets[long_idx[t]]];
  }
  // Step 2: fold each long string into ceil(len/2) ordered pairs; the blank
  // symbol (0 after shifting all real symbols up by 1) precedes everything.
  std::vector<u32> pair_count(long_idx.size());
  for (std::size_t t = 0; t < long_idx.size(); ++t) {
    const u32 len = lv.offsets[long_idx[t] + 1] - lv.offsets[long_idx[t]];
    pair_count[t] = (len + 1) / 2;
  }
  std::vector<u32> new_off(long_idx.size() + 1);
  const u32 total_pairs = prim::exclusive_scan<u32>(pair_count, std::span<u32>(new_off).first(long_idx.size()));
  new_off[long_idx.size()] = total_pairs;
  std::vector<u32> pa(total_pairs), pb(total_pairs);
  pram::parallel_for(0, long_idx.size(), [&](std::size_t t) {
    const u32 beg = lv.offsets[long_idx[t]];
    const u32 len = lv.offsets[long_idx[t] + 1] - beg;
    const u32 base = new_off[t];
    for (u32 q = 0; 2 * q < len; ++q) {
      pa[base + q] = lv.data[beg + 2 * q] + 1;
      pb[base + q] = (2 * q + 1 < len) ? lv.data[beg + 2 * q + 1] + 1 : 0;
    }
  });

  // Step 3: order-preserving dense ranks of the pairs.
  auto ranks = prim::rename_pairs_sorted(pa, pb);

  // Step 4: recurse on the reduced list.
  Level next;
  next.data = std::move(ranks.labels);
  next.offsets = std::move(new_off);
  next.ids.resize(long_idx.size());
  for (std::size_t t = 0; t < long_idx.size(); ++t) next.ids[t] = lv.ids[long_idx[t]];
  std::vector<u32> sorted_long_ids = sort_parallel_rec(std::move(next), residue_threshold);

  // Merge: units and longs are each sorted; a unit with symbol c precedes
  // every long string starting with c (it is a proper prefix).  Look up the
  // first symbol of a string by its id via a sorted (id, symbol) table.
  std::vector<std::pair<u32, u32>> id_first(long_idx.size());
  for (std::size_t t = 0; t < long_idx.size(); ++t) {
    id_first[t] = {lv.ids[long_idx[t]], long_first[t]};
  }
  std::sort(id_first.begin(), id_first.end());
  auto first_sym_of = [&](u32 id) {
    auto it = std::lower_bound(id_first.begin(), id_first.end(), std::pair<u32, u32>{id, 0});
    assert(it != id_first.end() && it->first == id);
    return it->second;
  };
  // Unit symbols in sorted order: recompute similarly.
  std::vector<std::pair<u32, u32>> unit_id_sym(unit_idx.size());
  for (std::size_t t = 0; t < unit_idx.size(); ++t) {
    unit_id_sym[t] = {lv.ids[unit_idx[t]], lv.data[lv.offsets[unit_idx[t]]]};
  }
  std::sort(unit_id_sym.begin(), unit_id_sym.end());
  auto unit_sym_of = [&](u32 id) {
    auto it = std::lower_bound(unit_id_sym.begin(), unit_id_sym.end(), std::pair<u32, u32>{id, 0});
    assert(it != unit_id_sym.end() && it->first == id);
    return it->second;
  };

  std::vector<u32> out;
  out.reserve(m);
  std::size_t ui = 0, li = 0;
  while (ui < sorted_unit_ids.size() && li < sorted_long_ids.size()) {
    const u32 us = unit_sym_of(sorted_unit_ids[ui]);
    const u32 ls = first_sym_of(sorted_long_ids[li]);
    if (us <= ls) {
      out.push_back(sorted_unit_ids[ui++]);
    } else {
      out.push_back(sorted_long_ids[li++]);
    }
  }
  while (ui < sorted_unit_ids.size()) out.push_back(sorted_unit_ids[ui++]);
  while (li < sorted_long_ids.size()) out.push_back(sorted_long_ids[li++]);
  pram::charge(m);
  return out;
}

std::vector<u32> sort_parallel(const StringList& list) {
  Level lv;
  lv.data = list.data;
  lv.offsets = list.offsets;
  if (lv.offsets.empty()) lv.offsets.push_back(0);
  lv.ids.resize(list.size());
  for (std::size_t i = 0; i < lv.ids.size(); ++i) lv.ids[i] = static_cast<u32>(i);
  const double n0 = static_cast<double>(std::max<std::size_t>(2, list.total_symbols()));
  const std::size_t residue =
      std::max<std::size_t>(64, static_cast<std::size_t>(n0 / std::log2(n0)));
  return sort_parallel_rec(std::move(lv), residue);
}

}  // namespace

std::vector<u32> sort_strings(const StringList& list, StringSortStrategy strategy) {
  switch (strategy) {
    case StringSortStrategy::StdSort:
      return sort_std(list);
    case StringSortStrategy::MsdRadix:
      return sort_msd(list);
    case StringSortStrategy::Parallel:
      return sort_parallel(list);
  }
  return sort_std(list);
}

}  // namespace sfcp::strings
