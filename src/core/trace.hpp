#pragma once
// Instrumented pipeline: runs core::solve stage by stage, recording
// per-stage operation counts, rounds and wall-clock.  Powers the E1/E2
// tables' breakdowns and the examples' "explain" output.

#include <string>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

struct StageStats {
  std::string name;
  u64 ops = 0;
  u64 rounds = 0;
  double millis = 0.0;
};

struct TracedResult {
  Result result;
  std::vector<StageStats> stages;  ///< cycle detect / structure / labelling / trees / canonical

  u64 total_ops() const;
  std::string to_string() const;
};

/// Identical output to core::solve(inst, opt), with per-stage accounting.
TracedResult solve_traced(const graph::Instance& inst, const Options& opt = Options::parallel());

}  // namespace sfcp::core
