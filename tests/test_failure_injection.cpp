// Failure injection and degenerate-input sweeps: every public entry point
// must either handle the edge case or reject it with a typed exception —
// never crash or return garbage.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/moore.hpp"
#include "core/multi_function.hpp"
#include "core/partition_algebra.hpp"
#include "core/verify.hpp"
#include "graph/components.hpp"
#include "graph/orbits.hpp"
#include "strings/matching.hpp"
#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "strings/string_sort.hpp"
#include "strings/suffix_array.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(FailureInjection, SolversRejectMalformedInstances) {
  graph::Instance bad_range{{9}, {0}};
  graph::Instance bad_size{{0, 1}, {0}};
  for (const auto* inst : {&bad_range, &bad_size}) {
    EXPECT_THROW(core::solve(*inst), std::invalid_argument);
    EXPECT_THROW(core::solve_naive_refinement(*inst), std::invalid_argument);
    EXPECT_THROW(core::solve_hopcroft(*inst), std::invalid_argument);
    EXPECT_THROW(core::solve_label_doubling(*inst), std::invalid_argument);
  }
}

TEST(FailureInjection, EmptyInputsEverywhere) {
  graph::Instance empty;
  EXPECT_EQ(core::solve(empty).num_blocks, 0u);
  EXPECT_EQ(core::solve_hopcroft(empty).num_blocks, 0u);
  EXPECT_EQ(graph::connected_components(empty.f).count(), 0u);
  std::vector<u32> s;
  EXPECT_EQ(strings::smallest_period_seq(s), 0u);
  EXPECT_EQ(strings::minimal_starting_point(s, strings::MspStrategy::Efficient), 0u);
  strings::StringList list;
  EXPECT_TRUE(strings::sort_strings(list).empty());
}

class DegenerateInstances : public ::testing::TestWithParam<int> {};

TEST_P(DegenerateInstances, SolveHandlesAllShapes) {
  graph::Instance inst;
  switch (GetParam()) {
    case 0:  // constant function onto node 0
      inst.f.assign(64, 0);
      inst.b.assign(64, 7);
      break;
    case 1:  // identity
      inst.f.resize(64);
      inst.b.assign(64, 1);
      for (u32 i = 0; i < 64; ++i) inst.f[i] = i;
      break;
    case 2: {  // one giant cycle, all equal labels
      inst.f.resize(64);
      inst.b.assign(64, 3);
      for (u32 i = 0; i < 64; ++i) inst.f[i] = (i + 1) % 64;
      break;
    }
    case 3: {  // one giant cycle, alternating labels (period 2)
      inst.f.resize(64);
      inst.b.resize(64);
      for (u32 i = 0; i < 64; ++i) {
        inst.f[i] = (i + 1) % 64;
        inst.b[i] = i % 2;
      }
      break;
    }
    case 4: {  // two nodes swapping
      inst.f = {1, 0};
      inst.b = {5, 5};
      break;
    }
    case 5: {  // maximal label values (u32 extremes)
      inst.f = {1, 0, 0};
      inst.b = {0xFFFFFFFEu, 0xFFFFFFFEu, 0x7FFFFFFFu};
      break;
    }
    case 6: {  // deep pure path into a self-loop
      const std::size_t n = 1000;
      inst.f.resize(n);
      inst.b.assign(n, 1);
      inst.f[0] = 0;
      for (u32 i = 1; i < n; ++i) inst.f[i] = i - 1;
      break;
    }
    default: {  // single node
      inst.f = {0};
      inst.b = {42};
      break;
    }
  }
  const auto r = core::solve(inst);
  const auto report = core::verify_solution(inst, r.q);
  EXPECT_TRUE(report.ok()) << "shape " << GetParam() << ": " << report.to_string();
  // Sequential preset must agree bit-for-bit.
  EXPECT_EQ(core::solve(inst, core::Options::sequential()).q, r.q);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DegenerateInstances, ::testing::Range(0, 8));

TEST(FailureInjection, DegenerateCyclePeriods) {
  // Cycle labels with period exactly len, len/2, 1 — the period reduction
  // path in cycle labelling.
  for (const u32 period : {1u, 2u, 4u, 8u}) {
    graph::Instance inst;
    const u32 len = 8;
    inst.f.resize(len);
    inst.b.resize(len);
    for (u32 i = 0; i < len; ++i) {
      inst.f[i] = (i + 1) % len;
      inst.b[i] = i % period;
    }
    const auto r = core::solve(inst);
    EXPECT_EQ(r.num_blocks, period) << "period " << period;
  }
}

TEST(FailureInjection, MultiFunctionZeroLetters) {
  core::MultiInstance inst;
  inst.b = {0};
  EXPECT_THROW(core::solve_multi_moore(inst), std::invalid_argument);
  EXPECT_THROW(core::solve_multi_hopcroft(inst), std::invalid_argument);
}

TEST(FailureInjection, StringsWithExtremeSymbols) {
  std::vector<u32> s{0xFFFFFFFEu, 0, 0xFFFFFFFEu, 1};
  EXPECT_EQ(strings::msp_booth(s), strings::msp_brute(s));
  EXPECT_EQ(strings::msp_efficient(s), strings::msp_brute(s));
  EXPECT_EQ(strings::msp_simple(s), strings::msp_brute(s));
}

TEST(FailureInjection, SingleStringSortAllStrategies) {
  strings::StringList list;
  list.push_back(std::vector<u32>{3, 1, 2});
  for (auto strat : {strings::StringSortStrategy::StdSort, strings::StringSortStrategy::MsdRadix,
                     strings::StringSortStrategy::Parallel}) {
    EXPECT_EQ(strings::sort_strings(list, strat).size(), 1u);
  }
}

TEST(FailureInjection, NewModulesEmptyInputs) {
  // Suffix array / LCP / matching / necklace / orbits on empty input.
  std::vector<u32> empty;
  EXPECT_TRUE(strings::build_suffix_array(empty).sa.empty());
  EXPECT_EQ(strings::count_distinct_substrings(empty), 0u);
  EXPECT_EQ(strings::find_occurrences(empty, empty, strings::MatchStrategy::Parallel),
            (std::vector<u32>{0}));
  EXPECT_TRUE(strings::canonical_necklace(empty).empty());
  EXPECT_EQ(strings::necklace_classes(strings::StringList{}).count, 0u);
  EXPECT_EQ(graph::orbit_stats(empty).num_cycles, 0u);
  EXPECT_TRUE(graph::compute_orbits(empty).tail.empty());
}

TEST(FailureInjection, MooreRejectsMalformed) {
  core::MooreMachine bad;
  bad.next = {3};
  bad.output = {0};
  EXPECT_THROW(core::minimize(bad), std::invalid_argument);
  EXPECT_THROW(core::isomorphic(bad, bad), std::invalid_argument);
  core::MooreMachine ok;
  ok.next = {0};
  ok.output = {0};
  EXPECT_THROW(core::states_equivalent(ok, 0, 9), std::out_of_range);
}

TEST(FailureInjection, OrbitsOnExtremeShapes) {
  // Self-loop forest: every node is its own cycle.
  std::vector<u32> loops(256);
  for (u32 i = 0; i < 256; ++i) loops[i] = i;
  const auto orb = graph::compute_orbits(loops);
  for (u32 i = 0; i < 256; ++i) {
    EXPECT_EQ(orb.tail[i], 0u);
    EXPECT_EQ(orb.cycle_len[i], 1u);
  }
  // All nodes funnel into one self-loop.
  std::vector<u32> funnel(256, 0);
  const auto st = graph::orbit_stats(funnel);
  EXPECT_EQ(st.num_cycles, 1u);
  EXPECT_EQ(st.max_tail, 1u);
}

TEST(FailureInjection, IterationTableZeroAndIdentity) {
  std::vector<u32> f{1, 2, 0};
  graph::IterationTable t(f, 1);
  EXPECT_EQ(t.apply(0, 0), 0u);  // f^0 = identity
  EXPECT_EQ(t.apply(0, 1), 1u);
  EXPECT_THROW(t.apply(0, 2), std::out_of_range);
}

TEST(FailureInjection, MatchingSingleSymbolAlphabet) {
  // Unary strings exercise the maximal-overlap paths of every matcher.
  std::vector<u32> text(100, 1), pattern(7, 1);
  for (auto strat : {strings::MatchStrategy::Kmp, strings::MatchStrategy::Z,
                     strings::MatchStrategy::Parallel}) {
    const auto hits = strings::find_occurrences(text, pattern, strat);
    ASSERT_EQ(hits.size(), 94u);
    for (u32 i = 0; i < 94; ++i) EXPECT_EQ(hits[i], i);
  }
}

TEST(FailureInjection, PartitionAlgebraExtremeLabels) {
  // Arbitrary u32 labels (not dense) must be handled by join via remap.
  std::vector<u32> a{0xFFFFFFFEu, 7, 0xFFFFFFFEu};
  std::vector<u32> b{1, 1, 2};
  const auto j = core::partition_join(a, b);
  // a links {0,2}; b links {0,1}: everything joins.
  EXPECT_EQ(j, (std::vector<u32>{0, 0, 0}));
  const auto m = core::partition_meet(a, b);
  EXPECT_EQ(core::block_count(m), 3u);
}

}  // namespace
}  // namespace sfcp
