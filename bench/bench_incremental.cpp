// Incremental repair vs. full recompute under edit streams, across
// edit-locality regimes.  Each measured unit is "apply K edits, partition
// current after every edit" — the serving-loop contract.  On localized
// streams the incremental engine's per-edit cost is the dirty-region size
// (often 1 node); the recompute baseline pays a full solve per edit.
#include <benchmark/benchmark.h>

#include "core/solver.hpp"
#include "inc/incremental_solver.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

constexpr std::size_t kEditsPerRound = 64;

struct Workload {
  graph::Instance inst;
  std::vector<inc::Edit> stream;
};

Workload make_workload(std::size_t n, util::EditMix mix) {
  util::Rng rng(n * 31 + static_cast<std::size_t>(mix));
  Workload w;
  w.inst = util::random_function(n, 4, rng);
  util::Rng stream_rng(n * 37 + static_cast<std::size_t>(mix));
  w.stream = util::random_edit_stream(w.inst, kEditsPerRound, mix, 6, stream_rng);
  return w;
}

void BM_IncrementalEdits(benchmark::State& state, util::EditMix mix) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, mix);
  for (auto _ : state) {
    state.PauseTiming();
    inc::IncrementalSolver solver(w.inst);
    state.ResumeTiming();
    for (const auto& e : w.stream) {
      if (e.kind == inc::Edit::Kind::SetF) {
        solver.set_f(e.node, e.value);
      } else {
        solver.set_b(e.node, e.value);
      }
      benchmark::DoNotOptimize(solver.num_blocks());
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kEditsPerRound));
}

void BM_RecomputeEdits(benchmark::State& state, util::EditMix mix) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, mix);
  for (auto _ : state) {
    state.PauseTiming();
    graph::Instance work = w.inst;
    core::Solver solver;  // warm workspaces across the per-edit solves
    benchmark::DoNotOptimize(solver.solve(work).num_blocks);
    state.ResumeTiming();
    for (const auto& e : w.stream) {
      if (e.kind == inc::Edit::Kind::SetF) {
        work.f[e.node] = e.value;
      } else {
        work.b[e.node] = e.value;
      }
      benchmark::DoNotOptimize(solver.solve(work).num_blocks);
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kEditsPerRound));
}

const int kRegistered = [] {
  const std::pair<const char*, util::EditMix> mixes[] = {
      {"localized", util::EditMix::LocalizedHotspot},
      {"uniform", util::EditMix::Uniform},
      {"churn", util::EditMix::CycleChurn},
  };
  for (const auto& [name, mix] : mixes) {
    benchmark::RegisterBenchmark((std::string("BM_IncrementalEdits/") + name).c_str(),
                                 BM_IncrementalEdits, mix)
        ->Arg(1 << 14)
        ->Arg(1 << 17)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((std::string("BM_RecomputeEdits/") + name).c_str(),
                                 BM_RecomputeEdits, mix)
        ->Arg(1 << 14)
        ->Arg(1 << 17)
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

}  // namespace
