#pragma once
// Fixed-width table printer for paper-style benchmark output
// (the table_* binaries print the rows recorded in EXPERIMENTS.md).

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sfcp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths_[i] = headers_[i].size();
  }

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    for (std::size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], row[i].size());
    }
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& row : rows_) print_row(os, row);
    os.flush();
  }

 private:
  template <typename T>
  static std::string to_cell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << v;
      return os.str();
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  void print_row(std::ostream& os, const std::vector<std::string>& row) const {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << " " << std::setw(static_cast<int>(widths_[i])) << row[i] << " ";
      if (i + 1 < row.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sfcp::util
