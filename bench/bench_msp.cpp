// E3 — minimal starting point: Booth / Duval sequential references vs the
// paper's simple (O(n log n) ops) and efficient (O(n log log n) ops)
// parallel algorithms (Lemma 3.7).
#include <benchmark/benchmark.h>

#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

std::vector<u32> input_for(std::size_t n, int kind) {
  util::Rng rng(n * 10 + kind);
  switch (kind) {
    case 0: return util::random_string(n, 1u << 16, rng);   // large alphabet
    case 1: return util::random_string(n, 2, rng);          // binary
    default: return util::runs_string(n, 3, 32, rng);       // adversarial runs
  }
}

template <strings::MspStrategy S>
void BM_Msp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  const auto s = input_for(n, kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::minimal_starting_point(s, S));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(kind == 0 ? "large_sigma" : kind == 1 ? "binary" : "runs");
}

BENCHMARK(BM_Msp<strings::MspStrategy::Booth>)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {0, 1, 2}});
BENCHMARK(BM_Msp<strings::MspStrategy::Duval>)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {0, 1, 2}});
BENCHMARK(BM_Msp<strings::MspStrategy::Simple>)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {0, 1, 2}});
BENCHMARK(BM_Msp<strings::MspStrategy::Efficient>)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {0, 1, 2}});

void BM_PeriodSeq(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const auto s = util::periodic_string(n, n / 8, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::smallest_period_seq(s));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_PeriodSeq)->Range(1 << 12, 1 << 20);

void BM_PeriodParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const auto s = util::periodic_string(n, n / 8, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::smallest_period_parallel(s));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_PeriodParallel)->Range(1 << 12, 1 << 18);

}  // namespace
