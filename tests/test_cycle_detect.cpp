// Unit tests for cycle-node detection, including the paper's §5 Euler-tour
// method, cross-validated against the sequential reference.
#include <gtest/gtest.h>

#include "graph/cycle_detect.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::CycleDetectStrategy;
using graph::find_cycle_nodes;

const auto kAll = {CycleDetectStrategy::Sequential, CycleDetectStrategy::FunctionPowers,
                   CycleDetectStrategy::EulerTour};

TEST(CycleDetect, SelfLoop) {
  std::vector<u32> f{0};
  for (auto strat : kAll) {
    EXPECT_EQ(find_cycle_nodes(f, strat), (std::vector<u8>{1})) << static_cast<int>(strat);
  }
}

TEST(CycleDetect, SelfLoopWithTail) {
  std::vector<u32> f{0, 0, 1};
  for (auto strat : kAll) {
    EXPECT_EQ(find_cycle_nodes(f, strat), (std::vector<u8>{1, 0, 0}));
  }
}

TEST(CycleDetect, TwoCycle) {
  std::vector<u32> f{1, 0};
  for (auto strat : kAll) {
    EXPECT_EQ(find_cycle_nodes(f, strat), (std::vector<u8>{1, 1}));
  }
}

TEST(CycleDetect, PaperFig1) {
  const auto inst = util::paper_example_2_2();
  for (auto strat : kAll) {
    const auto flags = find_cycle_nodes(inst.f, strat);
    // Fig. 1: all 16 nodes lie on the two cycles.
    for (u32 x = 0; x < 16; ++x) EXPECT_EQ(flags[x], 1) << "node " << x;
  }
}

TEST(CycleDetect, StarIntoSelfLoop) {
  // Many leaves pointing at one self-loop node (high indegree).
  const std::size_t n = 1000;
  std::vector<u32> f(n, 0);
  for (auto strat : kAll) {
    const auto flags = find_cycle_nodes(f, strat);
    EXPECT_EQ(flags[0], 1);
    for (u32 x = 1; x < n; ++x) EXPECT_EQ(flags[x], 0);
  }
}

class CycleDetectSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CycleDetectSweep, AllStrategiesMatchSequential) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 13);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(n, 3, rng);
    const auto ref = find_cycle_nodes(inst.f, CycleDetectStrategy::Sequential);
    EXPECT_EQ(find_cycle_nodes(inst.f, CycleDetectStrategy::FunctionPowers), ref)
        << "powers n=" << n << " iter=" << iter;
    EXPECT_EQ(find_cycle_nodes(inst.f, CycleDetectStrategy::EulerTour), ref)
        << "euler n=" << n << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CycleDetectSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 17, 100, 512, 2047));

TEST(CycleDetect, EulerOnShapedInstances) {
  util::Rng rng(601);
  const auto shapes = {
      util::long_tail(3000, 5, 3, rng),
      util::bushy(3000, 7, 3, 3, rng),
      util::random_permutation(3000, 3, rng),
      util::mergeable(3000, 4, rng),
  };
  for (const auto& inst : shapes) {
    const auto ref = find_cycle_nodes(inst.f, CycleDetectStrategy::Sequential);
    EXPECT_EQ(find_cycle_nodes(inst.f, CycleDetectStrategy::EulerTour), ref);
  }
}

TEST(CycleDetect, LargeRandomAgreement) {
  util::Rng rng(607);
  const auto inst = util::random_function(100000, 5, rng);
  const auto ref = find_cycle_nodes(inst.f, CycleDetectStrategy::Sequential);
  EXPECT_EQ(find_cycle_nodes(inst.f, CycleDetectStrategy::FunctionPowers), ref);
  EXPECT_EQ(find_cycle_nodes(inst.f, CycleDetectStrategy::EulerTour), ref);
}

}  // namespace
}  // namespace sfcp
