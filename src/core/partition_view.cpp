#include "core/partition_view.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "pram/metrics.hpp"
#include "prim/rename.hpp"

namespace sfcp::core {

namespace {
// A chain flattens into a fresh O(n) root once the stacked patches reach
// n/4 (amortized O(1) per patched node).  Depth alone never justifies an
// O(n) pass: when only the depth bound trips, the chain is collapsed into a
// single merged patch on its root — O(cumulative patch) — so the O(dirty)
// view cost survives arbitrarily long localized streams.
constexpr u32 kMaxChainDepth = 128;
}  // namespace

struct PartitionView::Rep {
  std::shared_ptr<const Rep> base;  ///< null for a root
  std::vector<u32> full;            ///< root only: raw label per node
  std::vector<u32> patch_nodes;     ///< non-root: patched nodes, ascending
  std::vector<u32> patch_labels;    ///< raw labels parallel to patch_nodes

  std::size_t n = 0;
  u32 raw_bound = 0;  ///< all raw labels (incl. every ancestor's) < raw_bound
  u32 num_classes = 0;
  u64 epoch = 0;
  u32 depth = 0;              ///< chain length above the root
  std::size_t cum_patch = 0;  ///< patched entries across this rep + ancestors
  bool root_canonical = false;  ///< root only: full is already canonical
  ViewCounters counters;

  mutable std::once_flag canon_once;
  mutable std::vector<u32> canon;       ///< canonical labels (unused when root_canonical)
  mutable std::vector<u32> class_size;  ///< per canonical class

  mutable std::once_flag csr_once;
  mutable std::vector<u32> csr_offsets;  ///< num_classes + 1
  mutable std::vector<u32> csr_members;  ///< nodes grouped by class, ascending

  u32 raw_label(u32 x) const {
    for (const Rep* r = this; r; r = r->base.get()) {
      if (!r->base) return r->full[x];
      const auto it = std::lower_bound(r->patch_nodes.begin(), r->patch_nodes.end(), x);
      if (it != r->patch_nodes.end() && *it == x) {
        return r->patch_labels[static_cast<std::size_t>(it - r->patch_nodes.begin())];
      }
    }
    return 0;  // unreachable: every chain ends in a root
  }

  /// Raw labels of all nodes: the root's array with each generation's patch
  /// applied oldest-first.  O(n + total patches).
  void resolve_raw_into(std::vector<u32>& out) const {
    std::vector<const Rep*> chain;
    for (const Rep* r = this; r; r = r->base.get()) chain.push_back(r);
    out = chain.back()->full;
    for (auto it = chain.rbegin() + 1; it != chain.rend(); ++it) {
      const Rep* r = *it;
      for (std::size_t i = 0; i < r->patch_nodes.size(); ++i) {
        out[r->patch_nodes[i]] = r->patch_labels[i];
      }
    }
  }

  void ensure_canonical() const {
    std::call_once(canon_once, [this] {
      class_size.assign(num_classes, 0);
      if (root_canonical) {
        for (u32 l : full) ++class_size[l];
        return;
      }
      resolve_raw_into(canon);
      // Dense first-occurrence remap over the raw label space.
      std::vector<u32> remap(raw_bound, kNone);
      u32 next = 0;
      for (u32& l : canon) {
        u32& slot = remap[l];
        if (slot == kNone) slot = next++;
        l = slot;
        ++class_size[l];
      }
      pram::charge(n);
    });
  }

  std::span<const u32> canonical_span() const {
    ensure_canonical();
    return root_canonical ? std::span<const u32>(full) : std::span<const u32>(canon);
  }

  void ensure_csr() const {
    std::call_once(csr_once, [this] {
      const std::span<const u32> q = canonical_span();
      csr_offsets.assign(num_classes + 1, 0);
      for (u32 l : q) ++csr_offsets[l + 1];
      std::partial_sum(csr_offsets.begin(), csr_offsets.end(), csr_offsets.begin());
      csr_members.resize(n);
      std::vector<u32> cursor(csr_offsets.begin(), csr_offsets.end() - 1);
      for (u32 v = 0; v < static_cast<u32>(n); ++v) csr_members[cursor[q[v]]++] = v;
      pram::charge(2 * n);
    });
  }
};

PartitionView PartitionView::from_canonical(std::vector<u32> q, u32 num_classes, u64 epoch,
                                            ViewCounters counters) {
  auto rep = std::make_shared<Rep>();
  rep->n = q.size();
  rep->full = std::move(q);
  rep->raw_bound = num_classes;
  rep->num_classes = num_classes;
  rep->epoch = epoch;
  rep->root_canonical = true;
  rep->counters = counters;
  return PartitionView(std::move(rep));
}

PartitionView PartitionView::from_labels(std::span<const u32> labels, u64 epoch,
                                         ViewCounters counters) {
  auto canon = prim::canonicalize_labels(labels);
  return from_canonical(std::move(canon.labels), canon.num_classes, epoch, counters);
}

PartitionView PartitionView::from_raw(std::vector<u32> raw, u32 raw_bound, u32 num_classes,
                                      u64 epoch, ViewCounters counters) {
  auto rep = std::make_shared<Rep>();
  rep->n = raw.size();
  rep->full = std::move(raw);
  rep->raw_bound = raw_bound;
  rep->num_classes = num_classes;
  rep->epoch = epoch;
  rep->counters = counters;
  pram::charge_view(false, rep->n);
  return PartitionView(std::move(rep));
}

PartitionView PartitionView::patched(const PartitionView& base, std::vector<u32> nodes,
                                     std::vector<u32> raw_labels, u32 raw_bound,
                                     u32 num_classes, u64 epoch, ViewCounters counters) {
  if (!base.rep_) {
    throw std::invalid_argument("PartitionView::patched: base view is empty");
  }
  if (nodes.size() != raw_labels.size()) {
    throw std::invalid_argument("PartitionView::patched: nodes/labels size mismatch");
  }
  const Rep& b = *base.rep_;
  const std::size_t n = b.n;

  if ((b.cum_patch + nodes.size()) * 4 > n) {
    // Flatten: materialize the base's raw labels once and start a new root.
    // Amortized O(1) per patched node (a flatten needs >= n/4 of them).
    std::vector<u32> raw;
    b.resolve_raw_into(raw);
    for (std::size_t i = 0; i < nodes.size(); ++i) raw[nodes[i]] = raw_labels[i];
    pram::charge(n);
    return from_raw(std::move(raw), raw_bound, num_classes, epoch, counters);
  }

  std::shared_ptr<const Rep> parent = base.rep_;
  if (b.depth + 1 >= kMaxChainDepth) {
    // Collapse: merge every patch in the chain (oldest first, newest wins)
    // plus this delta into one patch directly on the root — O(cum_patch),
    // NOT O(n) — restoring constant lookup depth without breaking the
    // O(dirty) view-cost contract on long localized streams.
    std::vector<const Rep*> chain;
    for (const Rep* r = &b; r->base; r = r->base.get()) chain.push_back(r);
    std::unordered_map<u32, u32> merged;
    merged.reserve(b.cum_patch + nodes.size());
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Rep* r = *it;
      for (std::size_t i = 0; i < r->patch_nodes.size(); ++i) {
        merged[r->patch_nodes[i]] = r->patch_labels[i];
      }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) merged[nodes[i]] = raw_labels[i];
    nodes.clear();
    raw_labels.clear();
    for (const auto& [node, label] : merged) {
      nodes.push_back(node);
      raw_labels.push_back(label);
    }
    parent = base.rep_;
    while (parent->base) parent = parent->base;
  }

  // Sort the delta by node so lookups can binary-search it.
  std::vector<std::size_t> order(nodes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t c) { return nodes[a] < nodes[c]; });
  auto rep = std::make_shared<Rep>();
  rep->patch_nodes.reserve(nodes.size());
  rep->patch_labels.reserve(nodes.size());
  for (std::size_t i : order) {
    rep->patch_nodes.push_back(nodes[i]);
    rep->patch_labels.push_back(raw_labels[i]);
  }
  rep->base = parent;
  rep->n = n;
  rep->raw_bound = raw_bound;
  rep->num_classes = num_classes;
  rep->epoch = epoch;
  rep->depth = parent->depth + 1;
  rep->cum_patch = parent->cum_patch + rep->patch_nodes.size();
  rep->counters = counters;
  pram::charge_view(true, rep->patch_nodes.size());
  return PartitionView(std::move(rep));
}

PartitionView PartitionView::patched_from_delta(const PartitionView& base,
                                                std::span<const u32> nodes,
                                                std::span<const u32> current_labels,
                                                u32 raw_bound, u32 num_classes, u64 epoch,
                                                ViewCounters counters) {
  std::vector<u32> nv(nodes.begin(), nodes.end());
  std::vector<u32> lv;
  lv.reserve(nodes.size());
  for (const u32 v : nodes) {
    if (v >= current_labels.size()) {
      throw std::invalid_argument("PartitionView::patched_from_delta: delta node " +
                                  std::to_string(v) + " out of range (n = " +
                                  std::to_string(current_labels.size()) + ")");
    }
    lv.push_back(current_labels[v]);
  }
  return patched(base, std::move(nv), std::move(lv), raw_bound, num_classes, epoch, counters);
}

std::size_t PartitionView::size() const noexcept { return rep_ ? rep_->n : 0; }

u32 PartitionView::num_classes() const noexcept { return rep_ ? rep_->num_classes : 0; }

u64 PartitionView::epoch() const noexcept { return rep_ ? rep_->epoch : 0; }

const ViewCounters& PartitionView::counters() const noexcept {
  static const ViewCounters kEmpty{};
  return rep_ ? rep_->counters : kEmpty;
}

u32 PartitionView::class_of(u32 x) const {
  if (x >= size()) {
    throw std::out_of_range("PartitionView::class_of: node " + std::to_string(x) +
                            " out of range (n = " + std::to_string(size()) + ")");
  }
  return rep_->canonical_span()[x];
}

bool PartitionView::same_class(u32 x, u32 y) const {
  if (x >= size() || y >= size()) {
    throw std::out_of_range("PartitionView::same_class: node out of range (n = " +
                            std::to_string(size()) + ")");
  }
  return rep_->raw_label(x) == rep_->raw_label(y);
}

std::span<const u32> PartitionView::class_members(u32 c) const {
  if (c >= num_classes()) {
    throw std::out_of_range("PartitionView::class_members: class " + std::to_string(c) +
                            " out of range (num_classes = " + std::to_string(num_classes()) +
                            ")");
  }
  rep_->ensure_csr();
  return std::span<const u32>(rep_->csr_members)
      .subspan(rep_->csr_offsets[c], rep_->csr_offsets[c + 1] - rep_->csr_offsets[c]);
}

u32 PartitionView::class_size(u32 c) const {
  if (c >= num_classes()) {
    throw std::out_of_range("PartitionView::class_size: class " + std::to_string(c) +
                            " out of range (num_classes = " + std::to_string(num_classes()) +
                            ")");
  }
  rep_->ensure_canonical();
  return rep_->class_size[c];
}

std::span<const u32> PartitionView::labels() const {
  if (!rep_) return {};
  return rep_->canonical_span();
}

}  // namespace sfcp::core
