#include "graph/euler_tour.hpp"

#include <cassert>

#include "graph/rooted_forest.hpp"
#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"

namespace sfcp::graph {

EulerTour build_euler_tour(const RootedForest& forest, prim::ListRankStrategy ranking) {
  const std::size_t n = forest.size();
  EulerTour tour;
  tour.pos.assign(2 * n, kNone);
  // Successor of each arc in the chained tour.
  std::vector<u32> succ(2 * n, kNone);
  std::vector<u8> used(2 * n, 0);
  pram::parallel_for(0, n, [&](std::size_t xi) {
    const u32 x = static_cast<u32>(xi);
    if (forest.is_root[x]) return;
    used[EulerTour::down_arc(x)] = 1;
    used[EulerTour::up_arc(x)] = 1;
    // down-arc: descend to the first child, or bounce straight back up.
    succ[EulerTour::down_arc(x)] = forest.degree(x) > 0
                                       ? EulerTour::down_arc(forest.child[forest.child_off[x]])
                                       : EulerTour::up_arc(x);
    // up-arc: continue to the next sibling, else climb (ends at a root).
    const u32 p = forest.parent[x];
    const u32 s = forest.sibling_index[x];
    if (s + 1 < forest.degree(p)) {
      succ[EulerTour::up_arc(x)] = EulerTour::down_arc(forest.child[forest.child_off[p] + s + 1]);
    } else if (!forest.is_root[p]) {
      succ[EulerTour::up_arc(x)] = EulerTour::up_arc(p);
    }  // else: end of this tree's tour (chained below)
  });
  // Chain the per-tree tours in ascending root order.
  const std::vector<u32> tree_roots = prim::pack_index_if(forest.roots.size(), [&](std::size_t i) {
    return forest.degree(forest.roots[i]) > 0;
  });
  std::vector<u32> heads(tree_roots.size()), tails(tree_roots.size());
  pram::parallel_for(0, tree_roots.size(), [&](std::size_t i) {
    const u32 r = forest.roots[tree_roots[i]];
    heads[i] = EulerTour::down_arc(forest.child[forest.child_off[r]]);
    tails[i] = EulerTour::up_arc(forest.child[forest.child_off[r + 1] - 1]);
  });
  pram::parallel_for(0, tree_roots.size(), [&](std::size_t i) {
    if (i + 1 < tree_roots.size()) succ[tails[i]] = heads[i + 1];
  });
  // Rank the single chained list; position = rank(head) - rank(arc).
  const std::vector<u32> rank = prim::list_rank(succ, ranking);
  const std::size_t total = heads.empty() ? 0 : static_cast<std::size_t>(rank[heads[0]]) + 1;
  tour.order.assign(total, kNone);
  tour.seg_start.assign(total, 0);
  if (!heads.empty()) {
    const u32 head_rank = rank[heads[0]];
    pram::parallel_for(0, 2 * n, [&](std::size_t a) {
      if (!used[a]) return;
      const u32 p = head_rank - rank[a];
      tour.pos[a] = p;
      tour.order[p] = static_cast<u32>(a);
    });
    pram::parallel_for(0, heads.size(), [&](std::size_t i) {
      tour.seg_start[tour.pos[heads[i]]] = 1;
    });
  }
  return tour;
}

}  // namespace sfcp::graph
