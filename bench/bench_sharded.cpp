// Sharded edit throughput: edits/sec vs. shard count against the single
// warm IncrementalSolver, on a many-component instance.  Each measured unit
// is one apply() of a round-sized batch over streams that are
// component-local (no batch rewires f across components — the serving
// traffic sharding targets):
//
//   * localized — fine-grained leaf edits interleaved across all
//     components.  Per-edit repair cost is identical for both engines, so
//     the sharded win here is the parallel fan-out across shards (scales
//     with cores; parity on one).
//   * uniform   — per-component uniform edits, interleaved.  Bigger dirty
//     regions, same story.
//   * burst     — one round = an n/16-edit burst of uniform edits confined
//     to ONE (rotating) component.  Both engines' RepairPolicy correctly
//     answers with a rebuild, but the single solver re-solves all n nodes
//     while the sharded engine rebuilds one shard: the O(n) -> O(n/k)
//     asymmetry that holds on any core count.
//
// BM_*EditsView variants add a view() per round — batch ingestion plus a
// merged snapshot, the full serving contract.
//
// BM_*PerEditView variants are the fine-grained serving path the delta
// pipeline optimizes: ONE edit + one view() per measured unit.  The merge
// layer must reconcile at O(dirty classes) per view (the edit's repair
// delta), not O(dirty shard); these keys are recorded to BENCH_delta.json
// in CI and diffed by tools/bench_diff.py.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "inc/incremental_solver.hpp"
#include "pram/worker_pool.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

constexpr std::size_t kComponents = 64;
constexpr std::size_t kNodes = std::size_t{1} << 17;
constexpr std::size_t kRounds = 96;  // pre-generated rounds, replayed cyclically

enum class Stream { Localized, Uniform, Burst };

struct Workload {
  graph::Instance inst;
  std::vector<std::vector<inc::Edit>> rounds;
  std::size_t edits_per_round = 0;
};

/// Disjoint union of kComponents bushy pseudo-trees (contiguous id blocks,
/// each one weakly-connected component with many in-degree-0 leaves).  A
/// random function would fracture each block into several components and
/// sprinkle cross-component set_f edits through the streams, measuring
/// migration cost instead of repair throughput.
Workload make_workload(Stream stream) {
  const std::size_t block = kNodes / kComponents;
  util::Rng rng(0x5a4d + static_cast<u64>(stream));
  Workload w;
  w.inst.f.reserve(kNodes);
  w.inst.b.reserve(kNodes);
  std::vector<graph::Instance> subs;
  subs.reserve(kComponents);
  for (std::size_t j = 0; j < kComponents; ++j) {
    subs.push_back(util::bushy(block, 16, 6, 4, rng));
    const u32 off = static_cast<u32>(j * block);
    for (std::size_t i = 0; i < block; ++i) {
      w.inst.f.push_back(subs[j].f[i] + off);
      w.inst.b.push_back(subs[j].b[i]);
    }
  }
  const auto offset_into = [&](std::vector<inc::Edit> edits, std::size_t j,
                               std::vector<inc::Edit>& out) {
    const u32 off = static_cast<u32>(j * block);
    for (inc::Edit& e : edits) {
      e.node += off;
      if (e.kind == inc::Edit::Kind::SetF) e.value += off;
      out.push_back(e);
    }
  };

  w.rounds.resize(kRounds);
  if (stream == Stream::Burst) {
    // One uniform burst per round, confined to a rotating component; sized
    // to trip both engines' batch-rebuild path (n/16).
    w.edits_per_round = kNodes / 16;
    for (std::size_t r = 0; r < kRounds; ++r) {
      const std::size_t j = r % kComponents;
      util::Rng srng(0xb0b0 + 131 * r);
      offset_into(util::random_edit_stream(subs[j], w.edits_per_round, util::EditMix::Uniform,
                                           6, srng),
                  j, w.rounds[r]);
    }
    return w;
  }

  // Fine-grained streams: per-component generation, interleaved round-robin
  // so every shard sees work in every round.
  w.edits_per_round = 1024;
  const util::EditMix mix =
      stream == Stream::Localized ? util::EditMix::LocalizedHotspot : util::EditMix::Uniform;
  const std::size_t total = kRounds * w.edits_per_round;
  const std::size_t per_comp = total / kComponents;
  std::vector<std::vector<inc::Edit>> streams(kComponents);
  for (std::size_t j = 0; j < kComponents; ++j) {
    util::Rng srng(0xbeef + 31 * j + static_cast<u64>(mix));
    offset_into(util::random_edit_stream(subs[j], per_comp, mix, 6, srng), j, streams[j]);
  }
  std::size_t comp = 0, used = 0;
  for (auto& round : w.rounds) {
    round.reserve(w.edits_per_round);
    for (std::size_t i = 0; i < w.edits_per_round; ++i) {
      round.push_back(streams[comp][used]);
      if (++comp == kComponents) {
        comp = 0;
        ++used;
      }
    }
  }
  return w;
}

const Workload& workload(Stream stream) {
  static const Workload localized = make_workload(Stream::Localized);
  static const Workload uniform = make_workload(Stream::Uniform);
  static const Workload burst = make_workload(Stream::Burst);
  switch (stream) {
    case Stream::Localized: return localized;
    case Stream::Uniform: return uniform;
    default: return burst;
  }
}

void BM_ShardedEdits(benchmark::State& state, Stream stream, std::size_t shards,
                     bool view_per_round) {
  const Workload& w = workload(stream);
  shard::ShardOptions sopt;
  sopt.shards = shards;
  shard::ShardedEngine engine(graph::Instance(w.inst), core::Options::parallel(), {}, sopt);
  benchmark::DoNotOptimize(engine.view().num_classes());
  std::size_t round = 0;
  for (auto _ : state) {
    engine.apply(w.rounds[round]);
    if (view_per_round) {
      benchmark::DoNotOptimize(engine.view().num_classes());
    } else {
      benchmark::DoNotOptimize(engine.epoch());
    }
    if (++round == kRounds) round = 0;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(w.edits_per_round));
}

void BM_ShardedPerEditView(benchmark::State& state, Stream stream, std::size_t shards) {
  const Workload& w = workload(stream);
  shard::ShardOptions sopt;
  sopt.shards = shards;
  shard::ShardedEngine engine(graph::Instance(w.inst), core::Options::parallel(), {}, sopt);
  benchmark::DoNotOptimize(engine.view().num_classes());
  std::size_t round = 0, at = 0;
  for (auto _ : state) {
    const inc::Edit e = w.rounds[round][at];
    engine.apply({&e, 1});
    benchmark::DoNotOptimize(engine.view().num_classes());
    if (++at == w.rounds[round].size()) {
      at = 0;
      if (++round == kRounds) round = 0;
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

/// Threads-scaling on the persistent worker pool: a k=8 sharded engine with
/// a WorkerPool of width t installed, so per-epoch repair fans dispatch to
/// parked workers instead of forking an OpenMP team.  t=1 runs poolless
/// (serial fan) and anchors the speedup ratio bench_diff.py reports for the
/// /t2 /t4 /t8 keys.  CI records these to BENCH_pool.json; on a one-core
/// runner the ratios sit near 1x (the fan is latency-, not
/// bandwidth-bound there — see README "Parallel serving").
void BM_PoolShardedEdits(benchmark::State& state, Stream stream, int threads) {
  const Workload& w = workload(stream);
  shard::ShardOptions sopt;
  sopt.shards = 8;
  pram::ExecutionContext ctx;
  ctx.threads = threads;
  std::unique_ptr<pram::WorkerPool> pool;
  if (threads > 1) {
    pool = std::make_unique<pram::WorkerPool>(threads);
    ctx.pool = pool.get();
  }
  shard::ShardedEngine engine(graph::Instance(w.inst), core::Options::parallel(), ctx, sopt);
  if (pool) engine.install_pool(pool.get());
  benchmark::DoNotOptimize(engine.view().num_classes());
  std::size_t round = 0;
  for (auto _ : state) {
    engine.apply(w.rounds[round]);
    benchmark::DoNotOptimize(engine.epoch());
    if (++round == kRounds) round = 0;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(w.edits_per_round));
}

void BM_SingleSolverPerEditView(benchmark::State& state, Stream stream) {
  const Workload& w = workload(stream);
  inc::IncrementalSolver solver(graph::Instance(w.inst));
  benchmark::DoNotOptimize(solver.view().num_classes());
  std::size_t round = 0, at = 0;
  for (auto _ : state) {
    const inc::Edit e = w.rounds[round][at];
    solver.apply({&e, 1});
    benchmark::DoNotOptimize(solver.view().num_classes());
    if (++at == w.rounds[round].size()) {
      at = 0;
      if (++round == kRounds) round = 0;
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void BM_SingleSolverEdits(benchmark::State& state, Stream stream, bool view_per_round) {
  const Workload& w = workload(stream);
  inc::IncrementalSolver solver(graph::Instance(w.inst));
  benchmark::DoNotOptimize(solver.view().num_classes());
  std::size_t round = 0;
  for (auto _ : state) {
    solver.apply(w.rounds[round]);
    if (view_per_round) {
      benchmark::DoNotOptimize(solver.view().num_classes());
    } else {
      benchmark::DoNotOptimize(solver.epoch());
    }
    if (++round == kRounds) round = 0;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(w.edits_per_round));
}

const int kRegistered = [] {
  const std::pair<const char*, Stream> streams[] = {
      {"localized", Stream::Localized},
      {"uniform", Stream::Uniform},
      {"burst", Stream::Burst},
  };
  for (const auto& [stream_name, stream] : streams) {
    benchmark::RegisterBenchmark(
        (std::string("BM_SingleSolverEdits/k1/") + stream_name).c_str(), BM_SingleSolverEdits,
        stream, false)
        ->Unit(benchmark::kMillisecond);
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_ShardedEdits/k") + std::to_string(k) + "/" + stream_name).c_str(),
          BM_ShardedEdits, stream, k, false)
          ->Unit(benchmark::kMillisecond);
    }
    // Pool threads-scaling keys (BENCH_pool.json): thread count is a name
    // segment so it lands in the record's strategy key, not `threads`.
    for (const int t : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark((std::string("BM_PoolShardedEdits/k8/t") + std::to_string(t) +
                                    "/" + stream_name)
                                       .c_str(),
                                   BM_PoolShardedEdits, stream, t)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("BM_SingleSolverEditsView/k1/") + stream_name).c_str(),
        BM_SingleSolverEdits, stream, true)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_ShardedEditsView/k8/") + stream_name).c_str(), BM_ShardedEdits,
        stream, std::size_t{8}, true)
        ->Unit(benchmark::kMillisecond);
    // Per-edit view latency (the delta path).  Burst rounds are rebuild
    // storms by construction, so only the fine-grained streams make sense
    // one edit at a time.
    if (stream != Stream::Burst) {
      benchmark::RegisterBenchmark(
          (std::string("BM_SingleSolverPerEditView/k1/") + stream_name).c_str(),
          BM_SingleSolverPerEditView, stream)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          (std::string("BM_ShardedPerEditView/k8/") + stream_name).c_str(),
          BM_ShardedPerEditView, stream, std::size_t{8})
          ->Unit(benchmark::kMicrosecond);
    }
  }
  return 0;
}();

}  // namespace
