// E8 — cycle node labelling (Lemma 3.2) on pure-cycle inputs: sweeps cycle
// count, cycle length and B-label period structure.
#include <benchmark/benchmark.h>

#include "core/cycle_labeling.hpp"
#include "graph/cycle_structure.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

void BM_CycleLabeling(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t len = static_cast<std::size_t>(state.range(1));
  util::Rng rng(k * 3 + len);
  const auto inst = util::equal_cycles(k, len, 4, 3, rng);
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::PointerJumping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::label_cycles(inst, cs));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(k * len));
}
BENCHMARK(BM_CycleLabeling)
    ->ArgsProduct({{1 << 4, 1 << 8, 1 << 12}, {16, 256}});

void BM_CycleLabelingOneBigCycle(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto inst = util::equal_cycles(1, n, 1, 3, rng);
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::PointerJumping);
  core::CycleLabelingOptions opt;
  opt.msp = static_cast<strings::MspStrategy>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::label_cycles(inst, cs, opt));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(state.range(1) == static_cast<int>(strings::MspStrategy::Booth)
                     ? "booth"
                     : state.range(1) == static_cast<int>(strings::MspStrategy::Simple)
                           ? "simple"
                           : "efficient");
}
BENCHMARK(BM_CycleLabelingOneBigCycle)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20},
                   {static_cast<int>(strings::MspStrategy::Booth),
                    static_cast<int>(strings::MspStrategy::Simple),
                    static_cast<int>(strings::MspStrategy::Efficient)}});

}  // namespace
