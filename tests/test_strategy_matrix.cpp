// Strategy-matrix cross-validation: every registered strategy combination
// must produce bit-identical canonical Q-labels.  This is the strongest
// internal-consistency check in the suite — a bug in any one strategy shows
// up as a mismatch against the other combinations.
//
// The detect x structure x tree lattice is enumerated straight from
// sfcp::registry(); the m.s.p. and rename-backend dimensions (which the
// registry keeps at their defaults) get their own sweep on top of it.
#include <gtest/gtest.h>

#include <string>

#include "core/registry.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "pram/execution_context.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

class StrategyMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  core::Options options() const { return sfcp::registry().at(GetParam()); }
};

TEST_P(StrategyMatrix, AgreesWithDefaultOnRandomInstances) {
  core::Solver solver(options());
  util::Rng rng(13001);
  for (int iter = 0; iter < 8; ++iter) {
    const auto inst = util::random_function(1 + rng.below(800), 1 + rng.below(4), rng);
    const auto got = solver.solve(inst);
    const auto want = core::solve(inst);
    EXPECT_EQ(got.q, want.q) << "iter " << iter;
    EXPECT_EQ(got.num_blocks, want.num_blocks);
  }
}

TEST_P(StrategyMatrix, AgreesOnAdversarialShapes) {
  core::Solver solver(options());
  util::Rng rng(13003);
  const auto shapes = {
      util::random_permutation(512, 3, rng),   // pure cycles
      util::long_tail(512, 8, 2, rng),         // deepest trees
      util::bushy(512, 4, 32, 2, rng),         // widest trees
      util::equal_cycles(16, 32, 3, 3, rng),   // Algorithm partition stress
      util::mergeable(512, 8, rng),            // high coarseness
  };
  for (const auto& inst : shapes) {
    const auto got = solver.solve(inst);
    const auto report = core::verify_solution(inst, got.q);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(got.q, core::solve(inst).q);
  }
}

TEST_P(StrategyMatrix, ThreadCountInvariance) {
  util::Rng rng(13007);
  const auto inst = util::random_function(600, 3, rng);
  const auto want = core::solve(inst, options());
  for (int t : {1, 2, 8}) {
    core::Solver solver(options(), pram::ExecutionContext{}.with_threads(t));
    EXPECT_EQ(solver.solve(inst).q, want.q) << "threads=" << t;
  }
}

std::string matrix_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Registry, StrategyMatrix,
                         ::testing::ValuesIn(sfcp::registry().names()), matrix_name);

// The m.s.p. and partition-backend dimensions, swept against the default
// pipeline on the Algorithm-partition stress shapes where they matter.
using MspBackendCombo = std::tuple<strings::MspStrategy, core::RenameBackend, bool>;

class MspBackendSweep : public ::testing::TestWithParam<MspBackendCombo> {};

TEST_P(MspBackendSweep, AgreesWithDefault) {
  const auto& [msp, backend, parallel_period] = GetParam();
  core::Options opt;
  opt.cycle_labeling.msp = msp;
  opt.cycle_labeling.partition_backend = backend;
  opt.cycle_labeling.parallel_period = parallel_period;
  core::Solver solver(opt);
  util::Rng rng(13011);
  const auto shapes = {
      util::random_permutation(512, 3, rng),
      util::equal_cycles(16, 32, 3, 3, rng),
      util::equal_cycles(64, 8, 2, 2, rng),
      util::random_function(777, 2, rng),
  };
  for (const auto& inst : shapes) {
    EXPECT_EQ(solver.solve(inst).q, core::solve(inst).q);
  }
}

std::string msp_backend_name(const ::testing::TestParamInfo<MspBackendCombo>& info) {
  const auto& [msp, backend, parallel_period] = info.param;
  std::string s;
  switch (msp) {
    case strings::MspStrategy::Brute: s += "MspBrute"; break;
    case strings::MspStrategy::Booth: s += "MspBooth"; break;
    case strings::MspStrategy::Duval: s += "MspDuval"; break;
    case strings::MspStrategy::Simple: s += "MspSimple"; break;
    case strings::MspStrategy::Efficient: s += "MspEff"; break;
  }
  s += backend == core::RenameBackend::Hashed ? "Hash" : "Sort";
  s += parallel_period ? "ParPeriod" : "SeqPeriod";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, MspBackendSweep,
    ::testing::Combine(::testing::Values(strings::MspStrategy::Brute, strings::MspStrategy::Booth,
                                         strings::MspStrategy::Duval, strings::MspStrategy::Simple,
                                         strings::MspStrategy::Efficient),
                       ::testing::Values(core::RenameBackend::Hashed, core::RenameBackend::Sorted),
                       ::testing::Bool()),
    msp_backend_name);

}  // namespace
}  // namespace sfcp
