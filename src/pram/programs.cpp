#include "pram/programs.hpp"

#include <memory>
#include <stdexcept>

namespace sfcp::pram {

Program make_broadcast_or(PramModel model, const std::vector<u8>& bits) {
  const u32 n = static_cast<u32>(bits.size());
  Program p{std::make_shared<Simulator>(model, 1, n), nullptr, nullptr, 1};
  auto data = std::make_shared<std::vector<u8>>(bits);
  p.round = [data](u32 pid, std::span<const u32>) {
    std::vector<WriteRequest> w;
    if ((*data)[pid]) w.push_back({0, 1});
    return w;
  };
  auto fired = std::make_shared<bool>(false);
  p.done = [fired] {
    const bool was = *fired;
    *fired = true;
    return was;
  };
  return p;
}

Program make_list_rank(PramModel model, const std::vector<u32>& next) {
  const u32 n = static_cast<u32>(next.size());
  // Memory: next'[0..n) (kNone remapped to self so cells stay in range),
  // rank[n..2n).
  Program p{std::make_shared<Simulator>(model, 2 * static_cast<std::size_t>(n), n), nullptr,
            nullptr, 2 * static_cast<u64>(n) + 2};
  u32 tail = 0;
  for (u32 i = 0; i < n; ++i) {
    if (next[i] == kNone) tail = i;
  }
  for (u32 i = 0; i < n; ++i) {
    p.sim->memory()[i] = next[i] == kNone ? i : next[i];
    p.sim->memory()[n + i] = next[i] == kNone ? 0 : 1;
  }
  p.round = [n](u32 pid, std::span<const u32> mem) {
    const u32 nxt = mem[pid];
    if (nxt == pid) return std::vector<WriteRequest>{};  // settled at the tail
    return std::vector<WriteRequest>{{pid, mem[nxt]}, {n + pid, mem[n + pid] + mem[n + nxt]}};
  };
  // Termination: every pointer equals the tail (self-loops included).
  auto sim_ptr = p.sim;
  p.done = [sim_ptr, n, tail] {
    for (u32 i = 0; i < n; ++i) {
      if (sim_ptr->memory()[i] != tail && sim_ptr->memory()[i] != i) return false;
    }
    // All pointers settled: either at the tail or at their own self-loop.
    for (u32 i = 0; i < n; ++i) {
      if (sim_ptr->memory()[i] != sim_ptr->memory()[sim_ptr->memory()[i]]) return false;
    }
    return true;
  };
  return p;
}

namespace {

// Shared logic: one write round + one read round of partition iteration j.
// Memory layout: EQ[0..n), BB[n .. n + n*n).
std::vector<WriteRequest> partition_write_phase(u32 pid, std::span<const u32> mem, u32 n, u32 l,
                                                u32 j) {
  const u32 cycle = pid / l;
  const u32 p = pid % l;
  const u32 stride = 1u << j;
  if (p % stride != 0 || p + stride / 2 >= l) return {};
  const u32 d1 = cycle * l + p;
  const u32 d2 = d1 + stride / 2;
  const u32 cell = n + mem[d1] * n + mem[d2];
  return {WriteRequest{cell, d1}};
}

std::vector<WriteRequest> partition_read_phase(u32 pid, std::span<const u32> mem, u32 n, u32 l,
                                               u32 j) {
  const u32 cycle = pid / l;
  const u32 p = pid % l;
  const u32 stride = 1u << j;
  if (p % stride != 0 || p + stride / 2 >= l) return {};
  const u32 d1 = cycle * l + p;
  const u32 d2 = d1 + stride / 2;
  const u32 cell = n + mem[d1] * n + mem[d2];
  return {WriteRequest{d1, mem[cell]}};
}

}  // namespace

Program make_partition_round(PramModel model, const std::vector<u32>& eq, u32 j) {
  const u32 n = static_cast<u32>(eq.size());
  for (const u32 v : eq) {
    if (v >= n) throw std::invalid_argument("make_partition_round: EQ labels must be < n");
  }
  Program p{std::make_shared<Simulator>(
                model, static_cast<std::size_t>(n) + static_cast<std::size_t>(n) * n, n),
            nullptr, nullptr, 2};
  for (u32 i = 0; i < n; ++i) p.sim->memory()[i] = eq[i];
  auto phase = std::make_shared<u32>(0);
  const u32 l = n;  // single cycle in the one-round harness
  p.round = [phase, n, l, j](u32 pid, std::span<const u32> mem) {
    return *phase == 0 ? partition_write_phase(pid, mem, n, l, j)
                       : partition_read_phase(pid, mem, n, l, j);
  };
  auto counter = std::make_shared<u32>(0);
  p.done = [phase, counter] {
    if (*counter >= 2) return true;
    *phase = *counter;
    ++*counter;
    return false;
  };
  return p;
}

PartitionRun simulate_partition(PramModel model, const std::vector<u32>& labels, u32 k, u32 l) {
  const u32 n = static_cast<u32>(labels.size());
  if (static_cast<u64>(k) * l != n) {
    throw std::invalid_argument("simulate_partition: k*l != labels.size()");
  }
  if (l == 0 || (l & (l - 1)) != 0) {
    throw std::invalid_argument("simulate_partition: l must be a power of two");
  }
  for (const u32 v : labels) {
    if (v >= n) throw std::invalid_argument("simulate_partition: labels must be < n");
  }
  Simulator sim(model, static_cast<std::size_t>(n) + static_cast<std::size_t>(n) * n, n);
  for (u32 i = 0; i < n; ++i) sim.memory()[i] = labels[i];

  u32 log_l = 0;
  while ((1u << log_l) < l) ++log_l;
  for (u32 j = 1; j <= log_l; ++j) {
    const bool w = sim.step([n, l, j](u32 pid, std::span<const u32> mem) {
      return partition_write_phase(pid, mem, n, l, j);
    });
    if (!w) break;
    const bool r = sim.step([n, l, j](u32 pid, std::span<const u32> mem) {
      return partition_read_phase(pid, mem, n, l, j);
    });
    if (!r) break;
  }
  PartitionRun out;
  out.eq.assign(sim.memory().begin(), sim.memory().begin() + n);
  out.report = sim.report();
  return out;
}

}  // namespace sfcp::pram
