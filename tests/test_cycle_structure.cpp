// Unit tests for cycle structure (leader / rank / length / arrangement).
#include <gtest/gtest.h>

#include "graph/cycle_structure.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::cycle_structure;
using graph::CycleStructure;
using graph::CycleStructureStrategy;

void check_invariants(const CycleStructure& cs, std::span<const u32> f) {
  const std::size_t n = f.size();
  // Every cycle node's successor is a cycle node with rank+1 (mod len).
  for (u32 x = 0; x < n; ++x) {
    if (!cs.on_cycle[x]) {
      EXPECT_EQ(cs.leader[x], kNone);
      continue;
    }
    const u32 y = f[x];
    ASSERT_TRUE(cs.on_cycle[y]);
    EXPECT_EQ(cs.leader[x], cs.leader[y]);
    EXPECT_EQ(cs.length[x], cs.length[y]);
    EXPECT_EQ((cs.rank[x] + 1) % cs.length[x], cs.rank[y]);
    // Leader is the minimum id on the cycle.
    EXPECT_LE(cs.leader[x], x);
    EXPECT_EQ(cs.on_cycle[cs.leader[x]], 1);
  }
  // Arrangement: node_at(cycle_of[x], rank[x]) == x; leaders have rank 0.
  for (u32 x = 0; x < n; ++x) {
    if (!cs.on_cycle[x]) continue;
    EXPECT_EQ(cs.node_at(cs.cycle_of[x], cs.rank[x]), x);
    if (cs.leader[x] == x) EXPECT_EQ(cs.rank[x], 0u);
  }
  // Offsets consistent with lengths.
  for (std::size_t c = 0; c < cs.num_cycles(); ++c) {
    const u32 len = cs.cycle_length(c);
    EXPECT_EQ(len, cs.length[cs.cycle_nodes[cs.cycle_offset[c]]]);
    EXPECT_GE(len, 1u);
  }
}

TEST(CycleStructure, SelfLoop) {
  std::vector<u32> f{0};
  for (auto strat : {CycleStructureStrategy::Sequential, CycleStructureStrategy::PointerJumping}) {
    const auto cs = cycle_structure(f, strat);
    EXPECT_EQ(cs.num_cycles(), 1u);
    EXPECT_EQ(cs.on_cycle[0], 1);
    EXPECT_EQ(cs.length[0], 1u);
    EXPECT_EQ(cs.rank[0], 0u);
  }
}

TEST(CycleStructure, TwoCycleWithTail) {
  // 0 <-> 1, 2 -> 0, 3 -> 2
  std::vector<u32> f{1, 0, 0, 2};
  for (auto strat : {CycleStructureStrategy::Sequential, CycleStructureStrategy::PointerJumping}) {
    const auto cs = cycle_structure(f, strat);
    EXPECT_EQ(cs.num_cycles(), 1u);
    EXPECT_EQ(cs.on_cycle[0], 1);
    EXPECT_EQ(cs.on_cycle[1], 1);
    EXPECT_EQ(cs.on_cycle[2], 0);
    EXPECT_EQ(cs.on_cycle[3], 0);
    EXPECT_EQ(cs.leader[0], 0u);
    EXPECT_EQ(cs.rank[1], 1u);
    check_invariants(cs, f);
  }
}

TEST(CycleStructure, PaperFig1TwoCycles) {
  const auto inst = util::paper_example_2_2();
  for (auto strat : {CycleStructureStrategy::Sequential, CycleStructureStrategy::PointerJumping}) {
    const auto cs = cycle_structure(inst.f, strat);
    EXPECT_EQ(cs.num_cycles(), 2u);  // lengths 12 and 4 (Fig. 1)
    EXPECT_EQ(cs.cycle_length(0) + cs.cycle_length(1), 16u);
    const u32 lens[2] = {cs.cycle_length(0), cs.cycle_length(1)};
    EXPECT_TRUE((lens[0] == 12 && lens[1] == 4) || (lens[0] == 4 && lens[1] == 12));
    check_invariants(cs, inst.f);
  }
}

TEST(CycleStructure, StrategiesAgreeExactly) {
  util::Rng rng(501);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = util::random_function(1 + rng.below(2000), 3, rng);
    const auto seq = cycle_structure(inst.f, CycleStructureStrategy::Sequential);
    const auto par = cycle_structure(inst.f, CycleStructureStrategy::PointerJumping);
    EXPECT_EQ(seq.on_cycle, par.on_cycle);
    EXPECT_EQ(seq.leader, par.leader);
    EXPECT_EQ(seq.rank, par.rank);
    EXPECT_EQ(seq.length, par.length);
    EXPECT_EQ(seq.cycle_nodes, par.cycle_nodes);
    EXPECT_EQ(seq.cycle_offset, par.cycle_offset);
  }
}

TEST(CycleStructure, PermutationIsAllCycles) {
  util::Rng rng(503);
  const auto inst = util::random_permutation(5000, 3, rng);
  const auto cs = cycle_structure(inst.f, CycleStructureStrategy::PointerJumping);
  EXPECT_EQ(cs.cycle_nodes.size(), 5000u);
  for (u32 x = 0; x < 5000; ++x) EXPECT_EQ(cs.on_cycle[x], 1);
  check_invariants(cs, inst.f);
}

TEST(CycleStructure, LongTailSingleCycle) {
  util::Rng rng(509);
  const auto inst = util::long_tail(10000, 17, 3, rng);
  for (auto strat : {CycleStructureStrategy::Sequential, CycleStructureStrategy::PointerJumping}) {
    const auto cs = cycle_structure(inst.f, strat);
    EXPECT_EQ(cs.num_cycles(), 1u);
    EXPECT_EQ(cs.cycle_length(0), 17u);
    check_invariants(cs, inst.f);
  }
}

class CycleStructureSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CycleStructureSweep, InvariantsOnRandomFunctions) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  const auto inst = util::random_function(n, 4, rng);
  for (auto strat : {CycleStructureStrategy::Sequential, CycleStructureStrategy::PointerJumping}) {
    check_invariants(cycle_structure(inst.f, strat), inst.f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CycleStructureSweep,
                         ::testing::Values(1, 2, 3, 10, 63, 64, 65, 1000, 10000));

}  // namespace
}  // namespace sfcp
