// prof/: the scoped hierarchical phase profiler — nesting/merge semantics,
// thread-buffer merging under pram::parallel_for, zero-cost compile-out,
// the optional STATS-frame profile section (old-format compatibility both
// ways) and the end-to-end server -> client path.
//
// Tests marked (enabled-only) skip in default builds: the contract there
// is exactly that nothing records.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine.hpp"
#include "pram/execution_context.hpp"
#include "pram/parallel_for.hpp"
#include "prof/profile.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace sfcp {
namespace {

// The compile-out contract: a disabled Scope is an empty object (one byte,
// no members, nothing to construct), so release hot paths pay zero.
static_assert(prof::kEnabled || sizeof(prof::Scope) == 1,
              "disabled prof::Scope must compile out to an empty object");

TEST(Profile, DisabledBuildRecordsNothing) {
  if (prof::kEnabled) GTEST_SKIP() << "SFCP_PROFILE build: scopes are live";
  prof::Profiler p;
  prof::ScopedProfiler guard(p);
  {
    prof::Scope s("solve/rename");
    prof::charge_bytes(1024);
    prof::charge_flops(64);
  }
  EXPECT_TRUE(p.snapshot().empty());
}

TEST(Profile, SessionProfilerResolvesContextFirstThenDefault) {
  prof::Profiler ctx_prof, default_prof;
  EXPECT_EQ(prof::session_profiler(), nullptr);
  prof::ScopedProfiler guard(default_prof);
  EXPECT_EQ(prof::session_profiler(), &default_prof);
  {
    // Unlike metrics, a context WITHOUT a profiler falls through to the
    // default — that is what lets one top-level profiler see engine
    // internals that install their own contexts.
    pram::ExecutionContext ctx;
    pram::ScopedContext cguard(&ctx);  // pointer ctor: mutations visible
    EXPECT_EQ(prof::session_profiler(), &default_prof);
    ctx.profiler = &ctx_prof;
    EXPECT_EQ(prof::session_profiler(), &ctx_prof);
  }
  EXPECT_EQ(prof::session_profiler(), &default_prof);
}

TEST(Profile, NestingBuildsSlashPaths) {  // (enabled-only)
  if (!prof::kEnabled) GTEST_SKIP() << "profiling compiled out";
  prof::Profiler p;
  prof::ScopedProfiler guard(p);
  for (int i = 0; i < 3; ++i) {
    prof::Scope outer("solve");
    {
      prof::Scope inner("rename");
      prof::charge_bytes(100);
      prof::charge_flops(10);
    }
    prof::charge_bytes(7);  // lands on "solve", not "solve/rename"
  }
  const prof::ProfileTree t = p.snapshot();
  ASSERT_EQ(t.phases.size(), 2u);
  const prof::PhaseNode* solve = t.find("solve");
  const prof::PhaseNode* rename = t.find("solve/rename");
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(rename, nullptr);
  EXPECT_EQ(solve->count, 3u);
  EXPECT_EQ(rename->count, 3u);
  EXPECT_EQ(rename->bytes, 300u);
  EXPECT_EQ(rename->flops, 30u);
  EXPECT_EQ(solve->bytes, 21u);  // charges stay on their own node
  EXPECT_GE(solve->ns, rename->ns);  // the outer scope spans the inner

  p.reset();
  EXPECT_TRUE(p.snapshot().empty());
}

TEST(Profile, ParallelForWorkersMergeIntoOneTree) {  // (enabled-only)
  if (!prof::kEnabled) GTEST_SKIP() << "profiling compiled out";
  prof::Profiler p;
  pram::ExecutionContext ctx;
  ctx.profiler = &p;
  ctx.threads = 4;
  ctx.grain = 1;
  pram::ScopedContext guard(ctx);
  constexpr std::size_t kN = 2000;
  pram::parallel_for(0, kN, [](std::size_t) {
    // Workers start at the root: the embedded slash claims the hierarchy.
    prof::Scope s("par/worker");
    prof::charge_bytes(1);
  });
  const prof::ProfileTree t = p.snapshot();
  const prof::PhaseNode* w = t.find("par/worker");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count, kN);  // every iteration merged, across all threads
  EXPECT_EQ(w->bytes, kN);
}

TEST(Profile, SnapshotIsSafeWhileOtherThreadsRecord) {  // (enabled-only)
  if (!prof::kEnabled) GTEST_SKIP() << "profiling compiled out";
  prof::Profiler p;
  prof::ScopedProfiler guard(p);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // The default profiler is process-wide, so the guard above covers us.
    // At least 100 iterations even if stop wins the race with thread spawn.
    for (int i = 0; i < 100 || !stop.load(); ++i) {
      prof::Scope s("hot/loop");
      prof::charge_bytes(8);
    }
  });
  u64 last = 0;
  for (int i = 0; i < 200; ++i) {
    const prof::ProfileTree t = p.snapshot();
    const u64 now = t.ns_of("hot/loop");
    EXPECT_GE(now, last);  // merged totals only grow
    last = now;
  }
  stop.store(true);
  writer.join();
  const prof::ProfileTree final_tree = p.snapshot();
  const prof::PhaseNode* hot = final_tree.find("hot/loop");
  ASSERT_NE(hot, nullptr);
  EXPECT_GE(hot->count, 100u);
  EXPECT_EQ(hot->bytes, hot->count * 8);
}

TEST(Profile, TimerSharesTheProfilerClock) {
  // Satellite contract: util::Timer and prof scopes read one clock, so an
  // interval measured by both agrees (same origin, same unit).
  const util::Timer timer;
  const u64 t0 = prof::now_ns();
  std::ostringstream burn;
  for (int i = 0; i < 1000; ++i) burn << i;
  const u64 dt_prof = prof::now_ns() - t0;
  const double dt_timer = timer.nanos();
  EXPECT_GE(dt_timer, static_cast<double>(dt_prof) * 0.5);
  // The timer started first and was read last, so it brackets the
  // now_ns window from both sides.
  EXPECT_GE(dt_timer + 1.0, static_cast<double>(dt_prof));
}

TEST(Profile, RenderShowsTreeAndRooflineColumns) {
  prof::ProfileTree t;
  t.phases.push_back({"serve", 4'000'000, 2, 0, 0});
  t.phases.push_back({"serve/epoch_apply", 3'000'000, 2, 1'000'000, 6'000'000});
  std::ostringstream os;
  t.render(os, /*peak_gbps=*/20.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("epoch_apply"), std::string::npos);
  EXPECT_NE(out.find("%peak"), std::string::npos);
  EXPECT_NE(out.find("GB/s"), std::string::npos);

  std::ostringstream empty_os;
  prof::ProfileTree{}.render(empty_os);
  EXPECT_NE(empty_os.str().find("empty profile"), std::string::npos);
}

// ---- the wire: optional STATS profile section ----------------------------

TEST(ProfileWire, SectionRoundTrip) {
  prof::ProfileTree t;
  t.phases.push_back({"inc/repair", 123456789, 42, 7, 999});
  t.phases.push_back({"serve/journal_fsync", 5, 1, 0, 0});
  serve::PayloadWriter w;
  serve::append_profile_section(w, t);
  serve::PayloadReader r(w.str());
  const prof::ProfileTree back = serve::decode_profile_section(r);
  r.expect_end("profile section");
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases[0], t.phases[0]);
  EXPECT_EQ(back.phases[1], t.phases[1]);
}

TEST(ProfileWire, OldFormatPayloadDecodesToEmptyTree) {
  // A pre-profile server's StatsData ends right after the counters; the new
  // decoder must treat the exhausted payload as "no profile".
  serve::PayloadWriter w;
  w.put_u32(1);
  const std::string key = "epoch";
  w.put_u8(static_cast<u8>(key.size()));
  w.put_bytes(key.data(), key.size());
  w.put_u64(7);

  serve::PayloadReader r(w.str());
  EXPECT_EQ(r.get_u32("count"), 1u);
  const u8 klen = r.get_u8("klen");
  EXPECT_EQ(r.get_bytes(klen, "key"), "epoch");
  EXPECT_EQ(r.get_u64("value"), 7u);
  EXPECT_TRUE(serve::decode_profile_section(r).empty());
  r.expect_end("StatsData frame");  // the old invariant still holds
}

TEST(ProfileWire, EmptyTreeEncodesAsAbsence) {
  serve::PayloadWriter w;
  serve::append_profile_section(w, prof::ProfileTree{});
  EXPECT_TRUE(w.str().empty());  // absence IS the empty encoding
}

TEST(ProfileWire, UnknownSectionVersionIsSkippedWhole) {
  serve::PayloadWriter w;
  w.put_u8(9);  // a future section version
  w.put_u64(0xdeadbeef);
  serve::PayloadReader r(w.str());
  EXPECT_TRUE(serve::decode_profile_section(r).empty());
  r.expect_end("future section consumed");
}

// ---- end to end: engine stats and a live server --------------------------

TEST(ProfileEndToEnd, EngineServingStatsCarryThePhaseTree) {
  prof::Profiler p;
  prof::ScopedProfiler guard(p);
  util::Rng rng(77);
  auto engine = engines().make("incremental", util::random_function(400, 4, rng));
  for (u32 i = 0; i < 50; ++i) engine->set_b(i % 400, i);
  (void)engine->view();
  const EngineStats es = engine->serving_stats();
  if (prof::kEnabled) {
    EXPECT_FALSE(es.profile.empty());
    // The per-edit path went through the dirty-region scope at least once.
    EXPECT_GT(es.profile.ns_of("inc/dirty_region"), 0u);
  } else {
    EXPECT_TRUE(es.profile.empty());
  }
}

TEST(ProfileEndToEnd, StatsFrameCarriesProfileOverLoopback) {
  prof::Profiler p;
  prof::ScopedProfiler guard(p);
  util::Rng rng(91);
  auto engine = engines().make("incremental", util::random_function(300, 3, rng));
  serve::Server server(std::move(engine));
  std::thread loop([&server] { server.run(); });
  {
    serve::Client client = serve::Client::connect("127.0.0.1", server.port());
    std::vector<inc::Edit> edits;
    for (u32 i = 0; i < 20; ++i) edits.push_back(inc::Edit::set_b(i, i + 1000));
    client.apply(edits);
    const serve::Client::Stats st = client.stats_full();
    EXPECT_FALSE(st.counters.empty());  // counters decode exactly as before
    bool saw_epoch = false;
    for (const auto& [key, value] : st.counters) saw_epoch |= key == "epoch";
    EXPECT_TRUE(saw_epoch);
    if (prof::kEnabled) {
      // The server loop thread recorded into the process-default profiler
      // and shipped the tree through the optional STATS section.
      EXPECT_FALSE(st.profile.empty());
      EXPECT_GT(st.profile.ns_of("serve/epoch_apply"), 0u);
    } else {
      EXPECT_TRUE(st.profile.empty());
    }
    // The plain stats() accessor (old surface) keeps working either way.
    EXPECT_FALSE(client.stats().empty());
  }
  server.stop();
  loop.join();
}

}  // namespace
}  // namespace sfcp
