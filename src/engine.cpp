#include "engine.hpp"

#include <cstring>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "shard/sharded_engine.hpp"
#include "util/io.hpp"

namespace sfcp {

namespace {

void validate_edits(const graph::Instance& inst, std::span<const inc::Edit> edits) {
  for (const inc::Edit& e : edits) inc::validate_edit(e, inst.size(), "Engine");
}

}  // namespace

BatchEngine::BatchEngine(graph::Instance inst, core::Options opt, pram::ExecutionContext ctx)
    : inst_(std::move(inst)), solver_(opt, ctx) {
  graph::validate(inst_);
}

BatchEngine::BatchEngine(graph::Instance inst, core::Result seed, core::Options opt,
                         pram::ExecutionContext ctx)
    : inst_(std::move(inst)), solver_(opt, ctx) {
  graph::validate(inst_);
  if (seed.q.size() != inst_.size()) {
    throw std::invalid_argument("BatchEngine: seed result size " +
                                std::to_string(seed.q.size()) + " != instance size " +
                                std::to_string(inst_.size()));
  }
  cached_ = seed.view(0);
  stale_ = false;
}

BatchEngine::BatchEngine(graph::Instance inst, u64 epoch, core::Options opt,
                         pram::ExecutionContext ctx)
    : inst_(std::move(inst)), solver_(opt, ctx), epoch_(epoch) {
  graph::validate(inst_);
}

core::PartitionView BatchEngine::view() {
  if (stale_) {
    cached_ = solver_.solve_view(inst_, epoch_);
    stale_ = false;
  }
  return cached_;
}

void BatchEngine::apply(std::span<const inc::Edit> edits) {
  validate_edits(inst_, edits);
  // No-op edits don't advance the clock (matching IncrementalSolver), so
  // epoch-based pollers never reprocess an unchanged partition and a no-op
  // never costs a re-solve.
  u64 changed = 0;
  for (const inc::Edit& e : edits) {
    if (inc::apply_raw(e, inst_.f, inst_.b)) ++changed;
  }
  if (changed > 0) {
    epoch_ += changed;
    stale_ = true;
  }
}

IncrementalEngine::IncrementalEngine(graph::Instance inst, core::Options opt,
                                     pram::ExecutionContext ctx, inc::RepairPolicy policy)
    : inc_(std::move(inst), opt, ctx, policy) {}

IncrementalEngine::IncrementalEngine(inc::IncrementalSolver solver) : inc_(std::move(solver)) {}

bool IncrementalEngine::save_checkpoint(std::ostream& os) const {
  inc_.save(os);
  return true;
}

std::unique_ptr<Engine> load_incremental_engine(std::istream& is, core::Options opt,
                                                pram::ExecutionContext ctx,
                                                inc::RepairPolicy policy) {
  return std::make_unique<IncrementalEngine>(inc::IncrementalSolver::load(is, opt, ctx, policy));
}

LoadedEngine load_engine_checkpoint(std::istream& is, core::Options opt,
                                    pram::ExecutionContext ctx) {
  util::BinaryReader r(is, "load_engine_checkpoint");
  unsigned char magic[8];
  r.get_bytes(magic, 8, "magic");
  if (std::memcmp(magic, util::checkpoint_magic().data(), 8) == 0) {
    return {std::make_unique<IncrementalEngine>(
                inc::IncrementalSolver::load_body(is, opt, ctx, {})),
            "incremental"};
  }
  if (std::memcmp(magic, util::checkpoint_sharded_magic().data(), 8) == 0) {
    return {shard::ShardedEngine::load_body(is, opt, ctx, {}), "sharded"};
  }
  throw std::runtime_error(
      "load_engine_checkpoint: bad magic (expected an sfcp-checkpoint v1 stream)");
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

const EngineInfo* EngineRegistry::find(std::string_view name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::unique_ptr<Engine> EngineRegistry::make(std::string_view name, graph::Instance inst,
                                             const core::Options& opt,
                                             const pram::ExecutionContext& ctx) const {
  const EngineInfo* info = find(name);
  if (!info) {
    throw std::out_of_range("sfcp::engines(): no engine named '" + std::string(name) + "'");
  }
  return info->make(std::move(inst), opt, ctx);
}

void EngineRegistry::add(EngineInfo info) {
  for (auto& e : entries_) {
    if (e.name == info.name) {
      e = std::move(info);
      return;
    }
  }
  entries_.push_back(std::move(info));
}

EngineRegistry& engines() {
  static EngineRegistry reg = [] {
    EngineRegistry r;
    r.add({"batch", "lazy full re-solve per epoch (core::Solver); best for bursty edits",
           [](graph::Instance inst, const core::Options& opt,
              const pram::ExecutionContext& ctx) -> std::unique_ptr<Engine> {
             return std::make_unique<BatchEngine>(std::move(inst), opt, ctx);
           }});
    r.add({"incremental",
           "dirty-region repair per edit (inc::IncrementalSolver); best for interleaved "
           "reads and localized edits",
           [](graph::Instance inst, const core::Options& opt,
              const pram::ExecutionContext& ctx) -> std::unique_ptr<Engine> {
             return std::make_unique<IncrementalEngine>(std::move(inst), opt, ctx);
           }});
    r.add({"sharded",
           "component-sharded parallel repair, k=8 incremental shards behind a cross-shard "
           "class-reconciliation merge (shard::ShardedEngine); best for multi-component "
           "edit streams",
           [](graph::Instance inst, const core::Options& opt,
              const pram::ExecutionContext& ctx) -> std::unique_ptr<Engine> {
             return std::make_unique<shard::ShardedEngine>(std::move(inst), opt, ctx);
           }});
    return r;
  }();
  return reg;
}

}  // namespace sfcp
