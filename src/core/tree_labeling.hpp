#pragma once
// Q-labels of tree nodes — Section 4, Algorithm "tree node labeling".
//
// Step 1-2: compute levels; a tree node x at level l is "marked" iff its
// B-label equals that of its corresponding cycle node f^{k - (l mod k)}(r)
// (Lemma 4.1).  Step 3: a node keeps its mark only if its whole root path
// is marked (one root-path prefix sum instead of iterative unmarking).
// Step 4: kept nodes copy the Q-label of their corresponding cycle node.
// Step 5 (Lemma 4.2): the residual forest is labelled so that
// Q[x] = Q[y] iff B[x] = B[y] and Q[f(x)] = Q[f(y)] — realized by a global
// (B, Q_parent) -> fresh-label renaming.  Three strategies bracket the
// paper's Kedem–Palem O(n)-operation bound (see DESIGN.md):
//   * LevelSynchronous — O(n) work, depth = residual tree height
//   * AncestorDoubling — O(log n) depth, O(n log depth) work
//   * SequentialDFS    — O(n) reference

#include <span>
#include <vector>

#include "core/cycle_labeling.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/functional_graph.hpp"
#include "graph/rooted_forest.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

enum class TreeLabelStrategy { LevelSynchronous, AncestorDoubling, SequentialDFS };

struct TreeLabelingOptions {
  TreeLabelStrategy strategy = TreeLabelStrategy::LevelSynchronous;
  graph::ForestStrategy forest = graph::ForestStrategy::EulerTour;
};

struct TreeLabeling {
  std::vector<u32> q;  ///< complete labelling (cycle labels passed through)
  u32 kept = 0;        ///< tree nodes that reuse a cycle label (steps 2-4)
  u32 residual = 0;    ///< tree nodes labelled in step 5
};

/// Extends the cycle labelling `cl` to all tree nodes.
TreeLabeling label_trees(const graph::Instance& inst, const graph::CycleStructure& cs,
                         const CycleLabeling& cl, const TreeLabelingOptions& opt = {});

/// Workspace-reusing variant: rebuilds `out` in place, reusing its vector's
/// capacity across calls.
void label_trees_into(const graph::Instance& inst, const graph::CycleStructure& cs,
                      const CycleLabeling& cl, const TreeLabelingOptions& opt, TreeLabeling& out);

}  // namespace sfcp::core
