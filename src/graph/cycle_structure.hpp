#pragma once
// Cycle structure of a functional graph: which nodes lie on cycles, which
// cycle each belongs to, its position ("rank") along the cycle, and a
// contiguous arrangement of all cycles — step 1 of the paper's Algorithm
// "cycle node labeling" (list-ranking based, Section 3).

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::graph {

enum class CycleStructureStrategy {
  Sequential,      ///< visited-walk, O(n) reference
  PointerJumping,  ///< doubling (f^N image + min-propagation), O(n log n) work
};

struct CycleStructure {
  std::vector<u8> on_cycle;   ///< 1 iff the node lies on a cycle
  std::vector<u32> leader;    ///< cycle nodes: the cycle's leader node; else kNone
  std::vector<u32> rank;      ///< cycle nodes: steps from leader along f (leader = 0)
  std::vector<u32> length;    ///< cycle nodes: length of their cycle
  // Contiguous arrangement (paper: "each cycle ... occupies consecutive
  // memory locations"):
  std::vector<u32> cycle_nodes;   ///< nodes of cycle c at [offset[c], offset[c+1]), by rank
  std::vector<u32> cycle_offset;  ///< CSR offsets, size num_cycles+1
  std::vector<u32> cycle_of;      ///< cycle nodes: dense cycle id; else kNone

  std::size_t num_cycles() const {
    return cycle_offset.empty() ? 0 : cycle_offset.size() - 1;
  }
  u32 cycle_length(std::size_t c) const { return cycle_offset[c + 1] - cycle_offset[c]; }
  /// Node at position r of cycle c.
  u32 node_at(std::size_t c, u32 r) const { return cycle_nodes[cycle_offset[c] + r]; }
};

CycleStructure cycle_structure(std::span<const u32> f,
                               CycleStructureStrategy strategy =
                                   CycleStructureStrategy::PointerJumping);

/// Variant with precomputed on-cycle flags (e.g. from find_cycle_nodes with
/// the paper's §5 Euler-tour detector); skips re-detection where possible.
CycleStructure cycle_structure_with_flags(std::span<const u32> f, std::span<const u8> on_cycle,
                                          CycleStructureStrategy strategy);

/// Workspace-reusing variant: rebuilds `cs` in place, reusing its vectors'
/// capacity across calls (the Solver hot path).  `on_cycle` must not alias
/// `cs.on_cycle` (the flags are copied after the field is cleared).
void cycle_structure_with_flags_into(std::span<const u32> f, std::span<const u8> on_cycle,
                                     CycleStructureStrategy strategy, CycleStructure& cs);

}  // namespace sfcp::graph
