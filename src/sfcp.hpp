#pragma once
// Umbrella header: the full public API of the sfcp library.
//
//   #include "sfcp.hpp"
//
// The session API (preferred): construct a Solver once, reuse it.
//
//   sfcp::graph::Instance inst = ...;               // A_f and A_B
//   sfcp::pram::Metrics metrics;
//   sfcp::core::Solver solver(
//       sfcp::registry().at("parallel"),            // strategy by name
//       sfcp::pram::ExecutionContext{}              // per-session knobs:
//           .with_threads(4)                        //   thread budget
//           .with_metrics(&metrics));               //   isolated work counters
//   sfcp::core::Result r = solver.solve(inst);
//   // r.q[x] == r.q[y]  iff  x and y are in the same block of the
//   // coarsest f-stable refinement of B.  Repeated solve() calls reuse
//   // the solver's workspaces; solve_batch() runs independent instances
//   // in parallel with per-instance metrics.
//
// One-shot free function (delegates to the same pipeline):
//
//   sfcp::core::Result r = sfcp::core::solve(inst);
//
// Incremental solving (edit streams against a live instance):
//
//   sfcp::inc::IncrementalSolver inc(inst);   // full solve once
//   inc.set_b(x, 3);                          // local repair of the
//   inc.set_f(y, z);                          // dirty region, or full
//   inc.apply(edits);                         // re-solve when cheaper
//   sfcp::core::Result r = inc.snapshot();    // == core::solve(current)
//
// Strategy selection: sfcp::registry() enumerates every cycle-detect x
// cycle-structure x tree-labelling combination ("euler-jump-level", ...)
// plus the "parallel" and "sequential" aliases — see core/registry.hpp.
// Execution configuration: pram::ExecutionContext (threads, grain, metrics
// sink, RNG seed) installs thread-locally, so concurrent sessions with
// different settings never interfere — see pram/execution_context.hpp.

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/cycle_labeling.hpp"
#include "core/moore.hpp"
#include "core/multi_function.hpp"
#include "core/partition_algebra.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "core/trace.hpp"
#include "core/tree_labeling.hpp"
#include "core/verify.hpp"
#include "graph/cycle_detect.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/euler_tour.hpp"
#include "graph/functional_graph.hpp"
#include "graph/orbits.hpp"
#include "graph/reverse_adjacency.hpp"
#include "graph/rooted_forest.hpp"
#include "inc/edit.hpp"
#include "inc/incremental_solver.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "pram/types.hpp"
#include "prim/compact.hpp"
#include "prim/find_first.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/list_ranking.hpp"
#include "prim/merge.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"
#include "strings/lyndon.hpp"
#include "strings/matching.hpp"
#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "strings/string_sort.hpp"
#include "strings/suffix_array.hpp"
#include "util/dot_export.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
