// E4 — Lemma 3.8: sorting variable-length strings.  The paper's parallel
// fold-and-rank algorithm vs the comparison-sort baseline (O(n log n)
// symbol comparisons) and MSD radix quicksort, across length distributions.
#include <iostream>

#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "strings/string_sort.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E4 (Lemma 3.8): string sorting, total symbols N, m = N/8 strings\n\n";
  util::Table table({"N", "distribution", "algorithm", "ops", "ops/N", "ms"});
  util::Rng rng(4);
  const std::pair<util::LengthDistribution, const char*> dists[] = {
      {util::LengthDistribution::Uniform, "uniform"},
      {util::LengthDistribution::ManyShort, "many_short"},
      {util::LengthDistribution::FewLong, "few_long"},
  };
  for (int e = 16; e <= 20; e += 2) {
    const std::size_t total = std::size_t{1} << e;
    for (const auto& [dist, dist_name] : dists) {
      const auto list = util::random_string_list(total / 8, total, 1 << 16, dist, rng);
      const auto run = [&](const char* name, strings::StringSortStrategy strat) {
        pram::Metrics m;
        util::Timer timer;
        {
          pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
          const auto order = strings::sort_strings(list, strat);
          if (order.size() != list.size()) std::abort();
        }
        const double ms = timer.millis();
        table.add_row(total, dist_name, name, m.ops(),
                      static_cast<double>(m.ops()) / static_cast<double>(total), ms);
        json.record("e4_sort", total, std::string(name) + "/" + dist_name, pram::threads(), ms);
      };
      run("paper parallel", strings::StringSortStrategy::Parallel);
      run("std::stable_sort", strings::StringSortStrategy::StdSort);
      run("msd radix", strings::StringSortStrategy::MsdRadix);
    }
  }
  table.print();
  std::cout << "\n(paper algorithm's ops/N stays near-flat across N — the\n"
            << " O(n log log n) claim; the comparison baseline grows with lg m.)\n";
  return 0;
}
