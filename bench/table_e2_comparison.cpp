// E2 — the introduction's algorithm comparison, made measurable: the
// paper's parallel algorithm vs the O(n log n)-operation label-doubling
// class (Galley–Iliopoulos / Srikant stand-in), Hopcroft-style O(n log n)
// sequential refinement, the linear-time sequential pipeline ([16]'s role),
// and naive Moore refinement.
#include <iostream>

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "pram/metrics.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace sfcp;
  std::cout << "E2: SFCP algorithm comparison (paper intro, Table analogue)\n\n";
  util::Rng rng(7);
  util::Table table({"algorithm", "n", "blocks", "ops", "ops/n", "ms"});
  for (const std::size_t n : {std::size_t{1} << 16, std::size_t{1} << 19}) {
    const auto inst = util::random_function(n, 4, rng);
    const auto run = [&](const char* name, auto&& solver) {
      pram::Metrics m;
      util::Timer timer;
      u32 blocks = 0;
      {
        pram::ScopedMetrics guard(m);
        blocks = solver();
      }
      table.add_row(name, n, blocks, m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), timer.millis());
    };
    run("jaja-ryu parallel", [&] { return core::solve(inst, core::Options::parallel()).num_blocks; });
    run("sequential pipeline [16]", [&] { return core::solve(inst, core::Options::sequential()).num_blocks; });
    run("label doubling [10,18]", [&] { return core::solve_label_doubling(inst).num_blocks; });
    run("hopcroft refinement [1]", [&] { return core::solve_hopcroft(inst).num_blocks; });
    run("naive Moore refinement", [&] { return core::solve_naive_refinement(inst).num_blocks; });
  }
  table.print();
  std::cout << "\n(expected shape: label doubling pays a log n factor in ops; the\n"
            << " parallel pipeline stays near-linear; all block counts identical.)\n";
  return 0;
}
