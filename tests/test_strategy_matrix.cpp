// Strategy-matrix cross-validation: every combination of interchangeable
// strategies in the pipeline must produce bit-identical canonical Q-labels.
// This is the strongest internal-consistency check in the suite — a bug in
// any one strategy shows up as a mismatch against the other combinations.
#include <gtest/gtest.h>

#include <tuple>

#include "core/coarsest_partition.hpp"
#include "core/verify.hpp"
#include "pram/config.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using Combo = std::tuple<graph::CycleDetectStrategy, graph::CycleStructureStrategy,
                         core::TreeLabelStrategy, strings::MspStrategy, core::RenameBackend>;

class StrategyMatrix : public ::testing::TestWithParam<Combo> {};

core::Options options_for(const Combo& c) {
  core::Options opt;
  opt.cycle_detect = std::get<0>(c);
  opt.cycle_structure = std::get<1>(c);
  opt.tree_labeling.strategy = std::get<2>(c);
  opt.cycle_labeling.msp = std::get<3>(c);
  opt.cycle_labeling.partition_backend = std::get<4>(c);
  return opt;
}

TEST_P(StrategyMatrix, AgreesWithDefaultOnRandomInstances) {
  const auto opt = options_for(GetParam());
  util::Rng rng(13001);
  for (int iter = 0; iter < 8; ++iter) {
    const auto inst = util::random_function(1 + rng.below(800), 1 + rng.below(4), rng);
    const auto got = core::solve(inst, opt);
    const auto want = core::solve(inst);
    EXPECT_EQ(got.q, want.q) << "iter " << iter;
    EXPECT_EQ(got.num_blocks, want.num_blocks);
  }
}

TEST_P(StrategyMatrix, AgreesOnAdversarialShapes) {
  const auto opt = options_for(GetParam());
  util::Rng rng(13003);
  const auto shapes = {
      util::random_permutation(512, 3, rng),   // pure cycles
      util::long_tail(512, 8, 2, rng),         // deepest trees
      util::bushy(512, 4, 32, 2, rng),         // widest trees
      util::equal_cycles(16, 32, 3, 3, rng),   // Algorithm partition stress
      util::mergeable(512, 8, rng),            // high coarseness
  };
  for (const auto& inst : shapes) {
    const auto got = core::solve(inst, opt);
    const auto report = core::verify_solution(inst, got.q);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(got.q, core::solve(inst).q);
  }
}

TEST_P(StrategyMatrix, ThreadCountInvariance) {
  const auto opt = options_for(GetParam());
  util::Rng rng(13007);
  const auto inst = util::random_function(600, 3, rng);
  const auto want = core::solve(inst, opt);
  for (int t : {1, 2, 8}) {
    pram::ScopedThreads guard(t);
    EXPECT_EQ(core::solve(inst, opt).q, want.q) << "threads=" << t;
  }
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto& [cd, cs, tl, msp, rb] = info.param;
  std::string s;
  s += cd == graph::CycleDetectStrategy::Sequential       ? "DetSeq"
       : cd == graph::CycleDetectStrategy::FunctionPowers ? "DetPow"
                                                          : "DetEuler";
  s += cs == graph::CycleStructureStrategy::Sequential ? "StructSeq" : "StructJump";
  s += tl == core::TreeLabelStrategy::LevelSynchronous   ? "TreeLevel"
       : tl == core::TreeLabelStrategy::AncestorDoubling ? "TreeDouble"
                                                         : "TreeDfs";
  s += msp == strings::MspStrategy::Booth    ? "MspBooth"
       : msp == strings::MspStrategy::Simple ? "MspSimple"
                                             : "MspEff";
  s += rb == core::RenameBackend::Hashed ? "Hash" : "Sort";
  return s;
}

// A representative sub-lattice of the full product (the full product is
// 3*2*3*5*2 = 180 combos; we take the corners plus mixed interiors).
INSTANTIATE_TEST_SUITE_P(
    Combos, StrategyMatrix,
    ::testing::Values(
        Combo{graph::CycleDetectStrategy::EulerTour, graph::CycleStructureStrategy::PointerJumping,
              core::TreeLabelStrategy::LevelSynchronous, strings::MspStrategy::Efficient,
              core::RenameBackend::Hashed},
        Combo{graph::CycleDetectStrategy::Sequential, graph::CycleStructureStrategy::Sequential,
              core::TreeLabelStrategy::SequentialDFS, strings::MspStrategy::Booth,
              core::RenameBackend::Sorted},
        Combo{graph::CycleDetectStrategy::FunctionPowers,
              graph::CycleStructureStrategy::PointerJumping,
              core::TreeLabelStrategy::AncestorDoubling, strings::MspStrategy::Simple,
              core::RenameBackend::Hashed},
        Combo{graph::CycleDetectStrategy::EulerTour, graph::CycleStructureStrategy::Sequential,
              core::TreeLabelStrategy::AncestorDoubling, strings::MspStrategy::Efficient,
              core::RenameBackend::Sorted},
        Combo{graph::CycleDetectStrategy::FunctionPowers,
              graph::CycleStructureStrategy::Sequential, core::TreeLabelStrategy::LevelSynchronous,
              strings::MspStrategy::Booth, core::RenameBackend::Hashed},
        Combo{graph::CycleDetectStrategy::Sequential,
              graph::CycleStructureStrategy::PointerJumping, core::TreeLabelStrategy::SequentialDFS,
              strings::MspStrategy::Simple, core::RenameBackend::Sorted}),
    combo_name);

}  // namespace
}  // namespace sfcp
