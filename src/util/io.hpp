#pragma once
// (De)serialization of SFCP instances, solutions and edit streams, so
// examples and external tools can exchange workloads.
//
// Text instance format (`sfcp-instance v1`):
//
//   sfcp-instance v1
//   n
//   f[0] f[1] ... f[n-1]
//   b[0] b[1] ... b[n-1]
//
// Binary instance format (`sfcp-instance v2`) — the cheap one for large
// bench workloads:
//
//   8-byte magic 7F 's' 'f' 'c' 'p' 'v' '2' 0A, then n and both arrays as
//   little-endian u32 (f first, then b).
//
// load_instance autodetects the format from the first byte.
//
// Edit-stream format (`sfcp-edits v1`):
//
//   sfcp-edits v1
//   m
//   f x y     (set f[x] <- y)
//   b x v     (set b[x] <- v)
//
// Checkpoint format (`sfcp-checkpoint v1`) — a warm inc::IncrementalSolver
// (see IncrementalSolver::save/load, which own the read/write logic):
//
//   8-byte magic 7F 's' 'f' 'c' 'k' 'v' '1' 0A, then
//   * the instance as a complete `sfcp-instance v2` binary section,
//   * epoch (u64), label bound (u32), per-node labels and cycle ids (u32[n]),
//   * the cycle-class map (reduced B-strings + label blocks, key-sorted),
//   * the live cycles (id, class index, length; id-sorted) + next cycle id,
//   * the signature map ((B, Q∘f) -> label with refcounts, key-sorted),
//   * lifetime edit stats (6 x u64).
//   All integers little-endian; map sections sorted so equal engines produce
//   byte-identical checkpoints.
//
// Sharded checkpoint (`sfcp-checkpoint v1`, sharded magic) — a warm
// shard::ShardedEngine (see ShardedEngine::save_checkpoint/load):
//
//   8-byte magic 7F 's' 'f' 'c' 'k' 's' '1' 0A, then shard count (u32),
//   global epoch (u64), node count (u64), and per shard: its size (u32),
//   its ascending global node ids (u32[m]), and its solver's complete
//   embedded `sfcp-checkpoint v1` stream.  The cross-shard reconciliation
//   maps are derived state and are rebuilt on load.
//   sfcp::load_engine_checkpoint() autodetects plain vs. sharded streams.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <functional>
#include <istream>
#include <span>
#include <string>
#include <vector>

#include "graph/functional_graph.hpp"
#include "inc/edit.hpp"
#include "pram/types.hpp"

namespace sfcp::util {

enum class InstanceFormat {
  Text,    ///< sfcp-instance v1
  Binary,  ///< sfcp-instance v2
};

void save_instance(std::ostream& os, const graph::Instance& inst);
void save_instance_binary(std::ostream& os, const graph::Instance& inst);

/// Loads either format (autodetected).  Throws std::runtime_error on
/// malformed or truncated input, std::invalid_argument when the decoded
/// instance fails graph::validate (e.g. out-of-range f values).
graph::Instance load_instance(std::istream& is);

void save_instance_file(const std::string& path, const graph::Instance& inst,
                        InstanceFormat format = InstanceFormat::Text);
graph::Instance load_instance_file(const std::string& path);

// ---- edit streams --------------------------------------------------------

void save_edits(std::ostream& os, std::span<const inc::Edit> edits);

/// Throws std::runtime_error on malformed input.  Node/target ranges are NOT
/// checked here (they depend on the instance the stream is applied to);
/// inc::IncrementalSolver validates on apply.
std::vector<inc::Edit> load_edits(std::istream& is);

void save_edits_file(const std::string& path, std::span<const inc::Edit> edits);
std::vector<inc::Edit> load_edits_file(const std::string& path);

// ---- edit journal (`sfcp-journal v1`) ------------------------------------
// The durable, append-only binary flavour of the edit stream, written by
// serve::Journal ahead of every accepted edit batch (write-ahead logging).
// An 8-byte magic (7F 's' 'f' 'c' 'j' 'v' '1' 0A) opens the file; each
// record is
//
//   [u32 payload_len][payload][u32 crc32(payload)]
//
// with payload = epoch (u64, the engine's edit clock BEFORE the batch —
// replay skips records a checkpoint already reflects), count (u32), then
// count x (u8 kind: 0 = set_f / 1 = set_b, u32 node, u32 value).  All
// integers little-endian.  A crash can tear the tail mid-length-prefix,
// mid-record or mid-CRC; scan_journal() stops at the first tear and reports
// the byte offset of the bad record so recovery can truncate there.

/// The 8-byte magic opening an `sfcp-journal v1` file.
std::span<const unsigned char, 8> journal_magic() noexcept;

/// CRC-32 (IEEE 802.3, reflected) — the per-record checksum of the journal.
u32 crc32(const void* data, std::size_t len) noexcept;

struct JournalRecord {
  u64 epoch = 0;  ///< engine edit clock before the batch applied
  std::vector<inc::Edit> edits;

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// One record's framed bytes ([len][payload][crc]); what serve::Journal
/// appends (and fsyncs) as a unit.
std::string encode_journal_record(const JournalRecord& rec);

/// Writes the 8-byte journal magic (the file header).
void write_journal_header(std::ostream& os);

void append_journal_record(std::ostream& os, const JournalRecord& rec);

struct JournalScan {
  std::vector<JournalRecord> records;  ///< every intact record, in order
  u64 valid_bytes = 0;  ///< length of the good prefix (header + intact records)
  bool torn = false;    ///< the tail after valid_bytes is truncated/corrupt
  std::string error;    ///< when torn: what tore, naming the byte offset
};

/// Tolerant scan for crash recovery: decodes records until end of stream or
/// the first torn/corrupt tail, which is reported (with the byte offset of
/// the bad record) instead of thrown — a crashed writer legitimately leaves
/// one.  Throws std::runtime_error only for a missing/foreign header.
JournalScan scan_journal(std::istream& is);

/// Strict load: like scan_journal but a torn tail throws std::runtime_error
/// naming the byte offset of the bad record.
std::vector<JournalRecord> load_journal(std::istream& is);

// ---- fleet edit journal (`sfcp-fleet-journal v1`) ------------------------
// The multi-tenant flavour written by a fleet-mode serve::Server: identical
// [u32 len][payload][u32 crc32] framing under its own 8-byte magic
// (7F 's' 'f' 'c' 'F' 'v' '1' 0A), with the payload gaining a leading
// instance id:
//
//   instance (u64), epoch (u64, that INSTANCE's edit clock before the
//   batch), count (u32), then count x (u8 kind, u32 node, u32 value).
//
// Torn-tail semantics match scan_journal exactly.

/// The 8-byte magic opening an `sfcp-fleet-journal v1` file.
std::span<const unsigned char, 8> fleet_journal_magic() noexcept;

struct FleetJournalRecord {
  u64 instance = 0;  ///< fleet instance the batch targets
  u64 epoch = 0;     ///< that instance's edit clock before the batch applied
  std::vector<inc::Edit> edits;

  friend bool operator==(const FleetJournalRecord&, const FleetJournalRecord&) = default;
};

std::string encode_fleet_journal_record(const FleetJournalRecord& rec);

/// Writes the 8-byte fleet-journal magic (the file header).
void write_fleet_journal_header(std::ostream& os);

void append_fleet_journal_record(std::ostream& os, const FleetJournalRecord& rec);

struct FleetJournalScan {
  std::vector<FleetJournalRecord> records;  ///< every intact record, in order
  u64 valid_bytes = 0;  ///< length of the good prefix (header + intact records)
  bool torn = false;    ///< the tail after valid_bytes is truncated/corrupt
  std::string error;    ///< when torn: what tore, naming the byte offset
};

/// Tolerant fleet-journal scan; same contract as scan_journal.
FleetJournalScan scan_fleet_journal(std::istream& is);

/// Writes `path` atomically: `write` streams into `path + ".tmp"`, the
/// stream is closed and error-checked (so buffered-flush failures surface),
/// and only then renamed over `path` — a failing write never destroys an
/// existing good file.  With `durable`, the tmp file is fsynced before the
/// rename and the containing directory after it, so on return the new file
/// provably survives power loss — required whenever the caller is about to
/// discard the data's other copy (e.g. truncating a journal the checkpoint
/// absorbed).  Throws std::runtime_error on open/write/fsync/rename failure;
/// the tmp file is removed on every failure path.
void atomic_write_file(const std::string& path, const std::function<void(std::ostream&)>& write,
                       bool durable = false);

// ---- binary primitives ---------------------------------------------------
// Little-endian scalar/array IO shared by the `sfcp-instance v2` and
// `sfcp-checkpoint v1` formats (and available to future binary sections).

/// The 8-byte magic opening an `sfcp-checkpoint v1` stream.
std::span<const unsigned char, 8> checkpoint_magic() noexcept;

/// The 8-byte magic opening a sharded `sfcp-checkpoint v1` stream
/// (shard::ShardedEngine::save_checkpoint).
std::span<const unsigned char, 8> checkpoint_sharded_magic() noexcept;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_u32_array(std::span<const u32> a);
  void put_bytes(const void* data, std::size_t len);

 private:
  std::ostream& os_;
};

/// Throws std::runtime_error("<context>: truncated <what>") when the stream
/// runs out mid-field, so corrupt inputs fail with a named field.
class BinaryReader {
 public:
  BinaryReader(std::istream& is, const char* context) : is_(is), context_(context) {}
  u32 get_u32(const char* what);
  u64 get_u64(const char* what);
  void get_bytes(void* data, std::size_t len, const char* what);
  /// Reads n values, growing `out` in bounded chunks so corrupt headers
  /// claiming huge sizes fail on truncation instead of allocating n upfront.
  /// Templated over the vector type so arena-backed vectors (pram::avector)
  /// can load in place with the same bounded-growth behaviour.
  template <class Vec>
  void get_u32_vector(u64 n, Vec& out, const char* what) {
    constexpr u64 kChunk = u64{1} << 20;
    out.clear();
    out.reserve(static_cast<std::size_t>(n < kChunk ? n : kChunk));
    while (out.size() < n) {
      const std::size_t prev = out.size();
      const std::size_t take = static_cast<std::size_t>(std::min<u64>(kChunk, n - prev));
      out.resize(prev + take);
      if constexpr (std::endian::native == std::endian::little) {
        if (!is_.read(reinterpret_cast<char*>(out.data() + prev),
                      static_cast<std::streamsize>(take * sizeof(u32)))) {
          fail_(what);
        }
      } else {
        for (std::size_t i = prev; i < prev + take; ++i) out[i] = get_u32(what);
      }
    }
  }

 private:
  [[noreturn]] void fail_(const char* what) const;
  std::istream& is_;
  const char* context_;
};

}  // namespace sfcp::util
