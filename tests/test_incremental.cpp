// The incremental engine's contract: after any edit stream, the maintained
// partition is byte-identical (canonically) to a fresh core::solve on the
// edited instance — across generator regimes, edit mixes, and both the
// local-repair and full-recompute paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "core/registry.hpp"
#include "inc/incremental_solver.hpp"
#include "pram/metrics.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

void expect_matches_fresh(const inc::IncrementalSolver& solver, const std::string& what) {
  const core::Result fresh = core::solve(solver.instance());
  const core::Result snap = solver.snapshot();
  ASSERT_EQ(snap.num_blocks, fresh.num_blocks) << what;
  ASSERT_EQ(snap.q, fresh.q) << what;
  EXPECT_EQ(solver.num_blocks(), fresh.num_blocks) << what;
  // snapshot() is field-for-field identical to core::solve: the cycle and
  // kept/residual tree-node counters are maintained incrementally.
  EXPECT_EQ(snap.num_cycles, fresh.num_cycles) << what;
  EXPECT_EQ(snap.cycle_nodes, fresh.cycle_nodes) << what;
  EXPECT_EQ(snap.kept_tree_nodes, fresh.kept_tree_nodes) << what;
  EXPECT_EQ(snap.residual_tree_nodes, fresh.residual_tree_nodes) << what;
  // The view surface agrees byte-for-byte with the fresh solve.
  const core::PartitionView v = solver.view();
  ASSERT_EQ(v.num_classes(), fresh.num_blocks) << what;
  const std::span<const u32> vq = v.labels();
  ASSERT_TRUE(std::equal(vq.begin(), vq.end(), fresh.q.begin(), fresh.q.end())) << what;
  EXPECT_EQ(v.epoch(), solver.epoch()) << what;
}

void apply_single(inc::IncrementalSolver& solver, const inc::Edit& e) {
  if (e.kind == inc::Edit::Kind::SetF) {
    solver.set_f(e.node, e.value);
  } else {
    solver.set_b(e.node, e.value);
  }
}

/// Runs `count` edits of the given mix against `inst`, cross-checking the
/// maintained partition against a fresh solve every `check_every` edits.
inc::EditStats run_stream(graph::Instance inst, util::EditMix mix, std::size_t count, u64 seed,
                          std::size_t check_every = 10,
                          inc::RepairPolicy policy = {}) {
  util::Rng rng(seed);
  const auto stream = util::random_edit_stream(inst, count, mix, 6, rng);
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(), {}, policy);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    apply_single(solver, stream[i]);
    if ((i + 1) % check_every == 0) {
      expect_matches_fresh(solver, "after edit " + std::to_string(i + 1));
      if (::testing::Test::HasFatalFailure()) return solver.stats();
    }
  }
  expect_matches_fresh(solver, "final state");
  return solver.stats();
}

// ---- regime x mix matrix (>= 5 generator regimes, >= 100 edits each) -----

TEST(Incremental, RandomFunctionLocalized) {
  util::Rng rng(101);
  run_stream(util::random_function(2000, 4, rng), util::EditMix::LocalizedHotspot, 150, 1);
}

TEST(Incremental, RandomFunctionUniform) {
  util::Rng rng(102);
  run_stream(util::random_function(2000, 4, rng), util::EditMix::Uniform, 150, 2);
}

TEST(Incremental, RandomFunctionCycleChurn) {
  util::Rng rng(103);
  run_stream(util::random_function(2000, 4, rng), util::EditMix::CycleChurn, 120, 3);
}

TEST(Incremental, PermutationUniform) {
  util::Rng rng(104);
  run_stream(util::random_permutation(1500, 3, rng), util::EditMix::Uniform, 150, 4);
}

TEST(Incremental, PermutationCycleChurn) {
  util::Rng rng(105);
  run_stream(util::random_permutation(1500, 3, rng), util::EditMix::CycleChurn, 120, 5);
}

TEST(Incremental, LongTailLocalized) {
  util::Rng rng(106);
  run_stream(util::long_tail(2000, 64, 4, rng), util::EditMix::LocalizedHotspot, 150, 6);
}

TEST(Incremental, LongTailUniform) {
  util::Rng rng(107);
  run_stream(util::long_tail(2000, 64, 4, rng), util::EditMix::Uniform, 120, 7);
}

TEST(Incremental, BushyLocalized) {
  util::Rng rng(108);
  run_stream(util::bushy(2000, 8, 6, 4, rng), util::EditMix::LocalizedHotspot, 150, 8);
}

TEST(Incremental, BushyCycleChurn) {
  util::Rng rng(109);
  run_stream(util::bushy(2000, 8, 6, 4, rng), util::EditMix::CycleChurn, 120, 9);
}

TEST(Incremental, MergeableUniform) {
  util::Rng rng(110);
  run_stream(util::mergeable(2048, 4, rng), util::EditMix::Uniform, 150, 10);
}

TEST(Incremental, EqualCyclesCycleChurn) {
  util::Rng rng(111);
  run_stream(util::equal_cycles(32, 16, 3, 4, rng), util::EditMix::CycleChurn, 120, 11);
}

// ---- both paths are exercised and both are correct -----------------------

TEST(Incremental, LocalizedStreamStaysOnRepairPath) {
  util::Rng rng(201);
  const auto stats = run_stream(util::random_function(4096, 4, rng),
                                util::EditMix::LocalizedHotspot, 200, 12);
  EXPECT_GT(stats.repairs, 100u);
  EXPECT_EQ(stats.edits, 200u);
}

TEST(Incremental, ChurnStreamForcesRebuilds) {
  util::Rng rng(202);
  const auto stats = run_stream(util::random_permutation(2048, 3, rng),
                                util::EditMix::CycleChurn, 100, 13);
  EXPECT_GT(stats.rebuilds, 0u);
}

TEST(Incremental, RepairOnlyPolicyMatchesRebuildOnlyPolicy) {
  util::Rng rng(203);
  const auto inst = util::random_function(1200, 4, rng);
  util::Rng stream_rng(204);
  const auto stream = util::random_edit_stream(inst, 120, util::EditMix::Uniform, 6, stream_rng);

  inc::RepairPolicy repair_only;
  repair_only.max_dirty_fraction = 1.0;
  repair_only.min_dirty_absolute = inst.size();
  inc::RepairPolicy rebuild_only;
  rebuild_only.max_dirty_fraction = 0.0;
  rebuild_only.min_dirty_absolute = 0;

  inc::IncrementalSolver a(inst, core::Options::parallel(), {}, repair_only);
  inc::IncrementalSolver b(inst, core::Options::parallel(), {}, rebuild_only);
  for (const auto& e : stream) {
    apply_single(a, e);
    apply_single(b, e);
  }
  // The repair-only policy may still compact the label space via an
  // occasional rebuild; what matters is that (almost) every edit repairs.
  EXPECT_GT(a.stats().repairs, 110u);
  EXPECT_EQ(b.stats().repairs, 0u);
  EXPECT_GT(b.stats().rebuilds, 0u);
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.q, sb.q);
  EXPECT_EQ(sa.num_blocks, sb.num_blocks);
  expect_matches_fresh(a, "repair-only");
  expect_matches_fresh(b, "rebuild-only");
}

// ---- single-edit exhaustion on the paper's worked example ----------------

TEST(Incremental, PaperExampleEverySingleEdit) {
  const auto base = util::paper_example_2_2();
  const u32 n = static_cast<u32>(base.size());
  for (u32 x = 0; x < n; ++x) {
    for (u32 y = 0; y < n; ++y) {
      inc::IncrementalSolver solver(base);
      solver.set_f(x, y);
      expect_matches_fresh(solver, "set_f(" + std::to_string(x) + ", " + std::to_string(y) + ")");
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (u32 lbl = 0; lbl <= 4; ++lbl) {
      inc::IncrementalSolver solver(base);
      solver.set_b(x, lbl);
      expect_matches_fresh(solver, "set_b(" + std::to_string(x) + ", " + std::to_string(lbl) + ")");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- batched apply -------------------------------------------------------

TEST(Incremental, LargeBatchTakesSingleRebuild) {
  util::Rng rng(301);
  auto inst = util::random_function(1024, 4, rng);
  util::Rng stream_rng(302);
  const auto stream = util::random_edit_stream(inst, 200, util::EditMix::Uniform, 6, stream_rng);
  inc::IncrementalSolver solver(std::move(inst));
  solver.apply(stream);
  EXPECT_EQ(solver.stats().edits, 200u);
  EXPECT_EQ(solver.stats().rebuilds, 1u);
  EXPECT_EQ(solver.stats().repairs, 0u);
  expect_matches_fresh(solver, "after large batch");
}

TEST(Incremental, SmallBatchesRepair) {
  util::Rng rng(303);
  auto inst = util::random_function(4096, 4, rng);
  util::Rng stream_rng(304);
  const auto stream =
      util::random_edit_stream(inst, 120, util::EditMix::LocalizedHotspot, 6, stream_rng);
  inc::IncrementalSolver solver(std::move(inst));
  for (std::size_t i = 0; i < stream.size(); i += 4) {
    const std::size_t len = std::min<std::size_t>(4, stream.size() - i);
    solver.apply(std::span<const inc::Edit>(stream).subspan(i, len));
  }
  EXPECT_GT(solver.stats().repairs, 0u);
  expect_matches_fresh(solver, "after small batches");
}

// ---- strategies, metrics, errors, edge cases -----------------------------

TEST(Incremental, SequentialFallbackStrategy) {
  util::Rng rng(401);
  run_stream(util::random_function(1000, 4, rng), util::EditMix::Uniform, 100, 14, 10,
             inc::RepairPolicy{});
  auto inst = util::random_function(1000, 4, rng);
  util::Rng stream_rng(402);
  const auto stream = util::random_edit_stream(inst, 100, util::EditMix::CycleChurn, 6, stream_rng);
  inc::IncrementalSolver solver(std::move(inst), sfcp::registry().at("sequential"));
  for (const auto& e : stream) apply_single(solver, e);
  expect_matches_fresh(solver, "sequential fallback");
}

TEST(Incremental, EditPhaseMetricsReachTheSessionSink) {
  util::Rng rng(403);
  auto inst = util::random_function(2048, 4, rng);
  util::Rng stream_rng(404);
  const auto stream = util::random_edit_stream(inst, 80, util::EditMix::Uniform, 6, stream_rng);
  pram::Metrics metrics;
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(),
                                pram::ExecutionContext{}.with_metrics(&metrics));
  for (const auto& e : stream) apply_single(solver, e);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.edit_repairs, solver.stats().repairs);
  EXPECT_EQ(snap.edit_rebuilds, solver.stats().rebuilds);
  EXPECT_GE(snap.edit_dirty, solver.stats().dirty_nodes);
  EXPECT_GT(snap.operations, 0u);
}

TEST(Incremental, OutOfRangeEditsThrowAndLeaveStateIntact) {
  util::Rng rng(405);
  inc::IncrementalSolver solver(util::random_function(64, 3, rng));
  const auto before = solver.snapshot();
  EXPECT_THROW(solver.set_f(64, 0), std::invalid_argument);
  EXPECT_THROW(solver.set_f(0, 64), std::invalid_argument);
  EXPECT_THROW(solver.set_b(100, 0), std::invalid_argument);
  const std::vector<inc::Edit> batch = {inc::Edit::set_b(1, 2), inc::Edit::set_f(99, 0)};
  EXPECT_THROW(solver.apply(batch), std::invalid_argument);
  const auto after = solver.snapshot();
  EXPECT_EQ(after.q, before.q);
  EXPECT_EQ(solver.stats().edits, 0u);
}

TEST(Incremental, EmptyInstance) {
  inc::IncrementalSolver solver{graph::Instance{}};
  EXPECT_EQ(solver.num_blocks(), 0u);
  EXPECT_TRUE(solver.snapshot().q.empty());
  EXPECT_THROW(solver.set_b(0, 0), std::invalid_argument);
  solver.apply({});  // no-op
}

TEST(Incremental, NoopEditsAreCheap) {
  util::Rng rng(406);
  inc::IncrementalSolver solver(util::random_function(256, 3, rng));
  const u32 fx = solver.instance().f[7];
  const u32 bx = solver.instance().b[7];
  solver.set_f(7, fx);
  solver.set_b(7, bx);
  EXPECT_EQ(solver.stats().edits, 2u);
  EXPECT_EQ(solver.stats().repairs, 0u);
  EXPECT_EQ(solver.stats().rebuilds, 0u);
  expect_matches_fresh(solver, "after no-ops");
}

TEST(Incremental, SelfLoopAndTinyCycles) {
  // n=3 path 0<-1<-2 with a self-loop at 0; exercise every small restructure.
  graph::Instance inst;
  inst.f = {0, 0, 1};
  inst.b = {1, 1, 1};
  inc::IncrementalSolver solver(inst);
  solver.set_f(0, 1);  // 2-cycle {0,1}
  expect_matches_fresh(solver, "2-cycle");
  solver.set_b(1, 2);  // split the cycle classes
  expect_matches_fresh(solver, "relabel on cycle");
  solver.set_f(0, 0);  // back to self-loop
  expect_matches_fresh(solver, "self-loop again");
  solver.set_f(2, 2);  // second component
  expect_matches_fresh(solver, "two components");
  solver.set_b(2, 1);  // merge classes across components
  expect_matches_fresh(solver, "cross-component merge");
}

TEST(Incremental, LabelSpaceCompactsViaRebuild) {
  // A pure repair workload mints a fresh label per edit without ever
  // recycling retired ones; the engine must eventually compact through a
  // rebuild instead of growing the label space (and pop_) without bound.
  graph::Instance inst;
  const std::size_t n = 32;
  inst.f.resize(n);
  inst.b.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) inst.f[i] = static_cast<u32>((i + 1) % n);
  inst.f[n - 1] = static_cast<u32>(n - 1);  // tail into a self-loop; node 0 is a leaf
  inc::RepairPolicy repair_friendly;
  repair_friendly.max_dirty_fraction = 1.0;
  repair_friendly.min_dirty_absolute = n;
  inc::IncrementalSolver solver(inst, core::Options::parallel(), {}, repair_friendly);
  for (u32 i = 0; i < 6000; ++i) {
    solver.set_b(0, 1 + (i % 7));  // singleton dirty region, fresh label each time
  }
  EXPECT_GT(solver.stats().rebuilds, 0u);
  EXPECT_GT(solver.stats().repairs, 5000u);
  expect_matches_fresh(solver, "after label-space compaction");
}

TEST(Incremental, SnapshotReportsCycleCounts) {
  util::Rng rng(407);
  const auto inst = util::random_permutation(512, 3, rng);
  inc::IncrementalSolver solver(inst);
  const auto fresh = core::solve(inst);
  const auto snap = solver.snapshot();
  EXPECT_EQ(snap.num_cycles, fresh.num_cycles);
  EXPECT_EQ(snap.cycle_nodes, fresh.cycle_nodes);
  EXPECT_EQ(snap.cycle_nodes, 512u);
}

// ---- edit-stream serialization ------------------------------------------

TEST(Incremental, EditStreamRoundTrip) {
  util::Rng rng(501);
  const auto inst = util::random_function(300, 4, rng);
  util::Rng stream_rng(502);
  const auto stream = util::random_edit_stream(inst, 50, util::EditMix::Uniform, 6, stream_rng);
  std::stringstream ss;
  util::save_edits(ss, stream);
  const auto loaded = util::load_edits(ss);
  ASSERT_EQ(loaded, stream);
}

TEST(Incremental, EditStreamRejectsMalformed) {
  std::stringstream bad_header("sfcp-edits v9\n0\n");
  EXPECT_THROW(util::load_edits(bad_header), std::runtime_error);
  std::stringstream truncated("sfcp-edits v1\n3\nf 0 1\n");
  EXPECT_THROW(util::load_edits(truncated), std::runtime_error);
  std::stringstream bad_op("sfcp-edits v1\n1\nz 0 1\n");
  EXPECT_THROW(util::load_edits(bad_op), std::runtime_error);
}

}  // namespace
}  // namespace sfcp
