// E6 — tree node labelling (Lemma 4.3): ablation of the three step-5
// strategies (level-synchronous / ancestor doubling / sequential DFS) on
// deep-path vs bushy vs mergeable forests.
#include <benchmark/benchmark.h>

#include "core/coarsest_partition.hpp"
#include "core/solver.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

graph::Instance shaped(std::size_t n, int kind, util::Rng& rng) {
  switch (kind) {
    case 0: return util::long_tail(n, 4, 2, rng);      // one deep path
    case 1: return util::bushy(n, 4, 4, 3, rng);       // shallow and wide
    default: return util::mergeable(n, 4, rng);        // many kept nodes
  }
}

template <core::TreeLabelStrategy S>
void BM_TreeLabeling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  util::Rng rng(n * 31 + kind);
  const auto inst = shaped(n, kind, rng);
  core::Options opt = core::Options::parallel();
  opt.tree_labeling.strategy = S;
  core::Solver solver(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(kind == 0 ? "deep_path" : kind == 1 ? "bushy" : "mergeable");
}

BENCHMARK(BM_TreeLabeling<core::TreeLabelStrategy::LevelSynchronous>)
    ->ArgsProduct({{1 << 14, 1 << 18}, {0, 1, 2}});
BENCHMARK(BM_TreeLabeling<core::TreeLabelStrategy::AncestorDoubling>)
    ->ArgsProduct({{1 << 14, 1 << 18}, {0, 1, 2}});
BENCHMARK(BM_TreeLabeling<core::TreeLabelStrategy::SequentialDFS>)
    ->ArgsProduct({{1 << 14, 1 << 18}, {0, 1, 2}});

}  // namespace
