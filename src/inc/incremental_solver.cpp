#include "inc/incremental_solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "pram/metrics.hpp"
#include "prim/rename.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"

namespace sfcp::inc {

std::size_t IncrementalSolver::VecHash::operator()(const std::vector<u32>& v) const noexcept {
  u64 h = 0x9e3779b97f4a7c15ull ^ (static_cast<u64>(v.size()) * 0xbf58476d1ce4e5b9ull);
  for (u32 x : v) {
    u64 z = h + x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = z ^ (z >> 27);
  }
  return static_cast<std::size_t>(h);
}

IncrementalSolver::IncrementalSolver(graph::Instance inst, core::Options opt,
                                     pram::ExecutionContext ctx, RepairPolicy policy)
    : inst_(std::move(inst)), solver_(opt, ctx), policy_(policy) {
  rebuild_();
}

core::Result IncrementalSolver::snapshot() const {
  core::Result r;
  auto canon = prim::canonicalize_labels(q_);
  r.q = std::move(canon.labels);
  r.num_blocks = canon.num_classes;
  r.num_cycles = static_cast<u32>(cycles_.size());
  r.cycle_nodes = static_cast<u32>(live_cycle_nodes_);
  return r;
}

void IncrementalSolver::validate_edit_(const Edit& e) const {
  const std::size_t n = inst_.size();
  if (e.node >= n) {
    throw std::invalid_argument("IncrementalSolver: edit node " + std::to_string(e.node) +
                                " out of range (n = " + std::to_string(n) + ")");
  }
  if (e.kind == Edit::Kind::SetF && e.value >= n) {
    throw std::invalid_argument("IncrementalSolver: set_f target " + std::to_string(e.value) +
                                " out of range (n = " + std::to_string(n) + ")");
  }
}

void IncrementalSolver::set_f(u32 x, u32 y) {
  const Edit e = Edit::set_f(x, y);
  validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  apply_one_(e);
}

void IncrementalSolver::set_b(u32 x, u32 label) {
  const Edit e = Edit::set_b(x, label);
  validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  apply_one_(e);
}

void IncrementalSolver::apply(std::span<const Edit> edits) {
  for (const Edit& e : edits) validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  const std::size_t n = inst_.size();
  if (n > 0 && edits.size() >= policy_.batch_rebuild_threshold(n)) {
    // The batch alone rivals the instance size: skip per-edit repair work
    // (including predecessor-list maintenance — rebuild_ reconstructs the
    // lists from scratch), apply the raw array updates and re-solve once.
    for (const Edit& e : edits) {
      ++stats_.edits;
      if (e.kind == Edit::Kind::SetF) {
        inst_.f[e.node] = e.value;
      } else {
        inst_.b[e.node] = e.value;
      }
    }
    ++stats_.rebuilds;
    pram::charge_edit(false, n);
    rebuild_();
    return;
  }
  for (const Edit& e : edits) apply_one_(e);
}

void IncrementalSolver::raw_apply_(const Edit& e) {
  if (e.kind == Edit::Kind::SetF) {
    preds_.retarget(e.node, inst_.f[e.node], e.value);
    inst_.f[e.node] = e.value;
  } else {
    inst_.b[e.node] = e.value;
  }
}

void IncrementalSolver::apply_one_(const Edit& e) {
  ++stats_.edits;
  const bool noop = e.kind == Edit::Kind::SetF ? inst_.f[e.node] == e.value
                                               : inst_.b[e.node] == e.value;
  if (noop) return;
  const std::size_t n = inst_.size();
  const bool within = graph::dirty_region(preds_, e.node, policy_.dirty_budget(n), dirty_buf_);
  // Minting labels never reuses retired ones and pop_ grows with the label
  // space, so a long repair streak must occasionally compact via a rebuild
  // (which renames back to [0, blocks)).  Capping at ~4n keeps memory
  // proportional to the instance while amortizing the rebuild over >= 3n
  // minted labels.
  const u64 label_cap =
      std::min<u64>(kNone - 2, std::max<u64>(4 * static_cast<u64>(n), 4096));
  const bool labels_ok = static_cast<u64>(next_label_) + dirty_buf_.size() < label_cap;
  raw_apply_(e);
  if (within && labels_ok) {
    repair_(e.node, dirty_buf_);
    ++stats_.repairs;
    stats_.dirty_nodes += dirty_buf_.size();
    pram::charge_edit(true, dirty_buf_.size());
  } else {
    ++stats_.rebuilds;
    pram::charge_edit(false, n);
    rebuild_();
  }
}

u32 IncrementalSolver::fresh_label_() {
  pop_.push_back(0);
  return next_label_++;
}

void IncrementalSolver::pop_inc_(u32 label) {
  if (pop_[label]++ == 0) ++distinct_;
}

void IncrementalSolver::pop_dec_(u32 label) {
  if (--pop_[label] == 0) --distinct_;
}

void IncrementalSolver::sig_remove_(u64 sig) {
  auto it = sigs_.find(sig);
  if (it == sigs_.end()) return;
  if (--it->second.refs == 0) sigs_.erase(it);
}

u32 IncrementalSolver::sig_assign_(u32 v) {
  const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
  auto [it, inserted] = sigs_.try_emplace(sig);
  if (inserted) it->second.label = fresh_label_();
  ++it->second.refs;
  sig_key_[v] = sig;
  return it->second.label;
}

void IncrementalSolver::destroy_cycle_(u32 id) {
  auto it = cycles_.find(id);
  auto cit = classes_.find(*it->second.key);
  if (--cit->second.refs == 0) classes_.erase(cit);
  live_cycle_nodes_ -= it->second.length;
  cycles_.erase(it);
  ++stats_.cycles_destroyed;
}

void IncrementalSolver::repair_(u32 x, std::span<const u32> dirty) {
  // Phase 1 — retract: every dirty node gives back its label population and
  // signature; the only cycle that can intersect the dirty set is x's own
  // (any cycle node reaching x must share x's cycle), so at most one class
  // reference is released.
  if (cycle_id_[x] != kNone) destroy_cycle_(cycle_id_[x]);
  for (u32 v : dirty) {
    pop_dec_(q_[v]);
    sig_remove_(sig_key_[v]);
    on_cycle_[v] = 0;
    cycle_id_[v] = kNone;
  }

  // Phase 2 — does the edited graph close a cycle through x?  Such a cycle
  // lies wholly inside the dirty set (each of its nodes reaches x), so a
  // forward walk of at most |dirty| steps either returns to x or rules the
  // cycle out.
  cyc_buf_.clear();
  cyc_buf_.push_back(x);
  u32 z = inst_.f[x];
  while (z != x && cyc_buf_.size() < dirty.size()) {
    cyc_buf_.push_back(z);
    z = inst_.f[z];
  }

  // Phase 3 — canonicalize and label the new cycle: reduce its B-string to
  // the smallest period, rotate to the minimal starting point, and match the
  // reduced string against the global class map, merging with any equivalent
  // cycle elsewhere in the graph (or minting a fresh label block).
  if (z == x) {
    const std::size_t len = cyc_buf_.size();
    str_buf_.resize(len);
    for (std::size_t i = 0; i < len; ++i) str_buf_[i] = inst_.b[cyc_buf_[i]];
    const u32 p = strings::smallest_period_seq(str_buf_);
    const u32 j0 = strings::minimal_starting_point(std::span<const u32>(str_buf_).first(p),
                                                   strings::MspStrategy::Booth);
    std::vector<u32> key(p);
    for (u32 t = 0; t < p; ++t) key[t] = str_buf_[(j0 + t) % p];
    auto [it, inserted] = classes_.try_emplace(std::move(key));
    CycleClass& cls = it->second;
    if (inserted) {
      cls.labels.resize(p);
      for (u32 t = 0; t < p; ++t) cls.labels[t] = fresh_label_();
    }
    ++cls.refs;
    const u32 id = next_cycle_id_++;
    cycles_.emplace(id, CycleRec{&it->first, static_cast<u32>(len)});
    for (std::size_t i = 0; i < len; ++i) {
      const u32 v = cyc_buf_[i];
      q_[v] = cls.labels[(static_cast<u32>(i % p) + p - j0) % p];
      pop_inc_(q_[v]);
      on_cycle_[v] = 1;
      cycle_id_[v] = id;
    }
    live_cycle_nodes_ += len;
    ++stats_.cycles_created;
    // Signatures only once every cycle label is final (f of a cycle node is
    // the next cycle node).
    for (std::size_t i = 0; i < len; ++i) {
      const u32 v = cyc_buf_[i];
      const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
      auto [sit, fresh] = sigs_.try_emplace(sig);
      if (fresh) sit->second.label = q_[v];
      ++sit->second.refs;
      sig_key_[v] = sig;
    }
  }

  // Phase 4 — dirty tree nodes, in BFS layer order from x: f(v) is either
  // clean, on the new cycle, or an earlier layer, so its label is final and
  // the signature map realizes Q(v) = Q(u) <=> B(v)=B(u) ^ Q(f(v))=Q(f(u)).
  for (u32 v : dirty) {
    if (on_cycle_[v]) continue;
    q_[v] = sig_assign_(v);
    pop_inc_(q_[v]);
  }
  pram::charge(3 * dirty.size());
}

void IncrementalSolver::rebuild_() {
  const core::Result r = solver_.solve(inst_);
  const std::size_t n = inst_.size();
  q_ = r.q;
  next_label_ = r.num_blocks;
  distinct_ = r.num_blocks;
  pop_.assign(next_label_, 0);
  for (u32 l : q_) ++pop_[l];
  preds_.rebuild(inst_.f);
  sig_key_.assign(n, 0);
  cycle_id_.assign(n, kNone);
  sigs_.clear();
  classes_.clear();
  cycles_.clear();
  next_cycle_id_ = 0;
  live_cycle_nodes_ = 0;
  if (n == 0) {
    on_cycle_.clear();
    return;
  }
  // The solver's warm workspace still holds this solve's cycle structure and
  // per-cycle period/msp diagnostics — exactly the scaffolding the class and
  // signature maps are seeded from.
  const core::SolveWorkspace& ws = solver_.workspace();
  on_cycle_.assign(ws.cs.on_cycle.begin(), ws.cs.on_cycle.end());
  live_cycle_nodes_ = ws.cs.cycle_nodes.size();
  const std::size_t k = ws.cs.num_cycles();
  for (std::size_t c = 0; c < k; ++c) {
    const u32 len = ws.cs.cycle_length(c);
    const u32 p = ws.cl.period[c];
    const u32 j0 = ws.cl.msp[c];
    std::vector<u32> key(p);
    std::vector<u32> labels(p);
    for (u32 t = 0; t < p; ++t) {
      key[t] = inst_.b[ws.cs.node_at(c, (j0 + t) % p)];
      labels[t] = q_[ws.cs.node_at(c, (j0 + t) % len)];
    }
    auto [it, inserted] = classes_.try_emplace(std::move(key));
    if (inserted) it->second.labels = std::move(labels);
    ++it->second.refs;
    const u32 id = next_cycle_id_++;
    cycles_.emplace(id, CycleRec{&it->first, len});
    for (u32 rk = 0; rk < len; ++rk) cycle_id_[ws.cs.node_at(c, rk)] = id;
  }
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
    auto [it, inserted] = sigs_.try_emplace(sig);
    if (inserted) it->second.label = q_[v];
    ++it->second.refs;
    sig_key_[v] = sig;
  }
  pram::charge(4 * n);
}

}  // namespace sfcp::inc
