#include "strings/matching.hpp"

#include <algorithm>
#include <stdexcept>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "strings/lyndon.hpp"
#include "strings/period.hpp"

namespace sfcp::strings {

std::vector<u32> failure_function(std::span<const u32> s) {
  const std::size_t n = s.size();
  std::vector<u32> fail(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    u32 k = fail[i - 1];
    while (k > 0 && s[i] != s[k]) k = fail[k - 1];
    if (s[i] == s[k]) ++k;
    fail[i] = k;
  }
  pram::charge(2 * n);
  return fail;
}

namespace {

std::vector<u32> match_kmp(std::span<const u32> text, std::span<const u32> pattern) {
  const std::size_t n = text.size(), m = pattern.size();
  std::vector<u32> hits;
  const auto fail = failure_function(pattern);
  u32 k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (k > 0 && text[i] != pattern[k]) k = fail[k - 1];
    if (text[i] == pattern[k]) ++k;
    if (k == m) {
      hits.push_back(static_cast<u32>(i + 1 - m));
      k = fail[k - 1];
    }
  }
  pram::charge(2 * n);
  return hits;
}

std::vector<u32> match_z(std::span<const u32> text, std::span<const u32> pattern) {
  const std::size_t n = text.size(), m = pattern.size();
  // z over pattern # text, with # = a symbol outside both alphabets:
  // use max symbol + 1 (u32 inputs are labels < 2^32 - 2 by convention).
  u32 sep = 0;
  for (const u32 c : pattern) sep = std::max(sep, c);
  for (const u32 c : text) sep = std::max(sep, c);
  ++sep;
  std::vector<u32> cat;
  cat.reserve(m + 1 + n);
  cat.insert(cat.end(), pattern.begin(), pattern.end());
  cat.push_back(sep);
  cat.insert(cat.end(), text.begin(), text.end());
  const auto z = z_function(cat);
  std::vector<u32> hits;
  for (std::size_t i = 0; i + m <= n; ++i) {
    if (z[m + 1 + i] >= m) hits.push_back(static_cast<u32>(i));
  }
  pram::charge(2 * (n + m));
  return hits;
}

std::vector<u32> match_parallel(std::span<const u32> text, std::span<const u32> pattern) {
  const std::size_t n = text.size(), m = pattern.size();
  // RankTable over pattern ++ text: candidate i matches iff the length-m
  // substrings at offsets 0 (pattern) and m+i (text) are equal — one O(1)
  // doubling-rank equality test per candidate, all in parallel.
  std::vector<u32> cat;
  cat.reserve(m + n);
  cat.insert(cat.end(), pattern.begin(), pattern.end());
  cat.insert(cat.end(), text.begin(), text.end());
  const RankTable table(cat);
  const std::size_t candidates = n + 1 - m;
  std::vector<u8> hit(candidates, 0);
  pram::parallel_for(0, candidates, [&](std::size_t i) {
    hit[i] = table.equal(0, static_cast<u32>(m + i), static_cast<u32>(m)) ? 1 : 0;
  });
  return prim::pack_index(hit);
}

}  // namespace

std::vector<u32> find_occurrences(std::span<const u32> text, std::span<const u32> pattern,
                                  MatchStrategy strategy) {
  const std::size_t n = text.size(), m = pattern.size();
  if (m == 0) {
    std::vector<u32> all(n + 1);
    for (std::size_t i = 0; i <= n; ++i) all[i] = static_cast<u32>(i);
    return all;
  }
  if (m > n) return {};
  switch (strategy) {
    case MatchStrategy::Kmp:
      return match_kmp(text, pattern);
    case MatchStrategy::Z:
      return match_z(text, pattern);
    case MatchStrategy::Parallel:
      return match_parallel(text, pattern);
  }
  return match_kmp(text, pattern);
}

bool circular_contains(std::span<const u32> hay, std::span<const u32> needle) {
  if (needle.size() > hay.size()) return false;
  if (needle.empty()) return true;
  std::vector<u32> doubled;
  doubled.reserve(2 * hay.size());
  doubled.insert(doubled.end(), hay.begin(), hay.end());
  doubled.insert(doubled.end(), hay.begin(), hay.end());
  const auto hits = find_occurrences(doubled, needle, MatchStrategy::Kmp);
  for (const u32 h : hits) {
    if (h < hay.size()) return true;
  }
  return false;
}

u64 count_occurrences(std::span<const u32> text, std::span<const u32> pattern) {
  const std::size_t n = text.size(), m = pattern.size();
  if (m == 0) return n + 1;
  if (m > n) return 0;
  const auto fail = failure_function(pattern);
  u64 count = 0;
  u32 k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (k > 0 && text[i] != pattern[k]) k = fail[k - 1];
    if (text[i] == pattern[k]) ++k;
    if (k == m) {
      ++count;
      k = fail[k - 1];
    }
  }
  pram::charge(2 * n);
  return count;
}

}  // namespace sfcp::strings
