#!/usr/bin/env python3
"""Perf-trajectory diff for BENCH_*.json records.

Every bench/table target in this repo appends JSON-lines records of the form

    {"name":"BM_ShardedEdits/k8/localized","n":0,"strategy":"...","threads":8,"ms":1.23}

via `--json <path>` (src/util/bench_json.hpp); CI uploads one file per
target per commit.  This tool compares two such files:

    tools/bench_diff.py OLD.json NEW.json [--threshold 20]

Records are keyed by (name, n, strategy, threads); repeated measurements of
one key reduce to the minimum ms (best-of, robust to scheduler noise).  For
every key present in both files a delta is printed; keys present in only one
file are listed but never fail the run.  Exit status is 1 iff any common
benchmark regressed by more than --threshold percent (default 20), making it
usable as a CI gate or an advisory step.

`--selftest` runs the built-in checks and exits (used by ctest).
"""

import argparse
import json
import os
import sys
import tempfile


def load_records(path):
    """path -> {key: best_ms}; tolerates blank lines, rejects bad JSON."""
    best = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not a JSON record: {exc}")
            try:
                key = (rec["name"], int(rec.get("n", 0)), rec.get("strategy", ""),
                       int(rec.get("threads", 0)))
                ms = float(rec["ms"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SystemExit(f"{path}:{lineno}: missing/invalid field: {exc}")
            if key not in best or ms < best[key]:
                best[key] = ms
    return best


def key_str(key):
    name, n, strategy, threads = key
    parts = [name]
    if strategy:
        parts.append(strategy)
    if n:
        parts.append(f"n={n}")
    if threads:
        parts.append(f"t={threads}")
    return " ".join(parts)


def diff(old, new, threshold):
    """Returns (lines, regressions) for the report."""
    lines = []
    regressions = []
    common = sorted(set(old) & set(new))
    width = max((len(key_str(k)) for k in common), default=10)
    for key in common:
        o, n = old[key], new[key]
        delta = (n - o) / o * 100.0 if o > 0 else 0.0
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            regressions.append(key)
        elif delta < -threshold:
            flag = "  improved"
        lines.append(f"{key_str(key):<{width}}  {o:>10.3f}ms -> {n:>10.3f}ms  "
                     f"{delta:>+7.1f}%{flag}")
    for key in sorted(set(old) - set(new)):
        lines.append(f"{key_str(key)}: only in old record (skipped)")
    for key in sorted(set(new) - set(old)):
        lines.append(f"{key_str(key)}: new benchmark (no baseline)")
    if not common:
        lines.append("no common benchmarks between the two records")
    return lines, regressions


def selftest():
    def record(name, ms, strategy="s", n=64, threads=2):
        return json.dumps({"name": name, "n": n, "strategy": strategy,
                           "threads": threads, "ms": ms})

    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([
                record("a", 10.0), record("a", 12.0),   # best-of -> 10.0
                record("b", 5.0), record("gone", 1.0),
            ]) + "\n")
        with open(new_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([
                record("a", 11.0),                       # +10% — within threshold
                record("b", 9.0),                        # +80% — regression
                record("fresh", 2.0),
            ]) + "\n")

        old, new = load_records(old_path), load_records(new_path)
        assert old[("a", 64, "s", 2)] == 10.0, "best-of reduction failed"
        lines, regressions = diff(old, new, threshold=20.0)
        assert len(regressions) == 1 and regressions[0][0] == "b", regressions
        assert any("REGRESSION" in l for l in lines)
        assert any("only in old" in l for l in lines)
        assert any("no baseline" in l for l in lines)
        _, none = diff(old, new, threshold=100.0)
        assert none == [], "threshold not respected"
        _, empty = diff({}, new, threshold=20.0)
        assert empty == [], "disjoint records must not regress"
    print("bench_diff selftest: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.old or not args.new:
        parser.error("OLD and NEW record files are required (or --selftest)")

    old, new = load_records(args.old), load_records(args.new)
    lines, regressions = diff(old, new, args.threshold)
    print(f"bench_diff: {args.old} -> {args.new} (threshold {args.threshold:.0f}%)")
    for line in lines:
        print(f"  {line}")
    if regressions:
        print(f"bench_diff: {len(regressions)} benchmark(s) regressed "
              f"by more than {args.threshold:.0f}%")
        return 1
    print("bench_diff: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
