// Unit tests for list ranking (sequential / pointer jumping / ruling set).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "prim/list_ranking.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using prim::list_rank;
using prim::ListRankStrategy;

// Builds a successor array holding the given chains (each a vector of node
// ids ending the list).
std::vector<u32> chains_to_next(std::size_t n, const std::vector<std::vector<u32>>& chains) {
  std::vector<u32> next(n, kNone);
  for (const auto& c : chains) {
    for (std::size_t i = 0; i + 1 < c.size(); ++i) next[c[i]] = c[i + 1];
  }
  return next;
}

std::vector<u32> reference_ranks(std::span<const u32> next) {
  std::vector<u32> rank(next.size(), 0);
  for (u32 v = 0; v < next.size(); ++v) {
    u32 r = 0, w = v;
    while (next[w] != kNone) {
      w = next[w];
      ++r;
    }
    rank[v] = r;
  }
  return rank;
}

class ListRankStrategies : public ::testing::TestWithParam<ListRankStrategy> {};

TEST_P(ListRankStrategies, Empty) {
  std::vector<u32> next;
  EXPECT_TRUE(list_rank(next, GetParam()).empty());
}

TEST_P(ListRankStrategies, SingleNode) {
  std::vector<u32> next{kNone};
  EXPECT_EQ(list_rank(next, GetParam()), (std::vector<u32>{0}));
}

TEST_P(ListRankStrategies, SimpleChain) {
  // 2 -> 0 -> 1 (end)
  std::vector<u32> next{1, kNone, 0};
  EXPECT_EQ(list_rank(next, GetParam()), (std::vector<u32>{1, 0, 2}));
}

TEST_P(ListRankStrategies, TwoChains) {
  const auto next = chains_to_next(6, {{0, 2, 4}, {1, 3, 5}});
  EXPECT_EQ(list_rank(next, GetParam()), reference_ranks(next));
}

TEST_P(ListRankStrategies, LongChainExactRanks) {
  const std::size_t n = 10000;
  // identity chain 0 -> 1 -> ... -> n-1
  std::vector<u32> next(n);
  for (u32 i = 0; i < n; ++i) next[i] = i + 1 < n ? i + 1 : kNone;
  const auto rank = list_rank(next, GetParam());
  for (u32 i = 0; i < n; ++i) EXPECT_EQ(rank[i], n - 1 - i);
}

TEST_P(ListRankStrategies, RandomManyChainsMatchReference) {
  util::Rng rng(55);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = 1 + rng.below(3000);
    std::vector<u32> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);
    // Random chain boundaries.
    std::vector<std::vector<u32>> chains;
    std::size_t pos = 0;
    while (pos < n) {
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(n - pos, 200));
      chains.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(pos),
                          perm.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
    const auto next = chains_to_next(n, chains);
    EXPECT_EQ(list_rank(next, GetParam()), reference_ranks(next)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ListRankStrategies,
                         ::testing::Values(ListRankStrategy::Sequential,
                                           ListRankStrategy::PointerJumping,
                                           ListRankStrategy::RulingSet));

TEST(ListRankAgreement, StrategiesAgreeOnLargeInput) {
  util::Rng rng(77);
  const std::size_t n = 50000;
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);
  std::vector<u32> next(n, kNone);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!rng.chance(0.001)) next[perm[i]] = perm[i + 1];  // occasional list breaks
  }
  const auto seq = list_rank(next, ListRankStrategy::Sequential);
  EXPECT_EQ(list_rank(next, ListRankStrategy::PointerJumping), seq);
  EXPECT_EQ(list_rank(next, ListRankStrategy::RulingSet), seq);
}

}  // namespace
}  // namespace sfcp
