#pragma once
// Parallel suffix array by prefix doubling — the realization of Vishkin's
// observation (cited in Section 3.1) that the m.s.p. of a circular string
// can be obtained from "an appropriate suffix tree" in O(log n) time using
// O(n log n) operations.
//
// We substitute the suffix *array* for the suffix tree: a prefix-doubling
// construction (Manber–Myers style, parallelized with the library's stable
// integer sort) performs O(log n) rounds of pair renaming, O(n) work per
// round — exactly the O(n log n)-operation profile the paper attributes to
// the suffix-tree route, and therefore the natural baseline to compare
// Algorithm "efficient m.s.p." (Lemma 3.7, O(n log log n) operations)
// against.
//
// The module also provides the LCP array (Kasai) and generic rotation /
// suffix comparison helpers used by tests and benches.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

/// Suffix array of a string plus its inverse permutation.
struct SuffixArray {
  std::vector<u32> sa;    ///< sa[r] = start of the r-th smallest suffix
  std::vector<u32> rank;  ///< rank[i] = r iff sa[r] == i
  u32 rounds = 0;         ///< number of doubling rounds performed

  std::size_t size() const { return sa.size(); }
};

/// Builds the suffix array with parallel prefix doubling: O(log n) rounds,
/// each a stable radix sort of (rank[i], rank[i+k]) pairs — O(n log n) work,
/// O(log n · log n / log log n)-ish depth on the PRAM substrate.
SuffixArray build_suffix_array(std::span<const u32> s);

/// Sequential reference construction (sorts suffixes with std::sort and
/// O(n)-deep comparisons); O(n^2 log n) worst case, for testing only.
SuffixArray build_suffix_array_reference(std::span<const u32> s);

/// LCP array via Kasai's algorithm: lcp[r] = longest common prefix of the
/// suffixes at sorted positions r-1 and r (lcp[0] = 0).  O(n) sequential.
std::vector<u32> lcp_kasai(std::span<const u32> s, const SuffixArray& sa);

/// Minimal starting point of the circular string s obtained from the suffix
/// array of s·s (the doubled string).  Handles repeating inputs by reducing
/// to the smallest repeating prefix first, like the other m.s.p. entry
/// points.  O(n log n) work — the "Vishkin suffix tree" baseline of §3.1.
u32 msp_suffix_array(std::span<const u32> s);

/// Lexicographic three-way comparison of two rotations of the same circular
/// string: negative / 0 / positive as rotation i <, ==, > rotation j.
int compare_rotations(std::span<const u32> s, u32 i, u32 j);

/// Number of distinct substrings of s, a classic SA+LCP identity used as a
/// cross-check between the two construction paths (n(n+1)/2 - sum lcp).
u64 count_distinct_substrings(std::span<const u32> s);

}  // namespace sfcp::strings
