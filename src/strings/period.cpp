#include "strings/period.hpp"

#include <bit>
#include <cassert>

#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"

namespace sfcp::strings {

u32 smallest_period_seq(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n == 0) return 0;
  // KMP failure function; the smallest period of the whole string is
  // n - fail[n] when it divides n, else the string is primitive.
  std::vector<u32> fail(n + 1, 0);
  u32 k = 0;
  for (std::size_t i = 1; i < n; ++i) {
    while (k > 0 && s[i] != s[k]) k = fail[k];
    if (s[i] == s[k]) ++k;
    fail[i + 1] = k;
  }
  pram::charge(2 * n);
  const u32 p = static_cast<u32>(n) - fail[n];
  return (n % p == 0) ? p : static_cast<u32>(n);
}

bool is_repeating(std::span<const u32> s) {
  return !s.empty() && smallest_period_seq(s) < s.size();
}

RankTable::RankTable(std::span<const u32> s) : n_(s.size()) {
  if (n_ == 0) return;
  // Level 0: dense order-preserving ranks of single symbols, shifted by 1 so
  // that 0 is the out-of-range sentinel (smaller than every real symbol).
  std::vector<u64> keys(n_);
  pram::parallel_for(0, n_, [&](std::size_t i) { keys[i] = s[i]; });
  auto r0 = prim::rename_sorted(keys);
  levels_.emplace_back(n_);
  pram::parallel_for(0, n_, [&](std::size_t i) { levels_[0][i] = r0.labels[i] + 1; });
  // Level j from level j-1 by pairing ranks 2^{j-1} apart.
  for (u32 half = 1; half < n_; half <<= 1) {
    const auto& prev = levels_.back();
    std::vector<u64> pk(n_);
    pram::parallel_for(0, n_, [&](std::size_t i) {
      const u32 right = (i + half < n_) ? prev[i + half] : 0u;
      pk[i] = pack_pair(prev[i], right);
    });
    auto rr = prim::rename_sorted(pk);
    levels_.emplace_back(n_);
    auto& cur = levels_.back();
    pram::parallel_for(0, n_, [&](std::size_t i) { cur[i] = rr.labels[i] + 1; });
  }
}

bool RankTable::equal(u32 i, u32 j, u32 len) const {
  assert(i + len <= n_ && j + len <= n_);
  if (len == 0 || i == j) return true;
  const int k = std::bit_width(len) - 1;  // 2^k <= len < 2^{k+1}
  const auto& lv = levels_[std::min<std::size_t>(static_cast<std::size_t>(k), levels_.size() - 1)];
  const u32 block = std::min<u32>(len, u32{1} << std::min(31, k));
  return lv[i] == lv[j] && lv[i + len - block] == lv[j + len - block];
}

u32 smallest_period_parallel(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n == 0) return 0;
  if (n == 1) return 1;
  const RankTable table(s);
  // p divides n and is a period iff s[0..n-p) == s[p..n).
  for (u32 p = 1; p <= n / 2; ++p) {
    if (n % p != 0) continue;
    if (table.equal(0, p, static_cast<u32>(n) - p)) return p;
  }
  return static_cast<u32>(n);
}

}  // namespace sfcp::strings
