// Unit tests for find_first_set / find_first_if (the paper's Fich–Ragde–
// Wigderson first-one primitive).
#include <gtest/gtest.h>

#include "pram/config.hpp"
#include "prim/find_first.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(FindFirst, Empty) {
  std::vector<u8> flags;
  EXPECT_EQ(prim::find_first_set(flags), kNone);
}

TEST(FindFirst, NoneSet) {
  std::vector<u8> flags(100, 0);
  EXPECT_EQ(prim::find_first_set(flags), kNone);
}

TEST(FindFirst, FirstElement) {
  std::vector<u8> flags(10, 0);
  flags[0] = 1;
  EXPECT_EQ(prim::find_first_set(flags), 0u);
}

TEST(FindFirst, LastElement) {
  std::vector<u8> flags(10, 0);
  flags[9] = 1;
  EXPECT_EQ(prim::find_first_set(flags), 9u);
}

TEST(FindFirst, PicksEarliestOfMany) {
  std::vector<u8> flags(1000, 0);
  flags[500] = flags[400] = flags[999] = 1;
  EXPECT_EQ(prim::find_first_set(flags), 400u);
}

TEST(FindFirst, PredicateRange) {
  EXPECT_EQ(prim::find_first_if(5, 20, [](std::size_t i) { return i >= 12; }), 12u);
  EXPECT_EQ(prim::find_first_if(5, 20, [](std::size_t) { return false; }), kNone);
  EXPECT_EQ(prim::find_first_if(7, 7, [](std::size_t) { return true; }), kNone);
}

TEST(FindFirst, RandomAgainstReferenceAcrossGrains) {
  util::Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(50000);
    std::vector<u8> flags(n, 0);
    for (auto& f : flags) f = rng.chance(0.0005) ? 1 : 0;
    u32 ref = kNone;
    for (u32 i = 0; i < n; ++i) {
      if (flags[i]) {
        ref = i;
        break;
      }
    }
    for (const std::size_t grain : {16u, 1u << 22}) {
      pram::ScopedGrain g(grain);
      EXPECT_EQ(prim::find_first_set(flags), ref) << "n=" << n << " grain=" << grain;
    }
  }
}

}  // namespace
}  // namespace sfcp
