#include "prim/merge.hpp"

namespace sfcp::prim {

void parallel_merge_u32(std::span<const u32> a, std::span<const u32> b, std::span<u32> out) {
  parallel_merge<u32>(a, b, out);
}

void parallel_merge_sort_u32(std::span<u32> data) { parallel_merge_sort<u32>(data); }

void parallel_merge_sort_u64(std::span<u64> data) { parallel_merge_sort<u64>(data); }

}  // namespace sfcp::prim
