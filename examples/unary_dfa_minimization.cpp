// Domain example: minimizing a unary DFA / Moore machine.
//
// A DFA over a one-letter alphabet is exactly a functional graph: state x
// steps to delta(x) on the single input symbol, and each state emits an
// output (its B-label).  Minimizing the machine = the single function
// coarsest partition problem (the application behind [18]'s automata
// connection).  This example builds a random 'modular counter with noise'
// machine, minimizes it, and reports the state reduction.
//
//   $ ./unary_dfa_minimization [num_states] [num_outputs] [seed]
#include <cstdlib>
#include <iostream>

#include "sfcp.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  // Default sized so the O(n * rounds) verification oracle stays snappy;
  // pass a larger n to stress the solver itself.
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const u32 outputs = argc > 2 ? static_cast<u32>(std::strtoul(argv[2], nullptr, 10)) : 3;
  const u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 12345;
  util::Rng rng(seed);

  // A machine with lots of redundant states: many congruent counters whose
  // outputs repeat with a small period, plus random "startup" states that
  // flow into them.
  graph::Instance dfa;
  dfa.f.resize(n);
  dfa.b.resize(n);
  const std::size_t counter = n / 2;
  const u32 period = 6;
  for (std::size_t x = 0; x < counter; ++x) {
    dfa.f[x] = static_cast<u32>((x + 1) % counter);
    dfa.b[x] = static_cast<u32>(x % period) % outputs;
  }
  for (std::size_t x = counter; x < n; ++x) {
    dfa.f[x] = rng.below_u32(static_cast<u32>(x));  // flows toward the counter
    dfa.b[x] = rng.below_u32(outputs);
  }

  std::cout << "Unary Moore machine: " << n << " states, " << outputs << " outputs\n";
  util::Timer timer;
  pram::Metrics metrics;
  core::Solver solver(sfcp::registry().at("parallel"),
                      pram::ExecutionContext{}.with_metrics(&metrics));
  const core::Result minimized = solver.solve(dfa);
  std::cout << "Minimized to " << minimized.num_blocks << " states in " << timer.millis()
            << " ms  (" << metrics.summary() << ")\n"
            << "Reduction: " << static_cast<double>(n) / minimized.num_blocks << "x\n";

  // Sanity: equivalent states behave identically for |S| steps (Lemma 2.1).
  const auto report = core::verify_solution(dfa, minimized.q);
  std::cout << "Verified: " << report.to_string() << "\n";

  // Demonstrate the minimized machine: transitions between blocks are
  // well-defined exactly because Q is f-stable.
  std::vector<u32> block_next(minimized.num_blocks, kNone);
  std::vector<u32> block_out(minimized.num_blocks, 0);
  for (u32 x = 0; x < n; ++x) {
    block_next[minimized.q[x]] = minimized.q[dfa.f[x]];
    block_out[minimized.q[x]] = dfa.b[x];
  }
  std::cout << "First 8 minimized states (block -> next block, output):\n";
  for (u32 b = 0; b < std::min<u32>(8, minimized.num_blocks); ++b) {
    std::cout << "  q" << b << " -> q" << block_next[b] << "  out=" << block_out[b] << "\n";
  }
  return report.ok() ? 0 : 1;
}
