// Tests for the partition lattice: meet/join laws, the refinement order,
// and the characterization of SFCP as the greatest stable refinement.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/coarsest_partition.hpp"
#include "core/partition_algebra.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::block_count;
using core::canonical_partition;
using core::is_refinement_of;
using core::partition_join;
using core::partition_meet;
using core::pullback;
using core::refine_step;

std::vector<u32> random_labels(std::size_t n, u32 blocks, util::Rng& rng) {
  std::vector<u32> v(n);
  for (auto& x : v) x = rng.below(blocks);
  return v;
}

TEST(PartitionAlgebra, CanonicalIsFirstOccurrence) {
  EXPECT_EQ(canonical_partition(std::vector<u32>{7, 7, 3, 7, 3}),
            (std::vector<u32>{0, 0, 1, 0, 1}));
  EXPECT_TRUE(canonical_partition(std::vector<u32>{}).empty());
}

TEST(PartitionAlgebra, MeetKnown) {
  // a = {0,1|2,3}, b = {0,2|1,3} -> meet = four singletons... actually
  // blocks are {0},{1},{2},{3}.
  std::vector<u32> a{0, 0, 1, 1}, b{0, 1, 0, 1};
  EXPECT_EQ(partition_meet(a, b), (std::vector<u32>{0, 1, 2, 3}));
}

TEST(PartitionAlgebra, JoinKnown) {
  // a = {0,1|2|3}, b = {0|1,2|3}: overlap chains 0-1-2 -> {0,1,2|3}.
  std::vector<u32> a{0, 0, 1, 2}, b{0, 1, 1, 2};
  EXPECT_EQ(partition_join(a, b), (std::vector<u32>{0, 0, 0, 1}));
}

TEST(PartitionAlgebra, MeetJoinLatticeLaws) {
  util::Rng rng(9001);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 1 + rng.below(60);
    const auto a = random_labels(n, 1 + rng.below(5), rng);
    const auto b = random_labels(n, 1 + rng.below(5), rng);
    const auto c = random_labels(n, 1 + rng.below(5), rng);
    // Commutativity.
    EXPECT_EQ(partition_meet(a, b), partition_meet(b, a));
    EXPECT_EQ(partition_join(a, b), partition_join(b, a));
    // Associativity.
    EXPECT_EQ(partition_meet(partition_meet(a, b), c), partition_meet(a, partition_meet(b, c)));
    EXPECT_EQ(partition_join(partition_join(a, b), c), partition_join(a, partition_join(b, c)));
    // Idempotence.
    EXPECT_EQ(partition_meet(a, a), canonical_partition(a));
    EXPECT_EQ(partition_join(a, a), canonical_partition(a));
    // Absorption.
    EXPECT_EQ(partition_meet(a, partition_join(a, b)), canonical_partition(a));
    EXPECT_EQ(partition_join(a, partition_meet(a, b)), canonical_partition(a));
  }
}

TEST(PartitionAlgebra, OrderCharacterization) {
  util::Rng rng(9003);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 1 + rng.below(50);
    const auto a = random_labels(n, 1 + rng.below(4), rng);
    const auto b = random_labels(n, 1 + rng.below(4), rng);
    // fine <= coarse iff meet(fine, coarse) == fine iff join == coarse.
    const bool le = is_refinement_of(a, b);
    EXPECT_EQ(le, partition_meet(a, b) == canonical_partition(a));
    EXPECT_EQ(le, partition_join(a, b) == canonical_partition(b));
    // Meet refines both; both refine join.
    const auto m = partition_meet(a, b);
    const auto j = partition_join(a, b);
    EXPECT_TRUE(is_refinement_of(m, a));
    EXPECT_TRUE(is_refinement_of(m, b));
    EXPECT_TRUE(is_refinement_of(a, j));
    EXPECT_TRUE(is_refinement_of(b, j));
  }
}

TEST(PartitionAlgebra, RefineStepFixpointIsSfcp) {
  // Iterating refine_step from B converges to the solver's Q.
  util::Rng rng(9007);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(1 + rng.below(300), 3, rng);
    auto p = canonical_partition(inst.b);
    for (;;) {
      auto next = refine_step(p, inst.f);
      if (next == p) break;
      p = std::move(next);
    }
    const auto r = core::solve(inst);
    EXPECT_EQ(p, r.q);
  }
}

TEST(PartitionAlgebra, SfcpIsGreatestStableRefinement) {
  // Any stable refinement of B refines Q (Q is the join-maximal one).
  util::Rng rng(9011);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = util::random_function(1 + rng.below(120), 2, rng);
    const auto q = core::solve(inst).q;
    // The identity partition is always a stable refinement of B.
    std::vector<u32> identity(inst.size());
    for (std::size_t x = 0; x < identity.size(); ++x) identity[x] = static_cast<u32>(x);
    EXPECT_TRUE(is_refinement_of(identity, q));
    // Any refinement of Q still refines Q, and Q itself is stable.
    const auto finer = partition_meet(q, random_labels(inst.size(), 2, rng));
    EXPECT_TRUE(is_refinement_of(finer, q));
    EXPECT_TRUE(core::is_stable(q, inst.f));
    // Solving with the finer partition as B yields a partition that still
    // refines Q (monotonicity of the coarsest stable refinement).
    graph::Instance finer_inst{inst.f, finer};
    EXPECT_TRUE(is_refinement_of(core::solve(finer_inst).q, q));
  }
}

TEST(PartitionAlgebra, PullbackProperties) {
  util::Rng rng(9013);
  const auto inst = util::random_function(100, 3, rng);
  const auto pb = pullback(inst.b, inst.f);
  // x ~ y in pullback iff b[f(x)] == b[f(y)].
  for (u32 x = 0; x < 100; ++x) {
    for (u32 y = 0; y < 100; ++y) {
      EXPECT_EQ(pb[x] == pb[y], inst.b[inst.f[x]] == inst.b[inst.f[y]]);
    }
  }
}

TEST(PartitionAlgebra, ErrorsOnSizeMismatch) {
  std::vector<u32> a{0, 1}, b{0};
  EXPECT_THROW(partition_meet(a, b), std::invalid_argument);
  EXPECT_THROW(partition_join(a, b), std::invalid_argument);
  EXPECT_THROW(is_refinement_of(a, b), std::invalid_argument);
  std::vector<u32> f{5, 0};
  EXPECT_THROW(pullback(a, f), std::invalid_argument);
}

TEST(PartitionAlgebra, BlockCount) {
  EXPECT_EQ(block_count(std::vector<u32>{}), 0u);
  EXPECT_EQ(block_count(canonical_partition(std::vector<u32>{9, 9, 9})), 1u);
  EXPECT_EQ(block_count(canonical_partition(std::vector<u32>{3, 1, 4, 1})), 3u);
}

}  // namespace
}  // namespace sfcp
