#pragma once
// Concurrent-write primitives emulating the CRCW PRAM write disciplines the
// paper relies on.
//
// * arbitrary CRCW: when several processors write one cell in a round, an
//   arbitrary single writer succeeds.  Emulated with compare-and-swap from a
//   known "empty" sentinel: the first CAS in real time wins, which is a
//   valid "arbitrary" choice.
// * common CRCW: all simultaneous writers write the same value, so a plain
//   relaxed store suffices (used e.g. for flag raising in find_first).

#include <atomic>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "pram/metrics.hpp"

namespace sfcp::pram {

/// Sentinel marking an unwritten cell of an arbitrary-CRCW array.
template <typename T>
inline constexpr T kEmptyCell = std::numeric_limits<T>::max();

/// One round of arbitrary-CRCW write: attempts to publish `value` into
/// `cell`; exactly one concurrent writer per cell succeeds.  Returns the
/// value that ended up in the cell (the winner's value).
template <typename T>
T arbitrary_write(std::atomic<T>& cell, T value) noexcept {
  static_assert(std::is_integral_v<T>, "arbitrary_write requires an integral cell");
  charge_crcw(1);
  T expected = kEmptyCell<T>;
  if (cell.compare_exchange_strong(expected, value, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return value;
  }
  return expected;
}

/// Common-CRCW write: all concurrent writers store the same value.
template <typename T>
void common_write(std::atomic<T>& cell, T value) noexcept {
  cell.store(value, std::memory_order_relaxed);
}

/// Arbitrary-CRCW min-combine (used by leader election): the cell converges
/// to the minimum of all values written in the round.
template <typename T>
void min_write(std::atomic<T>& cell, T value) noexcept {
  T cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace sfcp::pram
