// Unit tests for Section 3: cycle node labelling and Algorithm partition.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/cycle_labeling.hpp"
#include "core/verify.hpp"
#include "graph/cycle_structure.hpp"
#include "prim/rename.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::CycleLabeling;
using core::CycleLabelingOptions;
using core::label_cycles;
using core::partition_equal_strings;
using core::RenameBackend;
using graph::cycle_structure;

TEST(PartitionEqualStrings, EmptyAndSingle) {
  std::vector<u32> flat;
  EXPECT_TRUE(partition_equal_strings(flat, 0, 1).empty());
  flat = {7, 8};
  const auto rep = partition_equal_strings(flat, 1, 2);
  EXPECT_EQ(rep.size(), 1u);
}

TEST(PartitionEqualStrings, EqualAndUnequal) {
  // strings: (1,2) (3,4) (1,2) (1,3)
  std::vector<u32> flat{1, 2, 3, 4, 1, 2, 1, 3};
  for (auto backend : {RenameBackend::Hashed, RenameBackend::Sorted}) {
    const auto rep = partition_equal_strings(flat, 4, 2, backend);
    EXPECT_EQ(rep[0], rep[2]);
    EXPECT_NE(rep[0], rep[1]);
    EXPECT_NE(rep[0], rep[3]);
    EXPECT_NE(rep[1], rep[3]);
  }
}

TEST(PartitionEqualStrings, LengthOne) {
  std::vector<u32> flat{5, 5, 9};
  const auto rep = partition_equal_strings(flat, 3, 1);
  EXPECT_EQ(rep[0], rep[1]);
  EXPECT_NE(rep[0], rep[2]);
}

TEST(PartitionEqualStrings, RandomMatchesDirectComparison) {
  util::Rng rng(901);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t L = std::size_t{1} << rng.below(7);  // 1..64
    const std::size_t k = 1 + rng.below(50);
    std::vector<u32> flat(k * L);
    for (auto& v : flat) v = rng.below_u32(3);  // few symbols -> many collisions
    for (auto backend : {RenameBackend::Hashed, RenameBackend::Sorted}) {
      const auto rep = partition_equal_strings(flat, k, L, backend);
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
          const bool equal = std::equal(flat.begin() + static_cast<std::ptrdiff_t>(i * L),
                                        flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * L),
                                        flat.begin() + static_cast<std::ptrdiff_t>(j * L));
          EXPECT_EQ(rep[i] == rep[j], equal)
              << "k=" << k << " L=" << L << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

CycleLabeling label(const graph::Instance& inst, RenameBackend backend = RenameBackend::Hashed) {
  const auto cs = cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  CycleLabelingOptions opt;
  opt.partition_backend = backend;
  return label_cycles(inst, cs, opt);
}

TEST(CycleLabeling, PaperExample31) {
  // Example 3.1/2.2: cycles C (len 12, period 4) and D (len 4, period 4)
  // are equivalent; the paper's Q has 4 labels on the cycles.
  const auto inst = util::paper_example_2_2();
  const auto cl = label(inst);
  EXPECT_EQ(cl.num_classes, 1u);  // C and D equivalent
  EXPECT_EQ(cl.num_labels, 4u);
  // Paper: nodes {1,3,9,13}, {2,6,5,14}, {4,12,10,15}, {8,11,7,16} share
  // labels (1-based).  Check a few 0-based pairs.
  EXPECT_EQ(cl.q[0], cl.q[2]);    // 1 ~ 3
  EXPECT_EQ(cl.q[0], cl.q[8]);    // 1 ~ 9
  EXPECT_EQ(cl.q[0], cl.q[12]);   // 1 ~ 13
  EXPECT_EQ(cl.q[1], cl.q[13]);   // 2 ~ 14
  EXPECT_EQ(cl.q[3], cl.q[14]);   // 4 ~ 15
  EXPECT_EQ(cl.q[7], cl.q[15]);   // 8 ~ 16
  EXPECT_NE(cl.q[0], cl.q[3]);    // 1 !~ 4 (paper notes this explicitly)
}

TEST(CycleLabeling, SingleSelfLoop) {
  graph::Instance inst{{0}, {5}};
  const auto cl = label(inst);
  EXPECT_EQ(cl.num_labels, 1u);
  EXPECT_EQ(cl.q[0], 0u);
}

TEST(CycleLabeling, TwoIdenticalSelfLoops) {
  graph::Instance inst{{0, 1}, {5, 5}};
  const auto cl = label(inst);
  EXPECT_EQ(cl.num_classes, 1u);
  EXPECT_EQ(cl.q[0], cl.q[1]);
}

TEST(CycleLabeling, DifferentBLabelSelfLoops) {
  graph::Instance inst{{0, 1}, {5, 6}};
  const auto cl = label(inst);
  EXPECT_EQ(cl.num_classes, 2u);
  EXPECT_NE(cl.q[0], cl.q[1]);
}

TEST(CycleLabeling, RotatedCyclesAreEquivalent) {
  // Two 4-cycles with the same label necklace, rotated differently.
  graph::Instance inst;
  inst.f = {1, 2, 3, 0, 5, 6, 7, 4};
  inst.b = {1, 2, 3, 4, 3, 4, 1, 2};
  const auto cl = label(inst);
  EXPECT_EQ(cl.num_classes, 1u);
  EXPECT_EQ(cl.num_labels, 4u);
  EXPECT_EQ(cl.q[0], cl.q[6]);  // both carry label 1 at necklace position of '1'
}

TEST(CycleLabeling, BackendsAgree) {
  util::Rng rng(907);
  for (int iter = 0; iter < 25; ++iter) {
    const auto inst = util::random_permutation(1 + rng.below(800), 2, rng);
    const auto hashed = label(inst, RenameBackend::Hashed);
    const auto sorted = label(inst, RenameBackend::Sorted);
    EXPECT_EQ(hashed.q, sorted.q) << "labels must be identical after canonical base assignment";
  }
}

TEST(CycleLabeling, MatchesOracleOnPermutations) {
  util::Rng rng(911);
  for (int iter = 0; iter < 25; ++iter) {
    const auto inst = util::random_permutation(1 + rng.below(600), 3, rng);
    const auto cl = label(inst);
    const auto oracle = core::solve_naive_refinement(inst);
    EXPECT_TRUE(core::same_partition(cl.q, oracle.q)) << "iter " << iter;
  }
}

TEST(CycleLabeling, EqualCyclesClassCount) {
  util::Rng rng(919);
  // 8 cycles of length 16 drawn from 3 patterns: classes <= 3.
  const auto inst = util::equal_cycles(8, 16, 3, 4, rng);
  const auto cl = label(inst);
  EXPECT_LE(cl.num_classes, 3u);
  const auto oracle = core::solve_naive_refinement(inst);
  EXPECT_TRUE(core::same_partition(cl.q, oracle.q));
}

}  // namespace
}  // namespace sfcp
