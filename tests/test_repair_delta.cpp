// The repair delta as a first-class value: a delta taken from the solver
// and applied to the previous view must reproduce a fresh solve exactly
// (for all three edit regimes, on the repair, rebuild and — at the shard
// level — migration paths), its class-churn lists must balance the block
// count, and adaptive policies must stay byte-correct while their cost fit
// converges.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "engine.hpp"
#include "inc/incremental_solver.hpp"
#include "inc/repair_delta.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<u32> to_vec(std::span<const u32> s) { return {s.begin(), s.end()}; }

void expect_delta_well_formed(const inc::RepairDelta& d, const std::string& what) {
  if (d.full) {
    EXPECT_TRUE(d.nodes.empty()) << what;
    EXPECT_EQ(d.touched_classes(), 0u) << what;
    return;
  }
  // The three categories partition the touched labels.
  std::set<u32> seen;
  for (const auto* list : {&d.classes_created, &d.classes_destroyed, &d.classes_resized}) {
    for (const u32 l : *list) {
      EXPECT_TRUE(seen.insert(l).second) << what << ": label " << l << " in two categories";
    }
  }
  std::set<u32> nodes(d.nodes.begin(), d.nodes.end());
  EXPECT_EQ(nodes.size(), d.nodes.size()) << what << ": duplicate delta nodes";
}

/// Drives one solver through a stream in chunks; after every chunk the
/// flushed delta, applied to the previously reconstructed view, must equal
/// a fresh core::solve of the evolved instance — the delta invariant.
void run_delta_invariant(graph::Instance inst, util::EditMix mix, std::size_t count, u64 seed,
                         inc::RepairPolicy policy, const std::string& what,
                         std::size_t chunk_size = 7) {
  util::Rng rng(seed);
  const auto stream = util::random_edit_stream(inst, count, mix, 6, rng);
  graph::Instance reference = inst;
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(), {}, policy);

  u32 blocks_before = solver.num_blocks();
  core::PartitionView reconstructed =
      core::PartitionView::from_raw(to_vec(solver.labels()), solver.label_bound(),
                                    solver.num_blocks(), solver.epoch(),
                                    solver.view_counters());
  solver.take_delta();  // drop the construction window; start clean

  for (std::size_t i = 0; i < stream.size(); i += chunk_size) {
    const auto chunk =
        std::span<const inc::Edit>(stream).subspan(i, std::min(chunk_size, stream.size() - i));
    for (const inc::Edit& e : chunk) inc::apply_raw(e, reference.f, reference.b);
    solver.apply(chunk);

    const inc::RepairDelta d = solver.take_delta();
    const std::string at = what + " after " + std::to_string(i + chunk.size()) + " edits";
    expect_delta_well_formed(d, at);
    ASSERT_EQ(d.epoch, solver.epoch()) << at;

    if (d.full) {
      reconstructed = core::PartitionView::from_raw(to_vec(solver.labels()),
                                                    solver.label_bound(), solver.num_blocks(),
                                                    solver.epoch(), solver.view_counters());
    } else {
      // Class churn balances the block count over a repair-only window.
      const auto created = static_cast<i64>(d.classes_created.size());
      const auto destroyed = static_cast<i64>(d.classes_destroyed.size());
      ASSERT_EQ(static_cast<i64>(solver.num_blocks()) - static_cast<i64>(blocks_before),
                created - destroyed)
          << at;
      reconstructed = core::PartitionView::patched_from_delta(
          reconstructed, d.nodes, solver.labels(), solver.label_bound(), solver.num_blocks(),
          solver.epoch(), solver.view_counters());
    }
    blocks_before = solver.num_blocks();

    const core::Result want = core::solve(reference);
    ASSERT_EQ(reconstructed.num_classes(), want.num_blocks) << at;
    const std::span<const u32> q = reconstructed.labels();
    ASSERT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()))
        << "delta-reconstructed view diverged from fresh solve, " << at;
    const core::ViewCounters& c = reconstructed.counters();
    ASSERT_EQ(c.num_cycles, want.num_cycles) << at;
    ASSERT_EQ(c.cycle_nodes, want.cycle_nodes) << at;
    ASSERT_EQ(c.kept_tree_nodes, want.kept_tree_nodes) << at;
    ASSERT_EQ(c.residual_tree_nodes, want.residual_tree_nodes) << at;
  }
}

inc::RepairPolicy repair_biased(std::size_t n) {
  inc::RepairPolicy p;
  p.max_dirty_fraction = 1.0;
  p.min_dirty_absolute = n;
  return p;
}

inc::RepairPolicy rebuild_biased() {
  inc::RepairPolicy p;
  p.max_dirty_fraction = 0.0;
  p.min_dirty_absolute = 0;
  return p;
}

inc::RepairPolicy adaptive_policy() {
  inc::RepairPolicy p;
  p.adaptive = true;
  return p;
}

// ---- the invariant, three regimes x repair/rebuild/adaptive paths --------

TEST(RepairDelta, InvariantLocalizedRepairPath) {
  util::Rng rng(501);
  const auto inst = util::random_function(1200, 4, rng);
  run_delta_invariant(inst, util::EditMix::LocalizedHotspot, 140, 41,
                      repair_biased(inst.size()), "localized/repair");
}

TEST(RepairDelta, InvariantUniformRepairPath) {
  util::Rng rng(502);
  const auto inst = util::random_function(1200, 4, rng);
  run_delta_invariant(inst, util::EditMix::Uniform, 140, 42, repair_biased(inst.size()),
                      "uniform/repair");
}

TEST(RepairDelta, InvariantChurnRepairPath) {
  util::Rng rng(503);
  const auto inst = util::random_function(1200, 4, rng);
  run_delta_invariant(inst, util::EditMix::CycleChurn, 120, 43, repair_biased(inst.size()),
                      "churn/repair");
}

TEST(RepairDelta, InvariantRebuildPath) {
  util::Rng rng(504);
  const auto inst = util::random_function(900, 4, rng);
  for (const auto mix :
       {util::EditMix::LocalizedHotspot, util::EditMix::Uniform, util::EditMix::CycleChurn}) {
    run_delta_invariant(inst, mix, 60, 44, rebuild_biased(),
                        "rebuild mix=" + std::to_string(static_cast<int>(mix)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RepairDelta, InvariantMixedDefaultPolicy) {
  util::Rng rng(505);
  const auto inst = util::random_function(1500, 4, rng);
  run_delta_invariant(inst, util::EditMix::CycleChurn, 120, 45, inc::RepairPolicy{},
                      "churn/default");
}

TEST(RepairDelta, InvariantAdaptivePolicy) {
  util::Rng rng(506);
  const auto inst = util::random_function(1200, 4, rng);
  for (const auto mix :
       {util::EditMix::LocalizedHotspot, util::EditMix::Uniform, util::EditMix::CycleChurn}) {
    run_delta_invariant(inst, mix, 120, 46, adaptive_policy(),
                        "adaptive mix=" + std::to_string(static_cast<int>(mix)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- delta bookkeeping ---------------------------------------------------

TEST(RepairDelta, ConstructionWindowIsFullAndEmpty) {
  util::Rng rng(507);
  inc::IncrementalSolver solver(util::random_function(300, 3, rng));
  const inc::RepairDelta d = solver.take_delta();
  EXPECT_TRUE(d.full);  // the construction solve owes consumers a refresh
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.nodes.empty());
  // A clean flush right after is empty and not full.
  const inc::RepairDelta d2 = solver.take_delta();
  EXPECT_TRUE(d2.empty());
  EXPECT_FALSE(d2.full);
}

TEST(RepairDelta, NoOpEditsProduceEmptyDeltas) {
  util::Rng rng(508);
  const auto inst = util::random_function(200, 3, rng);
  inc::IncrementalSolver solver{graph::Instance(inst)};
  solver.take_delta();
  solver.set_b(5, inst.b[5]);
  solver.set_f(6, inst.f[6]);
  const inc::RepairDelta d = solver.take_delta();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.epoch, 0u);
}

TEST(RepairDelta, ViewAfterExternalTakeReRootsCorrectly) {
  util::Rng rng(509);
  graph::Instance inst = util::random_function(400, 4, rng);
  inc::IncrementalSolver solver{graph::Instance(inst)};
  solver.view();
  util::Rng srng(510);
  const auto stream = util::random_edit_stream(inst, 30, util::EditMix::Uniform, 5, srng);
  for (const inc::Edit& e : stream) inc::apply_raw(e, inst.f, inst.b);
  solver.apply(stream);
  solver.take_delta();  // delta leaves through the side door...
  const core::Result want = core::solve(inst);
  const core::PartitionView v = solver.view();  // ...so view() must re-root
  ASSERT_EQ(v.num_classes(), want.num_blocks);
  const std::span<const u32> q = v.labels();
  EXPECT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()));
}

TEST(RepairDelta, DeltaStatsAccumulate) {
  util::Rng rng(511);
  graph::Instance inst = util::random_function(600, 4, rng);
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(), {},
                                repair_biased(600));
  solver.take_delta();
  util::Rng srng(512);
  const auto stream =
      util::random_edit_stream(solver.instance(), 40, util::EditMix::Uniform, 5, srng);
  u64 nodes_total = 0;
  for (const inc::Edit& e : stream) {
    if (e.kind == inc::Edit::Kind::SetF) {
      solver.set_f(e.node, e.value);
    } else {
      solver.set_b(e.node, e.value);
    }
    nodes_total += solver.take_delta().nodes.size();
  }
  const inc::DeltaStats& ds = solver.delta_stats();
  EXPECT_GT(ds.windows, 0u);
  EXPECT_EQ(ds.nodes, nodes_total);
  EXPECT_GT(ds.classes_created + ds.classes_destroyed + ds.classes_resized, 0u);
}

// ---- adaptive policy convergence -----------------------------------------

TEST(RepairDelta, AdaptiveFitConvergesAndStaysCorrect) {
  util::Rng rng(513);
  graph::Instance inst = util::random_function(2000, 4, rng);
  graph::Instance reference = inst;
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(), {},
                                adaptive_policy());
  // The construction solve anchors the rebuild side immediately.
  EXPECT_GE(solver.cost_model().full_samples, 1u);
  util::Rng srng(514);
  const auto stream =
      util::random_edit_stream(reference, 150, util::EditMix::LocalizedHotspot, 6, srng);
  for (const inc::Edit& e : stream) inc::apply_raw(e, reference.f, reference.b);
  // Small chunks keep apply() on the per-edit path (a whole-stream batch
  // would trip the batch-rebuild shortcut and feed no repair samples).
  for (std::size_t i = 0; i < stream.size(); i += 10) {
    solver.apply(std::span<const inc::Edit>(stream).subspan(
        i, std::min<std::size_t>(10, stream.size() - i)));
  }
  EXPECT_GT(solver.cost_model().unit_samples, 8u);  // repairs fed the unit side
  EXPECT_TRUE(solver.cost_model().fitted());
  EXPECT_GT(solver.cost_model().crossover(), 0.0);
  const core::Result want = core::solve(reference);
  const std::span<const u32> q = solver.view().labels();
  ASSERT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()));
}

// ---- the migration path (shard level) ------------------------------------

TEST(RepairDelta, ShardMigrationPathMatchesFreshAcrossRegimes) {
  // Two components in separate shards; a cross-shard rewire migrates one,
  // then each regime keeps streaming — views must stay byte-identical to
  // fresh solves through the migration's full requotient and the per-class
  // reconciliation that follows.
  for (const auto mix :
       {util::EditMix::LocalizedHotspot, util::EditMix::Uniform, util::EditMix::CycleChurn}) {
    util::Rng rng(515 + static_cast<u64>(mix));
    graph::Instance inst;
    for (std::size_t j = 0; j < 2; ++j) {
      const graph::Instance sub = util::random_function(150, 3, rng);
      const u32 off = static_cast<u32>(j * 150);
      for (std::size_t i = 0; i < 150; ++i) {
        inst.f.push_back(sub.f[i] + off);
        inst.b.push_back(sub.b[i]);
      }
    }
    shard::ShardOptions sopt;
    sopt.shards = 2;
    shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {}, sopt);
    ASSERT_NE(engine.shard_of(0), engine.shard_of(150));
    engine.view();

    engine.set_f(0, 200);  // drags node 0's component across the boundary
    inst.f[0] = 200;
    EXPECT_EQ(engine.stats().migrations + engine.stats().reshards, 1u);

    util::Rng srng(600 + static_cast<u64>(mix));
    const auto stream = util::random_edit_stream(inst, 40, mix, 5, srng);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      inc::apply_raw(stream[i], inst.f, inst.b);
      engine.apply({&stream[i], 1});
      const core::Result want = core::solve(inst);
      const core::PartitionView v = engine.view();
      ASSERT_EQ(v.num_classes(), want.num_blocks) << "edit " << i;
      const std::span<const u32> q = v.labels();
      ASSERT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()))
          << "migration regime " << static_cast<int>(mix) << ", edit " << i;
    }
  }
}

}  // namespace
}  // namespace sfcp
