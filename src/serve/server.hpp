#pragma once
// serve::Server — the durable, epoch-batched TCP front end over sfcp::Engine.
//
// One thread runs the event loop (epoll on Linux, poll elsewhere); sockets
// are non-blocking with per-connection read/write buffers, so one slow
// client never stalls the rest.  Edits accepted during a loop iteration
// accumulate into a single epoch batch: the batch is journaled record by
// record as it is accepted (write-ahead), applied with ONE Engine::apply()
// at the end of the iteration (or earlier, when a read-type frame needs the
// current partition), and the flushed view delta both advances the served
// PartitionView and fans out to SUBSCRIBE-ers as a Notify frame carrying
// only the changed canonical classes (a rebuild downgrades to full).
// EDITED acks are deferred to that flush so they carry the epoch the batch
// actually landed in.
//
// Durability: ServerOptions::journal_path enables the write-ahead Journal
// (serve/journal.hpp) with the configured fsync policy; checkpoint_every
// edits the server writes an `sfcp-checkpoint v1` atomically and resets the
// journal.  Construction replays a recovered journal tail onto the engine
// (restore the checkpoint first via recover_engine() below).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/partition_view.hpp"
#include "engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"

namespace sfcp::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() reports the bound one

  std::string journal_path;     ///< empty = no durability (pure in-memory serving)
  FsyncPolicy fsync = FsyncPolicy::Epoch;
  std::string checkpoint_path;  ///< empty with a journal = journal_path + ".ckpt"
  u64 checkpoint_every = 0;     ///< auto-checkpoint every k accepted edits; 0 = off

  int backlog = 16;

  /// Worker-pool width for epoch applies (pram/worker_pool.hpp): the server
  /// owns a persistent pool and installs it on its engine/fleet, so
  /// per-epoch repair fans run on long-lived workers instead of forking an
  /// OpenMP team per apply().  -1 = auto (session pram::threads(); no pool
  /// when that is 1), 0/1 = never pool, >= 2 = exactly that width
  /// (including the event-loop thread as one lane).
  int pool_threads = -1;
};

/// Counters the STATS frame exports alongside EngineStats.
struct ServeStats {
  u64 connections_accepted = 0;
  u64 connections_open = 0;
  u64 frames_served = 0;        ///< request frames answered (errors included)
  u64 edits_accepted = 0;
  u64 edit_frames_rejected = 0;
  u64 epochs_flushed = 0;       ///< Engine::apply batches
  u64 notifications_sent = 0;
  u64 checkpoints_written = 0;
  u64 journal_records = 0;
  u64 journal_bytes = 0;
  u64 journal_fsyncs = 0;
  u64 recovered_records = 0;    ///< journal records replayed at startup
  u64 recovered_skipped = 0;    ///< records the checkpoint already reflected
  bool journal_tail_torn = false;
  bool journal_failed = false;  ///< a journal append failed; edits are being refused
};

/// Restores serving state from disk: loads the checkpoint at
/// `checkpoint_path` when it exists (autodetecting plain vs. sharded
/// streams), else constructs a fresh engine from `inst` via
/// sfcp::engines().make(engine_name).  The journal tail is NOT replayed
/// here — hand the result to Server, whose constructor replays it.
std::unique_ptr<Engine> recover_engine(const std::string& checkpoint_path,
                                       std::string_view engine_name, graph::Instance inst,
                                       const core::Options& opt = core::Options::parallel(),
                                       const pram::ExecutionContext& ctx = {});

class Poller;  // epoll/poll readiness abstraction (server.cpp)

class Server {
 public:
  /// Binds and listens immediately; opens the journal (truncating any torn
  /// tail) and replays its surviving records onto `engine`.  Throws
  /// std::runtime_error on bind/journal failure.
  Server(std::unique_ptr<Engine> engine, ServerOptions opt = {});

  /// Fleet mode: serves a whole fleet::FleetEngine behind FLEET_EDIT /
  /// FLEET_VIEW frames (classic single-instance frames are refused; STATS
  /// still works and carries fleet_* counters).  The journal, when
  /// configured, uses the fleet record format with per-record instance ids;
  /// recovery replays each record against its instance's own epoch floor.
  /// Install the fleet's factory before constructing the server so journal
  /// replay can materialize instances.
  Server(std::unique_ptr<fleet::FleetEngine> fleet, ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return port_; }

  /// Classic mode only — a fleet-mode server has no single engine.
  Engine& engine() noexcept { return *engine_; }
  bool fleet_mode() const noexcept { return fleet_ != nullptr; }
  /// Fleet mode only.
  fleet::FleetEngine& fleet() noexcept { return *fleet_; }
  const ServerOptions& options() const noexcept { return opt_; }
  ServeStats stats() const noexcept;

  /// Runs the event loop until stop().
  void run();

  /// One event-loop iteration (wait up to timeout_ms, service ready
  /// sockets, flush the epoch batch).  Returns false once stop() was seen.
  bool run_once(int timeout_ms);

  /// Thread-safe: wakes the loop and makes run()/run_once() return.
  void stop();

  /// Flushes any pending epoch batch now (tests drive this directly).
  void flush();

  /// Writes a checkpoint to `path` (empty = configured checkpoint path) and
  /// resets the journal.  Pending edits are flushed first.  Returns false
  /// when the engine is not checkpointable or no path is known.
  bool checkpoint(const std::string& path = "");

 private:
  struct Connection;
  struct PendingAck {
    int fd = -1;
    u32 accepted = 0;
    bool fleet = false;        ///< ack carries the instance's epoch, not the engine's
    u64 instance = 0;
  };

  void accept_ready_();
  void read_ready_(Connection& c);
  void write_ready_(Connection& c);
  void handle_frame_(Connection& c, const Frame& f);
  void send_frame_(Connection& c, FrameType type, std::string_view payload);
  void send_error_(Connection& c, std::string_view message);
  void flush_socket_(Connection& c);
  void close_connection_(int fd);
  Connection* find_(int fd) noexcept;
  void init_net_();
  inc::ViewDelta refresh_served_view_();
  void notify_subscribers_(const inc::ViewDelta& vd);
  std::string encode_stats_() const;
  bool do_checkpoint_(const std::string& path);
  void maybe_autocheckpoint_();
  void init_pool_();

  /// Session worker pool for epoch applies.  Declared BEFORE the engines:
  /// members destruct in reverse declaration order, so the engines (which
  /// hold installed pool pointers) go away first and the pool joins its
  /// workers last.
  std::unique_ptr<pram::WorkerPool> pool_;
  std::unique_ptr<Engine> engine_;        ///< classic mode; null in fleet mode
  std::unique_ptr<fleet::FleetEngine> fleet_;  ///< fleet mode; null in classic mode
  ServerOptions opt_;
  Journal journal_;
  bool durable_ = false;
  bool journal_failed_ = false;  ///< an append failed: edits are refused server-wide
  std::string journal_error_;

  std::unique_ptr<Poller> poller_;
  bool accept_paused_ = false;  ///< listen fd deregistered after EMFILE/ENFILE
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<int> dead_fds_;

  core::PartitionView served_view_;
  std::vector<inc::Edit> batch_;       ///< edits accepted since the last flush
  std::vector<fleet::InstanceEdit> fleet_batch_;  ///< fleet-mode accepted edits
  std::vector<PendingAck> pending_acks_;
  u64 edits_since_checkpoint_ = 0;
  ServeStats stats_{};
  std::atomic<bool> stopping_{false};
};

}  // namespace sfcp::serve
