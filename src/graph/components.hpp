#pragma once
// Weakly connected components of a functional graph: each component is a
// pseudo-tree, identified canonically by its cycle's leader node.  Built on
// the cycle structure + rooted forest machinery; used by the examples and
// by workload analysis in the benches.

#include <span>
#include <vector>

#include "graph/cycle_structure.hpp"
#include "graph/rooted_forest.hpp"
#include "pram/types.hpp"

namespace sfcp::graph {

struct Components {
  std::vector<u32> id;       ///< dense component id per node
  std::vector<u32> size;     ///< per component
  std::vector<u32> cycle_len;///< per component: length of its unique cycle

  std::size_t count() const { return size.size(); }
};

/// Computes components; strategies follow the underlying machinery.
Components connected_components(std::span<const u32> f,
                                ForestStrategy strategy = ForestStrategy::EulerTour);

}  // namespace sfcp::graph
