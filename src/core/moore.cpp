#include "core/moore.hpp"

#include <stdexcept>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"

namespace sfcp::core {

void MooreMachine::validate() const {
  if (next.size() != output.size()) {
    throw std::invalid_argument("MooreMachine: next/output size mismatch");
  }
  for (std::size_t x = 0; x < next.size(); ++x) {
    if (next[x] >= next.size()) {
      throw std::invalid_argument("MooreMachine: transition out of range");
    }
  }
}

std::vector<u32> MooreMachine::stream(u32 start, std::size_t len) const {
  if (start >= size()) throw std::out_of_range("MooreMachine::stream: bad start state");
  std::vector<u32> out;
  out.reserve(len);
  u32 cur = start;
  for (std::size_t t = 0; t < len; ++t) {
    out.push_back(output[cur]);
    cur = next[cur];
  }
  return out;
}

MinimizedMoore minimize(const MooreMachine& m, const Options& opt) {
  m.validate();
  MinimizedMoore out;
  const std::size_t n = m.size();
  out.state_map.assign(n, 0);
  if (n == 0) return out;

  graph::Instance inst;
  inst.f = m.next;
  inst.b = m.output;
  const Result r = solve(inst, opt);
  out.state_map = r.q;
  out.classes = r.num_blocks;

  // Canonical labels are in first-occurrence order, so the first state with
  // label c is the class representative and labels fill [0, classes).
  std::vector<u32> rep(out.classes, kNone);
  for (std::size_t x = 0; x < n; ++x) {
    if (rep[r.q[x]] == kNone) rep[r.q[x]] = static_cast<u32>(x);
  }
  out.machine.next.resize(out.classes);
  out.machine.output.resize(out.classes);
  pram::parallel_for(0, out.classes, [&](std::size_t c) {
    const u32 x = rep[c];
    out.machine.next[c] = r.q[m.next[x]];
    out.machine.output[c] = m.output[x];
  });
  return out;
}

bool states_equivalent(const MooreMachine& m, u32 x, u32 y) {
  if (x >= m.size() || y >= m.size()) {
    throw std::out_of_range("states_equivalent: state out of range");
  }
  if (x == y) return true;
  const MinimizedMoore min = minimize(m);
  return min.state_map[x] == min.state_map[y];
}

bool isomorphic(const MooreMachine& a, const MooreMachine& b) {
  a.validate();
  b.validate();
  if (a.size() != b.size()) return false;
  const std::size_t n = a.size();
  if (n == 0) return true;

  // Behavioural partition of the disjoint union.  For MINIMAL machines an
  // isomorphism exists iff every equivalence class contains exactly one
  // state from each machine: equivalence is a congruence (x ~ y implies
  // f(x) ~ f(y)) and preserves outputs, so the pairing is the isomorphism.
  graph::Instance uni;
  uni.f.resize(2 * n);
  uni.b.resize(2 * n);
  for (std::size_t x = 0; x < n; ++x) {
    uni.f[x] = a.next[x];
    uni.b[x] = a.output[x];
    uni.f[n + x] = b.next[x] + static_cast<u32>(n);
    uni.b[n + x] = b.output[x];
  }
  const Result r = solve(uni);
  if (r.num_blocks != n) return false;
  std::vector<u32> from_a(r.num_blocks, 0), from_b(r.num_blocks, 0);
  for (std::size_t x = 0; x < n; ++x) {
    ++from_a[r.q[x]];
    ++from_b[r.q[n + x]];
  }
  for (u32 c = 0; c < r.num_blocks; ++c) {
    if (from_a[c] != 1 || from_b[c] != 1) return false;
  }
  pram::charge(2 * n);
  return true;
}

bool quotient_preserves_behaviour(const MooreMachine& m, const MinimizedMoore& min,
                                  std::size_t horizon) {
  for (u32 x = 0; x < m.size(); ++x) {
    if (m.stream(x, horizon) != min.machine.stream(min.state_map[x], horizon)) return false;
  }
  return true;
}

}  // namespace sfcp::core
