// Unit and property tests for the prefix-doubling suffix array and the
// suffix-array m.s.p. baseline (Vishkin's suffix-tree observation, §3.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "strings/suffix_array.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::build_suffix_array;
using strings::build_suffix_array_reference;
using strings::compare_rotations;
using strings::count_distinct_substrings;
using strings::lcp_kasai;
using strings::msp_suffix_array;

TEST(SuffixArray, Empty) {
  std::vector<u32> s;
  const auto sa = build_suffix_array(s);
  EXPECT_TRUE(sa.sa.empty());
  EXPECT_TRUE(sa.rank.empty());
}

TEST(SuffixArray, SingleChar) {
  std::vector<u32> s{7};
  const auto sa = build_suffix_array(s);
  EXPECT_EQ(sa.sa, (std::vector<u32>{0}));
  EXPECT_EQ(sa.rank, (std::vector<u32>{0}));
}

TEST(SuffixArray, KnownBanana) {
  // "banana" (a=1,b=2,n=3): suffix order a, ana, anana, banana, na, nana
  // -> starts 5, 3, 1, 0, 4, 2.
  std::vector<u32> s{2, 1, 3, 1, 3, 1};
  const auto sa = build_suffix_array(s);
  EXPECT_EQ(sa.sa, (std::vector<u32>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, AllEqualCharacters) {
  std::vector<u32> s(64, 3);
  const auto sa = build_suffix_array(s);
  // Shorter suffixes of an all-equal string are smaller.
  for (std::size_t r = 0; r < s.size(); ++r) {
    EXPECT_EQ(sa.sa[r], static_cast<u32>(s.size() - 1 - r));
  }
}

TEST(SuffixArray, RankIsInversePermutation) {
  util::Rng rng(3301);
  for (int iter = 0; iter < 20; ++iter) {
    const auto s = util::random_string(1 + rng.below(300), 4, rng);
    const auto sa = build_suffix_array(s);
    ASSERT_EQ(sa.sa.size(), s.size());
    for (std::size_t r = 0; r < s.size(); ++r) {
      EXPECT_EQ(sa.rank[sa.sa[r]], static_cast<u32>(r));
    }
  }
}

TEST(SuffixArray, MatchesReferenceRandom) {
  util::Rng rng(3307);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t alpha = 2 + rng.below(5);
    const auto s = util::random_string(1 + rng.below(200), static_cast<u32>(alpha), rng);
    const auto fast = build_suffix_array(s);
    const auto ref = build_suffix_array_reference(s);
    EXPECT_EQ(fast.sa, ref.sa);
    EXPECT_EQ(fast.rank, ref.rank);
  }
}

TEST(SuffixArray, MatchesReferencePeriodic) {
  util::Rng rng(3311);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t p = 1 + rng.below(5);
    const std::size_t reps = 2 + rng.below(8);
    const auto s = util::periodic_string(p * reps, p, 3, rng);
    const auto fast = build_suffix_array(s);
    const auto ref = build_suffix_array_reference(s);
    EXPECT_EQ(fast.sa, ref.sa);
  }
}

TEST(SuffixArray, RoundsLogarithmic) {
  util::Rng rng(3313);
  const auto s = util::random_string(1 << 12, 3, rng);
  const auto sa = build_suffix_array(s);
  // Doubling separates all suffixes in at most ceil(log2 n) rounds.
  EXPECT_LE(sa.rounds, 13u);
}

TEST(Lcp, KnownBanana) {
  std::vector<u32> s{2, 1, 3, 1, 3, 1};
  const auto sa = build_suffix_array(s);
  const auto lcp = lcp_kasai(s, sa);
  // Suffixes: a | ana | anana | banana | na | nana -> lcp 0,1,3,0,0,2
  EXPECT_EQ(lcp, (std::vector<u32>{0, 1, 3, 0, 0, 2}));
}

TEST(Lcp, MatchesBruteForce) {
  util::Rng rng(3319);
  for (int iter = 0; iter < 25; ++iter) {
    const auto s = util::random_string(1 + rng.below(150), 2, rng);
    const auto sa = build_suffix_array(s);
    const auto lcp = lcp_kasai(s, sa);
    for (std::size_t r = 1; r < s.size(); ++r) {
      const u32 i = sa.sa[r - 1], j = sa.sa[r];
      u32 h = 0;
      while (i + h < s.size() && j + h < s.size() && s[i + h] == s[j + h]) ++h;
      EXPECT_EQ(lcp[r], h) << "rank " << r;
    }
  }
}

TEST(Lcp, DistinctSubstringCountSmall) {
  // "aab" over {1,2}: substrings a, aa, aab, ab, b -> 5 distinct.
  std::vector<u32> s{1, 1, 2};
  EXPECT_EQ(count_distinct_substrings(s), 5u);
}

TEST(Lcp, DistinctSubstringCountMatchesBrute) {
  util::Rng rng(3323);
  for (int iter = 0; iter < 15; ++iter) {
    const auto s = util::random_string(1 + rng.below(40), 2, rng);
    std::set<std::vector<u32>> subs;
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t j = i + 1; j <= s.size(); ++j) {
        subs.emplace(s.begin() + i, s.begin() + j);
      }
    }
    EXPECT_EQ(count_distinct_substrings(s), subs.size());
  }
}

TEST(MspSuffixArray, MatchesBoothRandom) {
  util::Rng rng(3329);
  for (int iter = 0; iter < 60; ++iter) {
    const auto s = util::random_string(1 + rng.below(250), 3, rng);
    EXPECT_EQ(msp_suffix_array(s), strings::msp_booth(s)) << "iter " << iter;
  }
}

TEST(MspSuffixArray, MatchesBoothRepeating) {
  util::Rng rng(3331);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t p = 1 + rng.below(7);
    const std::size_t reps = 2 + rng.below(6);
    const auto s = util::periodic_string(p * reps, p, 3, rng);
    EXPECT_EQ(msp_suffix_array(s), strings::msp_booth(s));
  }
}

TEST(MspSuffixArray, PaperExample34) {
  // Example 3.4's circular string; its m.s.p. must agree with all other
  // m.s.p. implementations.
  std::vector<u32> s{3, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2};
  const u32 want = strings::msp_brute(s);
  EXPECT_EQ(msp_suffix_array(s), want);
  EXPECT_EQ(strings::msp_booth(s), want);
}

TEST(MspSuffixArray, EdgeCases) {
  EXPECT_EQ(msp_suffix_array(std::vector<u32>{}), 0u);
  EXPECT_EQ(msp_suffix_array(std::vector<u32>{9}), 0u);
  EXPECT_EQ(msp_suffix_array(std::vector<u32>{2, 2, 2, 2}), 0u);
  EXPECT_EQ(msp_suffix_array(std::vector<u32>{2, 1}), 1u);
}

TEST(CompareRotations, TotalPreorderConsistency) {
  util::Rng rng(3343);
  const auto s = util::random_string(40, 2, rng);
  const u32 m = strings::msp_booth(s);
  for (u32 j = 0; j < s.size(); ++j) {
    EXPECT_LE(compare_rotations(s, m, j), 0) << "m.s.p. rotation must be minimal";
  }
}

TEST(CompareRotations, AntisymmetryAndEquality) {
  std::vector<u32> s{1, 2, 1, 2};  // rotations 0 and 2 coincide
  EXPECT_EQ(compare_rotations(s, 0, 2), 0);
  EXPECT_EQ(compare_rotations(s, 0, 1), -compare_rotations(s, 1, 0));
  EXPECT_LT(compare_rotations(s, 0, 1), 0);
}

}  // namespace
}  // namespace sfcp
