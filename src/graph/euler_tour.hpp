#pragma once
// Euler tours of rooted forests (Tarjan–Vishkin [19]).
//
// Arc 2x is the down-arc (parent(x) -> x) and arc 2x+1 the up-arc
// (x -> parent(x)) of tree node x; roots (cycle nodes) contribute no arcs.
// The tours of all trees are chained into ONE linked list (tree after tree,
// roots in ascending order) so that a single list-ranking pass positions
// every arc, and per-tree quantities become segmented scans over the
// resulting array.

#include <span>
#include <vector>

#include "pram/types.hpp"
#include "prim/list_ranking.hpp"

namespace sfcp::graph {

struct RootedForest;

struct EulerTour {
  std::vector<u32> pos;       ///< global tour position per arc (kNone if unused)
  std::vector<u32> order;     ///< arc at each tour position (size = 2 * #tree nodes)
  std::vector<u8> seg_start;  ///< 1 at the first arc of each tree's tour

  static u32 down_arc(u32 x) { return 2 * x; }
  static u32 up_arc(u32 x) { return 2 * x + 1; }
  static u32 arc_node(u32 arc) { return arc / 2; }
  static bool is_down(u32 arc) { return (arc & 1) == 0; }
};

EulerTour build_euler_tour(const RootedForest& forest,
                           prim::ListRankStrategy ranking = prim::ListRankStrategy::RulingSet);

}  // namespace sfcp::graph
