#pragma once
// Parallel loop wrappers realizing PRAM rounds on OpenMP.
//
// `parallel_for(lo, hi, body)` runs body(i) for i in [lo, hi) and counts one
// synchronous round of (hi - lo) operations.  Small ranges run sequentially
// (still counted) to avoid fork/join overhead dominating measurements.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include <omp.h>

#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"

namespace sfcp::pram {

/// Number of blocks `parallel_blocks` will use for an input of size n.
inline int num_blocks(std::size_t n) noexcept {
  if (n < grain() || threads() == 1) return 1;
  const std::size_t by_grain = (n + grain() - 1) / grain();
  return static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads()), by_grain));
}

/// [lo, hi) range of block b out of nb over n elements.
inline std::pair<std::size_t, std::size_t> block_range(std::size_t n, int nb, int b) noexcept {
  const std::size_t chunk = (n + static_cast<std::size_t>(nb) - 1) / static_cast<std::size_t>(nb);
  const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(b));
  const std::size_t hi = std::min(n, lo + chunk);
  return {lo, hi};
}

template <typename Body>
void parallel_for(std::size_t lo, std::size_t hi, Body&& body) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  charge_round(n);
  const int nt = threads();
  if (n < grain() || nt == 1) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    return;
  }
  // OpenMP workers are pool threads with their own thread-locals: rebind the
  // caller's ExecutionContext so charging inside `body` hits its sink.
  const ExecutionContext* ctx = current_context();
#pragma omp parallel num_threads(nt)
  {
    ScopedContext rebind(ctx);
#pragma omp for schedule(static)
    for (std::int64_t i = static_cast<std::int64_t>(lo); i < static_cast<std::int64_t>(hi); ++i) {
      body(static_cast<std::size_t>(i));
    }
  }
}

/// Blocked variant: body(block_index, lo, hi) — one contiguous block per
/// worker, the shape used by scan/sort-style two-pass kernels.
template <typename Body>
void parallel_blocks(std::size_t n, Body&& body) {
  if (n == 0) return;
  const int nb = num_blocks(n);
  charge_round(n);
  if (nb == 1) {
    body(0, std::size_t{0}, n);
    return;
  }
  const ExecutionContext* ctx = current_context();
#pragma omp parallel num_threads(nb)
  {
    ScopedContext rebind(ctx);
    const int b = omp_get_thread_num();
    const auto [lo, hi] = block_range(n, nb, b);
    if (lo < hi) body(b, lo, hi);
  }
}

}  // namespace sfcp::pram
