#pragma once
// Extension: the MULTI-function coarsest partition problem (the general
// relational/automata setting of Paige–Tarjan [16] and Hopcroft [1]).
//
// The paper solves the single-function case; a k-letter Moore machine /
// DFA needs the coarsest partition stable under EVERY function f_1..f_k.
// This module provides:
//   * solve_multi_moore     — parallel Moore iteration: one tuple-renaming
//                             round per refinement step (O(kn) work/round,
//                             <= n rounds; each round is O(log n) depth)
//   * solve_multi_hopcroft  — sequential Hopcroft with per-letter splitter
//                             worklist, O(kn log n)
// For k = 1 both reduce to the paper's problem and are cross-checked
// against core::solve in the tests.

#include <vector>

#include "pram/types.hpp"

namespace sfcp::core {

struct MultiInstance {
  std::vector<std::vector<u32>> f;  ///< k functions, each of size n
  std::vector<u32> b;               ///< initial partition labels

  std::size_t size() const { return b.size(); }
  std::size_t letters() const { return f.size(); }
};

/// Throws std::invalid_argument if sizes mismatch or values out of range.
void validate(const MultiInstance& inst);

struct MultiResult {
  std::vector<u32> q;  ///< canonical labels
  u32 num_blocks = 0;
  u32 rounds = 0;
};

MultiResult solve_multi_moore(const MultiInstance& inst);
MultiResult solve_multi_hopcroft(const MultiInstance& inst);

}  // namespace sfcp::core
