// Unit and property tests for the parallel merge / merge sort (the Cole
// mergesort substitute used by Algorithm "sorting strings" step 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pram/config.hpp"
#include "prim/merge.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using prim::merge_path_split;
using prim::parallel_merge;
using prim::parallel_merge_sort;

std::vector<u32> random_sorted(std::size_t n, u32 range, util::Rng& rng) {
  std::vector<u32> v(n);
  for (auto& x : v) x = rng.below(range);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MergePath, SplitInvariantHolds) {
  util::Rng rng(4001);
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = random_sorted(rng.below(60), 20, rng);
    const auto b = random_sorted(rng.below(60), 20, rng);
    const std::size_t n = a.size() + b.size();
    for (std::size_t k = 0; k <= n; ++k) {
      const auto [ia, ib] = merge_path_split<u32>(a, b, k);
      ASSERT_EQ(ia + ib, k);
      // Stable-merge frontier: everything taken so far must not exceed
      // anything not yet taken (with a winning ties).
      if (ia > 0 && ib < b.size()) EXPECT_LE(a[ia - 1], b[ib]);
      if (ib > 0 && ia < a.size()) EXPECT_LT(b[ib - 1], a[ia]);
    }
  }
}

TEST(MergePath, DegenerateSplits) {
  std::vector<u32> a{1, 3, 5};
  std::vector<u32> empty;
  for (std::size_t k = 0; k <= a.size(); ++k) {
    const auto [ia, ib] = merge_path_split<u32>(a, empty, k);
    EXPECT_EQ(ia, k);
    EXPECT_EQ(ib, 0u);
    const auto [ia2, ib2] = merge_path_split<u32>(empty, a, k);
    EXPECT_EQ(ia2, 0u);
    EXPECT_EQ(ib2, k);
  }
}

TEST(ParallelMerge, MatchesStdMerge) {
  util::Rng rng(4003);
  for (int iter = 0; iter < 60; ++iter) {
    const auto a = random_sorted(rng.below(500), 40, rng);
    const auto b = random_sorted(rng.below(500), 40, rng);
    std::vector<u32> got(a.size() + b.size()), want(a.size() + b.size());
    parallel_merge<u32>(a, b, got);
    std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());
    EXPECT_EQ(got, want);
  }
}

TEST(ParallelMerge, EmptyInputs) {
  std::vector<u32> a, b, out;
  parallel_merge<u32>(a, b, out);
  EXPECT_TRUE(out.empty());
  std::vector<u32> c{1, 2}, out2(2);
  parallel_merge<u32>(c, b, out2);
  EXPECT_EQ(out2, c);
}

TEST(ParallelMerge, StabilityByTaggedPairs) {
  // Equal keys: all of a's elements must precede all of b's.
  struct Tagged {
    u32 key;
    u32 src;
  };
  auto cmp = [](const Tagged& x, const Tagged& y) { return x.key < y.key; };
  std::vector<Tagged> a, b;
  for (u32 i = 0; i < 100; ++i) a.push_back({i / 10, 0});
  for (u32 i = 0; i < 100; ++i) b.push_back({i / 10, 1});
  std::vector<Tagged> out(200);
  parallel_merge<Tagged>(a, b, out, cmp);
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      EXPECT_LE(out[i - 1].src, out[i].src) << "a must win ties at " << i;
    }
  }
}

TEST(ParallelMergeSort, MatchesStdSortRandom) {
  util::Rng rng(4007);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<u32> v(rng.below(4000));
    for (auto& x : v) x = rng.below(1000);
    auto want = v;
    std::sort(want.begin(), want.end());
    parallel_merge_sort(std::span<u32>(v));
    EXPECT_EQ(v, want);
  }
}

TEST(ParallelMergeSort, AlreadySortedAndReverse) {
  std::vector<u32> v(10000);
  std::iota(v.begin(), v.end(), 0u);
  auto want = v;
  parallel_merge_sort(std::span<u32>(v));
  EXPECT_EQ(v, want);
  std::reverse(v.begin(), v.end());
  parallel_merge_sort(std::span<u32>(v));
  EXPECT_EQ(v, want);
}

TEST(ParallelMergeSort, StableOnPackedPairs) {
  // Sort (key, original index) packed into u64 by key only via comparator;
  // equal keys must keep index order.
  util::Rng rng(4011);
  std::vector<u64> v(3000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = pack_pair(rng.below(8), static_cast<u32>(i));
  parallel_merge_sort(std::span<u64>(v), [](u64 x, u64 y) { return pair_hi(x) < pair_hi(y); });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(pair_hi(v[i - 1]), pair_hi(v[i]));
    if (pair_hi(v[i - 1]) == pair_hi(v[i])) EXPECT_LT(pair_lo(v[i - 1]), pair_lo(v[i]));
  }
}

TEST(ParallelMergeSort, CustomComparatorDescending) {
  util::Rng rng(4013);
  std::vector<u32> v(2500);
  for (auto& x : v) x = rng.below(500);
  auto want = v;
  std::sort(want.begin(), want.end(), std::greater<u32>());
  parallel_merge_sort(std::span<u32>(v), std::greater<u32>());
  EXPECT_EQ(v, want);
}

TEST(ParallelMergeSort, WorksAcrossThreadCounts) {
  util::Rng rng(4017);
  std::vector<u32> base(20000);
  for (auto& x : base) x = rng.below(100000);
  auto want = base;
  std::sort(want.begin(), want.end());
  for (int t : {1, 2, 4, 8}) {
    pram::ScopedThreads guard(t);
    auto v = base;
    parallel_merge_sort(std::span<u32>(v));
    EXPECT_EQ(v, want) << "threads=" << t;
  }
}

TEST(ParallelMergeSort, TinyInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<u32> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<u32>(n - i);
    parallel_merge_sort(std::span<u32>(v));
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end())) << "n=" << n;
  }
}

}  // namespace
}  // namespace sfcp
