#pragma once
// Common scalar types used throughout the library.
//
// Indices, node ids, B-labels and Q-labels all live in [0, n) with
// n < 2^32 - 2, so everything is a u32; pairs of labels pack into a single
// u64 radix-sort key, which is what makes the paper's "integer sorting over
// [1..n^{O(1)}]" cheap to realize.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace sfcp {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Sentinel for "no index / empty cell" (matches pram::kEmptyCell<u32>).
inline constexpr u32 kNone = std::numeric_limits<u32>::max();

/// Packs a pair of 32-bit labels into one sortable 64-bit key
/// (lexicographic order of the pair == numeric order of the key).
inline constexpr u64 pack_pair(u32 hi, u32 lo) noexcept {
  return (static_cast<u64>(hi) << 32) | lo;
}

inline constexpr u32 pair_hi(u64 key) noexcept { return static_cast<u32>(key >> 32); }
inline constexpr u32 pair_lo(u64 key) noexcept { return static_cast<u32>(key); }

/// Splitmix-style hash for u32 sequences — the map key of both the
/// incremental solver's and the sharded merge layer's reduced-cycle-string
/// maps (one definition so the mixing can never diverge between them).
struct U32VecHash {
  std::size_t operator()(const std::vector<u32>& v) const noexcept {
    u64 h = 0x9e3779b97f4a7c15ull ^ (static_cast<u64>(v.size()) * 0xbf58476d1ce4e5b9ull);
    for (u32 x : v) {
      u64 z = h + x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      h = z ^ (z >> 27);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace sfcp
