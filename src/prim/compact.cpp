#include "prim/compact.hpp"

namespace sfcp::prim {

std::vector<u32> pack_index(std::span<const u8> flags) {
  return pack_index_if(flags.size(), [&](std::size_t i) { return flags[i] != 0; });
}

std::vector<u32> pack_values(std::span<const u32> values, std::span<const u8> flags) {
  const std::size_t n = values.size();
  std::vector<u32> flag(n);
  pram::parallel_for(0, n, [&](std::size_t i) { flag[i] = flags[i] ? 1u : 0u; });
  std::vector<u32> pos(n);
  const u32 total = exclusive_scan<u32>(flag, pos);
  std::vector<u32> out(total);
  pram::parallel_for(0, n, [&](std::size_t i) {
    if (flag[i]) out[pos[i]] = values[i];
  });
  return out;
}

}  // namespace sfcp::prim
