#include "prim/rename.hpp"

#include <unordered_map>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/scan.hpp"

namespace sfcp::prim {

RenameResult rename_sorted(std::span<const u64> keys, u64 max_key) {
  const std::size_t n = keys.size();
  RenameResult r;
  r.labels.assign(n, 0);
  if (n == 0) return r;
  const std::vector<u32> order = sort_order_by_key(keys, max_key);
  // head[i] = 1 iff sorted position i starts a new key run.
  std::vector<u32> head(n);
  pram::parallel_for(0, n, [&](std::size_t i) {
    head[i] = (i == 0 || keys[order[i]] != keys[order[i - 1]]) ? 1u : 0u;
  });
  std::vector<u32> rank(n);
  const u32 classes = inclusive_scan<u32>(head, rank);
  pram::parallel_for(0, n, [&](std::size_t i) { r.labels[order[i]] = rank[i] - 1; });
  r.num_classes = classes;
  return r;
}

RenameResult rename_pairs_sorted(std::span<const u32> a, std::span<const u32> b) {
  const std::size_t n = a.size();
  std::vector<u64> keys(n);
  pram::parallel_for(0, n, [&](std::size_t i) { keys[i] = pack_pair(a[i], b[i]); });
  return rename_sorted(keys);
}

RenameResult rename_hashed(std::span<const u64> keys) {
  const std::size_t n = keys.size();
  RenameResult r;
  r.labels.assign(n, 0);
  if (n == 0) return r;
  ConcurrentPairMap table(n);
  pram::parallel_for(0, n, [&](std::size_t i) {
    r.labels[i] = table.insert_or_get(keys[i], static_cast<u32>(i));
  });
  return r;
}

RenameResult rename_pairs_hashed(std::span<const u32> a, std::span<const u32> b) {
  const std::size_t n = a.size();
  std::vector<u64> keys(n);
  pram::parallel_for(0, n, [&](std::size_t i) { keys[i] = pack_pair(a[i], b[i]); });
  return rename_hashed(keys);
}

RenameResult canonicalize_labels(std::span<const u32> labels) {
  RenameResult r;
  r.labels.assign(labels.size(), 0);
  std::unordered_map<u32, u32> seen;
  seen.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = seen.emplace(labels[i], static_cast<u32>(seen.size()));
    r.labels[i] = it->second;
  }
  r.num_classes = static_cast<u32>(seen.size());
  pram::charge(labels.size());
  return r;
}

}  // namespace sfcp::prim
