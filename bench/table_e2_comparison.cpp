// E2 — the introduction's algorithm comparison, made measurable: the
// paper's parallel algorithm vs the O(n log n)-operation label-doubling
// class (Galley–Iliopoulos / Srikant stand-in), Hopcroft-style O(n log n)
// sequential refinement, the linear-time sequential pipeline ([16]'s role),
// and naive Moore refinement.
//
// Pipeline strategies come from sfcp::registry() and run through a reusable
// Solver; every measured run installs its own ExecutionContext, so the
// ablation is race-free by construction (no process-global knobs mutated).
#include <iostream>

#include "core/baselines.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E2: SFCP algorithm comparison (paper intro, Table analogue)\n\n";
  util::Rng rng(7);
  util::Table table({"algorithm", "n", "blocks", "ops", "ops/n", "ms"});
  // One reusable session per registry strategy: workspaces amortize across
  // the two instance sizes.
  // One sink that outlives both solvers (their contexts keep a pointer to
  // it), reset between measured runs.
  pram::Metrics m;
  core::Solver parallel_solver(sfcp::registry().at("parallel"),
                               pram::ExecutionContext{}.with_metrics(&m));
  core::Solver sequential_solver(sfcp::registry().at("sequential"),
                                 pram::ExecutionContext{}.with_metrics(&m));
  for (const std::size_t n : {std::size_t{1} << 16, std::size_t{1} << 19}) {
    const auto inst = util::random_function(n, 4, rng);
    const auto run = [&](const char* name, auto&& solver_fn) {
      m.reset();
      util::Timer timer;
      const u32 blocks = solver_fn();
      const double ms = timer.millis();
      table.add_row(name, n, blocks, m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), ms);
      json.record("e2_comparison", n, name, pram::threads(), ms);
    };
    run("jaja-ryu parallel", [&] { return parallel_solver.solve(inst).num_blocks; });
    run("sequential pipeline [16]", [&] { return sequential_solver.solve(inst).num_blocks; });
    run("label doubling [10,18]", [&] {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      return core::solve_label_doubling(inst).num_blocks;
    });
    run("hopcroft refinement [1]", [&] {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      return core::solve_hopcroft(inst).num_blocks;
    });
    run("naive Moore refinement", [&] {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      return core::solve_naive_refinement(inst).num_blocks;
    });
  }
  table.print();
  std::cout << "\n(expected shape: label doubling pays a log n factor in ops; the\n"
            << " parallel pipeline stays near-linear; all block counts identical.)\n";
  return 0;
}
