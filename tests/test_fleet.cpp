// fleet::FleetEngine — instance-keyed routing, warm/cold tiering and batched
// cold-start solving, plus the FLEET_EDIT/FLEET_VIEW wire mode of
// serve::Server.  The load-bearing invariant throughout: whatever tier an
// instance is in, its view is byte-identical to a fresh core::solve of its
// evolved instance — eviction and fault-in must be invisible.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/slab_arena.hpp"
#include "pram/metrics.hpp"
#include "pram/worker_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<u32> to_vec(std::span<const u32> s) { return {s.begin(), s.end()}; }

graph::Instance make_instance(fleet::InstanceId id, std::size_t n = 48) {
  util::Rng rng(0xf1ee7 ^ (id * 0x9e3779b97f4a7c15ull + 1));
  return util::random_function(n, 4, rng);
}

std::vector<inc::Edit> make_edits(const graph::Instance& inst, std::size_t count, u64 seed) {
  util::Rng rng(seed);
  return util::random_edit_stream(inst, count, util::EditMix::Uniform, 4, rng);
}

/// A scratch directory under the gtest temp root, wiped on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name) : path(::testing::TempDir() + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// ---- SlabArena -----------------------------------------------------------

TEST(SlabArena, ReusesBlocksByClass) {
  fleet::SlabArena arena;
  void* a = arena.allocate(100, 8);
  ASSERT_NE(a, nullptr);
  fleet::SlabArena::Stats st = arena.stats();
  EXPECT_EQ(st.live_blocks, 1u);
  EXPECT_GE(st.live_bytes, 100u);
  arena.deallocate(a, 100, 8);
  st = arena.stats();
  EXPECT_EQ(st.live_blocks, 0u);
  EXPECT_GT(st.pooled_bytes, 0u);
  // Same size class (128-byte blocks): the freed block must come back.
  void* b = arena.allocate(120, 8);
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.stats().reuses, 1u);
  arena.deallocate(b, 120, 8);
  arena.trim();
  st = arena.stats();
  EXPECT_EQ(st.pooled_bytes, 0u);
  EXPECT_EQ(st.live_blocks, 0u);
}

TEST(SlabArena, OversizedAndOveralignedPassThrough) {
  fleet::SlabArena arena;
  // Alignment beyond max_align_t is not pooled but must still round-trip.
  void* p = arena.allocate(64, 128);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 128, 0u);
  arena.deallocate(p, 64, 128);
  EXPECT_EQ(arena.stats().live_blocks, 0u);
}

// ---- routing + materialization -------------------------------------------

TEST(FleetEngine, RoutesAndMatchesFreshSolve) {
  fleet::FleetEngine fleet;
  core::Solver oracle;
  graph::Instance ref = make_instance(7);
  fleet.create(7, ref);
  EXPECT_TRUE(fleet.contains(7));
  EXPECT_FALSE(fleet.contains(8));
  EXPECT_EQ(fleet.epoch(7), 0u);

  const std::vector<inc::Edit> edits = make_edits(ref, 12, 101);
  const u64 epoch = fleet.apply(7, edits);
  EXPECT_GT(epoch, 0u);
  for (const inc::Edit& e : edits) inc::apply_raw(e, ref.f, ref.b);
  const core::Result want = oracle.solve(ref);
  const core::PartitionView got = fleet.view(7);
  EXPECT_EQ(got.num_classes(), want.num_blocks);
  EXPECT_EQ(to_vec(got.labels()), want.q);
  EXPECT_EQ(fleet.epoch(7), epoch);
  EXPECT_EQ(fleet.instance_size(7), ref.size());
}

TEST(FleetEngine, FactoryMaterializesUnknownIds) {
  fleet::FleetEngine fleet;
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id); });
  core::Solver oracle;
  for (fleet::InstanceId id : {u64{3}, u64{99}, u64{100000}}) {
    const core::PartitionView got = fleet.view(id);
    const core::Result want = oracle.solve(make_instance(id));
    EXPECT_EQ(to_vec(got.labels()), want.q) << "id=" << id;
  }
  EXPECT_EQ(fleet.instance_count(), 3u);
  EXPECT_EQ(fleet.instance_size(12345), make_instance(12345).size());
}

TEST(FleetEngine, UnknownIdWithoutFactoryThrows) {
  fleet::FleetEngine fleet;
  EXPECT_THROW(fleet.view(42), std::out_of_range);
  const inc::Edit e = inc::Edit::set_f(0, 1);
  EXPECT_THROW(fleet.apply(42, {&e, 1}), std::out_of_range);
}

TEST(FleetEngine, DuplicateCreateThrows) {
  fleet::FleetEngine fleet;
  fleet.create(1, make_instance(1));
  EXPECT_THROW(fleet.create(1, make_instance(1)), std::invalid_argument);
}

TEST(FleetEngine, RoutingTableGrowsPastHundredsOfIds) {
  fleet::FleetEngine fleet;
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 8); });
  for (fleet::InstanceId id = 0; id < 500; ++id) {
    // Scatter ids across the hash space; every touch must route correctly.
    (void)fleet.instance_size(id * 0x10001u + 7);
  }
  EXPECT_EQ(fleet.instance_count(), 500u);
  for (fleet::InstanceId id = 0; id < 500; ++id) {
    EXPECT_TRUE(fleet.contains(id * 0x10001u + 7));
  }
  EXPECT_FALSE(fleet.contains(3));
}

// ---- warm/cold tiering ---------------------------------------------------

/// Evict→fault-in round trip for one engine kind: view bytes, class count
/// and epoch must all survive the trip, in memory or via a spill dir.
void round_trip_kind(const std::string& kind, const std::string& spill_dir) {
  fleet::FleetConfig cfg;
  cfg.engine = kind;
  cfg.spill_dir = spill_dir;
  fleet::FleetEngine fleet(std::move(cfg));
  graph::Instance ref = make_instance(1);
  fleet.create(1, ref);
  const std::vector<inc::Edit> edits = make_edits(ref, 10, 202);
  const u64 epoch = fleet.apply(1, edits);

  const std::vector<u32> want_labels = to_vec(fleet.view(1).labels());
  const u32 want_classes = fleet.view(1).num_classes();
  ASSERT_TRUE(fleet.is_warm(1)) << kind;
  ASSERT_TRUE(fleet.evict(1)) << kind;
  EXPECT_FALSE(fleet.is_warm(1)) << kind;
  EXPECT_FALSE(fleet.evict(1)) << kind;  // already cold
  EXPECT_EQ(fleet.stats().cold, 1u) << kind;
  // Cold epoch answers from the eviction record, without faulting in.
  EXPECT_EQ(fleet.epoch(1), epoch) << kind;
  EXPECT_FALSE(fleet.is_warm(1)) << kind;
  if (!spill_dir.empty()) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(spill_dir) / "i1.ckpt"))
        << kind;
  }

  const core::PartitionView got = fleet.view(1);  // faults back in
  EXPECT_TRUE(fleet.is_warm(1)) << kind;
  EXPECT_EQ(fleet.stats().faults, 1u) << kind;
  EXPECT_EQ(to_vec(got.labels()), want_labels) << kind << ": view bytes changed across "
                                               << "evict/fault-in";
  EXPECT_EQ(got.num_classes(), want_classes) << kind;
  EXPECT_EQ(fleet.epoch(1), epoch) << kind;
}

TEST(FleetEngine, EvictFaultInRoundTripAllKindsInMemory) {
  for (const auto& info : engines().all()) {
    round_trip_kind(info.name, "");
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(FleetEngine, EvictFaultInRoundTripAllKindsSpillDir) {
  for (const auto& info : engines().all()) {
    TempDir dir("fleet_spill_" + info.name);
    round_trip_kind(info.name, dir.path.string());
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(FleetEngine, SpillDirAdoptedAcrossRestart) {
  TempDir dir("fleet_adopt");
  core::Solver oracle;
  graph::Instance ref = make_instance(5);
  std::vector<inc::Edit> edits = make_edits(ref, 8, 303);
  {
    fleet::FleetConfig cfg;
    cfg.spill_dir = dir.path.string();
    fleet::FleetEngine fleet(std::move(cfg));
    fleet.create(5, ref);
    fleet.apply(5, edits);
    ASSERT_TRUE(fleet.evict(5));
  }
  for (const inc::Edit& e : edits) inc::apply_raw(e, ref.f, ref.b);
  const core::Result want = oracle.solve(ref);

  fleet::FleetConfig cfg;
  cfg.spill_dir = dir.path.string();
  fleet::FleetEngine fleet(std::move(cfg));  // adopts i5.ckpt
  EXPECT_TRUE(fleet.contains(5));
  EXPECT_EQ(fleet.stats().cold, 1u);
  EXPECT_EQ(to_vec(fleet.view(5).labels()), want.q);
}

TEST(FleetEngine, WarmLimitEvictsLruTail) {
  fleet::FleetConfig cfg;
  cfg.warm_limit = 4;
  fleet::FleetEngine fleet(std::move(cfg));
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 24); });
  for (fleet::InstanceId id = 0; id < 12; ++id) (void)fleet.view(id);
  const fleet::FleetStats st = fleet.stats();
  EXPECT_EQ(st.warm, 4u);
  EXPECT_EQ(st.cold, 8u);
  EXPECT_GE(st.evictions, 8u);
  // LRU: the most recently touched ids are the ones still warm.
  EXPECT_TRUE(fleet.is_warm(11));
  EXPECT_TRUE(fleet.is_warm(8));
  EXPECT_FALSE(fleet.is_warm(0));
  // Views of evicted instances still match fresh solves.
  core::Solver oracle;
  for (fleet::InstanceId id = 0; id < 12; ++id) {
    EXPECT_EQ(to_vec(fleet.view(id).labels()), oracle.solve(make_instance(id, 24)).q)
        << "id=" << id;
  }
}

TEST(FleetEngine, SizeAwareAdmissionBoundsWarmBytes) {
  fleet::FleetConfig cfg;
  cfg.warm_limit = 0;
  fleet::FleetEngine probe;
  probe.set_factory([](fleet::InstanceId id) { return make_instance(id, 64); });
  (void)probe.view(0);
  const std::size_t one = probe.stats().warm_bytes;
  ASSERT_GT(one, 0u);

  // Room for about three instances of this footprint.
  const std::size_t limit = one * 3 + one / 2;
  cfg.warm_bytes_limit = limit;
  fleet::FleetEngine fleet(std::move(cfg));
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 64); });
  for (fleet::InstanceId id = 0; id < 10; ++id) (void)fleet.view(id);
  const fleet::FleetStats st = fleet.stats();
  EXPECT_LE(st.warm_bytes, limit);
  EXPECT_GE(st.evictions, 6u);
  EXPECT_EQ(st.oversized_rejects, 0u);
}

TEST(FleetEngine, OversizedInstanceStaysPinnedThenReclaimed) {
  fleet::FleetConfig cfg;
  cfg.warm_limit = 0;
  cfg.warm_bytes_limit = 1;  // nothing fits
  fleet::FleetEngine fleet(std::move(cfg));
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 32); });
  core::Solver oracle;
  // The view must stay valid even though the instance alone busts the cap —
  // it is pinned for the operation, counted oversized, not destroyed.
  const core::PartitionView v = fleet.view(9);
  EXPECT_EQ(to_vec(v.labels()), oracle.solve(make_instance(9, 32)).q);
  fleet::FleetStats st = fleet.stats();
  EXPECT_EQ(st.warm, 1u);
  EXPECT_GE(st.oversized_rejects, 1u);
  // The next operation's sweep reclaims it: only the new pin stays warm.
  (void)fleet.view(10);
  st = fleet.stats();
  EXPECT_EQ(st.warm, 1u);
  EXPECT_EQ(st.cold, 1u);
  EXPECT_FALSE(fleet.is_warm(9));
  EXPECT_GE(st.evictions, 1u);
  // And the evicted one still faults back byte-identical.
  EXPECT_EQ(to_vec(fleet.view(9).labels()), oracle.solve(make_instance(9, 32)).q);
}

TEST(FleetEngine, ArenaRecyclesAcrossEvictChurn) {
  fleet::FleetConfig cfg;
  cfg.engine = "incremental";
  cfg.warm_limit = 2;
  fleet::FleetEngine fleet(std::move(cfg));
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 40); });
  for (int round = 0; round < 3; ++round) {
    for (fleet::InstanceId id = 0; id < 8; ++id) (void)fleet.view(id);
  }
  // Churn must hit the allocator's freelists, not just the global heap.
  EXPECT_GT(fleet.arena().stats().reuses, 0u);
  EXPECT_GT(fleet.stats().arena_bytes, 0u);
}

// ---- batched cold-start --------------------------------------------------

TEST(FleetEngine, ColdFloodFunnelsThroughSolveBatch) {
  constexpr std::size_t kFlood = 64;
  fleet::FleetEngine fleet;
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 24); });
  std::vector<fleet::InstanceEdit> batch;
  std::vector<graph::Instance> refs;
  for (std::size_t i = 0; i < kFlood; ++i) {
    refs.push_back(make_instance(i, 24));
    const inc::Edit e =
        inc::Edit::set_f(static_cast<u32>(i % refs[i].size()), static_cast<u32>(i % 7));
    inc::apply_raw(e, refs[i].f, refs[i].b);
    batch.push_back({i, e});
  }
  fleet.apply_batch(batch);
  const fleet::FleetStats st = fleet.stats();
  EXPECT_GE(st.cold_batches, 1u);
  EXPECT_EQ(st.batched_cold_instances, kFlood);
  EXPECT_EQ(st.edits, kFlood);
  core::Solver oracle;
  for (std::size_t i = 0; i < kFlood; ++i) {
    EXPECT_EQ(to_vec(fleet.view(i).labels()), oracle.solve(refs[i]).q) << "id=" << i;
  }
}

TEST(FleetEngine, ApplyBatchPreservesPerIdOrderAcrossInterleaving) {
  fleet::FleetEngine fleet;
  graph::Instance a = make_instance(1), b = make_instance(2);
  fleet.create(1, a);
  fleet.create(2, b);
  const std::vector<inc::Edit> ea = make_edits(a, 6, 404);
  const std::vector<inc::Edit> eb = make_edits(b, 6, 405);
  std::vector<fleet::InstanceEdit> batch;
  for (std::size_t i = 0; i < 6; ++i) {
    batch.push_back({1, ea[i]});
    batch.push_back({2, eb[i]});
  }
  fleet.apply_batch(batch);
  for (const inc::Edit& e : ea) inc::apply_raw(e, a.f, a.b);
  for (const inc::Edit& e : eb) inc::apply_raw(e, b.f, b.b);
  core::Solver oracle;
  EXPECT_EQ(to_vec(fleet.view(1).labels()), oracle.solve(a).q);
  EXPECT_EQ(to_vec(fleet.view(2).labels()), oracle.solve(b).q);
}

// ---- concurrent warm path (pooled apply_batch) ---------------------------
// TSan targets: these run in the sanitize=thread CI job (the FleetEngine.*
// ctest regex) and pin the warm-fan contract — exactly-once edit
// application under lane contention, lock-free routing reads racing
// caller-lane mutations, and byte/charge parity with a threads=1 apply.

TEST(FleetEngine, WarmFanMatchesSerialChargesAndViews) {
  constexpr std::size_t kIds = 24;
  constexpr std::size_t kRounds = 5;
  constexpr std::size_t kEditsPerRound = 3;

  // Shared per-id edit streams, sampled once against the initial instances
  // (node/label ranges never change, so the streams stay valid all rounds).
  std::vector<std::vector<inc::Edit>> streams(kIds);
  for (std::size_t id = 0; id < kIds; ++id) {
    streams[id] = make_edits(make_instance(id, 32), kRounds * kEditsPerRound, 700 + id);
  }

  struct RunResult {
    std::vector<std::vector<u32>> views;
    std::vector<u64> epochs;
    pram::MetricsSnapshot delta;
  };
  auto run = [&](int threads, pram::WorkerPool* pool) {
    pram::Metrics metrics;
    fleet::FleetConfig cfg;
    cfg.engine = "incremental";
    cfg.warm_limit = 8;  // kIds/3: every batch crosses the evict/fault churn
    cfg.ctx.threads = threads;
    cfg.ctx.metrics = &metrics;
    fleet::FleetEngine fleet(std::move(cfg));
    fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, 32); });
    if (pool != nullptr) fleet.install_pool(pool);

    // Round 0 materializes every id through the cold-batch path; charges up
    // to here are construction-shaped, so compare deltas past this point.
    std::vector<fleet::InstanceEdit> batch;
    for (std::size_t id = 0; id < kIds; ++id) batch.push_back({id, streams[id][0]});
    fleet.apply_batch(batch);
    const pram::MetricsSnapshot base = metrics.snapshot();

    for (std::size_t r = 1; r < kRounds; ++r) {
      batch.clear();
      // Interleave ids within the round so groups carry per-id order.
      for (std::size_t e = 0; e < kEditsPerRound; ++e) {
        for (std::size_t id = 0; id < kIds; ++id) {
          batch.push_back({id, streams[id][r * kEditsPerRound + e]});
        }
      }
      fleet.apply_batch(batch);
    }

    RunResult out;
    const pram::MetricsSnapshot end = metrics.snapshot();
    out.delta.operations = end.operations - base.operations;
    out.delta.rounds = end.rounds - base.rounds;
    out.delta.sort_ops = end.sort_ops - base.sort_ops;
    out.delta.crcw_writes = end.crcw_writes - base.crcw_writes;
    out.delta.edit_repairs = end.edit_repairs - base.edit_repairs;
    out.delta.edit_rebuilds = end.edit_rebuilds - base.edit_rebuilds;
    out.delta.edit_dirty = end.edit_dirty - base.edit_dirty;
    out.delta.view_patched = end.view_patched - base.view_patched;
    out.delta.view_rebuilt = end.view_rebuilt - base.view_rebuilt;
    for (std::size_t id = 0; id < kIds; ++id) {
      out.epochs.push_back(fleet.epoch(id));
      out.views.push_back(to_vec(fleet.view(id).labels()));
    }
    if (pool != nullptr) fleet.install_pool(nullptr);
    return out;
  };

  const RunResult serial = run(1, nullptr);
  pram::WorkerPool pool(4);
  const RunResult pooled = run(4, &pool);

  EXPECT_EQ(pooled.epochs, serial.epochs);
  for (std::size_t id = 0; id < kIds; ++id) {
    EXPECT_EQ(pooled.views[id], serial.views[id]) << "id=" << id;
  }
  // Charge parity with the serial path, field by field.  Wall-clock fields
  // (edit_repair_ns / edit_rebuild_ns) are timing-dependent and excluded.
  EXPECT_EQ(pooled.delta.operations, serial.delta.operations);
  EXPECT_EQ(pooled.delta.rounds, serial.delta.rounds);
  EXPECT_EQ(pooled.delta.sort_ops, serial.delta.sort_ops);
  EXPECT_EQ(pooled.delta.crcw_writes, serial.delta.crcw_writes);
  EXPECT_EQ(pooled.delta.edit_repairs, serial.delta.edit_repairs);
  EXPECT_EQ(pooled.delta.edit_rebuilds, serial.delta.edit_rebuilds);
  EXPECT_EQ(pooled.delta.edit_dirty, serial.delta.edit_dirty);
  EXPECT_EQ(pooled.delta.view_patched, serial.delta.view_patched);
  EXPECT_EQ(pooled.delta.view_rebuilt, serial.delta.view_rebuilt);
}

TEST(FleetEngine, WarmFanAppliesEachEditExactlyOnce) {
  // Width 2: lane 1 is the caller lane, so worker-lane and caller-lane
  // groups run side by side every batch — the tightest contention shape.
  constexpr std::size_t kIds = 32;
  constexpr std::size_t kN = 16;
  constexpr std::size_t kRounds = 8;
  pram::WorkerPool pool(2);
  fleet::FleetConfig cfg;
  cfg.engine = "incremental";
  cfg.warm_limit = 0;  // keep every id warm: all rounds take the fan
  cfg.ctx.threads = 2;
  fleet::FleetEngine fleet(std::move(cfg));
  std::vector<graph::Instance> mirror;
  for (std::size_t id = 0; id < kIds; ++id) {
    mirror.push_back(make_instance(id, kN));
    fleet.create(id, mirror.back());
  }
  fleet.install_pool(&pool);

  // Every edit is guaranteed state-changing (f[x] -> f[x]+1 mod n), so the
  // per-instance epoch advances by exactly one per edit: a dropped or
  // double-applied edit shows up as an epoch mismatch, not just a view one.
  std::vector<fleet::InstanceEdit> batch;
  for (std::size_t r = 0; r < kRounds; ++r) {
    batch.clear();
    for (std::size_t id = 0; id < kIds; ++id) {
      const u32 x = static_cast<u32>((r * 7 + id) % kN);
      const u32 v = static_cast<u32>((mirror[id].f[x] + 1) % kN);
      const inc::Edit e = inc::Edit::set_f(x, v);
      inc::apply_raw(e, mirror[id].f, mirror[id].b);
      batch.push_back({id, e});
    }
    fleet.apply_batch(batch);
  }

  core::Solver oracle;
  for (std::size_t id = 0; id < kIds; ++id) {
    EXPECT_EQ(fleet.epoch(id), kRounds) << "id=" << id;
    EXPECT_EQ(to_vec(fleet.view(id).labels()), oracle.solve(mirror[id]).q) << "id=" << id;
  }
  EXPECT_EQ(fleet.stats().edits, kRounds * kIds);
  fleet.install_pool(nullptr);
}

TEST(FleetEngine, LockFreeObserversRaceCallerMutations) {
  // Reader threads hammer the lock-free observers over the full id range
  // while the caller thread grows the routing table (materialization),
  // fans warm batches, and evicts — the exact races the RouteTable /
  // atomic-tier scheme exists to make safe.  Correctness of the answers is
  // only loosely asserted (tiers move under the readers); the point is
  // that TSan sees the access pattern.
  constexpr std::size_t kIds = 192;  // > 70% of 256: forces table regrowth
  constexpr std::size_t kN = 12;
  constexpr std::size_t kRounds = 6;
  pram::WorkerPool pool(4);
  fleet::FleetConfig cfg;
  cfg.engine = "incremental";
  cfg.warm_limit = 16;
  cfg.ctx.threads = 4;
  fleet::FleetEngine fleet(std::move(cfg));
  fleet.set_factory([](fleet::InstanceId id) { return make_instance(id, kN); });
  fleet.install_pool(&pool);

  std::atomic<bool> stop{false};
  std::atomic<u64> observed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      u64 acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t id = 0; id < kIds; ++id) {
          acc += fleet.contains(id) ? 1 : 0;
          acc += fleet.is_warm(id) ? 1 : 0;
        }
        acc += fleet.warm_count() + fleet.instance_count();
      }
      observed.fetch_add(acc, std::memory_order_relaxed);
    });
  }

  std::vector<graph::Instance> mirror;
  for (std::size_t id = 0; id < kIds; ++id) mirror.push_back(make_instance(id, kN));
  std::vector<fleet::InstanceEdit> batch;
  for (std::size_t r = 0; r < kRounds; ++r) {
    // Each round touches a growing prefix, so materialization (and table
    // growth) keeps happening while readers probe ids not yet inserted.
    const std::size_t upto = kIds * (r + 1) / kRounds;
    batch.clear();
    for (std::size_t id = 0; id < upto; ++id) {
      const u32 x = static_cast<u32>((r * 5 + id) % kN);
      const u32 v = static_cast<u32>((mirror[id].f[x] + 1) % kN);
      const inc::Edit e = inc::Edit::set_f(x, v);
      inc::apply_raw(e, mirror[id].f, mirror[id].b);
      batch.push_back({id, e});
    }
    fleet.apply_batch(batch);
    for (std::size_t id = r; id < upto; id += kRounds) (void)fleet.evict(id);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(observed.load(), 0u);

  EXPECT_EQ(fleet.instance_count(), kIds);
  core::Solver oracle;
  for (std::size_t id = 0; id < kIds; id += 17) {
    EXPECT_EQ(to_vec(fleet.view(id).labels()), oracle.solve(mirror[id]).q) << "id=" << id;
  }
  fleet.install_pool(nullptr);
}

// ---- fleet-mode serving (FLEET_EDIT / FLEET_VIEW over loopback) ----------

struct ServerRunner {
  serve::Server& server;
  std::thread loop;
  explicit ServerRunner(serve::Server& s) : server(s), loop([&s] { s.run(); }) {}
  ~ServerRunner() {
    server.stop();
    loop.join();
  }
};

std::unique_ptr<fleet::FleetEngine> make_served_fleet() {
  auto fleet = std::make_unique<fleet::FleetEngine>();
  fleet->set_factory([](fleet::InstanceId id) { return make_instance(id, 32); });
  return fleet;
}

TEST(FleetServe, FleetEditAndViewRouteByInstance) {
  serve::Server server(make_served_fleet());
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());

  core::Solver oracle;
  graph::Instance r1 = make_instance(1, 32), r2 = make_instance(2, 32);
  const std::vector<inc::Edit> e1 = make_edits(r1, 8, 501);
  const std::vector<inc::Edit> e2 = make_edits(r2, 8, 502);
  const u64 epoch1 = client.fleet_apply(1, e1);
  const u64 epoch2 = client.fleet_apply(2, e2);
  EXPECT_GT(epoch1, 0u);
  EXPECT_GT(epoch2, 0u);
  for (const inc::Edit& e : e1) inc::apply_raw(e, r1.f, r1.b);
  for (const inc::Edit& e : e2) inc::apply_raw(e, r2.f, r2.b);

  const serve::Client::ViewInfo v1 = client.fleet_view(1);
  const serve::Client::ViewInfo v2 = client.fleet_view(2);
  EXPECT_EQ(v1.n, r1.size());
  EXPECT_EQ(v1.num_classes, oracle.solve(r1).num_blocks);
  EXPECT_EQ(v1.epoch, epoch1);
  EXPECT_EQ(v2.num_classes, oracle.solve(r2).num_blocks);
  EXPECT_EQ(v2.epoch, epoch2);
}

TEST(FleetServe, StatsCarriesFleetCounters) {
  serve::Server server(make_served_fleet());
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  const std::vector<inc::Edit> e = {inc::Edit::set_f(0, 1)};
  client.fleet_apply(3, e);
  (void)client.fleet_view(4);
  const auto counters = client.stats();
  auto get = [&](const std::string& key) -> u64 {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing counter " << key;
    return 0;
  };
  EXPECT_EQ(get("fleet_instances"), 2u);
  EXPECT_GE(get("fleet_routes"), 2u);
  EXPECT_EQ(get("fleet_edits"), 1u);
  EXPECT_GE(get("fleet_views"), 1u);
  EXPECT_GT(get("fleet_warm_bytes"), 0u);
}

TEST(FleetServe, ClassicFramesRejectedInFleetMode) {
  serve::Server server(make_served_fleet());
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  EXPECT_THROW((void)client.view(), std::runtime_error);
}

TEST(FleetServe, FleetFramesRejectedInClassicMode) {
  serve::Server server(engines().make("incremental", make_instance(0, 32)));
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  const std::vector<inc::Edit> e = {inc::Edit::set_f(0, 1)};
  EXPECT_THROW((void)client.fleet_apply(1, e), std::runtime_error);
  EXPECT_THROW((void)client.fleet_view(1), std::runtime_error);
}

TEST(FleetServe, InvalidEditRejectedBeforeJournal) {
  serve::Server server(make_served_fleet());
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  const std::vector<inc::Edit> bad = {inc::Edit::set_f(1000000, 0)};  // out of range
  EXPECT_THROW((void)client.fleet_apply(1, bad), std::runtime_error);
  // The connection survives the rejection and the instance is unharmed.
  const std::vector<inc::Edit> good = {inc::Edit::set_f(0, 1)};
  EXPECT_GT(client.fleet_apply(1, good), 0u);
}

TEST(FleetServe, JournalReplaysPerInstanceAcrossRestart) {
  TempDir dir("fleet_journal");
  const std::string wal = (dir.path / "fleet.wal").string();
  core::Solver oracle;
  graph::Instance r1 = make_instance(1, 32), r2 = make_instance(2, 32);
  const std::vector<inc::Edit> e1 = make_edits(r1, 10, 601);
  const std::vector<inc::Edit> e2 = make_edits(r2, 10, 602);
  serve::ServerOptions opt;
  opt.journal_path = wal;
  {
    serve::Server server(make_served_fleet(), opt);
    ServerRunner runner(server);
    serve::Client client = serve::Client::connect("127.0.0.1", server.port());
    client.fleet_apply(1, e1);
    client.fleet_apply(2, e2);
  }
  for (const inc::Edit& e : e1) inc::apply_raw(e, r1.f, r1.b);
  for (const inc::Edit& e : e2) inc::apply_raw(e, r2.f, r2.b);

  // Fresh fleet, same factory: the journal replay must rebuild both
  // instances' states before serving starts.
  serve::Server server(make_served_fleet(), opt);
  ServerRunner runner(server);
  EXPECT_GE(server.stats().recovered_records, 2u);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(client.fleet_view(1).num_classes, oracle.solve(r1).num_blocks);
  EXPECT_EQ(client.fleet_view(2).num_classes, oracle.solve(r2).num_blocks);
}

}  // namespace
}  // namespace sfcp
