// Cross-module property tests tying the string machinery together: every
// m.s.p. implementation agrees; periods, Lyndon factors, suffix arrays,
// necklaces and matching all satisfy their textbook interrelations.
#include <gtest/gtest.h>

#include <algorithm>

#include "strings/lyndon.hpp"
#include "strings/matching.hpp"
#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "strings/suffix_array.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

struct Workload {
  const char* name;
  std::vector<u32> (*make)(std::size_t, util::Rng&);
};

std::vector<u32> mk_random(std::size_t n, util::Rng& rng) {
  return util::random_string(n, 3, rng);
}
std::vector<u32> mk_binary(std::size_t n, util::Rng& rng) {
  return util::random_string(n, 2, rng);
}
std::vector<u32> mk_runs(std::size_t n, util::Rng& rng) {
  return util::runs_string(n, 3, 8, rng);
}
std::vector<u32> mk_periodic(std::size_t n, util::Rng& rng) {
  const std::size_t p = std::max<std::size_t>(1, n / 4);
  return util::periodic_string(p * 4, p, 3, rng);
}

class StringWorkloads : public ::testing::TestWithParam<int> {
 protected:
  static constexpr Workload kWorkloads[] = {
      {"random", mk_random}, {"binary", mk_binary}, {"runs", mk_runs}, {"periodic", mk_periodic}};
  const Workload& workload() const { return kWorkloads[GetParam()]; }
};

TEST_P(StringWorkloads, AllSixMspImplementationsAgree) {
  util::Rng rng(11001 + GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    const auto s = workload().make(4 + rng.below(200), rng);
    const u32 want = strings::msp_brute(s);
    EXPECT_EQ(strings::msp_booth(s), want);
    EXPECT_EQ(strings::msp_duval(s), want);
    EXPECT_EQ(strings::msp_shiloach(s), want);
    EXPECT_EQ(strings::msp_suffix_array(s), want);
    EXPECT_EQ(strings::minimal_starting_point(s, strings::MspStrategy::Simple), want);
    EXPECT_EQ(strings::minimal_starting_point(s, strings::MspStrategy::Efficient), want);
  }
}

TEST_P(StringWorkloads, CanonicalRotationIsLeastAmongAll) {
  util::Rng rng(11003 + GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const auto s = workload().make(2 + rng.below(80), rng);
    const auto canon = strings::canonical_rotation(s);
    for (u32 r = 0; r < s.size(); ++r) {
      std::vector<u32> rot(s.size());
      for (std::size_t t = 0; t < s.size(); ++t) rot[t] = s[(r + t) % s.size()];
      EXPECT_TRUE(canon <= rot) << "rotation " << r;
    }
  }
}

TEST_P(StringWorkloads, PeriodDividesAndRepeats) {
  util::Rng rng(11005 + GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    const auto s = workload().make(1 + rng.below(150), rng);
    const u32 p = strings::smallest_period_seq(s);
    ASSERT_GT(p, 0u);
    EXPECT_EQ(s.size() % p, 0u);
    for (std::size_t i = p; i < s.size(); ++i) EXPECT_EQ(s[i], s[i - p]);
    EXPECT_EQ(strings::smallest_period_parallel(s), p);
    EXPECT_EQ(strings::is_repeating(s), p < s.size());
  }
}

TEST_P(StringWorkloads, FirstLyndonFactorIsMspOfPrimitiveStrings) {
  // For a primitive (non-repeating) string, the m.s.p. equals the start of
  // a least rotation, which is the start of the last Lyndon factor of s·s
  // truncated appropriately — validated here via the direct property: the
  // rotation at msp is <= the rotation at every Lyndon factor start.
  util::Rng rng(11007 + GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const auto s = workload().make(2 + rng.below(60), rng);
    const u32 m = strings::msp_booth(s);
    for (const u32 start : strings::lyndon_factorization(s)) {
      EXPECT_LE(strings::compare_rotations(s, m, start), 0);
    }
  }
}

TEST_P(StringWorkloads, SuffixArrayOrdersRotationsOfDoubledString) {
  util::Rng rng(11011 + GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    const auto s = workload().make(2 + rng.below(60), rng);
    if (strings::is_repeating(s)) continue;  // rotation order needs primitivity
    std::vector<u32> doubled(s.begin(), s.end());
    doubled.insert(doubled.end(), s.begin(), s.end());
    const auto sa = strings::build_suffix_array(doubled);
    // Restricted to starts < |s|, suffix rank order == rotation order.
    std::vector<u32> rot_order;
    for (const u32 pos : sa.sa) {
      if (pos < s.size()) rot_order.push_back(pos);
    }
    ASSERT_EQ(rot_order.size(), s.size());
    for (std::size_t i = 1; i < rot_order.size(); ++i) {
      EXPECT_LE(strings::compare_rotations(s, rot_order[i - 1], rot_order[i]), 0);
    }
  }
}

TEST_P(StringWorkloads, OccurrencesOfPeriodPrefixTileTheString) {
  util::Rng rng(11013 + GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const auto s = workload().make(2 + rng.below(100), rng);
    const u32 p = strings::smallest_period_seq(s);
    const std::vector<u32> prefix(s.begin(), s.begin() + p);
    const auto hits = strings::find_occurrences(s, prefix, strings::MatchStrategy::Kmp);
    // The prefix occurs at least at every multiple of p.
    for (u32 q = 0; q + p <= s.size(); q += p) {
      EXPECT_TRUE(std::find(hits.begin(), hits.end(), q) != hits.end()) << "offset " << q;
    }
  }
}

TEST_P(StringWorkloads, NecklaceClassesRefineLengthAndContent) {
  util::Rng rng(11017 + GetParam());
  std::vector<std::vector<u32>> strs;
  for (int i = 0; i < 30; ++i) strs.push_back(workload().make(1 + rng.below(20), rng));
  const auto classes = strings::necklace_classes(strings::make_string_list(strs));
  for (std::size_t i = 0; i < strs.size(); ++i) {
    for (std::size_t j = 0; j < strs.size(); ++j) {
      if (classes.label[i] == classes.label[j]) {
        EXPECT_EQ(strings::canonical_necklace(strs[i]), strings::canonical_necklace(strs[j]));
      }
    }
  }
}

std::string workload_name(const ::testing::TestParamInfo<int>& info) {
  static constexpr const char* kNames[] = {"random", "binary", "runs", "periodic"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, StringWorkloads, ::testing::Range(0, 4), workload_name);

}  // namespace
}  // namespace sfcp
