#pragma once
// `sfcp-wire v1` — the length-prefixed binary protocol serve::Server and
// serve::Client speak over a byte stream (TCP or an in-process loopback).
//
// Handshake: each side sends the 8-byte magic 7F 's' 'f' 'c' 'w' 'v' '1' 0A
// before any frame and verifies its peer's.  A future v2 bumps the magic, so
// version mismatch is detected before any frame is parsed.
//
// Frame: [u32 len][u8 type][payload] with len = 1 + payload bytes; every
// integer little-endian.  Payload layouts per type:
//
// Requests (client -> server):
//   Edit       u32 count, count x (u8 kind: 0 set_f / 1 set_b, u32 node, u32 value)
//   View       (empty)
//   ClassOf    u32 node
//   Members    u32 class
//   Labels     (empty)
//   Stats      (empty)
//   Checkpoint u32 path_len, path bytes (empty = the server's configured path)
//   Subscribe  (empty)
//   FleetEdit  u64 instance, u32 count, count x (u8 kind, u32 node, u32 value)
//              — the fleet-mode Edit; acked with Edited carrying the
//              INSTANCE's epoch after the flush
//   FleetView  u64 instance — the fleet-mode View; answered with ViewInfo
//
// Responses (server -> client):
//   Error       u32 msg_len, msg bytes (a request never fails silently)
//   Edited      u64 epoch, u32 accepted — deferred to the epoch flush, so the
//               ack carries the epoch the batch landed in
//   ViewInfo    u64 epoch, u32 n, u32 num_classes
//   Class       u64 epoch, u32 class_id
//   MembersData u64 epoch, u32 count, u32[count] member nodes (ascending)
//   LabelsData  u64 epoch, u32 num_classes, u32 n, u32[n] canonical labels
//   StatsData   u32 count, count x ([u8 key_len][key bytes][u64 value]),
//               optionally followed by a profile section when the server has
//               phase-profile data (SFCP_PROFILE builds): u8 version (1),
//               u32 phase_count, phase_count x ([u16 path_len][path bytes]
//               [u64 ns][u64 count][u64 flops][u64 bytes]).  Absent section =
//               old-format payload (pre-profile servers); clients that stop
//               after the counters (old clients) are unaffected because the
//               section is strictly trailing.  An unknown version is skipped
//               whole.
//   Ok          u64 epoch
//   Notify      u64 epoch, u8 full, u32 count, u32[count] changed canonical
//               class ids — the SUBSCRIBE stream; full = 1 downgrades to a
//               whole-partition refresh (count == 0)

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "inc/edit.hpp"
#include "pram/types.hpp"
#include "prof/profile.hpp"

namespace sfcp::serve {

/// The 8-byte magic both peers exchange at connect.
std::span<const unsigned char, 8> wire_magic() noexcept;

/// Upper bound on a frame payload (guards the length prefix against
/// corrupt/hostile peers before any allocation happens).
inline constexpr u32 kMaxFramePayload = 1u << 28;

enum class FrameType : u8 {
  // requests
  kEdit = 0x01,
  kView = 0x02,
  kClassOf = 0x03,
  kMembers = 0x04,
  kLabels = 0x05,
  kStats = 0x06,
  kCheckpoint = 0x07,
  kSubscribe = 0x08,
  kFleetEdit = 0x09,
  kFleetView = 0x0A,
  // responses
  kError = 0x40,
  kEdited = 0x41,
  kViewInfo = 0x42,
  kClass = 0x43,
  kMembersData = 0x44,
  kLabelsData = 0x45,
  kStatsData = 0x46,
  kOk = 0x47,
  kNotify = 0x48,
};

/// Human-readable frame-type name ("Edit", "Notify", ...; "?" when unknown).
std::string_view frame_type_name(FrameType t) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// ---- payload building / parsing ------------------------------------------

/// Little-endian payload builder; append-only into an owned buffer.
class PayloadWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_bytes(const void* data, std::size_t len);
  const std::string& str() const noexcept { return buf_; }
  std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Little-endian payload parser over a borrowed buffer.  Throws
/// std::runtime_error("sfcp-wire: truncated <what>") when the payload runs
/// out mid-field, so malformed frames fail with a named field.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}
  u8 get_u8(const char* what);
  u32 get_u32(const char* what);
  u64 get_u64(const char* what);
  std::string_view get_bytes(std::size_t len, const char* what);
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws when bytes remain — a well-formed frame is consumed exactly.
  void expect_end(const char* context) const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Appends one framed message ([len][type][payload]) to `out`.
void append_frame(std::string& out, FrameType type, std::string_view payload);

/// Appends the wire magic (the connect handshake) to `out`.
void append_magic(std::string& out);

// ---- shared payload codecs -----------------------------------------------
// The layouts both peers (and the tests) must agree on, kept in one place.

std::string encode_edit_request(std::span<const inc::Edit> edits);
std::vector<inc::Edit> decode_edit_request(std::string_view payload);

/// FleetEdit routes an edit batch to one instance of a fleet-mode server.
std::string encode_fleet_edit_request(u64 instance, std::span<const inc::Edit> edits);
struct FleetEditRequest {
  u64 instance = 0;
  std::vector<inc::Edit> edits;
};
FleetEditRequest decode_fleet_edit_request(std::string_view payload);

/// FleetView asks for one instance's ViewInfo.
std::string encode_fleet_view_request(u64 instance);
u64 decode_fleet_view_request(std::string_view payload);

std::string encode_error(std::string_view message);
std::string decode_error(std::string_view payload);

std::string encode_notify(u64 epoch, bool full, std::span<const u32> classes);
struct Notification {
  u64 epoch = 0;
  bool full = true;            ///< whole-partition refresh owed
  std::vector<u32> classes;    ///< changed canonical class ids (empty when full)
};
Notification decode_notify(std::string_view payload);

/// Appends the optional STATS profile section (layout in the frame table
/// above).  No-op for an empty tree — absence IS the empty encoding, which
/// is what keeps pre-profile clients working.
void append_profile_section(PayloadWriter& w, const prof::ProfileTree& tree);

/// Decodes the optional trailing profile section and consumes the reader to
/// the end: an already-exhausted reader yields an empty tree (old-format
/// payload), an unknown section version is skipped whole.
prof::ProfileTree decode_profile_section(PayloadReader& r);

// ---- incremental frame extraction ----------------------------------------

/// Reassembles frames from an arbitrarily chunked byte stream (non-blocking
/// reads deliver partial frames).  feed() appends bytes; next() pops the
/// earliest complete frame, handling the handshake magic first.  Throws
/// std::runtime_error on a foreign magic or an implausible length prefix —
/// the connection is then unrecoverable and should be closed.
class FrameSplitter {
 public:
  void feed(const char* data, std::size_t len) { buf_.append(data, len); }
  std::optional<Frame> next();
  /// Whether the peer's handshake magic has been consumed and verified.
  bool handshaken() const noexcept { return !expect_magic_; }
  std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
  bool expect_magic_ = true;
};

}  // namespace sfcp::serve
