// Unit tests for the instance/string generators (shape guarantees).
#include <gtest/gtest.h>

#include "graph/cycle_structure.hpp"
#include "graph/functional_graph.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Generators, RandomFunctionWellFormed) {
  util::Rng rng(1501);
  const auto inst = util::random_function(1000, 5, rng);
  EXPECT_NO_THROW(graph::validate(inst));
  for (const u32 b : inst.b) EXPECT_LT(b, 5u);
}

TEST(Generators, RandomFunctionDeterministicPerSeed) {
  util::Rng a(9), b(9), c(10);
  const auto ia = util::random_function(100, 3, a);
  const auto ib = util::random_function(100, 3, b);
  const auto ic = util::random_function(100, 3, c);
  EXPECT_EQ(ia.f, ib.f);
  EXPECT_NE(ia.f, ic.f);
}

TEST(Generators, PermutationIsBijection) {
  util::Rng rng(1503);
  const auto inst = util::random_permutation(2000, 3, rng);
  std::vector<u8> hit(2000, 0);
  for (const u32 y : inst.f) {
    EXPECT_EQ(hit[y], 0);
    hit[y] = 1;
  }
}

TEST(Generators, EqualCyclesShape) {
  util::Rng rng(1507);
  const auto inst = util::equal_cycles(10, 8, 2, 3, rng);
  ASSERT_EQ(inst.size(), 80u);
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  EXPECT_EQ(cs.num_cycles(), 10u);
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(cs.cycle_length(c), 8u);
}

TEST(Generators, LongTailShape) {
  util::Rng rng(1509);
  const auto inst = util::long_tail(500, 20, 2, rng);
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  EXPECT_EQ(cs.num_cycles(), 1u);
  EXPECT_EQ(cs.cycle_length(0), 20u);
  EXPECT_EQ(cs.cycle_nodes.size(), 20u);
}

TEST(Generators, BushyValid) {
  util::Rng rng(1511);
  const auto inst = util::bushy(800, 6, 4, 3, rng);
  EXPECT_NO_THROW(graph::validate(inst));
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  EXPECT_GE(cs.num_cycles(), 1u);
}

TEST(Generators, MergeableValid) {
  util::Rng rng(1513);
  const auto inst = util::mergeable(700, 5, rng);
  EXPECT_NO_THROW(graph::validate(inst));
}

TEST(Generators, PrimitiveStringIsPrimitive) {
  util::Rng rng(1517);
  for (const std::size_t n : {2u, 6u, 100u}) {
    const auto s = util::random_primitive_string(n, 2, rng);
    EXPECT_FALSE(strings::is_repeating(s));
  }
}

TEST(Generators, PeriodicStringHasPeriodDividingP) {
  util::Rng rng(1519);
  const auto s = util::periodic_string(60, 6, 3, rng);
  EXPECT_EQ(s.size(), 60u);
  const u32 p = strings::smallest_period_seq(s);
  EXPECT_EQ(6u % p, 0u);  // smallest period divides the construction period
}

TEST(Generators, StringListBudgetRespected) {
  util::Rng rng(1523);
  for (auto dist : {util::LengthDistribution::Uniform, util::LengthDistribution::ManyShort,
                    util::LengthDistribution::FewLong, util::LengthDistribution::PowerOfTwo}) {
    const auto list = util::random_string_list(100, 1000, 4, dist, rng);
    EXPECT_EQ(list.size(), 100u);
    EXPECT_GE(list.total_symbols(), 100u);
    EXPECT_LE(list.total_symbols(), 1100u);
    for (std::size_t i = 0; i < list.size(); ++i) EXPECT_GE(list.view(i).size(), 1u);
  }
}

TEST(Generators, PaperInstancesStable) {
  const auto inst = util::paper_example_2_2();
  EXPECT_EQ(inst.size(), 16u);
  EXPECT_EQ(util::paper_example_3_4().size(), 19u);
  EXPECT_EQ(util::paper_example_2_2_expected_q().size(), 16u);
}

}  // namespace
}  // namespace sfcp
