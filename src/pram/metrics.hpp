#pragma once
// Work/depth accounting: the reproduction's stand-in for the paper's
// "operations" measure.
//
// Every algorithm in the library charges its work to the currently installed
// Metrics sink (if any).  Charging happens in bulk (once per parallel loop,
// not once per element) so instrumentation does not distort wall-clock
// measurements.  `rounds` counts synchronous PRAM rounds (parallel-loop
// barriers), the analogue of parallel time.

#include <atomic>
#include <cstdint>
#include <string>

namespace sfcp::pram {

/// Plain-value copy of a Metrics sink (atomics relaxed-loaded once); the
/// form batched results hand back per instance.
struct MetricsSnapshot {
  std::uint64_t operations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t sort_ops = 0;
  std::uint64_t crcw_writes = 0;
  std::uint64_t edit_repairs = 0;
  std::uint64_t edit_rebuilds = 0;
  std::uint64_t edit_dirty = 0;
  std::uint64_t view_patched = 0;
  std::uint64_t view_rebuilt = 0;
};

/// Aggregate work/depth counters for one measured region.
struct Metrics {
  std::atomic<std::uint64_t> operations{0};  ///< total work (PRAM operations)
  std::atomic<std::uint64_t> rounds{0};      ///< synchronous parallel rounds
  std::atomic<std::uint64_t> sort_ops{0};    ///< work spent inside integer sorting
  std::atomic<std::uint64_t> crcw_writes{0}; ///< arbitrary-CRCW winner writes
  // Edit-phase counters (the incremental engine, inc/incremental_solver):
  std::atomic<std::uint64_t> edit_repairs{0};   ///< edits served by local repair
  std::atomic<std::uint64_t> edit_rebuilds{0};  ///< edits served by full re-solve
  std::atomic<std::uint64_t> edit_dirty{0};     ///< nodes relabelled across edits
  // View counters (core::PartitionView production):
  std::atomic<std::uint64_t> view_patched{0};  ///< nodes carried in view patch deltas
  std::atomic<std::uint64_t> view_rebuilt{0};  ///< nodes copied into fresh view roots

  void reset() noexcept {
    operations.store(0, std::memory_order_relaxed);
    rounds.store(0, std::memory_order_relaxed);
    sort_ops.store(0, std::memory_order_relaxed);
    crcw_writes.store(0, std::memory_order_relaxed);
    edit_repairs.store(0, std::memory_order_relaxed);
    edit_rebuilds.store(0, std::memory_order_relaxed);
    edit_dirty.store(0, std::memory_order_relaxed);
    view_patched.store(0, std::memory_order_relaxed);
    view_rebuilt.store(0, std::memory_order_relaxed);
  }

  std::uint64_t ops() const noexcept { return operations.load(std::memory_order_relaxed); }
  std::uint64_t round_count() const noexcept { return rounds.load(std::memory_order_relaxed); }

  MetricsSnapshot snapshot() const noexcept {
    return MetricsSnapshot{operations.load(std::memory_order_relaxed),
                           rounds.load(std::memory_order_relaxed),
                           sort_ops.load(std::memory_order_relaxed),
                           crcw_writes.load(std::memory_order_relaxed),
                           edit_repairs.load(std::memory_order_relaxed),
                           edit_rebuilds.load(std::memory_order_relaxed),
                           edit_dirty.load(std::memory_order_relaxed),
                           view_patched.load(std::memory_order_relaxed),
                           view_rebuilt.load(std::memory_order_relaxed)};
  }

  std::string summary() const;
};

/// The sink charges go to: the thread-installed ExecutionContext's sink when
/// a context is active (null field = don't count), else the process-wide
/// ScopedMetrics sink; null means "don't count".
Metrics* current_metrics() noexcept;

/// Installs `m` as the process-wide default sink for the lifetime of the
/// guard (thread-shared; an active ExecutionContext takes precedence).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(Metrics& m) noexcept;
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  Metrics* saved_;
};

/// Charges `n` units of work to the current sink (no-op when none).
inline void charge(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->operations.fetch_add(n, std::memory_order_relaxed);
  }
}

/// Charges one synchronous round plus `work` operations.
inline void charge_round(std::uint64_t work) noexcept {
  if (Metrics* m = current_metrics()) {
    m->rounds.fetch_add(1, std::memory_order_relaxed);
    m->operations.fetch_add(work, std::memory_order_relaxed);
  }
}

/// Charges work performed inside integer sorting (tracked separately because
/// the paper attributes its only super-linear term to sorting).
inline void charge_sort(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->operations.fetch_add(n, std::memory_order_relaxed);
    m->sort_ops.fetch_add(n, std::memory_order_relaxed);
  }
}

inline void charge_crcw(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->crcw_writes.fetch_add(n, std::memory_order_relaxed);
  }
}

/// Charges one edit to the current sink: `repaired` selects the repair vs.
/// rebuild counter, `dirty` is the number of nodes the edit touched.
inline void charge_edit(bool repaired, std::uint64_t dirty) noexcept {
  if (Metrics* m = current_metrics()) {
    (repaired ? m->edit_repairs : m->edit_rebuilds).fetch_add(1, std::memory_order_relaxed);
    m->edit_dirty.fetch_add(dirty, std::memory_order_relaxed);
  }
}

/// Charges one view production: `patched` selects the incremental-delta vs.
/// fresh-root counter, `nodes` is the delta size (or n for a root).  This is
/// what the O(dirty) view tests and bench_snapshot assert against.
inline void charge_view(bool patched, std::uint64_t nodes) noexcept {
  if (Metrics* m = current_metrics()) {
    (patched ? m->view_patched : m->view_rebuilt).fetch_add(nodes, std::memory_order_relaxed);
  }
}

}  // namespace sfcp::pram
