// Tests for the PRAM step simulator, including executable versions of the
// paper's model claims:
//   * find-first-one needs (at least) common CRCW, not CREW  [9]
//   * Algorithm partition's BB-table writes need ARBITRARY CRCW, not common
//     (the paper's Remark after Lemma 3.11)
//   * pointer jumping list-ranks in ceil(log2 n) rounds on CREW
#include <gtest/gtest.h>

#include <algorithm>

#include "pram/simulator.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using pram::PramModel;
using pram::Simulator;
using pram::WriteRequest;

TEST(Simulator, SingleWriterWorksUnderEveryModel) {
  for (const auto model : {PramModel::Erew, PramModel::Crew, PramModel::CommonCrcw,
                           PramModel::ArbitraryCrcw}) {
    Simulator sim(model, 8, 8);
    // Processor i writes i*i into cell i: no conflicts anywhere.
    const bool ok = sim.step([](u32 pid, std::span<const u32>) {
      return std::vector<WriteRequest>{{pid, pid * pid}};
    });
    EXPECT_TRUE(ok) << to_string(model);
    for (u32 i = 0; i < 8; ++i) EXPECT_EQ(sim.memory()[i], i * i);
  }
}

TEST(Simulator, CrewFaultsOnWriteConflict) {
  Simulator sim(PramModel::Crew, 4, 4);
  const bool ok = sim.step([](u32, std::span<const u32>) {
    return std::vector<WriteRequest>{{0, 7}};  // everyone writes cell 0
  });
  EXPECT_FALSE(ok);
  EXPECT_TRUE(sim.report().faulted);
  EXPECT_NE(sim.report().fault.find("write conflict"), std::string::npos);
}

TEST(Simulator, ErewFaultsOnReadConflict) {
  Simulator sim(PramModel::Erew, 4, 4);
  const bool ok = sim.step(
      [](u32 pid, std::span<const u32>) {
        return std::vector<WriteRequest>{{pid, 1}};
      },
      [](u32) { return std::vector<u32>{0}; });  // everyone reads cell 0
  EXPECT_FALSE(ok);
  EXPECT_NE(sim.report().fault.find("read conflict"), std::string::npos);
}

TEST(Simulator, CommonCrcwAcceptsAgreeingWriters) {
  Simulator sim(PramModel::CommonCrcw, 2, 16);
  const bool ok = sim.step([](u32, std::span<const u32>) {
    return std::vector<WriteRequest>{{0, 42}};  // all write the SAME value
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(sim.memory()[0], 42u);
}

TEST(Simulator, CommonCrcwRejectsDisagreeingWriters) {
  Simulator sim(PramModel::CommonCrcw, 2, 4);
  const bool ok = sim.step([](u32 pid, std::span<const u32>) {
    return std::vector<WriteRequest>{{0, pid}};  // different values
  });
  EXPECT_FALSE(ok);
  EXPECT_NE(sim.report().fault.find("disagree"), std::string::npos);
}

TEST(Simulator, ArbitraryCrcwPicksOneWinner) {
  Simulator sim(PramModel::ArbitraryCrcw, 2, 8);
  const bool ok = sim.step([](u32 pid, std::span<const u32>) {
    return std::vector<WriteRequest>{{0, 100 + pid}};
  });
  EXPECT_TRUE(ok);
  // Deterministic resolution: lowest pid wins in this simulator.
  EXPECT_EQ(sim.memory()[0], 100u);
}

TEST(Simulator, OutOfRangeWriteFaults) {
  Simulator sim(PramModel::ArbitraryCrcw, 4, 1);
  const bool ok = sim.step([](u32, std::span<const u32>) {
    return std::vector<WriteRequest>{{99, 1}};
  });
  EXPECT_FALSE(ok);
  EXPECT_NE(sim.report().fault.find("out-of-range"), std::string::npos);
}

// ---- paper claim: find-first-one, Fich–Ragde–Wigderson [9] ---------------
// All processors holding a 1 raise a shared flag; on common CRCW they all
// write the same value so this is legal.  The same program on CREW faults.
TEST(Simulator, FindFirstFlagRaisingNeedsCommonCrcw) {
  const std::vector<u32> bits{0, 0, 1, 0, 1, 1, 0, 1};
  auto program = [&](u32 pid, std::span<const u32>) {
    std::vector<WriteRequest> w;
    if (bits[pid]) w.push_back({0, 1});  // raise the shared "any set" flag
    return w;
  };
  Simulator common(PramModel::CommonCrcw, 1, 8);
  EXPECT_TRUE(common.step(program));
  EXPECT_EQ(common.memory()[0], 1u);

  Simulator crew(PramModel::Crew, 1, 8);
  EXPECT_FALSE(crew.step(program));
}

// ---- paper claim: Algorithm partition needs ARBITRARY CRCW ---------------
// (Remark after Lemma 3.11.)  Each processor writes its own POSITION into
// BB[EQ[d1], EQ[d2]] — writers to the same cell carry DIFFERENT values, so
// common CRCW faults while arbitrary CRCW elects a representative.
TEST(Simulator, AlgorithmPartitionWriteNeedsArbitraryCrcw) {
  // Two cycles with identical label pairs: processors 0 and 1 both target
  // the BB cell keyed by their (equal) pair encodings.
  auto program = [](u32 pid, std::span<const u32>) {
    // Both write their own position (different values) into cell 3.
    return std::vector<WriteRequest>{{3, pid + 10}};
  };
  Simulator arbitrary(PramModel::ArbitraryCrcw, 8, 2);
  EXPECT_TRUE(arbitrary.step(program));
  const u32 winner = arbitrary.memory()[3];
  EXPECT_TRUE(winner == 10 || winner == 11);

  Simulator common(PramModel::CommonCrcw, 8, 2);
  EXPECT_FALSE(common.step(program)) << "the paper's Remark: arbitrary CRCW is required";
}

// ---- pointer jumping: list ranking in ceil(log2 n) rounds on CREW --------
TEST(Simulator, PointerJumpingRanksListInLogRounds) {
  const u32 n = 64;
  // Memory layout: next[0..n), rank[n..2n).  A simple chain i -> i+1 with
  // tail n-1 pointing to itself.
  Simulator sim(PramModel::Crew, 2 * n, n);
  for (u32 i = 0; i < n; ++i) {
    sim.memory()[i] = std::min(i + 1, n - 1);
    sim.memory()[n + i] = i + 1 < n ? 1 : 0;
  }
  u64 rounds = 0;
  for (; rounds < 30; ++rounds) {
    bool all_done = true;
    for (u32 i = 0; i < n; ++i) {
      if (sim.memory()[i] != n - 1) all_done = false;
    }
    if (all_done) break;
    const bool ok = sim.step([n](u32 pid, std::span<const u32> mem) {
      const u32 nxt = mem[pid];
      // rank += rank[next]; next = next[next]  (classic jump; reads are
      // concurrent — CREW allows it — writes are to own cells only).
      return std::vector<WriteRequest>{{pid, mem[nxt]},
                                       {n + pid, mem[n + pid] + mem[n + nxt]}};
    });
    ASSERT_TRUE(ok);
  }
  // Distance to the tail must now be exact, computed in <= ceil(lg n) + 1.
  EXPECT_LE(rounds, 7u);
  for (u32 i = 0; i < n; ++i) {
    EXPECT_EQ(sim.memory()[n + i], n - 1 - i) << "rank of node " << i;
  }
}

TEST(Simulator, RunAccountsWorkAndRounds) {
  Simulator sim(PramModel::ArbitraryCrcw, 16, 4);
  u32 counter = 0;
  const auto report = sim.run(
      [&](u32 pid, std::span<const u32>) {
        return std::vector<WriteRequest>{{pid, pid}};
      },
      [&] { return ++counter > 5; }, 100);
  EXPECT_EQ(report.rounds, 5u);
  EXPECT_EQ(report.operations, 20u);  // 4 active processors x 5 rounds
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace sfcp
