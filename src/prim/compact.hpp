#pragma once
// Parallel compaction (a.k.a. pack / filter): collect the indices or values
// whose flag is set, preserving order.  Scan-based, O(n) work.

#include <cstddef>
#include <span>
#include <vector>

#include "pram/parallel_for.hpp"
#include "pram/types.hpp"
#include "prim/scan.hpp"

namespace sfcp::prim {

/// Returns the indices i (ascending) for which pred(i) is truthy.
template <typename Pred>
std::vector<u32> pack_index_if(std::size_t n, Pred&& pred) {
  std::vector<u32> flag(n);
  pram::parallel_for(0, n, [&](std::size_t i) { flag[i] = pred(i) ? 1u : 0u; });
  std::vector<u32> pos(n);
  const u32 total = exclusive_scan<u32>(flag, pos);
  std::vector<u32> out(total);
  pram::parallel_for(0, n, [&](std::size_t i) {
    if (flag[i]) out[pos[i]] = static_cast<u32>(i);
  });
  return out;
}

/// Returns the indices i with flags[i] != 0, ascending.
std::vector<u32> pack_index(std::span<const u8> flags);

/// Returns values[i] for each i with flags[i] != 0, in order.
std::vector<u32> pack_values(std::span<const u32> values, std::span<const u8> flags);

}  // namespace sfcp::prim
