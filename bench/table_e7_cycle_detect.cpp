// E7 — Section 5, Algorithm "finding cycle nodes": the paper's Euler-tour
// detector vs the f^N-image doubling detector vs the sequential walk, on
// cycle-heavy (permutation-like) and tree-heavy (random-function) inputs.
#include <iostream>

#include "graph/cycle_detect.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E7 (S5): finding cycle nodes\n\n";
  util::Table table({"n", "shape", "strategy", "cycle_nodes", "ops", "ops/n", "ms"});
  util::Rng rng(7);

  const auto run = [&](const char* shape, const graph::Instance& inst,
                       graph::CycleDetectStrategy strat, const char* name) {
    pram::Metrics m;
    util::Timer timer;
    std::vector<u8> on_cycle;
    {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      on_cycle = graph::find_cycle_nodes(inst.f, strat);
    }
    u64 cyc = 0;
    for (const u8 v : on_cycle) cyc += v;
    const double ms = timer.millis();
    table.add_row(inst.size(), shape, name, cyc, m.ops(),
                  static_cast<double>(m.ops()) / static_cast<double>(inst.size()), ms);
    json.record("e7_cycle_detect", inst.size(), std::string(name) + "/" + shape,
                pram::threads(), ms);
  };

  for (int e = 16; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const auto perm = util::random_permutation(n, 3, rng);   // all nodes on cycles
    const auto rnd = util::random_function(n, 3, rng);       // ~sqrt(n) cycle nodes
    const auto tail = util::long_tail(n, 8, 3, rng);         // almost no cycle nodes
    for (const auto& [shape, inst] :
         {std::pair<const char*, const graph::Instance*>{"permutation", &perm},
          {"random", &rnd},
          {"long-tail", &tail}}) {
      run(shape, *inst, graph::CycleDetectStrategy::EulerTour, "euler-tour (paper S5)");
      run(shape, *inst, graph::CycleDetectStrategy::FunctionPowers, "f^N doubling");
      run(shape, *inst, graph::CycleDetectStrategy::Sequential, "sequential walk");
    }
  }
  table.print();
  std::cout << "\n(euler-tour's ops/n is shape-independent and near-linear — the S5\n"
            << " claim; f^N doubling pays the lg n squaring factor.)\n";
  return 0;
}
