// The PartitionView contract: an immutable, versioned query surface whose
// canonical labels are byte-identical to core::solve, whose snapshots are
// isolated from later edits, and whose incremental production does work
// proportional to the dirty region rather than n.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/solver.hpp"
#include "inc/incremental_solver.hpp"
#include "pram/metrics.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<u32> to_vec(std::span<const u32> s) { return {s.begin(), s.end()}; }

void expect_view_matches_result(const core::PartitionView& v, const core::Result& r,
                                const std::string& what) {
  ASSERT_EQ(v.size(), r.q.size()) << what;
  ASSERT_EQ(v.num_classes(), r.num_blocks) << what;
  EXPECT_EQ(to_vec(v.labels()), r.q) << what;
  EXPECT_EQ(v.counters().num_cycles, r.num_cycles) << what;
  EXPECT_EQ(v.counters().cycle_nodes, r.cycle_nodes) << what;
  EXPECT_EQ(v.counters().kept_tree_nodes, r.kept_tree_nodes) << what;
  EXPECT_EQ(v.counters().residual_tree_nodes, r.residual_tree_nodes) << what;
}

// ---- construction and queries --------------------------------------------

TEST(PartitionView, EmptyView) {
  core::PartitionView v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.num_classes(), 0u);
  EXPECT_EQ(v.epoch(), 0u);
  EXPECT_TRUE(v.labels().empty());
  EXPECT_THROW(v.class_of(0), std::out_of_range);
  EXPECT_EQ(v.classes().begin(), v.classes().end());
}

TEST(PartitionView, FromLabelsCanonicalizes) {
  const std::vector<u32> raw = {7, 3, 7, 9, 3, 7};
  const core::PartitionView v = core::PartitionView::from_labels(raw, 42);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.num_classes(), 3u);
  EXPECT_EQ(v.epoch(), 42u);
  EXPECT_EQ(to_vec(v.labels()), (std::vector<u32>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(v.class_of(3), 2u);
  EXPECT_TRUE(v.same_class(0, 5));
  EXPECT_FALSE(v.same_class(0, 1));
  EXPECT_EQ(v.class_size(0), 3u);
  EXPECT_EQ(v.class_size(2), 1u);
  EXPECT_EQ(to_vec(v.class_members(1)), (std::vector<u32>{1, 4}));
}

TEST(PartitionView, ClassIterationCoversEveryNodeOnce) {
  util::Rng rng(50);
  const auto inst = util::random_function(500, 4, rng);
  core::Solver solver;
  const core::PartitionView v = solver.solve_view(inst);
  std::vector<u8> seen(v.size(), 0);
  u32 classes = 0;
  for (const auto [id, members] : v.classes()) {
    EXPECT_EQ(id, classes);
    EXPECT_EQ(members.size(), v.class_size(id));
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (u32 m : members) {
      EXPECT_EQ(v.class_of(m), id);
      EXPECT_EQ(seen[m], 0);
      seen[m] = 1;
    }
    ++classes;
  }
  EXPECT_EQ(classes, v.num_classes());
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), static_cast<long>(v.size()));
}

TEST(PartitionView, OutOfRangeQueriesThrow) {
  const core::PartitionView v = core::PartitionView::from_labels(std::vector<u32>{0, 0, 1});
  EXPECT_THROW(v.class_of(3), std::out_of_range);
  EXPECT_THROW(v.same_class(0, 3), std::out_of_range);
  EXPECT_THROW(v.class_members(2), std::out_of_range);
  EXPECT_THROW(v.class_size(2), std::out_of_range);
}

// ---- every producer agrees with core::solve ------------------------------

TEST(PartitionView, SolveViewMatchesSolveForEveryRegistryStrategy) {
  util::Rng rng(51);
  const auto instances = {util::random_function(800, 4, rng),
                          util::random_permutation(600, 3, rng),
                          util::long_tail(700, 32, 4, rng)};
  for (const auto& inst : instances) {
    const core::Result expected = core::solve(inst);
    for (const auto& s : sfcp::registry().all()) {
      core::Solver solver(s.options);
      const core::PartitionView v = solver.solve_view(inst, 7);
      EXPECT_EQ(v.epoch(), 7u) << s.name;
      expect_view_matches_result(v, expected, s.name);
    }
  }
}

TEST(PartitionView, ResultViewLvalueAndRvalueAgree) {
  util::Rng rng(52);
  const auto inst = util::bushy(600, 8, 5, 4, rng);
  core::Result r = core::solve(inst);
  const core::PartitionView a = r.view(3);
  expect_view_matches_result(a, r, "lvalue view");
  const std::vector<u32> q = r.q;
  const core::PartitionView b = std::move(r).view(3);
  EXPECT_EQ(to_vec(b.labels()), q);
  // And round-trip back to a Result.
  const core::Result back = b.to_result();
  EXPECT_EQ(back.q, q);
  EXPECT_EQ(back.num_blocks, b.num_classes());
}

// ---- incremental views: O(dirty) production, byte-identical labels -------

TEST(PartitionView, IncrementalViewStaysCanonicalUnderMixedEdits) {
  util::Rng rng(53);
  auto inst = util::random_function(1500, 4, rng);
  util::Rng stream_rng(54);
  const auto stream =
      util::random_edit_stream(inst, 120, util::EditMix::Uniform, 6, stream_rng);
  inc::IncrementalSolver solver(inst);
  for (const auto& e : stream) {
    if (e.kind == inc::Edit::Kind::SetF) {
      solver.set_f(e.node, e.value);
    } else {
      solver.set_b(e.node, e.value);
    }
    const core::PartitionView v = solver.view();
    const core::Result fresh = core::solve(solver.instance());
    ASSERT_EQ(to_vec(v.labels()), fresh.q);
    ASSERT_EQ(v.num_classes(), fresh.num_blocks);
  }
}

TEST(PartitionView, ViewIsCachedPerEpoch) {
  util::Rng rng(55);
  inc::IncrementalSolver solver(util::random_function(1000, 4, rng));
  const core::PartitionView a = solver.view();
  const core::PartitionView b = solver.view();
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.labels().data(), b.labels().data());  // same shared representation
  solver.set_b(0, 5);
  const core::PartitionView c = solver.view();
  EXPECT_GT(c.epoch(), a.epoch());
}

TEST(PartitionView, ViewWorkIsProportionalToDirtyRegion) {
  // Localized (leaf) edits dirty O(1) nodes each; producing a view after
  // each must publish only that delta, never an O(n) root — including past
  // the chain-depth bound, where the chain collapses into one merged patch
  // (O(cumulative dirty)) rather than flattening O(n).  The counters
  // distinguish the regimes: view_patched counts delta entries,
  // view_rebuilt counts nodes copied into fresh roots.
  util::Rng rng(56);
  const std::size_t n = 20000;
  const std::size_t kEdits = 300;  // > kMaxChainDepth: crosses the collapse
  auto inst = util::random_function(n, 4, rng);
  util::Rng stream_rng(57);
  const auto stream =
      util::random_edit_stream(inst, kEdits, util::EditMix::LocalizedHotspot, 6, stream_rng);
  pram::Metrics metrics;
  inc::IncrementalSolver solver(std::move(inst), core::Options::parallel(),
                                pram::ExecutionContext{}.with_metrics(&metrics));
  solver.view();  // the initial root, paid once
  const auto base = metrics.snapshot();
  EXPECT_EQ(base.view_rebuilt, n);
  for (const auto& e : stream) {
    if (e.kind == inc::Edit::Kind::SetF) {
      solver.set_f(e.node, e.value);
    } else {
      solver.set_b(e.node, e.value);
    }
    solver.view();
  }
  const auto after = metrics.snapshot();
  EXPECT_EQ(after.view_rebuilt, base.view_rebuilt) << "a localized stream must never rebuild";
  EXPECT_EQ(after.edit_rebuilds, 0u);
  const u64 patched = after.view_patched - base.view_patched;
  EXPECT_LE(patched, 3 * after.edit_dirty)
      << "views publish the dirty delta (collapses re-publish merged deltas)";
  EXPECT_LT(patched, n / 4) << "localized views must cost far less than one O(n) pass";
  // The collapsed chain still answers correctly.
  const core::Result fresh = core::solve(solver.instance());
  EXPECT_EQ(to_vec(solver.view().labels()), fresh.q);
}

// ---- snapshot isolation --------------------------------------------------

TEST(PartitionView, ReaderViewUnchangedByLaterEdits) {
  util::Rng rng(58);
  auto inst = util::random_function(1200, 4, rng);
  inc::IncrementalSolver solver(inst);

  // Reader A materializes immediately; reader B holds its view lazily and
  // only queries after the writer has moved on — both must see epoch-0.
  const core::Result at_epoch0 = core::solve(inst);
  const core::PartitionView eager = solver.view();
  const core::PartitionView lazy = solver.view();
  const std::vector<u32> eager_labels = to_vec(eager.labels());

  util::Rng stream_rng(59);
  const auto stream = util::random_edit_stream(inst, 60, util::EditMix::Uniform, 6, stream_rng);
  for (const auto& e : stream) {
    if (e.kind == inc::Edit::Kind::SetF) {
      solver.set_f(e.node, e.value);
    } else {
      solver.set_b(e.node, e.value);
    }
    solver.view();  // advance the published chain while readers hold theirs
  }

  EXPECT_EQ(to_vec(eager.labels()), eager_labels);
  EXPECT_EQ(to_vec(eager.labels()), at_epoch0.q);
  EXPECT_EQ(to_vec(lazy.labels()), at_epoch0.q);
  EXPECT_EQ(lazy.num_classes(), at_epoch0.num_blocks);

  // The current view reflects the edited instance, not epoch 0.
  const core::Result now = core::solve(solver.instance());
  EXPECT_EQ(to_vec(solver.view().labels()), now.q);
}

TEST(PartitionView, ConcurrentReadersShareOneView) {
  util::Rng rng(60);
  inc::IncrementalSolver solver(util::random_function(5000, 4, rng));
  solver.set_b(1, 5);
  const core::PartitionView v = solver.view();
  // Many threads force the lazy indexes concurrently; call_once must hand
  // every reader the same coherent canonical labels and CSR.
  const core::Result fresh = core::solve(solver.instance());
  std::vector<std::thread> readers;
  std::vector<int> ok(8, 0);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      const std::vector<u32> q = to_vec(v.labels());
      bool good = q == fresh.q;
      for (u32 c = 0; c < v.num_classes(); c += 7) {
        const auto members = v.class_members(c);
        good = good && !members.empty() && v.class_of(members[0]) == c;
      }
      ok[static_cast<std::size_t>(t)] = good ? 1 : 0;
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(std::accumulate(ok.begin(), ok.end(), 0), 8);
}

}  // namespace
}  // namespace sfcp
