// Tests for the necklace / cyclic-shift-equivalence module, including the
// Shiloach-style sequential canonizer (paper reference [17]).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::canonical_necklace;
using strings::count_necklaces;
using strings::make_string_list;
using strings::msp_shiloach;
using strings::necklace_classes;
using strings::rotation_equivalent;

TEST(MspShiloach, MatchesBoothRandom) {
  util::Rng rng(5001);
  for (int iter = 0; iter < 100; ++iter) {
    const auto s = util::random_string(1 + rng.below(200), 2 + rng.below(4), rng);
    EXPECT_EQ(msp_shiloach(s), strings::msp_booth(s)) << "iter " << iter;
  }
}

TEST(MspShiloach, MatchesBoothRepeating) {
  util::Rng rng(5003);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t p = 1 + rng.below(8);
    const std::size_t reps = 2 + rng.below(6);
    const auto s = util::periodic_string(p * reps, p, 3, rng);
    EXPECT_EQ(msp_shiloach(s), strings::msp_booth(s)) << "iter " << iter;
  }
}

TEST(MspShiloach, MatchesParallelAlgorithms) {
  util::Rng rng(5007);
  for (int iter = 0; iter < 40; ++iter) {
    const auto s = util::random_string(2 + rng.below(300), 3, rng);
    const u32 want = msp_shiloach(s);
    EXPECT_EQ(strings::minimal_starting_point(s, strings::MspStrategy::Simple), want);
    EXPECT_EQ(strings::minimal_starting_point(s, strings::MspStrategy::Efficient), want);
  }
}

TEST(MspShiloach, EdgeCases) {
  EXPECT_EQ(msp_shiloach(std::vector<u32>{}), 0u);
  EXPECT_EQ(msp_shiloach(std::vector<u32>{4}), 0u);
  EXPECT_EQ(msp_shiloach(std::vector<u32>{5, 5, 5}), 0u);
  EXPECT_EQ(msp_shiloach(std::vector<u32>{3, 1, 2}), 1u);
  EXPECT_EQ(msp_shiloach(std::vector<u32>{2, 1, 2, 1}), 1u);
}

TEST(CanonicalNecklace, ReducesPeriodAndRotates) {
  // (2,1,2,1) -> period (2,1) -> least rotation (1,2).
  std::vector<u32> s{2, 1, 2, 1};
  EXPECT_EQ(canonical_necklace(s), (std::vector<u32>{1, 2}));
  EXPECT_TRUE(canonical_necklace(std::vector<u32>{}).empty());
}

TEST(CanonicalNecklace, InvariantUnderRotation) {
  util::Rng rng(5011);
  for (int iter = 0; iter < 30; ++iter) {
    const auto s = util::random_string(2 + rng.below(60), 3, rng);
    const auto canon = canonical_necklace(s);
    for (u32 r = 1; r < s.size(); ++r) {
      std::vector<u32> rot(s.size());
      for (std::size_t t = 0; t < s.size(); ++t) rot[t] = s[(r + t) % s.size()];
      EXPECT_EQ(canonical_necklace(rot), canon) << "rotation " << r;
    }
  }
}

TEST(RotationEquivalent, BasicPairs) {
  EXPECT_TRUE(rotation_equivalent(std::vector<u32>{1, 2, 3}, std::vector<u32>{3, 1, 2}));
  EXPECT_FALSE(rotation_equivalent(std::vector<u32>{1, 2, 3}, std::vector<u32>{3, 2, 1}));
  EXPECT_FALSE(rotation_equivalent(std::vector<u32>{1, 2}, std::vector<u32>{1, 2, 1, 2}));
  EXPECT_TRUE(rotation_equivalent(std::vector<u32>{}, std::vector<u32>{}));
  EXPECT_TRUE(rotation_equivalent(std::vector<u32>{7, 7}, std::vector<u32>{7, 7}));
}

TEST(RotationEquivalent, MatchesBruteForce) {
  util::Rng rng(5013);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t n = 1 + rng.below(12);
    const auto a = util::random_string(n, 2, rng);
    auto b = util::random_string(n, 2, rng);
    if (rng.below(2) == 0) {
      // Make b an actual rotation of a half the time.
      const u32 r = rng.below(static_cast<u32>(n));
      for (std::size_t t = 0; t < n; ++t) b[t] = a[(r + t) % n];
    }
    bool brute = false;
    for (u32 r = 0; r < n && !brute; ++r) {
      bool eq = true;
      for (std::size_t t = 0; t < n && eq; ++t) eq = b[t] == a[(r + t) % n];
      brute = eq;
    }
    EXPECT_EQ(rotation_equivalent(a, b), brute) << "iter " << iter;
  }
}

TEST(NecklaceClasses, PaperCyclesCAndD) {
  // Example 3.1: cycles C (period 1,2,1,3 repeated thrice) and D (1,2,1,3
  // once) are equivalent; their B-label strings must share a class.
  std::vector<std::vector<u32>> strs{
      {1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3},  // B_C
      {1, 2, 1, 3},                          // B_D
      {1, 2, 1, 1},                          // different necklace
  };
  const auto r = necklace_classes(make_string_list(strs));
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_NE(r.label[0], r.label[2]);
}

TEST(NecklaceClasses, LabelsAreFirstOccurrenceCanonical) {
  std::vector<std::vector<u32>> strs{{2, 1}, {1, 2}, {3, 3}, {3}};
  const auto r = necklace_classes(make_string_list(strs));
  // {2,1} and {1,2} equivalent -> class 0; {3,3} reduces to {3} -> class 1
  // shared with {3}.
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.label, (std::vector<u32>{0, 0, 1, 1}));
}

TEST(NecklaceClasses, GroupsMatchPairwiseBrute) {
  util::Rng rng(5017);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::vector<u32>> strs;
    const std::size_t m = 2 + rng.below(12);
    for (std::size_t i = 0; i < m; ++i) {
      strs.push_back(util::random_string(1 + rng.below(8), 2, rng));
    }
    const auto r = necklace_classes(make_string_list(strs));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        // Cyclic shift equivalence in the paper's sense: equal smallest
        // repeating prefixes up to rotation (lengths may differ).
        const bool equiv = canonical_necklace(strs[i]) == canonical_necklace(strs[j]);
        EXPECT_EQ(r.label[i] == r.label[j], equiv) << i << "," << j;
      }
    }
  }
}

TEST(NecklaceClasses, ExhaustiveEnumerationMatchesBurnside) {
  // All k-ary strings of length n grouped into classes must produce
  // count_necklaces(n, k) classes... except that classes here merge strings
  // whose canonical PREFIX matches (period reduction), so restrict to
  // aperiodic check via exact-length classes: enumerate strings of length n
  // only, and count distinct canonical (necklace, period) pairs, which for
  // fixed n is exactly the necklace count.
  for (u32 n : {1u, 2u, 3u, 4u, 5u, 6u}) {
    for (u32 k : {2u, 3u}) {
      std::set<std::pair<std::vector<u32>, u32>> distinct;
      std::vector<u32> s(n, 1);
      u64 total = 1;
      for (u32 i = 0; i < n; ++i) total *= k;
      for (u64 code = 0; code < total; ++code) {
        u64 c = code;
        for (u32 i = 0; i < n; ++i) {
          s[i] = static_cast<u32>(c % k) + 1;
          c /= k;
        }
        distinct.emplace(canonical_necklace(s), strings::smallest_period_seq(s));
      }
      EXPECT_EQ(distinct.size(), count_necklaces(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CountNecklaces, KnownValues) {
  EXPECT_EQ(count_necklaces(0, 2), 1u);
  EXPECT_EQ(count_necklaces(1, 2), 2u);
  EXPECT_EQ(count_necklaces(2, 2), 3u);   // 00, 01, 11
  EXPECT_EQ(count_necklaces(3, 2), 4u);   // 000, 001, 011, 111
  EXPECT_EQ(count_necklaces(4, 2), 6u);
  EXPECT_EQ(count_necklaces(6, 2), 14u);
  EXPECT_EQ(count_necklaces(4, 3), 24u);
}

}  // namespace
}  // namespace sfcp
