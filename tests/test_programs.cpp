// Tests for the paper's algorithms executed as PRAM programs on the step
// simulator: cost-model claims (rounds, work) and model-separation claims
// become assertions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cycle_labeling.hpp"
#include "pram/programs.hpp"
#include "prim/list_ranking.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using pram::make_broadcast_or;
using pram::make_list_rank;
using pram::make_partition_round;
using pram::PramModel;
using pram::simulate_partition;

TEST(Programs, BroadcastOrOneRoundOnCommonCrcw) {
  auto p = make_broadcast_or(PramModel::CommonCrcw, {0, 1, 0, 1, 1, 0});
  const auto report = p.run();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(p.sim->memory()[0], 1u);
}

TEST(Programs, BroadcastOrAllZeros) {
  auto p = make_broadcast_or(PramModel::CommonCrcw, {0, 0, 0});
  EXPECT_TRUE(p.run().ok());
  EXPECT_EQ(p.sim->memory()[0], 0u);
}

TEST(Programs, BroadcastOrFaultsOnCrew) {
  // Two raisers -> concurrent write -> the [9] lower-bound separation.
  auto p = make_broadcast_or(PramModel::Crew, {1, 1});
  EXPECT_FALSE(p.run().ok());
}

TEST(Programs, ListRankLogRoundsAndCorrect) {
  const u32 n = 128;
  std::vector<u32> next(n);
  for (u32 i = 0; i + 1 < n; ++i) next[i] = i + 1;
  next[n - 1] = kNone;
  auto p = make_list_rank(PramModel::Crew, next);
  const auto report = p.run();
  EXPECT_TRUE(report.ok());
  EXPECT_LE(report.rounds, 9u) << "ceil(lg 128) = 7 jumping rounds (+ slack)";
  const auto want = prim::list_rank(next, prim::ListRankStrategy::Sequential);
  for (u32 i = 0; i < n; ++i) {
    EXPECT_EQ(p.sim->memory()[n + i], want[i]) << "rank of " << i;
  }
}

TEST(Programs, ListRankWorkIsNLogN) {
  // Wyllie's jumping is O(n log n) work — visible in the simulator's
  // operation counter (active processor-rounds).
  const u32 n = 256;
  std::vector<u32> next(n);
  for (u32 i = 0; i + 1 < n; ++i) next[i] = i + 1;
  next[n - 1] = kNone;
  auto p = make_list_rank(PramModel::Crew, next);
  const auto report = p.run();
  EXPECT_GE(report.operations, static_cast<u64>(n) * 7);  // ~ n * lg n
  EXPECT_LE(report.operations, static_cast<u64>(n) * 12);
}

TEST(Programs, PartitionRoundNeedsArbitraryCrcw) {
  // Two equal label pairs -> two writers with different position values.
  const std::vector<u32> eq{1, 2, 1, 2};  // positions 0 and 2 collide at j=1
  auto arb = make_partition_round(PramModel::ArbitraryCrcw, eq, 1);
  EXPECT_TRUE(arb.run().ok());
  auto common = make_partition_round(PramModel::CommonCrcw, eq, 1);
  EXPECT_FALSE(common.run().ok()) << "the paper's Remark after Lemma 3.11";
}

TEST(Programs, SimulatePartitionGroupsEqualCycles) {
  // Three cycles of length 4: #0 and #2 identical, #1 different.
  const std::vector<u32> labels{1, 2, 1, 3, 1, 2, 3, 3, 1, 2, 1, 3};
  const auto run = simulate_partition(PramModel::ArbitraryCrcw, labels, 3, 4);
  ASSERT_TRUE(run.report.ok());
  EXPECT_EQ(run.eq[0], run.eq[8]) << "equal cycles share the EQ label of their first node";
  EXPECT_NE(run.eq[0], run.eq[4]);
  // 2 * log2(4) = 4 synchronous rounds.
  EXPECT_EQ(run.report.rounds, 4u);
}

TEST(Programs, SimulatePartitionMatchesLibrary) {
  // Cross-validate the simulator run against the production
  // partition_equal_strings on random same-length cycle label strings.
  util::Rng rng(12001);
  for (int iter = 0; iter < 10; ++iter) {
    const u32 k = 2 + rng.below(4);
    const u32 l = 1u << (2 + rng.below(3));  // 4..16
    std::vector<u32> labels(k * l);
    for (auto& v : labels) v = rng.below(3);  // small alphabet -> collisions
    const auto sim = simulate_partition(PramModel::ArbitraryCrcw, labels, k, l);
    ASSERT_TRUE(sim.report.ok());
    const auto lib = core::partition_equal_strings(labels, k, l);
    ASSERT_EQ(lib.size(), k);
    for (u32 a = 0; a < k; ++a) {
      for (u32 b = 0; b < k; ++b) {
        EXPECT_EQ(sim.eq[a * l] == sim.eq[b * l], lib[a] == lib[b])
            << "cycles " << a << "," << b << " (iter " << iter << ")";
      }
    }
  }
}

TEST(Programs, SimulatePartitionWorkIsLinear) {
  // Participation halves per iteration: total work ~ n + n/2 + ... < 2n
  // per phase pair — the Lemma 3.11 O(n) operations claim.
  const u32 k = 4, l = 64;
  std::vector<u32> labels(k * l);
  util::Rng rng(12007);
  for (auto& v : labels) v = rng.below(2);
  const auto run = simulate_partition(PramModel::ArbitraryCrcw, labels, k, l);
  ASSERT_TRUE(run.report.ok());
  EXPECT_LE(run.report.operations, static_cast<u64>(4) * k * l)
      << "sum_j 2 * n/2^j <= 4n active processor-rounds";
}

TEST(Programs, SimulatePartitionValidatesInput) {
  EXPECT_THROW(simulate_partition(PramModel::ArbitraryCrcw, {0, 1, 2}, 1, 3),
               std::invalid_argument);  // l not a power of two
  EXPECT_THROW(simulate_partition(PramModel::ArbitraryCrcw, {0, 1}, 2, 2),
               std::invalid_argument);  // k*l mismatch
  EXPECT_THROW(simulate_partition(PramModel::ArbitraryCrcw, {9, 1}, 1, 2),
               std::invalid_argument);  // label out of range
}

}  // namespace
}  // namespace sfcp
