// E9 / A2 — substrate microbenchmarks: scan, integer sort, list ranking
// (three strategies), find-first, Euler tour construction.
#include <benchmark/benchmark.h>

#include <numeric>

#include "graph/cycle_structure.hpp"
#include "graph/euler_tour.hpp"
#include "graph/rooted_forest.hpp"
#include "prim/find_first.hpp"
#include "prim/integer_sort.hpp"
#include "prim/list_ranking.hpp"
#include "prim/scan.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

void BM_Scan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<u64> in(n), out(n);
  for (auto& v : in) v = rng.below(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::inclusive_scan<u64>(in, out));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_Scan)->Range(1 << 12, 1 << 22);

void BM_IntegerSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<u64> keys(n);
  for (auto& k : keys) k = rng.below(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::sort_order_by_key(keys, n));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_IntegerSort)->Range(1 << 12, 1 << 21);

void BM_ListRank(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto strategy = static_cast<prim::ListRankStrategy>(state.range(1));
  util::Rng rng(3);
  // One long random-order list.
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);
  std::vector<u32> next(n, kNone);
  for (std::size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::list_rank(next, strategy));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(strategy == prim::ListRankStrategy::Sequential      ? "sequential"
                 : strategy == prim::ListRankStrategy::PointerJumping ? "pointer_jumping"
                                                                      : "ruling_set");
}
BENCHMARK(BM_ListRank)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2}});

void BM_FindFirst(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u8> flags(n, 0);
  flags[n / 2] = 1;  // hit in the middle
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::find_first_set(flags));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n / 2));
}
BENCHMARK(BM_FindFirst)->Range(1 << 14, 1 << 22);

void BM_EulerTourBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  const auto inst = util::random_function(n, 3, rng);
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  const auto forest = graph::build_rooted_forest(inst.f, cs.on_cycle);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_euler_tour(forest));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_EulerTourBuild)->Range(1 << 14, 1 << 20);

}  // namespace
