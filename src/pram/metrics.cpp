#include "pram/metrics.hpp"

#include <sstream>

#include "pram/execution_context.hpp"

namespace sfcp::pram {

namespace {
Metrics*& sink_ref() noexcept {
  static Metrics* sink = nullptr;
  return sink;
}
}  // namespace

Metrics* current_metrics() noexcept {
  if (const ExecutionContext* c = current_context()) return c->metrics;
  return sink_ref();
}

ScopedMetrics::ScopedMetrics(Metrics& m) noexcept : saved_(sink_ref()) { sink_ref() = &m; }

ScopedMetrics::~ScopedMetrics() { sink_ref() = saved_; }

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "ops=" << operations.load(std::memory_order_relaxed)
     << " rounds=" << rounds.load(std::memory_order_relaxed)
     << " sort_ops=" << sort_ops.load(std::memory_order_relaxed)
     << " crcw_writes=" << crcw_writes.load(std::memory_order_relaxed);
  const std::uint64_t repairs = edit_repairs.load(std::memory_order_relaxed);
  const std::uint64_t rebuilds = edit_rebuilds.load(std::memory_order_relaxed);
  if (repairs || rebuilds) {
    os << " edit_repairs=" << repairs << " edit_rebuilds=" << rebuilds
       << " edit_dirty=" << edit_dirty.load(std::memory_order_relaxed);
    const std::uint64_t rns = edit_repair_ns.load(std::memory_order_relaxed);
    const std::uint64_t bns = edit_rebuild_ns.load(std::memory_order_relaxed);
    if (rns || bns) os << " edit_repair_ns=" << rns << " edit_rebuild_ns=" << bns;
  }
  const std::uint64_t vpatched = view_patched.load(std::memory_order_relaxed);
  const std::uint64_t vrebuilt = view_rebuilt.load(std::memory_order_relaxed);
  if (vpatched || vrebuilt) {
    os << " view_patched=" << vpatched << " view_rebuilt=" << vrebuilt;
  }
  return os.str();
}

}  // namespace sfcp::pram
