// Unit tests for smallest repeating prefix (period) finding.
#include <gtest/gtest.h>

#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::is_repeating;
using strings::RankTable;
using strings::smallest_period_parallel;
using strings::smallest_period_seq;

u32 period_brute(std::span<const u32> s) {
  const std::size_t n = s.size();
  for (u32 p = 1; p <= n; ++p) {
    if (n % p != 0) continue;
    bool ok = true;
    for (std::size_t i = p; i < n && ok; ++i) ok = s[i] == s[i - p];
    if (ok) return p;
  }
  return static_cast<u32>(n);
}

TEST(Period, Empty) {
  std::vector<u32> s;
  EXPECT_EQ(smallest_period_seq(s), 0u);
}

TEST(Period, SingleSymbol) {
  std::vector<u32> s{5};
  EXPECT_EQ(smallest_period_seq(s), 1u);
  EXPECT_FALSE(is_repeating(s));
}

TEST(Period, AllEqual) {
  std::vector<u32> s(16, 3);
  EXPECT_EQ(smallest_period_seq(s), 1u);
  EXPECT_TRUE(is_repeating(s));
}

TEST(Period, Primitive) {
  std::vector<u32> s{1, 2, 3, 4};
  EXPECT_EQ(smallest_period_seq(s), 4u);
  EXPECT_FALSE(is_repeating(s));
}

TEST(Period, PaperExample31) {
  // B-label string of cycle C in Example 3.1: (1,2,1,3) repeated 3 times.
  std::vector<u32> s{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3};
  EXPECT_EQ(smallest_period_seq(s), 4u);
}

TEST(Period, NonDividingBorderIsNotAPeriod) {
  // "aba" has border "a" but 2 does not divide 3 -> primitive.
  std::vector<u32> s{1, 2, 1};
  EXPECT_EQ(smallest_period_seq(s), 3u);
}

TEST(Period, SequentialMatchesBruteRandom) {
  util::Rng rng(101);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t p = 1 + rng.below(8);
    const std::size_t reps = 1 + rng.below(6);
    auto s = util::periodic_string(p * reps, p, 3, rng);
    EXPECT_EQ(smallest_period_seq(s), period_brute(s)) << "iter " << iter;
  }
}

TEST(Period, ParallelMatchesSequentialRandom) {
  util::Rng rng(103);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t p = 1 + rng.below(12);
    const std::size_t reps = 1 + rng.below(8);
    auto s = util::periodic_string(p * reps, p, 2 + rng.below_u32(4), rng);
    EXPECT_EQ(smallest_period_parallel(s), smallest_period_seq(s)) << "iter " << iter;
  }
}

TEST(Period, ParallelOnLargeString) {
  util::Rng rng(107);
  auto s = util::periodic_string(1 << 14, 1 << 5, 3, rng);
  EXPECT_EQ(smallest_period_parallel(s), smallest_period_seq(s));
}

TEST(RankTableTest, EqualSubstrings) {
  //            0  1  2  3  4  5  6  7
  std::vector<u32> s{1, 2, 1, 2, 1, 2, 3, 1};
  const RankTable t(s);
  EXPECT_TRUE(t.equal(0, 2, 2));   // "12" == "12"
  EXPECT_TRUE(t.equal(0, 2, 4));   // "1212" == "1212"
  EXPECT_FALSE(t.equal(0, 1, 2));  // "12" != "21"
  EXPECT_FALSE(t.equal(2, 4, 3));  // "121" != "123"
  EXPECT_TRUE(t.equal(3, 3, 5));   // identity
}

TEST(RankTableTest, RandomAgainstDirectCompare) {
  util::Rng rng(109);
  auto s = util::random_string(500, 3, rng);
  const RankTable t(s);
  for (int iter = 0; iter < 2000; ++iter) {
    const u32 len = 1 + rng.below_u32(100);
    const u32 i = rng.below_u32(static_cast<u32>(s.size()) - len + 1);
    const u32 j = rng.below_u32(static_cast<u32>(s.size()) - len + 1);
    const bool ref = std::equal(s.begin() + i, s.begin() + i + len, s.begin() + j);
    EXPECT_EQ(t.equal(i, j, len), ref) << "i=" << i << " j=" << j << " len=" << len;
  }
}

class PeriodSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodSweep, SequentialAndParallelAgree) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  for (u32 sigma : {1u, 2u, 4u}) {
    auto s = util::random_string(n, sigma, rng);
    EXPECT_EQ(smallest_period_parallel(s), smallest_period_seq(s))
        << "n=" << n << " sigma=" << sigma;
    EXPECT_EQ(smallest_period_seq(s), period_brute(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PeriodSweep, ::testing::Values(1, 2, 3, 4, 6, 12, 60, 64, 96, 120));

}  // namespace
}  // namespace sfcp
