// incremental_server — a REPL-style serving loop over the sfcp::Engine
// facade: load or generate an instance once, pick an engine from
// sfcp::engines() ("incremental" repairs per edit, "batch" re-solves per
// epoch), then answer a stream of edits and queries against immutable
// PartitionView snapshots.  Pipe a script in, or drive it interactively:
//
//   $ ./incremental_server
//   > gen random 100000 42
//   n=100000 engine=incremental classes=214 epoch=0
//   > setb 17 3
//   ok (repair, 1 dirty) classes=215 epoch=1
//   > classof 17
//   class(17) = 214
//   > members 214
//   class 214 (1 node): 17
//   > checkpoint warm.ckpt
//   checkpoint written to warm.ckpt
//
// Commands: gen <random|permutation|mergeable|longtail> <n> [seed]
//           engine <incremental|batch|sharded>  (selects engine; reloads instance)
//           load <path>            (text or binary instance, autodetected)
//           save <path> [binary]   (instance only)
//           checkpoint <path>      (sfcp-checkpoint v1: warm engine state)
//           restore <path>         (restart warm from a checkpoint)
//           setf <x> <y>  |  setb <x> <label>
//           edits <path>           (apply an sfcp-edits v1 stream)
//           stream <localized|uniform|churn> <count> [seed]
//           classof <x> | query <x> | members <c> | blocks
//           stats  |  help  |  quit
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "engine.hpp"
#include "pram/metrics.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

using namespace sfcp;

namespace {

void print_help() {
  std::cout << "commands:\n"
               "  gen <random|permutation|mergeable|longtail> <n> [seed]\n"
               "  engine <incremental|batch|sharded>  select engine kind (re-adopts instance)\n"
               "  load <path>              load instance (text/binary autodetect)\n"
               "  save <path> [binary]     save current instance\n"
               "  checkpoint <path>        write warm engine state (sfcp-checkpoint v1)\n"
               "  restore <path>           restart warm from a checkpoint\n"
               "  setf <x> <y>             f[x] <- y\n"
               "  setb <x> <label>         b[x] <- label\n"
               "  edits <path>             apply an sfcp-edits v1 file\n"
               "  stream <localized|uniform|churn> <count> [seed]\n"
               "  classof <x>              canonical class of x (alias: query)\n"
               "  members <c>              nodes of class c\n"
               "  blocks                   current class count\n"
               "  stats                    edit/delta/policy statistics + metrics\n"
               "  quit\n";
}

std::optional<graph::Instance> generate(const std::string& kind, std::size_t n, u64 seed) {
  util::Rng rng(seed);
  if (kind == "random") return util::random_function(n, 4, rng);
  if (kind == "permutation") return util::random_permutation(n, 4, rng);
  if (kind == "mergeable") return util::mergeable(n, 4, rng);
  if (kind == "longtail") return util::long_tail(n, std::max<std::size_t>(4, n / 16), 4, rng);
  return std::nullopt;
}

std::optional<util::EditMix> parse_mix(const std::string& name) {
  if (name == "localized") return util::EditMix::LocalizedHotspot;
  if (name == "uniform") return util::EditMix::Uniform;
  if (name == "churn") return util::EditMix::CycleChurn;
  return std::nullopt;
}

}  // namespace

int main() {
  std::unique_ptr<Engine> engine;
  std::string engine_kind = "incremental";
  pram::Metrics metrics;
  util::Rng stream_seed_rng(0xd1ce);

  const auto ensure = [&]() -> Engine* {
    if (!engine) std::cout << "no instance loaded (use gen or load)\n";
    return engine.get();
  };
  const auto adopt = [&](graph::Instance inst) {
    engine = engines().make(engine_kind, std::move(inst), core::Options::parallel(),
                            pram::ExecutionContext{}.with_metrics(&metrics));
    const core::PartitionView v = engine->view();
    std::cout << "n=" << engine->size() << " engine=" << engine->kind()
              << " classes=" << v.num_classes() << " epoch=" << v.epoch() << "\n";
  };
  const auto incremental = [&]() -> IncrementalEngine* {
    return dynamic_cast<IncrementalEngine*>(engine.get());
  };
  const auto report_edits = [&](u64 edits_applied) {
    if (IncrementalEngine* ie = incremental()) {
      const auto& s = ie->solver().stats();
      std::cout << "applied " << edits_applied << " edit(s) (repairs=" << s.repairs
                << " rebuilds=" << s.rebuilds << " lifetime)";
    } else {
      std::cout << "applied " << edits_applied << " edit(s)";
    }
    const core::PartitionView v = engine->view();
    std::cout << " classes=" << v.num_classes() << " epoch=" << v.epoch() << "\n";
  };

  std::cout << "SFCP serving REPL (engine facade) — 'help' for commands\n";
  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "engine") {
        std::string kind;
        ss >> kind;
        if (!engines().find(kind)) {
          std::cout << "unknown engine '" << kind << "' (have:";
          for (const auto& name : engines().names()) std::cout << ' ' << name;
          std::cout << ")\n";
          continue;
        }
        engine_kind = kind;
        if (engine) {
          adopt(graph::Instance(engine->instance()));  // re-adopt under the new kind
        } else {
          std::cout << "engine=" << engine_kind << " (takes effect on gen/load)\n";
        }
      } else if (cmd == "gen") {
        std::string kind;
        std::size_t n = 0;
        u64 seed = 1;
        ss >> kind >> n;
        ss >> seed;
        auto inst = generate(kind, n, seed);
        if (!inst) {
          std::cout << "unknown kind '" << kind << "'\n";
        } else {
          adopt(std::move(*inst));
        }
      } else if (cmd == "load") {
        std::string path;
        ss >> path;
        adopt(util::load_instance_file(path));
      } else if (cmd == "save") {
        if (!ensure()) continue;
        std::string path, mode;
        ss >> path >> mode;
        util::save_instance_file(path, engine->instance(),
                                 mode == "binary" ? util::InstanceFormat::Binary
                                                  : util::InstanceFormat::Text);
        std::cout << "saved " << path << "\n";
      } else if (cmd == "checkpoint") {
        if (!ensure()) continue;
        std::string path;
        ss >> path;
        // Probe before opening: ofstream would truncate an existing (good)
        // checkpoint even when this engine has nothing to write.
        if (!engine->checkpointable()) {
          std::cout << "engine '" << engine->kind() << "' has no checkpointable state "
                    << "(use 'engine incremental')\n";
          continue;
        }
        util::atomic_write_file(path, [&](std::ostream& os) { engine->save_checkpoint(os); });
        std::cout << "checkpoint written to " << path << "\n";
      } else if (cmd == "restore") {
        std::string path;
        ss >> path;
        std::ifstream is(path, std::ios::binary);
        if (!is) {
          std::cout << "cannot open " << path << "\n";
          continue;
        }
        // Autodetects plain vs. sharded checkpoints from the magic.
        engine = load_engine_checkpoint(is, core::Options::parallel(),
                                        pram::ExecutionContext{}.with_metrics(&metrics));
        engine_kind = std::string(engine->kind());
        const core::PartitionView v = engine->view();
        std::cout << "restored n=" << engine->size() << " engine=" << engine->kind()
                  << " classes=" << v.num_classes() << " epoch=" << v.epoch() << "\n";
      } else if (cmd == "setf" || cmd == "setb") {
        if (!ensure()) continue;
        u32 x = 0, v = 0;
        if (!(ss >> x >> v)) {
          std::cout << "usage: " << cmd << " <x> <value>\n";
          continue;
        }
        if (cmd == "setf") {
          engine->set_f(x, v);
        } else {
          engine->set_b(x, v);
        }
        report_edits(1);
      } else if (cmd == "edits") {
        if (!ensure()) continue;
        std::string path;
        ss >> path;
        const auto stream = util::load_edits_file(path);
        engine->apply(stream);
        report_edits(stream.size());
      } else if (cmd == "stream") {
        if (!ensure()) continue;
        std::string mix_name;
        std::size_t count = 0;
        u64 seed = stream_seed_rng.next();
        ss >> mix_name >> count;
        ss >> seed;
        const auto mix = parse_mix(mix_name);
        if (!mix) {
          std::cout << "unknown mix '" << mix_name << "'\n";
          continue;
        }
        util::Rng rng(seed);
        const auto stream = util::random_edit_stream(engine->instance(), count, *mix, 6, rng);
        engine->apply(stream);
        report_edits(stream.size());
      } else if (cmd == "classof" || cmd == "query") {
        if (!ensure()) continue;
        u32 x = 0;
        if (!(ss >> x) || x >= engine->size()) {
          std::cout << "usage: " << cmd << " <x> with x < n\n";
          continue;
        }
        std::cout << "class(" << x << ") = " << engine->view().class_of(x) << "\n";
      } else if (cmd == "members") {
        if (!ensure()) continue;
        const core::PartitionView v = engine->view();
        u32 c = 0;
        if (!(ss >> c) || c >= v.num_classes()) {
          std::cout << "usage: members <c> with c < " << v.num_classes() << "\n";
          continue;
        }
        const auto members = v.class_members(c);
        std::cout << "class " << c << " (" << members.size()
                  << (members.size() == 1 ? " node):" : " nodes):");
        const std::size_t shown = std::min<std::size_t>(members.size(), 16);
        for (std::size_t i = 0; i < shown; ++i) std::cout << ' ' << members[i];
        if (shown < members.size()) std::cout << " ... (+" << members.size() - shown << ")";
        std::cout << "\n";
      } else if (cmd == "blocks") {
        if (!ensure()) continue;
        std::cout << "classes = " << engine->view().num_classes() << "\n";
      } else if (cmd == "stats") {
        if (!ensure()) continue;
        std::cout << "engine=" << engine->kind() << " epoch=" << engine->epoch() << "\n";
        // The delta/policy counters every engine reports through the facade
        // (a BatchEngine only counts edits; the rest stays zero).
        const EngineStats s = engine->serving_stats();
        std::cout << "edits=" << s.edits.edits << " repairs=" << s.edits.repairs
                  << " rebuilds=" << s.edits.rebuilds
                  << " dirty_nodes=" << s.edits.dirty_nodes
                  << " cycles_created=" << s.edits.cycles_created
                  << " cycles_destroyed=" << s.edits.cycles_destroyed << "\n";
        if (s.deltas.windows > 0) {
          std::cout << "deltas: windows=" << s.deltas.windows << " full=" << s.deltas.full
                    << " nodes=" << s.deltas.nodes
                    << " classes created=" << s.deltas.classes_created
                    << " destroyed=" << s.deltas.classes_destroyed
                    << " resized=" << s.deltas.classes_resized
                    << " dirty-classes/window=" << s.dirty_classes_per_window() << "\n";
        }
        if (s.edits.repairs || s.edits.rebuilds) {
          std::cout << "repair policy: " << (s.adaptive_repair ? "adaptive" : "static")
                    << " fit: " << s.repair_fit.unit_cost << "ns/dirty-node vs "
                    << s.repair_fit.full_cost << "ns/rebuild -> crossover~"
                    << static_cast<u64>(s.repair_fit.crossover()) << " nodes"
                    << (s.repair_fit.fitted() ? "" : " (fit not converged)") << "\n";
        }
        if (s.shards > 0) {
          std::cout << "shards=" << s.shards << " cross_shard_edits=" << s.cross_shard_edits
                    << " migrations=" << s.migrations << " reshards=" << s.reshards << "\n"
                    << "merge: shard_merges=" << s.shard_merges
                    << " full=" << s.full_merges
                    << " touched_classes=" << s.merge_touched_classes
                    << " touched_nodes=" << s.merge_touched_nodes << "\n"
                    << "reshard policy: " << (s.adaptive_reshard ? "adaptive" : "static")
                    << " fit: " << s.reshard_fit.unit_cost << "ns/moved-node vs "
                    << s.reshard_fit.full_cost << "ns/reshard -> crossover~"
                    << static_cast<u64>(s.reshard_fit.crossover()) << " nodes"
                    << (s.reshard_fit.fitted() ? "" : " (fit not converged)") << "\n";
        }
        std::cout << "metrics: " << metrics.summary() << "\n";
      } else {
        std::cout << "unknown command '" << cmd << "' — try 'help'\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}
