#include "serve/protocol.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace sfcp::serve {
namespace {

constexpr std::array<unsigned char, 8> kWireMagicBytes = {0x7f, 's', 'f', 'c',
                                                          'w', 'v', '1', '\n'};

[[noreturn]] void fail_truncated(const char* what) {
  throw std::runtime_error(std::string("sfcp-wire: truncated ") + what);
}

}  // namespace

std::span<const unsigned char, 8> wire_magic() noexcept { return kWireMagicBytes; }

std::string_view frame_type_name(FrameType t) noexcept {
  switch (t) {
    case FrameType::kEdit: return "Edit";
    case FrameType::kView: return "View";
    case FrameType::kClassOf: return "ClassOf";
    case FrameType::kMembers: return "Members";
    case FrameType::kLabels: return "Labels";
    case FrameType::kStats: return "Stats";
    case FrameType::kCheckpoint: return "Checkpoint";
    case FrameType::kSubscribe: return "Subscribe";
    case FrameType::kFleetEdit: return "FleetEdit";
    case FrameType::kFleetView: return "FleetView";
    case FrameType::kError: return "Error";
    case FrameType::kEdited: return "Edited";
    case FrameType::kViewInfo: return "ViewInfo";
    case FrameType::kClass: return "Class";
    case FrameType::kMembersData: return "MembersData";
    case FrameType::kLabelsData: return "LabelsData";
    case FrameType::kStatsData: return "StatsData";
    case FrameType::kOk: return "Ok";
    case FrameType::kNotify: return "Notify";
  }
  return "?";
}

// ---- PayloadWriter -------------------------------------------------------

void PayloadWriter::put_u32(u32 v) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  buf_.append(b, 4);
}

void PayloadWriter::put_u64(u64 v) {
  put_u32(static_cast<u32>(v & 0xffffffffu));
  put_u32(static_cast<u32>(v >> 32));
}

void PayloadWriter::put_bytes(const void* data, std::size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

// ---- PayloadReader -------------------------------------------------------

u8 PayloadReader::get_u8(const char* what) {
  if (remaining() < 1) fail_truncated(what);
  return static_cast<u8>(data_[pos_++]);
}

u32 PayloadReader::get_u32(const char* what) {
  if (remaining() < 4) fail_truncated(what);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += 4;
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

u64 PayloadReader::get_u64(const char* what) {
  const u64 lo = get_u32(what);
  const u64 hi = get_u32(what);
  return lo | (hi << 32);
}

std::string_view PayloadReader::get_bytes(std::size_t len, const char* what) {
  if (remaining() < len) fail_truncated(what);
  std::string_view out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

void PayloadReader::expect_end(const char* context) const {
  if (remaining() != 0) {
    throw std::runtime_error(std::string("sfcp-wire: ") + context + ": " +
                             std::to_string(remaining()) + " trailing payload bytes");
  }
}

// ---- framing -------------------------------------------------------------

void append_frame(std::string& out, FrameType type, std::string_view payload) {
  if (payload.size() >= kMaxFramePayload) {
    throw std::runtime_error("sfcp-wire: frame payload too large (" +
                             std::to_string(payload.size()) + " bytes)");
  }
  const u32 len = static_cast<u32>(1 + payload.size());
  const char b[4] = {static_cast<char>(len & 0xff), static_cast<char>((len >> 8) & 0xff),
                     static_cast<char>((len >> 16) & 0xff),
                     static_cast<char>((len >> 24) & 0xff)};
  out.append(b, 4);
  out.push_back(static_cast<char>(type));
  out.append(payload);
}

void append_magic(std::string& out) {
  out.append(reinterpret_cast<const char*>(kWireMagicBytes.data()), kWireMagicBytes.size());
}

// ---- shared payload codecs -----------------------------------------------

std::string encode_edit_request(std::span<const inc::Edit> edits) {
  PayloadWriter w;
  w.put_u32(static_cast<u32>(edits.size()));
  for (const inc::Edit& e : edits) {
    w.put_u8(e.kind == inc::Edit::Kind::SetF ? 0 : 1);
    w.put_u32(e.node);
    w.put_u32(e.value);
  }
  return w.take();
}

std::vector<inc::Edit> decode_edit_request(std::string_view payload) {
  PayloadReader r(payload);
  const u32 count = r.get_u32("edit count");
  if (static_cast<std::size_t>(count) * 9 != r.remaining()) {
    throw std::runtime_error("sfcp-wire: Edit frame length does not match edit count");
  }
  std::vector<inc::Edit> edits;
  edits.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const u8 kind = r.get_u8("edit kind");
    if (kind > 1) {
      throw std::runtime_error("sfcp-wire: unknown edit kind " + std::to_string(kind));
    }
    const u32 node = r.get_u32("edit node");
    const u32 value = r.get_u32("edit value");
    edits.push_back(kind == 0 ? inc::Edit::set_f(node, value)
                              : inc::Edit::set_b(node, value));
  }
  return edits;
}

std::string encode_fleet_edit_request(u64 instance, std::span<const inc::Edit> edits) {
  PayloadWriter w;
  w.put_u64(instance);
  std::string tail = encode_edit_request(edits);
  w.put_bytes(tail.data(), tail.size());
  return w.take();
}

FleetEditRequest decode_fleet_edit_request(std::string_view payload) {
  PayloadReader r(payload);
  FleetEditRequest req;
  req.instance = r.get_u64("fleet edit instance");
  req.edits = decode_edit_request(payload.substr(8));
  return req;
}

std::string encode_fleet_view_request(u64 instance) {
  PayloadWriter w;
  w.put_u64(instance);
  return w.take();
}

u64 decode_fleet_view_request(std::string_view payload) {
  PayloadReader r(payload);
  const u64 instance = r.get_u64("fleet view instance");
  r.expect_end("FleetView frame");
  return instance;
}

std::string encode_error(std::string_view message) {
  PayloadWriter w;
  w.put_u32(static_cast<u32>(message.size()));
  w.put_bytes(message.data(), message.size());
  return w.take();
}

std::string decode_error(std::string_view payload) {
  PayloadReader r(payload);
  const u32 len = r.get_u32("error length");
  std::string msg(r.get_bytes(len, "error message"));
  r.expect_end("Error frame");
  return msg;
}

std::string encode_notify(u64 epoch, bool full, std::span<const u32> classes) {
  PayloadWriter w;
  w.put_u64(epoch);
  w.put_u8(full ? 1 : 0);
  w.put_u32(static_cast<u32>(classes.size()));
  for (u32 c : classes) w.put_u32(c);
  return w.take();
}

Notification decode_notify(std::string_view payload) {
  PayloadReader r(payload);
  Notification n;
  n.epoch = r.get_u64("notify epoch");
  n.full = r.get_u8("notify full flag") != 0;
  const u32 count = r.get_u32("notify class count");
  n.classes.reserve(count);
  for (u32 i = 0; i < count; ++i) n.classes.push_back(r.get_u32("notify class id"));
  r.expect_end("Notify frame");
  return n;
}

void append_profile_section(PayloadWriter& w, const prof::ProfileTree& tree) {
  if (tree.empty()) return;
  w.put_u8(1);  // profile section version
  w.put_u32(static_cast<u32>(tree.phases.size()));
  for (const prof::PhaseNode& p : tree.phases) {
    const std::size_t len = std::min<std::size_t>(p.path.size(), 0xffff);
    w.put_u8(static_cast<u8>(len & 0xff));
    w.put_u8(static_cast<u8>(len >> 8));
    w.put_bytes(p.path.data(), len);
    w.put_u64(p.ns);
    w.put_u64(p.count);
    w.put_u64(p.flops);
    w.put_u64(p.bytes);
  }
}

prof::ProfileTree decode_profile_section(PayloadReader& r) {
  prof::ProfileTree tree;
  if (r.remaining() == 0) return tree;  // old-format payload: no section
  const u8 version = r.get_u8("profile section version");
  if (version != 1) {
    // A future section: skip it whole rather than failing the frame.
    r.get_bytes(r.remaining(), "unknown profile section");
    return tree;
  }
  const u32 count = r.get_u32("profile phase count");
  tree.phases.reserve(std::min<u32>(count, 4096));
  for (u32 i = 0; i < count; ++i) {
    prof::PhaseNode p;
    const u32 lo = r.get_u8("profile path length");
    const u32 hi = r.get_u8("profile path length");
    p.path = std::string(r.get_bytes(lo | (hi << 8), "profile path"));
    p.ns = r.get_u64("profile ns");
    p.count = r.get_u64("profile count");
    p.flops = r.get_u64("profile flops");
    p.bytes = r.get_u64("profile bytes");
    tree.phases.push_back(std::move(p));
  }
  return tree;
}

// ---- FrameSplitter -------------------------------------------------------

std::optional<Frame> FrameSplitter::next() {
  if (expect_magic_) {
    if (buf_.size() - pos_ < kWireMagicBytes.size()) return std::nullopt;
    if (std::memcmp(buf_.data() + pos_, kWireMagicBytes.data(), kWireMagicBytes.size()) !=
        0) {
      throw std::runtime_error("sfcp-wire: bad handshake magic (not an sfcp-wire v1 peer)");
    }
    pos_ += kWireMagicBytes.size();
    expect_magic_ = false;
  }
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  const u32 len = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                  (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
  if (len == 0 || len > kMaxFramePayload) {
    throw std::runtime_error("sfcp-wire: implausible frame length " + std::to_string(len));
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(static_cast<u8>(buf_[pos_ + 4]));
  f.payload.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, keeping feed() amortized O(1).
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return f;
}

}  // namespace sfcp::serve
