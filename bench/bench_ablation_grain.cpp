// A3 — PRAM-substrate ablation: grain size and thread count for the scan
// and integer-sort kernels (the knobs behind every parallel round).
//
// Each benchmark installs a per-run ExecutionContext instead of mutating the
// process-global knobs, so concurrently-registered ablations can never race
// on shared configuration.
#include <benchmark/benchmark.h>

#include "pram/execution_context.hpp"
#include "prim/integer_sort.hpp"
#include "prim/scan.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

void BM_ScanGrain(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const std::size_t grain = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<u64> in(n), out(n);
  for (auto& v : in) v = rng.below(100);
  const pram::ExecutionContext ctx = pram::ExecutionContext{}.with_grain(grain);
  pram::ScopedContext guard(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::inclusive_scan<u64>(in, out));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_ScanGrain)->RangeMultiplier(8)->Range(64, 1 << 21);

void BM_SortGrain(benchmark::State& state) {
  const std::size_t n = 1 << 19;
  const std::size_t grain = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<u64> keys(n);
  for (auto& k : keys) k = rng.below(n);
  const pram::ExecutionContext ctx = pram::ExecutionContext{}.with_grain(grain);
  pram::ScopedContext guard(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::sort_order_by_key(keys, n));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_SortGrain)->RangeMultiplier(8)->Range(64, 1 << 20);

void BM_ScanThreads(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const int threads = static_cast<int>(state.range(0));
  util::Rng rng(3);
  std::vector<u64> in(n), out(n);
  for (auto& v : in) v = rng.below(100);
  const pram::ExecutionContext ctx = pram::ExecutionContext{}.with_threads(threads);
  pram::ScopedContext guard(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::inclusive_scan<u64>(in, out));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_ScanThreads)->DenseRange(1, 4, 1);

}  // namespace
