// Property-based sweeps: invariants of the full solver and its
// sub-algorithms across a randomized instance matrix (sizes x label
// densities x shapes x thread counts).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/verify.hpp"
#include "pram/config.hpp"
#include "pram/metrics.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::Options;
using core::solve;

class SolverProperties : public ::testing::TestWithParam<std::tuple<std::size_t, u32>> {};

TEST_P(SolverProperties, RefinesStableCoarsestAndDeterministic) {
  const auto [n, labels] = GetParam();
  util::Rng rng(n * 131 + labels);
  const auto inst = util::random_function(n, labels, rng);
  const auto r1 = solve(inst);
  const auto r2 = solve(inst);
  EXPECT_EQ(r1.q, r2.q) << "solver must be deterministic";
  EXPECT_TRUE(core::is_refinement(r1.q, inst.b));
  EXPECT_TRUE(core::is_stable(r1.q, inst.f));
  EXPECT_TRUE(core::same_partition(r1.q, core::solve_naive_refinement(inst).q));
  // Q refines B but never has fewer blocks than B's canonical count.
  EXPECT_GE(r1.num_blocks, core::count_blocks(inst.b));
}

INSTANTIATE_TEST_SUITE_P(Matrix, SolverProperties,
                         ::testing::Combine(::testing::Values(1, 2, 17, 128, 1000),
                                            ::testing::Values(1u, 2u, 8u, 1000000u)));

TEST(SolverProperties, ThreadCountInvariance) {
  util::Rng rng(1601);
  const auto inst = util::random_function(5000, 3, rng);
  const auto ref = solve(inst);
  for (const int t : {1, 2, 4, 8}) {
    pram::ScopedThreads threads(t);
    EXPECT_EQ(solve(inst).q, ref.q) << "threads=" << t;
  }
}

TEST(SolverProperties, GrainInvariance) {
  util::Rng rng(1607);
  const auto inst = util::random_function(5000, 3, rng);
  const auto ref = solve(inst);
  for (const std::size_t g : {1u, 64u, 100000u}) {
    pram::ScopedGrain grain(g);
    EXPECT_EQ(solve(inst).q, ref.q) << "grain=" << g;
  }
}

TEST(SolverProperties, BlockCountMonotoneInB) {
  // Refining B can only increase the number of Q-blocks.
  util::Rng rng(1609);
  const auto base = util::random_function(1000, 2, rng);
  graph::Instance finer = base;
  for (std::size_t x = 0; x < finer.size(); ++x) {
    finer.b[x] = finer.b[x] * 2 + (x % 2);  // split every B-block
  }
  EXPECT_GE(solve(finer).num_blocks, solve(base).num_blocks);
}

TEST(SolverProperties, PermutationOfNodeIdsPreservesPartitionSizes) {
  // Relabelling nodes (conjugating f) permutes Q but keeps block sizes.
  util::Rng rng(1613);
  const auto inst = util::random_function(500, 3, rng);
  std::vector<u32> perm(inst.size());
  for (u32 i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::size_t i = perm.size(); i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);
  graph::Instance conj;
  conj.f.resize(inst.size());
  conj.b.resize(inst.size());
  for (u32 x = 0; x < inst.size(); ++x) {
    conj.f[perm[x]] = perm[inst.f[x]];
    conj.b[perm[x]] = inst.b[x];
  }
  const auto r = solve(inst);
  const auto rc = solve(conj);
  EXPECT_EQ(r.num_blocks, rc.num_blocks);
  for (u32 x = 0; x < inst.size(); ++x) {
    for (u32 y = x + 1; y < inst.size(); ++y) {
      EXPECT_EQ(r.q[x] == r.q[y], rc.q[perm[x]] == rc.q[perm[y]]);
    }
  }
}

TEST(MspProperties, RotationShiftsMsp) {
  // msp(rotate(s, r)) == (msp(s) - r) mod n for primitive strings.
  util::Rng rng(1619);
  const auto s = util::random_primitive_string(300, 3, rng);
  const u32 j0 = strings::msp_booth(s);
  for (const std::size_t r : {1u, 7u, 120u, 299u}) {
    std::vector<u32> rot(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) rot[i] = s[(i + r) % s.size()];
    const u32 expect = static_cast<u32>((j0 + s.size() - r) % s.size());
    EXPECT_EQ(strings::msp_efficient(rot), expect) << "r=" << r;
  }
}

TEST(MspProperties, MspRotationIsLexMin) {
  util::Rng rng(1621);
  for (int iter = 0; iter < 25; ++iter) {
    const auto s = util::random_string(1 + rng.below(200), 4, rng);
    const u32 j0 = strings::minimal_starting_point(s, strings::MspStrategy::Efficient);
    // Rotation at j0 must be <= rotation at any other start.
    for (u32 c = 0; c < s.size(); ++c) {
      for (std::size_t l = 0; l < s.size(); ++l) {
        const u32 a = s[(j0 + l) % s.size()];
        const u32 b = s[(c + l) % s.size()];
        if (a != b) {
          EXPECT_LT(a, b) << "rotation " << c << " beats msp " << j0;
          break;
        }
      }
    }
  }
}

TEST(MetricsProperties, OpCountsScaleNearLinearly) {
  // Theorem 5.1: operations are O(n log log n) — so ops(4n)/ops(n) must be
  // well below the O(n log n) ratio (~4.6) and near 4.  Allow slack for
  // constant terms: the ratio must be < 5.5 and > 3 on random inputs.
  util::Rng rng(1627);
  const auto small = util::random_function(1 << 14, 3, rng);
  const auto large = util::random_function(1 << 16, 3, rng);
  pram::Metrics ms, ml;
  {
    pram::ScopedMetrics guard(ms);
    solve(small);
  }
  {
    pram::ScopedMetrics guard(ml);
    solve(large);
  }
  const double ratio = static_cast<double>(ml.ops()) / static_cast<double>(ms.ops());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

TEST(SolverProperties, AllCycleDetectStrategiesOnShapedSuite) {
  util::Rng rng(1631);
  for (int shape = 0; shape < 4; ++shape) {
    graph::Instance inst;
    switch (shape) {
      case 0: inst = util::random_permutation(600, 2, rng); break;
      case 1: inst = util::long_tail(600, 6, 2, rng); break;
      case 2: inst = util::bushy(600, 3, 2, 2, rng); break;
      default: inst = util::mergeable(600, 3, rng); break;
    }
    const auto ref = solve(inst, Options::sequential());
    for (const auto cd : {graph::CycleDetectStrategy::Sequential,
                          graph::CycleDetectStrategy::FunctionPowers,
                          graph::CycleDetectStrategy::EulerTour}) {
      Options o = Options::parallel();
      o.cycle_detect = cd;
      EXPECT_EQ(solve(inst, o).q, ref.q) << "shape=" << shape;
    }
  }
}

}  // namespace
}  // namespace sfcp
