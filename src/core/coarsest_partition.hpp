#pragma once
// The single function coarsest partition problem — Theorem 5.1.
//
// Given arrays A_f (the function) and A_B (initial-partition labels),
// compute A_Q: the coarsest partition Q refining B with f-stable blocks.
// Labels are canonicalized to first-occurrence order, so any two correct
// solvers return identical arrays.

#include <cstdint>
#include <string>
#include <vector>

#include "core/cycle_labeling.hpp"
#include "core/partition_view.hpp"
#include "core/tree_labeling.hpp"
#include "graph/cycle_detect.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/functional_graph.hpp"
#include "pram/metrics.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

struct Options {
  graph::CycleDetectStrategy cycle_detect = graph::CycleDetectStrategy::EulerTour;
  graph::CycleStructureStrategy cycle_structure = graph::CycleStructureStrategy::PointerJumping;
  CycleLabelingOptions cycle_labeling{};
  TreeLabelingOptions tree_labeling{};

  /// Fully parallel configuration (the paper's algorithm); default.
  static Options parallel();
  /// Sequential strategies everywhere: the linear-time sequential solver
  /// (the same decomposition Paige–Tarjan–Bonic [16] follows).
  static Options sequential();
};

struct Result {
  std::vector<u32> q;   ///< Q-labels, canonical (first occurrence order), in [0, num_blocks)
  u32 num_blocks = 0;   ///< |Q|
  u32 num_cycles = 0;
  u32 cycle_nodes = 0;
  u32 kept_tree_nodes = 0;
  u32 residual_tree_nodes = 0;

  /// The partition as an immutable, shareable PartitionView (the preferred
  /// query surface).  The lvalue form copies q; the rvalue form moves it.
  PartitionView view(u64 epoch = 0) const&;
  PartitionView view(u64 epoch = 0) &&;
};

/// Reusable scratch for repeated solves (the Solver hot path): holds the
/// pipeline's intermediate arrays so same-sized instances amortize
/// allocation.  Contents are overwritten by every solve; results are
/// independent of whatever a previous solve left behind.
struct SolveWorkspace {
  std::vector<u8> on_cycle;
  graph::CycleStructure cs;
  CycleLabeling cl;
  TreeLabeling tl;
};

/// Solves the SFCP instance.  Throws std::invalid_argument on malformed
/// input.  Deterministic output for every strategy combination.
Result solve(const graph::Instance& inst, const Options& opt = Options::parallel());

/// Workspace-reusing overload; identical output to the allocating form.
Result solve(const graph::Instance& inst, const Options& opt, SolveWorkspace& ws);

}  // namespace sfcp::core
