// Tests for orbit analytics: tails, entries, binary lifting and stats.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/functional_graph.hpp"
#include "graph/orbits.hpp"
#include "graph/rooted_forest.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::compute_orbits;
using graph::IterationTable;
using graph::orbit_of;
using graph::orbit_stats;
using graph::Orbits;

// Reference: walk from every node with a visited-time map (Floyd-free,
// O(n^2) worst case, fine for test sizes).
Orbits brute_orbits(std::span<const u32> f) {
  const std::size_t n = f.size();
  const auto cs = graph::cycle_structure(f);
  Orbits out;
  out.tail.assign(n, 0);
  out.entry.assign(n, 0);
  out.cycle_id.assign(n, 0);
  out.cycle_len.assign(n, 0);
  for (std::size_t x = 0; x < n; ++x) {
    u32 cur = static_cast<u32>(x), t = 0;
    while (!cs.on_cycle[cur]) {
      cur = f[cur];
      ++t;
    }
    out.tail[x] = t;
    out.entry[x] = cur;
    out.cycle_id[x] = cs.cycle_of[cur];
    out.cycle_len[x] = cs.length[cur];
  }
  return out;
}

TEST(Orbits, PureCycleHasZeroTails) {
  util::Rng rng(6001);
  const auto inst = util::equal_cycles(16, 4, 2, 2, rng);
  const auto orb = compute_orbits(inst.f);
  for (std::size_t x = 0; x < inst.size(); ++x) {
    EXPECT_EQ(orb.tail[x], 0u);
    EXPECT_EQ(orb.entry[x], x);
  }
}

TEST(Orbits, MatchesBruteOnRandomFunctions) {
  util::Rng rng(6003);
  for (int iter = 0; iter < 25; ++iter) {
    const auto inst = util::random_function(1 + rng.below(500), 3, rng);
    const auto got = compute_orbits(inst.f);
    const auto want = brute_orbits(inst.f);
    EXPECT_EQ(got.tail, want.tail);
    EXPECT_EQ(got.entry, want.entry);
    EXPECT_EQ(got.cycle_id, want.cycle_id);
    EXPECT_EQ(got.cycle_len, want.cycle_len);
  }
}

TEST(Orbits, DeepPathWorstCase) {
  // f(x) = max(x-1, 0): one fixed point at 0, a single tail of depth n-1.
  const std::size_t n = 4096;
  std::vector<u32> f(n);
  for (std::size_t x = 0; x < n; ++x) f[x] = x == 0 ? 0 : static_cast<u32>(x - 1);
  const auto orb = compute_orbits(f);
  for (std::size_t x = 0; x < n; ++x) {
    EXPECT_EQ(orb.tail[x], static_cast<u32>(x));
    EXPECT_EQ(orb.entry[x], 0u);
    EXPECT_EQ(orb.cycle_len[x], 1u);
  }
}

TEST(Orbits, RhoIsOrbitSize) {
  util::Rng rng(6007);
  const auto inst = util::random_function(300, 2, rng);
  const auto orb = compute_orbits(inst.f);
  for (u32 x = 0; x < 20; ++x) {
    const auto path = orbit_of(inst.f, x);
    EXPECT_EQ(path.size(), orb.rho(x));
    // The orbit visits pairwise distinct nodes.
    auto sorted = path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    // And ends one step before re-entering the cycle entry point.
    EXPECT_EQ(inst.f[path.back()], orb.entry[x]);
  }
}

TEST(IterationTable, MatchesIterateFunction) {
  util::Rng rng(6011);
  const auto inst = util::random_function(200, 2, rng);
  IterationTable table(inst.f, 1 << 12);
  for (u64 k : {0ull, 1ull, 2ull, 3ull, 17ull, 100ull, 4095ull, 4096ull}) {
    const auto fk = graph::iterate_function(inst.f, k);
    for (u32 x = 0; x < inst.size(); x += 7) {
      EXPECT_EQ(table.apply(x, k), fk[x]) << "k=" << k << " x=" << x;
    }
  }
}

TEST(IterationTable, RejectsOutOfRange) {
  std::vector<u32> f{0, 0};
  IterationTable table(f, 8);
  EXPECT_THROW(table.apply(0, 1000), std::out_of_range);
}

TEST(IterationTable, PeriodicityOnCycles) {
  // On a pure k-cycle, f^k = identity.
  util::Rng rng(6013);
  const auto inst = util::equal_cycles(5, 12, 2, 2, rng);  // 5 cycles of length 12
  const auto cs = graph::cycle_structure(inst.f);
  IterationTable table(inst.f, 1 << 8);
  for (u32 x = 0; x < inst.size(); ++x) {
    EXPECT_EQ(table.apply(x, cs.length[x]), x);
  }
}

TEST(OrbitStats, CountsComponentsAndTails) {
  // Two 3-cycles plus a tail of length 2 into the first.
  //   0->1->2->0, 3->4->5->3, 6->7->0
  std::vector<u32> f{1, 2, 0, 4, 5, 3, 7, 0};
  const auto st = orbit_stats(f);
  EXPECT_EQ(st.num_cycles, 2u);
  EXPECT_EQ(st.cycle_nodes, 6u);
  EXPECT_EQ(st.max_cycle_len, 3u);
  EXPECT_EQ(st.max_tail, 2u);
  EXPECT_DOUBLE_EQ(st.mean_tail, 3.0 / 8.0);
}

TEST(OrbitStats, EmptyGraph) {
  const auto st = orbit_stats(std::vector<u32>{});
  EXPECT_EQ(st.num_cycles, 0u);
  EXPECT_EQ(st.cycle_nodes, 0u);
}

TEST(Orbits, TailEqualsTreeLevel) {
  // Independent witness for Section 4: a node's level in its rooted tree
  // equals its tail length (roots are the cycle nodes at level 0).
  util::Rng rng(6017);
  for (int iter = 0; iter < 10; ++iter) {
    const auto inst = util::random_function(400, 2, rng);
    const auto cs = graph::cycle_structure(inst.f);
    const auto orb = compute_orbits(inst.f, cs);
    const auto forest = graph::build_rooted_forest(inst.f, cs.on_cycle);
    const auto lv = graph::forest_levels(forest, graph::ForestStrategy::EulerTour);
    for (std::size_t x = 0; x < inst.size(); ++x) {
      EXPECT_EQ(orb.tail[x], lv.level[x]) << "node " << x;
    }
  }
}

}  // namespace
}  // namespace sfcp
