// E5 — Lemma 3.11: partitioning k cycles of common length l into
// equivalence classes.  Algorithm partition costs O(n) operations (n = kl)
// vs the O(nk)-operation all-pairs baseline the paper mentions.
#include <algorithm>
#include <iostream>

#include "core/cycle_labeling.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E5 (Lemma 3.11): Algorithm partition vs all-pairs baseline\n\n";
  util::Table table({"k", "l", "n=kl", "algorithm", "ops", "ops/n", "ms"});
  util::Rng rng(5);
  for (const std::size_t k : {std::size_t{64}, std::size_t{512}, std::size_t{4096}}) {
    const std::size_t l = 256;
    std::vector<u32> flat(k * l);
    // 8 distinct patterns -> plenty of equal pairs.
    std::vector<std::vector<u32>> pats(8);
    for (auto& p : pats) {
      p.resize(l);
      for (auto& c : p) c = rng.below_u32(4);
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto& p = pats[rng.below(8)];
      std::copy(p.begin(), p.end(), flat.begin() + static_cast<std::ptrdiff_t>(i * l));
    }
    const std::size_t n = k * l;
    {
      pram::Metrics m;
      util::Timer timer;
      {
        pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
        core::partition_equal_strings(flat, k, l, core::RenameBackend::Hashed);
      }
      const double ms = timer.millis();
      table.add_row(k, l, n, "alg partition (BB)", m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), ms);
      json.record("e5_partition", n, "alg partition (BB)", pram::threads(), ms);
    }
    {
      pram::Metrics m;
      util::Timer timer;
      u64 ops = 0;
      {
        pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
        // All-pairs baseline: compare every pair until a match is found.
        std::vector<u32> rep(k);
        for (std::size_t i = 0; i < k; ++i) {
          rep[i] = static_cast<u32>(i);
          for (std::size_t j = 0; j < i; ++j) {
            ops += l;
            if (std::equal(flat.begin() + static_cast<std::ptrdiff_t>(i * l),
                           flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * l),
                           flat.begin() + static_cast<std::ptrdiff_t>(j * l))) {
              rep[i] = rep[j];
              break;
            }
          }
        }
        pram::charge(ops);
      }
      const double ms = timer.millis();
      table.add_row(k, l, n, "all-pairs O(nk)", m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), ms);
      json.record("e5_partition", n, "all-pairs O(nk)", pram::threads(), ms);
    }
  }
  table.print();
  std::cout << "\n(Algorithm partition's ops/n is constant in k; all-pairs grows\n"
            << " linearly with k — Lemma 3.11's O(n) vs O(nk).)\n";
  return 0;
}
