#pragma once
// Exact string matching — the substrate behind the paper's period-finding
// citations ([6] Breslauer–Galil, [20] Vishkin: optimal parallel string
// matching).  Periods, witnesses and occurrence sets are the machinery
// those papers build on; this module provides the occurrence-set interface
// with three interchangeable engines:
//
//   * match_kmp      — sequential Knuth–Morris–Pratt, O(n + m)
//   * match_z        — sequential Z-algorithm over pattern#text, O(n + m)
//   * match_parallel — parallel doubling-rank matcher: a RankTable over
//                      pattern#text gives O(1) substring equality per
//                      candidate, all candidates tested in one parallel
//                      round; O((n+m) log(n+m)) work, O(log(n+m)) depth
//                      (the standard work/depth substitution for [20]'s
//                      optimal matcher, recorded in DESIGN.md)
//
// All engines return the sorted list of starting positions of the pattern
// in the text.  The empty pattern matches at every position 0..n.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

enum class MatchStrategy { Kmp, Z, Parallel };

/// All occurrences (sorted) of `pattern` in `text`.
std::vector<u32> find_occurrences(std::span<const u32> text, std::span<const u32> pattern,
                                  MatchStrategy strategy = MatchStrategy::Parallel);

/// KMP failure function of s: fail[i] = length of the longest proper border
/// of s[0..i] (size n, fail[0] = 0).
std::vector<u32> failure_function(std::span<const u32> s);

/// True iff `needle` occurs in the circular string `hay` (i.e. in hay·hay
/// restricted to starts < |hay|); needs |needle| <= |hay|.  This is the
/// cyclic-substring primitive behind rotation containment tests.
bool circular_contains(std::span<const u32> hay, std::span<const u32> needle);

/// Number of occurrences without materializing them (streaming KMP).
u64 count_occurrences(std::span<const u32> text, std::span<const u32> pattern);

}  // namespace sfcp::strings
