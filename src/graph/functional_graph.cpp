#include "graph/functional_graph.hpp"

#include <atomic>

#include "pram/parallel_for.hpp"

namespace sfcp::graph {

void validate(const Instance& inst) {
  const std::size_t n = inst.f.size();
  if (inst.b.size() != n) {
    throw std::invalid_argument("Instance: |b| = " + std::to_string(inst.b.size()) +
                                " does not match |f| = " + std::to_string(n) +
                                " (every node x needs both f[x] and b[x])");
  }
  if (n >= static_cast<std::size_t>(kNone)) {
    throw std::invalid_argument("Instance: size exceeds u32 index space");
  }
  // Track the smallest offending index so the error names a concrete entry
  // deterministically, independent of thread interleaving.
  std::atomic<u64> first_bad{static_cast<u64>(n)};
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (inst.f[x] >= n) {
      u64 seen = first_bad.load(std::memory_order_relaxed);
      while (x < seen &&
             !first_bad.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
      }
    }
  });
  const u64 bad = first_bad.load(std::memory_order_relaxed);
  if (bad < n) {
    throw std::invalid_argument("Instance: f[" + std::to_string(bad) + "] = " +
                                std::to_string(inst.f[bad]) + " is outside [0, " +
                                std::to_string(n) + ")");
  }
}

std::vector<u32> iterate_function(std::span<const u32> f, u64 k) {
  const std::size_t n = f.size();
  std::vector<u32> result(n), power(f.begin(), f.end()), tmp(n);
  pram::parallel_for(0, n, [&](std::size_t x) { result[x] = static_cast<u32>(x); });
  while (k > 0) {
    if (k & 1) {
      pram::parallel_for(0, n, [&](std::size_t x) { tmp[x] = power[result[x]]; });
      result.swap(tmp);
    }
    k >>= 1;
    if (k > 0) {
      pram::parallel_for(0, n, [&](std::size_t x) { tmp[x] = power[power[x]]; });
      power.swap(tmp);
    }
  }
  return result;
}

std::vector<u32> indegrees(std::span<const u32> f) {
  const std::size_t n = f.size();
  std::vector<std::atomic<u32>> deg(n);
  pram::parallel_for(0, n, [&](std::size_t x) { deg[x].store(0, std::memory_order_relaxed); });
  pram::parallel_for(0, n, [&](std::size_t x) {
    deg[f[x]].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<u32> out(n);
  pram::parallel_for(0, n, [&](std::size_t x) { out[x] = deg[x].load(std::memory_order_relaxed); });
  return out;
}

}  // namespace sfcp::graph
