#pragma once
// An explicit PRAM step simulator.
//
// The production code paths of this library run on OpenMP (pram/parallel_for)
// and only *account* PRAM work.  This module complements them with a faithful
// executable model of the machine the paper states its bounds on: P
// processors over a shared memory, advancing in synchronous rounds of
//
//     read phase  ->  compute phase  ->  write phase
//
// with the write-conflict discipline of the chosen PRAM variant:
//
//   * EREW      — concurrent reads OR writes to one cell are a fault
//   * CREW      — concurrent reads allowed, concurrent writes are a fault
//   * CommonCRCW    — concurrent writes allowed iff all write the same value
//   * ArbitraryCRCW — one of the concurrent writers wins (deterministically:
//                     the lowest processor id, a valid "arbitrary" choice)
//
// The simulator checks the discipline every round and reports violations,
// so tests can *prove* statements like "Algorithm partition needs arbitrary
// CRCW" (the paper's Remark after Lemma 3.11) by running the same program
// under a weaker model and observing the fault.
//
// Programs are written as round functions: given a processor id and a
// read-only snapshot of memory, emit read/write requests.  Cost accounting
// (rounds = time, sum of active processors = operations) matches the
// paper's work measure.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::pram {

enum class PramModel { Erew, Crew, CommonCrcw, ArbitraryCrcw };

/// A single write request issued by a processor in a round.
struct WriteRequest {
  u32 address;
  u32 value;
};

/// Outcome of a simulated program run.
struct SimReport {
  u64 rounds = 0;       ///< synchronous steps executed ("parallel time")
  u64 operations = 0;   ///< total processor-round activations ("work")
  bool faulted = false; ///< a conflict violated the model's discipline
  std::string fault;    ///< human-readable description of the first fault

  bool ok() const { return !faulted; }
};

/// A synchronous PRAM with `memory_size` shared cells and `processors`
/// processors, simulated round by round under `model`.
class Simulator {
 public:
  /// Per-round program: called once per active processor id with a snapshot
  /// of memory as of the round start; returns the writes to apply (empty =
  /// idle this round).  Reads are implicit through the snapshot; read
  /// conflicts are checked via declare_reads (optional, EREW only).
  using RoundFn =
      std::function<std::vector<WriteRequest>(u32 pid, std::span<const u32> memory)>;

  /// Optional read-set declaration for EREW read-conflict checking: list of
  /// addresses each processor reads this round.
  using ReadSetFn = std::function<std::vector<u32>(u32 pid)>;

  Simulator(PramModel model, std::size_t memory_size, u32 processors);

  /// Executes one synchronous round; returns false if the model faulted
  /// (memory is left at the round-start state in that case).
  bool step(const RoundFn& fn, const ReadSetFn& reads = nullptr);

  /// Runs `fn` for up to `max_rounds` rounds or until `done` returns true.
  SimReport run(const RoundFn& fn, const std::function<bool()>& done, u64 max_rounds,
                const ReadSetFn& reads = nullptr);

  std::span<const u32> memory() const { return mem_; }
  std::span<u32> memory() { return mem_; }
  u32 processors() const { return processors_; }
  const SimReport& report() const { return report_; }

 private:
  PramModel model_;
  std::vector<u32> mem_;
  u32 processors_;
  SimReport report_;
};

/// Name of a model, for messages and test labels.
std::string to_string(PramModel model);

}  // namespace sfcp::pram
