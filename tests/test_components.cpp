// Unit tests for weakly connected components of functional graphs.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::connected_components;

// Reference: union-find over edges (x, f(x)).
std::vector<u32> reference_components(std::span<const u32> f) {
  std::vector<u32> parent(f.size());
  for (u32 i = 0; i < f.size(); ++i) parent[i] = i;
  std::function<u32(u32)> find = [&](u32 x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (u32 x = 0; x < f.size(); ++x) {
    const u32 a = find(x), b = find(f[x]);
    if (a != b) parent[a] = b;
  }
  std::vector<u32> id(f.size());
  for (u32 x = 0; x < f.size(); ++x) id[x] = find(x);
  return id;
}

bool same_grouping(const std::vector<u32>& a, const std::vector<u32>& b) {
  std::map<u32, u32> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [f1, i1] = fwd.emplace(a[i], b[i]);
    if (!i1 && f1->second != b[i]) return false;
    const auto [f2, i2] = bwd.emplace(b[i], a[i]);
    if (!i2 && f2->second != a[i]) return false;
  }
  return true;
}

TEST(Components, SingleSelfLoop) {
  std::vector<u32> f{0};
  const auto c = connected_components(f);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.size[0], 1u);
  EXPECT_EQ(c.cycle_len[0], 1u);
}

TEST(Components, TwoIslands) {
  std::vector<u32> f{0, 0, 3, 3};  // self-loop 0 (+1), self-loop 3 (+2)
  const auto c = connected_components(f);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.id[0], c.id[1]);
  EXPECT_EQ(c.id[2], c.id[3]);
  EXPECT_NE(c.id[0], c.id[2]);
  EXPECT_EQ(c.size[c.id[0]], 2u);
}

TEST(Components, PaperFig1HasTwoComponents) {
  const auto inst = util::paper_example_2_2();
  const auto c = connected_components(inst.f);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.size[c.id[0]], 12u);
  EXPECT_EQ(c.size[c.id[12]], 4u);
  EXPECT_EQ(c.cycle_len[c.id[0]], 12u);
  EXPECT_EQ(c.cycle_len[c.id[12]], 4u);
}

TEST(Components, SizesSumToN) {
  util::Rng rng(2101);
  const auto inst = util::random_function(5000, 3, rng);
  const auto c = connected_components(inst.f);
  u64 total = 0;
  for (const u32 s : c.size) total += s;
  EXPECT_EQ(total, 5000u);
}

TEST(Components, MatchesUnionFindReference) {
  util::Rng rng(2103);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = util::random_function(1 + rng.below(2000), 2, rng);
    const auto c = connected_components(inst.f);
    EXPECT_TRUE(same_grouping(c.id, reference_components(inst.f))) << "iter " << iter;
  }
}

TEST(Components, StrategiesAgree) {
  util::Rng rng(2107);
  const auto inst = util::random_function(3000, 2, rng);
  const auto a = connected_components(inst.f, graph::ForestStrategy::Sequential);
  const auto b = connected_components(inst.f, graph::ForestStrategy::EulerTour);
  const auto c = connected_components(inst.f, graph::ForestStrategy::AncestorDoubling);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.id, c.id);
}

}  // namespace
}  // namespace sfcp
