#include "core/cycle_labeling.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pram/parallel_for.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"
#include "strings/period.hpp"

namespace sfcp::core {

std::vector<u32> partition_equal_strings(std::span<const u32> flat, std::size_t k, std::size_t L,
                                         RenameBackend backend) {
  assert(L > 0 && std::has_single_bit(L));
  assert(flat.size() == k * L);
  std::vector<u32> eq(flat.begin(), flat.end());
  std::vector<u32> reps(k);
  if (k == 0) return reps;
  // Round j: positions p = 0, 2^j, 2*2^j, ... within each string combine
  // with their 2^{j-1}-shifted partner; only n/2^j positions participate,
  // so total work is geometric (Lemma 3.11's O(n) bound).
  for (std::size_t stride = 2; stride <= L; stride <<= 1) {
    const std::size_t half = stride >> 1;
    const std::size_t per_string = L / stride;
    const std::size_t participants = k * per_string;
    std::vector<u32> a(participants), b(participants), d1(participants);
    pram::parallel_for(0, participants, [&](std::size_t t) {
      const std::size_t i = t / per_string;
      const std::size_t p = (t % per_string) * stride;
      const std::size_t pos = i * L + p;
      d1[t] = static_cast<u32>(pos);
      a[t] = eq[pos];
      b[t] = eq[pos + half];
    });
    if (backend == RenameBackend::Hashed) {
      // BB[EQ[d1], EQ[d2]] <- d1 ; EQ[d1] <- BB[EQ[d1], EQ[d2]]  (arbitrary
      // CRCW: one winner per distinct pair).  Fresh table per round keeps
      // rounds from aliasing each other's label spaces.
      prim::ConcurrentPairMap table(participants);
      pram::parallel_for(0, participants, [&](std::size_t t) {
        eq[d1[t]] = table.insert_or_get(pack_pair(a[t], b[t]), d1[t]);
      });
    } else {
      const auto ranks = prim::rename_pairs_sorted(a, b);
      pram::parallel_for(0, participants, [&](std::size_t t) {
        eq[d1[t]] = ranks.labels[t];
      });
    }
  }
  pram::parallel_for(0, k, [&](std::size_t i) { reps[i] = eq[i * L]; });
  return reps;
}

namespace {

// Per-cycle period + m.s.p. of the period prefix, and the rotated reduced
// string laid out in a CSR array.
struct ReducedCycles {
  std::vector<u32> period;   // per cycle
  std::vector<u32> msp;      // per cycle, in [0, period)
  std::vector<u32> data;     // reduced strings, concatenated per cycle
  std::vector<u32> offsets;  // CSR (size k+1)
};

ReducedCycles reduce_cycles(const graph::Instance& inst, const graph::CycleStructure& cs,
                            const CycleLabelingOptions& opt) {
  const std::size_t k = cs.num_cycles();
  ReducedCycles red;
  red.period.assign(k, 0);
  red.msp.assign(k, 0);
  // Gather each cycle's B-label string (cycles are stored contiguously by
  // rank, so this is one parallel gather).
  std::vector<u32> labels(cs.cycle_nodes.size());
  pram::parallel_for(0, labels.size(), [&](std::size_t i) {
    labels[i] = inst.b[cs.cycle_nodes[i]];
  });
  // Period and m.s.p. per cycle.  Many small cycles -> parallelize across
  // cycles with sequential kernels; few big cycles -> the configured
  // parallel kernels operate within the cycle.
  const bool outer_parallel = k >= static_cast<std::size_t>(pram::threads()) * 2;
  auto process = [&](std::size_t c) {
    const u32 off = cs.cycle_offset[c];
    const u32 len = cs.cycle_offset[c + 1] - off;
    const std::span<const u32> s{labels.data() + off, len};
    const u32 p = (opt.parallel_period && !outer_parallel)
                      ? strings::smallest_period_parallel(s)
                      : strings::smallest_period_seq(s);
    const std::span<const u32> prefix = s.subspan(0, p);
    const strings::MspStrategy msp_strategy =
        outer_parallel ? strings::MspStrategy::Booth : opt.msp;
    const u32 j0 = strings::minimal_starting_point(prefix, msp_strategy);
    red.period[c] = p;
    red.msp[c] = j0;
  };
  if (outer_parallel) {
    pram::parallel_for(0, k, process);
  } else {
    for (std::size_t c = 0; c < k; ++c) process(c);
  }
  // Reduced strings, rotated to start at the m.s.p.
  red.offsets.assign(k + 1, 0);
  prim::exclusive_scan<u32>(red.period, std::span<u32>(red.offsets).first(k));
  red.offsets[k] = red.offsets.empty() ? 0 : (k ? red.offsets[k - 1] + red.period[k - 1] : 0);
  red.data.assign(red.offsets[k], 0);
  pram::parallel_for(0, k, [&](std::size_t c) {
    const u32 off = cs.cycle_offset[c];
    const u32 p = red.period[c];
    const u32 j0 = red.msp[c];
    const u32 base = red.offsets[c];
    for (u32 t = 0; t < p; ++t) {
      red.data[base + t] = labels[off + (j0 + t) % p];
    }
  });
  return red;
}

}  // namespace

CycleLabeling label_cycles(const graph::Instance& inst, const graph::CycleStructure& cs,
                           const CycleLabelingOptions& opt) {
  CycleLabeling out;
  label_cycles_into(inst, cs, opt, out);
  return out;
}

void label_cycles_into(const graph::Instance& inst, const graph::CycleStructure& cs,
                       const CycleLabelingOptions& opt, CycleLabeling& out) {
  const std::size_t n = inst.size();
  const std::size_t k = cs.num_cycles();
  out.q.assign(n, kNone);
  out.num_labels = 0;
  out.period.clear();
  out.msp.clear();
  out.class_id.clear();
  out.num_classes = 0;
  if (k == 0) return;

  ReducedCycles red = reduce_cycles(inst, cs, opt);
  out.period = red.period;
  out.msp = red.msp;

  // Group cycles by period; only same-period cycles can be equivalent
  // (non-repeating reduced strings of different lengths always differ).
  std::vector<u64> period_keys(k);
  pram::parallel_for(0, k, [&](std::size_t c) { period_keys[c] = red.period[c]; });
  const std::vector<u32> by_period = prim::sort_order_by_key(period_keys);

  // The blank symbol for padding must differ from every real label; remap
  // is unnecessary because we use max_label + 1 (B labels are untouched u32
  // values, so guard against the degenerate all-ones case with a rename).
  const u32 max_label = red.data.empty() ? 0 : prim::reduce_max<u32>(red.data);
  u32 blank = max_label + 1;
  std::vector<u32> data = red.data;
  if (blank == 0 || blank == kNone) {
    // max_label at the top of u32: a (blank, blank) padding pair would
    // collide with the hash table's reserved key — compress labels first.
    auto compressed = prim::rename_sorted(std::vector<u64>(red.data.begin(), red.data.end()));
    data = std::move(compressed.labels);
    blank = compressed.num_classes;
  }

  // For each maximal run of equal periods in `by_period`, pad to the next
  // power of two and run Algorithm partition.
  std::vector<u32> rep(k, 0);  // representative label per cycle (within its period group)
  std::size_t run_begin = 0;
  while (run_begin < k) {
    std::size_t run_end = run_begin + 1;
    const u32 p = red.period[by_period[run_begin]];
    while (run_end < k && red.period[by_period[run_end]] == p) ++run_end;
    const std::size_t kk = run_end - run_begin;
    const std::size_t L = std::bit_ceil(static_cast<std::size_t>(p));
    std::vector<u32> flat(kk * L, blank);
    pram::parallel_for(0, kk, [&](std::size_t t) {
      const u32 c = by_period[run_begin + t];
      for (u32 i = 0; i < p; ++i) flat[t * L + i] = data[red.offsets[c] + i];
    });
    const std::vector<u32> group_rep = partition_equal_strings(flat, kk, L, opt.partition_backend);
    pram::parallel_for(0, kk, [&](std::size_t t) {
      rep[by_period[run_begin + t]] = group_rep[t];
    });
    run_begin = run_end;
  }

  // Global dense class ids: (period, representative) pairs, canonicalized
  // to first-occurrence order over cycles so label assignment is
  // deterministic regardless of backend.
  std::vector<u32> pair_label(k);
  {
    const auto pr = prim::rename_pairs_hashed(red.period, rep);
    const auto canon = prim::canonicalize_labels(pr.labels);
    pair_label = canon.labels;
    out.num_classes = canon.num_classes;
  }
  out.class_id = pair_label;

  // Label bases: each class consumes `period` labels; bases by class id.
  std::vector<u32> class_period(out.num_classes, 0);
  for (std::size_t c = 0; c < k; ++c) class_period[pair_label[c]] = red.period[c];
  std::vector<u32> base(out.num_classes + 1, 0);
  prim::exclusive_scan<u32>(class_period, std::span<u32>(base).first(out.num_classes));
  base[out.num_classes] =
      out.num_classes ? base[out.num_classes - 1] + class_period[out.num_classes - 1] : 0;
  out.num_labels = base[out.num_classes];
  pram::charge(2 * k);

  // Q-label every cycle node: q = base(class) + (rank - msp) mod period.
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (!cs.on_cycle[x]) return;
    const u32 c = cs.cycle_of[x];
    const u32 p = red.period[c];
    const u32 len = cs.length[x];
    const u32 shifted = (cs.rank[x] + len - red.msp[c]) % p;
    out.q[x] = base[pair_label[c]] + shifted;
  });
}

}  // namespace sfcp::core
