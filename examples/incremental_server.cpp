// incremental_server — a REPL-style serving loop around
// inc::IncrementalSolver: load or generate an instance once, then answer a
// stream of edits and queries while the coarsest partition is maintained
// incrementally.  Pipe a script in, or drive it interactively:
//
//   $ ./incremental_server
//   > gen random 100000 42
//   n=100000 blocks=214
//   > setb 17 3
//   ok (repair, 1 dirty)
//   > query 17
//   q[17] = 214
//   > stats
//   edits=1 repairs=1 rebuilds=0 ...
//
// Commands: gen <random|permutation|mergeable|longtail> <n> [seed]
//           load <path>            (text or binary instance, autodetected)
//           save <path> [binary]
//           setf <x> <y>  |  setb <x> <label>
//           edits <path>           (apply an sfcp-edits v1 stream)
//           stream <localized|uniform|churn> <count> [seed]
//           query <x>  |  blocks  |  stats  |  help  |  quit
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "inc/incremental_solver.hpp"
#include "pram/metrics.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

using namespace sfcp;

namespace {

void print_help() {
  std::cout << "commands:\n"
               "  gen <random|permutation|mergeable|longtail> <n> [seed]\n"
               "  load <path>              load instance (text/binary autodetect)\n"
               "  save <path> [binary]     save current instance\n"
               "  setf <x> <y>             f[x] <- y\n"
               "  setb <x> <label>         b[x] <- label\n"
               "  edits <path>             apply an sfcp-edits v1 file\n"
               "  stream <localized|uniform|churn> <count> [seed]\n"
               "  query <x>                current Q-label of x\n"
               "  blocks                   current block count\n"
               "  stats                    edit statistics + metrics\n"
               "  quit\n";
}

std::optional<graph::Instance> generate(const std::string& kind, std::size_t n, u64 seed) {
  util::Rng rng(seed);
  if (kind == "random") return util::random_function(n, 4, rng);
  if (kind == "permutation") return util::random_permutation(n, 4, rng);
  if (kind == "mergeable") return util::mergeable(n, 4, rng);
  if (kind == "longtail") return util::long_tail(n, std::max<std::size_t>(4, n / 16), 4, rng);
  return std::nullopt;
}

std::optional<util::EditMix> parse_mix(const std::string& name) {
  if (name == "localized") return util::EditMix::LocalizedHotspot;
  if (name == "uniform") return util::EditMix::Uniform;
  if (name == "churn") return util::EditMix::CycleChurn;
  return std::nullopt;
}

}  // namespace

int main() {
  std::unique_ptr<inc::IncrementalSolver> solver;
  pram::Metrics metrics;
  util::Rng stream_seed_rng(0xd1ce);

  const auto ensure = [&]() -> inc::IncrementalSolver* {
    if (!solver) std::cout << "no instance loaded (use gen or load)\n";
    return solver.get();
  };
  const auto adopt = [&](graph::Instance inst) {
    solver = std::make_unique<inc::IncrementalSolver>(
        std::move(inst), core::Options::parallel(),
        pram::ExecutionContext{}.with_metrics(&metrics));
    std::cout << "n=" << solver->size() << " blocks=" << solver->num_blocks() << "\n";
  };
  const auto report_edit = [&](const inc::EditStats& before) {
    const inc::EditStats& now = solver->stats();
    if (now.rebuilds > before.rebuilds) {
      std::cout << "ok (" << now.rebuilds - before.rebuilds << " rebuild(s))\n";
    } else {
      std::cout << "ok (repair, " << now.dirty_nodes - before.dirty_nodes << " dirty)\n";
    }
  };

  std::cout << "incremental SFCP server — 'help' for commands\n";
  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "gen") {
        std::string kind;
        std::size_t n = 0;
        u64 seed = 1;
        ss >> kind >> n;
        ss >> seed;
        auto inst = generate(kind, n, seed);
        if (!inst) {
          std::cout << "unknown kind '" << kind << "'\n";
        } else {
          adopt(std::move(*inst));
        }
      } else if (cmd == "load") {
        std::string path;
        ss >> path;
        adopt(util::load_instance_file(path));
      } else if (cmd == "save") {
        if (!ensure()) continue;
        std::string path, mode;
        ss >> path >> mode;
        util::save_instance_file(path, solver->instance(),
                                 mode == "binary" ? util::InstanceFormat::Binary
                                                  : util::InstanceFormat::Text);
        std::cout << "saved " << path << "\n";
      } else if (cmd == "setf" || cmd == "setb") {
        if (!ensure()) continue;
        u32 x = 0, v = 0;
        if (!(ss >> x >> v)) {
          std::cout << "usage: " << cmd << " <x> <value>\n";
          continue;
        }
        const inc::EditStats before = solver->stats();
        if (cmd == "setf") {
          solver->set_f(x, v);
        } else {
          solver->set_b(x, v);
        }
        report_edit(before);
      } else if (cmd == "edits") {
        if (!ensure()) continue;
        std::string path;
        ss >> path;
        const auto stream = util::load_edits_file(path);
        const inc::EditStats before = solver->stats();
        solver->apply(stream);
        std::cout << "applied " << stream.size() << " edits (repairs +"
                  << solver->stats().repairs - before.repairs << ", rebuilds +"
                  << solver->stats().rebuilds - before.rebuilds
                  << "), blocks=" << solver->num_blocks() << "\n";
      } else if (cmd == "stream") {
        if (!ensure()) continue;
        std::string mix_name;
        std::size_t count = 0;
        u64 seed = stream_seed_rng.next();
        ss >> mix_name >> count;
        ss >> seed;
        const auto mix = parse_mix(mix_name);
        if (!mix) {
          std::cout << "unknown mix '" << mix_name << "'\n";
          continue;
        }
        util::Rng rng(seed);
        const auto stream =
            util::random_edit_stream(solver->instance(), count, *mix, 6, rng);
        const inc::EditStats before = solver->stats();
        solver->apply(stream);
        std::cout << "applied " << stream.size() << " edits (repairs +"
                  << solver->stats().repairs - before.repairs << ", rebuilds +"
                  << solver->stats().rebuilds - before.rebuilds
                  << "), blocks=" << solver->num_blocks() << "\n";
      } else if (cmd == "query") {
        if (!ensure()) continue;
        u32 x = 0;
        if (!(ss >> x) || x >= solver->size()) {
          std::cout << "usage: query <x> with x < n\n";
          continue;
        }
        std::cout << "q[" << x << "] = " << solver->label_of(x) << "\n";
      } else if (cmd == "blocks") {
        if (!ensure()) continue;
        std::cout << "blocks = " << solver->num_blocks() << "\n";
      } else if (cmd == "stats") {
        if (!ensure()) continue;
        const auto& s = solver->stats();
        std::cout << "edits=" << s.edits << " repairs=" << s.repairs
                  << " rebuilds=" << s.rebuilds << " dirty_nodes=" << s.dirty_nodes
                  << " cycles_created=" << s.cycles_created
                  << " cycles_destroyed=" << s.cycles_destroyed << "\n"
                  << "metrics: " << metrics.summary() << "\n";
      } else {
        std::cout << "unknown command '" << cmd << "' — try 'help'\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}
