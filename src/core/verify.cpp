#include "core/verify.hpp"

#include <atomic>
#include <sstream>
#include <unordered_map>

#include "core/baselines.hpp"
#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"

namespace sfcp::core {

namespace {

// rep[label] = first element carrying the label; equal-label elements must
// then agree with their representative under `project`.
template <typename Project>
bool classes_agree(std::span<const u32> labels, Project&& project) {
  std::unordered_map<u32, u32> rep;
  rep.reserve(labels.size());
  for (u32 x = 0; x < labels.size(); ++x) {
    const auto [it, inserted] = rep.emplace(labels[x], x);
    if (!inserted && project(it->second) != project(x)) return false;
  }
  return true;
}

}  // namespace

bool is_refinement(std::span<const u32> q, std::span<const u32> b) {
  return classes_agree(q, [&](u32 x) { return b[x]; });
}

bool is_stable(std::span<const u32> q, std::span<const u32> f) {
  return classes_agree(q, [&](u32 x) { return q[f[x]]; });
}

u32 count_blocks(std::span<const u32> labels) {
  return prim::canonicalize_labels(labels).num_classes;
}

bool same_partition(std::span<const u32> a, std::span<const u32> b) {
  if (a.size() != b.size()) return false;
  return prim::canonicalize_labels(a).labels == prim::canonicalize_labels(b).labels;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << "refines_b=" << refines_b << " stable=" << stable << " coarsest=" << coarsest
     << " blocks=" << blocks << " oracle_blocks=" << oracle_blocks;
  return os.str();
}

VerifyReport verify_solution(const graph::Instance& inst, std::span<const u32> q) {
  VerifyReport r;
  r.refines_b = is_refinement(q, inst.b);
  r.stable = is_stable(q, inst.f);
  r.blocks = count_blocks(q);
  const BaselineResult oracle = solve_naive_refinement(inst);
  r.oracle_blocks = oracle.num_blocks;
  r.coarsest = same_partition(q, oracle.q);
  return r;
}

}  // namespace sfcp::core
