#pragma once
// Instance and workload generators for tests, examples and the benchmark
// harness, including the paper's worked examples (2.2, 3.1, 3.4, Fig. 1).

#include <vector>

#include "graph/functional_graph.hpp"
#include "inc/edit.hpp"
#include "pram/types.hpp"
#include "strings/string_sort.hpp"
#include "util/random.hpp"

namespace sfcp::util {

// ---- SFCP instances ------------------------------------------------------

/// The instance of Example 2.2 / Fig. 1 (converted to 0-based indices):
/// 16 nodes forming two cycles of lengths 12 and 4.
graph::Instance paper_example_2_2();

/// Expected Q-labels for paper_example_2_2 (canonicalized; the paper's
/// A_Q[1..16] = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4] zero-based and renamed
/// to first-occurrence order).
std::vector<u32> paper_example_2_2_expected_q();

/// Uniformly random function, B-labels uniform over `num_b_labels`.
graph::Instance random_function(std::size_t n, u32 num_b_labels, Rng& rng);

/// A permutation (pure cycles): cycle lengths drawn until n is exhausted;
/// B-labels periodic with the given pattern length plus optional noise.
graph::Instance random_permutation(std::size_t n, u32 num_b_labels, Rng& rng);

/// k cycles of identical length len (n = k*len) with B-label strings chosen
/// from `distinct_patterns` random patterns — exercises Algorithm partition
/// with controlled equivalence-class counts.
graph::Instance equal_cycles(std::size_t k, std::size_t len, u32 distinct_patterns,
                             u32 num_b_labels, Rng& rng);

/// One cycle of length `cycle_len` with a single path of length
/// n - cycle_len attached (adversarially deep trees).
graph::Instance long_tail(std::size_t n, std::size_t cycle_len, u32 num_b_labels, Rng& rng);

/// One small cycle with shallow, bushy trees (caterpillar/star mixture).
graph::Instance bushy(std::size_t n, std::size_t cycle_len, u32 fanout, u32 num_b_labels,
                      Rng& rng);

/// B-labels copied from f-orbit structure so that large Q-blocks survive
/// (high-coarseness instances where most nodes merge).
graph::Instance mergeable(std::size_t n, u32 period, Rng& rng);

// ---- edit streams --------------------------------------------------------

/// Shape of an edit workload against a live instance (inc::IncrementalSolver).
enum class EditMix {
  /// Edits confined to in-degree-0 leaves: dirty regions of size 1, the
  /// incremental engine's best case (steady-state serving traffic).
  LocalizedHotspot,
  /// Uniformly random set_f / set_b over all nodes.
  Uniform,
  /// Adversarial cycle merge/split churn: retargets nodes at or near cycles
  /// so whole components go dirty, forcing the full-recompute path.
  CycleChurn,
};

/// A reproducible edit stream of `count` edits against (an evolving copy of)
/// `inst`; set_b values are drawn below `num_b_labels`, set_f targets are
/// valid node indices.  The stream is meaningful when applied in order
/// starting from `inst`.
std::vector<inc::Edit> random_edit_stream(const graph::Instance& inst, std::size_t count,
                                          EditMix mix, u32 num_b_labels, Rng& rng);

// ---- circular strings ----------------------------------------------------

/// Example 3.4's circular string (3,2,1,3,2,3,4,3,1,2,3,4,2,1,1,1,3,2,2).
std::vector<u32> paper_example_3_4();

/// Random circular string over alphabet of size `sigma`.
std::vector<u32> random_string(std::size_t n, u32 sigma, Rng& rng);

/// Random NON-repeating circular string (resamples until primitive).
std::vector<u32> random_primitive_string(std::size_t n, u32 sigma, Rng& rng);

/// Adversarial m.s.p. inputs: long runs of the minimum symbol.
std::vector<u32> runs_string(std::size_t n, u32 sigma, std::size_t run_len, Rng& rng);

/// Periodic string: pattern of length p repeated to length n (p | n).
std::vector<u32> periodic_string(std::size_t n, std::size_t p, u32 sigma, Rng& rng);

// ---- string lists ---------------------------------------------------------

enum class LengthDistribution { Uniform, ManyShort, FewLong, PowerOfTwo };

/// m strings with total length ~ total_symbols over alphabet sigma.
strings::StringList random_string_list(std::size_t m, std::size_t total_symbols, u32 sigma,
                                       LengthDistribution dist, Rng& rng);

}  // namespace sfcp::util
