#pragma once
// Per-session execution parameters: the PRAM substrate's replacement for
// process-global configuration.
//
// An ExecutionContext bundles everything one "session" of solving needs —
// thread budget, grain size, metrics sink, RNG seed — so that two callers
// (e.g. two server requests) can run concurrently with different settings
// without trampling each other.  A context is installed on the CURRENT
// THREAD with ScopedContext; parallel_for/parallel_blocks re-install the
// caller's context inside their OpenMP workers, so per-element charging in
// parallel bodies reaches the right sink.
//
// Resolution order for every knob: installed context first (field != 0 /
// non-null), then the process-wide defaults in pram/config.hpp.  The old
// set_threads/set_grain/ScopedMetrics globals keep working and act as the
// backwards-compatible default context.
//
// Note one deliberate asymmetry: while a context is installed, its
// `metrics` field is authoritative — null means "don't count", even if a
// global ScopedMetrics sink is active.  That is what isolates one session's
// counters from another's.

#include <cstddef>

#include "pram/metrics.hpp"
#include "pram/types.hpp"

namespace sfcp::prof {
class Profiler;  // prof/profile.hpp
}  // namespace sfcp::prof

namespace sfcp::pram {

class Arena;       // pram/arena.hpp
class WorkerPool;  // pram/worker_pool.hpp

/// Default session seed (used when no context is installed).
inline constexpr u64 kDefaultSeed = 0x5eed5eed5eedull;

struct ExecutionContext {
  int threads = 0;             ///< worker threads; 0 = inherit process default
  std::size_t grain = 0;       ///< min elements per parallel chunk; 0 = inherit
  Metrics* metrics = nullptr;  ///< work/depth sink; null = don't count
  /// Phase-scope sink (prof/profile.hpp).  Unlike `metrics`, null does NOT
  /// mean "don't profile": scope resolution falls through to the process
  /// default installed by prof::ScopedProfiler, so a profiler set at the
  /// top of a run still sees engine internals that install their own
  /// context copies.  No-op unless built with SFCP_PROFILE=ON.
  prof::Profiler* profiler = nullptr;
  /// Base seed for randomized kernels: salts the CRCW hash table's probe
  /// sequence (canonical outputs are seed-independent; see prim/hash_table).
  u64 seed = kDefaultSeed;
  /// Allocation source for arena-aware persistent state (pram/arena.hpp).
  /// Null (the default) means the global heap.  Consumed at construction
  /// time by components that keep long-lived per-node arrays (the
  /// incremental solver); transient scratch stays on the heap regardless.
  Arena* arena = nullptr;
  /// Persistent worker pool (pram/worker_pool.hpp).  When non-null,
  /// parallel_for/parallel_blocks/parallel_fan dispatch to the pool's
  /// long-lived workers instead of forking an OpenMP team per round; null
  /// keeps the fork-join OpenMP path.  The pool is NOT owned by the
  /// context: whoever installs it (serve::Server, a bench, a test) must
  /// keep it alive for as long as any context copy pointing at it is used.
  WorkerPool* pool = nullptr;

  ExecutionContext& with_threads(int t) noexcept {
    threads = t;
    return *this;
  }
  ExecutionContext& with_grain(std::size_t g) noexcept {
    grain = g;
    return *this;
  }
  ExecutionContext& with_metrics(Metrics* m) noexcept {
    metrics = m;
    return *this;
  }
  ExecutionContext& with_profiler(prof::Profiler* p) noexcept {
    profiler = p;
    return *this;
  }
  ExecutionContext& with_seed(u64 s) noexcept {
    seed = s;
    return *this;
  }
  ExecutionContext& with_arena(Arena* a) noexcept {
    arena = a;
    return *this;
  }
  ExecutionContext& with_pool(WorkerPool* p) noexcept {
    pool = p;
    return *this;
  }
};

namespace detail {
inline thread_local const ExecutionContext* tls_context = nullptr;
/// True on threads owned by a pram::WorkerPool.  Set once at worker spawn,
/// never cleared: pool workers are single-purpose.  config.hpp's threads()
/// reads this to force nested loops serial (one PRAM processor per worker),
/// which keeps work/depth charging identical to a threads=1 run.
inline thread_local bool tls_pool_worker = false;
/// Worker lane index on pool threads (0..workers-1); -1 elsewhere.
inline thread_local int tls_pool_lane = -1;
/// Depth of pool tasks the current thread is running INLINE — the
/// coordinator standing in for a worker (caller-lane drain inside wait(),
/// ring-full/degenerate submit fallbacks, its own share of a fan).  Nonzero
/// pins threads() to 1 exactly like tls_pool_worker does on workers: an
/// inline task is one PRAM processor, whatever session contexts it installs
/// internally (shard solvers install their own, pool pointer included), so
/// its nested rounds must run serial instead of re-entering the pool whose
/// wait() is live further up this very stack.
inline thread_local int tls_pool_inline = 0;
}  // namespace detail

/// The context installed on this thread, or null when running under the
/// process-wide defaults.
inline const ExecutionContext* current_context() noexcept { return detail::tls_context; }

/// The active session seed: the installed context's, else kDefaultSeed.
inline u64 session_seed() noexcept {
  const ExecutionContext* c = current_context();
  return c ? c->seed : kDefaultSeed;
}

/// The worker pool of the installed context, or null (no pool installed /
/// no context).  There is deliberately no process-wide fallback: a pool is
/// session state, owned by whoever built the context.
inline WorkerPool* session_pool() noexcept {
  const ExecutionContext* c = current_context();
  return c ? c->pool : nullptr;
}

/// True when the calling thread is a pram::WorkerPool worker.
inline bool on_pool_worker() noexcept { return detail::tls_pool_worker; }

/// Worker lane of the calling thread (0..workers-1), or -1 off-pool — the
/// lane-scratch index allocator-level components use to pick a per-lane
/// stripe (fleet::SlabArena) without depending on worker_pool.hpp.
inline int pool_worker_lane() noexcept { return detail::tls_pool_lane; }

/// True while the calling thread is executing a pool task inline (the
/// coordinator standing in for a worker).  threads() is then pinned to 1,
/// so nested rounds run serial — same rule as on_pool_worker().
inline bool in_pool_inline() noexcept { return detail::tls_pool_inline > 0; }

/// Installs a context on the current thread for the guard's lifetime.
///
/// The reference form stores a COPY, so passing a temporary is safe (later
/// mutations of the original are not seen).  The pointer form rebinds
/// without copying — null means "no context: revert to process defaults
/// within the scope" — and the pointee must outlive the guard; it is what
/// parallel_for workers and the Solver use.
class ScopedContext {
 public:
  explicit ScopedContext(const ExecutionContext& ctx) noexcept
      : copy_(ctx), saved_(detail::tls_context) {
    detail::tls_context = &copy_;
  }
  explicit ScopedContext(const ExecutionContext* ctx) noexcept : saved_(detail::tls_context) {
    detail::tls_context = ctx;
  }
  ~ScopedContext() { detail::tls_context = saved_; }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  ExecutionContext copy_{};  // engaged only by the reference constructor
  const ExecutionContext* saved_;
};

}  // namespace sfcp::pram
