// Tests for the unary Moore machine minimization API (the paper's flagship
// application: SFCP == unary Moore/DFA minimization via Lemma 2.1(ii)).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/moore.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::isomorphic;
using core::minimize;
using core::MooreMachine;
using core::quotient_preserves_behaviour;
using core::states_equivalent;

MooreMachine random_machine(std::size_t n, u32 outputs, util::Rng& rng) {
  MooreMachine m;
  m.next.resize(n);
  m.output.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    m.next[x] = rng.below(static_cast<u32>(n));
    m.output[x] = rng.below(outputs);
  }
  return m;
}

TEST(Moore, ValidateRejectsBadMachines) {
  MooreMachine m;
  m.next = {0, 5};
  m.output = {1, 1};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.next = {0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Moore, StreamFollowsTransitions) {
  // 0 -> 1 -> 2 -> 0 with outputs a, b, c.
  MooreMachine m;
  m.next = {1, 2, 0};
  m.output = {10, 20, 30};
  EXPECT_EQ(m.stream(0, 7), (std::vector<u32>{10, 20, 30, 10, 20, 30, 10}));
  EXPECT_EQ(m.stream(2, 2), (std::vector<u32>{30, 10}));
  EXPECT_THROW(m.stream(5, 1), std::out_of_range);
}

TEST(Moore, MinimizeCollapsesIdenticalCycles) {
  // Two identical 2-cycles with outputs (1, 2): minimal machine has 2 states.
  MooreMachine m;
  m.next = {1, 0, 3, 2};
  m.output = {1, 2, 1, 2};
  const auto min = minimize(m);
  EXPECT_EQ(min.classes, 2u);
  EXPECT_EQ(min.state_map[0], min.state_map[2]);
  EXPECT_EQ(min.state_map[1], min.state_map[3]);
  EXPECT_TRUE(quotient_preserves_behaviour(m, min, 16));
}

TEST(Moore, MinimizeKeepsDistinctStates) {
  // A 3-cycle with pairwise distinct outputs is already minimal.
  MooreMachine m;
  m.next = {1, 2, 0};
  m.output = {5, 6, 7};
  const auto min = minimize(m);
  EXPECT_EQ(min.classes, 3u);
  EXPECT_TRUE(isomorphic(m, min.machine));
}

TEST(Moore, QuotientIsIdempotent) {
  util::Rng rng(7001);
  for (int iter = 0; iter < 20; ++iter) {
    const auto m = random_machine(1 + rng.below(400), 1 + rng.below(3), rng);
    const auto min1 = minimize(m);
    const auto min2 = minimize(min1.machine);
    EXPECT_EQ(min2.classes, min1.classes) << "quotient must be minimal";
    EXPECT_TRUE(isomorphic(min1.machine, min2.machine));
  }
}

TEST(Moore, QuotientPreservesBehaviourRandom) {
  util::Rng rng(7003);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 1 + rng.below(300);
    const auto m = random_machine(n, 2, rng);
    const auto min = minimize(m);
    // Horizon n suffices: streams of length n separate inequivalent states
    // (Lemma 2.1(ii) bounds the separation index by n).
    EXPECT_TRUE(quotient_preserves_behaviour(m, min, n + 1));
  }
}

TEST(Moore, StatesEquivalentMatchesStreamComparison) {
  util::Rng rng(7007);
  const std::size_t n = 120;
  const auto m = random_machine(n, 2, rng);
  for (int pair = 0; pair < 40; ++pair) {
    const u32 x = rng.below(n), y = rng.below(n);
    const bool want = m.stream(x, n + 1) == m.stream(y, n + 1);
    EXPECT_EQ(states_equivalent(m, x, y), want) << x << "," << y;
  }
}

TEST(Moore, MinimalSizeMatchesHopcroftBaseline) {
  util::Rng rng(7011);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 1 + rng.below(500);
    const auto m = random_machine(n, 1 + rng.below(4), rng);
    graph::Instance inst{m.next, m.output};
    const auto hop = core::solve_hopcroft(inst);
    EXPECT_EQ(minimize(m).classes, hop.num_blocks);
  }
}

TEST(Moore, IsomorphismDetectsRelabeling) {
  util::Rng rng(7013);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 2 + rng.below(60);
    const auto m = random_machine(n, 2, rng);
    const auto min = minimize(m).machine;
    // Random permutation of the minimal machine's states.
    std::vector<u32> perm(min.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<u32>(i);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(static_cast<u32>(i))]);
    }
    MooreMachine shuffled;
    shuffled.next.resize(min.size());
    shuffled.output.resize(min.size());
    for (std::size_t x = 0; x < min.size(); ++x) {
      shuffled.next[perm[x]] = perm[min.next[x]];
      shuffled.output[perm[x]] = min.output[x];
    }
    EXPECT_TRUE(isomorphic(min, shuffled));
  }
}

TEST(Moore, IsomorphismRejectsDifferentBehaviour) {
  MooreMachine a, b;
  a.next = {1, 0};
  a.output = {1, 2};
  b.next = {1, 0};
  b.output = {1, 3};
  EXPECT_FALSE(isomorphic(a, b));
  // Same outputs, different structure (fixed points vs swap).
  MooreMachine c;
  c.next = {0, 1};
  c.output = {1, 2};
  EXPECT_FALSE(isomorphic(a, c));
  // Different sizes.
  MooreMachine d;
  d.next = {0};
  d.output = {1};
  EXPECT_FALSE(isomorphic(a, d));
}

TEST(Moore, EmptyMachine) {
  MooreMachine m;
  const auto min = minimize(m);
  EXPECT_EQ(min.classes, 0u);
  EXPECT_TRUE(isomorphic(m, min.machine));
}

TEST(Moore, SelfLoopChainExample) {
  // Intro-style workload: a long counter chain 5 -> 4 -> ... -> 0 -> 0 where
  // all states output 0 except state 0.  No two chain states are equivalent
  // (they differ in when the 1 appears), so the machine is already minimal.
  const std::size_t n = 64;
  MooreMachine m;
  m.next.resize(n);
  m.output.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    m.next[x] = x == 0 ? 0 : static_cast<u32>(x - 1);
    m.output[x] = x == 0 ? 1 : 0;
  }
  EXPECT_EQ(minimize(m).classes, n);
}

}  // namespace
}  // namespace sfcp
