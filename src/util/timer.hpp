#pragma once
// Wall-clock timing helpers: Timer for the benchmark table printers, and
// the nanosecond observations the adaptive cost fits (pram::CostModel)
// are fed from.

#include <chrono>

namespace sfcp::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  double nanos() const { return seconds() * 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sfcp::util
