#pragma once
// fleet::SlabArena — the shared allocation slab behind a FleetEngine.
//
// A fleet multiplexes up to millions of small per-instance engines whose
// persistent arrays (inc::IncrementalSolver's per-node/per-label state)
// churn as instances are faulted in and evicted.  Handing every engine the
// global heap makes that churn a malloc/free storm with no reuse; the slab
// arena instead pools freed blocks in power-of-two size classes, so the
// arrays of an evicted instance are recycled verbatim by the next fault-in
// of a same-sized one.
//
// The arena implements pram::Arena, the allocator hook engines receive via
// pram::ExecutionContext::arena — solvers draw their long-lived arrays from
// it through pram::ArenaAllocator without knowing the pooling policy.
//
// Thread safety: allocate/deallocate/stats may be called concurrently —
// core::Solver::solve_batch constructs seeded engines on its worker
// threads (the fleet cold-start flood), and FleetEngine's warm fan runs
// per-instance repairs on pool lanes.  A single arena mutex would
// serialize exactly those fans, so the free lists are STRIPED: each pool
// worker homes to the stripe of its lane (pram::pool_worker_lane), other
// threads hash their thread id, and an allocation that misses its home
// stripe steals from the others before falling through to the heap (so a
// block freed by the caller-lane evict sweep still feeds the next
// worker-side fault-in).  Stats counters are plain atomics.  Blocks are
// pooled whole — there is no intra-block bump allocation — so a block
// freed on one stripe is safely reused from another.

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "pram/arena.hpp"
#include "pram/types.hpp"

namespace sfcp::fleet {

class SlabArena final : public pram::Arena {
 public:
  struct Stats {
    std::size_t live_bytes = 0;    ///< handed out and not yet returned
    std::size_t pooled_bytes = 0;  ///< returned, cached for reuse
    std::size_t live_blocks = 0;   ///< outstanding allocations
    u64 allocs = 0;                ///< total allocate() calls
    u64 frees = 0;                 ///< total deallocate() calls
    u64 reuses = 0;                ///< allocations served from the pool
  };

  SlabArena() = default;
  ~SlabArena() override;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Rounds `bytes` up to its size class and returns a pooled block when one
  /// is available (home stripe first, then stealing), else a fresh heap
  /// block of the class size.  Alignments beyond alignof(std::max_align_t)
  /// bypass the pool (exact aligned new).
  void* allocate(std::size_t bytes, std::size_t align) override;

  /// Returns the block to the calling thread's home-stripe pool (or the
  /// heap, for bypassed over-aligned blocks).  `bytes` and `align` must
  /// match the allocation.
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept override;

  /// Releases every pooled block back to the heap.  Outstanding live blocks
  /// are untouched — callers still own them.
  void trim();

  Stats stats() const;

 private:
  // Classes are kMinBlock << i; class_of_ returns kNumClasses for requests
  // too large (or too aligned) to pool.
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kNumClasses = 26;  // up to 64 << 25 = 2 GiB
  /// Free-list stripes (power of two).  Enough to spread an 8-wide pool;
  /// beyond that lanes share stripes, which is still contention /8.
  static constexpr std::size_t kStripes = 8;
  static std::size_t class_of_(std::size_t bytes, std::size_t align) noexcept;
  static std::size_t home_stripe_() noexcept;

  struct Stripe {
    std::mutex mu;
    std::vector<void*> pool[kNumClasses];
  };

  mutable std::array<Stripe, kStripes> stripes_;
  std::atomic<std::size_t> live_bytes_{0};
  std::atomic<std::size_t> pooled_bytes_{0};
  std::atomic<std::size_t> live_blocks_{0};
  std::atomic<u64> allocs_{0};
  std::atomic<u64> frees_{0};
  std::atomic<u64> reuses_{0};
};

}  // namespace sfcp::fleet
