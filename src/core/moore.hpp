#pragma once
// Unary Moore machines and their minimization — the paper's flagship
// application packaged as a first-class API.
//
// A unary Moore machine is a finite-state machine with a one-letter input
// alphabet: states {0..n-1}, a transition function f (one successor per
// state) and an output map out(x).  Minimizing it — merging states that
// produce identical output streams out(x), out(f(x)), out(f^2(x)), ... —
// is *exactly* the single function coarsest partition problem with
// B-labels = outputs (Lemma 2.1(ii)), so `minimize` delegates to the
// paper's parallel solver and returns the quotient machine.
//
// The module also provides behavioural equivalence of states and machines,
// output-stream evaluation, and an isomorphism check between minimal
// machines (used by the tests to validate the quotient construction).

#include <optional>
#include <span>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "graph/functional_graph.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

/// A unary Moore machine.  Outputs are arbitrary u32 values.
struct MooreMachine {
  std::vector<u32> next;    ///< transition: state x -> next[x]
  std::vector<u32> output;  ///< output[x] emitted when in state x

  std::size_t size() const { return next.size(); }

  /// Throws std::invalid_argument on malformed machines.
  void validate() const;

  /// The first `len` outputs of the stream emitted from `start`:
  /// output[start], output[f(start)], ...
  std::vector<u32> stream(u32 start, std::size_t len) const;
};

/// Result of minimization: the quotient machine plus the state map.
struct MinimizedMoore {
  MooreMachine machine;        ///< quotient machine, states in [0, classes)
  std::vector<u32> state_map;  ///< original state -> quotient state
  u32 classes = 0;             ///< number of quotient states

  std::size_t original_size() const { return state_map.size(); }
};

/// Minimizes `m` with the paper's parallel SFCP algorithm (or any Options
/// configuration).  The quotient's state ids follow the canonical
/// first-occurrence order of the underlying Q-labels.
MinimizedMoore minimize(const MooreMachine& m, const Options& opt = Options::parallel());

/// True iff states x and y of `m` emit identical infinite output streams
/// (behavioural equivalence).  Decided exactly via minimization.
bool states_equivalent(const MooreMachine& m, u32 x, u32 y);

/// True iff the two machines are isomorphic: a bijection of states
/// preserving transitions and outputs.  Intended for *minimal* machines
/// where the isomorphism, if any, is unique per matched start state; the
/// check runs in O(n log n).
bool isomorphic(const MooreMachine& a, const MooreMachine& b);

/// Quotient soundness check: m's behaviour is preserved by `min` (every
/// state's stream of length `horizon` matches its image's stream).
bool quotient_preserves_behaviour(const MooreMachine& m, const MinimizedMoore& min,
                                  std::size_t horizon);

}  // namespace sfcp::core
