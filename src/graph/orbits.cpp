#include "graph/orbits.hpp"

#include <atomic>
#include <stdexcept>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"

namespace sfcp::graph {

Orbits compute_orbits(std::span<const u32> f, const CycleStructure& cs) {
  const std::size_t n = f.size();
  Orbits out;
  out.tail.assign(n, 0);
  out.entry.assign(n, 0);
  out.cycle_id.assign(n, 0);
  out.cycle_len.assign(n, 0);
  if (n == 0) return out;

  // Pointer doubling over tree edges: cycle nodes are anchors (jump[x] = x),
  // tree nodes start with jump[x] = f(x) and accumulate the step count until
  // their pointer lands on a cycle node.
  std::vector<u32> jump(n), steps(n);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (cs.on_cycle[x]) {
      jump[x] = static_cast<u32>(x);
      steps[x] = 0;
    } else {
      jump[x] = f[x];
      steps[x] = 1;
    }
  });
  // After round j every tree node either reached a cycle node or doubled its
  // horizon to 2^j; at most ceil(log2 n) rounds.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<u32> jump2(n), steps2(n);
    std::atomic<u32> any{0};
    pram::parallel_for(0, n, [&](std::size_t x) {
      const u32 j = jump[x];
      if (cs.on_cycle[j]) {
        jump2[x] = j;
        steps2[x] = steps[x];
      } else {
        jump2[x] = jump[j];
        steps2[x] = steps[x] + steps[j];
        any.store(1, std::memory_order_relaxed);
      }
    });
    jump.swap(jump2);
    steps.swap(steps2);
    changed = any.load(std::memory_order_relaxed) != 0;
  }

  pram::parallel_for(0, n, [&](std::size_t x) {
    out.tail[x] = steps[x];
    out.entry[x] = jump[x];
    out.cycle_id[x] = cs.cycle_of[jump[x]];
    out.cycle_len[x] = cs.length[jump[x]];
  });
  return out;
}

Orbits compute_orbits(std::span<const u32> f) {
  return compute_orbits(f, cycle_structure(f));
}

IterationTable::IterationTable(std::span<const u32> f, u64 max_k) : max_k_(max_k) {
  const std::size_t n = f.size();
  levels_.emplace_back(f.begin(), f.end());
  u64 reach = 1;
  while (reach < max_k) {
    const auto& prev = levels_.back();
    std::vector<u32> next(n);
    pram::parallel_for(0, n, [&](std::size_t x) { next[x] = prev[prev[x]]; });
    levels_.push_back(std::move(next));
    reach <<= 1;
  }
}

u32 IterationTable::apply(u32 x, u64 k) const {
  if (k > max_k_) throw std::out_of_range("IterationTable::apply: k exceeds max_k");
  u32 cur = x;
  for (int j = 0; k != 0; ++j, k >>= 1) {
    if (k & 1) cur = levels_[static_cast<std::size_t>(j)][cur];
  }
  return cur;
}

OrbitStats orbit_stats(std::span<const u32> f) {
  OrbitStats st;
  const std::size_t n = f.size();
  if (n == 0) return st;
  const CycleStructure cs = cycle_structure(f);
  const Orbits orb = compute_orbits(f, cs);
  st.num_cycles = static_cast<u32>(cs.num_cycles());
  st.num_components = st.num_cycles;
  st.cycle_nodes = static_cast<u32>(cs.cycle_nodes.size());
  for (std::size_t c = 0; c < cs.num_cycles(); ++c) {
    st.max_cycle_len = std::max(st.max_cycle_len, cs.cycle_length(c));
  }
  u64 tail_sum = 0;
  for (std::size_t x = 0; x < n; ++x) {
    st.max_tail = std::max(st.max_tail, orb.tail[x]);
    tail_sum += orb.tail[x];
  }
  st.mean_tail = static_cast<double>(tail_sum) / static_cast<double>(n);
  pram::charge(2 * n);
  return st;
}

std::vector<u32> orbit_of(std::span<const u32> f, u32 x) {
  if (f.empty()) return {};
  const Orbits orb = compute_orbits(f);
  std::vector<u32> path;
  path.reserve(orb.rho(x));
  u32 cur = x;
  for (u32 t = 0; t < orb.tail[x]; ++t) {
    path.push_back(cur);
    cur = f[cur];
  }
  for (u32 t = 0; t < orb.cycle_len[x]; ++t) {
    path.push_back(cur);
    cur = f[cur];
  }
  pram::charge(path.size());
  return path;
}

}  // namespace sfcp::graph
