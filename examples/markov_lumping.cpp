// Lumping a deterministic chain: state-space reduction of a product system.
//
// A deterministic finite dynamical system (a Markov chain whose rows are
// point masses) is a function f on its states; "lumping" states that are
// observationally equivalent is exactly the single function coarsest
// partition problem.  This example models a small factory cell — a machine
// with a wear counter, a maintenance timer and a sensor that only reports
// RUNNING / DEGRADED / DOWN — builds the product state space, and lumps it
// with the paper's parallel algorithm.  The lumped model is provably
// equivalent for any property defined on the sensor output.
//
//   $ ./markov_lumping [wear_levels] [timer_len]
#include <cstdlib>
#include <iostream>

#include "sfcp.hpp"

namespace {

using namespace sfcp;

// Product state: (wear in [0, W), timer in [0, T)).
// Dynamics per tick:
//   * timer counts down; at 0 maintenance fires: wear resets, timer reloads.
//   * otherwise wear increases by 1 up to saturation at W-1 (machine DOWN).
// Sensor: wear < W/2 -> RUNNING(0), wear < W-1 -> DEGRADED(1), else DOWN(2).
struct FactoryModel {
  u32 wear_levels;
  u32 timer_len;

  u32 states() const { return wear_levels * timer_len; }
  u32 encode(u32 wear, u32 timer) const { return wear * timer_len + timer; }

  u32 step(u32 s) const {
    const u32 wear = s / timer_len;
    const u32 timer = s % timer_len;
    if (timer == 0) return encode(0, timer_len - 1);  // maintenance
    const u32 w2 = std::min(wear + 1, wear_levels - 1);
    return encode(w2, timer - 1);
  }

  u32 sensor(u32 s) const {
    const u32 wear = s / timer_len;
    if (wear < wear_levels / 2) return 0;      // RUNNING
    if (wear < wear_levels - 1) return 1;      // DEGRADED
    return 2;                                  // DOWN
  }
};

}  // namespace

int main(int argc, char** argv) {
  const u32 wear = argc > 1 ? static_cast<u32>(std::strtoul(argv[1], nullptr, 10)) : 24;
  const u32 timer = argc > 2 ? static_cast<u32>(std::strtoul(argv[2], nullptr, 10)) : 64;
  const FactoryModel model{wear, timer};

  graph::Instance inst;
  inst.f.resize(model.states());
  inst.b.resize(model.states());
  for (u32 s = 0; s < model.states(); ++s) {
    inst.f[s] = model.step(s);
    inst.b[s] = model.sensor(s);
  }

  std::cout << "Factory cell model: " << wear << " wear levels x " << timer
            << " timer ticks = " << model.states() << " product states\n";

  // Lump with the paper's parallel pipeline, counting work in a
  // session-scoped sink.
  pram::Metrics metrics;
  core::Solver solver(core::Options::parallel(),
                      pram::ExecutionContext{}.with_metrics(&metrics));
  const core::Result lumped = solver.solve(inst);
  std::cout << "Lumped (bisimulation-minimal) model: " << lumped.num_blocks << " states ("
            << (100.0 * lumped.num_blocks / model.states()) << "% of product)\n"
            << "Work: " << metrics.summary() << "\n\n";

  // The lumped model is a Moore machine in its own right; reconstruct it
  // and confirm it reproduces the sensor stream from a few start states.
  core::MooreMachine m{inst.f, inst.b};
  const auto min = core::minimize(m);
  std::cout << "Quotient machine has " << min.machine.size() << " states.\n";
  bool ok = core::quotient_preserves_behaviour(m, min, model.states() + 1);
  std::cout << "Sensor-stream preservation over horizon " << model.states() + 1 << ": "
            << (ok ? "verified" : "FAILED") << "\n";

  // Show one concrete trace: the first 12 sensor readings from a fresh
  // machine and from its lumped image.
  const u32 start = model.encode(0, timer - 1);
  std::cout << "\nSensor trace from fresh state (original | lumped):\n  ";
  const auto a = m.stream(start, 12);
  const auto b = min.machine.stream(min.state_map[start], 12);
  const char* names[] = {"RUN", "DEG", "DOWN"};
  for (std::size_t t = 0; t < a.size(); ++t) std::cout << names[a[t]] << ' ';
  std::cout << "\n  ";
  for (std::size_t t = 0; t < b.size(); ++t) std::cout << names[b[t]] << ' ';
  std::cout << "\n";
  return ok ? 0 : 1;
}
