#include "util/bench_json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sfcp::util {

namespace {

void append_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms) {
  append_bench_record(path, name, n, strategy, threads, ms, prof::ProfileTree{});
}

void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms,
                         const prof::ProfileTree& profile) {
  append_bench_record(path, name, n, strategy, threads, ms, profile, {});
}

void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms,
                         const prof::ProfileTree& profile,
                         const std::vector<std::pair<std::string, double>>& counters) {
  if (path.empty()) return;
  std::ofstream os(path, std::ios::app);
  if (!os) throw std::runtime_error("append_bench_record: cannot open " + path);
  os << "{\"name\":\"";
  append_escaped(os, name);
  os << "\",\"n\":" << n << ",\"strategy\":\"";
  append_escaped(os, strategy);
  os << "\",\"threads\":" << threads << ",\"ms\":" << ms;
  if (!profile.empty()) {
    os << ",\"profile\":{";
    bool first = true;
    for (const prof::PhaseNode& p : profile.phases) {
      if (!first) os << ',';
      first = false;
      os << '"';
      append_escaped(os, p.path);
      os << "\":{\"ns\":" << p.ns << ",\"count\":" << p.count << ",\"flops\":" << p.flops
         << ",\"bytes\":" << p.bytes << '}';
    }
    os << '}';
  }
  if (!counters.empty()) {
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : counters) {
      if (!first) os << ',';
      first = false;
      os << '"';
      append_escaped(os, key);
      os << "\":" << value;
    }
    os << '}';
  }
  os << "}\n";
}

std::string consume_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        // Silently dropping records the user asked for is worse than dying.
        std::fprintf(stderr, "error: --json requires a path argument\n");
        std::exit(2);
      }
      path = argv[i + 1];
      ++i;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

}  // namespace sfcp::util
