#include "fleet/fleet_engine.hpp"

#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "pram/worker_pool.hpp"
#include "prof/profile.hpp"
#include "util/io.hpp"

namespace sfcp::fleet {

namespace {

// Cold image for non-checkpointable (batch) engines: this magic, the engine
// epoch (u64 LE), then the instance as `sfcp-instance v2`.  Distinct from the
// `sfcp-checkpoint v1` magics so fault-in can dispatch on the first 8 bytes.
constexpr unsigned char kColdImageMagic[8] = {0x7f, 's', 'f', 'c', 'B', 'v', '1', '\n'};

}  // namespace

FleetEngine::FleetEngine(FleetConfig cfg)
    : cfg_(std::move(cfg)), solver_(cfg_.options, cfg_.ctx) {
  if (engines().find(cfg_.engine) == nullptr) {
    throw std::invalid_argument("fleet::FleetEngine: no engine named '" + cfg_.engine + "'");
  }
  if (!cfg_.spill_dir.empty()) {
    std::filesystem::create_directories(cfg_.spill_dir);
    // Adopt spill files from a previous run as cold instances.  Their epoch
    // is unknown until fault-in (epoch() wakes them on demand).
    for (const auto& entry : std::filesystem::directory_iterator(cfg_.spill_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() < 7 || name.front() != 'i' || !name.ends_with(".ckpt")) continue;
      const std::string digits = name.substr(1, name.size() - 6);
      InstanceId id = 0;
      bool ok = !digits.empty();
      for (const char c : digits) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        id = id * 10 + static_cast<InstanceId>(c - '0');
      }
      if (!ok || find_(id) != kNil) continue;
      Slot& s = slots_[add_slot_(id)];
      s.set_tier(Tier::Cold);
      s.on_disk = true;
      s.epoch = kEpochUnknown;
      ++cold_count_;
    }
  }
}

void FleetEngine::set_factory(std::function<graph::Instance(InstanceId)> factory) {
  factory_ = std::move(factory);
}

void FleetEngine::create(InstanceId id, graph::Instance inst) {
  if (find_(id) != kNil) {
    throw std::invalid_argument("fleet::FleetEngine: instance id " + std::to_string(id) +
                                " already exists");
  }
  graph::validate(inst);
  Slot& s = slots_[add_slot_(id)];
  s.nodes = inst.size();
  s.pending = std::move(inst);
}

bool FleetEngine::contains(InstanceId id) const noexcept { return find_(id) != kNil; }

bool FleetEngine::is_warm(InstanceId id) const noexcept {
  const u32 si = find_(id);
  return si != kNil && slots_[si].tier_now() == Tier::Warm;
}

// ---- routing -------------------------------------------------------------

pram::ExecutionContext FleetEngine::instance_ctx_() {
  pram::ExecutionContext ctx = cfg_.ctx;
  if (cfg_.use_arena) ctx.arena = &arena_;
  return ctx;
}

u32 FleetEngine::find_(InstanceId id) const noexcept {
  return table_.find(id, [this](u32 si) noexcept { return slots_[si].id; });
}

u32 FleetEngine::ensure_slot_(InstanceId id) {
  const u32 si = find_(id);
  if (si != kNil) return si;
  if (!factory_) {
    throw std::out_of_range("fleet::FleetEngine: unknown instance id " + std::to_string(id) +
                            " (no factory installed)");
  }
  graph::Instance inst = factory_(id);
  graph::validate(inst);
  const u32 fresh = add_slot_(id);
  Slot& s = slots_[fresh];
  s.nodes = inst.size();
  s.pending = std::move(inst);
  return fresh;
}

u32 FleetEngine::add_slot_(InstanceId id) {
  const u32 si = slots_.push();
  // The id must be in place before the route-table cell publishes the slot:
  // a lock-free reader acquires the cell and immediately reads the id.
  slots_[si].id = id;
  table_.insert(id, si, [this](u32 x) noexcept { return slots_[x].id; });
  return si;
}

// ---- warm LRU ------------------------------------------------------------

void FleetEngine::lru_unlink_(u32 si) noexcept {
  Slot& s = slots_[si];
  if (s.lru_prev != kNil) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = s.lru_next = kNil;
}

void FleetEngine::lru_push_front_(u32 si) noexcept {
  Slot& s = slots_[si];
  s.lru_prev = kNil;
  s.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = si;
  lru_head_ = si;
  if (lru_tail_ == kNil) lru_tail_ = si;
}

void FleetEngine::lru_touch_(u32 si) noexcept {
  if (lru_head_ == si) return;
  lru_unlink_(si);
  lru_push_front_(si);
}

// ---- tier transitions ----------------------------------------------------

void FleetEngine::admit_(u32 si, std::unique_ptr<Engine> engine) {
  Slot& s = slots_[si];
  s.engine = std::move(engine);
  s.set_tier(Tier::Warm);
  s.pending = graph::Instance{};
  s.nodes = s.engine->size();
  s.bytes = s.engine->footprint_bytes();
  warm_bytes_ += s.bytes;
  warm_count_.fetch_add(1, std::memory_order_relaxed);
  lru_push_front_(si);
}

void FleetEngine::materialize_batch_(std::span<const u32> slot_idx,
                                     std::vector<graph::Instance>&& insts) {
  prof::Scope scope("fleet/cold_batch");
  const bool seedable = cfg_.engine == "incremental" || cfg_.engine == "batch";
  if (seedable && !insts.empty()) {
    // One batched solve primes every engine; the consumer runs on solver
    // worker threads, so it may only touch index-disjoint state (built[i],
    // insts[i]) and the thread-safe arena.
    std::vector<std::unique_ptr<Engine>> built(insts.size());
    const bool incremental = cfg_.engine == "incremental";
    solver_.solve_batch(
        insts, [&](std::size_t i, core::Result&& r, const core::SolveWorkspace& ws) {
          if (incremental) {
            built[i] = std::make_unique<IncrementalEngine>(inc::IncrementalSolver(
                std::move(insts[i]), r, ws, cfg_.options, instance_ctx_(), cfg_.repair));
          } else {
            built[i] = std::make_unique<BatchEngine>(std::move(insts[i]), std::move(r),
                                                     cfg_.options, instance_ctx_());
          }
        });
    ++stats_.cold_batches;
    stats_.batched_cold_instances += insts.size();
    for (std::size_t i = 0; i < slot_idx.size(); ++i) admit_(slot_idx[i], std::move(built[i]));
  } else {
    for (std::size_t i = 0; i < slot_idx.size(); ++i) {
      admit_(slot_idx[i],
             engines().make(cfg_.engine, std::move(insts[i]), cfg_.options, instance_ctx_()));
    }
  }
}

void FleetEngine::fault_in_(u32 si) {
  prof::Scope scope("fleet/fault_in");
  Slot& s = slots_[si];
  const auto restore = [&](std::istream& is) -> std::unique_ptr<Engine> {
    unsigned char magic[8];
    util::BinaryReader r(is, "fleet::fault_in");
    r.get_bytes(magic, 8, "magic");
    if (std::memcmp(magic, kColdImageMagic, 8) == 0) {
      if (cfg_.engine != "batch") {
        throw std::runtime_error("fleet::fault_in: instance " + std::to_string(s.id) +
                                 " cold image is a batch image but the fleet runs '" +
                                 cfg_.engine + "'");
      }
      const u64 epoch = r.get_u64("epoch");
      graph::Instance inst = util::load_instance(is);
      return std::make_unique<BatchEngine>(std::move(inst), epoch, cfg_.options,
                                           instance_ctx_());
    }
    is.clear();
    is.seekg(0);
    LoadedEngine loaded = load_engine_checkpoint(is, cfg_.options, instance_ctx_());
    if (loaded.kind != cfg_.engine) {
      throw std::runtime_error("fleet::fault_in: instance " + std::to_string(s.id) +
                               " checkpoint kind '" + std::string(loaded.kind) +
                               "' does not match the fleet engine '" + cfg_.engine + "'");
    }
    return std::move(loaded.engine);
  };

  std::unique_ptr<Engine> engine;
  if (!s.cold_image.empty()) {
    std::istringstream is(std::move(s.cold_image));
    engine = restore(is);
    s.cold_image.clear();
  } else if (s.on_disk) {
    std::ifstream is(spill_path_(s.id), std::ios::binary);
    if (!is) {
      throw std::runtime_error("fleet::fault_in: cannot open spill file '" +
                               spill_path_(s.id) + "'");
    }
    engine = restore(is);
  } else {
    throw std::runtime_error("fleet::fault_in: instance " + std::to_string(s.id) +
                             " has no cold image");
  }
  --cold_count_;
  ++stats_.faults;
  admit_(si, std::move(engine));
}

void FleetEngine::wake_(u32 si) {
  Slot& s = slots_[si];
  if (s.tier_now() == Tier::Warm) return;
  if (s.tier_now() == Tier::Cold) {
    fault_in_(si);
    return;
  }
  const u32 idx[1] = {si};
  std::vector<graph::Instance> insts;
  insts.push_back(std::move(s.pending));
  materialize_batch_(idx, std::move(insts));
}

void FleetEngine::evict_slot_(u32 si) {
  prof::Scope scope("fleet/evict");
  Slot& s = slots_[si];
  s.epoch = s.engine->epoch();
  const auto serialize = [&](std::ostream& os) {
    if (s.engine->checkpointable()) {
      s.engine->save_checkpoint(os);
      return;
    }
    os.write(reinterpret_cast<const char*>(kColdImageMagic), 8);
    util::BinaryWriter w(os);
    w.put_u64(s.epoch);
    util::save_instance_binary(os, s.engine->instance());
  };
  if (!cfg_.spill_dir.empty()) {
    util::atomic_write_file(spill_path_(s.id), serialize, cfg_.durable_spill);
    s.on_disk = true;
    s.cold_image.clear();
  } else {
    std::ostringstream os;
    serialize(os);
    s.cold_image = std::move(os).str();
  }
  s.engine.reset();
  s.set_tier(Tier::Cold);
  lru_unlink_(si);
  warm_count_.fetch_sub(1, std::memory_order_relaxed);
  warm_bytes_ -= s.bytes;
  s.bytes = 0;
  ++cold_count_;
  ++stats_.evictions;
}

void FleetEngine::touch_after_op_(u32 si) {
  Slot& s = slots_[si];
  warm_bytes_ -= s.bytes;
  s.bytes = s.engine->footprint_bytes();
  warm_bytes_ += s.bytes;
  lru_touch_(si);
}

void FleetEngine::enforce_limits_(u32 pinned) {
  const auto over = [&]() noexcept {
    return (cfg_.warm_limit != 0 &&
            warm_count_.load(std::memory_order_relaxed) > cfg_.warm_limit) ||
           (cfg_.warm_bytes_limit != 0 && warm_bytes_ > cfg_.warm_bytes_limit);
  };
  while (over()) {
    const u32 victim = lru_tail_;
    if (victim == kNil) break;
    if (victim == pinned) {
      // The pinned slot can only be the tail when it is the sole warm slot —
      // its footprint alone busts the byte cap.  It cannot be dropped now
      // (the caller may hold a view into its engine), so count it and leave
      // it for the next operation's sweep to reclaim.
      ++stats_.oversized_rejects;
      break;
    }
    evict_slot_(victim);
  }
}

std::string FleetEngine::spill_path_(InstanceId id) const {
  return cfg_.spill_dir + "/i" + std::to_string(id) + ".ckpt";
}

// ---- per-lane metrics scratch --------------------------------------------

void FleetEngine::bind_lane_metrics_(int width) {
  while (lane_metrics_.size() < static_cast<std::size_t>(width)) {
    lane_metrics_.push_back(std::make_unique<pram::Metrics>());
  }
  for (int l = 0; l < width; ++l) lane_metrics_[static_cast<std::size_t>(l)]->reset();
}

void FleetEngine::merge_lane_metrics_(int width, pram::Metrics& into) noexcept {
  for (int l = 0; l < width; ++l) {
    into.add(lane_metrics_[static_cast<std::size_t>(l)]->snapshot());
  }
}

// ---- operations ----------------------------------------------------------

u64 FleetEngine::apply(InstanceId id, std::span<const inc::Edit> edits) {
  prof::Scope scope("fleet/route");
  const u32 si = ensure_slot_(id);
  ++stats_.routes;
  wake_(si);
  Slot& s = slots_[si];
  s.engine->apply(edits);
  stats_.edits += edits.size();
  touch_after_op_(si);
  const u64 epoch = s.engine->epoch();
  enforce_limits_(si);
  return epoch;
}

void FleetEngine::apply_batch(std::span<const InstanceEdit> batch) {
  struct Group {
    u32 slot = kNil;
    std::vector<inc::Edit> edits;
  };
  std::vector<Group> groups;
  {
    prof::Scope scope("fleet/route");
    std::unordered_map<InstanceId, std::size_t> index;
    index.reserve(batch.size());
    for (const InstanceEdit& ie : batch) {
      const auto [it, fresh] = index.try_emplace(ie.id, groups.size());
      if (fresh) {
        groups.push_back({ensure_slot_(ie.id), {}});
      }
      groups[it->second].edits.push_back(ie.edit);
    }
    stats_.routes += batch.size();
  }

  // Fault in cold members and gather the never-solved ones for one batched
  // cold-start solve — caller-lane work, before any fan.
  std::vector<u32> unborn;
  std::vector<graph::Instance> unborn_insts;
  for (const Group& g : groups) {
    Slot& s = slots_[g.slot];
    if (s.tier_now() == Tier::Cold) {
      fault_in_(g.slot);
    } else if (s.tier_now() == Tier::Unborn) {
      unborn.push_back(g.slot);
      unborn_insts.push_back(std::move(s.pending));
    }
  }
  if (!unborn.empty()) materialize_batch_(unborn, std::move(unborn_insts));

  pram::WorkerPool* pool = cfg_.ctx.pool;
  const bool fan = pool != nullptr && pool->width() > 1 && groups.size() > 1 &&
                   !pram::WorkerPool::on_worker() && !pram::in_pool_inline();
  if (!fan) {
    for (const Group& g : groups) {
      Slot& s = slots_[g.slot];
      s.engine->apply(g.edits);
      stats_.edits += g.edits.size();
      touch_after_op_(g.slot);
    }
    enforce_limits_(kNil);
    return;
  }

  // Warm fan: each distinct instance's bucket repairs on pool lane
  // `slot % width` (same-slot batches revisit the worker whose cache holds
  // that engine), one epoch barrier closes the batch.  Workers pin nested
  // rounds to one PRAM processor, so per-instance results and charges are
  // identical to the serial path above; no extra round is charged for the
  // fan itself, keeping charge parity with a threads=1 session.  Engines
  // charge a per-lane sink during the fan (rebinding is a caller-side
  // pointer store before submit / after the barrier); lane sinks merge into
  // the session sink afterwards, so totals match the serial path exactly.
  const int width = pool->width();
  pram::Metrics* session = cfg_.ctx.metrics;
  if (session != nullptr) bind_lane_metrics_(width);
  auto repair_one = [&](std::size_t gi) {
    const Group& g = groups[gi];
    slots_[g.slot].engine->apply(g.edits);
  };
  {
    prof::Scope scope("fleet/warm_fan");
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const Group& g = groups[gi];
      if (session != nullptr) {
        slots_[g.slot].engine->set_metrics(
            lane_metrics_[static_cast<std::size_t>(pool->lane_of(g.slot))].get());
      }
      pool->submit(g.slot, repair_one, gi);
    }
  }
  std::exception_ptr fan_error;
  {
    prof::Scope scope("fleet/epoch_wait");
    try {
      pool->wait();
    } catch (...) {
      fan_error = std::current_exception();
    }
  }
  if (session != nullptr) merge_lane_metrics_(width, *session);
  // Post-barrier accounting stays on the caller lane, in group order — the
  // final LRU order matches the serial path.  On a task error the sweep
  // still runs (footprints of the groups that did repair must stay
  // accounted) before the first error rethrows.
  for (const Group& g : groups) {
    Slot& s = slots_[g.slot];
    if (session != nullptr) s.engine->set_metrics(session);
    stats_.edits += g.edits.size();
    touch_after_op_(g.slot);
  }
  enforce_limits_(kNil);
  if (fan_error) std::rethrow_exception(fan_error);
}

core::PartitionView FleetEngine::view(InstanceId id) {
  const u32 si = ensure_slot_(id);
  {
    prof::Scope scope("fleet/route");
    ++stats_.routes;
  }
  wake_(si);
  Slot& s = slots_[si];
  core::PartitionView v = s.engine->view();
  ++stats_.views;
  touch_after_op_(si);
  enforce_limits_(si);
  return v;
}

u64 FleetEngine::epoch(InstanceId id) {
  const u32 si = find_(id);
  if (si == kNil) return 0;
  Slot& s = slots_[si];
  switch (s.tier_now()) {
    case Tier::Warm:
      return s.engine->epoch();
    case Tier::Unborn:
      return 0;
    case Tier::Cold:
      if (s.epoch != kEpochUnknown) return s.epoch;
      // Adopted spill file: the epoch lives inside the image — fault in.
      fault_in_(si);
      break;
  }
  const u64 epoch = s.engine->epoch();
  enforce_limits_(si);
  return epoch;
}

std::size_t FleetEngine::instance_size(InstanceId id) {
  const u32 si = ensure_slot_(id);
  Slot& s = slots_[si];
  if (s.nodes == 0 && s.tier_now() == Tier::Cold) {
    fault_in_(si);
    enforce_limits_(si);
  }
  return s.nodes;
}

bool FleetEngine::evict(InstanceId id) {
  const u32 si = find_(id);
  if (si == kNil || slots_[si].tier_now() != Tier::Warm) return false;
  evict_slot_(si);
  return true;
}

void FleetEngine::install_pool(pram::WorkerPool* pool) {
  cfg_.ctx.pool = pool;           // future materializations copy instance_ctx_()
  solver_.context().pool = pool;  // cold-batch floods fan on the pool
  const std::size_t n = slots_.size();
  for (std::size_t si = 0; si < n; ++si) {
    Slot& s = slots_[static_cast<u32>(si)];
    if (s.engine) s.engine->install_pool(pool);
  }
}

FleetStats FleetEngine::stats() const {
  FleetStats s = stats_;
  s.instances = slots_.size();
  s.warm = warm_count_.load(std::memory_order_relaxed);
  s.cold = cold_count_;
  s.warm_bytes = warm_bytes_;
  if (cfg_.use_arena) {
    const SlabArena::Stats a = arena_.stats();
    s.arena_bytes = a.live_bytes + a.pooled_bytes;
    s.arena_blocks = a.live_blocks;
  }
  return s;
}

}  // namespace sfcp::fleet
