#pragma once
// Rooted forests hanging off the cycles of a pseudo-forest (Section 4).
//
// Every cycle node is the root of the tree formed by its non-cycle
// predecessors; tree edges point child -> parent = f(child).  This module
// builds children lists (deterministically: siblings in ascending id order)
// and computes levels, owning roots and root-path prefix sums with three
// interchangeable strategies (sequential BFS, Euler tour + segmented scan,
// ancestor pointer doubling).

#include <span>
#include <vector>

#include "pram/types.hpp"
#include "prim/list_ranking.hpp"

namespace sfcp::graph {

struct RootedForest {
  std::vector<u32> parent;     ///< f (parent of a root is its cycle successor)
  std::vector<u8> is_root;     ///< on_cycle flags
  std::vector<u32> child_off;  ///< CSR offsets into child (size n+1)
  std::vector<u32> child;      ///< tree children, siblings ascending
  std::vector<u32> sibling_index;  ///< position of a tree node among its siblings
  std::vector<u32> roots;          ///< all root nodes, ascending

  std::size_t size() const { return parent.size(); }
  u32 degree(u32 v) const { return child_off[v + 1] - child_off[v]; }
};

RootedForest build_rooted_forest(std::span<const u32> f, std::span<const u8> on_cycle);

enum class ForestStrategy { Sequential, EulerTour, AncestorDoubling };

struct ForestLevels {
  std::vector<u32> level;    ///< 0 for roots
  std::vector<u32> root_of;  ///< owning root (roots map to themselves)
};

ForestLevels forest_levels(const RootedForest& forest, ForestStrategy strategy);

/// sums[x] = sum of vals over the path root(x) .. x (inclusive of both).
std::vector<i64> root_path_sums(const RootedForest& forest, std::span<const i64> vals,
                                ForestStrategy strategy);

}  // namespace sfcp::graph
