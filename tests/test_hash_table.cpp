// Unit tests for the concurrent insert-or-get table (BB-table emulation).
#include <gtest/gtest.h>

#include <omp.h>

#include <set>
#include <unordered_map>

#include "prim/hash_table.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(HashTable, InsertThenFind) {
  prim::ConcurrentPairMap table(16);
  EXPECT_EQ(table.insert_or_get(100, 1), 1u);
  EXPECT_EQ(table.find(100), 1u);
  EXPECT_EQ(table.find(101), kNone);
}

TEST(HashTable, FirstWriterWins) {
  prim::ConcurrentPairMap table(16);
  EXPECT_EQ(table.insert_or_get(5, 10), 10u);
  EXPECT_EQ(table.insert_or_get(5, 20), 10u);  // existing value returned
}

TEST(HashTable, CapacityIsPowerOfTwoAndRoomy) {
  prim::ConcurrentPairMap table(100);
  EXPECT_GE(table.capacity(), 200u);
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
}

TEST(HashTable, ManyDistinctKeys) {
  const std::size_t n = 50000;
  prim::ConcurrentPairMap table(n);
  util::Rng rng(41);
  std::unordered_map<u64, u32> ref;
  for (u32 i = 0; i < n; ++i) {
    const u64 key = rng.below(n / 2);  // ~50% duplicates
    const u32 got = table.insert_or_get(key, i);
    const auto [it, inserted] = ref.emplace(key, got);
    EXPECT_EQ(it->second, got);
  }
  for (const auto& [key, val] : ref) EXPECT_EQ(table.find(key), val);
}

TEST(HashTable, ClearResets) {
  prim::ConcurrentPairMap table(8);
  table.insert_or_get(1, 2);
  table.clear();
  EXPECT_EQ(table.find(1), kNone);
}

TEST(HashTable, ConcurrentInsertConsistency) {
  // All threads race on the same small key set; afterwards every key must
  // have exactly one value, and each returned value must match the final
  // table state (linearizability of insert-or-get).
  const int n_keys = 64;
  const std::size_t per_thread = 20000;
  prim::ConcurrentPairMap table(1 << 12);
  std::vector<std::vector<std::pair<u64, u32>>> observed(
      static_cast<std::size_t>(omp_get_max_threads()) + 4);
#pragma omp parallel num_threads(4)
  {
    const int tid = omp_get_thread_num();
    util::Rng rng(1000 + tid);
    auto& obs = observed[tid];
    for (std::size_t i = 0; i < per_thread; ++i) {
      const u64 key = rng.below(n_keys);
      const u32 val = static_cast<u32>(tid * per_thread + i + 1);
      obs.emplace_back(key, table.insert_or_get(key, val));
    }
  }
  for (const auto& obs : observed) {
    for (const auto& [key, val] : obs) {
      EXPECT_EQ(table.find(key), val) << "key " << key;
    }
  }
}

}  // namespace
}  // namespace sfcp
