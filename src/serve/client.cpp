#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sfcp::serve {
namespace {

[[noreturn]] void fail_sys(const char* what) {
  throw std::runtime_error("serve::Client: " + std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::Client(int fd) : fd_(fd) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      in_(std::move(other.in_)),
      notifications_(std::move(other.notifications_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    in_ = std::move(other.in_);
    notifications_ = std::move(other.notifications_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client Client::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_sys("socket");

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve::Client: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail_sys("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Client c(fd);
  // Handshake: send our magic; the peer's is verified by the FrameSplitter
  // as soon as bytes arrive (the first next() call demands it).
  std::string hello;
  append_magic(hello);
  c.send_raw_(hello.data(), hello.size());
  return c;
}

// ---- IO ------------------------------------------------------------------

void Client::send_raw_(const char* data, std::size_t len) {
  if (fd_ < 0) throw std::runtime_error("serve::Client: not connected");
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd_, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_sys("write");
    }
    off += static_cast<std::size_t>(n);
  }
}

void Client::send_frame_(FrameType type, std::string_view payload) {
  std::string buf;
  append_frame(buf, type, payload);
  send_raw_(buf.data(), buf.size());
}

bool Client::fill_(int timeout_ms) {
  if (fd_ < 0) throw std::runtime_error("serve::Client: not connected");
  if (timeout_ms >= 0) {
    struct pollfd pfd {fd_, POLLIN, 0};
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) fail_sys("poll");
    if (n == 0) return false;
  }
  char buf[65536];
  ssize_t n;
  do {
    n = ::read(fd_, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_sys("read");
  if (n == 0) throw std::runtime_error("serve::Client: server closed the connection");
  in_.feed(buf, static_cast<std::size_t>(n));
  return true;
}

Frame Client::await_response_(FrameType expected) {
  for (;;) {
    std::optional<Frame> f = in_.next();
    if (!f) {
      fill_(-1);
      continue;
    }
    if (f->type == FrameType::kNotify) {
      notifications_.push_back(decode_notify(f->payload));
      continue;
    }
    if (f->type == FrameType::kError) {
      throw std::runtime_error("serve::Client: server error: " + decode_error(f->payload));
    }
    if (f->type != expected) {
      throw std::runtime_error("serve::Client: expected " +
                               std::string(frame_type_name(expected)) + " frame, got " +
                               std::string(frame_type_name(f->type)));
    }
    return std::move(*f);
  }
}

// ---- requests ------------------------------------------------------------

void Client::send_edits(std::span<const inc::Edit> edits) {
  send_frame_(FrameType::kEdit, encode_edit_request(edits));
}

u64 Client::await_edited() {
  const Frame f = await_response_(FrameType::kEdited);
  PayloadReader r(f.payload);
  const u64 epoch = r.get_u64("edited epoch");
  (void)r.get_u32("edited count");
  r.expect_end("Edited frame");
  return epoch;
}

u64 Client::apply(std::span<const inc::Edit> edits) {
  send_edits(edits);
  return await_edited();
}

void Client::send_fleet_edits(u64 instance, std::span<const inc::Edit> edits) {
  send_frame_(FrameType::kFleetEdit, encode_fleet_edit_request(instance, edits));
}

u64 Client::fleet_apply(u64 instance, std::span<const inc::Edit> edits) {
  send_fleet_edits(instance, edits);
  return await_edited();
}

Client::ViewInfo Client::fleet_view(u64 instance) {
  send_frame_(FrameType::kFleetView, encode_fleet_view_request(instance));
  const Frame f = await_response_(FrameType::kViewInfo);
  PayloadReader r(f.payload);
  ViewInfo v;
  v.epoch = r.get_u64("view epoch");
  v.n = r.get_u32("view n");
  v.num_classes = r.get_u32("view num_classes");
  r.expect_end("ViewInfo frame");
  return v;
}

Client::ViewInfo Client::view() {
  send_frame_(FrameType::kView, {});
  const Frame f = await_response_(FrameType::kViewInfo);
  PayloadReader r(f.payload);
  ViewInfo v;
  v.epoch = r.get_u64("view epoch");
  v.n = r.get_u32("view n");
  v.num_classes = r.get_u32("view num_classes");
  r.expect_end("ViewInfo frame");
  return v;
}

u32 Client::class_of(u32 node) {
  PayloadWriter w;
  w.put_u32(node);
  send_frame_(FrameType::kClassOf, w.str());
  const Frame f = await_response_(FrameType::kClass);
  PayloadReader r(f.payload);
  (void)r.get_u64("class epoch");
  const u32 cls = r.get_u32("class id");
  r.expect_end("Class frame");
  return cls;
}

std::vector<u32> Client::members(u32 cls) {
  PayloadWriter w;
  w.put_u32(cls);
  send_frame_(FrameType::kMembers, w.str());
  const Frame f = await_response_(FrameType::kMembersData);
  PayloadReader r(f.payload);
  (void)r.get_u64("members epoch");
  const u32 count = r.get_u32("members count");
  std::vector<u32> out;
  out.reserve(count);
  for (u32 i = 0; i < count; ++i) out.push_back(r.get_u32("member node"));
  r.expect_end("MembersData frame");
  return out;
}

Client::Labels Client::labels() {
  send_frame_(FrameType::kLabels, {});
  const Frame f = await_response_(FrameType::kLabelsData);
  PayloadReader r(f.payload);
  Labels out;
  out.epoch = r.get_u64("labels epoch");
  out.num_classes = r.get_u32("labels num_classes");
  const u32 n = r.get_u32("labels n");
  out.labels.reserve(n);
  for (u32 i = 0; i < n; ++i) out.labels.push_back(r.get_u32("label"));
  r.expect_end("LabelsData frame");
  return out;
}

std::vector<std::pair<std::string, u64>> Client::stats() { return stats_full().counters; }

Client::Stats Client::stats_full() {
  send_frame_(FrameType::kStats, {});
  const Frame f = await_response_(FrameType::kStatsData);
  PayloadReader r(f.payload);
  const u32 count = r.get_u32("stats count");
  Stats out;
  out.counters.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const u8 klen = r.get_u8("stats key length");
    std::string key(r.get_bytes(klen, "stats key"));
    const u64 value = r.get_u64("stats value");
    out.counters.emplace_back(std::move(key), value);
  }
  out.profile = decode_profile_section(r);  // old-format payload: empty tree
  r.expect_end("StatsData frame");
  return out;
}

u64 Client::checkpoint(const std::string& path) {
  PayloadWriter w;
  w.put_u32(static_cast<u32>(path.size()));
  w.put_bytes(path.data(), path.size());
  send_frame_(FrameType::kCheckpoint, w.str());
  const Frame f = await_response_(FrameType::kOk);
  PayloadReader r(f.payload);
  const u64 epoch = r.get_u64("ok epoch");
  r.expect_end("Ok frame");
  return epoch;
}

u64 Client::subscribe() {
  send_frame_(FrameType::kSubscribe, {});
  const Frame f = await_response_(FrameType::kOk);
  PayloadReader r(f.payload);
  const u64 epoch = r.get_u64("ok epoch");
  r.expect_end("Ok frame");
  return epoch;
}

std::optional<Notification> Client::next_notification(int timeout_ms) {
  for (;;) {
    // Drain buffered frames first — a Notify may already be queued behind
    // previously received bytes.
    std::optional<Frame> f;
    while ((f = in_.next())) {
      if (f->type == FrameType::kNotify) {
        notifications_.push_back(decode_notify(f->payload));
      } else if (f->type == FrameType::kError) {
        throw std::runtime_error("serve::Client: server error: " +
                                 decode_error(f->payload));
      } else {
        throw std::runtime_error("serve::Client: unexpected " +
                                 std::string(frame_type_name(f->type)) +
                                 " frame while waiting for Notify");
      }
    }
    if (!notifications_.empty()) {
      Notification n = std::move(notifications_.front());
      notifications_.pop_front();
      return n;
    }
    if (!fill_(timeout_ms)) return std::nullopt;
  }
}

}  // namespace sfcp::serve
