// Unit tests for the work/round accounting substrate.
#include <gtest/gtest.h>

#include <atomic>

#include "pram/config.hpp"
#include "pram/crcw.hpp"
#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "pram/types.hpp"

namespace sfcp {
namespace {

TEST(Metrics, NoSinkIsNoop) {
  EXPECT_EQ(pram::current_metrics(), nullptr);
  pram::charge(100);  // must not crash
}

TEST(Metrics, ChargeAccumulates) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::charge(10);
  pram::charge(5);
  EXPECT_EQ(m.ops(), 15u);
}

TEST(Metrics, RoundsCounted) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::charge_round(100);
  pram::charge_round(50);
  EXPECT_EQ(m.round_count(), 2u);
  EXPECT_EQ(m.ops(), 150u);
}

TEST(Metrics, ScopedRestoresPrevious) {
  pram::Metrics outer, inner;
  pram::ScopedMetrics g1(outer);
  {
    pram::ScopedMetrics g2(inner);
    pram::charge(7);
  }
  pram::charge(3);
  EXPECT_EQ(inner.ops(), 7u);
  EXPECT_EQ(outer.ops(), 3u);
}

TEST(Metrics, ParallelForCharges) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::parallel_for(0, 1000, [](std::size_t) {});
  EXPECT_EQ(m.ops(), 1000u);
  EXPECT_EQ(m.round_count(), 1u);
}

TEST(Metrics, SortOpsTrackedSeparately) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::charge_sort(42);
  pram::charge(8);
  EXPECT_EQ(m.ops(), 50u);
  EXPECT_EQ(m.sort_ops.load(), 42u);
}

TEST(Metrics, ResetClearsAll) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::charge_round(9);
  pram::charge_crcw(2);
  m.reset();
  EXPECT_EQ(m.ops(), 0u);
  EXPECT_EQ(m.round_count(), 0u);
  EXPECT_EQ(m.crcw_writes.load(), 0u);
}

TEST(Metrics, SummaryContainsCounts) {
  pram::Metrics m;
  pram::ScopedMetrics guard(m);
  pram::charge_round(5);
  const std::string s = m.summary();
  EXPECT_NE(s.find("ops=5"), std::string::npos);
  EXPECT_NE(s.find("rounds=1"), std::string::npos);
}

TEST(Crcw, ArbitraryWriteFirstWins) {
  std::atomic<u32> cell{pram::kEmptyCell<u32>};
  EXPECT_EQ(pram::arbitrary_write(cell, 5u), 5u);
  EXPECT_EQ(pram::arbitrary_write(cell, 9u), 5u);
}

TEST(Crcw, MinWriteConverges) {
  std::atomic<u32> cell{100};
  pram::min_write(cell, 50u);
  pram::min_write(cell, 70u);
  EXPECT_EQ(cell.load(), 50u);
}

TEST(Config, ScopedThreadsRestores) {
  const int before = pram::threads();
  {
    pram::ScopedThreads t(3);
    EXPECT_EQ(pram::threads(), 3);
  }
  EXPECT_EQ(pram::threads(), before);
}

TEST(Config, ScopedGrainRestores) {
  const std::size_t before = pram::grain();
  {
    pram::ScopedGrain g(17);
    EXPECT_EQ(pram::grain(), 17u);
  }
  EXPECT_EQ(pram::grain(), before);
}

TEST(Config, BlockRangesCoverExactly) {
  for (const std::size_t n : {1u, 10u, 1000u, 4097u}) {
    const int nb = 7;
    std::size_t covered = 0;
    for (int b = 0; b < nb; ++b) {
      const auto [lo, hi] = pram::block_range(n, nb, b);
      covered += hi - lo;
    }
    EXPECT_EQ(covered, n);
  }
}

}  // namespace
}  // namespace sfcp
