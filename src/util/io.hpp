#pragma once
// (De)serialization of SFCP instances, solutions and edit streams, so
// examples and external tools can exchange workloads.
//
// Text instance format (`sfcp-instance v1`):
//
//   sfcp-instance v1
//   n
//   f[0] f[1] ... f[n-1]
//   b[0] b[1] ... b[n-1]
//
// Binary instance format (`sfcp-instance v2`) — the cheap one for large
// bench workloads:
//
//   8-byte magic 7F 's' 'f' 'c' 'p' 'v' '2' 0A, then n and both arrays as
//   little-endian u32 (f first, then b).
//
// load_instance autodetects the format from the first byte.
//
// Edit-stream format (`sfcp-edits v1`):
//
//   sfcp-edits v1
//   m
//   f x y     (set f[x] <- y)
//   b x v     (set b[x] <- v)

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/functional_graph.hpp"
#include "inc/edit.hpp"
#include "pram/types.hpp"

namespace sfcp::util {

enum class InstanceFormat {
  Text,    ///< sfcp-instance v1
  Binary,  ///< sfcp-instance v2
};

void save_instance(std::ostream& os, const graph::Instance& inst);
void save_instance_binary(std::ostream& os, const graph::Instance& inst);

/// Loads either format (autodetected).  Throws std::runtime_error on
/// malformed or truncated input, std::invalid_argument when the decoded
/// instance fails graph::validate (e.g. out-of-range f values).
graph::Instance load_instance(std::istream& is);

void save_instance_file(const std::string& path, const graph::Instance& inst,
                        InstanceFormat format = InstanceFormat::Text);
graph::Instance load_instance_file(const std::string& path);

// ---- edit streams --------------------------------------------------------

void save_edits(std::ostream& os, std::span<const inc::Edit> edits);

/// Throws std::runtime_error on malformed input.  Node/target ranges are NOT
/// checked here (they depend on the instance the stream is applied to);
/// inc::IncrementalSolver validates on apply.
std::vector<inc::Edit> load_edits(std::istream& is);

void save_edits_file(const std::string& path, std::span<const inc::Edit> edits);
std::vector<inc::Edit> load_edits_file(const std::string& path);

}  // namespace sfcp::util
