#pragma once
// Runtime configuration for the PRAM-style execution substrate.
//
// The paper's algorithms are stated for an arbitrary CRCW PRAM with up to n
// processors.  We realize each PRAM round as an OpenMP parallel loop
// (Brent's scheduling): `threads()` plays the role of p, and `grain()`
// bounds the smallest chunk a thread will take so that tiny inputs do not
// pay fork/join overhead.
//
// Both knobs resolve through the thread-installed ExecutionContext first
// (see pram/execution_context.hpp); the process-wide values below are the
// backwards-compatible default context used when none is installed.

#include <algorithm>
#include <cstddef>

#include <omp.h>

#include "pram/execution_context.hpp"

namespace sfcp::pram {

/// Process-wide default worker thread count (default: OpenMP's).
inline int& thread_count_ref() noexcept {
  static int count = omp_get_max_threads();
  return count;
}

inline int threads() noexcept {
  // A WorkerPool worker is ONE PRAM processor: nested loops on it run
  // serially (no oversubscription, and work/depth charging matches a
  // threads=1 session exactly — see worker_pool.hpp).  The same rule holds
  // while the coordinator runs a pool task inline (caller lane, ring-full
  // fallback): re-entering the pool from inside one of its own tasks would
  // re-drain queues a live wait() further up the stack is iterating.
  if (on_pool_worker() || in_pool_inline()) return 1;
  if (const ExecutionContext* c = current_context(); c && c->threads > 0) return c->threads;
  return std::max(1, thread_count_ref());
}

inline void set_threads(int t) noexcept { thread_count_ref() = std::max(1, t); }

/// Process-wide default minimum number of elements per parallel chunk; loops
/// below this run sequentially.
inline std::size_t& grain_ref() noexcept {
  static std::size_t g = 2048;
  return g;
}

inline std::size_t grain() noexcept {
  if (const ExecutionContext* c = current_context(); c && c->grain > 0) return c->grain;
  return grain_ref();
}

inline void set_grain(std::size_t g) noexcept { grain_ref() = std::max<std::size_t>(1, g); }

/// RAII override of the global thread count (used by tests and ablations).
class ScopedThreads {
 public:
  explicit ScopedThreads(int t) : saved_(threads()) { set_threads(t); }
  ~ScopedThreads() { set_threads(saved_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int saved_;
};

/// RAII override of the global grain size.
class ScopedGrain {
 public:
  explicit ScopedGrain(std::size_t g) : saved_(grain()) { set_grain(g); }
  ~ScopedGrain() { set_grain(saved_); }
  ScopedGrain(const ScopedGrain&) = delete;
  ScopedGrain& operator=(const ScopedGrain&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace sfcp::pram
