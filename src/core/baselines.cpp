#include "core/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"

namespace sfcp::core {

BaselineResult solve_naive_refinement(const graph::Instance& inst) {
  graph::validate(inst);
  const std::size_t n = inst.size();
  BaselineResult out;
  if (n == 0) return out;
  auto cur = prim::canonicalize_labels(inst.b);
  for (;;) {
    ++out.rounds;
    std::vector<u32> fq(n);
    pram::parallel_for(0, n, [&](std::size_t x) { fq[x] = cur.labels[inst.f[x]]; });
    auto next = prim::rename_pairs_sorted(cur.labels, fq);
    if (next.num_classes == cur.num_classes) {
      out.q = prim::canonicalize_labels(cur.labels).labels;
      out.num_blocks = cur.num_classes;
      return out;
    }
    cur.labels = std::move(next.labels);
    cur.num_classes = next.num_classes;
  }
}

BaselineResult solve_hopcroft(const graph::Instance& inst) {
  graph::validate(inst);
  const std::size_t n = inst.size();
  BaselineResult out;
  if (n == 0) return out;
  // Preimage CSR.
  std::vector<u32> pre_off(n + 2, 0);
  for (std::size_t x = 0; x < n; ++x) ++pre_off[inst.f[x] + 1];
  for (std::size_t v = 1; v <= n; ++v) pre_off[v] += pre_off[v - 1];
  std::vector<u32> pre(n);
  {
    std::vector<u32> cursor(pre_off.begin(), pre_off.end() - 1);
    for (u32 x = 0; x < n; ++x) pre[cursor[inst.f[x]]++] = x;
  }
  // Initial blocks from canonical B-labels.
  auto init = prim::canonicalize_labels(inst.b);
  std::vector<u32> block_of = std::move(init.labels);
  std::vector<std::vector<u32>> members(init.num_classes);
  for (u32 x = 0; x < n; ++x) members[block_of[x]].push_back(x);
  std::deque<u32> worklist;
  std::vector<u8> in_worklist(members.size(), 1);
  for (u32 b = 0; b < members.size(); ++b) worklist.push_back(b);

  std::vector<u32> marked_count;            // per touched block
  std::vector<u32> touched;                 // touched block ids
  std::vector<std::vector<u32>> marked_of;  // marked members per touched block
  marked_of.resize(members.size());
  marked_count.assign(members.size(), 0);
  std::vector<u8> flag(n, 0);  // scratch for splitting (reset after each use)
  u64 work = 0;

  while (!worklist.empty()) {
    const u32 splitter = worklist.front();
    worklist.pop_front();
    in_worklist[splitter] = 0;
    // X = f^{-1}(splitter members); mark X members per block.
    touched.clear();
    // Iterate over a snapshot: splitting never changes `splitter`'s member
    // list within this round because a block is split only via `touched`.
    for (const u32 v : members[splitter]) {
      for (u32 i = pre_off[v]; i < pre_off[v + 1]; ++i) {
        const u32 x = pre[i];
        const u32 b = block_of[x];
        if (marked_of[b].empty()) touched.push_back(b);
        marked_of[b].push_back(x);
        ++work;
      }
    }
    for (const u32 b : touched) {
      if (marked_of[b].size() == members[b].size()) {
        marked_of[b].clear();
        continue;  // whole block maps into splitter: no split
      }
      // Split block b into marked / unmarked.
      const u32 nb = static_cast<u32>(members.size());
      std::vector<u32> marked = std::move(marked_of[b]);
      marked_of[b].clear();
      std::vector<u32> unmarked;
      unmarked.reserve(members[b].size() - marked.size());
      for (const u32 x : marked) flag[x] = 1;
      for (const u32 x : members[b]) {
        if (!flag[x]) unmarked.push_back(x);
      }
      for (const u32 x : marked) flag[x] = 0;
      // Smaller half becomes the new block (Hopcroft's trick).
      std::vector<u32>* small = marked.size() <= unmarked.size() ? &marked : &unmarked;
      std::vector<u32>* large = marked.size() <= unmarked.size() ? &unmarked : &marked;
      members[b] = std::move(*large);
      members.push_back(std::move(*small));
      marked_of.emplace_back();
      in_worklist.push_back(0);
      for (const u32 x : members[nb]) block_of[x] = nb;
      if (in_worklist[b]) {
        worklist.push_back(nb);
        in_worklist[nb] = 1;
      } else {
        // enqueue the smaller of the two halves
        const u32 smaller = members[nb].size() <= members[b].size() ? nb : b;
        worklist.push_back(smaller);
        in_worklist[smaller] = 1;
      }
      ++out.rounds;
    }
  }
  pram::charge(work);
  auto canon = prim::canonicalize_labels(block_of);
  out.q = std::move(canon.labels);
  out.num_blocks = canon.num_classes;
  return out;
}

BaselineResult solve_label_doubling(const graph::Instance& inst) {
  graph::validate(inst);
  const std::size_t n = inst.size();
  BaselineResult out;
  if (n == 0) return out;
  auto cur = prim::canonicalize_labels(inst.b);
  std::vector<u32> q = std::move(cur.labels);
  std::vector<u32> g(inst.f.begin(), inst.f.end());
  std::vector<u32> tmp(n);
  // After the round with jump g = f^s the labels encode the B-label window
  // of length 2s; Lemma 2.1(ii) needs length n+1.
  for (u64 s = 1; s <= n; s <<= 1) {
    ++out.rounds;
    std::vector<u32> right(n);
    pram::parallel_for(0, n, [&](std::size_t x) { right[x] = q[g[x]]; });
    auto renamed = prim::rename_pairs_sorted(q, right);
    q = std::move(renamed.labels);
    pram::parallel_for(0, n, [&](std::size_t x) { tmp[x] = g[g[x]]; });
    g.swap(tmp);
  }
  auto canon = prim::canonicalize_labels(q);
  out.q = std::move(canon.labels);
  out.num_blocks = canon.num_classes;
  return out;
}

}  // namespace sfcp::core
