// Unit tests for Section 4: tree node labelling (all strategy combinations
// against the refinement oracle).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::Options;
using core::solve;
using core::solve_naive_refinement;
using core::TreeLabelStrategy;
using graph::ForestStrategy;

Options with(TreeLabelStrategy ts, ForestStrategy fs) {
  Options o = Options::parallel();
  o.tree_labeling.strategy = ts;
  o.tree_labeling.forest = fs;
  return o;
}

const TreeLabelStrategy kTree[] = {TreeLabelStrategy::LevelSynchronous,
                                   TreeLabelStrategy::AncestorDoubling,
                                   TreeLabelStrategy::SequentialDFS};
const ForestStrategy kForest[] = {ForestStrategy::Sequential, ForestStrategy::EulerTour,
                                  ForestStrategy::AncestorDoubling};

TEST(TreeLabeling, KeptNodeCopiesCycleLabel) {
  // Self-loop 0 with b=7; tree node 1 -> 0 with b=7 matches the cycle label
  // string, so it must merge with node 0.
  graph::Instance inst{{0, 0}, {7, 7}};
  for (auto ts : kTree) {
    const auto r = solve(inst, with(ts, ForestStrategy::Sequential));
    EXPECT_EQ(r.q[0], r.q[1]) << static_cast<int>(ts);
    EXPECT_EQ(r.num_blocks, 1u);
  }
}

TEST(TreeLabeling, MismatchedNodeGetsFreshLabel) {
  graph::Instance inst{{0, 0}, {7, 8}};
  for (auto ts : kTree) {
    const auto r = solve(inst, with(ts, ForestStrategy::Sequential));
    EXPECT_NE(r.q[0], r.q[1]);
    EXPECT_EQ(r.num_blocks, 2u);
  }
}

TEST(TreeLabeling, DescendantOfMismatchNeverMerges) {
  // 2 -> 1 -> 0(self).  b: 0 and 2 match, 1 differs: node 2's path has a
  // mismatch, so 2 must NOT take the cycle label even though b[2] == b[0].
  graph::Instance inst{{0, 0, 1}, {7, 8, 7}};
  for (auto ts : kTree) {
    const auto r = solve(inst, with(ts, ForestStrategy::Sequential));
    EXPECT_NE(r.q[2], r.q[0]) << static_cast<int>(ts);
    EXPECT_EQ(r.num_blocks, 3u);
  }
}

TEST(TreeLabeling, WrapAroundCorrespondence) {
  // Cycle (0 1 2) with labels (1 2 3); a path of 5 nodes hangs off node 0.
  // Level l matches cycle node f^{3 - l mod 3}(0): exercises the mod-k wrap
  // in Lemma 4.1.
  graph::Instance inst;
  inst.f = {1, 2, 0, 0, 3, 4, 5, 6};
  //        b of cycle: 1,2,3 ; tree path must match b[f^{k-l}(r)]
  // level1 node (3): corresponding f^{2}(0)=2 -> b=3; level2 (4): f^{1}(0)=1 -> b=2;
  // level3 (5): f^{0}... = (3 - 3%3)%3 -> rank 0 -> b=1; level4 (6): b=3; level5 (7): b=2.
  inst.b = {1, 2, 3, 3, 2, 1, 3, 2};
  for (auto ts : kTree) {
    for (auto fs : kForest) {
      const auto r = solve(inst, with(ts, fs));
      // Whole path matches: everything merges with cycle labels.
      EXPECT_EQ(r.num_blocks, 3u) << static_cast<int>(ts) << "/" << static_cast<int>(fs);
      EXPECT_EQ(r.q[3], r.q[2]);
      EXPECT_EQ(r.q[4], r.q[1]);
      EXPECT_EQ(r.q[5], r.q[0]);
      EXPECT_EQ(r.q[6], r.q[2]);
      EXPECT_EQ(r.q[7], r.q[1]);
    }
  }
}

TEST(TreeLabeling, ResidualSiblingsWithEqualBMerge) {
  // Two residual children of the same cycle node with equal B-labels that
  // do NOT match the cycle: they must share one fresh label (Lemma 4.2).
  graph::Instance inst{{0, 0, 0}, {1, 9, 9}};
  for (auto ts : kTree) {
    const auto r = solve(inst, with(ts, ForestStrategy::Sequential));
    EXPECT_EQ(r.q[1], r.q[2]);
    EXPECT_NE(r.q[1], r.q[0]);
    EXPECT_EQ(r.num_blocks, 2u);
  }
}

TEST(TreeLabeling, ResidualCrossTreeMergeRequiresSameAnchor) {
  // Two separate self-loops with DIFFERENT cycle labels; each has a child
  // with b=9.  Children have equal path strings but different anchor
  // Q-labels -> must NOT merge (Lemma 4.2's second condition).
  graph::Instance inst{{0, 1, 0, 1}, {1, 2, 9, 9}};
  for (auto ts : kTree) {
    const auto r = solve(inst, with(ts, ForestStrategy::Sequential));
    EXPECT_NE(r.q[2], r.q[3]) << static_cast<int>(ts);
  }
  // ...and with EQUAL cycle labels they must merge.
  graph::Instance inst2{{0, 1, 0, 1}, {1, 1, 9, 9}};
  for (auto ts : kTree) {
    const auto r = solve(inst2, with(ts, ForestStrategy::Sequential));
    EXPECT_EQ(r.q[2], r.q[3]) << static_cast<int>(ts);
  }
}

TEST(TreeLabeling, DeepResidualChains) {
  util::Rng rng(1009);
  const auto inst = util::long_tail(5000, 7, 2, rng);
  const auto oracle = solve_naive_refinement(inst);
  for (auto ts : kTree) {
    for (auto fs : kForest) {
      const auto r = solve(inst, with(ts, fs));
      EXPECT_TRUE(core::same_partition(r.q, oracle.q))
          << static_cast<int>(ts) << "/" << static_cast<int>(fs);
    }
  }
}

class TreeLabelingSweep
    : public ::testing::TestWithParam<std::tuple<TreeLabelStrategy, ForestStrategy>> {};

TEST_P(TreeLabelingSweep, MatchesOracleOnRandomAndShapedInstances) {
  const auto [ts, fs] = GetParam();
  util::Rng rng(static_cast<u64>(static_cast<int>(ts)) * 97 + static_cast<int>(fs));
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(1 + rng.below(1200), 1 + rng.below_u32(4), rng);
    const auto r = solve(inst, with(ts, fs));
    const auto oracle = solve_naive_refinement(inst);
    EXPECT_EQ(r.num_blocks, oracle.num_blocks);
    EXPECT_TRUE(core::same_partition(r.q, oracle.q)) << "iter " << iter;
  }
  const auto shaped = util::mergeable(2000, 3, rng);
  const auto r = solve(shaped, with(ts, fs));
  EXPECT_TRUE(core::same_partition(r.q, solve_naive_refinement(shaped).q));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TreeLabelingSweep,
    ::testing::Combine(::testing::ValuesIn(kTree), ::testing::ValuesIn(kForest)));

}  // namespace
}  // namespace sfcp
