// Unit tests for minimal starting point algorithms (Section 3.1): Booth,
// Duval, brute force, and the paper's simple / efficient parallel
// algorithms, cross-validated on random and adversarial inputs.
#include <gtest/gtest.h>

#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::canonical_rotation;
using strings::minimal_starting_point;
using strings::msp_booth;
using strings::msp_brute;
using strings::msp_duval;
using strings::msp_efficient;
using strings::msp_simple;
using strings::MspStrategy;

TEST(Msp, SingleSymbol) {
  std::vector<u32> s{9};
  for (auto strat : {MspStrategy::Brute, MspStrategy::Booth, MspStrategy::Duval,
                     MspStrategy::Simple, MspStrategy::Efficient}) {
    EXPECT_EQ(minimal_starting_point(s, strat), 0u);
  }
}

TEST(Msp, AlreadyMinimal) {
  std::vector<u32> s{1, 2, 3};
  EXPECT_EQ(msp_booth(s), 0u);
  EXPECT_EQ(msp_simple(s), 0u);
  EXPECT_EQ(msp_efficient(s), 0u);
}

TEST(Msp, SimpleRotation) {
  std::vector<u32> s{3, 1, 2};  // minimal rotation starts at index 1
  EXPECT_EQ(msp_brute(s), 1u);
  EXPECT_EQ(msp_booth(s), 1u);
  EXPECT_EQ(msp_duval(s), 1u);
  EXPECT_EQ(msp_simple(s), 1u);
  EXPECT_EQ(msp_efficient(s), 1u);
}

TEST(Msp, PaperExample34) {
  // (3,2,1,3,2,3,4,3,1,2,3,4,2,1,1,1,3,2,2): the minimum is 1 and the
  // best run of 1s is "1,1,1" at index 13.
  const auto s = util::paper_example_3_4();
  const u32 ref = msp_brute(s);
  EXPECT_EQ(ref, 13u);
  EXPECT_EQ(msp_booth(s), ref);
  EXPECT_EQ(msp_duval(s), ref);
  EXPECT_EQ(msp_simple(s), ref);
  EXPECT_EQ(msp_efficient(s), ref);
}

TEST(Msp, RepeatingStringSmallestIndex) {
  std::vector<u32> s{2, 1, 2, 1};  // rotations at 1 and 3 are minimal
  EXPECT_EQ(minimal_starting_point(s, MspStrategy::Booth), 1u);
  EXPECT_EQ(minimal_starting_point(s, MspStrategy::Simple), 1u);
  EXPECT_EQ(minimal_starting_point(s, MspStrategy::Efficient), 1u);
  EXPECT_EQ(minimal_starting_point(s, MspStrategy::Brute), 1u);
}

TEST(Msp, AllEqualSymbols) {
  std::vector<u32> s(37, 4);
  for (auto strat : {MspStrategy::Booth, MspStrategy::Duval, MspStrategy::Simple,
                     MspStrategy::Efficient}) {
    EXPECT_EQ(minimal_starting_point(s, strat), 0u);
  }
}

TEST(Msp, TieThenDifference) {
  // Two candidate starts share a long prefix; only a late symbol decides.
  std::vector<u32> s{1, 1, 1, 2, 9, 1, 1, 1, 2, 8};
  const u32 ref = msp_brute(s);
  EXPECT_EQ(msp_booth(s), ref);
  EXPECT_EQ(msp_simple(s), ref);
  EXPECT_EQ(msp_efficient(s), ref);
}

class MspRandomSweep : public ::testing::TestWithParam<std::tuple<std::size_t, u32>> {};

TEST_P(MspRandomSweep, AllAlgorithmsAgreeWithBrute) {
  const auto [n, sigma] = GetParam();
  util::Rng rng(n * 1000 + sigma);
  for (int iter = 0; iter < 40; ++iter) {
    const auto s = util::random_string(n, sigma, rng);
    const u32 ref = msp_brute(s);
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Booth), ref) << "booth n=" << n;
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Duval), ref) << "duval n=" << n;
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Simple), ref) << "simple n=" << n;
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Efficient), ref) << "efficient n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MspRandomSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 16, 33, 64, 100),
                                            ::testing::Values(2u, 3u, 10u)));

TEST(Msp, RunsStringsAdversarial) {
  util::Rng rng(211);
  for (int iter = 0; iter < 60; ++iter) {
    const auto s = util::runs_string(80 + rng.below(100), 3, 12, rng);
    const u32 ref = msp_brute(s);
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Simple), ref);
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Efficient), ref);
  }
}

TEST(Msp, LargePrimitiveStringsAgree) {
  util::Rng rng(223);
  for (const std::size_t n : {1000u, 5000u, 20000u}) {
    const auto s = util::random_primitive_string(n, 4, rng);
    const u32 booth = msp_booth(s);
    EXPECT_EQ(msp_duval(s), booth);
    EXPECT_EQ(msp_simple(s), booth);
    EXPECT_EQ(msp_efficient(s), booth);
  }
}

TEST(Msp, BinaryAlphabetLongRuns) {
  util::Rng rng(227);
  for (int iter = 0; iter < 30; ++iter) {
    const auto s = util::runs_string(200, 2, 30, rng);
    const u32 ref = msp_brute(s);
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Efficient), ref) << "iter " << iter;
  }
}

TEST(CanonicalRotation, EqualForAllRotationsOfSameNecklace) {
  util::Rng rng(229);
  const auto s = util::random_primitive_string(257, 3, rng);
  const auto canon = canonical_rotation(s, MspStrategy::Efficient);
  for (const std::size_t shift : {1u, 13u, 100u, 256u}) {
    std::vector<u32> rotated(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) rotated[i] = s[(i + shift) % s.size()];
    EXPECT_EQ(canonical_rotation(rotated, MspStrategy::Booth), canon) << "shift " << shift;
  }
}

TEST(CanonicalRotation, DistinguishesDifferentNecklaces) {
  std::vector<u32> a{1, 2, 1, 3};
  std::vector<u32> b{1, 2, 3, 1};  // different necklace, same multiset
  EXPECT_NE(canonical_rotation(a), canonical_rotation(b));
}

TEST(Msp, EfficientRecursionDepthInputs) {
  // Sizes around powers of two and the n/log n recursion threshold.
  util::Rng rng(233);
  for (const std::size_t n : {63u, 64u, 65u, 127u, 129u, 255u, 511u, 1023u, 4095u}) {
    const auto s = util::random_string(n, 2, rng);
    EXPECT_EQ(minimal_starting_point(s, MspStrategy::Efficient),
              minimal_starting_point(s, MspStrategy::Booth))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace sfcp
