#pragma once
// List ranking: distance from every element of a linked list (given by a
// successor array) to the end of its list.
//
// The paper invokes the optimal O(log n)-time, O(n)-operation list ranking
// of Anderson & Miller [2] for arranging cycles contiguously and for the
// Euler-tour computations.  We provide three interchangeable strategies:
//   * Sequential    — walk each list (O(n) work, reference)
//   * PointerJumping — Wyllie's algorithm (O(log n) rounds, O(n log n) work)
//   * RulingSet     — random sparse ruling set: sample ~n/log n splitters,
//                     walk the gaps in parallel, rank the contracted list,
//                     expand (O(n) expected work)
// The ablation bench A2 compares them.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::prim {

enum class ListRankStrategy { Sequential, PointerJumping, RulingSet };

/// next[i] = successor of i, or kNone at list ends.  Multiple disjoint lists
/// may be present.  Returns rank[i] = number of links from i to its list end
/// (rank of an end node is 0).  Lists must be acyclic.
std::vector<u32> list_rank(std::span<const u32> next,
                           ListRankStrategy strategy = ListRankStrategy::RulingSet);

}  // namespace sfcp::prim
