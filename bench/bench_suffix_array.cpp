// Suffix-array construction and the m.s.p.-via-suffix-array baseline
// (Vishkin's suffix-tree observation, §3.1): O(n log n) operations,
// compared against the paper's efficient m.s.p. in table_e3_msp.
#include <benchmark/benchmark.h>

#include "strings/msp.hpp"
#include "strings/suffix_array.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

void BM_SuffixArrayBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u32 sigma = static_cast<u32>(state.range(1));
  util::Rng rng(n + sigma);
  const auto s = util::random_string(n, sigma, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::build_suffix_array(s));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(sigma == 2 ? "binary" : "large_sigma");
}
BENCHMARK(BM_SuffixArrayBuild)->ArgsProduct({{1 << 12, 1 << 16, 1 << 18}, {2, 1 << 16}});

void BM_LcpKasai(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto s = util::random_string(n, 4, rng);
  const auto sa = strings::build_suffix_array(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::lcp_kasai(s, sa));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_LcpKasai)->Range(1 << 12, 1 << 20);

// The head-to-head the suffix-array route exists for: m.s.p. via SA
// (O(n log n) ops) vs the paper's Lemma 3.7 algorithm (O(n log log n) ops).
void BM_MspViaSuffixArray(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n * 3 + 1);
  const auto s = util::random_string(n, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::msp_suffix_array(s));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_MspViaSuffixArray)->Range(1 << 12, 1 << 18);

void BM_MspEfficientSameInput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n * 3 + 1);
  const auto s = util::random_string(n, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        strings::minimal_starting_point(s, strings::MspStrategy::Efficient));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_MspEfficientSameInput)->Range(1 << 12, 1 << 18);

}  // namespace
