// Domain example: exploring the orbit structure of iterated maps.
//
// Iterating x -> f(x) on a finite set (pseudo-random generators, hash
// chains, dynamical systems mod n) produces a pseudo-forest of rho-shaped
// orbits.  This tool uses the library's cycle machinery to report the
// orbit statistics of x -> x^2 + c (mod n), and then uses SFCP to count
// behavioural equivalence classes when states are observed through a
// coarse lens (B = x mod k).
//
//   $ ./functional_graph_explorer [n] [c] [k]
#include <cstdlib>
#include <iostream>

#include "sfcp.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1 << 20;
  const u64 c = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const u32 k = argc > 3 ? static_cast<u32>(std::strtoul(argv[3], nullptr, 10)) : 4;

  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    inst.f[x] = static_cast<u32>((x * x + c) % n);  // Pollard-rho style map
    inst.b[x] = static_cast<u32>(x % k);            // coarse observation
  }

  std::cout << "Map: x -> x^2 + " << c << " (mod " << n << ")\n";
  util::Timer timer;
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::PointerJumping);
  std::cout << "Orbit structure (" << timer.millis() << " ms):\n"
            << "  components (cycles): " << cs.num_cycles() << "\n"
            << "  nodes on cycles:     " << cs.cycle_nodes.size() << "\n";
  u32 longest = 0;
  for (std::size_t cyc = 0; cyc < cs.num_cycles(); ++cyc) {
    longest = std::max(longest, cs.cycle_length(cyc));
  }
  std::cout << "  longest cycle:       " << longest << "\n";

  // Tail depth distribution via the rooted forest.
  const auto forest = graph::build_rooted_forest(inst.f, cs.on_cycle);
  const auto lv = graph::forest_levels(forest, graph::ForestStrategy::EulerTour);
  u32 max_level = 0;
  u64 level_sum = 0;
  for (u32 x = 0; x < n; ++x) {
    max_level = std::max(max_level, lv.level[x]);
    level_sum += lv.level[x];
  }
  std::cout << "  max tail depth:      " << max_level << "\n"
            << "  mean tail depth:     " << static_cast<double>(level_sum) / n << "\n";

  timer.reset();
  const auto r = core::solve(inst);
  std::cout << "\nBehavioural classes under B = x mod " << k << " (" << timer.millis()
            << " ms):\n  |Q| = " << r.num_blocks << "  (of " << n << " states; "
            << r.num_cycles << " cycles, " << r.kept_tree_nodes << " merged tree nodes, "
            << r.residual_tree_nodes << " residual)\n";
  return 0;
}
