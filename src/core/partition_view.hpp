#pragma once
// PartitionView — the library's read surface: an immutable, shared,
// versioned handle on one partition of [0, n).
//
//   core::PartitionView v = solver.solve_view(inst);     // or inc.view()
//   v.class_of(x);                // canonical class id, O(1)
//   v.same_class(x, y);           // O(1), no canonicalization needed
//   v.class_members(c);           // CSR span, built lazily once per view
//   for (auto [id, members] : v.classes()) ...
//
// A view is a snapshot: once obtained it never changes, no matter what the
// engine that produced it does next (snapshot isolation).  Views are cheap
// value types — a shared_ptr to an immutable representation — so a serving
// loop can hand them to many concurrent reader threads; all lazy indexes
// (canonical labels, the CSR members index) are built at most once per
// representation, thread-safely, and shared by every holder.
//
// Versioning: epoch() is the producing engine's edit clock.  Two views with
// equal epochs from the same engine describe the same partition, which lets
// readers skip reprocessing unchanged snapshots.
//
// Representation: a view is either a root (full label array) or a patch on
// an older view (the nodes an incremental repair relabelled, sorted).  That
// is what makes inc::IncrementalSolver::view() cost O(dirty-since-last-view)
// instead of O(n): repairs record a label delta and view() freezes just that
// delta on top of the previous view.  Chains self-flatten once the stacked
// patches rival n (amortized O(1) per patched node) or grow too deep.
// Canonical labels — first-occurrence order, byte-identical to core::solve —
// are materialized lazily, on the first query that needs them.

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::core {

struct Result;  // coarsest_partition.hpp

/// Solve-shaped diagnostics carried by a view into Result conversion.
struct ViewCounters {
  u32 num_cycles = 0;
  u32 cycle_nodes = 0;
  u32 kept_tree_nodes = 0;
  u32 residual_tree_nodes = 0;
};

class PartitionView {
 public:
  /// Empty view: size() == 0, num_classes() == 0.
  PartitionView() = default;

  // ---- builders ----------------------------------------------------------

  /// Wraps labels already in canonical first-occurrence order (e.g. a
  /// core::Result's q).  No per-node work beyond taking ownership.
  static PartitionView from_canonical(std::vector<u32> q, u32 num_classes, u64 epoch = 0,
                                      ViewCounters counters = {});

  /// Canonicalizes arbitrary labels (equality-preserving) into a fresh view.
  static PartitionView from_labels(std::span<const u32> labels, u64 epoch = 0,
                                   ViewCounters counters = {});

  // Engine-side builders (used by inc::IncrementalSolver and other
  // incremental producers; most callers never need them).

  /// Root view over raw (possibly sparse) labels < raw_bound.
  static PartitionView from_raw(std::vector<u32> raw, u32 raw_bound, u32 num_classes,
                                u64 epoch, ViewCounters counters = {});

  /// Derives a new view from `base` by patching `nodes`' raw labels (the
  /// dirty delta of the edits between the two epochs).  O(|nodes| log) —
  /// `base` itself is never modified.  Self-flattens to a fresh root (O(n))
  /// when the accumulated patches rival n or the chain grows too deep.
  static PartitionView patched(const PartitionView& base, std::vector<u32> nodes,
                               std::vector<u32> raw_labels, u32 raw_bound, u32 num_classes,
                               u64 epoch, ViewCounters counters = {});

  /// The repair-delta entry point shared by every incremental producer:
  /// `nodes` is a delta's relabelled-node list (inc::RepairDelta::nodes)
  /// and the patched labels are gathered from `current_labels` — the
  /// producer's live raw label array — at call time.  Equivalent to
  /// patched() with raw_labels[i] = current_labels[nodes[i]].
  static PartitionView patched_from_delta(const PartitionView& base, std::span<const u32> nodes,
                                          std::span<const u32> current_labels, u32 raw_bound,
                                          u32 num_classes, u64 epoch,
                                          ViewCounters counters = {});

  // ---- queries -----------------------------------------------------------

  std::size_t size() const noexcept;
  u32 num_classes() const noexcept;
  u64 epoch() const noexcept;
  const ViewCounters& counters() const noexcept;

  /// Canonical class id of x, in [0, num_classes): first-occurrence order,
  /// identical to core::solve's labels on the same partition.  O(1) after
  /// the view's canonical index is built (lazily, once, thread-safe).
  /// Throws std::out_of_range for x >= size().
  u32 class_of(u32 x) const;

  /// Whether x and y share a class.  Never materializes the canonical index
  /// (raw labels already decide equality), so it is cheap even on a view
  /// whose canonical labels were never demanded.
  bool same_class(u32 x, u32 y) const;

  /// Members of class c, ascending.  Backed by a CSR index built lazily once
  /// per view.  Throws std::out_of_range for c >= num_classes().
  std::span<const u32> class_members(u32 c) const;

  /// Size of class c, O(1) (after the canonical index is built).
  u32 class_size(u32 c) const;

  /// The full canonical label array (first-occurrence order, byte-identical
  /// to core::solve on the same partition).
  std::span<const u32> labels() const;

  /// Conversion to the classic result record (copies the canonical labels;
  /// counters are passed through).  Defined in coarsest_partition.
  Result to_result() const;

  // ---- class iteration ---------------------------------------------------

  struct ClassRef {
    u32 id = 0;
    std::span<const u32> members;
  };

  // Iterator and range (defined below; they need the complete type) hold
  // the view BY VALUE — a cheap shared_ptr copy — so a temporary view stays
  // alive for as long as anything iterates it and
  // `for (auto [id, members] : engine->view().classes())` is safe even
  // under C++20's range-for rules (no P2718 lifetime extension).
  class ClassIterator;
  struct ClassRange;

  /// Range over all classes: `for (auto [id, members] : v.classes())`.
  ClassRange classes() const;

 private:
  struct Rep;
  explicit PartitionView(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

class PartitionView::ClassIterator {
 public:
  using value_type = ClassRef;
  using difference_type = std::ptrdiff_t;

  ClassIterator() = default;
  ClassIterator(PartitionView view, u32 c) : view_(std::move(view)), c_(c) {}
  ClassRef operator*() const { return {c_, view_.class_members(c_)}; }
  ClassIterator& operator++() {
    ++c_;
    return *this;
  }
  ClassIterator operator++(int) {
    ClassIterator old = *this;
    ++c_;
    return old;
  }
  friend bool operator==(const ClassIterator& a, const ClassIterator& b) {
    return a.c_ == b.c_;
  }

 private:
  PartitionView view_;
  u32 c_ = 0;
};

struct PartitionView::ClassRange {
  PartitionView view;
  ClassIterator begin() const { return {view, 0}; }
  ClassIterator end() const { return {view, view.num_classes()}; }
};

inline PartitionView::ClassRange PartitionView::classes() const { return {*this}; }

}  // namespace sfcp::core
