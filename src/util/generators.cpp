#include "util/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "prim/rename.hpp"
#include "strings/period.hpp"

namespace sfcp::util {

graph::Instance paper_example_2_2() {
  // Paper (1-based): A_f = [2,4,6,8,10,12,1,3,5,7,9,11,14,15,16,13]
  //                  A_B = [1,2,1,1,2,2,3,3,1,1,3,1,1,2,1,3]
  graph::Instance inst;
  const u32 f1[] = {2, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13};
  const u32 b1[] = {1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3};
  for (const u32 v : f1) inst.f.push_back(v - 1);
  for (const u32 v : b1) inst.b.push_back(v);
  return inst;
}

std::vector<u32> paper_example_2_2_expected_q() {
  // Paper: A_Q[1..16] = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4].
  const u32 q1[] = {1, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4};
  std::vector<u32> q(std::begin(q1), std::end(q1));
  return prim::canonicalize_labels(q).labels;
}

graph::Instance random_function(std::size_t n, u32 num_b_labels, Rng& rng) {
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    inst.f[x] = rng.below_u32(static_cast<u32>(n));
    inst.b[x] = rng.below_u32(num_b_labels);
  }
  return inst;
}

graph::Instance random_permutation(std::size_t n, u32 num_b_labels, Rng& rng) {
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  std::vector<u32> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  // Fisher-Yates, then close random-length segments into cycles.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t remaining = n - pos;
    const std::size_t len = 1 + rng.below(std::min<std::size_t>(remaining, 1 + remaining / 2));
    for (std::size_t i = 0; i < len; ++i) {
      inst.f[perm[pos + i]] = perm[pos + (i + 1) % len];
    }
    pos += len;
  }
  for (std::size_t x = 0; x < n; ++x) inst.b[x] = rng.below_u32(num_b_labels);
  return inst;
}

graph::Instance equal_cycles(std::size_t k, std::size_t len, u32 distinct_patterns,
                             u32 num_b_labels, Rng& rng) {
  assert(len > 0 && distinct_patterns > 0);
  graph::Instance inst;
  const std::size_t n = k * len;
  inst.f.resize(n);
  inst.b.resize(n);
  std::vector<std::vector<u32>> patterns(distinct_patterns);
  for (auto& p : patterns) {
    p.resize(len);
    for (auto& c : p) c = rng.below_u32(num_b_labels);
  }
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t base = c * len;
    const auto& pat = patterns[rng.below(distinct_patterns)];
    const std::size_t rot = rng.below(len);  // random rotation: exercises m.s.p.
    for (std::size_t i = 0; i < len; ++i) {
      inst.f[base + i] = static_cast<u32>(base + (i + 1) % len);
      inst.b[base + i] = pat[(i + rot) % len];
    }
  }
  return inst;
}

graph::Instance long_tail(std::size_t n, std::size_t cycle_len, u32 num_b_labels, Rng& rng) {
  assert(cycle_len >= 1 && cycle_len <= n);
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (std::size_t i = 0; i < cycle_len; ++i) {
    inst.f[i] = static_cast<u32>((i + 1) % cycle_len);
  }
  // Path n-1 -> n-2 -> ... -> cycle_len -> 0 (enters the cycle at node 0).
  for (std::size_t i = cycle_len; i < n; ++i) {
    inst.f[i] = static_cast<u32>(i == cycle_len ? 0 : i - 1);
  }
  for (std::size_t x = 0; x < n; ++x) inst.b[x] = rng.below_u32(num_b_labels);
  return inst;
}

graph::Instance bushy(std::size_t n, std::size_t cycle_len, u32 fanout, u32 num_b_labels,
                      Rng& rng) {
  assert(cycle_len >= 1 && cycle_len <= n && fanout >= 1);
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (std::size_t i = 0; i < cycle_len; ++i) {
    inst.f[i] = static_cast<u32>((i + 1) % cycle_len);
  }
  // Node i attaches to a random earlier node within `fanout` generations.
  for (std::size_t i = cycle_len; i < n; ++i) {
    const std::size_t lo = i >= static_cast<std::size_t>(fanout) * 4 ? i - fanout * 4 : 0;
    inst.f[i] = static_cast<u32>(lo + rng.below(std::max<std::size_t>(1, i - lo)));
  }
  for (std::size_t x = 0; x < n; ++x) inst.b[x] = rng.below_u32(num_b_labels);
  return inst;
}

graph::Instance mergeable(std::size_t n, u32 period, Rng& rng) {
  // One big cycle whose B-labels repeat with the given period, plus trees
  // whose labels copy the cycle labels -> most tree nodes keep cycle
  // labels (exercises steps 2-4 of tree labelling).
  assert(period >= 1);
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  const std::size_t cycle_len = std::max<std::size_t>(period, (n / 2) / period * period);
  std::vector<u32> pattern(period);
  for (auto& c : pattern) c = rng.below_u32(4);
  for (std::size_t i = 0; i < cycle_len; ++i) {
    inst.f[i] = static_cast<u32>((i + 1) % cycle_len);
    inst.b[i] = pattern[i % period];
  }
  for (std::size_t i = cycle_len; i < n; ++i) {
    const u32 target = rng.below_u32(static_cast<u32>(i));
    inst.f[i] = target;
    // Copy the label the "corresponding cycle node" would demand with high
    // probability, random otherwise.
    inst.b[i] = rng.chance(0.8) ? inst.b[target] : rng.below_u32(4);
  }
  return inst;
}

std::vector<u32> paper_example_3_4() {
  return {3, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2};
}

std::vector<u32> random_string(std::size_t n, u32 sigma, Rng& rng) {
  std::vector<u32> s(n);
  for (auto& c : s) c = 1 + rng.below_u32(sigma);
  return s;
}

std::vector<u32> random_primitive_string(std::size_t n, u32 sigma, Rng& rng) {
  for (;;) {
    std::vector<u32> s = random_string(n, sigma, rng);
    if (!strings::is_repeating(s)) return s;
  }
}

std::vector<u32> runs_string(std::size_t n, u32 sigma, std::size_t run_len, Rng& rng) {
  std::vector<u32> s(n);
  std::size_t i = 0;
  while (i < n) {
    const u32 sym = 1 + rng.below_u32(sigma);
    const std::size_t len = 1 + rng.below(run_len);
    for (std::size_t j = 0; j < len && i < n; ++j) s[i++] = sym;
  }
  return s;
}

std::vector<u32> periodic_string(std::size_t n, std::size_t p, u32 sigma, Rng& rng) {
  assert(p > 0 && n % p == 0);
  std::vector<u32> pat = random_string(p, sigma, rng);
  std::vector<u32> s(n);
  for (std::size_t i = 0; i < n; ++i) s[i] = pat[i % p];
  return s;
}

strings::StringList random_string_list(std::size_t m, std::size_t total_symbols, u32 sigma,
                                       LengthDistribution dist, Rng& rng) {
  std::vector<std::size_t> lens(m, 1);
  std::size_t used = m;
  switch (dist) {
    case LengthDistribution::Uniform: {
      while (used < total_symbols) {
        ++lens[rng.below(m)];
        ++used;
      }
      break;
    }
    case LengthDistribution::ManyShort: {
      // 90% of strings stay short; the rest absorb the budget.
      const std::size_t heavy = std::max<std::size_t>(1, m / 10);
      while (used < total_symbols) {
        ++lens[rng.below(heavy)];
        ++used;
      }
      break;
    }
    case LengthDistribution::FewLong: {
      const std::size_t giant = std::max<std::size_t>(1, m / 100);
      while (used < total_symbols) {
        ++lens[rng.below(giant)];
        ++used;
      }
      break;
    }
    case LengthDistribution::PowerOfTwo: {
      for (std::size_t i = 0; i < m && used < total_symbols; ++i) {
        std::size_t len = 1;
        while (rng.chance(0.5) && used + len < total_symbols) len *= 2;
        lens[i] += len - 1;
        used += len - 1;
      }
      break;
    }
  }
  strings::StringList list;
  list.offsets.push_back(0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < lens[i]; ++j) {
      list.data.push_back(1 + rng.below_u32(sigma));
    }
    list.offsets.push_back(static_cast<u32>(list.data.size()));
  }
  return list;
}

std::vector<inc::Edit> random_edit_stream(const graph::Instance& inst, std::size_t count,
                                          EditMix mix, u32 num_b_labels, Rng& rng) {
  std::vector<inc::Edit> edits;
  const std::size_t n = inst.size();
  if (n == 0 || count == 0) return edits;
  edits.reserve(count);
  const u32 un = static_cast<u32>(n);
  if (num_b_labels == 0) num_b_labels = 1;
  // The stream is generated against an evolving copy of f so that later
  // edits remain shaped like the mix after earlier ones restructure the
  // graph.
  std::vector<u32> f = inst.f;
  switch (mix) {
    case EditMix::Uniform: {
      for (std::size_t i = 0; i < count; ++i) {
        const u32 x = rng.below_u32(un);
        if (rng.chance(0.5)) {
          const u32 y = rng.below_u32(un);
          edits.push_back(inc::Edit::set_f(x, y));
          f[x] = y;
        } else {
          edits.push_back(inc::Edit::set_b(x, rng.below_u32(num_b_labels)));
        }
      }
      break;
    }
    case EditMix::LocalizedHotspot: {
      // Leaves (in-degree 0) have singleton dirty regions.  Retargeting a
      // leaf to an f-image (in-degree >= 1) keeps the leaf set stable, so
      // the whole stream stays maximally local.
      const std::vector<u32> indeg = graph::indegrees(f);
      std::vector<u32> leaves;
      for (u32 x = 0; x < un; ++x) {
        if (indeg[x] == 0) leaves.push_back(x);
      }
      if (leaves.empty()) {
        // No leaves (e.g. a permutation): fall back to a small hotspot pool.
        for (int i = 0; i < 8; ++i) leaves.push_back(rng.below_u32(un));
      }
      const u32 num_leaves = static_cast<u32>(leaves.size());
      for (std::size_t i = 0; i < count; ++i) {
        const u32 x = leaves[rng.below_u32(num_leaves)];
        if (rng.chance(0.8)) {
          edits.push_back(inc::Edit::set_b(x, rng.below_u32(num_b_labels)));
        } else {
          const u32 y = f[rng.below_u32(un)];
          edits.push_back(inc::Edit::set_f(x, y));
          f[x] = y;
        }
      }
      break;
    }
    case EditMix::CycleChurn: {
      // Walk a random node forward far enough to land on (or right next to)
      // a cycle, then splice it onto another such node: cycles merge, split
      // and change length, and whole components go dirty.  Random functional
      // graphs have expected tail length ~0.63*sqrt(n), so the walk budget
      // scales with sqrt(n) to actually reach the cycles it churns.
      std::size_t walk_budget = 64;
      while (walk_budget * walk_budget < 16 * n) ++walk_budget;
      auto near_cycle = [&](u32 start) {
        u32 z = start;
        for (std::size_t s = 0; s < walk_budget; ++s) z = f[z];
        return z;
      };
      for (std::size_t i = 0; i < count; ++i) {
        if (rng.chance(0.25)) {
          const u32 x = near_cycle(rng.below_u32(un));
          edits.push_back(inc::Edit::set_b(x, rng.below_u32(num_b_labels)));
        } else {
          const u32 x = near_cycle(rng.below_u32(un));
          const u32 y = near_cycle(rng.below_u32(un));
          edits.push_back(inc::Edit::set_f(x, y));
          f[x] = y;
        }
      }
      break;
    }
  }
  return edits;
}

}  // namespace sfcp::util
