// F1 — the paper's worked artifacts regenerated verbatim:
//   * Fig. 1 / Example 2.2 — the 16-node instance, its cycles and A_Q
//   * Example 3.1 — cycle C's period, m.s.p. classes C_i / D_i
//   * Example 3.4 — the efficient-m.s.p. input and its m.s.p.
// Exit status is nonzero if any regenerated value disagrees with the paper.
#include <iostream>

#include "core/coarsest_partition.hpp"
#include "core/cycle_labeling.hpp"
#include "graph/cycle_structure.hpp"
#include "pram/config.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  util::Timer total_timer;
  bool ok = true;
  std::cout << "F1: the paper's worked examples\n\n";

  // ---- Example 2.2 / Fig. 1 ------------------------------------------------
  const auto inst = util::paper_example_2_2();
  const auto cs = graph::cycle_structure(inst.f);
  std::cout << "Example 2.2 (Fig. 1): n=16, cycles:";
  for (std::size_t c = 0; c < cs.num_cycles(); ++c) std::cout << ' ' << cs.cycle_length(c);
  std::cout << "   (paper: 12 and 4)\n";
  ok &= cs.num_cycles() == 2;

  const auto r = core::solve(inst);
  const auto expected = util::paper_example_2_2_expected_q();
  std::cout << "  A_Q      = ";
  for (const u32 v : r.q) std::cout << v << ' ';
  std::cout << "\n  expected = ";
  for (const u32 v : expected) std::cout << v << ' ';
  std::cout << "\n  blocks = " << r.num_blocks << " (paper: 4)  match="
            << (r.q == expected ? "yes" : "NO") << "\n\n";
  ok &= r.q == expected && r.num_blocks == 4;

  // ---- Example 3.1 -----------------------------------------------------------
  // Cycle C's B-label string (1,2,1,3)^3: period 4, classes C_0..C_3.
  const std::vector<u32> bc{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3};
  const u32 p = strings::smallest_period_seq(bc);
  std::cout << "Example 3.1: B_C = (1,2,1,3)^3, smallest repeating prefix |P| = " << p
            << " (paper: 4)\n";
  ok &= p == 4;
  const graph::Instance ex = util::paper_example_2_2();
  const auto cl = core::label_cycles(ex, graph::cycle_structure(ex.f));
  std::cout << "  equivalence classes among cycles = " << cl.num_classes
            << " (paper: C and D are equivalent -> 1)\n"
            << "  Q-labels on cycles = " << cl.num_labels << " (paper: 4)\n\n";
  ok &= cl.num_classes == 1 && cl.num_labels == 4;

  // ---- Example 3.4 -----------------------------------------------------------
  const auto s = util::paper_example_3_4();
  std::cout << "Example 3.4: s = (3,2,1,3,2,3,4,3,1,2,3,4,2,1,1,1,3,2,2)\n";
  const u32 m_eff = strings::minimal_starting_point(s, strings::MspStrategy::Efficient);
  const u32 m_booth = strings::msp_booth(s);
  std::cout << "  m.s.p. (efficient) = " << m_eff << ", (booth) = " << m_booth
            << " -> rotation starts at the (1,1,1,...) run (paper: the marked 1 at\n"
            << "  index 13 begins the minimal rotation)\n";
  ok &= m_eff == m_booth && m_eff == 13;

  std::cout << "\nAll worked examples " << (ok ? "match the paper." : "MISMATCH!") << "\n";
  json.record("f1_examples", inst.size(), "worked-examples", pram::threads(),
              total_timer.millis());
  return ok ? 0 : 1;
}
