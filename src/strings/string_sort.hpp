#pragma once
// Lexicographic sorting of variable-length strings — Section 3.1, Lemma 3.8.
//
// The paper's Algorithm "sorting strings": peel off unit-length strings
// (they sort by one integer-sort pass and precede longer strings with the
// same first symbol), fold the remaining strings into ordered pairs, rank
// the pairs with an order-preserving renaming (total length drops to
// <= 2n/3), recurse, and finish the O(n/log n)-size residue with a
// comparison sort (Cole's mergesort in the paper; a stable comparison sort
// here — see DESIGN.md).
//
// Baselines: std::stable_sort with span comparison, and a sequential MSD
// 3-way radix quicksort (Bentley–Sedgewick).

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

/// Compressed list of strings over a u32 alphabet.
struct StringList {
  std::vector<u32> data;     ///< concatenated symbols
  std::vector<u32> offsets;  ///< size m+1; string i = data[offsets[i]..offsets[i+1])

  std::size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::size_t total_symbols() const { return data.size(); }
  std::span<const u32> view(std::size_t i) const {
    return std::span<const u32>(data).subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }
  void push_back(std::span<const u32> s) {
    if (offsets.empty()) offsets.push_back(0);
    data.insert(data.end(), s.begin(), s.end());
    offsets.push_back(static_cast<u32>(data.size()));
  }
};

StringList make_string_list(const std::vector<std::vector<u32>>& strings);

enum class StringSortStrategy { StdSort, MsdRadix, Parallel };

/// Returns a permutation `order` such that view(order[0]) <= view(order[1])
/// <= ... lexicographically; equal strings are ordered by index (so the
/// result is unique and strategies can be compared with ==).
std::vector<u32> sort_strings(const StringList& list,
                              StringSortStrategy strategy = StringSortStrategy::Parallel);

/// Three-way lexicographic comparison of u32 spans.
int compare_spans(std::span<const u32> a, std::span<const u32> b);

}  // namespace sfcp::strings
