#pragma once
// Supplementary string machinery: Duval's Lyndon factorization and the
// Z-function.  Both underpin the sequential m.s.p. references ([5, 17]'s
// toolbox) and are exposed because they are independently useful for
// validating periods and borders in the tests.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

/// Duval's algorithm: returns the start indices of the Lyndon factors of s
/// (s = w_1 w_2 ... w_m with w_1 >= w_2 >= ... and each w_i strictly
/// smallest among its rotations).  O(n) time.
std::vector<u32> lyndon_factorization(std::span<const u32> s);

/// True iff s is a Lyndon word (primitive and strictly minimal rotation).
bool is_lyndon(std::span<const u32> s);

/// Z-function: z[i] = length of the longest common prefix of s and s[i..).
/// z[0] = n by convention.  O(n) time.
std::vector<u32> z_function(std::span<const u32> s);

/// All borders (lengths of proper prefixes that are also suffixes), via the
/// KMP failure function; ascending.  O(n).
std::vector<u32> borders(std::span<const u32> s);

}  // namespace sfcp::strings
