#include "graph/cycle_structure.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

#include "graph/functional_graph.hpp"
#include "pram/crcw.hpp"
#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "prim/scan.hpp"

namespace sfcp::graph {

namespace {

// Canonical choice shared by all strategies: a cycle's leader is its
// minimum node id, and rank(x) counts steps from the leader along f.
void arrange(CycleStructure& cs) {
  const std::size_t n = cs.on_cycle.size();
  // Dense cycle ids in leader order.
  std::vector<u32> leaders = prim::pack_index_if(
      n, [&](std::size_t x) { return cs.on_cycle[x] && cs.leader[x] == static_cast<u32>(x); });
  const std::size_t k = leaders.size();
  std::vector<u32> dense_of_leader(n, kNone);
  pram::parallel_for(0, k, [&](std::size_t c) { dense_of_leader[leaders[c]] = static_cast<u32>(c); });
  cs.cycle_of.assign(n, kNone);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (cs.on_cycle[x]) cs.cycle_of[x] = dense_of_leader[cs.leader[x]];
  });
  std::vector<u32> lens(k);
  pram::parallel_for(0, k, [&](std::size_t c) { lens[c] = cs.length[leaders[c]]; });
  cs.cycle_offset.assign(k + 1, 0);
  const u32 total = prim::exclusive_scan<u32>(lens, std::span<u32>(cs.cycle_offset).first(k));
  cs.cycle_offset[k] = total;
  cs.cycle_nodes.assign(total, kNone);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (cs.on_cycle[x]) {
      cs.cycle_nodes[cs.cycle_offset[cs.cycle_of[x]] + cs.rank[x]] = static_cast<u32>(x);
    }
  });
}

void structure_sequential(std::span<const u32> f, CycleStructure& cs) {
  const std::size_t n = f.size();
  cs.on_cycle.assign(n, 0);
  cs.leader.assign(n, kNone);
  cs.rank.assign(n, kNone);
  cs.length.assign(n, kNone);
  // Colors: 0 = unvisited, 1 = on the current walk, 2 = finished.
  std::vector<u8> color(n, 0);
  std::vector<u32> path;
  for (u32 start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    path.clear();
    u32 v = start;
    while (color[v] == 0) {
      color[v] = 1;
      path.push_back(v);
      v = f[v];
    }
    if (color[v] == 1) {
      // Found a new cycle: it is the suffix of `path` starting at v.
      std::size_t pos = path.size();
      while (pos > 0 && path[pos - 1] != v) --pos;
      --pos;  // path[pos] == v
      const u32 len = static_cast<u32>(path.size() - pos);
      // Leader = min node id on the cycle.
      u32 lead = path[pos];
      for (std::size_t i = pos; i < path.size(); ++i) lead = std::min(lead, path[i]);
      std::size_t lead_at = pos;
      while (path[lead_at] != lead) ++lead_at;
      for (std::size_t i = pos; i < path.size(); ++i) {
        const u32 x = path[i];
        cs.on_cycle[x] = 1;
        cs.leader[x] = lead;
        cs.length[x] = len;
        cs.rank[x] = static_cast<u32>((i - pos + path.size() - lead_at) % len);
      }
    }
    for (const u32 x : path) color[x] = 2;
  }
  pram::charge(2 * n);
  arrange(cs);
}

void structure_doubling(std::span<const u32> f, std::span<const u8> known_flags,
                        CycleStructure& cs) {
  const std::size_t n = f.size();
  cs.on_cycle.assign(n, 0);
  cs.leader.assign(n, kNone);
  cs.rank.assign(n, kNone);
  cs.length.assign(n, kNone);
  if (n == 0) {
    arrange(cs);
    return;
  }
  if (!known_flags.empty()) {
    cs.on_cycle.assign(known_flags.begin(), known_flags.end());
  } else {
    // Cycle nodes = image of f^N for any N >= n (every walk of length N
    // ends on a cycle, and cycle nodes map onto themselves).
    const u64 big = std::bit_ceil(static_cast<u64>(n));
    const std::vector<u32> fn = iterate_function(f, big);
    pram::parallel_for(0, n, [&](std::size_t x) {
      cs.on_cycle[fn[x]] = 1;  // common-CRCW write
    });
  }
  // Leader = min id on the cycle, by min-propagation doubling.
  const int rounds = static_cast<int>(std::bit_width(static_cast<u64>(n - 1))) + 1;
  std::vector<u32> lead(n), jump(n), lead2(n), jump2(n);
  pram::parallel_for(0, n, [&](std::size_t x) {
    lead[x] = static_cast<u32>(x);
    jump[x] = f[x];
  });
  for (int r = 0; r < rounds; ++r) {
    pram::parallel_for(0, n, [&](std::size_t x) {
      if (!cs.on_cycle[x]) return;
      lead2[x] = std::min(lead[x], lead[jump[x]]);
      jump2[x] = jump[jump[x]];
    });
    lead.swap(lead2);
    jump.swap(jump2);
  }
  // Distance to leader by absorbing pointer jumping.
  std::vector<u32> dist(n, 0), nxt(n, kNone), dist2(n), nxt2(n);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (!cs.on_cycle[x]) return;
    cs.leader[x] = lead[x];
    if (lead[x] == static_cast<u32>(x)) {
      dist[x] = 0;
      nxt[x] = static_cast<u32>(x);  // leader absorbs
    } else {
      dist[x] = 1;
      nxt[x] = f[x];
    }
  });
  for (int r = 0; r < rounds; ++r) {
    pram::parallel_for(0, n, [&](std::size_t x) {
      if (!cs.on_cycle[x]) return;
      const u32 j = nxt[x];
      dist2[x] = dist[x] + dist[j];  // dist[leader] == 0, so absorption is free
      nxt2[x] = nxt[j];
    });
    dist.swap(dist2);
    nxt.swap(nxt2);
  }
  // Cycle length: 1 + max distance, accumulated at the leader.
  std::vector<std::atomic<u32>> maxd(n);
  pram::parallel_for(0, n, [&](std::size_t x) { maxd[x].store(0, std::memory_order_relaxed); });
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (!cs.on_cycle[x]) return;
    u32 cur = maxd[lead[x]].load(std::memory_order_relaxed);
    while (dist[x] > cur &&
           !maxd[lead[x]].compare_exchange_weak(cur, dist[x], std::memory_order_relaxed)) {
    }
  });
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (!cs.on_cycle[x]) return;
    const u32 len = maxd[lead[x]].load(std::memory_order_relaxed) + 1;
    cs.length[x] = len;
    cs.rank[x] = (len - dist[x]) % len;
  });
  arrange(cs);
}

}  // namespace

CycleStructure cycle_structure(std::span<const u32> f, CycleStructureStrategy strategy) {
  CycleStructure cs;
  switch (strategy) {
    case CycleStructureStrategy::Sequential:
      structure_sequential(f, cs);
      return cs;
    case CycleStructureStrategy::PointerJumping:
      structure_doubling(f, {}, cs);
      return cs;
  }
  structure_sequential(f, cs);
  return cs;
}

CycleStructure cycle_structure_with_flags(std::span<const u32> f, std::span<const u8> on_cycle,
                                          CycleStructureStrategy strategy) {
  CycleStructure cs;
  cycle_structure_with_flags_into(f, on_cycle, strategy, cs);
  return cs;
}

void cycle_structure_with_flags_into(std::span<const u32> f, std::span<const u8> on_cycle,
                                     CycleStructureStrategy strategy, CycleStructure& cs) {
  if (strategy == CycleStructureStrategy::Sequential) {
    structure_sequential(f, cs);  // detects as a byproduct; flags agree
    return;
  }
  structure_doubling(f, on_cycle, cs);
}

}  // namespace sfcp::graph
