// Unit tests for instance (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Io, RoundTripStream) {
  util::Rng rng(2301);
  const auto inst = util::random_function(500, 4, rng);
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

TEST(Io, RoundTripEmpty) {
  graph::Instance inst;
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_TRUE(loaded.f.empty());
  EXPECT_TRUE(loaded.b.empty());
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("not-an-instance v1\n3\n0 1 2\n0 0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsWrongVersion) {
  std::stringstream ss("sfcp-instance v2\n1\n0\n0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsTruncatedF) {
  std::stringstream ss("sfcp-instance v1\n3\n0 1\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsOutOfRangeFunction) {
  std::stringstream ss("sfcp-instance v1\n2\n0 5\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  util::Rng rng(2307);
  const auto inst = util::random_function(100, 3, rng);
  const std::string path = ::testing::TempDir() + "/sfcp_io_test.txt";
  util::save_instance_file(path, inst);
  const auto loaded = util::load_instance_file(path);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(util::load_instance_file("/nonexistent/path/x.txt"), std::runtime_error);
}

TEST(Io, PaperExampleRoundTrip) {
  const auto inst = util::paper_example_2_2();
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

// ---- error paths (text) ---------------------------------------------------

TEST(Io, RejectsTruncatedB) {
  std::stringstream ss("sfcp-instance v1\n3\n0 1 2\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsMissingSize) {
  std::stringstream ss("sfcp-instance v1\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsLabelOverflow) {
  // 2^32 does not fit a u32: extraction fails, the loader must throw rather
  // than silently clamp.
  std::stringstream ss("sfcp-instance v1\n2\n0 1\n4294967296 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsFunctionOverflow) {
  std::stringstream ss("sfcp-instance v1\n2\n0 99999999999\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsUnreasonableSize) {
  std::stringstream ss("sfcp-instance v1\n99999999999999\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, TruncatedFileThrows) {
  util::Rng rng(2311);
  const auto inst = util::random_function(200, 3, rng);
  const std::string path = ::testing::TempDir() + "/sfcp_io_truncated.txt";
  {
    std::stringstream ss;
    util::save_instance(ss, inst);
    const std::string full = ss.str();
    std::ofstream os(path, std::ios::binary);
    os.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_THROW(util::load_instance_file(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- binary format (sfcp-instance v2) -------------------------------------

TEST(IoBinary, RoundTripStream) {
  util::Rng rng(2401);
  const auto inst = util::random_function(777, 5, rng);
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const auto loaded = util::load_instance(ss);  // autodetected
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

TEST(IoBinary, RoundTripEmpty) {
  graph::Instance inst;
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_TRUE(loaded.f.empty());
  EXPECT_TRUE(loaded.b.empty());
}

TEST(IoBinary, FileRoundTripAndAutodetect) {
  util::Rng rng(2402);
  const auto inst = util::random_permutation(512, 4, rng);
  const std::string bin_path = ::testing::TempDir() + "/sfcp_io_test.bin";
  const std::string txt_path = ::testing::TempDir() + "/sfcp_io_test2.txt";
  util::save_instance_file(bin_path, inst, util::InstanceFormat::Binary);
  util::save_instance_file(txt_path, inst, util::InstanceFormat::Text);
  const auto from_bin = util::load_instance_file(bin_path);
  const auto from_txt = util::load_instance_file(txt_path);
  EXPECT_EQ(from_bin.f, inst.f);
  EXPECT_EQ(from_bin.b, inst.b);
  EXPECT_EQ(from_txt.f, from_bin.f);
  EXPECT_EQ(from_txt.b, from_bin.b);
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(IoBinary, RejectsTruncatedPayload) {
  util::Rng rng(2403);
  const auto inst = util::random_function(100, 3, rng);
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const std::string full = ss.str();
  for (const std::size_t keep : {std::size_t{4}, std::size_t{10}, full.size() - 5}) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_THROW(util::load_instance(cut), std::runtime_error) << "keep=" << keep;
  }
}

TEST(IoBinary, RejectsBadMagic) {
  std::stringstream ss(std::string("\x7fwrongmg") + std::string(12, '\0'));
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(IoBinary, RejectsOutOfRangeFunction) {
  // Valid container, f[1] = 7 out of range for n = 2.
  graph::Instance inst;
  inst.f = {0, 1};
  inst.b = {0, 0};
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  std::string bytes = ss.str();
  bytes[8 + 4 + 4] = 7;  // magic(8) + n(4) + f[0](4), little-endian low byte
  std::stringstream patched(bytes);
  EXPECT_THROW(util::load_instance(patched), std::invalid_argument);
}

TEST(IoBinary, EmptyInputThrows) {
  std::stringstream ss;
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

// ---- edit journal (`sfcp-journal v1`) ------------------------------------

namespace {

std::vector<util::JournalRecord> sample_records() {
  return {
      {0, {inc::Edit::set_b(17, 3), inc::Edit::set_f(2, 9)}},
      {2, {}},  // a record of pure no-ops is legal (epoch unchanged)
      {2, {inc::Edit::set_f(0, 1)}},
      {3, {inc::Edit::set_b(4, 1000000), inc::Edit::set_b(5, 0), inc::Edit::set_f(7, 7)}},
  };
}

std::string sample_journal_bytes(const std::vector<util::JournalRecord>& records) {
  std::stringstream ss;
  util::write_journal_header(ss);
  for (const auto& rec : records) util::append_journal_record(ss, rec);
  return ss.str();
}

/// Byte offsets where each record starts (== the valid prefix length up to
/// that record), plus the total size as the final entry.
std::vector<std::size_t> record_boundaries(const std::vector<util::JournalRecord>& records) {
  std::vector<std::size_t> at = {8};
  for (const auto& rec : records) {
    at.push_back(at.back() + util::encode_journal_record(rec).size());
  }
  return at;
}

}  // namespace

TEST(IoJournal, RoundTrip) {
  const auto records = sample_records();
  std::stringstream ss(sample_journal_bytes(records));
  const util::JournalScan scan = util::scan_journal(ss);
  EXPECT_FALSE(scan.torn);
  EXPECT_TRUE(scan.error.empty());
  EXPECT_EQ(scan.records, records);
  EXPECT_EQ(scan.valid_bytes, sample_journal_bytes(records).size());

  std::stringstream again(sample_journal_bytes(records));
  EXPECT_EQ(util::load_journal(again), records);
}

TEST(IoJournal, EmptyJournalIsCleanlyEmpty) {
  std::stringstream ss;
  util::write_journal_header(ss);
  const util::JournalScan scan = util::scan_journal(ss);
  EXPECT_FALSE(scan.torn);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 8u);
}

TEST(IoJournal, BadMagicThrows) {
  std::stringstream ss(std::string("\x7fwrongmg") + std::string(20, '\0'));
  EXPECT_THROW(util::scan_journal(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(util::scan_journal(empty), std::runtime_error);
}

// The crash-shaped tails: truncation at EVERY byte offset must yield exactly
// the whole-record prefix, with the tear (when there is one) reported at the
// byte offset of the bad record.
TEST(IoJournal, TruncationAtEveryOffsetKeepsWholeRecordPrefix) {
  const auto records = sample_records();
  const std::string full = sample_journal_bytes(records);
  const auto boundaries = record_boundaries(records);
  for (std::size_t keep = 8; keep <= full.size(); ++keep) {
    std::stringstream cut(full.substr(0, keep));
    const util::JournalScan scan = util::scan_journal(cut);
    // The good prefix: every record that fits entirely within `keep`.
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= keep) ++whole;
    EXPECT_EQ(scan.records.size(), whole) << "keep=" << keep;
    EXPECT_EQ(scan.valid_bytes, boundaries[whole]) << "keep=" << keep;
    const bool at_boundary = keep == boundaries[whole];
    EXPECT_EQ(scan.torn, !at_boundary) << "keep=" << keep;
    if (!at_boundary) {
      // The reported offset names where the torn record starts.
      EXPECT_NE(scan.error.find("byte offset " + std::to_string(boundaries[whole])),
                std::string::npos)
          << "keep=" << keep << " error=" << scan.error;
    }
  }
}

TEST(IoJournal, TruncatedMidLengthPrefixReportsOffset) {
  const auto records = sample_records();
  const std::string full = sample_journal_bytes(records);
  const auto boundaries = record_boundaries(records);
  // Cut two bytes into the second record's length prefix.
  std::stringstream cut(full.substr(0, boundaries[1] + 2));
  const util::JournalScan scan = util::scan_journal(cut);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, boundaries[1]);
  EXPECT_NE(scan.error.find("length prefix"), std::string::npos) << scan.error;
  EXPECT_NE(scan.error.find(std::to_string(boundaries[1])), std::string::npos) << scan.error;
}

TEST(IoJournal, TruncatedMidRecordReportsOffset) {
  const auto records = sample_records();
  const std::string full = sample_journal_bytes(records);
  const auto boundaries = record_boundaries(records);
  // Cut into the middle of the last record's payload.
  std::stringstream cut(full.substr(0, boundaries[3] + 10));
  const util::JournalScan scan = util::scan_journal(cut);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.valid_bytes, boundaries[3]);
  EXPECT_NE(scan.error.find("mid-payload"), std::string::npos) << scan.error;
  EXPECT_NE(scan.error.find(std::to_string(boundaries[3])), std::string::npos) << scan.error;
}

TEST(IoJournal, CrcCatchesCorruption) {
  const auto records = sample_records();
  const auto boundaries = record_boundaries(records);
  std::string bytes = sample_journal_bytes(records);
  bytes[boundaries[2] + 6] ^= 0x40;  // flip one payload bit in record 2
  std::stringstream ss(bytes);
  const util::JournalScan scan = util::scan_journal(ss);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, boundaries[2]);
  EXPECT_NE(scan.error.find("CRC"), std::string::npos) << scan.error;
  EXPECT_NE(scan.error.find(std::to_string(boundaries[2])), std::string::npos) << scan.error;
}

TEST(IoJournal, StrictLoadThrowsNamingOffset) {
  const auto records = sample_records();
  const std::string full = sample_journal_bytes(records);
  const auto boundaries = record_boundaries(records);
  std::stringstream cut(full.substr(0, full.size() - 3));
  try {
    util::load_journal(cut);
    FAIL() << "torn tail must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset " + std::to_string(boundaries[3])),
              std::string::npos)
        << e.what();
  }
}

TEST(IoJournal, ImplausibleLengthIsATear) {
  std::stringstream ss;
  util::write_journal_header(ss);
  util::append_journal_record(ss, {1, {inc::Edit::set_b(0, 1)}});
  std::string bytes = ss.str();
  bytes[8] = '\xff';  // length prefix low byte -> implausible length
  bytes[9] = '\xff';
  bytes[10] = '\xff';
  bytes[11] = '\xff';
  std::stringstream patched(bytes);
  const util::JournalScan scan = util::scan_journal(patched);
  EXPECT_TRUE(scan.torn);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 8u);
  EXPECT_NE(scan.error.find("implausible"), std::string::npos) << scan.error;
}

TEST(IoJournal, Crc32KnownAnswer) {
  // The standard IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0u);
}

}  // namespace
}  // namespace sfcp
