#!/usr/bin/env python3
"""Per-phase roofline report over BENCH_*.json profile objects.

SFCP_PROFILE builds attach a flattened phase profile to every JSONL bench
record (src/util/bench_json.hpp):

    {"name":"BM_ServePipelinedEdits","...","ms":1.2,
     "profile":{"serve/epoch_apply":{"ns":900000,"count":8,"flops":0,
                "bytes":73728},...}}

This tool renders those profiles as indented trees with total/self time and
achieved GB/s / GFLOP/s per phase, against a measured machine peak:

    tools/profile_report.py BENCH_serve.json [BENCH_peak.json ...]
                            [--peak <GB/s>] [--top <k>]

The peak comes from (first match wins): --peak, or any "machine_peak"
record in the given files (written by bench_machine_peak, whose `n` field
is bytes-per-pass).  Without either, the %peak column is omitted.

Semantics to read the table with: a parent's total already includes
same-thread children (the scope physically spans them), but NOT scopes
opened on pram::parallel_for worker threads, whose summed time can exceed
the parent's wall time — self time is clamped at zero there.  GB/s and
GFLOP/s divide a phase's OWN charged traffic by its own wall time (charges
are not rolled up into ancestors).

`--selftest` runs the built-in checks and exits (used by ctest).
"""

import argparse
import json
import os
import sys
import tempfile


def load(paths):
    """paths -> (profiles, peak_gbps|None).

    profiles: list of (label, {path: {ns,count,flops,bytes}}) in file order,
    one entry per record that carried a non-empty profile, merged across
    repeated records of the same benchmark key (ns/count/flops/bytes sum).
    """
    merged = {}   # key -> {path: stats}
    order = []
    peak = None
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SystemExit(f"{path}:{lineno}: not a JSON record: {exc}")
                if rec.get("name") == "machine_peak" and peak is None:
                    ns = float(rec["ms"]) * 1e6
                    if ns > 0:
                        peak = float(rec.get("n", 0)) / ns  # bytes/ns == GB/s
                prof = rec.get("profile")
                if not prof:
                    continue
                key = (rec.get("name", "?"), rec.get("strategy", ""),
                       int(rec.get("n", 0)), int(rec.get("threads", 0)))
                if key not in merged:
                    merged[key] = {}
                    order.append(key)
                dst = merged[key]
                for phase, st in prof.items():
                    acc = dst.setdefault(phase,
                                         {"ns": 0, "count": 0, "flops": 0, "bytes": 0})
                    for field in acc:
                        acc[field] += int(st.get(field, 0))
    labels = []
    for key in order:
        name, strategy, n, threads = key
        parts = [name]
        if strategy:
            parts.append(strategy)
        if n:
            parts.append(f"n={n}")
        if threads:
            parts.append(f"t={threads}")
        labels.append((" ".join(parts), merged[key]))
    return labels, peak


def self_ns(phases, path):
    """Own ns minus maximal recorded descendants' ns, clamped at zero.

    Paths may skip levels ("a/b/c/d" recorded without "a/b/c"), so the
    subtraction covers every recorded descendant that has no OTHER recorded
    ancestor between itself and `path` — each nanosecond is subtracted once.
    """
    prefix = path + "/"
    child = 0
    skip = None
    for p in sorted(p for p in phases if p.startswith(prefix)):
        if skip and p.startswith(skip):
            continue
        child += phases[p]["ns"]
        skip = p + "/"
    return max(phases[path]["ns"] - child, 0)


def render(label, phases, peak, top=0, out=sys.stdout):
    out.write(f"== {label} ==\n")
    header = (f"{'phase':<36}{'count':>9}{'total ms':>12}{'ms/call':>12}"
              f"{'self ms':>12}{'GB/s':>9}{'GFLOP/s':>10}")
    if peak:
        header += f"{'%peak':>8}"
    out.write(header + "\n")
    paths = sorted(phases)
    # Indent each phase under its nearest RECORDED ancestor; the label keeps
    # any skipped levels ("inc/dirty_region" under "serve/epoch_apply").
    # Ancestors sort before descendants, so one pass fills the depth map.
    depth_of, label_of = {}, {}
    for path in paths:
        depth_of[path], label_of[path] = 0, path
        pos = path.rfind("/")
        while pos > 0:
            anc = path[:pos]
            if anc in depth_of:
                depth_of[path] = depth_of[anc] + 1
                label_of[path] = path[pos + 1:]
                break
            pos = path.rfind("/", 0, pos)
    if top:
        keep = sorted(paths, key=lambda p: -self_ns(phases, p))[:top]
        paths = [p for p in paths if p in set(keep)]
    for path in paths:
        st = phases[path]
        depth = depth_of[path]
        leaf = label_of[path]
        total_ms = st["ns"] / 1e6
        per_call = total_ms / st["count"] if st["count"] else 0.0
        row = (f"{'  ' * depth + leaf:<36}{st['count']:>9}{total_ms:>12.3f}"
               f"{per_call:>12.4f}{self_ns(phases, path) / 1e6:>12.3f}")
        gbps = st["bytes"] / st["ns"] if st["ns"] and st["bytes"] else None
        row += f"{gbps:>9.2f}" if gbps is not None else f"{'-':>9}"
        gflops = st["flops"] / st["ns"] if st["ns"] and st["flops"] else None
        row += f"{gflops:>10.2f}" if gflops is not None else f"{'-':>10}"
        if peak:
            row += (f"{100.0 * gbps / peak:>7.1f}%" if gbps is not None
                    else f"{'-':>8}")
        out.write(row + "\n")
    out.write("\n")


def selftest():
    rec = {"name": "BM_X", "n": 256, "strategy": "localized", "threads": 4, "ms": 2.0,
           "profile": {
               "serve": {"ns": 4_000_000, "count": 2, "flops": 0, "bytes": 0},
               "serve/epoch_apply": {"ns": 3_000_000, "count": 2, "flops": 1_000_000,
                                     "bytes": 6_000_000},
               "serve/notify": {"ns": 500_000, "count": 2, "flops": 0, "bytes": 0}}}
    peak_rec = {"name": "machine_peak", "n": 201326592, "strategy": "triad",
                "threads": 4, "ms": 10.0}  # 201326592 B / 10 ms = 20.13 GB/s
    plain = {"name": "BM_Y", "n": 1, "strategy": "", "threads": 1, "ms": 0.1}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.json")
        with open(path, "w", encoding="utf-8") as fh:
            for r in (rec, rec, peak_rec, plain):  # rec twice: merge must sum
                fh.write(json.dumps(r) + "\n")
        labels, peak = load([path])
        assert peak is not None and abs(peak - 20.1326592) < 1e-6, peak
        assert len(labels) == 1, labels  # the profile-less record contributes nothing
        label, phases = labels[0]
        assert label == "BM_X localized n=256 t=4", label
        assert phases["serve"]["ns"] == 8_000_000, phases  # merged across records
        # self of "serve" = 8ms - (6ms apply + 1ms notify) = 1ms
        assert self_ns(phases, "serve") == 1_000_000, self_ns(phases, "serve")
        assert self_ns(phases, "serve/epoch_apply") == 6_000_000
        # achieved GB/s of epoch_apply = 12MB / 6ms = 2 GB/s
        assert abs(phases["serve/epoch_apply"]["bytes"] /
                   phases["serve/epoch_apply"]["ns"] - 2.0) < 1e-9
        import io
        buf = io.StringIO()
        render(label, phases, peak, out=buf)
        text = buf.getvalue()
        assert "%peak" in text and "epoch_apply" in text and "GB/s" in text, text
        assert "  epoch_apply" in text, "child must be indented under serve"
        # Skipped levels: "serve/epoch_apply/inc/repair" without a recorded
        # ".../inc" hangs off epoch_apply (depth 2, compound label) and is
        # subtracted from epoch_apply's self time exactly once.
        phases["serve/epoch_apply/inc/repair"] = {
            "ns": 2_000_000, "count": 9, "flops": 0, "bytes": 0}
        phases["serve/epoch_apply/inc/repair/sigmap"] = {
            "ns": 500_000, "count": 9, "flops": 0, "bytes": 0}
        assert self_ns(phases, "serve/epoch_apply") == 4_000_000
        assert self_ns(phases, "serve") == 1_000_000  # grandchildren not double-counted
        buf = io.StringIO()
        render(label, phases, peak, out=buf)
        assert "    inc/repair" in buf.getvalue(), buf.getvalue()
        # Cross-thread oversubscription clamps, never goes negative.
        phases["serve/epoch_apply"]["ns"] = 1_000_000
        assert self_ns(phases, "serve/epoch_apply") == 0
    print("profile_report selftest: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json record files")
    parser.add_argument("--peak", type=float, default=None,
                        help="machine peak GB/s (overrides machine_peak records)")
    parser.add_argument("--top", type=int, default=0,
                        help="only the k phases with the largest self time (0 = all)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.files:
        parser.error("at least one BENCH_*.json file is required (or --selftest)")

    labels, file_peak = load(args.files)
    peak = args.peak if args.peak else file_peak
    if peak:
        print(f"machine peak: {peak:.2f} GB/s (STREAM triad)")
    else:
        print("machine peak: unknown — run bench_machine_peak --json into the same "
              "file, or pass --peak")
    print()
    if not labels:
        print("no profile objects found — build with -DSFCP_PROFILE=ON and rerun "
              "the bench with --json")
        return 0
    for label, phases in labels:
        render(label, phases, peak, top=args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
