#pragma once
// Reverse adjacency (predecessor lists) of a functional graph, maintained
// under single-edge retargets, plus the dirty-region primitive the
// incremental engine is built on.
//
// For an edit at node x (changing f(x) or B(x)), the set of nodes whose
// Q-label can change is exactly { z : the f-orbit of z passes through x } —
// the reverse-reachability closure of x.  Because only x's out-edge ever
// differs between the pre- and post-edit graphs, and a first arrival at x
// never traverses x's own out-edge, that closure is identical before and
// after the edit; one reverse BFS from x serves both.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::graph {

/// Dynamic predecessor lists: preds(v) = { x : f(x) = v }.  Order within a
/// list is unspecified (removal is swap-with-last).  Each node sits in
/// exactly one list, so a per-node position index makes retarget O(1) even
/// for hub nodes with Theta(n) in-degree.
class ReverseAdjacency {
 public:
  ReverseAdjacency() = default;
  explicit ReverseAdjacency(std::span<const u32> f) { rebuild(f); }

  /// Rebuilds all lists from scratch (capacity of the outer vector reused).
  void rebuild(std::span<const u32> f);

  /// Moves the edge out of `x` from `old_target` to `new_target`
  /// (no-op when they coincide).  Both targets must be < size().  O(1).
  void retarget(u32 x, u32 old_target, u32 new_target);

  std::span<const u32> preds(u32 v) const { return preds_[v]; }
  std::size_t size() const { return preds_.size(); }

 private:
  std::vector<std::vector<u32>> preds_;
  std::vector<u32> pos_;  ///< index of x within preds_[f(x)]
};

/// Reverse-BFS closure of `x`: every node whose forward orbit reaches `x`,
/// written to `out` in BFS layer order (x first, then non-decreasing forward
/// distance to x) — so for any tree node v in `out` other than x, f(v)
/// appears earlier.  Returns false (leaving `out` truncated) as soon as more
/// than `budget` nodes are discovered; returns true when the closure fits.
bool dirty_region(const ReverseAdjacency& radj, u32 x, std::size_t budget,
                  std::vector<u32>& out);

}  // namespace sfcp::graph
