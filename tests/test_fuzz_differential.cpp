// Differential fuzzing across every serving engine: the same seeded edit
// stream is driven through every engine in sfcp::engines() plus explicit
// ShardedEngine shard counts, and after every batch each engine's canonical
// view must be byte-identical to a fresh core::solve on the evolved
// instance — labels, class count, cycle and kept/residual counters, and the
// edit clock all included.  Runs under the SFCP_SANITIZE CI job; ctest
// label: fuzz (tier-1 stays fast by excluding it).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "core/solver.hpp"
#include "engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "pram/worker_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

struct Lane {
  std::string name;
  std::unique_ptr<Engine> engine;
  /// Pooled lanes only: the session WorkerPool installed on `engine`.
  /// Never used after the lane's last apply/view, so reverse-order member
  /// destruction (pool first) is safe.
  std::unique_ptr<pram::WorkerPool> pool;
};

/// Every registered engine, plus the sharded engine at each fuzzed shard
/// count (the registry's "sharded" is the k=8 default; k=1 degenerates to a
/// single warm solver and k=2 keeps cross-shard traffic high), plus
/// adaptive-policy lanes — the repair/reshard crossovers are fitted from
/// wall-clock costs, so their repair-vs-rebuild decisions are timing-
/// dependent, and views must be byte-identical whichever path was taken.
std::vector<Lane> make_lanes(const graph::Instance& inst) {
  std::vector<Lane> lanes;
  for (const auto& info : engines().all()) {
    lanes.push_back({info.name, engines().make(info.name, inst)});
  }
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    shard::ShardOptions sopt;
    sopt.shards = k;
    lanes.push_back({"sharded-k" + std::to_string(k),
                     std::make_unique<shard::ShardedEngine>(graph::Instance(inst),
                                                            core::Options::parallel(),
                                                            pram::ExecutionContext{}, sopt)});
  }
  inc::RepairPolicy adaptive;
  adaptive.adaptive = true;
  lanes.push_back({"incremental-adaptive",
                   std::make_unique<IncrementalEngine>(graph::Instance(inst),
                                                       core::Options::parallel(),
                                                       pram::ExecutionContext{}, adaptive)});
  shard::ShardOptions asopt;
  asopt.shards = 4;
  asopt.repair = adaptive;
  asopt.reshard.adaptive = true;
  lanes.push_back({"sharded-adaptive-k4",
                   std::make_unique<shard::ShardedEngine>(graph::Instance(inst),
                                                          core::Options::parallel(),
                                                          pram::ExecutionContext{}, asopt)});
  // Pooled lanes: sharded-k8 on a live WorkerPool at 2 and 8 threads.
  // Repairs genuinely run concurrently here, and the harness checks the
  // canonical views byte-identical to the fresh solve — i.e. to every
  // single-threaded lane (determinism under concurrency).
  for (const int t : {2, 8}) {
    shard::ShardOptions psopt;
    psopt.shards = 8;
    pram::ExecutionContext pctx;
    pctx.threads = t;
    auto pool = std::make_unique<pram::WorkerPool>(t);
    auto engine = std::make_unique<shard::ShardedEngine>(
        graph::Instance(inst), core::Options::parallel(), pctx, psopt);
    engine->install_pool(pool.get());
    lanes.push_back(
        {"sharded-k8-pool-t" + std::to_string(t), std::move(engine), std::move(pool)});
  }
  return lanes;
}

/// Applies `stream` to every lane in `batch`-sized chunks, checking each
/// lane's view against a fresh solve of the reference instance after every
/// chunk.
void run_differential(const graph::Instance& inst, std::span<const inc::Edit> stream,
                      const std::string& what, std::size_t batch = 10) {
  std::vector<Lane> lanes = make_lanes(inst);
  graph::Instance reference = inst;
  core::Solver oracle;  // warm across the per-batch fresh solves
  for (std::size_t i = 0; i < stream.size() || i == 0; i += batch) {
    const auto chunk = stream.subspan(i, std::min(batch, stream.size() - i));
    for (const inc::Edit& e : chunk) inc::apply_raw(e, reference.f, reference.b);
    const core::Result want = oracle.solve(reference);
    const std::string at = what + " after " + std::to_string(i + chunk.size()) + " edits";
    for (Lane& lane : lanes) {
      lane.engine->apply(chunk);
      const core::PartitionView got = lane.engine->view();
      ASSERT_EQ(got.size(), reference.size()) << lane.name << ", " << at;
      ASSERT_EQ(got.num_classes(), want.num_blocks) << lane.name << ", " << at;
      const std::span<const u32> q = got.labels();
      ASSERT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()))
          << lane.name << " diverged from fresh solve, " << at;
      const core::ViewCounters& c = got.counters();
      ASSERT_EQ(c.num_cycles, want.num_cycles) << lane.name << ", " << at;
      ASSERT_EQ(c.cycle_nodes, want.cycle_nodes) << lane.name << ", " << at;
      ASSERT_EQ(c.kept_tree_nodes, want.kept_tree_nodes) << lane.name << ", " << at;
      ASSERT_EQ(c.residual_tree_nodes, want.residual_tree_nodes) << lane.name << ", " << at;
      // All engines share the state-changing-edits clock.
      ASSERT_EQ(lane.engine->epoch(), lanes[0].engine->epoch()) << lane.name << ", " << at;
      ASSERT_EQ(got.epoch(), lane.engine->epoch()) << lane.name << ", " << at;
      // The O(dirty classes) reconciliation contract: per-class merge work
      // is bounded by the nodes the shard solvers' repair deltas carried —
      // it never re-walks clean parts of a shard.
      if (const auto* se = dynamic_cast<const shard::ShardedEngine*>(lane.engine.get())) {
        const EngineStats es = se->serving_stats();
        ASSERT_LE(es.merge_touched_nodes, es.deltas.nodes) << lane.name << ", " << at;
        ASSERT_LE(es.merge_touched_classes,
                  es.deltas.classes_created + es.deltas.classes_destroyed +
                      es.deltas.classes_resized)
            << lane.name << ", " << at;
      }
    }
    if (stream.empty()) break;
  }
}

void run_mix(graph::Instance inst, util::EditMix mix, std::size_t count, u64 seed,
             const std::string& what) {
  util::Rng rng(seed);
  const auto stream = util::random_edit_stream(inst, count, mix, 6, rng);
  run_differential(inst, stream, what + " seed=" + std::to_string(seed));
}

/// Disjoint union of `blocks` random functional graphs — many independent
/// components, so every shard of a ShardedEngine owns real work.
graph::Instance multi_component(std::size_t blocks, std::size_t block_n, u32 num_b, u64 seed) {
  util::Rng rng(seed);
  graph::Instance out;
  out.f.reserve(blocks * block_n);
  out.b.reserve(blocks * block_n);
  for (std::size_t j = 0; j < blocks; ++j) {
    const graph::Instance sub = util::random_function(block_n, num_b, rng);
    const u32 off = static_cast<u32>(j * block_n);
    for (std::size_t i = 0; i < block_n; ++i) {
      out.f.push_back(sub.f[i] + off);
      out.b.push_back(sub.b[i]);
    }
  }
  return out;
}

// ---- the three stream regimes, >= 200 edits each -------------------------

TEST(FuzzDifferential, RandomFunctionLocalized) {
  util::Rng rng(2001);
  run_mix(util::random_function(1600, 4, rng), util::EditMix::LocalizedHotspot, 220, 71,
          "random/localized");
}

TEST(FuzzDifferential, RandomFunctionUniform) {
  util::Rng rng(2002);
  run_mix(util::random_function(1600, 4, rng), util::EditMix::Uniform, 220, 72,
          "random/uniform");
}

TEST(FuzzDifferential, RandomFunctionCycleChurn) {
  util::Rng rng(2003);
  run_mix(util::random_function(1600, 4, rng), util::EditMix::CycleChurn, 200, 73,
          "random/churn");
}

TEST(FuzzDifferential, MultiComponentLocalized) {
  run_mix(multi_component(16, 100, 4, 2004), util::EditMix::LocalizedHotspot, 220, 74,
          "multi/localized");
}

TEST(FuzzDifferential, MultiComponentUniform) {
  run_mix(multi_component(16, 100, 4, 2005), util::EditMix::Uniform, 220, 75, "multi/uniform");
}

TEST(FuzzDifferential, MultiComponentCycleChurn) {
  run_mix(multi_component(16, 100, 4, 2006), util::EditMix::CycleChurn, 200, 76, "multi/churn");
}

TEST(FuzzDifferential, PermutationUniform) {
  util::Rng rng(2007);
  run_mix(util::random_permutation(1200, 3, rng), util::EditMix::Uniform, 220, 77,
          "permutation/uniform");
}

TEST(FuzzDifferential, PermutationCycleChurn) {
  util::Rng rng(2008);
  run_mix(util::random_permutation(1200, 3, rng), util::EditMix::CycleChurn, 200, 78,
          "permutation/churn");
}

TEST(FuzzDifferential, MergeableUniform) {
  util::Rng rng(2009);
  run_mix(util::mergeable(1536, 4, rng), util::EditMix::Uniform, 220, 79, "mergeable/uniform");
}

// ---- edge-of-the-space sweeps --------------------------------------------

// Tiny instances hit every boundary at once: self-loops, n == 1, whole-graph
// dirty regions, shards outnumbering components.
TEST(FuzzDifferential, SmallInstanceSweep) {
  for (std::size_t n = 1; n <= 20; n += 3) {
    for (u64 seed = 1; seed <= 3; ++seed) {
      util::Rng rng(9000 + 17 * n + seed);
      const graph::Instance inst = util::random_function(n, 3, rng);
      util::Rng srng(9100 + 17 * n + seed);
      const auto stream = util::random_edit_stream(inst, 48, util::EditMix::Uniform, 4, srng);
      run_differential(inst, stream,
                       "small n=" + std::to_string(n) + " seed=" + std::to_string(seed),
                       /*batch=*/4);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(FuzzDifferential, EmptyInstance) {
  const graph::Instance inst;
  run_differential(inst, {}, "empty");
}

// ---- loopback serving lane -----------------------------------------------
// The same seeded streams, but routed through a real serve::Server /
// serve::Client TCP loopback instead of direct Engine::apply().  The wire
// must add nothing and lose nothing: after every chunk the LABELS frame's
// canonical labels, class count and epoch are byte-identical to a fresh
// solve of the evolved reference instance, and the SUBSCRIBE feed stays
// monotone and well-formed.

/// Owns the event-loop thread; stops and joins it even when an ASSERT bails
/// out of the lane mid-stream.
struct ServerRunner {
  serve::Server& server;
  std::thread loop;
  explicit ServerRunner(serve::Server& s) : server(s), loop([&s] { s.run(); }) {}
  ~ServerRunner() {
    server.stop();
    loop.join();
  }
};

void run_loopback(const graph::Instance& inst, std::string_view engine_kind,
                  util::EditMix mix, std::size_t count, u64 seed, const std::string& what,
                  std::size_t batch = 16) {
  util::Rng rng(seed);
  const auto stream = util::random_edit_stream(inst, count, mix, 6, rng);

  serve::Server server(engines().make(engine_kind, inst));
  ServerRunner runner(server);
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  client.subscribe();

  graph::Instance reference = inst;
  core::Solver oracle;
  // Epoch oracle: the same engine kind applying the same chunks directly —
  // the wire's epoch clock must track in-process serving exactly.
  std::unique_ptr<Engine> ref_engine = engines().make(engine_kind, inst);

  u64 last_notified = 0;
  for (std::size_t i = 0; i < stream.size(); i += batch) {
    const auto chunk = std::span(stream).subspan(i, std::min(batch, stream.size() - i));
    for (const inc::Edit& e : chunk) inc::apply_raw(e, reference.f, reference.b);
    ref_engine->apply(chunk);
    const core::Result want = oracle.solve(reference);
    const std::string at = what + " after " + std::to_string(i + chunk.size()) + " edits";

    const u64 epoch = client.apply(chunk);
    ASSERT_EQ(epoch, ref_engine->epoch()) << at;
    const serve::Client::Labels got = client.labels();
    ASSERT_EQ(got.epoch, epoch) << at;
    ASSERT_EQ(got.num_classes, want.num_blocks) << at;
    ASSERT_EQ(got.labels.size(), want.q.size()) << at;
    ASSERT_TRUE(std::equal(got.labels.begin(), got.labels.end(), want.q.begin(),
                           want.q.end()))
        << "served labels diverged from fresh solve, " << at;

    // Drain the change feed accumulated so far: epochs monotone, classes
    // sorted/deduped and within range (full downgrades carry none).
    while (auto n = client.next_notification(0)) {
      ASSERT_GE(n->epoch, last_notified) << at;
      ASSERT_LE(n->epoch, epoch) << at;
      last_notified = n->epoch;
      if (n->full) {
        ASSERT_TRUE(n->classes.empty()) << at;
      } else {
        ASSERT_FALSE(n->classes.empty()) << at;
        ASSERT_TRUE(std::is_sorted(n->classes.begin(), n->classes.end())) << at;
        ASSERT_TRUE(std::adjacent_find(n->classes.begin(), n->classes.end()) ==
                    n->classes.end())
            << at;
      }
    }
  }
}

TEST(FuzzDifferential, LoopbackIncrementalLocalized) {
  util::Rng rng(41);
  run_loopback(util::random_function(1200, 4, rng), "incremental",
               util::EditMix::LocalizedHotspot, 180, 81, "loopback/incremental/localized");
}

TEST(FuzzDifferential, LoopbackIncrementalCycleChurn) {
  util::Rng rng(42);
  run_loopback(util::random_function(1000, 4, rng), "incremental", util::EditMix::CycleChurn,
               160, 82, "loopback/incremental/churn");
}

TEST(FuzzDifferential, LoopbackShardedUniform) {
  run_loopback(multi_component(8, 120, 4, 2044), "sharded", util::EditMix::Uniform, 180, 83,
               "loopback/sharded/uniform");
}

TEST(FuzzDifferential, LoopbackBatchUniform) {
  util::Rng rng(43);
  run_loopback(util::random_function(800, 4, rng), "batch", util::EditMix::Uniform, 140, 84,
               "loopback/batch/uniform");
}

// ---- fleet lane ----------------------------------------------------------
// Many small instances behind one fleet::FleetEngine with a warm cap tight
// enough that the interleaved streams constantly evict and fault instances
// back; after every round each touched instance's fleet view must be
// byte-identical to a fresh solve of its own evolved reference instance —
// routing must never cross streams, and tiering must never lose state.

void run_fleet_lane(const std::string& engine_kind, std::size_t instances, u64 seed,
                    int pool_threads = 1, bool batch_heavy = false) {
  fleet::FleetConfig cfg;
  cfg.engine = engine_kind;
  cfg.warm_limit = instances / 8;  // force evict/fault-in churn
  if (pool_threads > 1) cfg.ctx.threads = pool_threads;
  fleet::FleetEngine fleet(std::move(cfg));
  // Pooled variant: cold-batch floods and warm applies fan out on a live
  // WorkerPool; every per-instance view must stay byte-identical to the
  // fresh solve regardless.
  std::unique_ptr<pram::WorkerPool> pool;
  if (pool_threads > 1) {
    pool = std::make_unique<pram::WorkerPool>(pool_threads);
    fleet.install_pool(pool.get());
  }

  util::Rng rng(seed);
  std::vector<graph::Instance> reference(instances);
  std::vector<std::vector<inc::Edit>> streams(instances);
  constexpr std::size_t kRounds = 12;
  for (std::size_t i = 0; i < instances; ++i) {
    reference[i] = util::random_function(30 + rng.below(70), 4, rng);
    util::Rng srng(seed ^ (0x51ab * i + 1));
    streams[i] =
        util::random_edit_stream(reference[i], kRounds, util::EditMix::Uniform, 4, srng);
    fleet.create(i, reference[i]);
  }

  core::Solver oracle;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Interleave: every instance gets edit `round` of its own stream, as one
    // mixed-instance batch (odd rounds) or per-instance applies (even), so
    // both routing paths carry the same traffic.  batch_heavy sends EVERY
    // round through apply_batch — with a pool that is one warm fan per
    // round, each group racing the next round's caller-lane fault-in churn.
    if (batch_heavy || round % 2 == 1) {
      std::vector<fleet::InstanceEdit> batch;
      batch.reserve(instances);
      for (std::size_t i = 0; i < instances; ++i) batch.push_back({i, streams[i][round]});
      fleet.apply_batch(batch);
    } else {
      for (std::size_t i = 0; i < instances; ++i) {
        fleet.apply(i, {&streams[i][round], 1});
      }
    }
    for (std::size_t i = 0; i < instances; ++i) {
      inc::apply_raw(streams[i][round], reference[i].f, reference[i].b);
    }
    for (std::size_t i = 0; i < instances; ++i) {
      const core::Result want = oracle.solve(reference[i]);
      const core::PartitionView got = fleet.view(i);
      const std::string at = engine_kind + " instance " + std::to_string(i) + " after round " +
                             std::to_string(round);
      ASSERT_EQ(got.num_classes(), want.num_blocks) << at;
      const std::span<const u32> q = got.labels();
      ASSERT_TRUE(std::equal(q.begin(), q.end(), want.q.begin(), want.q.end()))
          << "fleet view diverged from fresh solve, " << at;
    }
  }
  const fleet::FleetStats st = fleet.stats();
  ASSERT_GE(st.evictions, instances) << engine_kind;  // the cap really did churn
  ASSERT_GE(st.faults, instances) << engine_kind;
}

TEST(FuzzDifferential, FleetInterleavedIncremental) { run_fleet_lane("incremental", 64, 3001); }

TEST(FuzzDifferential, FleetInterleavedBatch) { run_fleet_lane("batch", 64, 3002); }

TEST(FuzzDifferential, FleetInterleavedSharded) { run_fleet_lane("sharded", 64, 3003); }

TEST(FuzzDifferential, FleetInterleavedIncrementalPoolT2) {
  run_fleet_lane("incremental", 64, 3004, /*pool_threads=*/2);
}

TEST(FuzzDifferential, FleetInterleavedShardedPoolT8) {
  run_fleet_lane("sharded", 64, 3005, /*pool_threads=*/8);
}

// Batch-heavy pooled lanes: every round is one apply_batch, so the warm fan
// runs 12 times over 64 instances against a warm cap of 8 — maximal
// evict/fault churn between barriers at both pool widths.
TEST(FuzzDifferential, FleetWarmFanIncrementalPoolT2) {
  run_fleet_lane("incremental", 64, 3006, /*pool_threads=*/2, /*batch_heavy=*/true);
}

TEST(FuzzDifferential, FleetWarmFanIncrementalPoolT8) {
  run_fleet_lane("incremental", 64, 3007, /*pool_threads=*/8, /*batch_heavy=*/true);
}

TEST(FuzzDifferential, FleetWarmFanShardedPoolT8) {
  run_fleet_lane("sharded", 64, 3008, /*pool_threads=*/8, /*batch_heavy=*/true);
}

}  // namespace
}  // namespace sfcp
