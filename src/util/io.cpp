#include "util/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sfcp::util {

namespace {
constexpr const char* kMagic = "sfcp-instance";
constexpr const char* kVersion = "v1";
}  // namespace

void save_instance(std::ostream& os, const graph::Instance& inst) {
  os << kMagic << ' ' << kVersion << '\n' << inst.size() << '\n';
  for (std::size_t i = 0; i < inst.f.size(); ++i) {
    os << inst.f[i] << (i + 1 == inst.f.size() ? '\n' : ' ');
  }
  if (inst.f.empty()) os << '\n';
  for (std::size_t i = 0; i < inst.b.size(); ++i) {
    os << inst.b[i] << (i + 1 == inst.b.size() ? '\n' : ' ');
  }
  if (inst.b.empty()) os << '\n';
  if (!os) throw std::runtime_error("save_instance: write failed");
}

graph::Instance load_instance(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_instance: bad header (expected 'sfcp-instance v1')");
  }
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("load_instance: missing size");
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (auto& v : inst.f) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated f array");
  }
  for (auto& v : inst.b) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated b array");
  }
  graph::validate(inst);
  return inst;
}

void save_instance_file(const std::string& path, const graph::Instance& inst) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_instance_file: cannot open " + path);
  save_instance(os, inst);
}

graph::Instance load_instance_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_instance_file: cannot open " + path);
  return load_instance(is);
}

}  // namespace sfcp::util
