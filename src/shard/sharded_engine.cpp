#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/components.hpp"
#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prof/profile.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace sfcp::shard {

ShardedEngine::ShardedEngine(graph::Instance inst, core::Options opt, pram::ExecutionContext ctx,
                             ShardOptions sopt)
    : inst_(std::move(inst)), opt_(opt), ctx_(ctx), repair_(sopt.repair), reshard_(sopt.reshard) {
  graph::validate(inst_);
  const std::size_t n = inst_.size();
  shard_of_.assign(n, 0);
  local_of_.assign(n, 0);
  shards_.resize(sopt.shards == 0 ? 1 : sopt.shards);
  reshard_all_();
}

ShardedEngine::ShardedEngine(LoadTag, core::Options opt, pram::ExecutionContext ctx,
                             ShardOptions sopt)
    : opt_(opt), ctx_(ctx), repair_(sopt.repair), reshard_(sopt.reshard) {}

u32 ShardedEngine::shard_of(u32 x) const {
  if (x >= shard_of_.size()) {
    throw std::out_of_range("ShardedEngine::shard_of: node " + std::to_string(x) +
                            " out of range (n = " + std::to_string(shard_of_.size()) + ")");
  }
  return shard_of_[x];
}

// ---- sharding ------------------------------------------------------------

void ShardedEngine::reshard_all_() {
  pram::ScopedContext guard(&ctx_);
  prof::Scope prof_scope("shard/reshard");
  // Every reshard (including the construction pass) is a full-cost sample
  // anchoring the adaptive migrate-vs-reshard fit.
  const util::Timer timer;
  const std::size_t n = inst_.size();
  prof::charge_bytes(24 * n);  // components pass + node redistribution + rebuilds
  const graph::Components comp = graph::connected_components(inst_.f);
  const std::size_t k = shards_.size();

  // Longest-processing-time assignment: heaviest component to the currently
  // lightest shard.  Deterministic (ties by lowest id / lowest shard).
  std::vector<u32> order(comp.count());
  std::iota(order.begin(), order.end(), u32{0});
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return comp.size[a] != comp.size[b] ? comp.size[a] > comp.size[b] : a < b;
  });
  std::vector<u64> load(k, 0);
  std::vector<u32> comp_shard(comp.count(), 0);
  for (const u32 c : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < k; ++s) {
      if (load[s] < load[best]) best = s;
    }
    comp_shard[c] = static_cast<u32>(best);
    load[best] += comp.size[c];
  }

  for (auto& sh : shards_) sh.nodes.clear();
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    shards_[comp_shard[comp.id[v]]].nodes.push_back(v);  // ascending per shard
  }
  for (std::size_t s = 0; s < k; ++s) rebuild_shard_(s);
  root_stale_ = true;
  reshard_fit_.observe_full(timer.nanos(), reshard_.ewma_alpha);
}

void ShardedEngine::rebuild_shard_(std::size_t s) {
  ShardState& sh = shards_[s];
  if (sh.solver) {
    // The outgoing solver's lifetime counters move to the engine so
    // serving_stats() (and the merge-work <= delta-work invariant the fuzz
    // harness asserts) survive migrations and reshards.
    retired_edits_ += sh.solver->stats();
    retired_deltas_ += sh.solver->delta_stats();
  }
  const std::size_t m = sh.nodes.size();
  for (std::size_t i = 0; i < m; ++i) {
    shard_of_[sh.nodes[i]] = static_cast<u32>(s);
    local_of_[sh.nodes[i]] = static_cast<u32>(i);
  }
  // Shards are closed under f (they hold whole components), so every f
  // target's local index is defined by the loop above.
  graph::Instance sub;
  sub.f.resize(m);
  sub.b.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const u32 g = sh.nodes[i];
    sub.f[i] = local_of_[inst_.f[g]];
    sub.b[i] = inst_.b[g];
  }
  sh.solver = std::make_unique<inc::IncrementalSolver>(std::move(sub), opt_, ctx_, repair_);
  sh.seen_epoch = 0;
  sh.dirty = true;
  // A fresh solver speaks a fresh label space: the next reconciliation must
  // requotient from scratch.  label_global keeps the old stakes until then
  // (requotient_full_ releases them after acquiring the new ones).
  sh.full = true;
}

// ---- edits ---------------------------------------------------------------

void ShardedEngine::apply(std::span<const inc::Edit> edits) {
  for (const inc::Edit& e : edits) inc::validate_edit(e, inst_.size(), "ShardedEngine");
  const std::size_t count = edits.size();
  std::size_t i = 0;
  while (i < count) {
    // Maximal run of shard-routable edits; cross-shard rewires are barriers
    // (they move nodes between shards, changing the routing of what follows).
    std::size_t j = i;
    while (j < count && !cross_shard_(edits[j])) ++j;
    if (j > i) apply_segment_(edits.subspan(i, j - i));
    if (j < count) {
      apply_cross_shard_(edits[j]);
      ++j;
    }
    i = j;
  }
}

void ShardedEngine::apply_segment_(std::span<const inc::Edit> seg) {
  if (bucket_buf_.size() != shards_.size()) bucket_buf_.assign(shards_.size(), {});
  active_buf_.clear();
  for (const inc::Edit& e : seg) {
    const u32 s = shard_of_[e.node];
    auto& bucket = bucket_buf_[s];
    if (bucket.empty()) active_buf_.push_back(s);
    const u32 value = e.kind == inc::Edit::Kind::SetF ? local_of_[e.value] : e.value;
    bucket.push_back(inc::Edit{e.kind, local_of_[e.node], value});
    inc::apply_raw(e, inst_.f, inst_.b);  // keep the global instance current
  }
  {
    // Shards repair concurrently; each shard solver re-installs its own
    // context inside apply(), so charging lands in the session's (atomic)
    // sink.  With a session pool the repairs enqueue straight onto the
    // persistent workers, keyed by shard id so a shard's repairs revisit
    // the lane whose cache already holds it; without one, parallel_fan
    // forks a task-shaped OpenMP team (one task per dirty shard — no more
    // grain=1 context-clone workaround).  Inner solver loops never nest
    // parallelism: threads() pins to 1 on pool workers AND on the
    // coordinator whenever it runs a repair inline (caller-lane shards in
    // wait(), ring-full fallback) — that pin matters because the solver's
    // own installed context carries the pool, so a super-grain repair on
    // the caller lane would otherwise re-enter the pool mid-wait().
    pram::ScopedContext guard(&ctx_);
    const std::size_t active = active_buf_.size();
    auto repair_one = [&](std::size_t idx) {
      // Workers start from an empty scope path, so the slash in the name is
      // what files this under "shard" in the merged tree.
      prof::Scope prof_scope("shard/repair");
      const u32 s = active_buf_[idx];
      shards_[s].solver->apply(bucket_buf_[s]);
    };
    pram::WorkerPool* pool = ctx_.pool;
    if (pool != nullptr && active > 1 && !pram::WorkerPool::on_worker()) {
      pram::charge_round(active);
      for (std::size_t idx = 0; idx < active; ++idx) {
        pool->submit(static_cast<std::size_t>(active_buf_[idx]), repair_one, idx);
      }
      pool->wait();
    } else {
      pram::parallel_fan(active, repair_one);
    }
  }
  for (const u32 s : active_buf_) {
    bucket_buf_[s].clear();
    ShardState& sh = shards_[s];
    const u64 e = sh.solver->epoch();
    if (e != sh.seen_epoch) {  // no-op-only buckets leave the shard clean
      epoch_ += e - sh.seen_epoch;
      sh.seen_epoch = e;
      sh.dirty = true;
    }
  }
}

void ShardedEngine::apply_cross_shard_(const inc::Edit& e) {
  const std::size_t n = inst_.size();
  const u32 a = shard_of_[e.node];
  const u32 b = shard_of_[e.value];
  ++stats_.cross_shard_edits;
  ShardState& src = shards_[a];

  // The component the edit drags into shard b, located in a's CURRENT
  // sub-instance (pre-edit; the closure of e.node is the same either way).
  graph::Components comp;
  {
    pram::ScopedContext guard(&ctx_);
    comp = graph::connected_components(src.solver->instance().f);
  }
  const u32 cid = comp.id[local_of_[e.node]];
  const std::size_t moved = comp.size[cid];

  // Cross-shard implies f(x) != y (the old target lives in shard a), so the
  // edit always changes state.
  inc::apply_raw(e, inst_.f, inst_.b);
  ++epoch_;

  if (moved > reshard_.migrate_budget(n, reshard_fit_)) {
    ++stats_.reshards;
    reshard_all_();
    return;
  }

  const util::Timer timer;
  prof::Scope prof_scope("shard/migrate");
  prof::charge_bytes(8 * (src.nodes.size() + shards_[b].nodes.size() + moved));
  std::vector<u32> keep, move;
  keep.reserve(src.nodes.size() - moved);
  move.reserve(moved);
  for (std::size_t i = 0; i < src.nodes.size(); ++i) {
    (comp.id[i] == cid ? move : keep).push_back(src.nodes[i]);
  }
  ShardState& dst = shards_[b];
  std::vector<u32> merged;
  merged.reserve(dst.nodes.size() + move.size());
  std::merge(dst.nodes.begin(), dst.nodes.end(), move.begin(), move.end(),
             std::back_inserter(merged));
  src.nodes = std::move(keep);
  dst.nodes = std::move(merged);
  rebuild_shard_(a);
  rebuild_shard_(b);
  ++stats_.migrations;
  reshard_fit_.observe_unit(timer.nanos(), moved, reshard_.ewma_alpha);

  std::size_t largest = 0;
  for (const auto& sh : shards_) largest = std::max(largest, sh.nodes.size());
  if (!reshard_.balanced(largest, n, shards_.size())) {
    ++stats_.reshards;
    reshard_all_();
  }
}

// ---- merge layer ---------------------------------------------------------
//
// Every live raw label of a shard solver holds exactly one stake (Assign)
// in the global maps; reconciliation is driven by the shard's RepairDelta:
// created classes acquire stakes, destroyed classes release theirs, resized
// classes provably kept their identity and are skipped.  Acquire-before-
// release keeps entries shared between generations alive, which is what
// makes untouched classes' global labels — and therefore every other
// shard's raw labels — stable across reconciles.

void ShardedEngine::release_assign_(Assign& a) {
  if (a.kind == 1) {
    auto it = gclasses_.find(*a.ckey);
    if (--it->second.refs == 0) {
      live_globals_ -= static_cast<u32>(it->second.labels.size());
      gclasses_.erase(it);
    }
  } else if (a.kind == 2) {
    auto it = gsigs_.find(a.sig);
    if (--it->second.refs == 0) {
      --live_globals_;
      gsigs_.erase(it);
    }
  }
  a = Assign{};
}

void ShardedEngine::acquire_cycle_(const inc::IncrementalSolver& sol, u32 rep, u32 local_label,
                                   Assign& slot, CycleCache& cache) {
  // The solver's reduced cycle string IS the cross-shard canonical form:
  // two cycle classes anywhere share a global label block iff their reduced
  // strings coincide, phase for phase.
  const inc::IncrementalSolver::CycleClassRef probe = sol.cycle_class_of(rep);
  const std::size_t p = probe.key.size();
  std::size_t phase = p;
  for (std::size_t t = 0; t < p; ++t) {
    if (probe.labels[t] == local_label) {
      phase = t;
      break;
    }
  }
  if (phase == p) {
    throw std::logic_error("ShardedEngine: cycle label missing from its own class");
  }
  if (cache.key_data != probe.key.data()) {
    auto [it, inserted] =
        gclasses_.try_emplace(std::vector<u32>(probe.key.begin(), probe.key.end()));
    if (inserted) {
      it->second.labels.resize(p);
      for (std::size_t t = 0; t < p; ++t) it->second.labels[t] = fresh_global_();
    }
    cache.key_data = probe.key.data();
    cache.entry = &*it;
  }
  GlobalCycleClass& cls = cache.entry->second;
  ++cls.refs;
  slot = Assign{cls.labels[phase], 1, &cache.entry->first, 0};
}

void ShardedEngine::acquire_sig_(u32 b_value, u32 f_global, Assign& slot) {
  // (B, global label of the f-class): the coinductive characterization
  // Q(u) = Q(v) <=> B(u) = B(v) and Q(f(u)) = Q(f(v)), across shards.
  const u64 sig = pack_pair(b_value, f_global);
  auto [it, inserted] = gsigs_.try_emplace(sig);
  if (inserted) it->second.label = fresh_global_();
  ++it->second.refs;
  slot = Assign{it->second.label, 2, nullptr, sig};
}

void ShardedEngine::reset_global_maps_() {
  gclasses_.clear();
  gsigs_.clear();
  next_global_ = 0;
  live_globals_ = 0;
  for (auto& sh : shards_) {
    sh.label_global.clear();  // the stakes died with the maps
    sh.full = true;
    sh.dirty = true;
  }
  root_stale_ = true;
}

bool ShardedEngine::apply_label_delta_(std::size_t s, const inc::RepairDelta& d) {
  ShardState& sh = shards_[s];
  const inc::IncrementalSolver& sol = *sh.solver;
  const std::span<const u32> q = sol.labels();
  const graph::Instance& sub = sol.instance();
  const u32 bound = sol.label_bound();
  if (sh.label_global.size() < bound) sh.label_global.resize(bound);

  // Representatives for the created labels, preferring cycle members: a
  // class containing cycle nodes lies on a quotient cycle and must be keyed
  // by its reduced string, which only a cycle member can name.  Every
  // member of a created label was relabelled in this window, so the delta's
  // node list covers them all.
  std::unordered_map<u32, u32> rep;
  rep.reserve(d.classes_created.size());
  for (const u32 l : d.classes_created) rep.emplace(l, kNone);
  for (const u32 v : d.nodes) {
    const auto it = rep.find(q[v]);
    if (it == rep.end()) continue;
    if (it->second == kNone || (!sol.node_on_cycle(it->second) && sol.node_on_cycle(v))) {
      it->second = v;
    }
  }
  for (const u32 l : d.classes_created) {
    if (rep.at(l) == kNone) return false;            // no live member in the delta
    if (sh.label_global[l].kind != 0) return false;  // stale stake on a fresh label
  }

  // Acquire: cycle classes first, then tree chains in dependency order
  // (follow f through still-unassigned created labels, unwind from the
  // first assigned anchor — a surviving label or a just-assigned one).
  CycleCache cache;
  for (const u32 l : d.classes_created) {
    const u32 r = rep.at(l);
    if (sol.node_on_cycle(r)) acquire_cycle_(sol, r, l, sh.label_global[l], cache);
  }
  for (const u32 l0 : d.classes_created) {
    if (sh.label_global[l0].kind != 0) continue;
    chain_buf_.clear();
    u32 l = l0;
    while (sh.label_global[l].kind == 0) {
      const auto it = rep.find(l);
      if (it == rep.end()) return false;  // live but unassigned and not created
      chain_buf_.push_back(l);
      if (chain_buf_.size() > d.classes_created.size()) return false;
      l = q[sub.f[it->second]];
    }
    for (auto cit = chain_buf_.rbegin(); cit != chain_buf_.rend(); ++cit) {
      const u32 t = *cit;
      const u32 r = rep.at(t);
      const u32 fl = q[sub.f[r]];
      acquire_sig_(sub.b[r], sh.label_global[fl].global, sh.label_global[t]);
    }
  }

  // Release the destroyed labels' stakes (after the acquisitions, so shared
  // entries survive with their labels intact).
  for (const u32 l : d.classes_destroyed) {
    if (l < sh.label_global.size()) release_assign_(sh.label_global[l]);
  }
  return true;
}

void ShardedEngine::requotient_full_(std::size_t s) {
  ShardState& sh = shards_[s];
  const inc::IncrementalSolver& sol = *sh.solver;
  const std::span<const u32> q = sol.labels();
  const graph::Instance& sub = sol.instance();
  const u32 bound = sol.label_bound();
  const std::size_t m = sh.nodes.size();

  std::vector<Assign> next(bound);
  rep_buf_.assign(bound, kNone);
  for (u32 i = 0; i < static_cast<u32>(m); ++i) {
    u32& r = rep_buf_[q[i]];
    if (r == kNone || (!sol.node_on_cycle(r) && sol.node_on_cycle(i))) r = i;
  }
  CycleCache cache;
  for (u32 l = 0; l < bound; ++l) {
    if (rep_buf_[l] != kNone && sol.node_on_cycle(rep_buf_[l])) {
      acquire_cycle_(sol, rep_buf_[l], l, next[l], cache);
    }
  }
  for (u32 l0 = 0; l0 < bound; ++l0) {
    if (rep_buf_[l0] == kNone || next[l0].kind != 0) continue;
    chain_buf_.clear();
    u32 l = l0;
    while (next[l].kind == 0) {
      chain_buf_.push_back(l);
      if (chain_buf_.size() > bound) {
        throw std::logic_error("ShardedEngine: quotient chain does not terminate");
      }
      l = q[sub.f[rep_buf_[l]]];
    }
    for (auto cit = chain_buf_.rbegin(); cit != chain_buf_.rend(); ++cit) {
      const u32 t = *cit;
      const u32 fl = q[sub.f[rep_buf_[t]]];
      acquire_sig_(sub.b[rep_buf_[t]], next[fl].global, next[t]);
    }
  }
  // Acquire-new before release-old: entries shared between the two
  // assignments stay alive, keeping unchanged classes' global labels (and
  // therefore the other shards' raw labels) stable.
  for (Assign& a : sh.label_global) release_assign_(a);
  sh.label_global = std::move(next);
}

void ShardedEngine::reconcile_shard_(std::size_t s, bool collect_patch,
                                     std::vector<u32>& patch_nodes,
                                     std::vector<u32>& patch_labels) {
  ShardState& sh = shards_[s];
  prof::Scope prof_scope("shard/merge");
  const inc::RepairDelta d = sh.solver->take_delta();
  const bool per_class = !sh.full && !d.full && apply_label_delta_(s, d);
  if (per_class) {
    // O(dirty classes): only the delta's classes touched the maps, only its
    // relabelled nodes enter the next view's patch.
    stats_.merge_touched_classes += d.touched_classes();
    stats_.merge_touched_nodes += d.nodes.size();
    if (collect_patch) {
      const std::span<const u32> q = sh.solver->labels();
      for (const u32 v : d.nodes) {
        patch_nodes.push_back(sh.nodes[v]);
        patch_labels.push_back(sh.label_global[q[v]].global);
      }
    }
    pram::charge(2 * d.nodes.size() + 3 * d.touched_classes());
    prof::charge_bytes(8 * (d.nodes.size() + d.touched_classes()));
  } else {
    requotient_full_(s);
    ++stats_.full_merges;
    if (collect_patch) {
      const std::span<const u32> q = sh.solver->labels();
      for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
        patch_nodes.push_back(sh.nodes[i]);
        patch_labels.push_back(sh.label_global[q[i]].global);
      }
    }
    pram::charge(2 * sh.nodes.size());
    prof::charge_bytes(8 * sh.nodes.size());
  }
  sh.full = false;
  sh.counters = sh.solver->view_counters();
  sh.dirty = false;
  ++stats_.shard_merges;
}

core::PartitionView ShardedEngine::view() {
  pram::ScopedContext guard(&ctx_);
  dirty_buf_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].dirty) dirty_buf_.push_back(s);
  }
  if (dirty_buf_.empty() && !root_stale_) return last_view_;

  const std::size_t n = inst_.size();
  // Fresh labels are never reused while live, so a long repair streak must
  // occasionally compact the label space (same cap as the per-node engine).
  const u64 label_cap = std::max<u64>(4 * static_cast<u64>(n), 4096);
  if (static_cast<u64>(next_global_) >= label_cap) {
    reset_global_maps_();
    dirty_buf_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) dirty_buf_.push_back(s);
  }

  patch_nodes_buf_.clear();
  patch_labels_buf_.clear();
  const bool collect_patch = !root_stale_;
  for (const std::size_t s : dirty_buf_) {
    reconcile_shard_(s, collect_patch, patch_nodes_buf_, patch_labels_buf_);
  }

  core::ViewCounters counters{};
  for (const auto& sh : shards_) {
    counters.num_cycles += sh.counters.num_cycles;
    counters.cycle_nodes += sh.counters.cycle_nodes;
    counters.kept_tree_nodes += sh.counters.kept_tree_nodes;
    counters.residual_tree_nodes += sh.counters.residual_tree_nodes;
  }

  if (root_stale_) {
    std::vector<u32> raw(n);
    for (const auto& sh : shards_) {
      const std::span<const u32> q = sh.solver->labels();
      for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
        raw[sh.nodes[i]] = sh.label_global[q[i]].global;
      }
    }
    last_view_ = core::PartitionView::from_raw(std::move(raw), next_global_, live_globals_,
                                               epoch_, counters);
    root_stale_ = false;
    view_delta_full_ = true;
    view_delta_nodes_.clear();
  } else {
    if (!view_delta_full_) {
      view_delta_nodes_.insert(view_delta_nodes_.end(), patch_nodes_buf_.begin(),
                               patch_nodes_buf_.end());
      if (view_delta_nodes_.size() >= n) {
        view_delta_full_ = true;  // past n nodes a full refresh is cheaper
        view_delta_nodes_.clear();
      }
    }
    last_view_ =
        core::PartitionView::patched(last_view_, std::move(patch_nodes_buf_),
                                     std::move(patch_labels_buf_), next_global_, live_globals_,
                                     epoch_, counters);
    patch_nodes_buf_.clear();
    patch_labels_buf_.clear();
  }
  ++stats_.merged_views;
  return last_view_;
}

inc::ViewDelta ShardedEngine::take_view_delta() {
  inc::ViewDelta d;
  d.epoch = last_view_.epoch();
  d.full = view_delta_full_;
  d.nodes = std::move(view_delta_nodes_);
  view_delta_nodes_.clear();
  view_delta_full_ = false;
  return d;
}

void ShardedEngine::install_pool(pram::WorkerPool* pool) {
  ctx_.pool = pool;
  // Warm shard solvers hold their own context copies; later-built solvers
  // (reshard, migration, load) inherit the pool through ctx_.
  for (ShardState& sh : shards_) {
    if (sh.solver) sh.solver->solver().context().pool = pool;
  }
}

void ShardedEngine::set_metrics(pram::Metrics* m) {
  ctx_.metrics = m;
  for (ShardState& sh : shards_) {
    if (sh.solver) sh.solver->solver().context().metrics = m;
  }
}

EngineStats ShardedEngine::serving_stats() const {
  EngineStats s;
  s.edits = retired_edits_;
  s.deltas = retired_deltas_;
  for (const auto& sh : shards_) {
    s.edits += sh.solver->stats();
    s.deltas += sh.solver->delta_stats();
    if (sh.solver->cost_model().unit_samples > s.repair_fit.unit_samples) {
      s.repair_fit = sh.solver->cost_model();
    }
  }
  s.adaptive_repair = repair_.adaptive;
  s.shards = shards_.size();
  s.cross_shard_edits = stats_.cross_shard_edits;
  s.migrations = stats_.migrations;
  s.reshards = stats_.reshards;
  s.shard_merges = stats_.shard_merges;
  s.full_merges = stats_.full_merges;
  s.merge_touched_classes = stats_.merge_touched_classes;
  s.merge_touched_nodes = stats_.merge_touched_nodes;
  s.adaptive_reshard = reshard_.adaptive;
  s.reshard_fit = reshard_fit_;
  s.profile = prof::session_snapshot();
  return s;
}

// ---- persistence (sfcp-checkpoint v1, sharded magic; see util/io.hpp) ----

bool ShardedEngine::save_checkpoint(std::ostream& os) const {
  util::BinaryWriter w(os);
  w.put_bytes(util::checkpoint_sharded_magic().data(), 8);
  w.put_u32(static_cast<u32>(shards_.size()));
  w.put_u64(epoch_);
  w.put_u64(static_cast<u64>(inst_.size()));
  for (const auto& sh : shards_) {
    w.put_u32(static_cast<u32>(sh.nodes.size()));
    w.put_u32_array(sh.nodes);
    sh.solver->save(os);
  }
  if (!os) throw std::runtime_error("ShardedEngine::save_checkpoint: write failed");
  return true;
}

std::unique_ptr<ShardedEngine> ShardedEngine::load(std::istream& is, core::Options opt,
                                                   pram::ExecutionContext ctx, ShardOptions sopt) {
  util::BinaryReader r(is, "load_sharded_checkpoint");
  unsigned char magic[8];
  r.get_bytes(magic, 8, "magic");
  if (std::memcmp(magic, util::checkpoint_sharded_magic().data(), 8) != 0) {
    throw std::runtime_error(
        "load_sharded_checkpoint: bad magic (expected sfcp-checkpoint v1, sharded)");
  }
  return load_body(is, opt, ctx, sopt);
}

std::unique_ptr<ShardedEngine> ShardedEngine::load_body(std::istream& is, core::Options opt,
                                                        pram::ExecutionContext ctx,
                                                        ShardOptions sopt) {
  util::BinaryReader r(is, "load_sharded_checkpoint");
  const u32 k = r.get_u32("shard count");
  if (k == 0 || k > (1u << 20)) {
    throw std::runtime_error("load_sharded_checkpoint: unreasonable shard count");
  }
  const u64 epoch = r.get_u64("epoch");
  const u64 n64 = r.get_u64("node count");
  if (n64 > static_cast<u64>(kNone - 2)) {
    throw std::runtime_error("load_sharded_checkpoint: unreasonable node count");
  }
  const auto n = static_cast<std::size_t>(n64);

  auto eng = std::unique_ptr<ShardedEngine>(new ShardedEngine(LoadTag{}, opt, ctx, sopt));
  eng->epoch_ = epoch;
  eng->inst_.f.assign(n, 0);
  eng->inst_.b.assign(n, 0);
  eng->shard_of_.assign(n, 0);
  eng->local_of_.assign(n, 0);
  eng->shards_.resize(k);
  std::vector<u8> seen(n, 0);
  for (u32 s = 0; s < k; ++s) {
    ShardState& sh = eng->shards_[s];
    const u32 m = r.get_u32("shard size");
    if (m > n) throw std::runtime_error("load_sharded_checkpoint: shard size out of range");
    r.get_u32_vector(m, sh.nodes, "shard nodes");
    u32 prev = 0;
    for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
      const u32 g = sh.nodes[i];
      if (g >= n || seen[g] || (i > 0 && g <= prev)) {
        throw std::runtime_error("load_sharded_checkpoint: bad shard node list");
      }
      seen[g] = 1;
      prev = g;
    }
    sh.solver = std::make_unique<inc::IncrementalSolver>(
        inc::IncrementalSolver::load(is, opt, ctx, sopt.repair));
    if (sh.solver->size() != m) {
      throw std::runtime_error("load_sharded_checkpoint: shard instance size mismatch");
    }
    const graph::Instance& sub = sh.solver->instance();
    for (u32 i = 0; i < m; ++i) {
      const u32 g = sh.nodes[i];
      eng->shard_of_[g] = s;
      eng->local_of_[g] = i;
      eng->inst_.f[g] = sh.nodes[sub.f[i]];
      eng->inst_.b[g] = sub.b[i];
    }
    // The stored global epoch already accounts for everything the shard
    // solver absorbed before the save.
    sh.seen_epoch = sh.solver->epoch();
    sh.dirty = true;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!seen[v]) {
      throw std::runtime_error("load_sharded_checkpoint: node missing from every shard");
    }
  }
  eng->root_stale_ = true;
  return eng;
}

}  // namespace sfcp::shard
