// Crash recovery: a child process runs a durable serve::Server, applies
// acknowledged edit batches over loopback, then is SIGKILLed mid-epoch right
// after a partial journal append (exactly what power loss during a write
// leaves behind).  The parent restarts serving on the same journal and the
// replayed view must be byte-identical to a fresh core::solve over the same
// edit stream — for the plain and sharded engines, under repair-dominated
// and rebuild-heavy regimes.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

constexpr std::size_t kN = 900;
constexpr u64 kInstanceSeed = 4242;
constexpr u64 kStreamSeed = 777;
constexpr std::size_t kBatches = 12;
constexpr std::size_t kBatch = 8;

/// The same deterministic workload on both sides of the crash.
graph::Instance crash_instance() {
  util::Rng rng(kInstanceSeed);
  return util::random_function(kN, 5, rng);
}

std::vector<inc::Edit> crash_stream(util::EditMix mix) {
  const graph::Instance inst = crash_instance();
  util::Rng rng(kStreamSeed);
  return util::random_edit_stream(inst, kBatches * kBatch, mix, 6, rng);
}

/// Child side: serve durably, land every batch (acked => journaled, the
/// fsync=Always policy makes each record crash-safe), optionally checkpoint
/// halfway, then die the ugly way with half a record appended.
[[noreturn]] void run_child(const std::string& journal, const std::string& engine_kind,
                            util::EditMix mix, bool checkpoint_halfway) {
  try {
    serve::ServerOptions opt;
    opt.journal_path = journal;
    opt.fsync = serve::FsyncPolicy::Always;
    serve::Server server(engines().make(engine_kind, crash_instance()), opt);
    std::thread loop([&server] { server.run(); });
    serve::Client client = serve::Client::connect("127.0.0.1", server.port());

    const std::vector<inc::Edit> stream = crash_stream(mix);
    u64 epoch = 0;
    for (std::size_t i = 0; i < kBatches; ++i) {
      epoch = client.apply(std::span(stream).subspan(i * kBatch, kBatch));
      if (checkpoint_halfway && i + 1 == kBatches / 2) client.checkpoint();
    }

    // Tear the tail: a record whose bytes stop partway through, fsynced so
    // the recovering parent definitely sees the torn prefix.
    const std::string rec =
        util::encode_journal_record({epoch, {inc::Edit::set_b(0, 123456)}});
    const int fd = ::open(journal.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) _exit(4);
    if (::write(fd, rec.data(), rec.size() - 5) != static_cast<ssize_t>(rec.size() - 5)) {
      _exit(5);
    }
    ::fsync(fd);
    ::raise(SIGKILL);  // no destructors, no flush — a real crash
    _exit(6);          // unreachable
  } catch (...) {
    _exit(3);
  }
}

void run_crash_recovery(const std::string& tag, const std::string& engine_kind,
                        util::EditMix mix, bool checkpoint_halfway) {
  const std::string dir = ::testing::TempDir() + "serve_crash_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/wal";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) run_child(journal, engine_kind, mix, checkpoint_halfway);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
                                   << " instead of dying by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Restart serving on the crashed journal, exactly like `sfcp_cli serve`:
  // restore the checkpoint when one exists, replay the journal tail.
  serve::ServerOptions opt;
  opt.journal_path = journal;
  std::unique_ptr<Engine> engine =
      serve::recover_engine(journal + ".ckpt", engine_kind, crash_instance());
  serve::Server server(std::move(engine), opt);

  const serve::ServeStats st = server.stats();
  EXPECT_TRUE(st.journal_tail_torn) << "the partial append must be detected as a tear";
  if (checkpoint_halfway) {
    // The checkpoint reset the journal; only post-checkpoint batches remain.
    EXPECT_EQ(st.recovered_records, kBatches - kBatches / 2);
  } else {
    EXPECT_EQ(st.recovered_records, kBatches);
  }

  // Oracle: a fresh solve over the identically edited instance, plus a
  // reference engine for the epoch clock (epoch counts state-changing edits,
  // so it is chunking-invariant).
  graph::Instance reference = crash_instance();
  const std::vector<inc::Edit> stream = crash_stream(mix);
  for (const inc::Edit& e : stream) inc::apply_raw(e, reference.f, reference.b);
  const core::Result want = core::solve(reference);
  std::unique_ptr<Engine> ref_engine = engines().make(engine_kind, crash_instance());
  ref_engine->apply(stream);

  EXPECT_EQ(server.engine().epoch(), ref_engine->epoch());
  const core::PartitionView v = server.engine().view();
  EXPECT_EQ(v.num_classes(), want.num_blocks);
  const std::span<const u32> labels = v.labels();
  ASSERT_EQ(labels.size(), want.q.size());
  EXPECT_TRUE(std::equal(labels.begin(), labels.end(), want.q.begin(), want.q.end()))
      << "replayed view must be byte-identical to a fresh solve";

  std::filesystem::remove_all(dir);
}

TEST(ServeCrashRecovery, IncrementalRepairRegime) {
  run_crash_recovery("inc_repair", "incremental", util::EditMix::LocalizedHotspot, false);
}

TEST(ServeCrashRecovery, IncrementalRebuildRegime) {
  run_crash_recovery("inc_rebuild", "incremental", util::EditMix::CycleChurn, false);
}

TEST(ServeCrashRecovery, ShardedRepairRegime) {
  run_crash_recovery("shard_repair", "sharded", util::EditMix::LocalizedHotspot, false);
}

TEST(ServeCrashRecovery, ShardedRebuildRegime) {
  run_crash_recovery("shard_rebuild", "sharded", util::EditMix::CycleChurn, false);
}

TEST(ServeCrashRecovery, CheckpointMidwayThenCrash) {
  run_crash_recovery("inc_ckpt", "incremental", util::EditMix::LocalizedHotspot, true);
}

TEST(ServeCrashRecovery, ShardedCheckpointMidwayThenCrash) {
  run_crash_recovery("shard_ckpt", "sharded", util::EditMix::Uniform, true);
}

}  // namespace
}  // namespace sfcp
