#pragma once
// sfcp::Engine — one polymorphic serving surface over the two ways of
// keeping a partition current under edits:
//
//   * BatchEngine        — core::Solver re-solves lazily; cheapest when
//                          edits arrive in large bursts between reads.
//   * IncrementalEngine  — inc::IncrementalSolver repairs per edit; cheapest
//                          when reads interleave with localized edits.
//
// Both speak the same protocol: apply() edits, view() the current partition
// as an immutable core::PartitionView, epoch() as the version clock.  Front
// ends (sfcp_cli, incremental_server, benches, tests) program against
// Engine and pick an implementation by name through sfcp::engines() — the
// engine-level sibling of the strategy registry sfcp::registry():
//
//   auto engine = sfcp::engines().make("incremental", std::move(inst),
//                                      sfcp::registry().at("parallel"), ctx);
//   engine->set_b(x, 3);
//   core::PartitionView v = engine->view();   // isolated from later edits
//
// Engines with warm persistent state also checkpoint: save_checkpoint()
// writes an `sfcp-checkpoint v1` stream (util/io.hpp) and
// load_incremental_engine() restores one.

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "core/solver.hpp"
#include "inc/incremental_solver.hpp"
#include "prof/profile.hpp"

namespace sfcp {

/// Delta/policy statistics aggregated across the serving stack — the
/// metrics surface front ends (incremental_server `stats`, sfcp_cli) read.
/// Every layer fills the fields it owns and leaves the rest zero: a
/// BatchEngine only counts edits, an IncrementalEngine adds repair deltas
/// and the repair-policy fit, a ShardedEngine additionally reports its
/// merge-layer and reshard-policy counters.
struct EngineStats {
  inc::EditStats edits;      ///< edit outcomes (sharded: summed over shards)
  inc::DeltaStats deltas;    ///< flushed repair deltas (sharded: summed)
  bool adaptive_repair = false;   ///< repair policy runs in adaptive mode
  pram::CostModel repair_fit{};   ///< repair-vs-rebuild fit (most-informed shard)

  // Sharded layer:
  std::size_t shards = 0;
  u64 cross_shard_edits = 0;
  u64 migrations = 0;
  u64 reshards = 0;
  u64 shard_merges = 0;
  u64 full_merges = 0;
  u64 merge_touched_classes = 0;
  u64 merge_touched_nodes = 0;
  bool adaptive_reshard = false;  ///< reshard policy runs in adaptive mode
  pram::CostModel reshard_fit{};  ///< migrate-vs-reshard fit

  /// Merged phase-profile snapshot of the session profiler at the time of
  /// the stats call (prof/profile.hpp).  Empty unless the build has
  /// SFCP_PROFILE=ON and a profiler is installed — the STATS wire frame
  /// only carries it when non-empty, so old clients are unaffected.
  prof::ProfileTree profile;

  /// Mean dirty classes a repair delta touched (0 when no windows flushed).
  double dirty_classes_per_window() const noexcept {
    const u64 w = deltas.windows > deltas.full ? deltas.windows - deltas.full : 0;
    if (w == 0) return 0.0;
    return static_cast<double>(deltas.classes_created + deltas.classes_destroyed +
                               deltas.classes_resized) /
           static_cast<double>(w);
  }
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry name of the implementation ("batch", "incremental", ...).
  virtual std::string_view kind() const noexcept = 0;

  virtual const graph::Instance& instance() const noexcept = 0;
  std::size_t size() const noexcept { return instance().size(); }

  /// Monotonic edit clock; views are stamped with it.
  virtual u64 epoch() const noexcept = 0;

  /// Immutable snapshot of the current partition (canonical labels,
  /// byte-identical to core::solve on the current instance), isolated from
  /// any edits applied afterwards.
  virtual core::PartitionView view() = 0;

  /// Applies edits in order.  All edits are validated up front (throws
  /// std::invalid_argument naming the offending edit before any state
  /// changes).
  virtual void apply(std::span<const inc::Edit> edits) = 0;

  void set_f(u32 x, u32 y) {
    const inc::Edit e = inc::Edit::set_f(x, y);
    apply({&e, 1});
  }
  void set_b(u32 x, u32 label) {
    const inc::Edit e = inc::Edit::set_b(x, label);
    apply({&e, 1});
  }

  /// Whether this engine keeps warm restorable state — i.e. whether
  /// save_checkpoint() will write anything.  Lets callers probe before
  /// opening (and truncating) an output file.
  virtual bool checkpointable() const noexcept { return false; }

  /// Writes an `sfcp-checkpoint v1` stream when checkpointable(); returns
  /// false (writing nothing) when not.
  virtual bool save_checkpoint(std::ostream& os) const {
    (void)os;
    return false;
  }

  /// Delta/policy statistics (fields a layer does not own stay zero).
  virtual EngineStats serving_stats() const { return {}; }

  /// Coarse resident-size estimate of the engine's warm state, for
  /// size-aware admission (fleet::FleetEngine warm/cold tiering).  Not an
  /// exact malloc total; the default assumes a few words per node.
  virtual std::size_t footprint_bytes() const noexcept { return size() * 16; }

  /// Flushes the notification window: which nodes the views published since
  /// the previous take relabelled (map to changed classes through the
  /// current view), or a whole-partition downgrade.  Never disturbs the
  /// view patch chain — it is the read-side change feed serving front ends
  /// (serve::Server SUBSCRIBE) consume.  Engines without delta tracking
  /// (batch) always downgrade to full.
  virtual inc::ViewDelta take_view_delta() { return inc::ViewDelta{epoch(), true, {}}; }

  /// Installs (or, with null, removes) a session worker pool on the
  /// engine's internal execution contexts, so its parallel rounds run on
  /// persistent workers instead of fork-join teams (pram/worker_pool.hpp).
  /// Engines hold context COPIES taken at construction, which is why the
  /// pool cannot ride in via the caller's thread-local context alone.  The
  /// pool must outlive the engine (or be uninstalled first); default no-op.
  virtual void install_pool(pram::WorkerPool* pool) { (void)pool; }

  /// Rebinds the engine's work/depth sink (null = don't count) on its
  /// internal execution contexts — same construction-time-copy rationale as
  /// install_pool.  fleet::FleetEngine uses this to point each engine at a
  /// per-lane scratch sink for the duration of a warm fan and back at the
  /// session sink afterwards; the sink must outlive the binding.  Default
  /// no-op for engines that never charge.
  virtual void set_metrics(pram::Metrics* m) { (void)m; }
};

/// Lazy re-solve engine: apply() mutates the instance and marks the cached
/// view stale; view() re-solves at most once per epoch.
class BatchEngine final : public Engine {
 public:
  explicit BatchEngine(graph::Instance inst, core::Options opt = core::Options::parallel(),
                       pram::ExecutionContext ctx = {});

  /// Seeds the cached view from an already-computed solve of `inst` (the
  /// batched cold-start path: solve_batch's consumer constructs engines
  /// from results it just produced, with no lazy re-solve owed).  Throws
  /// std::invalid_argument when the result size disagrees.
  BatchEngine(graph::Instance inst, core::Result seed,
              core::Options opt = core::Options::parallel(), pram::ExecutionContext ctx = {});

  /// Restores an engine at a given epoch with a stale cache (fleet cold
  /// fault-in: the next view() re-solves the restored instance lazily).
  BatchEngine(graph::Instance inst, u64 epoch, core::Options opt = core::Options::parallel(),
              pram::ExecutionContext ctx = {});

  std::string_view kind() const noexcept override { return "batch"; }
  const graph::Instance& instance() const noexcept override { return inst_; }
  u64 epoch() const noexcept override { return epoch_; }
  core::PartitionView view() override;
  void apply(std::span<const inc::Edit> edits) override;
  EngineStats serving_stats() const override {
    EngineStats s;
    s.edits.edits = epoch_;  // every state-changing edit; re-solves are lazy
    s.profile = prof::session_snapshot();
    return s;
  }

  core::Solver& solver() noexcept { return solver_; }

  void install_pool(pram::WorkerPool* pool) override { solver_.context().pool = pool; }
  void set_metrics(pram::Metrics* m) override { solver_.context().metrics = m; }

  std::size_t footprint_bytes() const noexcept override {
    return (inst_.f.capacity() + inst_.b.capacity()) * sizeof(u32) +
           (stale_ ? 0 : inst_.size() * sizeof(u32));
  }

 private:
  graph::Instance inst_;
  core::Solver solver_;
  core::PartitionView cached_;
  u64 epoch_ = 0;
  bool stale_ = true;
};

/// Per-edit repair engine wrapping inc::IncrementalSolver.
class IncrementalEngine final : public Engine {
 public:
  explicit IncrementalEngine(graph::Instance inst,
                             core::Options opt = core::Options::parallel(),
                             pram::ExecutionContext ctx = {}, inc::RepairPolicy policy = {});
  /// Adopts an existing solver (e.g. one restored via IncrementalSolver::load).
  explicit IncrementalEngine(inc::IncrementalSolver solver);

  std::string_view kind() const noexcept override { return "incremental"; }
  const graph::Instance& instance() const noexcept override { return inc_.instance(); }
  u64 epoch() const noexcept override { return inc_.epoch(); }
  core::PartitionView view() override { return inc_.view(); }
  void apply(std::span<const inc::Edit> edits) override { inc_.apply(edits); }
  bool checkpointable() const noexcept override { return true; }
  bool save_checkpoint(std::ostream& os) const override;
  EngineStats serving_stats() const override {
    EngineStats s;
    s.edits = inc_.stats();
    s.deltas = inc_.delta_stats();
    s.adaptive_repair = inc_.policy().adaptive;
    s.repair_fit = inc_.cost_model();
    s.profile = prof::session_snapshot();
    return s;
  }

  inc::ViewDelta take_view_delta() override { return inc_.take_view_delta(); }
  std::size_t footprint_bytes() const noexcept override { return inc_.footprint_bytes(); }

  void install_pool(pram::WorkerPool* pool) override { inc_.solver().context().pool = pool; }
  void set_metrics(pram::Metrics* m) override { inc_.solver().context().metrics = m; }

  inc::IncrementalSolver& solver() noexcept { return inc_; }
  const inc::IncrementalSolver& solver() const noexcept { return inc_; }

 private:
  inc::IncrementalSolver inc_;
};

/// Restores an IncrementalEngine from an `sfcp-checkpoint v1` stream.  The
/// solve configuration — options, context, repair policy — is the caller's,
/// not the stream's, exactly as with IncrementalSolver::load.
std::unique_ptr<Engine> load_incremental_engine(std::istream& is,
                                                core::Options opt = core::Options::parallel(),
                                                pram::ExecutionContext ctx = {},
                                                inc::RepairPolicy policy = {});

/// What load_engine_checkpoint restored: the engine plus the registry name
/// detected from the stream's magic, so callers (fleet fault-in,
/// incremental_server `restore`) can report or validate the kind without
/// re-sniffing the bytes.
struct LoadedEngine {
  std::unique_ptr<Engine> engine;
  std::string_view kind;  ///< engines() registry name ("incremental", "sharded")
};

/// Restores whichever checkpointable engine wrote the stream, autodetected
/// from the 8-byte magic: the plain `sfcp-checkpoint v1` magic yields an
/// IncrementalEngine, the sharded magic a shard::ShardedEngine (with the
/// stream's shard count and assignment).  Throws std::runtime_error on an
/// unrecognized magic or malformed stream.
LoadedEngine load_engine_checkpoint(std::istream& is,
                                    core::Options opt = core::Options::parallel(),
                                    pram::ExecutionContext ctx = {});

// ---- engine registry -----------------------------------------------------

struct EngineInfo {
  std::string name;         ///< unique registry key
  std::string description;  ///< one-line human-readable summary
  std::function<std::unique_ptr<Engine>(graph::Instance, const core::Options&,
                                        const pram::ExecutionContext&)>
      make;
};

class EngineRegistry {
 public:
  std::span<const EngineInfo> all() const noexcept { return entries_; }
  std::vector<std::string> names() const;
  const EngineInfo* find(std::string_view name) const noexcept;

  /// Constructs the named engine; throws std::out_of_range naming the key
  /// when absent.
  std::unique_ptr<Engine> make(std::string_view name, graph::Instance inst,
                               const core::Options& opt = core::Options::parallel(),
                               const pram::ExecutionContext& ctx = {}) const;

  /// Registers (or, for an existing name, replaces) an entry.
  void add(EngineInfo info);

 private:
  std::vector<EngineInfo> entries_;
};

/// The process-wide engine registry, preloaded with "batch" and
/// "incremental".  Like sfcp::registry(), mutate only before spawning
/// concurrent users.
EngineRegistry& engines();

}  // namespace sfcp
