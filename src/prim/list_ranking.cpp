#include "prim/list_ranking.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "prim/hash_table.hpp"

namespace sfcp::prim {

namespace {

// Heads = nodes with no predecessor.  Every acyclic list has exactly one.
std::vector<u32> find_heads(std::span<const u32> next) {
  const std::size_t n = next.size();
  std::vector<u8> has_pred(n, 0);
  pram::parallel_for(0, n, [&](std::size_t i) {
    if (next[i] != kNone) has_pred[next[i]] = 1;  // common-CRCW write
  });
  return pack_index_if(n, [&](std::size_t i) { return !has_pred[i]; });
}

std::vector<u32> rank_sequential(std::span<const u32> next) {
  const std::size_t n = next.size();
  std::vector<u32> rank(n, 0);
  const std::vector<u32> heads = find_heads(next);
  std::vector<u32> chain;
  for (u32 h : heads) {
    chain.clear();
    for (u32 v = h; v != kNone; v = next[v]) chain.push_back(v);
    const u32 len = static_cast<u32>(chain.size());
    for (u32 i = 0; i < len; ++i) rank[chain[i]] = len - 1 - i;
  }
  pram::charge(n);
  return rank;
}

std::vector<u32> rank_pointer_jumping(std::span<const u32> next_in) {
  const std::size_t n = next_in.size();
  std::vector<u32> rank(n), next(next_in.begin(), next_in.end());
  if (n == 0) return rank;
  pram::parallel_for(0, n, [&](std::size_t i) { rank[i] = next[i] == kNone ? 0u : 1u; });
  std::vector<u32> rank2(n), next2(n);
  // After round k every pointer has jumped 2^k links, so ceil(log2 n)
  // rounds suffice for lists of length <= n.
  const int log_rounds = static_cast<int>(std::bit_width(n - 1)) + 1;
  for (int r = 0; r < log_rounds; ++r) {
    pram::parallel_for(0, n, [&](std::size_t i) {
      if (next[i] != kNone) {
        rank2[i] = rank[i] + rank[next[i]];
        next2[i] = next[next[i]];
      } else {
        rank2[i] = rank[i];
        next2[i] = kNone;
      }
    });
    rank.swap(rank2);
    next.swap(next2);
  }
  return rank;
}

std::vector<u32> rank_ruling_set(std::span<const u32> next) {
  const std::size_t n = next.size();
  std::vector<u32> rank(n, 0);
  if (n == 0) return rank;
  // Splitters: list heads plus a deterministic hash sample of ~n/gap nodes,
  // so segment lengths are O(gap) in expectation.
  const u64 gap = 64;
  std::vector<u8> is_splitter(n, 0);
  pram::parallel_for(0, n, [&](std::size_t i) {
    is_splitter[i] = (hash_u64(i) % gap) == 0 ? 1 : 0;
  });
  for (u32 h : find_heads(next)) is_splitter[h] = 1;
  const std::vector<u32> splitters = pack_index(is_splitter);
  const std::size_t s = splitters.size();
  std::vector<u32> splitter_id(n, kNone);
  pram::parallel_for(0, s, [&](std::size_t j) { splitter_id[splitters[j]] = static_cast<u32>(j); });
  // Walk each segment: record the hop offset of every node from its owning
  // splitter, the segment length, and the successor splitter.
  std::vector<u32> seg_len(s, 0);
  std::vector<u32> seg_next(s, kNone);
  std::vector<u32> local_off(n, 0);
  pram::parallel_for(0, s, [&](std::size_t j) {
    u32 v = splitters[j];
    u32 hops = 0;
    for (;;) {
      local_off[v] = hops;
      const u32 w = next[v];
      if (w == kNone) {
        seg_len[j] = hops;  // v is the list end: distance(v, end) == 0
        break;
      }
      if (is_splitter[w]) {
        seg_len[j] = hops + 1;
        seg_next[j] = splitter_id[w];
        break;
      }
      ++hops;
      v = w;
    }
  });
  // Rank the contracted splitter list sequentially (expected size n/gap).
  // seg_rank[j] = hops from the END of segment j to the list end.
  std::vector<u32> seg_rank(s, 0);
  {
    std::vector<u32> indeg(s, 0);
    for (std::size_t j = 0; j < s; ++j) {
      if (seg_next[j] != kNone) ++indeg[seg_next[j]];
    }
    std::vector<u32> chain;
    for (std::size_t j = 0; j < s; ++j) {
      if (indeg[j] != 0) continue;
      chain.clear();
      for (u32 c = static_cast<u32>(j); c != kNone; c = seg_next[c]) chain.push_back(c);
      u32 dist = 0;
      for (std::size_t t = chain.size(); t-- > 0;) {
        seg_rank[chain[t]] = dist;
        dist += seg_len[chain[t]];
      }
    }
    pram::charge(2 * s);
  }
  // Expand: distance(v, end) = seg_rank[owner] + seg_len[owner] - off(v).
  pram::parallel_for(0, s, [&](std::size_t j) {
    u32 v = splitters[j];
    const u32 base = seg_rank[j] + seg_len[j];
    for (;;) {
      rank[v] = base - local_off[v];
      const u32 w = next[v];
      if (w == kNone || is_splitter[w]) break;
      v = w;
    }
  });
  return rank;
}

}  // namespace

std::vector<u32> list_rank(std::span<const u32> next, ListRankStrategy strategy) {
  switch (strategy) {
    case ListRankStrategy::Sequential:
      return rank_sequential(next);
    case ListRankStrategy::PointerJumping:
      return rank_pointer_jumping(next);
    case ListRankStrategy::RulingSet:
      return rank_ruling_set(next);
  }
  return rank_sequential(next);
}

}  // namespace sfcp::prim
