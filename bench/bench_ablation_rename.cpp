// A1 — ablation of the pair-renaming strategy (DESIGN.md §4).
//
// Two renamings realize the paper's label assignments:
//   * rename_sorted — order-preserving dense ranks via stable integer sort
//                     (required inside m.s.p. / string sorting, where the
//                     recursion depends on rank ORDER; the O(n log log n)
//                     term lives here)
//   * rename_hashed — arbitrary-CRCW BB-table simulation via the concurrent
//                     hash table (sufficient for Algorithm partition, where
//                     only equality of labels matters; O(n) expected work)
// The ablation quantifies what the BB-table trick buys over sorting.
#include <benchmark/benchmark.h>

#include "prim/integer_sort.hpp"
#include "prim/merge.hpp"
#include "prim/rename.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

std::vector<u64> make_keys(std::size_t n, u32 distinct, util::Rng& rng) {
  std::vector<u64> keys(n);
  for (auto& k : keys) k = pack_pair(rng.below(distinct), rng.below(distinct));
  return keys;
}

void BM_RenameSorted(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u32 distinct = static_cast<u32>(state.range(1));
  util::Rng rng(n + distinct);
  const auto keys = make_keys(n, distinct, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::rename_sorted(keys));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel("distinct=" + std::to_string(distinct));
}
BENCHMARK(BM_RenameSorted)->ArgsProduct({{1 << 14, 1 << 18, 1 << 21}, {16, 1 << 10, 1 << 20}});

void BM_RenameHashed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u32 distinct = static_cast<u32>(state.range(1));
  util::Rng rng(n + distinct);
  const auto keys = make_keys(n, distinct, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::rename_hashed(keys));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel("distinct=" + std::to_string(distinct));
}
BENCHMARK(BM_RenameHashed)->ArgsProduct({{1 << 14, 1 << 18, 1 << 21}, {16, 1 << 10, 1 << 20}});

// Companion: the merge-path merge sort vs the radix sort underlying
// rename_sorted, on the same key distribution — quantifies why the library
// keeps the comparison sort only for the O(n/log n) residues.
void BM_SortRadix(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto keys = make_keys(n, 1 << 20, rng);
  for (auto _ : state) {
    auto copy = keys;
    prim::radix_sort(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_SortRadix)->Range(1 << 14, 1 << 21);

void BM_SortMergePath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto keys = make_keys(n, 1 << 20, rng);
  for (auto _ : state) {
    auto copy = keys;
    prim::parallel_merge_sort(std::span<u64>(copy));
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_SortMergePath)->Range(1 << 14, 1 << 21);

}  // namespace
