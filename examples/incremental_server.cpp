// incremental_server — a REPL-style serving loop that now talks `sfcp-wire
// v1` to an in-process serve::Server: load or generate an instance once,
// pick an engine from sfcp::engines() ("incremental" repairs per edit,
// "batch" re-solves per epoch, "sharded" splits by component), and the REPL
// drives edits and queries through a serve::Client — the exact same frames
// (and the exact same command dispatcher, serve/repl.hpp) that `sfcp_cli
// connect` uses against a remote server.  Pipe a script in, or drive it
// interactively:
//
//   $ ./incremental_server
//   > gen random 100000 42
//   n=100000 engine=incremental classes=214 epoch=0
//   > setb 17 3
//   applied 1 edit classes=215 epoch=1
//   > classof 17
//   class(17) = 214
//   > members 214
//   class 214 (1 node): 17
//   > checkpoint warm.ckpt
//   checkpoint written to warm.ckpt at epoch 1
//
// Lifecycle commands (local): gen <random|permutation|mergeable|longtail> <n> [seed]
//           engine <incremental|batch|sharded>  (selects engine; restarts server)
//           load <path>            (text or binary instance, autodetected)
//           save <path> [binary]   (instance only, from the local mirror)
//           restore <path>         (restart warm from an sfcp-checkpoint v1)
//           stream <localized|uniform|churn> <count> [seed]
//           help | quit
// Serving commands (over the wire — serve/repl.hpp): setf, setb, edits,
//           classof/query, members, blocks, view, stats, checkpoint,
//           subscribe, await.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "engine.hpp"
#include "prof/profile.hpp"
#include "serve/client.hpp"
#include "serve/repl.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

using namespace sfcp;

namespace {

void print_lifecycle_help() {
  std::cout << "lifecycle commands (local):\n"
               "  gen <random|permutation|mergeable|longtail> <n> [seed]\n"
               "  engine <incremental|batch|sharded>  select engine kind (restarts server)\n"
               "  load <path>              load instance (text/binary autodetect)\n"
               "  save <path> [binary]     save current instance (local mirror)\n"
               "  restore <path>           restart warm from a checkpoint\n"
               "  stream <localized|uniform|churn> <count> [seed]\n"
               "  help\n";
}

std::optional<graph::Instance> generate(const std::string& kind, std::size_t n, u64 seed) {
  util::Rng rng(seed);
  if (kind == "random") return util::random_function(n, 4, rng);
  if (kind == "permutation") return util::random_permutation(n, 4, rng);
  if (kind == "mergeable") return util::mergeable(n, 4, rng);
  if (kind == "longtail") return util::long_tail(n, std::max<std::size_t>(4, n / 16), 4, rng);
  return std::nullopt;
}

std::optional<util::EditMix> parse_mix(const std::string& name) {
  if (name == "localized") return util::EditMix::LocalizedHotspot;
  if (name == "uniform") return util::EditMix::Uniform;
  if (name == "churn") return util::EditMix::CycleChurn;
  return std::nullopt;
}

/// The in-process server + its event-loop thread + the REPL's client, plus
/// the local instance mirror that keeps `save` and `stream` working without
/// an instance-download frame.
struct Session {
  graph::Instance mirror;
  std::unique_ptr<serve::Server> server;
  std::thread loop;
  serve::Client client;

  bool running() const { return server != nullptr; }

  void stop() {
    if (!server) return;
    client.close();
    server->stop();
    loop.join();
    server.reset();
  }

  /// Boots a server around `engine` and connects the REPL client to it.
  void start(std::unique_ptr<Engine> engine) {
    stop();
    mirror = graph::Instance(engine->instance());
    server = std::make_unique<serve::Server>(std::move(engine));
    loop = std::thread([s = server.get()] { s->run(); });
    try {
      client = serve::Client::connect("127.0.0.1", server->port());
    } catch (...) {
      server->stop();
      loop.join();
      server.reset();
      throw;
    }
  }

  /// Keeps the mirror in lock-step with edits the server accepted.
  void mirror_edits(std::span<const inc::Edit> edits) {
    for (const inc::Edit& e : edits) inc::apply_raw(e, mirror.f, mirror.b);
  }
};

}  // namespace

int main() {
  // Process-default profiler: in SFCP_PROFILE builds the server loop thread
  // records serve/inc phases, so the REPL's `stats` (journal fsync /
  // epoch-apply lines) and `profile` commands have data.  Inert otherwise.
  prof::Profiler profiler;
  prof::ScopedProfiler prof_guard(profiler);
  Session session;
  std::string engine_kind = "incremental";
  util::Rng stream_seed_rng(0xd1ce);

  const auto ensure = [&]() -> bool {
    if (!session.running()) std::cout << "no instance loaded (use gen or load)\n";
    return session.running();
  };
  const auto headline = [&]() {
    const serve::Client::ViewInfo v = session.client.view();
    std::cout << "n=" << v.n << " engine=" << engine_kind << " classes=" << v.num_classes
              << " epoch=" << v.epoch << "\n";
  };
  const auto adopt = [&](graph::Instance inst) {
    session.start(engines().make(engine_kind, std::move(inst)));
    headline();
  };

  serve::ReplHooks hooks;
  hooks.on_edits = [&](std::span<const inc::Edit> edits) { session.mirror_edits(edits); };

  std::cout << "SFCP serving REPL (sfcp-wire v1 over an in-process server) — "
               "'help' for commands\n";
  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd.empty() || cmd[0] == '#') continue;

    // Serving commands go through the shared wire dispatcher first.
    if (session.running()) {
      const serve::ReplResult r =
          serve::run_serve_command(session.client, line, std::cout, hooks);
      if (r == serve::ReplResult::Quit) break;
      if (r == serve::ReplResult::Handled) continue;
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    }

    try {
      if (cmd == "help") {
        print_lifecycle_help();
        serve::print_serve_help(std::cout);
      } else if (cmd == "engine") {
        std::string kind;
        ss >> kind;
        if (!engines().find(kind)) {
          std::cout << "unknown engine '" << kind << "' (have:";
          for (const auto& name : engines().names()) std::cout << ' ' << name;
          std::cout << ")\n";
          continue;
        }
        engine_kind = kind;
        if (session.running()) {
          adopt(graph::Instance(session.mirror));  // re-adopt under the new kind
        } else {
          std::cout << "engine=" << engine_kind << " (takes effect on gen/load)\n";
        }
      } else if (cmd == "gen") {
        std::string kind;
        std::size_t n = 0;
        u64 seed = 1;
        ss >> kind >> n;
        ss >> seed;
        auto inst = generate(kind, n, seed);
        if (!inst) {
          std::cout << "unknown kind '" << kind << "'\n";
        } else {
          adopt(std::move(*inst));
        }
      } else if (cmd == "load") {
        std::string path;
        ss >> path;
        adopt(util::load_instance_file(path));
      } else if (cmd == "save") {
        if (!ensure()) continue;
        std::string path, mode;
        ss >> path >> mode;
        util::save_instance_file(path, session.mirror,
                                 mode == "binary" ? util::InstanceFormat::Binary
                                                  : util::InstanceFormat::Text);
        std::cout << "saved " << path << "\n";
      } else if (cmd == "restore") {
        std::string path;
        ss >> path;
        std::ifstream is(path, std::ios::binary);
        if (!is) {
          std::cout << "cannot open " << path << "\n";
          continue;
        }
        // Autodetects plain vs. sharded checkpoints from the magic.
        LoadedEngine loaded = load_engine_checkpoint(is);
        engine_kind = std::string(loaded.kind);
        session.start(std::move(loaded.engine));
        std::cout << "restored ";
        headline();
      } else if (cmd == "stream") {
        if (!ensure()) continue;
        std::string mix_name;
        std::size_t count = 0;
        u64 seed = stream_seed_rng.next();
        ss >> mix_name >> count;
        ss >> seed;
        const auto mix = parse_mix(mix_name);
        if (!mix) {
          std::cout << "unknown mix '" << mix_name << "'\n";
          continue;
        }
        util::Rng rng(seed);
        const auto stream = util::random_edit_stream(session.mirror, count, *mix, 6, rng);
        const u64 epoch = session.client.apply(stream);
        session.mirror_edits(stream);
        const serve::Client::ViewInfo v = session.client.view();
        std::cout << "applied " << stream.size() << " edit(s) classes=" << v.num_classes
                  << " epoch=" << epoch << "\n";
      } else {
        std::cout << "unknown command '" << cmd << "' — try 'help'\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  session.stop();
  return 0;
}
