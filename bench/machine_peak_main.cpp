// bench_machine_peak — a tiny STREAM-triad-style probe measuring this
// machine's achievable memory bandwidth, the denominator of the per-phase
// roofline tools/profile_report.py prints.
//
//   ./bench_machine_peak [--n <doubles>] [--reps <k>] [--json <path>]
//
// Kernel: a[i] = b[i] + s * c[i] over three arrays sized well past any LLC
// (default 8 Mi doubles each, 192 MiB total), best-of-k after one untimed
// warm pass.  Bytes are counted the STREAM way: 24 per element (two reads,
// one write; write-allocate traffic is not charged).  With --json the
// result lands in the same JSONL stream as the benches — name
// "machine_peak", n = bytes per pass — plus a one-node profile object, so
// profile_report.py picks the peak up from the file automatically.
//
// Deliberately NOT a google-benchmark target (and named so the bench_*.cpp
// glob skips it): it must stay runnable in seconds inside CI and link only
// the library.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "pram/config.hpp"
#include "prof/clock.hpp"
#include "prof/profile.hpp"
#include "util/bench_json.hpp"

int main(int argc, char** argv) {
  sfcp::util::BenchJson json(argc, argv);
  std::size_t n = std::size_t{1} << 23;  // 8 Mi doubles per array
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--n <doubles>] [--reps <k>] [--json <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n < 1024) n = 1024;
  if (reps < 1) reps = 1;

  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const double s = 3.0;
  const sfcp::u64 bytes_per_pass = static_cast<sfcp::u64>(n) * 24;  // STREAM counting

  sfcp::u64 best_ns = ~sfcp::u64{0};
  for (int r = 0; r <= reps; ++r) {  // rep 0 warms (page faults, pool spin-up)
    const sfcp::u64 t0 = sfcp::prof::now_ns();
#pragma omp parallel for schedule(static)
    for (long long i = 0; i < static_cast<long long>(n); ++i) {
      a[i] = b[i] + s * c[i];
    }
    const sfcp::u64 t1 = sfcp::prof::now_ns();
    if (r > 0 && t1 - t0 < best_ns) best_ns = t1 - t0;
  }

  const double best_ms = static_cast<double>(best_ns) / 1e6;
  const double gbps = static_cast<double>(bytes_per_pass) / static_cast<double>(best_ns);
  std::printf("machine peak (STREAM triad): %.2f GB/s  (n=%zu doubles x3, %d threads, "
              "best of %d, %.3f ms/pass, checksum %.1f)\n",
              gbps, n, sfcp::pram::threads(), reps, best_ms, a[n / 2]);

  if (json.enabled()) {
    sfcp::prof::ProfileTree tree;
    tree.phases.push_back(
        {"machine_peak/triad", best_ns, 1, 2 * static_cast<sfcp::u64>(n), bytes_per_pass});
    json.record("machine_peak", bytes_per_pass, "triad", sfcp::pram::threads(), best_ms,
                tree);
  }
  return 0;
}
