#include "core/multi_function.hpp"

#include <deque>
#include <stdexcept>
#include <string>

#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"

namespace sfcp::core {

void validate(const MultiInstance& inst) {
  const std::size_t n = inst.size();
  if (inst.f.empty()) throw std::invalid_argument("MultiInstance: needs >= 1 function");
  for (const auto& f : inst.f) {
    if (f.size() != n) {
      throw std::invalid_argument("MultiInstance: function size mismatch");
    }
    for (const u32 y : f) {
      if (y >= n) throw std::invalid_argument("MultiInstance: f maps outside [0, n)");
    }
  }
}

MultiResult solve_multi_moore(const MultiInstance& inst) {
  validate(inst);
  const std::size_t n = inst.size();
  MultiResult out;
  if (n == 0) return out;
  auto cur = prim::canonicalize_labels(inst.b);
  std::vector<u32> q = std::move(cur.labels);
  u32 classes = cur.num_classes;
  for (;;) {
    ++out.rounds;
    // One Moore round: new label determined by (q, q o f_1, ..., q o f_k),
    // folded with k successive pair renamings.
    std::vector<u32> acc = q;
    for (const auto& f : inst.f) {
      std::vector<u32> img(n);
      pram::parallel_for(0, n, [&](std::size_t x) { img[x] = q[f[x]]; });
      auto renamed = prim::rename_pairs_sorted(acc, img);
      acc = std::move(renamed.labels);
    }
    const u32 new_classes = prim::canonicalize_labels(acc).num_classes;
    if (new_classes == classes) break;
    q = std::move(acc);
    classes = new_classes;
  }
  auto canon = prim::canonicalize_labels(q);
  out.q = std::move(canon.labels);
  out.num_blocks = canon.num_classes;
  return out;
}

MultiResult solve_multi_hopcroft(const MultiInstance& inst) {
  validate(inst);
  const std::size_t n = inst.size();
  const std::size_t k = inst.letters();
  MultiResult out;
  if (n == 0) return out;
  // Per-letter preimage CSR.
  std::vector<std::vector<u32>> pre_off(k), pre(k);
  for (std::size_t a = 0; a < k; ++a) {
    pre_off[a].assign(n + 2, 0);
    for (std::size_t x = 0; x < n; ++x) ++pre_off[a][inst.f[a][x] + 1];
    for (std::size_t v = 1; v <= n; ++v) pre_off[a][v] += pre_off[a][v - 1];
    pre[a].resize(n);
    std::vector<u32> cursor(pre_off[a].begin(), pre_off[a].end() - 1);
    for (u32 x = 0; x < n; ++x) pre[a][cursor[inst.f[a][x]]++] = x;
  }
  auto init = prim::canonicalize_labels(inst.b);
  std::vector<u32> block_of = std::move(init.labels);
  std::vector<std::vector<u32>> members(init.num_classes);
  for (u32 x = 0; x < n; ++x) members[block_of[x]].push_back(x);
  // Worklist of (block, letter).
  std::deque<std::pair<u32, u32>> worklist;
  std::vector<std::vector<u8>> in_worklist(k);
  for (std::size_t a = 0; a < k; ++a) in_worklist[a].assign(members.size(), 1);
  for (u32 b = 0; b < members.size(); ++b) {
    for (u32 a = 0; a < k; ++a) worklist.emplace_back(b, a);
  }
  std::vector<std::vector<u32>> marked_of(members.size());
  std::vector<u8> flag(n, 0);
  u64 work = 0;
  while (!worklist.empty()) {
    const auto [splitter, letter] = worklist.front();
    worklist.pop_front();
    in_worklist[letter][splitter] = 0;
    std::vector<u32> touched;
    for (const u32 v : members[splitter]) {
      for (u32 i = pre_off[letter][v]; i < pre_off[letter][v + 1]; ++i) {
        const u32 x = pre[letter][i];
        const u32 b = block_of[x];
        if (marked_of[b].empty()) touched.push_back(b);
        marked_of[b].push_back(x);
        ++work;
      }
    }
    for (const u32 b : touched) {
      if (marked_of[b].size() == members[b].size()) {
        marked_of[b].clear();
        continue;
      }
      const u32 nb = static_cast<u32>(members.size());
      std::vector<u32> marked = std::move(marked_of[b]);
      marked_of[b].clear();
      std::vector<u32> unmarked;
      unmarked.reserve(members[b].size() - marked.size());
      for (const u32 x : marked) flag[x] = 1;
      for (const u32 x : members[b]) {
        if (!flag[x]) unmarked.push_back(x);
      }
      for (const u32 x : marked) flag[x] = 0;
      std::vector<u32>* small = marked.size() <= unmarked.size() ? &marked : &unmarked;
      std::vector<u32>* large = marked.size() <= unmarked.size() ? &unmarked : &marked;
      members[b] = std::move(*large);
      members.push_back(std::move(*small));
      marked_of.emplace_back();
      for (const u32 x : members[nb]) block_of[x] = nb;
      for (std::size_t a = 0; a < k; ++a) {
        in_worklist[a].push_back(0);
        if (in_worklist[a][b]) {
          worklist.emplace_back(nb, static_cast<u32>(a));
          in_worklist[a][nb] = 1;
        } else {
          const u32 smaller = members[nb].size() <= members[b].size() ? nb : b;
          worklist.emplace_back(smaller, static_cast<u32>(a));
          in_worklist[a][smaller] = 1;
        }
      }
      ++out.rounds;
    }
  }
  pram::charge(work);
  auto canon = prim::canonicalize_labels(block_of);
  out.q = std::move(canon.labels);
  out.num_blocks = canon.num_classes;
  return out;
}

}  // namespace sfcp::core
