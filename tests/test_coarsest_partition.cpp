// Integration tests for the full Theorem 5.1 pipeline: all strategy
// combinations, shaped instances, and determinism.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::Options;
using core::Result;
using core::solve;
using core::solve_naive_refinement;

TEST(Solve, EmptyInstance) {
  graph::Instance inst;
  const Result r = solve(inst);
  EXPECT_EQ(r.num_blocks, 0u);
  EXPECT_TRUE(r.q.empty());
}

TEST(Solve, ThrowsOnMalformedInput) {
  graph::Instance inst;
  inst.f = {3};
  inst.b = {0};
  EXPECT_THROW(solve(inst), std::invalid_argument);
}

TEST(Solve, SingleSelfLoop) {
  graph::Instance inst{{0}, {7}};
  const Result r = solve(inst);
  EXPECT_EQ(r.num_blocks, 1u);
  EXPECT_EQ(r.q[0], 0u);
  EXPECT_EQ(r.num_cycles, 1u);
}

TEST(Solve, LabelsAreCanonical) {
  util::Rng rng(1201);
  const auto inst = util::random_function(500, 3, rng);
  const Result r = solve(inst);
  // First-occurrence canonical labels: each new label is the next integer.
  u32 next = 0;
  for (const u32 q : r.q) {
    ASSERT_LE(q, next);
    if (q == next) ++next;
  }
  EXPECT_EQ(next, r.num_blocks);
}

TEST(Solve, ParallelAndSequentialPresetsIdentical) {
  util::Rng rng(1203);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(1 + rng.below(2000), 1 + rng.below_u32(6), rng);
    const Result par = solve(inst, Options::parallel());
    const Result seq = solve(inst, Options::sequential());
    EXPECT_EQ(par.q, seq.q) << "iter " << iter;
    EXPECT_EQ(par.num_blocks, seq.num_blocks);
  }
}

TEST(Solve, MatchesAllBaselines) {
  util::Rng rng(1207);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(1 + rng.below(1500), 1 + rng.below_u32(4), rng);
    const Result r = solve(inst);
    const auto naive = solve_naive_refinement(inst);
    EXPECT_EQ(r.q, naive.q) << "canonical labellings must be identical";
    EXPECT_EQ(r.q, core::solve_hopcroft(inst).q);
    EXPECT_EQ(r.q, core::solve_label_doubling(inst).q);
  }
}

TEST(Solve, Idempotence) {
  // Running SFCP with B := Q returns Q itself (Q is the fixpoint).
  util::Rng rng(1213);
  const auto inst = util::random_function(800, 3, rng);
  const Result r1 = solve(inst);
  graph::Instance again{inst.f, r1.q};
  const Result r2 = solve(again);
  EXPECT_EQ(r1.q, r2.q);
}

TEST(Solve, CoarserBGivesCoarserQ) {
  util::Rng rng(1217);
  const auto inst = util::random_function(600, 4, rng);
  graph::Instance coarser = inst;
  for (auto& b : coarser.b) b /= 2;  // merge label pairs
  EXPECT_LE(solve(coarser).num_blocks, solve(inst).num_blocks);
}

TEST(Solve, SingletonBlocksWhenAllBLabelsDistinct) {
  graph::Instance inst;
  const std::size_t n = 100;
  inst.f.resize(n);
  inst.b.resize(n);
  util::Rng rng(1219);
  for (u32 x = 0; x < n; ++x) {
    inst.f[x] = rng.below_u32(n);
    inst.b[x] = x;  // all distinct
  }
  EXPECT_EQ(solve(inst).num_blocks, n);
}

TEST(Solve, StatsAreConsistent) {
  util::Rng rng(1223);
  const auto inst = util::random_function(3000, 3, rng);
  const Result r = solve(inst);
  EXPECT_EQ(r.cycle_nodes + r.kept_tree_nodes + r.residual_tree_nodes, 3000u);
  EXPECT_GE(r.num_cycles, 1u);
  EXPECT_GE(r.cycle_nodes, r.num_cycles);
}

struct NamedOptions {
  const char* name;
  Options opt;
};

std::vector<NamedOptions> strategy_matrix() {
  std::vector<NamedOptions> out;
  for (const auto cd : {graph::CycleDetectStrategy::Sequential,
                        graph::CycleDetectStrategy::FunctionPowers,
                        graph::CycleDetectStrategy::EulerTour}) {
    for (const auto msp : {strings::MspStrategy::Booth, strings::MspStrategy::Simple,
                           strings::MspStrategy::Efficient}) {
      for (const auto backend : {core::RenameBackend::Hashed, core::RenameBackend::Sorted}) {
        Options o = Options::parallel();
        o.cycle_detect = cd;
        o.cycle_labeling.msp = msp;
        o.cycle_labeling.partition_backend = backend;
        out.push_back({"combo", o});
      }
    }
  }
  return out;
}

TEST(Solve, FullStrategyMatrixAgrees) {
  util::Rng rng(1229);
  const auto inst = util::random_function(700, 2, rng);
  const Result ref = solve(inst, Options::sequential());
  for (const auto& [name, opt] : strategy_matrix()) {
    const Result r = solve(inst, opt);
    EXPECT_EQ(r.q, ref.q);
  }
}

class SolveShapes : public ::testing::TestWithParam<int> {};

TEST_P(SolveShapes, ShapedInstancesMatchOracle) {
  util::Rng rng(1300 + GetParam());
  graph::Instance inst;
  switch (GetParam()) {
    case 0: inst = util::random_permutation(1200, 3, rng); break;
    case 1: inst = util::long_tail(1200, 10, 2, rng); break;
    case 2: inst = util::bushy(1200, 5, 4, 3, rng); break;
    case 3: inst = util::mergeable(1200, 4, rng); break;
    case 4: inst = util::equal_cycles(30, 40, 4, 3, rng); break;
    case 5: inst = util::long_tail(1200, 1, 2, rng); break;   // self-loop + path
    case 6: inst = util::equal_cycles(1, 1024, 1, 2, rng); break;  // one big cycle
    default: inst = util::random_function(1200, 3, rng); break;
  }
  const Result r = solve(inst);
  const auto report = core::verify_solution(inst, r.q);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, SolveShapes, ::testing::Range(0, 8));

TEST(Solve, LargeRandomInstance) {
  util::Rng rng(1301);
  const auto inst = util::random_function(200000, 4, rng);
  const Result r = solve(inst);
  EXPECT_TRUE(core::is_refinement(r.q, inst.b));
  EXPECT_TRUE(core::is_stable(r.q, inst.f));
  EXPECT_EQ(r.q, solve_naive_refinement(inst).q);
}

}  // namespace
}  // namespace sfcp
