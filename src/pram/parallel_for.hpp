#pragma once
// Parallel loop wrappers realizing PRAM rounds on OpenMP or a WorkerPool.
//
// `parallel_for(lo, hi, body)` runs body(i) for i in [lo, hi) and counts one
// synchronous round of (hi - lo) operations.  Small ranges run sequentially
// (still counted) to avoid fork/join overhead dominating measurements.
//
// When the installed ExecutionContext carries a pram::WorkerPool, every
// loop here dispatches to the pool's persistent workers instead of forking
// an OpenMP team — that is the serving path, where many small rounds per
// epoch make team startup the dominant cost.  Without a pool the OpenMP
// fork-join realization below is used, unchanged.  On a pool WORKER thread
// `threads()` is pinned to 1 (config.hpp), so nested rounds inside a
// pooled round run serially by construction: no oversubscription, and
// work/depth charges match a threads=1 session exactly.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include <omp.h>

#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "pram/worker_pool.hpp"

namespace sfcp::pram {

/// Number of blocks `parallel_blocks` will use for an input of size n.
inline int num_blocks(std::size_t n) noexcept {
  if (n < grain() || threads() == 1) return 1;
  const std::size_t by_grain = (n + grain() - 1) / grain();
  return static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads()), by_grain));
}

/// [lo, hi) range of block b out of nb over n elements.
inline std::pair<std::size_t, std::size_t> block_range(std::size_t n, int nb, int b) noexcept {
  const std::size_t chunk = (n + static_cast<std::size_t>(nb) - 1) / static_cast<std::size_t>(nb);
  const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(b));
  const std::size_t hi = std::min(n, lo + chunk);
  return {lo, hi};
}

template <typename Body>
void parallel_for(std::size_t lo, std::size_t hi, Body&& body) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  charge_round(n);
  const int nt = threads();
  if (n < grain() || nt == 1) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    return;
  }
  if (WorkerPool* pool = session_pool()) {
    const int nb = num_blocks(n);
    pool->fan(static_cast<std::size_t>(nb), [&](std::size_t b) {
      const auto [blo, bhi] = block_range(n, nb, static_cast<int>(b));
      for (std::size_t i = lo + blo; i < lo + bhi; ++i) body(i);
    });
    return;
  }
  // OpenMP workers are pool threads with their own thread-locals: rebind the
  // caller's ExecutionContext so charging inside `body` hits its sink.
  const ExecutionContext* ctx = current_context();
#pragma omp parallel num_threads(nt)
  {
    ScopedContext rebind(ctx);
#pragma omp for schedule(static)
    for (std::int64_t i = static_cast<std::int64_t>(lo); i < static_cast<std::int64_t>(hi); ++i) {
      body(static_cast<std::size_t>(i));
    }
  }
}

/// Blocked variant: body(block_index, lo, hi) — one contiguous block per
/// worker, the shape used by scan/sort-style two-pass kernels.  Every block
/// in [0, num_blocks(n)) runs exactly once regardless of how many threads
/// the runtime actually delivers.
template <typename Body>
void parallel_blocks(std::size_t n, Body&& body) {
  if (n == 0) return;
  const int nb = num_blocks(n);
  charge_round(n);
  if (nb == 1) {
    body(0, std::size_t{0}, n);
    return;
  }
  if (WorkerPool* pool = session_pool()) {
    pool->fan(static_cast<std::size_t>(nb), [&](std::size_t b) {
      const auto [lo, hi] = block_range(n, nb, static_cast<int>(b));
      if (lo < hi) body(static_cast<int>(b), lo, hi);
    });
    return;
  }
  const ExecutionContext* ctx = current_context();
#pragma omp parallel num_threads(nb)
  {
    ScopedContext rebind(ctx);
    // The runtime may deliver FEWER than nb threads (OMP_THREAD_LIMIT,
    // omp_set_dynamic, nested regions).  Workshare the block ids instead of
    // binding block b to thread b, so a short team still runs every block.
#pragma omp for schedule(static)
    for (int b = 0; b < nb; ++b) {
      const auto [lo, hi] = block_range(n, nb, b);
      if (lo < hi) body(b, lo, hi);
    }
  }
}

/// Task-shaped fan: body(i) for i in [0, count), one task per index with
/// dynamic assignment — the shape of "repair these k dirty shards" where
/// per-item cost is wildly uneven (unlike the element loops above).  Counts
/// one round of `count` operations.  Serial when count or the session width
/// is 1, or on a pool worker (nested fans are one PRAM processor).
template <typename Body>
void parallel_fan(std::size_t count, Body&& body) {
  if (count == 0) return;
  charge_round(count);
  const int nt = threads();
  if (count == 1 || nt == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (WorkerPool* pool = session_pool()) {
    pool->fan(count, body);
    return;
  }
  const ExecutionContext* ctx = current_context();
  const int team = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(nt), count));
#pragma omp parallel num_threads(team)
  {
    ScopedContext rebind(ctx);
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
      body(static_cast<std::size_t>(i));
    }
  }
}

}  // namespace sfcp::pram
