// E5 / A1 — Algorithm partition (Lemma 3.11): O(n)-operation stride-doubling
// grouping of k equal-length strings vs the O(nk) all-pairs baseline, and
// the hashed (BB-table) vs sorted renaming ablation.
#include <benchmark/benchmark.h>

#include "core/cycle_labeling.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

std::vector<u32> make_strings(std::size_t k, std::size_t L, u32 patterns, util::Rng& rng) {
  std::vector<std::vector<u32>> pats(patterns);
  for (auto& p : pats) {
    p.resize(L);
    for (auto& c : p) c = rng.below_u32(4);
  }
  std::vector<u32> flat(k * L);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& p = pats[rng.below(patterns)];
    std::copy(p.begin(), p.end(), flat.begin() + static_cast<std::ptrdiff_t>(i * L));
  }
  return flat;
}

// All-pairs comparison baseline the paper mentions: O(1) time, O(nk) ops.
std::vector<u32> partition_all_pairs(const std::vector<u32>& flat, std::size_t k, std::size_t L) {
  std::vector<u32> rep(k);
  for (std::size_t i = 0; i < k; ++i) {
    rep[i] = static_cast<u32>(i);
    for (std::size_t j = 0; j < i; ++j) {
      if (std::equal(flat.begin() + static_cast<std::ptrdiff_t>(i * L),
                     flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * L),
                     flat.begin() + static_cast<std::ptrdiff_t>(j * L))) {
        rep[i] = rep[j];
        break;
      }
    }
  }
  return rep;
}

void BM_PartitionDoubling(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t L = static_cast<std::size_t>(state.range(1));
  const auto backend = static_cast<core::RenameBackend>(state.range(2));
  util::Rng rng(k * L);
  const auto flat = make_strings(k, L, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::partition_equal_strings(flat, k, L, backend));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(k * L));
  state.SetLabel(backend == core::RenameBackend::Hashed ? "hashed_bb" : "sorted");
}
BENCHMARK(BM_PartitionDoubling)
    ->ArgsProduct({{1 << 6, 1 << 10, 1 << 13}, {16, 128, 1024}, {0, 1}});

void BM_PartitionAllPairs(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t L = static_cast<std::size_t>(state.range(1));
  util::Rng rng(k * L);
  const auto flat = make_strings(k, L, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_all_pairs(flat, k, L));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(k * L));
}
BENCHMARK(BM_PartitionAllPairs)->ArgsProduct({{1 << 6, 1 << 10}, {16, 128}});

}  // namespace
