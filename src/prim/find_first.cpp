#include "prim/find_first.hpp"

namespace sfcp::prim {

u32 find_first_set(std::span<const u8> flags) {
  return find_first_if(0, flags.size(), [&](std::size_t i) { return flags[i] != 0; });
}

}  // namespace sfcp::prim
