// Unit tests for lexicographic string sorting (Lemma 3.8): the paper's
// parallel fold-and-rank algorithm against std::stable_sort and MSD radix.
#include <gtest/gtest.h>

#include <algorithm>

#include "strings/string_sort.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::compare_spans;
using strings::make_string_list;
using strings::sort_strings;
using strings::StringList;
using strings::StringSortStrategy;

std::vector<std::vector<u32>> materialize(const StringList& list, const std::vector<u32>& order) {
  std::vector<std::vector<u32>> out;
  out.reserve(order.size());
  for (const u32 i : order) {
    const auto v = list.view(i);
    out.emplace_back(v.begin(), v.end());
  }
  return out;
}

TEST(CompareSpans, Basics) {
  std::vector<u32> a{1, 2}, b{1, 2, 3}, c{1, 3};
  EXPECT_EQ(compare_spans(a, a), 0);
  EXPECT_LT(compare_spans(a, b), 0);  // proper prefix is smaller
  EXPECT_GT(compare_spans(b, a), 0);
  EXPECT_LT(compare_spans(a, c), 0);
  EXPECT_GT(compare_spans(c, b), 0);
}

TEST(StringSort, EmptyList) {
  StringList list;
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_TRUE(sort_strings(list, strat).empty());
  }
}

TEST(StringSort, SingleString) {
  const auto list = make_string_list({{3, 1, 2}});
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_EQ(sort_strings(list, strat), (std::vector<u32>{0}));
  }
}

TEST(StringSort, KnownSmallCase) {
  const auto list = make_string_list({{2, 1}, {1}, {1, 2}, {1, 1, 9}, {2}});
  // sorted: (1) < (1,1,9) < (1,2) < (2) < (2,1)
  const std::vector<u32> expected{1, 3, 2, 4, 0};
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_EQ(sort_strings(list, strat), expected) << "strategy " << static_cast<int>(strat);
  }
}

TEST(StringSort, DuplicatesTieBreakByIndex) {
  const auto list = make_string_list({{5, 5}, {5, 5}, {5}, {5, 5}});
  const std::vector<u32> expected{2, 0, 1, 3};
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_EQ(sort_strings(list, strat), expected) << "strategy " << static_cast<int>(strat);
  }
}

TEST(StringSort, AllUnitStrings) {
  const auto list = make_string_list({{4}, {2}, {9}, {2}, {1}});
  const std::vector<u32> expected{4, 1, 3, 0, 2};
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_EQ(sort_strings(list, strat), expected);
  }
}

TEST(StringSort, PrefixChains) {
  const auto list = make_string_list({{1, 1, 1, 1}, {1}, {1, 1}, {1, 1, 1}});
  const std::vector<u32> expected{1, 2, 3, 0};
  for (auto strat : {StringSortStrategy::StdSort, StringSortStrategy::MsdRadix,
                     StringSortStrategy::Parallel}) {
    EXPECT_EQ(sort_strings(list, strat), expected);
  }
}

class StringSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, u32,
                                                 util::LengthDistribution>> {};

TEST_P(StringSortSweep, AllStrategiesMatchReference) {
  const auto [m, total, sigma, dist] = GetParam();
  util::Rng rng(m * 31 + total * 7 + sigma);
  const StringList list = util::random_string_list(m, total, sigma, dist, rng);
  const auto ref = sort_strings(list, StringSortStrategy::StdSort);
  // Reference is itself validated: adjacent order must be non-decreasing.
  for (std::size_t i = 0; i + 1 < ref.size(); ++i) {
    EXPECT_LE(compare_spans(list.view(ref[i]), list.view(ref[i + 1])), 0);
  }
  EXPECT_EQ(sort_strings(list, StringSortStrategy::MsdRadix), ref);
  EXPECT_EQ(sort_strings(list, StringSortStrategy::Parallel), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StringSortSweep,
    ::testing::Combine(::testing::Values(1, 10, 100, 1000),
                       ::testing::Values(std::size_t{2000}),
                       ::testing::Values(2u, 5u, 1000u),
                       ::testing::Values(util::LengthDistribution::Uniform,
                                         util::LengthDistribution::ManyShort,
                                         util::LengthDistribution::FewLong,
                                         util::LengthDistribution::PowerOfTwo)));

TEST(StringSort, LargeMixedWorkload) {
  util::Rng rng(307);
  const StringList list = util::random_string_list(5000, 60000, 8,
                                                   util::LengthDistribution::Uniform, rng);
  const auto ref = sort_strings(list, StringSortStrategy::StdSort);
  EXPECT_EQ(sort_strings(list, StringSortStrategy::Parallel), ref);
  EXPECT_EQ(sort_strings(list, StringSortStrategy::MsdRadix), ref);
}

TEST(StringSort, ContentOrderIsSorted) {
  util::Rng rng(311);
  const StringList list = util::random_string_list(500, 4000, 3,
                                                   util::LengthDistribution::ManyShort, rng);
  const auto order = sort_strings(list, StringSortStrategy::Parallel);
  const auto sorted = materialize(list, order);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

}  // namespace
}  // namespace sfcp
