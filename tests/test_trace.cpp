// Unit tests for the instrumented (traced) pipeline.
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Trace, MatchesUntracedSolve) {
  util::Rng rng(2401);
  for (int iter = 0; iter < 10; ++iter) {
    const auto inst = util::random_function(1 + rng.below(1500), 3, rng);
    const auto plain = core::solve(inst);
    const auto traced = core::solve_traced(inst);
    EXPECT_EQ(traced.result.q, plain.q);
    EXPECT_EQ(traced.result.num_blocks, plain.num_blocks);
  }
}

TEST(Trace, HasAllStages) {
  util::Rng rng(2403);
  const auto inst = util::random_function(200, 3, rng);
  const auto traced = core::solve_traced(inst);
  ASSERT_EQ(traced.stages.size(), 5u);
  EXPECT_NE(traced.stages[0].name.find("find cycle"), std::string::npos);
  EXPECT_NE(traced.stages[2].name.find("cycle node labelling"), std::string::npos);
  EXPECT_NE(traced.stages[3].name.find("tree node labelling"), std::string::npos);
}

TEST(Trace, OpsArePositiveAndSumConsistent) {
  util::Rng rng(2407);
  const auto inst = util::random_function(5000, 3, rng);
  const auto traced = core::solve_traced(inst);
  u64 sum = 0;
  for (const auto& s : traced.stages) {
    EXPECT_GT(s.ops, 0u) << s.name;
    sum += s.ops;
  }
  EXPECT_EQ(sum, traced.total_ops());
  EXPECT_GE(sum, 5000u);  // at least linear work
}

TEST(Trace, EmptyInstance) {
  graph::Instance inst;
  const auto traced = core::solve_traced(inst);
  EXPECT_TRUE(traced.stages.empty());
  EXPECT_EQ(traced.result.num_blocks, 0u);
}

TEST(Trace, ToStringListsStages) {
  util::Rng rng(2411);
  const auto inst = util::random_function(100, 2, rng);
  const auto traced = core::solve_traced(inst);
  const auto s = traced.to_string();
  EXPECT_NE(s.find("find cycle nodes"), std::string::npos);
  EXPECT_NE(s.find("ops="), std::string::npos);
}

}  // namespace
}  // namespace sfcp
