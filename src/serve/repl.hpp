#pragma once
// serve::repl — the shared serving-command dispatcher behind `sfcp_cli
// connect` and examples/incremental_server: one parser for every command
// that talks `sfcp-wire v1` through a serve::Client, so the two front ends
// cannot drift apart.  Front ends keep only their own lifecycle commands
// (gen/load/engine/... in incremental_server) and fall through here first.

#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "inc/edit.hpp"
#include "serve/client.hpp"

namespace sfcp::serve {

enum class ReplResult {
  Handled,  ///< the line was a serving command and was executed
  Quit,     ///< quit/exit
  Unknown,  ///< not a serving command — the caller's turn
};

struct ReplHooks {
  /// Called after the server acked a batch this dispatcher sent (setf /
  /// setb / edits); incremental_server mirrors the edits into its local
  /// instance copy so `save` stays accurate.
  std::function<void(std::span<const inc::Edit>)> on_edits;
};

/// Prints the serving-command section of `help`.
void print_serve_help(std::ostream& out);

/// Executes one REPL line against the connected client.  Serving errors
/// (server Error frames, bad arguments) are printed to `out`, never thrown;
/// connection loss propagates as std::runtime_error so the caller can
/// reconnect or bail.
ReplResult run_serve_command(Client& client, const std::string& line, std::ostream& out,
                             const ReplHooks& hooks = {});

}  // namespace sfcp::serve
