#pragma once
// Partition property checkers used by tests, examples and EXPERIMENTS.md:
// refinement of B, f-stability, and coarseness (via the refinement-fixpoint
// oracle).  All checkers are O(n) or O(n) per round and independent of the
// solvers they validate.

#include <span>
#include <string>
#include <vector>

#include "graph/functional_graph.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

/// q refines b: equal q-labels imply equal b-labels.
bool is_refinement(std::span<const u32> q, std::span<const u32> b);

/// q is f-stable: equal q-labels imply equal q-labels of images.
bool is_stable(std::span<const u32> q, std::span<const u32> f);

/// Number of distinct labels.
u32 count_blocks(std::span<const u32> labels);

/// Same partition (equal up to renaming of labels).
bool same_partition(std::span<const u32> a, std::span<const u32> b);

/// Full validity report for a candidate solution of `inst`.
struct VerifyReport {
  bool refines_b = false;
  bool stable = false;
  bool coarsest = false;  ///< matches the refinement-fixpoint oracle
  u32 blocks = 0;
  u32 oracle_blocks = 0;

  bool ok() const { return refines_b && stable && coarsest; }
  std::string to_string() const;
};

VerifyReport verify_solution(const graph::Instance& inst, std::span<const u32> q);

}  // namespace sfcp::core
