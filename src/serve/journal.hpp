#pragma once
// serve::Journal — the write-ahead edit log behind a durable serve::Server.
//
// Every accepted EDIT frame is appended as one `sfcp-journal v1` record
// (util/io.hpp owns the byte format) BEFORE the edits reach the engine, so a
// crash between accept and apply loses nothing.  Opening an existing journal
// scans it, keeps the intact prefix for replay and truncates a torn tail in
// place (a crashed writer legitimately leaves one — it is recovery data, not
// corruption).  Durability is a policy knob:
//
//   FsyncPolicy::Always  fsync after every appended record (strongest, slow)
//   FsyncPolicy::Epoch   fsync once per epoch flush (the default)
//   FsyncPolicy::Off     never fsync; the OS page cache decides
//
// After an auto-checkpoint the journal resets to just its header — the
// checkpoint now owns everything the log carried.  Records store the
// engine's pre-batch epoch, so replay onto a checkpoint restored at epoch E
// simply skips records with epoch < E (see replay()).

#include <memory>
#include <string>
#include <vector>

#include "engine.hpp"
#include "util/io.hpp"

namespace sfcp::serve {

enum class FsyncPolicy {
  Always,
  Epoch,
  Off,
};

/// Parses "always" / "epoch" / "off"; throws std::invalid_argument otherwise.
FsyncPolicy parse_fsync_policy(std::string_view name);
std::string_view fsync_policy_name(FsyncPolicy p) noexcept;

/// Which record flavour the journal file carries.  Classic journals log
/// single-engine edit batches (`sfcp-journal v1`); Fleet journals log
/// instance-routed batches (the fleet magic, util::FleetJournalRecord) for a
/// fleet-mode serve::Server.  The two magics are distinct, so opening a file
/// with the wrong format fails loudly instead of replaying garbage.
enum class JournalFormat {
  Classic,
  Fleet,
};

class Journal {
 public:
  Journal() = default;
  /// Opens (creating if absent) the journal at `path`.  An existing file is
  /// scanned; intact records are exposed through recovered() (or
  /// recovered_fleet() for JournalFormat::Fleet) and a torn tail is
  /// truncated away (tail_was_torn()/tear_error() report it).  Throws
  /// std::runtime_error on IO failure or a foreign file.
  Journal(std::string path, FsyncPolicy fsync, JournalFormat format = JournalFormat::Classic);
  ~Journal();

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  FsyncPolicy fsync_policy() const noexcept { return fsync_; }
  JournalFormat format() const noexcept { return format_; }

  /// Records recovered from the file at open (empty for a fresh journal).
  /// replay() consumes them; they are kept until then for inspection.
  const std::vector<util::JournalRecord>& recovered() const noexcept { return recovered_; }

  /// Fleet-format records recovered at open.  The fleet-mode server replays
  /// these itself (per-instance epoch floors live in the fleet, not here).
  const std::vector<util::FleetJournalRecord>& recovered_fleet() const noexcept {
    return recovered_fleet_;
  }
  std::vector<util::FleetJournalRecord> take_recovered_fleet() noexcept {
    return std::move(recovered_fleet_);
  }
  bool tail_was_torn() const noexcept { return torn_; }
  const std::string& tear_error() const noexcept { return tear_error_; }

  /// Appends one record (write-ahead: call before Engine::apply); fsyncs
  /// under FsyncPolicy::Always.  Throws std::runtime_error on IO failure,
  /// truncating any partially written record back out first so the log on
  /// disk always ends at a record boundary (a later scan never tears here).
  void append(const util::JournalRecord& rec);

  /// Fleet-format flavour of append (JournalFormat::Fleet journals only).
  void append(const util::FleetJournalRecord& rec);

  /// Epoch-flush barrier: fsyncs under FsyncPolicy::Epoch.
  void sync_epoch();

  /// Truncates back to just the header (after a checkpoint absorbed the log)
  /// and fsyncs regardless of policy — a reset must never outrun the
  /// checkpoint it pairs with.
  void reset();

  u64 bytes() const noexcept { return bytes_; }
  u64 appended_records() const noexcept { return appended_; }
  u64 fsyncs() const noexcept { return fsyncs_; }

  /// Replays this journal's recovered records onto `engine`, skipping those
  /// the engine's current state already reflects (record epoch < the
  /// engine's epoch at entry — the checkpoint rule).  Returns the number
  /// replayed; adds skipped count to *skipped when given.  Consumes the
  /// recovered list.
  u64 replay(Engine& engine, u64* skipped = nullptr);

 private:
  void close_() noexcept;
  void do_fsync_();
  void append_framed_(const std::string& framed);
  std::span<const unsigned char, 8> magic_() const noexcept;

  std::string path_;
  FsyncPolicy fsync_ = FsyncPolicy::Epoch;
  JournalFormat format_ = JournalFormat::Classic;
  int fd_ = -1;
  std::vector<util::JournalRecord> recovered_;
  std::vector<util::FleetJournalRecord> recovered_fleet_;
  bool torn_ = false;
  std::string tear_error_;
  u64 bytes_ = 0;
  u64 appended_ = 0;
  u64 fsyncs_ = 0;
};

}  // namespace sfcp::serve
