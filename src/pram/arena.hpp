#pragma once
// Session-scoped allocation hook: an abstract Arena the ExecutionContext can
// carry, plus a std-allocator adapter that routes container storage through
// it.
//
// The motivating workload is fleet serving (src/fleet/): a million small warm
// solvers each own a handful of per-node vectors, and constructing/destroying
// them against the global heap pays one malloc/free round-trip per vector per
// instance.  An Arena lets the owner hand all of those containers one shared
// slab-recycling allocator (fleet::SlabArena) instead.  The hook is
// deliberately tiny and solver-agnostic: anything with allocate/deallocate
// can plug in, and a null arena degrades to plain operator new/delete so
// arena-aware containers cost nothing in the default configuration.
//
// ArenaAllocator propagates on container copy/move/swap (the arena travels
// with the storage it allocated, which is required for cross-arena moves to
// stay correct) and compares equal only for the same arena pointer.

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::pram {

/// Abstract allocation source.  Implementations must tolerate concurrent
/// calls from multiple threads (solve_batch constructs per-instance state in
/// parallel) and must return storage aligned to `align`.
class Arena {
 public:
  virtual ~Arena() = default;
  virtual void* allocate(std::size_t bytes, std::size_t align) = 0;
  virtual void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept = 0;
};

/// std-allocator adapter over an Arena pointer.  A null arena (the default)
/// forwards to the global heap, so containers can be declared arena-aware
/// unconditionally.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_) return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    return static_cast<T*>(::operator new(bytes, std::align_val_t(alignof(T))));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (arena_) {
      arena_->deallocate(p, bytes, alignof(T));
    } else {
      ::operator delete(p, bytes, std::align_val_t(alignof(T)));
    }
  }

  Arena* arena() const noexcept { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

/// Arena-aware vector: identical to std::vector when the allocator's arena
/// is null, slab-backed when it is not.
template <class T>
using avector = std::vector<T, ArenaAllocator<T>>;

}  // namespace sfcp::pram
