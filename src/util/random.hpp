#pragma once
// Deterministic, fast PRNG (xoshiro256** seeded by SplitMix64): identical
// streams on every platform, so tests and benches are reproducible.

#include <cstdint>

#include "pram/types.hpp"

namespace sfcp::util {

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedull) {
    u64 sm = seed;
    for (auto& word : s_) {
      sm += 0x9e3779b97f4a7c15ull;
      u64 z = sm;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  u32 below_u32(u32 bound) { return static_cast<u32>(below(bound)); }

  /// Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform01() < p; }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

}  // namespace sfcp::util
