#pragma once
// fleet::FleetEngine — one apply/view surface multiplexing up to millions of
// small instance-keyed engines (multi-tenant serving).
//
// Three mechanisms make the scale workable:
//
//   * Instance-keyed routing.  Every operation names an InstanceId (u64);
//     an open-addressed id→slot map routes it to that instance's engine.
//     Unknown ids are materialized on demand through the caller-installed
//     factory (set_factory), so a fleet over 1M instances only pays for the
//     ones actually touched.
//
//   * Warm/cold tiering.  Only a bounded working set (FleetConfig::
//     warm_limit slots and/or warm_bytes_limit bytes, size-aware via
//     Engine::footprint_bytes) stays live.  The LRU tail is checkpointed
//     out (`sfcp-checkpoint v1`, or a small instance+epoch cold image for
//     non-checkpointable engines) to memory or to FleetConfig::spill_dir
//     (durably when durable_spill), and faulted back transparently on the
//     next touch.  Because engine views are byte-identical to core::solve,
//     an evict→fault-in round trip reproduces the exact partition bytes.
//
//   * Batched cold-start solving.  A flood of first-touch instances in one
//     apply_batch() funnels into a single core::Solver::solve_batch call;
//     the batch consumer seeds each engine from the solve it just produced
//     (seeded IncrementalSolver / BatchEngine constructors), so the fleet
//     never re-solves what the batch already computed.
//
// Engines draw their persistent arrays from the fleet's shared SlabArena
// (via the pram::ExecutionContext::arena hook) so evict/fault-in churn
// recycles blocks instead of hammering the global heap.
//
// The external contract is single-threaded, like Engine: one caller at a
// time.  Internally the cold-start batch fans out across solver threads,
// and — when a worker pool is installed — apply_batch() fans the WARM path
// too: each distinct instance's edit bucket runs on pool lane
// `slot % width` (the shard-affinity trick from shard::ShardedEngine), and
// one epoch barrier (WorkerPool::wait) closes the batch, so the one-caller
// Engine contract holds PER INSTANCE while different tenants repair
// concurrently.  Everything that mutates fleet-wide state — routing-table
// growth, materialization, eviction, LRU maintenance, cold-batch solving —
// stays on the caller lane; the id→slot table and slot storage are
// single-writer/multi-reader (fleet/route_table.hpp), which also makes
// contains() / is_warm() / instance_count() / warm_count() safe to call
// from other threads while a batch is in flight.  Determinism: every
// instance's view and the charged rounds/ops are byte-identical to a
// serial threads=1 apply of the same batch (workers pin nested rounds to
// one PRAM processor; per-lane metrics sinks are merged at the barrier).
//
//   fleet::FleetConfig cfg;
//   cfg.engine = "incremental";
//   cfg.warm_limit = 10'000;
//   fleet::FleetEngine fleet(cfg);
//   fleet.set_factory([](fleet::InstanceId id) { return make_instance(id); });
//   fleet.apply(42, edits);                  // routes, faults in, repairs
//   core::PartitionView v = fleet.view(42);  // byte-identical to core::solve

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine.hpp"
#include "fleet/route_table.hpp"
#include "fleet/slab_arena.hpp"
#include "inc/edit.hpp"

namespace sfcp::fleet {

using InstanceId = u64;

struct FleetConfig {
  /// engines() registry name every instance runs ("incremental", "batch",
  /// "sharded").  Incremental and batch kinds take the batched cold-start
  /// path; other kinds construct per instance.
  std::string engine = "incremental";
  core::Options options = core::Options::parallel();
  /// Template execution context for per-instance engines; the fleet injects
  /// its arena into a copy of this (see use_arena).
  pram::ExecutionContext ctx;
  inc::RepairPolicy repair;

  /// Warm-set cap in instances (0 = unbounded).  The LRU tail beyond it is
  /// evicted to the cold tier.
  std::size_t warm_limit = 1024;
  /// Warm-set cap in bytes (0 = unbounded), measured by footprint_bytes().
  /// An instance whose footprint alone exceeds the cap is still admitted
  /// for its operation (a caller may hold a view into it), counted in
  /// FleetStats::oversized_rejects, and reclaimed by the next operation's
  /// eviction sweep — the warm set never holds more than one such slot.
  std::size_t warm_bytes_limit = 0;

  /// Directory for spilled cold images (files `i<id>.ckpt`).  Empty keeps
  /// cold images in memory.  Pre-existing spill files are adopted as cold
  /// instances at construction.
  std::string spill_dir;
  /// fsync spill files through util::atomic_write_file(durable=true).
  bool durable_spill = false;

  /// Hand per-instance engines the shared SlabArena for their persistent
  /// arrays (pram::ExecutionContext::arena).
  bool use_arena = true;
};

/// Counters and gauges over the whole fleet (stats()); also the payload of
/// the fleet-mode STATS wire frame.
struct FleetStats {
  std::size_t instances = 0;   ///< known ids (warm + cold + unborn)
  std::size_t warm = 0;        ///< live engines
  std::size_t cold = 0;        ///< checkpointed-out instances
  std::size_t warm_bytes = 0;  ///< footprint_bytes() total of the warm set
  u64 routes = 0;              ///< id→slot routing lookups (batch entries)
  u64 faults = 0;              ///< cold→warm fault-ins
  u64 evictions = 0;           ///< warm→cold evictions
  u64 cold_batches = 0;        ///< solve_batch calls for cold-start floods
  u64 batched_cold_instances = 0;  ///< instances first-solved inside them
  u64 oversized_rejects = 0;   ///< instances too big for warm_bytes_limit
  u64 edits = 0;               ///< edits applied across the fleet
  u64 views = 0;               ///< views served across the fleet
  std::size_t arena_bytes = 0;   ///< SlabArena live + pooled bytes
  std::size_t arena_blocks = 0;  ///< SlabArena outstanding blocks
};

/// One routed edit — the element type of apply_batch().
struct InstanceEdit {
  InstanceId id = 0;
  inc::Edit edit;
};

class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig cfg = {});

  /// Installs the instance factory consulted when an operation names an id
  /// the fleet has never seen.  Without one, unknown ids throw
  /// std::out_of_range.
  void set_factory(std::function<graph::Instance(InstanceId)> factory);

  /// Registers `inst` under `id` without solving it (tier Unborn); the
  /// first apply/view materializes it — through the batched cold-start
  /// path when it arrives in an apply_batch flood.  Throws
  /// std::invalid_argument when the id already exists or `inst` is invalid.
  void create(InstanceId id, graph::Instance inst);

  // Lock-free observers: safe to call from ANY thread, concurrently with
  // operations on the (single) fleet caller — routing reads go through the
  // single-writer/multi-reader RouteTable and touch only a slot's immutable
  // id and atomic tier.
  bool contains(InstanceId id) const noexcept;
  std::size_t instance_count() const noexcept { return slots_.size(); }
  std::size_t warm_count() const noexcept {
    return warm_count_.load(std::memory_order_relaxed);
  }
  bool is_warm(InstanceId id) const noexcept;

  /// Applies `edits` to instance `id` (routing, fault-in, or factory
  /// materialization as needed) and returns the instance's epoch after the
  /// batch.
  u64 apply(InstanceId id, std::span<const inc::Edit> edits);

  /// Applies a mixed-instance batch: entries are grouped by id (preserving
  /// per-id order), cold instances fault in, and never-solved instances
  /// funnel into one core::Solver::solve_batch cold-start solve.  Warm-set
  /// limits are enforced once, after the whole batch.  With a worker pool
  /// installed, distinct instances' buckets repair concurrently on lane
  /// `slot % width` behind one epoch barrier; footprint/LRU accounting and
  /// eviction still run on the caller lane after the barrier, and results
  /// and charges are identical to the pool-less serial path.
  void apply_batch(std::span<const InstanceEdit> batch);

  /// Immutable snapshot of instance `id`'s partition — byte-identical to
  /// core::solve on its current instance, whether the engine stayed warm or
  /// round-tripped through the cold tier.  Valid until the next operation on
  /// the fleet (any operation may evict the backing engine).
  core::PartitionView view(InstanceId id);

  /// The instance's edit clock: warm engines answer directly, cold slots
  /// answer from the epoch recorded at eviction (spill files adopted at
  /// construction fault in to find out), unknown/unborn ids are 0.
  u64 epoch(InstanceId id);

  /// Node count of instance `id`, materializing the slot (factory) if it is
  /// new — the cheap precondition front ends need to validate edits before
  /// journaling them.  Spill files adopted at construction fault in to learn
  /// their size.  Throws like apply() for unknown ids without a factory.
  std::size_t instance_size(InstanceId id);

  /// Checkpoints instance `id` out to the cold tier now.  Returns false when
  /// the id is unknown or not warm.
  bool evict(InstanceId id);

  FleetStats stats() const;
  const FleetConfig& config() const noexcept { return cfg_; }
  SlabArena& arena() noexcept { return arena_; }

  /// Installs (null: removes) a session worker pool on the fleet's own
  /// batch solver, the config context every later-materialized engine
  /// copies, and all currently-warm engines — so cold-batch floods fan out
  /// on persistent workers and warm applies reuse them too.  The pool must
  /// outlive the fleet (or be uninstalled first).
  void install_pool(pram::WorkerPool* pool);

 private:
  enum class Tier : unsigned char { Unborn, Cold, Warm };

  /// One instance's bookkeeping.  `id` is immutable once the slot is
  /// published through the route table and `tier` is atomic — those two are
  /// the ONLY fields the lock-free observers may read; everything else is
  /// caller-lane state (pool tasks additionally read `engine` for their own
  /// group, which the caller published before the fan and does not mutate
  /// until after the barrier).
  struct Slot {
    InstanceId id = 0;
    std::atomic<Tier> tier{Tier::Unborn};
    std::unique_ptr<Engine> engine;  ///< warm only
    graph::Instance pending;         ///< unborn only: instance awaiting first solve
    std::string cold_image;          ///< cold, in-memory spill mode
    bool on_disk = false;            ///< a spill file exists for this id
    u64 epoch = 0;                   ///< edit clock recorded at eviction
    std::size_t nodes = 0;           ///< instance size (0 = unknown, adopted spill)
    std::size_t bytes = 0;           ///< footprint_bytes() while warm
    u32 lru_prev = 0, lru_next = 0;  ///< intrusive warm LRU links

    Tier tier_now() const noexcept { return tier.load(std::memory_order_relaxed); }
    void set_tier(Tier t) noexcept { tier.store(t, std::memory_order_relaxed); }
  };

  static constexpr u32 kNil = RouteTable::kNil;
  static constexpr u64 kEpochUnknown = ~u64{0};

  pram::ExecutionContext instance_ctx_();
  u32 find_(InstanceId id) const noexcept;
  u32 ensure_slot_(InstanceId id);
  /// Appends a fresh slot for `id` and publishes it through the route
  /// table; the caller fills the remaining fields afterwards (readers can
  /// already see the slot, but only as a default Unborn entry).
  u32 add_slot_(InstanceId id);

  void lru_unlink_(u32 si) noexcept;
  void lru_push_front_(u32 si) noexcept;
  void lru_touch_(u32 si) noexcept;

  /// Installs a freshly built engine into an unborn/cold slot and accounts
  /// it into the warm tier.
  void admit_(u32 si, std::unique_ptr<Engine> engine);
  /// First-solves never-run instances, batched through solve_batch for
  /// incremental/batch engine kinds.  `insts` holds the pending instances
  /// moved out of the slots, index-aligned with `slot_idx`.
  void materialize_batch_(std::span<const u32> slot_idx,
                          std::vector<graph::Instance>&& insts);
  void fault_in_(u32 si);
  void wake_(u32 si);  ///< cold → fault_in_, unborn → materialize (single)
  void evict_slot_(u32 si);
  /// Refreshes the slot's footprint accounting and marks it most recent.
  void touch_after_op_(u32 si);
  /// Evicts from the LRU tail until the warm set fits the configured caps.
  /// `pinned` (the slot the current operation touched — a caller may hold a
  /// view into it) is never evicted; when it alone busts the byte cap it is
  /// counted as oversized and left for the next sweep.
  void enforce_limits_(u32 pinned);
  std::string spill_path_(InstanceId id) const;

  /// Grows/resets the per-lane metrics sinks for a `width`-lane warm fan.
  void bind_lane_metrics_(int width);
  /// Adds every lane sink's totals into `into` (the session sink), in lane
  /// order, after the epoch barrier.
  void merge_lane_metrics_(int width, pram::Metrics& into) noexcept;

  FleetConfig cfg_;
  // Declared before the slots so it outlives every engine drawing from it.
  SlabArena arena_;
  core::Solver solver_;
  std::function<graph::Instance(InstanceId)> factory_;

  StableSlots<Slot> slots_;  ///< append-only; slot references are stable
  RouteTable table_;         ///< id→slot, lock-free reads, caller-lane writes
  std::atomic<std::size_t> warm_count_{0};
  std::size_t warm_bytes_ = 0;
  std::size_t cold_count_ = 0;
  u32 lru_head_ = kNil, lru_tail_ = kNil;
  FleetStats stats_;
  /// Per-lane warm-fan metrics scratch (index = slot % width): engines
  /// charge their lane's sink during the fan so the session sink's cache
  /// line is not ping-ponged; merged into the session sink at the barrier.
  std::vector<std::unique_ptr<pram::Metrics>> lane_metrics_;
};

}  // namespace sfcp::fleet
