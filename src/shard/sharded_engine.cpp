#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "graph/components.hpp"
#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/io.hpp"

namespace sfcp::shard {

ShardedEngine::ShardedEngine(graph::Instance inst, core::Options opt, pram::ExecutionContext ctx,
                             ShardOptions sopt)
    : inst_(std::move(inst)), opt_(opt), ctx_(ctx), repair_(sopt.repair), reshard_(sopt.reshard) {
  graph::validate(inst_);
  const std::size_t n = inst_.size();
  shard_of_.assign(n, 0);
  local_of_.assign(n, 0);
  shards_.resize(sopt.shards == 0 ? 1 : sopt.shards);
  reshard_all_();
}

ShardedEngine::ShardedEngine(LoadTag, core::Options opt, pram::ExecutionContext ctx,
                             ShardOptions sopt)
    : opt_(opt), ctx_(ctx), repair_(sopt.repair), reshard_(sopt.reshard) {}

u32 ShardedEngine::shard_of(u32 x) const {
  if (x >= shard_of_.size()) {
    throw std::out_of_range("ShardedEngine::shard_of: node " + std::to_string(x) +
                            " out of range (n = " + std::to_string(shard_of_.size()) + ")");
  }
  return shard_of_[x];
}

// ---- sharding ------------------------------------------------------------

void ShardedEngine::reshard_all_() {
  pram::ScopedContext guard(&ctx_);
  const std::size_t n = inst_.size();
  const graph::Components comp = graph::connected_components(inst_.f);
  const std::size_t k = shards_.size();

  // Longest-processing-time assignment: heaviest component to the currently
  // lightest shard.  Deterministic (ties by lowest id / lowest shard).
  std::vector<u32> order(comp.count());
  std::iota(order.begin(), order.end(), u32{0});
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return comp.size[a] != comp.size[b] ? comp.size[a] > comp.size[b] : a < b;
  });
  std::vector<u64> load(k, 0);
  std::vector<u32> comp_shard(comp.count(), 0);
  for (const u32 c : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < k; ++s) {
      if (load[s] < load[best]) best = s;
    }
    comp_shard[c] = static_cast<u32>(best);
    load[best] += comp.size[c];
  }

  for (auto& sh : shards_) sh.nodes.clear();
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    shards_[comp_shard[comp.id[v]]].nodes.push_back(v);  // ascending per shard
  }
  for (std::size_t s = 0; s < k; ++s) rebuild_shard_(s);
  root_stale_ = true;
}

void ShardedEngine::rebuild_shard_(std::size_t s) {
  ShardState& sh = shards_[s];
  const std::size_t m = sh.nodes.size();
  for (std::size_t i = 0; i < m; ++i) {
    shard_of_[sh.nodes[i]] = static_cast<u32>(s);
    local_of_[sh.nodes[i]] = static_cast<u32>(i);
  }
  // Shards are closed under f (they hold whole components), so every f
  // target's local index is defined by the loop above.
  graph::Instance sub;
  sub.f.resize(m);
  sub.b.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const u32 g = sh.nodes[i];
    sub.f[i] = local_of_[inst_.f[g]];
    sub.b[i] = inst_.b[g];
  }
  sh.solver = std::make_unique<inc::IncrementalSolver>(std::move(sub), opt_, ctx_, repair_);
  sh.seen_epoch = 0;
  sh.dirty = true;
}

// ---- edits ---------------------------------------------------------------

void ShardedEngine::apply(std::span<const inc::Edit> edits) {
  for (const inc::Edit& e : edits) inc::validate_edit(e, inst_.size(), "ShardedEngine");
  const std::size_t count = edits.size();
  std::size_t i = 0;
  while (i < count) {
    // Maximal run of shard-routable edits; cross-shard rewires are barriers
    // (they move nodes between shards, changing the routing of what follows).
    std::size_t j = i;
    while (j < count && !cross_shard_(edits[j])) ++j;
    if (j > i) apply_segment_(edits.subspan(i, j - i));
    if (j < count) {
      apply_cross_shard_(edits[j]);
      ++j;
    }
    i = j;
  }
}

void ShardedEngine::apply_segment_(std::span<const inc::Edit> seg) {
  if (bucket_buf_.size() != shards_.size()) bucket_buf_.assign(shards_.size(), {});
  active_buf_.clear();
  for (const inc::Edit& e : seg) {
    const u32 s = shard_of_[e.node];
    auto& bucket = bucket_buf_[s];
    if (bucket.empty()) active_buf_.push_back(s);
    const u32 value = e.kind == inc::Edit::Kind::SetF ? local_of_[e.value] : e.value;
    bucket.push_back(inc::Edit{e.kind, local_of_[e.node], value});
    inc::apply_raw(e, inst_.f, inst_.b);  // keep the global instance current
  }
  {
    // Shards repair concurrently.  The fan-out loop runs under a grain of 1
    // so a handful of shards still forks (the default grain is tuned for
    // element loops); each shard solver re-installs its own context inside
    // apply(), so charging lands in the session's (atomic) sink.
    pram::ExecutionContext fan = ctx_;
    fan.grain = 1;
    pram::ScopedContext guard(fan);
    const std::size_t active = active_buf_.size();
    pram::parallel_for(0, active, [&](std::size_t idx) {
      const u32 s = active_buf_[idx];
      shards_[s].solver->apply(bucket_buf_[s]);
    });
  }
  for (const u32 s : active_buf_) {
    bucket_buf_[s].clear();
    ShardState& sh = shards_[s];
    const u64 e = sh.solver->epoch();
    if (e != sh.seen_epoch) {  // no-op-only buckets leave the shard clean
      epoch_ += e - sh.seen_epoch;
      sh.seen_epoch = e;
      sh.dirty = true;
    }
  }
}

void ShardedEngine::apply_cross_shard_(const inc::Edit& e) {
  const std::size_t n = inst_.size();
  const u32 a = shard_of_[e.node];
  const u32 b = shard_of_[e.value];
  ++stats_.cross_shard_edits;
  ShardState& src = shards_[a];

  // The component the edit drags into shard b, located in a's CURRENT
  // sub-instance (pre-edit; the closure of e.node is the same either way).
  graph::Components comp;
  {
    pram::ScopedContext guard(&ctx_);
    comp = graph::connected_components(src.solver->instance().f);
  }
  const u32 cid = comp.id[local_of_[e.node]];
  const std::size_t moved = comp.size[cid];

  // Cross-shard implies f(x) != y (the old target lives in shard a), so the
  // edit always changes state.
  inc::apply_raw(e, inst_.f, inst_.b);
  ++epoch_;

  if (moved > reshard_.migrate_budget(n)) {
    ++stats_.reshards;
    reshard_all_();
    return;
  }

  std::vector<u32> keep, move;
  keep.reserve(src.nodes.size() - moved);
  move.reserve(moved);
  for (std::size_t i = 0; i < src.nodes.size(); ++i) {
    (comp.id[i] == cid ? move : keep).push_back(src.nodes[i]);
  }
  ShardState& dst = shards_[b];
  std::vector<u32> merged;
  merged.reserve(dst.nodes.size() + move.size());
  std::merge(dst.nodes.begin(), dst.nodes.end(), move.begin(), move.end(),
             std::back_inserter(merged));
  src.nodes = std::move(keep);
  dst.nodes = std::move(merged);
  rebuild_shard_(a);
  rebuild_shard_(b);
  ++stats_.migrations;

  std::size_t largest = 0;
  for (const auto& sh : shards_) largest = std::max(largest, sh.nodes.size());
  if (!reshard_.balanced(largest, n, shards_.size())) {
    ++stats_.reshards;
    reshard_all_();
  }
}

// ---- merge layer ---------------------------------------------------------

void ShardedEngine::release_refs_(ShardState& sh) {
  for (const std::vector<u32>* key : sh.cycle_refs) {
    auto it = gclasses_.find(*key);
    if (--it->second.refs == 0) {
      live_globals_ -= static_cast<u32>(it->second.labels.size());
      gclasses_.erase(it);
    }
  }
  sh.cycle_refs.clear();
  for (const u64 sig : sh.sig_refs) {
    auto it = gsigs_.find(sig);
    if (--it->second.refs == 0) {
      --live_globals_;
      gsigs_.erase(it);
    }
  }
  sh.sig_refs.clear();
}

void ShardedEngine::reset_global_maps_() {
  gclasses_.clear();
  gsigs_.clear();
  next_global_ = 0;
  live_globals_ = 0;
  for (auto& sh : shards_) {
    sh.cycle_refs.clear();
    sh.sig_refs.clear();
    sh.dirty = true;
  }
  root_stale_ = true;
}

void ShardedEngine::label_quotient_cycle_(std::span<const u32> cyc, std::vector<u32>& assign,
                                          std::vector<const std::vector<u32>*>& refs) {
  // Reduce the cycle's label string to its smallest period and minimal
  // rotation — cross-shard canonical form: two quotient cycles share a
  // global label block iff their reduced strings coincide.  (The local
  // partition is coarsest, so distinct classes on one quotient cycle never
  // repeat a string and the period always equals the cycle length; the
  // general formula is kept for robustness.)
  const std::size_t len = cyc.size();
  str_buf_.resize(len);
  for (std::size_t i = 0; i < len; ++i) str_buf_[i] = qb_buf_[cyc[i]];
  const u32 p = strings::smallest_period_seq(str_buf_);
  const u32 j0 = strings::minimal_starting_point(std::span<const u32>(str_buf_).first(p),
                                                 strings::MspStrategy::Booth);
  std::vector<u32> key(p);
  for (u32 t = 0; t < p; ++t) key[t] = str_buf_[(j0 + t) % p];
  auto [it, inserted] = gclasses_.try_emplace(std::move(key));
  GlobalCycleClass& cls = it->second;
  if (inserted) {
    cls.labels.resize(p);
    for (u32 t = 0; t < p; ++t) cls.labels[t] = fresh_global_();
  }
  ++cls.refs;
  refs.push_back(&it->first);
  for (std::size_t i = 0; i < len; ++i) {
    assign[cyc[i]] = cls.labels[(static_cast<u32>(i % p) + p - j0) % p];
  }
}

void ShardedEngine::reconcile_shard_(std::size_t s) {
  ShardState& sh = shards_[s];
  const core::PartitionView lv = sh.solver->view();
  const std::size_t m = sh.nodes.size();
  const u32 classes = lv.num_classes();
  const graph::Instance& sub = sh.solver->instance();

  // Collapse the shard to its quotient graph: classes as nodes, f and B
  // descend because the local partition is f-stable and B-constant per
  // class.
  rep_buf_.assign(classes, kNone);
  for (u32 i = 0; i < static_cast<u32>(m); ++i) {
    const u32 c = lv.class_of(i);
    if (rep_buf_[c] == kNone) rep_buf_[c] = i;
  }
  qf_buf_.resize(classes);
  qb_buf_.resize(classes);
  for (u32 c = 0; c < classes; ++c) {
    const u32 r = rep_buf_[c];
    qf_buf_[c] = lv.class_of(sub.f[r]);
    qb_buf_[c] = sub.b[r];
  }

  std::vector<u32> assign(classes, kNone);
  std::vector<const std::vector<u32>*> new_cycle_refs;
  std::vector<u64> new_sig_refs;
  new_sig_refs.reserve(classes);

  // Quotient cycles first: every purely-periodic class lies on one, and
  // those are exactly the classes that may merge with cycles in OTHER
  // shards, keyed by reduced string.
  state_buf_.assign(classes, 0);  // 0 unvisited / 1 on current path / 2 done
  for (u32 c0 = 0; c0 < classes; ++c0) {
    if (state_buf_[c0] != 0) continue;
    path_buf_.clear();
    u32 c = c0;
    while (state_buf_[c] == 0) {
      state_buf_[c] = 1;
      path_buf_.push_back(c);
      c = qf_buf_[c];
    }
    if (state_buf_[c] == 1) {
      std::size_t start = path_buf_.size();
      while (path_buf_[start - 1] != c) --start;
      --start;
      label_quotient_cycle_(std::span<const u32>(path_buf_).subspan(start), assign,
                            new_cycle_refs);
    }
    for (const u32 v : path_buf_) state_buf_[v] = 2;
  }

  // Tree classes in dependency order (follow qf to an assigned class, then
  // unwind): the signature (B, global label of the f-class) realizes
  // Q(u) = Q(v) <=> B(u) = B(v) and Q(f(u)) = Q(f(v)) across shards.
  for (u32 c0 = 0; c0 < classes; ++c0) {
    if (assign[c0] != kNone) continue;
    chain_buf_.clear();
    u32 c = c0;
    while (assign[c] == kNone) {
      chain_buf_.push_back(c);
      c = qf_buf_[c];
    }
    for (auto it = chain_buf_.rbegin(); it != chain_buf_.rend(); ++it) {
      const u32 t = *it;
      const u64 sig = pack_pair(qb_buf_[t], assign[qf_buf_[t]]);
      auto [mit, inserted] = gsigs_.try_emplace(sig);
      if (inserted) mit->second.label = fresh_global_();
      ++mit->second.refs;
      new_sig_refs.push_back(sig);
      assign[t] = mit->second.label;
    }
  }

  // New references first, old ones after: entries shared between the two
  // assignments stay alive, keeping unchanged classes' global labels (and
  // therefore the other shards' raw labels) stable.
  release_refs_(sh);
  sh.cycle_refs = std::move(new_cycle_refs);
  sh.sig_refs = std::move(new_sig_refs);
  sh.class_global = std::move(assign);
  sh.local = lv;
  sh.dirty = false;
  ++stats_.shard_merges;
  pram::charge(2 * m + 3 * classes);
}

core::PartitionView ShardedEngine::view() {
  pram::ScopedContext guard(&ctx_);
  dirty_buf_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].dirty) dirty_buf_.push_back(s);
  }
  if (dirty_buf_.empty() && !root_stale_) return last_view_;

  const std::size_t n = inst_.size();
  // Fresh labels are never reused while live, so a long repair streak must
  // occasionally compact the label space (same cap as the per-node engine).
  const u64 label_cap = std::max<u64>(4 * static_cast<u64>(n), 4096);
  if (static_cast<u64>(next_global_) >= label_cap) {
    reset_global_maps_();
    dirty_buf_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) dirty_buf_.push_back(s);
  }

  for (const std::size_t s : dirty_buf_) reconcile_shard_(s);

  core::ViewCounters counters{};
  for (const auto& sh : shards_) {
    const core::ViewCounters& c = sh.local.counters();
    counters.num_cycles += c.num_cycles;
    counters.cycle_nodes += c.cycle_nodes;
    counters.kept_tree_nodes += c.kept_tree_nodes;
    counters.residual_tree_nodes += c.residual_tree_nodes;
  }

  if (root_stale_) {
    std::vector<u32> raw(n);
    for (const auto& sh : shards_) {
      for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
        raw[sh.nodes[i]] = sh.class_global[sh.local.class_of(static_cast<u32>(i))];
      }
    }
    last_view_ =
        core::PartitionView::from_raw(std::move(raw), next_global_, live_globals_, epoch_, counters);
    root_stale_ = false;
  } else {
    // O(dirty shards): untouched shards' raw labels are stable (their map
    // entries stayed alive), so the delta is exactly the dirty shards.
    std::size_t total = 0;
    for (const std::size_t s : dirty_buf_) total += shards_[s].nodes.size();
    std::vector<u32> nodes, labels;
    nodes.reserve(total);
    labels.reserve(total);
    for (const std::size_t s : dirty_buf_) {
      const ShardState& sh = shards_[s];
      for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
        nodes.push_back(sh.nodes[i]);
        labels.push_back(sh.class_global[sh.local.class_of(static_cast<u32>(i))]);
      }
    }
    last_view_ = core::PartitionView::patched(last_view_, std::move(nodes), std::move(labels),
                                              next_global_, live_globals_, epoch_, counters);
  }
  ++stats_.merged_views;
  return last_view_;
}

// ---- persistence (sfcp-checkpoint v1, sharded magic; see util/io.hpp) ----

bool ShardedEngine::save_checkpoint(std::ostream& os) const {
  util::BinaryWriter w(os);
  w.put_bytes(util::checkpoint_sharded_magic().data(), 8);
  w.put_u32(static_cast<u32>(shards_.size()));
  w.put_u64(epoch_);
  w.put_u64(static_cast<u64>(inst_.size()));
  for (const auto& sh : shards_) {
    w.put_u32(static_cast<u32>(sh.nodes.size()));
    w.put_u32_array(sh.nodes);
    sh.solver->save(os);
  }
  if (!os) throw std::runtime_error("ShardedEngine::save_checkpoint: write failed");
  return true;
}

std::unique_ptr<ShardedEngine> ShardedEngine::load(std::istream& is, core::Options opt,
                                                   pram::ExecutionContext ctx, ShardOptions sopt) {
  util::BinaryReader r(is, "load_sharded_checkpoint");
  unsigned char magic[8];
  r.get_bytes(magic, 8, "magic");
  if (std::memcmp(magic, util::checkpoint_sharded_magic().data(), 8) != 0) {
    throw std::runtime_error(
        "load_sharded_checkpoint: bad magic (expected sfcp-checkpoint v1, sharded)");
  }
  return load_body(is, opt, ctx, sopt);
}

std::unique_ptr<ShardedEngine> ShardedEngine::load_body(std::istream& is, core::Options opt,
                                                        pram::ExecutionContext ctx,
                                                        ShardOptions sopt) {
  util::BinaryReader r(is, "load_sharded_checkpoint");
  const u32 k = r.get_u32("shard count");
  if (k == 0 || k > (1u << 20)) {
    throw std::runtime_error("load_sharded_checkpoint: unreasonable shard count");
  }
  const u64 epoch = r.get_u64("epoch");
  const u64 n64 = r.get_u64("node count");
  if (n64 > static_cast<u64>(kNone - 2)) {
    throw std::runtime_error("load_sharded_checkpoint: unreasonable node count");
  }
  const auto n = static_cast<std::size_t>(n64);

  auto eng = std::unique_ptr<ShardedEngine>(new ShardedEngine(LoadTag{}, opt, ctx, sopt));
  eng->epoch_ = epoch;
  eng->inst_.f.assign(n, 0);
  eng->inst_.b.assign(n, 0);
  eng->shard_of_.assign(n, 0);
  eng->local_of_.assign(n, 0);
  eng->shards_.resize(k);
  std::vector<u8> seen(n, 0);
  for (u32 s = 0; s < k; ++s) {
    ShardState& sh = eng->shards_[s];
    const u32 m = r.get_u32("shard size");
    if (m > n) throw std::runtime_error("load_sharded_checkpoint: shard size out of range");
    r.get_u32_vector(m, sh.nodes, "shard nodes");
    u32 prev = 0;
    for (std::size_t i = 0; i < sh.nodes.size(); ++i) {
      const u32 g = sh.nodes[i];
      if (g >= n || seen[g] || (i > 0 && g <= prev)) {
        throw std::runtime_error("load_sharded_checkpoint: bad shard node list");
      }
      seen[g] = 1;
      prev = g;
    }
    sh.solver = std::make_unique<inc::IncrementalSolver>(
        inc::IncrementalSolver::load(is, opt, ctx, sopt.repair));
    if (sh.solver->size() != m) {
      throw std::runtime_error("load_sharded_checkpoint: shard instance size mismatch");
    }
    const graph::Instance& sub = sh.solver->instance();
    for (u32 i = 0; i < m; ++i) {
      const u32 g = sh.nodes[i];
      eng->shard_of_[g] = s;
      eng->local_of_[g] = i;
      eng->inst_.f[g] = sh.nodes[sub.f[i]];
      eng->inst_.b[g] = sub.b[i];
    }
    // The stored global epoch already accounts for everything the shard
    // solver absorbed before the save.
    sh.seen_epoch = sh.solver->epoch();
    sh.dirty = true;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!seen[v]) {
      throw std::runtime_error("load_sharded_checkpoint: node missing from every shard");
    }
  }
  eng->root_stale_ = true;
  return eng;
}

}  // namespace sfcp::shard
