#pragma once
// Baseline SFCP solvers the paper compares against (introduction):
//
//   * `solve_naive_refinement` — Moore-style iterated refinement
//     q_{t+1}(x) = rename(q_t(x), q_t(f(x))) from q_0 = B until stable;
//     O(n) per round, up to n rounds (the O(n log n)-ish classic of [1] in
//     its simplest form, and the ground-truth oracle for tests).
//   * `solve_hopcroft` — Hopcroft-style partition refinement with a
//     splitter worklist, O(n log n) sequential (stand-in for [1]).
//   * `solve_label_doubling` — parallel label doubling over f^(2^j)
//     (Lemma 2.1(ii) made executable): O(log n) rounds of pair renaming,
//     O(n log n) operations — the Galley–Iliopoulos/Srikant-class baseline.
//
// All return canonical labellings identical to core::solve's.

#include <vector>

#include "graph/functional_graph.hpp"
#include "pram/types.hpp"

namespace sfcp::core {

struct BaselineResult {
  std::vector<u32> q;
  u32 num_blocks = 0;
  u32 rounds = 0;  ///< refinement/doubling rounds executed
};

BaselineResult solve_naive_refinement(const graph::Instance& inst);
BaselineResult solve_hopcroft(const graph::Instance& inst);
BaselineResult solve_label_doubling(const graph::Instance& inst);

}  // namespace sfcp::core
