#include "prim/scan.hpp"

namespace sfcp::prim {

u64 exclusive_scan_u32(std::span<const u32> in, std::span<u64> out) {
  const std::size_t n = in.size();
  std::vector<u64> widened(n);
  pram::parallel_for(0, n, [&](std::size_t i) { widened[i] = in[i]; });
  return exclusive_scan<u64>(widened, out);
}

u32 reduce_min_u32(std::span<const u32> in) { return reduce_min<u32>(in); }

u32 reduce_max_u32(std::span<const u32> in) { return reduce_max<u32>(in); }

}  // namespace sfcp::prim
