#pragma once
// Plain-text (de)serialization of SFCP instances and solutions, so examples
// and external tools can exchange workloads:
//
//   sfcp-instance v1
//   n
//   f[0] f[1] ... f[n-1]
//   b[0] b[1] ... b[n-1]

#include <iosfwd>
#include <string>

#include "graph/functional_graph.hpp"
#include "pram/types.hpp"

namespace sfcp::util {

void save_instance(std::ostream& os, const graph::Instance& inst);

/// Throws std::runtime_error on malformed input.
graph::Instance load_instance(std::istream& is);

void save_instance_file(const std::string& path, const graph::Instance& inst);
graph::Instance load_instance_file(const std::string& path);

}  // namespace sfcp::util
