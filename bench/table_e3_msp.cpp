// E3 — Lemma 3.7: minimal starting point.  Algorithm "simple m.s.p." costs
// O(n log n) operations while "efficient m.s.p." costs O(n log log n); the
// table shows measured ops/n for both (simple grows with lg n, efficient
// stays nearly flat) plus the sequential references.
#include <cmath>
#include <iostream>

#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "strings/msp.hpp"
#include "strings/suffix_array.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E3 (Lemma 3.7): m.s.p. operation counts vs n\n\n";
  util::Table table({"n", "algorithm", "msp", "ops", "ops/n", "ms"});
  util::Rng rng(3);
  for (int e = 14; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const auto s = util::random_string(n, 4, rng);
    const auto run = [&](const char* name, strings::MspStrategy strat) {
      pram::Metrics m;
      util::Timer timer;
      u32 msp = 0;
      {
        pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
        msp = strings::minimal_starting_point(s, strat);
      }
      const double ms = timer.millis();
      table.add_row(n, name, msp, m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), ms);
      json.record("e3_msp", n, name, pram::threads(), ms);
    };
    run("booth (seq)", strings::MspStrategy::Booth);
    run("duval (seq)", strings::MspStrategy::Duval);
    run("simple (par)", strings::MspStrategy::Simple);
    run("efficient (par)", strings::MspStrategy::Efficient);
    // The suffix-array route (Vishkin's suffix-tree observation): O(n log n)
    // operations; capped at 2^16 since each doubling round radix-sorts 2n
    // 64-bit keys.
    if (e <= 16) {
      pram::Metrics m;
      util::Timer timer;
      u32 msp = 0;
      {
        pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
        msp = strings::msp_suffix_array(s);
      }
      const double ms = timer.millis();
      table.add_row(n, "suffix-array (par)", msp, m.ops(),
                    static_cast<double>(m.ops()) / static_cast<double>(n), ms);
      json.record("e3_msp", n, "suffix-array (par)", pram::threads(), ms);
    }
  }
  table.print();
  std::cout << "\n(simple's and suffix-array's ops/n track lg n; efficient's stays\n"
            << " near-constant — the O(n log n) vs O(n log log n) separation of\n"
            << " Lemma 3.7.)\n";
  return 0;
}
