// Unit tests for instance (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Io, RoundTripStream) {
  util::Rng rng(2301);
  const auto inst = util::random_function(500, 4, rng);
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

TEST(Io, RoundTripEmpty) {
  graph::Instance inst;
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_TRUE(loaded.f.empty());
  EXPECT_TRUE(loaded.b.empty());
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("not-an-instance v1\n3\n0 1 2\n0 0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsWrongVersion) {
  std::stringstream ss("sfcp-instance v2\n1\n0\n0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsTruncatedF) {
  std::stringstream ss("sfcp-instance v1\n3\n0 1\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsOutOfRangeFunction) {
  std::stringstream ss("sfcp-instance v1\n2\n0 5\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  util::Rng rng(2307);
  const auto inst = util::random_function(100, 3, rng);
  const std::string path = ::testing::TempDir() + "/sfcp_io_test.txt";
  util::save_instance_file(path, inst);
  const auto loaded = util::load_instance_file(path);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(util::load_instance_file("/nonexistent/path/x.txt"), std::runtime_error);
}

TEST(Io, PaperExampleRoundTrip) {
  const auto inst = util::paper_example_2_2();
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

// ---- error paths (text) ---------------------------------------------------

TEST(Io, RejectsTruncatedB) {
  std::stringstream ss("sfcp-instance v1\n3\n0 1 2\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsMissingSize) {
  std::stringstream ss("sfcp-instance v1\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsLabelOverflow) {
  // 2^32 does not fit a u32: extraction fails, the loader must throw rather
  // than silently clamp.
  std::stringstream ss("sfcp-instance v1\n2\n0 1\n4294967296 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsFunctionOverflow) {
  std::stringstream ss("sfcp-instance v1\n2\n0 99999999999\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsUnreasonableSize) {
  std::stringstream ss("sfcp-instance v1\n99999999999999\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, TruncatedFileThrows) {
  util::Rng rng(2311);
  const auto inst = util::random_function(200, 3, rng);
  const std::string path = ::testing::TempDir() + "/sfcp_io_truncated.txt";
  {
    std::stringstream ss;
    util::save_instance(ss, inst);
    const std::string full = ss.str();
    std::ofstream os(path, std::ios::binary);
    os.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_THROW(util::load_instance_file(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- binary format (sfcp-instance v2) -------------------------------------

TEST(IoBinary, RoundTripStream) {
  util::Rng rng(2401);
  const auto inst = util::random_function(777, 5, rng);
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const auto loaded = util::load_instance(ss);  // autodetected
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

TEST(IoBinary, RoundTripEmpty) {
  graph::Instance inst;
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_TRUE(loaded.f.empty());
  EXPECT_TRUE(loaded.b.empty());
}

TEST(IoBinary, FileRoundTripAndAutodetect) {
  util::Rng rng(2402);
  const auto inst = util::random_permutation(512, 4, rng);
  const std::string bin_path = ::testing::TempDir() + "/sfcp_io_test.bin";
  const std::string txt_path = ::testing::TempDir() + "/sfcp_io_test2.txt";
  util::save_instance_file(bin_path, inst, util::InstanceFormat::Binary);
  util::save_instance_file(txt_path, inst, util::InstanceFormat::Text);
  const auto from_bin = util::load_instance_file(bin_path);
  const auto from_txt = util::load_instance_file(txt_path);
  EXPECT_EQ(from_bin.f, inst.f);
  EXPECT_EQ(from_bin.b, inst.b);
  EXPECT_EQ(from_txt.f, from_bin.f);
  EXPECT_EQ(from_txt.b, from_bin.b);
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(IoBinary, RejectsTruncatedPayload) {
  util::Rng rng(2403);
  const auto inst = util::random_function(100, 3, rng);
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  const std::string full = ss.str();
  for (const std::size_t keep : {std::size_t{4}, std::size_t{10}, full.size() - 5}) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_THROW(util::load_instance(cut), std::runtime_error) << "keep=" << keep;
  }
}

TEST(IoBinary, RejectsBadMagic) {
  std::stringstream ss(std::string("\x7fwrongmg") + std::string(12, '\0'));
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(IoBinary, RejectsOutOfRangeFunction) {
  // Valid container, f[1] = 7 out of range for n = 2.
  graph::Instance inst;
  inst.f = {0, 1};
  inst.b = {0, 0};
  std::stringstream ss;
  util::save_instance_binary(ss, inst);
  std::string bytes = ss.str();
  bytes[8 + 4 + 4] = 7;  // magic(8) + n(4) + f[0](4), little-endian low byte
  std::stringstream patched(bytes);
  EXPECT_THROW(util::load_instance(patched), std::invalid_argument);
}

TEST(IoBinary, EmptyInputThrows) {
  std::stringstream ss;
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

}  // namespace
}  // namespace sfcp
