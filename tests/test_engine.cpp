// The Engine facade: batch and incremental implementations behind one
// surface, discoverable by name, agreeing view-for-view under the same edit
// stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<u32> to_vec(std::span<const u32> s) { return {s.begin(), s.end()}; }

TEST(Engine, RegistryEnumeratesBuiltins) {
  const auto names = engines().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "batch"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "incremental"), names.end());
  EXPECT_NE(engines().find("batch"), nullptr);
  EXPECT_EQ(engines().find("no-such-engine"), nullptr);
  util::Rng rng(80);
  EXPECT_THROW(engines().make("no-such-engine", util::random_function(10, 2, rng)),
               std::out_of_range);
}

TEST(Engine, AllEnginesAgreeUnderTheSameEditStream) {
  util::Rng rng(81);
  const auto inst = util::random_function(1200, 4, rng);
  util::Rng stream_rng(82);
  const auto stream =
      util::random_edit_stream(inst, 90, util::EditMix::Uniform, 6, stream_rng);

  std::vector<std::unique_ptr<Engine>> all;
  for (const auto& info : engines().all()) {
    all.push_back(engines().make(info.name, inst));
    EXPECT_EQ(all.back()->kind(), info.name);
    EXPECT_EQ(all.back()->size(), inst.size());
  }
  ASSERT_GE(all.size(), 2u);

  for (std::size_t i = 0; i < stream.size(); i += 3) {
    const auto chunk = std::span<const inc::Edit>(stream).subspan(
        i, std::min<std::size_t>(3, stream.size() - i));
    for (auto& e : all) e->apply(chunk);
    const core::PartitionView expected = all[0]->view();
    for (std::size_t j = 1; j < all.size(); ++j) {
      const core::PartitionView got = all[j]->view();
      ASSERT_EQ(to_vec(got.labels()), to_vec(expected.labels()))
          << all[j]->kind() << " diverged after " << i + chunk.size() << " edits";
      ASSERT_EQ(got.num_classes(), expected.num_classes());
    }
  }
}

TEST(Engine, EpochAdvancesWithEditsAndStampsViews) {
  util::Rng rng(83);
  auto engine = engines().make("batch", util::random_function(300, 3, rng));
  EXPECT_EQ(engine->epoch(), 0u);
  EXPECT_EQ(engine->view().epoch(), 0u);
  engine->set_b(5, engine->instance().b[5] + 1);  // guaranteed state changes
  engine->set_f(6, (engine->instance().f[6] + 1) % 300);
  EXPECT_EQ(engine->epoch(), 2u);
  EXPECT_EQ(engine->view().epoch(), 2u);
}

TEST(Engine, NoOpEditsDoNotAdvanceAnyEnginesEpoch) {
  util::Rng rng(87);
  const auto inst = util::random_function(300, 3, rng);
  for (const auto& info : engines().all()) {
    auto engine = engines().make(info.name, inst);
    const core::PartitionView v0 = engine->view();
    engine->set_b(5, inst.b[5]);
    engine->set_f(6, inst.f[6]);
    const std::vector<inc::Edit> batch = {inc::Edit::set_b(7, inst.b[7]),
                                          inc::Edit::set_f(8, inst.f[8])};
    engine->apply(batch);
    EXPECT_EQ(engine->epoch(), 0u) << info.name;
    // Epoch-based pollers rely on this: unchanged partition, unchanged stamp.
    EXPECT_EQ(engine->view().epoch(), v0.epoch()) << info.name;
  }
}

TEST(Engine, BatchViewIsCachedPerEpochAndIsolated) {
  util::Rng rng(84);
  const auto inst = util::random_function(400, 4, rng);
  BatchEngine engine(inst);
  const core::PartitionView v0 = engine.view();
  const std::vector<u32> q0 = to_vec(v0.labels());
  EXPECT_EQ(engine.view().labels().data(), v0.labels().data());  // cached
  engine.set_b(3, inst.b[3] + 1);  // guaranteed state change
  const core::PartitionView v1 = engine.view();
  EXPECT_EQ(to_vec(v0.labels()), q0);  // old snapshot untouched
  EXPECT_GT(v1.epoch(), v0.epoch());
}

TEST(Engine, EditValidationThrowsBeforeAnyStateChanges) {
  util::Rng rng(85);
  auto engine = engines().make("batch", util::random_function(64, 3, rng));
  const std::vector<u32> before = to_vec(engine->view().labels());
  const std::vector<inc::Edit> bad = {inc::Edit::set_b(1, 2), inc::Edit::set_f(0, 64)};
  EXPECT_THROW(engine->apply(bad), std::invalid_argument);
  EXPECT_THROW(engine->set_f(64, 0), std::invalid_argument);
  EXPECT_EQ(engine->epoch(), 0u);
  EXPECT_EQ(to_vec(engine->view().labels()), before);
}

TEST(Engine, CheckpointSupportIsEngineSpecific) {
  util::Rng rng(86);
  const auto inst = util::random_function(500, 4, rng);
  auto batch = engines().make("batch", inst);
  auto incremental = engines().make("incremental", inst);
  incremental->set_b(7, 3);

  std::ostringstream none;
  EXPECT_FALSE(batch->save_checkpoint(none));
  EXPECT_TRUE(none.str().empty());

  std::ostringstream os;
  ASSERT_TRUE(incremental->save_checkpoint(os));
  std::istringstream is(os.str());
  auto restored = load_incremental_engine(is);
  EXPECT_EQ(restored->kind(), "incremental");
  EXPECT_EQ(restored->epoch(), incremental->epoch());
  EXPECT_EQ(to_vec(restored->view().labels()), to_vec(incremental->view().labels()));
}

}  // namespace
}  // namespace sfcp
