#pragma once
// prof — the scoped hierarchical phase profiler (Tic/Toc in the style of
// SCTL/pvfmm's Profile, grown for this repo's session model).
//
//   prof::Profiler profiler;
//   prof::ScopedProfiler guard(profiler);          // install for the process
//   {
//     prof::Scope s("solve/rename");               // RAII: wall-ns on exit
//     prof::charge_bytes(8 * n);                   // roofline accounting
//     prof::charge_flops(n);
//   }
//   prof::ProfileTree t = profiler.snapshot();     // merged across threads
//
// Recording is per-thread: each thread owns a buffer (current scope path +
// a path→stats map) and only takes its own uncontended mutex at scope exit,
// so threads never serialize against each other; snapshot() merges the
// buffers into one flat, sorted ProfileTree.  Hierarchy comes from both
// RAII nesting (an inner Scope("rename") under Scope("solve") records as
// "solve/rename") and embedded slashes in the name itself — the latter is
// what `pram::parallel_for` bodies use, since worker threads start from an
// empty path (a worker's Scope("shard/repair") lands under "shard" even
// though the opening "shard" scope lives on the caller's thread).  A
// parent's ns therefore includes same-thread children (the scope spans
// them) but NOT cross-thread children, whose summed ns can exceed the
// parent's wall time; renderers clamp self-time at zero.
//
// FLOP/byte charges (charge_flops/charge_bytes) accumulate into the
// innermost open Scope on the calling thread and stay on that node — they
// are NOT rolled up into ancestors, so a node's achieved GB/s is always
// its own traffic over its own wall time.
//
// Which profiler records?  The installed ExecutionContext's `profiler`
// field first, else the process-wide default set by ScopedProfiler.  Note
// the deliberate asymmetry with Metrics (whose null-in-context means
// "don't count"): engines install internal context copies that know
// nothing about profiling, and the serve::Server loop thread is not the
// thread that configured the session — falling through to the process
// default is what lets one `prof::ScopedProfiler` at the top of a bench or
// CLI run capture every layer underneath.
//
// Cost: compiled out entirely unless SFCP_PROFILE is defined (CMake
// -DSFCP_PROFILE=ON).  When off, Scope is an empty 1-byte object and the
// charge functions are no-ops — release hot paths pay zero.  ProfileTree
// and Profiler themselves always compile, so stats plumbing, the wire
// codec and the tools build identically in both modes (they just see an
// empty tree when profiling is off).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pram/execution_context.hpp"
#include "prof/clock.hpp"

namespace sfcp::prof {

using u64 = std::uint64_t;

#if defined(SFCP_PROFILE)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// One merged node of the flat profile tree ("solve/rename").
struct PhaseNode {
  std::string path;  ///< slash-joined scope path, depth = count of '/'
  u64 ns = 0;        ///< summed wall time of every entry into this path
  u64 count = 0;     ///< number of scope entries merged in
  u64 flops = 0;     ///< charged floating/integer ops (caller's estimate)
  u64 bytes = 0;     ///< charged memory traffic (caller's estimate)

  friend bool operator==(const PhaseNode&, const PhaseNode&) = default;
};

/// A merged, path-sorted snapshot.  Plain data: copyable, wire-encodable,
/// meaningful (empty) even in SFCP_PROFILE=OFF builds.
struct ProfileTree {
  std::vector<PhaseNode> phases;  ///< sorted by path

  bool empty() const noexcept { return phases.empty(); }

  /// The node at exactly `path`, or null.
  const PhaseNode* find(std::string_view path) const noexcept;

  /// Wall-ns of `path`, or 0 when absent (operator convenience for stats).
  u64 ns_of(std::string_view path) const noexcept;

  /// Renders the indented tree: count, total/self ms, achieved GB/s and
  /// GFLOP/s per node, and %% of `peak_gbps` when a positive peak is given
  /// (the roofline column).  Self-time is clamped at zero where
  /// cross-thread children oversubscribe the parent (see file comment).
  void render(std::ostream& os, double peak_gbps = 0.0) const;
};

class Scope;

/// Collects scopes from every thread that records into it.  Thread-safe:
/// snapshot()/reset() may run concurrently with scopes on other threads
/// (e.g. a STATS request against a live server loop).  Must outlive any
/// Scope recording into it.
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Merges every thread's buffer into one sorted tree.
  ProfileTree snapshot() const;

  /// Drops all recorded stats (open scopes keep recording afterwards).
  void reset();

 private:
  friend class Scope;
  struct ThreadBuf {
    mutable std::mutex mu;  ///< owner thread at scope exit vs. snapshot
    std::unordered_map<std::string, PhaseNode> phases;  ///< key == path
    std::string path;  ///< current scope path; OWNER THREAD ONLY
  };

  ThreadBuf* local_buf_();  ///< this thread's buffer, created on first use

  const u64 id_;  ///< process-unique, keys the thread-local buffer cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

namespace detail {
/// The process-wide fallback profiler (see file comment for why this is
/// global, not thread-local).  Use ScopedProfiler, not this, to set it.
Profiler* default_profiler() noexcept;
void set_default_profiler(Profiler* p) noexcept;
}  // namespace detail

/// The profiler new scopes on this thread record into: the installed
/// context's, else the process default, else null (scopes inert).
inline Profiler* session_profiler() noexcept {
  const pram::ExecutionContext* c = pram::current_context();
  if (c != nullptr && c->profiler != nullptr) return c->profiler;
  return detail::default_profiler();
}

/// Installs `p` as the process-wide default profiler for the guard's
/// lifetime (restores the previous one on exit).  Guards nest; they are
/// NOT thread-scoped — see the file comment.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler& p) noexcept : saved_(detail::default_profiler()) {
    detail::set_default_profiler(&p);
  }
  ~ScopedProfiler() { detail::set_default_profiler(saved_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* saved_;
};

/// snapshot() of the session profiler, or an empty tree when none is
/// installed (or profiling is compiled out).
ProfileTree session_snapshot();

#if defined(SFCP_PROFILE)

/// RAII phase scope.  `name` may embed '/' to claim hierarchy explicitly
/// (required inside parallel_for bodies, whose threads start at the root).
/// Inert (and charge-dropping) when no profiler is installed.
class Scope {
 public:
  explicit Scope(const char* name);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  void add_flops(u64 n) noexcept { flops_ += n; }
  void add_bytes(u64 n) noexcept { bytes_ += n; }

 private:
  Profiler::ThreadBuf* buf_ = nullptr;  ///< null = inert scope
  Scope* parent_ = nullptr;
  u64 start_ = 0;
  u64 flops_ = 0;
  u64 bytes_ = 0;
  std::size_t saved_len_ = 0;  ///< buf_->path length to restore on exit
};

namespace detail {
inline thread_local Scope* tls_scope = nullptr;  ///< innermost ACTIVE scope
}  // namespace detail

/// Charges ops/bytes to the innermost open scope on this thread (no-op
/// outside any scope).  Estimates, not measurements: callers charge what
/// the phase logically moved/computed and the report divides by wall time.
inline void charge_flops(u64 n) noexcept {
  if (detail::tls_scope != nullptr) detail::tls_scope->add_flops(n);
}
inline void charge_bytes(u64 n) noexcept {
  if (detail::tls_scope != nullptr) detail::tls_scope->add_bytes(n);
}

#else  // !SFCP_PROFILE — everything below compiles to nothing.

class Scope {
 public:
  explicit Scope(const char*) noexcept {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  void add_flops(u64) noexcept {}
  void add_bytes(u64) noexcept {}
};

inline void charge_flops(u64) noexcept {}
inline void charge_bytes(u64) noexcept {}

#endif  // SFCP_PROFILE

}  // namespace sfcp::prof
