#pragma once
// A single mutation of an SFCP instance: redirect one function entry or
// relabel one node's initial-partition class.  Kept dependency-free (std
// only) so that workload generators and (de)serializers can speak edits
// without pulling in the incremental engine.

#include <span>
#include <stdexcept>
#include <string>

#include "pram/types.hpp"

namespace sfcp::inc {

struct Edit {
  enum class Kind : u8 {
    SetF,  ///< f[node] <- value (value must be a node index)
    SetB,  ///< b[node] <- value (any u32 label)
  };

  Kind kind = Kind::SetB;
  u32 node = 0;
  u32 value = 0;

  static constexpr Edit set_f(u32 x, u32 y) noexcept { return Edit{Kind::SetF, x, y}; }
  static constexpr Edit set_b(u32 x, u32 label) noexcept { return Edit{Kind::SetB, x, label}; }

  friend bool operator==(const Edit&, const Edit&) = default;
};

/// Applies the edit's raw array write to (f, b); returns whether the write
/// changed anything (false = no-op).  The one dispatch every raw-applying
/// surface shares, so a future Edit kind cannot be missed in one of them.
inline bool apply_raw(const Edit& e, std::span<u32> f, std::span<u32> b) noexcept {
  u32& slot = (e.kind == Edit::Kind::SetF ? f : b)[e.node];
  if (slot == e.value) return false;
  slot = e.value;
  return true;
}

/// Range-checks an edit against an n-node instance; throws
/// std::invalid_argument prefixed with `who` on an out-of-range node or
/// set_f target.  The one source of truth for every edit-applying surface
/// (IncrementalSolver, the Engine facade).
inline void validate_edit(const Edit& e, std::size_t n, const char* who) {
  if (e.node >= n) {
    throw std::invalid_argument(std::string(who) + ": edit node " + std::to_string(e.node) +
                                " out of range (n = " + std::to_string(n) + ")");
  }
  if (e.kind == Edit::Kind::SetF && e.value >= n) {
    throw std::invalid_argument(std::string(who) + ": set_f target " +
                                std::to_string(e.value) +
                                " out of range (n = " + std::to_string(n) + ")");
  }
}

}  // namespace sfcp::inc
