#include "prim/integer_sort.hpp"

#include <algorithm>
#include <utility>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prim/scan.hpp"

namespace sfcp::prim {

namespace {

constexpr int kDigitBits = 8;
constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;

// One stable counting pass on digit `shift`, permuting `src_idx` into
// `dst_idx` ordered by the digit.
void counting_pass(std::span<const u64> keys, std::span<const u32> src_idx,
                   std::span<u32> dst_idx, int shift) {
  const std::size_t n = src_idx.size();
  const int nb = pram::num_blocks(n);
  const std::size_t nbz = static_cast<std::size_t>(nb);
  // counts laid out column-major: counts[bucket * nb + block], so that a
  // single exclusive scan yields stable global offsets.
  std::vector<u32> counts(kBuckets * nbz, 0);
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    u32* c = counts.data() + 0;  // column-major addressing below
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t digit = (keys[src_idx[i]] >> shift) & (kBuckets - 1);
      ++c[digit * nbz + static_cast<std::size_t>(b)];
    }
  });
  exclusive_scan<u32>(counts, counts);
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t digit = (keys[src_idx[i]] >> shift) & (kBuckets - 1);
      dst_idx[counts[digit * nbz + static_cast<std::size_t>(b)]++] = src_idx[i];
    }
  });
  pram::charge_sort(2 * n + kBuckets * nbz);
}

u64 max_key_of(std::span<const u64> keys) {
  if (keys.empty()) return 0;
  return reduce_max<u64>(keys);
}

}  // namespace

int radix_passes(u64 max_key) noexcept {
  // Cap at 8 before shifting: a 64-bit shift by >= 64 is undefined.
  int passes = 1;
  while (passes < 8 && (max_key >> (passes * kDigitBits)) != 0) ++passes;
  return passes;
}

std::vector<u32> sort_order_by_key(std::span<const u64> keys, u64 max_key) {
  const std::size_t n = keys.size();
  std::vector<u32> order(n);
  pram::parallel_for(0, n, [&](std::size_t i) { order[i] = static_cast<u32>(i); });
  if (n <= 1) return order;
  if (max_key == 0) max_key = max_key_of(keys);
  const int passes = radix_passes(max_key);
  std::vector<u32> tmp(n);
  std::span<u32> a{order}, b{tmp};
  for (int p = 0; p < passes; ++p) {
    counting_pass(keys, a, b, p * kDigitBits);
    std::swap(a, b);
  }
  if (a.data() != order.data()) {
    pram::parallel_for(0, n, [&](std::size_t i) { order[i] = tmp[i]; });
  }
  return order;
}

void radix_sort(std::vector<u64>& keys, std::vector<u32>* values, u64 max_key) {
  const std::vector<u32> order = sort_order_by_key(keys, max_key);
  const std::size_t n = keys.size();
  std::vector<u64> sorted_keys(n);
  pram::parallel_for(0, n, [&](std::size_t i) { sorted_keys[i] = keys[order[i]]; });
  keys = std::move(sorted_keys);
  if (values != nullptr) {
    std::vector<u32> sorted_vals(n);
    pram::parallel_for(0, n, [&](std::size_t i) { sorted_vals[i] = (*values)[order[i]]; });
    *values = std::move(sorted_vals);
  }
}

}  // namespace sfcp::prim
