#include "graph/functional_graph.hpp"

#include <atomic>

#include "pram/parallel_for.hpp"

namespace sfcp::graph {

void validate(const Instance& inst) {
  const std::size_t n = inst.f.size();
  if (inst.b.size() != n) {
    throw std::invalid_argument("Instance: |b| = " + std::to_string(inst.b.size()) +
                                " does not match |f| = " + std::to_string(n));
  }
  if (n >= static_cast<std::size_t>(kNone)) {
    throw std::invalid_argument("Instance: size exceeds u32 index space");
  }
  std::atomic<bool> ok{true};
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (inst.f[x] >= n) ok.store(false, std::memory_order_relaxed);
  });
  if (!ok.load()) throw std::invalid_argument("Instance: f maps outside [0, n)");
}

std::vector<u32> iterate_function(std::span<const u32> f, u64 k) {
  const std::size_t n = f.size();
  std::vector<u32> result(n), power(f.begin(), f.end()), tmp(n);
  pram::parallel_for(0, n, [&](std::size_t x) { result[x] = static_cast<u32>(x); });
  while (k > 0) {
    if (k & 1) {
      pram::parallel_for(0, n, [&](std::size_t x) { tmp[x] = power[result[x]]; });
      result.swap(tmp);
    }
    k >>= 1;
    if (k > 0) {
      pram::parallel_for(0, n, [&](std::size_t x) { tmp[x] = power[power[x]]; });
      power.swap(tmp);
    }
  }
  return result;
}

std::vector<u32> indegrees(std::span<const u32> f) {
  const std::size_t n = f.size();
  std::vector<std::atomic<u32>> deg(n);
  pram::parallel_for(0, n, [&](std::size_t x) { deg[x].store(0, std::memory_order_relaxed); });
  pram::parallel_for(0, n, [&](std::size_t x) {
    deg[f[x]].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<u32> out(n);
  pram::parallel_for(0, n, [&](std::size_t x) { out[x] = deg[x].load(std::memory_order_relaxed); });
  return out;
}

}  // namespace sfcp::graph
