#pragma once
// The session-oriented public API: a reusable Solver owning its strategy
// configuration, ExecutionContext, and workspaces.
//
//   sfcp::pram::Metrics metrics;
//   sfcp::core::Solver solver(
//       sfcp::registry().at("euler-jump-level"),
//       sfcp::pram::ExecutionContext{}.with_threads(4).with_metrics(&metrics));
//   sfcp::core::Result r = solver.solve(inst);     // workspaces reused
//   auto batch = solver.solve_batch(instances);    // parallel across instances
//
// Each Solver is an isolated session: its context is installed thread-locally
// for the duration of each solve, so two Solvers with different thread
// budgets or metrics sinks can run concurrently from different threads
// without interfering.  A single Solver is NOT safe for concurrent use —
// give each thread its own (they are cheap), or use solve_batch.
//
// The free function core::solve(inst, opt) remains as a thin stateless
// delegate for one-shot callers.

#include <functional>
#include <span>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "pram/execution_context.hpp"

namespace sfcp::core {

class Solver {
 public:
  explicit Solver(Options opt = Options::parallel(), pram::ExecutionContext ctx = {})
      : opt_(opt), ctx_(ctx) {}

  const Options& options() const noexcept { return opt_; }
  pram::ExecutionContext& context() noexcept { return ctx_; }
  const pram::ExecutionContext& context() const noexcept { return ctx_; }

  /// Solves one instance under this solver's context.  Validates the
  /// instance before dispatch (throws std::invalid_argument); repeated calls
  /// on same-sized instances amortize all pipeline allocations.
  Result solve(const graph::Instance& inst);

  /// Like solve(), but returns the partition as an immutable PartitionView
  /// stamped with `epoch` — the preferred surface for serving readers.
  PartitionView solve_view(const graph::Instance& inst, u64 epoch = 0);

  struct BatchEntry {
    Result result;                  ///< canonical labelling, as per solve()
    pram::MetricsSnapshot metrics;  ///< this instance's work/depth counters
  };

  /// Solves independent instances in parallel under this solver's context.
  /// All instances are validated up front (throws before any work starts);
  /// results and per-instance metrics are index-aligned with the input.
  /// Labels are byte-identical to per-instance solve() calls.
  std::vector<BatchEntry> solve_batch(std::span<const graph::Instance> instances);

  /// Called once per instance from the worker thread that solved it, while
  /// that worker's per-batch workspace still describes instance `index` —
  /// the ONLY window in which it does, since workspaces are reused across
  /// instances within the batch.  Invoked concurrently for distinct indices
  /// (the consumer must be thread-safe for disjoint work); the per-instance
  /// ExecutionContext is still installed, so anything the consumer builds
  /// (e.g. a warm engine seeded from the workspace) sees it.
  using BatchConsumer = std::function<void(std::size_t index, Result&& result,
                                           const SolveWorkspace& ws)>;

  /// Streaming flavour of solve_batch: instead of collecting results, hands
  /// each (index, result, workspace) to `consume` on the solving worker.
  /// This is what lets N cold-started serving engines be seeded from one
  /// batch without N serial solves or N retained workspaces.  Returns the
  /// index-aligned per-instance metrics.
  std::vector<pram::MetricsSnapshot> solve_batch(std::span<const graph::Instance> instances,
                                                 const BatchConsumer& consume);

  /// The workspace left by the most recent solve(): its cycle structure and
  /// per-cycle diagnostics describe that solve's instance.  Valid until the
  /// next solve/solve_batch call; empty before the first.  This is what lets
  /// re-entrant callers (the incremental engine) seed auxiliary state from a
  /// full solve without recomputing the pipeline's intermediates.
  const SolveWorkspace& workspace() const noexcept { return ws_; }

 private:
  Options opt_;
  pram::ExecutionContext ctx_;
  SolveWorkspace ws_;
};

}  // namespace sfcp::core
