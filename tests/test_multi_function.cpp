// Unit tests for the multi-function (k-letter) coarsest partition
// extension: cross-checks Moore vs Hopcroft, and the k=1 case against the
// paper's single-function solver.
#include <gtest/gtest.h>

#include "core/coarsest_partition.hpp"
#include "core/multi_function.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::MultiInstance;
using core::solve_multi_hopcroft;
using core::solve_multi_moore;

MultiInstance random_multi(std::size_t n, std::size_t k, u32 labels, util::Rng& rng) {
  MultiInstance inst;
  inst.b.resize(n);
  inst.f.assign(k, std::vector<u32>(n));
  for (std::size_t a = 0; a < k; ++a) {
    for (auto& v : inst.f[a]) v = rng.below_u32(static_cast<u32>(n));
  }
  for (auto& v : inst.b) v = rng.below_u32(labels);
  return inst;
}

TEST(MultiFunction, ValidateRejectsBadInput) {
  MultiInstance inst;
  inst.b = {0, 0};
  EXPECT_THROW(core::validate(inst), std::invalid_argument);  // no functions
  inst.f = {{0}};
  EXPECT_THROW(core::validate(inst), std::invalid_argument);  // size mismatch
  inst.f = {{0, 5}};
  EXPECT_THROW(core::validate(inst), std::invalid_argument);  // out of range
}

TEST(MultiFunction, SingleLetterMatchesPaperSolver) {
  util::Rng rng(2001);
  for (int iter = 0; iter < 20; ++iter) {
    const auto single = util::random_function(1 + rng.below(800), 3, rng);
    MultiInstance multi;
    multi.f = {single.f};
    multi.b = single.b;
    const auto ref = core::solve(single);
    EXPECT_EQ(solve_multi_moore(multi).q, ref.q) << "moore iter " << iter;
    EXPECT_EQ(solve_multi_hopcroft(multi).q, ref.q) << "hopcroft iter " << iter;
  }
}

TEST(MultiFunction, MooreAndHopcroftAgree) {
  util::Rng rng(2003);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = random_multi(1 + rng.below(500), 1 + rng.below(3), 3, rng);
    const auto moore = solve_multi_moore(inst);
    const auto hopcroft = solve_multi_hopcroft(inst);
    EXPECT_EQ(moore.q, hopcroft.q) << "iter " << iter;
    EXPECT_EQ(moore.num_blocks, hopcroft.num_blocks);
  }
}

TEST(MultiFunction, StabilityUnderEveryLetter) {
  util::Rng rng(2007);
  const auto inst = random_multi(600, 3, 4, rng);
  const auto r = solve_multi_moore(inst);
  EXPECT_TRUE(core::is_refinement(r.q, inst.b));
  for (const auto& f : inst.f) {
    EXPECT_TRUE(core::is_stable(r.q, f));
  }
}

TEST(MultiFunction, TwoLetterDfaKnownCase) {
  // Classic redundant DFA: states 0/1 equivalent (same acceptance, same
  // transitions up to the equivalence), state 2 distinct.
  MultiInstance inst;
  inst.f = {{2, 2, 2}, {1, 0, 2}};
  inst.b = {0, 0, 1};
  const auto r = solve_multi_moore(inst);
  EXPECT_EQ(r.num_blocks, 2u);
  EXPECT_EQ(r.q[0], r.q[1]);
  EXPECT_NE(r.q[0], r.q[2]);
}

TEST(MultiFunction, MoreLettersOnlyRefine) {
  // Adding a letter can only split blocks further.
  util::Rng rng(2011);
  auto inst = random_multi(400, 1, 2, rng);
  const auto one = solve_multi_moore(inst);
  inst.f.push_back(std::vector<u32>(400));
  for (auto& v : inst.f[1]) v = rng.below_u32(400);
  const auto two = solve_multi_moore(inst);
  EXPECT_GE(two.num_blocks, one.num_blocks);
}

TEST(MultiFunction, IdentityLettersAreNoOps) {
  util::Rng rng(2017);
  auto base = util::random_function(300, 3, rng);
  MultiInstance with_id;
  with_id.b = base.b;
  std::vector<u32> id(300);
  for (u32 i = 0; i < 300; ++i) id[i] = i;
  with_id.f = {base.f, id};
  MultiInstance without;
  without.b = base.b;
  without.f = {base.f};
  EXPECT_EQ(solve_multi_moore(with_id).q, solve_multi_moore(without).q);
}

}  // namespace
}  // namespace sfcp
