#pragma once
// fleet::RouteTable / fleet::StableSlots — the lock-free-read routing layer
// under fleet::FleetEngine.
//
// The fleet's hot path is a routing lookup per operation: id → slot through
// an open-addressed hash table, then slot → engine through the slot array.
// Both structures mutate ONLY on the caller lane (materialize, create,
// evict-driven growth), but they are read from everywhere once the warm
// path fans per-instance repairs across pool lanes — workers resolve their
// group's slot, and monitoring threads probe contains()/is_warm() while a
// batch is in flight.  Locking a reader path that is >99% reads would
// serialize exactly the part the fan parallelized, so both structures are
// single-writer / multi-reader with plain atomic publication instead:
//
//   * RouteTable keeps generations of the open-addressed cell array.  Cells
//     only transition empty→occupied within a generation (ids are never
//     removed; eviction keeps the slot), so a reader probing a published
//     generation sees a prefix of the writer's inserts and every occupied
//     cell it reaches is valid.  Growth rehashes into a fresh generation
//     and publishes it with one release store; superseded generations are
//     RETAINED (chained off the newest) until destruction, so a reader that
//     loaded the old pointer keeps probing valid memory.  Retention is
//     bounded: capacities grow geometrically, so every dead generation
//     together costs less than one live table.
//
//   * StableSlots is an append-only chunked array: elements live in
//     fixed-size chunks that never move, so a slot reference taken on any
//     thread stays valid across growth (the vector it replaces invalidated
//     every reference on push_back).  The chunk directory is a fixed array
//     of atomic chunk pointers sized for ~33M slots.
//
// Memory-ordering contract (what makes the reader race-free): the writer
// fully initializes the immutable part of a slot (its id) BEFORE storing
// the slot index into a table cell with release; a reader acquires the cell
// and may then read the id plus any atomic slot fields (tier).  Everything
// else in a slot (engine pointer, LRU links, footprints) remains
// caller-lane-only state — readers must not touch it.

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

#include "pram/types.hpp"

namespace sfcp::fleet {

/// splitmix64 finalizer — full-avalanche hash for the open-addressed table.
inline u64 route_hash(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Open-addressed id→slot map with lock-free reads and one writer (the
/// fleet caller lane).  `IdOf` maps a slot index back to its id so probes
/// can reject hash collisions; it must be safe to call from readers (the
/// fleet passes a StableSlots lookup of the immutable Slot::id).
class RouteTable {
 public:
  static constexpr u32 kNil = 0xffffffffu;

  RouteTable() : head_(std::make_unique<Gen>(kInitialCap)) {
    live_.store(head_.get(), std::memory_order_release);
  }
  RouteTable(const RouteTable&) = delete;
  RouteTable& operator=(const RouteTable&) = delete;

  /// Lock-free lookup, callable from any thread concurrently with insert().
  template <typename IdOf>
  u32 find(u64 id, IdOf&& id_of) const noexcept {
    const Gen* g = live_.load(std::memory_order_acquire);
    for (std::size_t i = route_hash(id) & g->mask;; i = (i + 1) & g->mask) {
      const u32 si = g->cells[i].load(std::memory_order_acquire);
      if (si == kNil) return kNil;
      if (id_of(si) == id) return si;
    }
  }

  /// Writer-only.  `id` must not already be present; the slot's id must be
  /// written before this call (the cell's release store publishes it).
  /// Grows at ~70% load, retaining the superseded generation for readers.
  template <typename IdOf>
  void insert(u64 id, u32 si, IdOf&& id_of) {
    Gen* g = head_.get();
    if ((size_ + 1) * 10 >= (g->mask + 1) * 7) {
      grow_(id_of);
      g = head_.get();
    }
    place_(*g, id, si);
    ++size_;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::size_t kInitialCap = 16;  // power of two

  struct Gen {
    explicit Gen(std::size_t cap)
        : cells(std::make_unique<std::atomic<u32>[]>(cap)), mask(cap - 1) {
      for (std::size_t i = 0; i < cap; ++i) cells[i].store(kNil, std::memory_order_relaxed);
    }
    std::unique_ptr<std::atomic<u32>[]> cells;
    std::size_t mask;
    std::unique_ptr<Gen> prev;  ///< retained for in-flight readers
  };

  static void place_(Gen& g, u64 id, u32 si) noexcept {
    std::size_t i = route_hash(id) & g.mask;
    while (g.cells[i].load(std::memory_order_relaxed) != kNil) i = (i + 1) & g.mask;
    g.cells[i].store(si, std::memory_order_release);
  }

  template <typename IdOf>
  void grow_(IdOf&& id_of) {
    const Gen* old = head_.get();
    auto next = std::make_unique<Gen>((old->mask + 1) * 2);
    for (std::size_t i = 0; i <= old->mask; ++i) {
      const u32 si = old->cells[i].load(std::memory_order_relaxed);
      if (si != kNil) place_(*next, id_of(si), si);
    }
    next->prev = std::move(head_);
    head_ = std::move(next);
    live_.store(head_.get(), std::memory_order_release);
  }

  std::unique_ptr<Gen> head_;      ///< newest generation; owns the retention chain
  std::atomic<Gen*> live_{nullptr};  ///< what readers probe
  std::size_t size_ = 0;
};

/// Append-only element store whose elements never move: references handed
/// to pool lanes stay valid while the caller lane keeps appending.  One
/// writer (push), lock-free element access from any thread for indices the
/// reader learned through a RouteTable cell (or `size()` acquire).
/// Elements are default-constructed in place — T need not be movable, so
/// slots can hold atomic fields.
template <typename T>
class StableSlots {
 public:
  StableSlots() : chunks_(std::make_unique<std::atomic<T*>[]>(kMaxChunks)) {
    for (std::size_t i = 0; i < kMaxChunks; ++i) {
      chunks_[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  ~StableSlots() {
    for (std::size_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }
  StableSlots(const StableSlots&) = delete;
  StableSlots& operator=(const StableSlots&) = delete;

  /// Writer-only: appends a default-constructed element, returns its index.
  u32 push() {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    const std::size_t c = i >> kChunkBits;
    if (c >= kMaxChunks) throw std::length_error("fleet::StableSlots: slot directory full");
    if (chunks_[c].load(std::memory_order_relaxed) == nullptr) {
      chunks_[c].store(new T[kChunkSize], std::memory_order_release);
    }
    size_.store(i + 1, std::memory_order_release);
    return static_cast<u32>(i);
  }

  T& operator[](u32 i) noexcept {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)[i & (kChunkSize - 1)];
  }
  const T& operator[](u32 i) const noexcept {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)[i & (kChunkSize - 1)];
  }

  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr std::size_t kChunkBits = 10;  // 1024 elements per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;  // ~33M elements

  std::unique_ptr<std::atomic<T*>[]> chunks_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace sfcp::fleet
