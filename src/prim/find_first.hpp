#pragma once
// "Position of the first 1 in a Boolean array" — the paper leans on the
// O(1)-time common-CRCW solution of Fich, Ragde & Wigderson [9] inside the
// m.s.p. duels.  We realize it as a blocked parallel min-reduction over the
// first hit of each block: O(n) work, two rounds.

#include <cstddef>
#include <span>

#include "pram/types.hpp"

namespace sfcp::prim {

/// Index of the first i with flags[i] != 0, or kNone if none.
u32 find_first_set(std::span<const u8> flags);

/// Index of the first i in [lo, hi) with pred(i), or kNone.  The predicate
/// variant avoids materializing the flag array (used by string duels, where
/// pred compares two rotated characters).
template <typename Pred>
u32 find_first_if(std::size_t lo, std::size_t hi, Pred&& pred);

}  // namespace sfcp::prim

#include "prim/find_first_impl.hpp"
