// The session API: Solver workspace reuse, solve_batch, ExecutionContext
// isolation, and the strategy registry.
//
// Acceptance-critical invariants:
//   * a Solver constructed once and reused across solves produces
//     byte-identical canonical labels to fresh per-call core::solve, for
//     every strategy in the registry;
//   * solve_batch matches per-instance solve on a 100-instance mixed
//     workload;
//   * two Solvers with different ExecutionContexts run concurrently without
//     interfering (labels and metrics).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<graph::Instance> mixed_workload(std::size_t count, u64 seed) {
  util::Rng rng(seed);
  std::vector<graph::Instance> insts;
  insts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 5) {
      case 0:
        insts.push_back(util::random_function(1 + rng.below(700), 1 + rng.below(5), rng));
        break;
      case 1:
        insts.push_back(util::random_permutation(1 + rng.below(400), 3, rng));
        break;
      case 2:
        insts.push_back(util::long_tail(64 + rng.below(400), 8, 2, rng));
        break;
      case 3:
        insts.push_back(util::bushy(64 + rng.below(400), 4, 16, 2, rng));
        break;
      default:
        insts.push_back(util::mergeable(64 + rng.below(400), 4, rng));
        break;
    }
  }
  return insts;
}

TEST(Registry, EnumeratesEveryCombinationPlusAliases) {
  const auto& reg = sfcp::registry();
  // 3 detectors x 2 structures x 3 tree labelers + parallel + sequential.
  EXPECT_EQ(reg.all().size(), 3u * 2u * 3u + 2u);
  std::set<std::string> names;
  for (const auto& e : reg.all()) names.insert(e.name);
  EXPECT_EQ(names.size(), reg.all().size()) << "registry names must be unique";
  EXPECT_NE(reg.find("parallel"), nullptr);
  EXPECT_NE(reg.find("sequential"), nullptr);
  EXPECT_NE(reg.find("euler-jump-level"), nullptr);
  EXPECT_EQ(reg.find("no-such-strategy"), nullptr);
  try {
    (void)reg.at("no-such-strategy");
    FAIL() << "at() must throw for unknown names";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-strategy"), std::string::npos);
  }
}

TEST(Registry, AddReplacesByName) {
  core::StrategyRegistry reg;
  reg.add({"x", "first", core::Options::parallel()});
  reg.add({"x", "second", core::Options::sequential()});
  ASSERT_EQ(reg.all().size(), 1u);
  EXPECT_EQ(reg.find("x")->description, "second");
}

// One Solver reused across >= 2 solves must match fresh per-call
// core::solve byte-for-byte, for every registry strategy.
TEST(Solver, ReusedWorkspaceMatchesFreshSolveForEveryStrategy) {
  const auto insts = mixed_workload(6, 0xA11CE);
  for (const auto& entry : sfcp::registry().all()) {
    core::Solver solver(entry.options);
    for (const auto& inst : insts) {
      const core::Result got = solver.solve(inst);
      const core::Result want = core::solve(inst, entry.options);
      ASSERT_EQ(got.q, want.q) << "strategy " << entry.name;
      ASSERT_EQ(got.num_blocks, want.num_blocks) << "strategy " << entry.name;
    }
    // Same instance twice through the same solver: identical output.
    const core::Result a = solver.solve(insts[0]);
    const core::Result b = solver.solve(insts[0]);
    ASSERT_EQ(a.q, b.q) << "strategy " << entry.name;
  }
}

TEST(Solver, WorkspaceSurvivesShrinkingAndGrowingInstances) {
  util::Rng rng(77);
  core::Solver solver;
  for (const std::size_t n : {2000u, 10u, 1500u, 1u, 800u}) {
    const auto inst = util::random_function(n, 3, rng);
    const auto got = solver.solve(inst);
    EXPECT_EQ(got.q, core::solve(inst).q) << "n=" << n;
  }
}

TEST(Solver, SolveBatchMatchesPerInstanceOn100InstanceMixedWorkload) {
  const auto insts = mixed_workload(100, 0xBA7C4);
  core::Solver solver;
  const auto batch = solver.solve_batch(insts);
  ASSERT_EQ(batch.size(), insts.size());
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const core::Result want = core::solve(insts[i]);
    ASSERT_EQ(batch[i].result.q, want.q) << "instance " << i;
    ASSERT_EQ(batch[i].result.num_blocks, want.num_blocks) << "instance " << i;
    EXPECT_GT(batch[i].metrics.operations, 0u) << "instance " << i;
    EXPECT_GT(batch[i].metrics.rounds, 0u) << "instance " << i;
  }
}

TEST(Solver, SolveBatchMatchesPerInstanceForEveryStrategy) {
  const auto insts = mixed_workload(8, 0x5EED);
  for (const auto& entry : sfcp::registry().all()) {
    core::Solver solver(entry.options);
    const auto batch = solver.solve_batch(insts);
    for (std::size_t i = 0; i < insts.size(); ++i) {
      ASSERT_EQ(batch[i].result.q, core::solve(insts[i], entry.options).q)
          << "strategy " << entry.name << " instance " << i;
    }
  }
}

TEST(Solver, SolveBatchLeavesSessionSinkUntouched) {
  pram::Metrics session;
  core::Solver solver(core::Options::parallel(),
                      pram::ExecutionContext{}.with_metrics(&session));
  const auto insts = mixed_workload(4, 0xF00D);
  const auto batch = solver.solve_batch(insts);
  // Batch work is charged to the per-instance sinks, not the session sink.
  EXPECT_EQ(session.ops(), 0u);
  u64 total = 0;
  for (const auto& e : batch) total += e.metrics.operations;
  EXPECT_GT(total, 0u);
  // A plain solve() afterwards charges the session sink again.
  (void)solver.solve(insts[0]);
  EXPECT_GT(session.ops(), 0u);
}

TEST(Solver, ContextThreadCountDoesNotChangeLabels) {
  util::Rng rng(13007);
  const auto inst = util::random_function(600, 3, rng);
  const core::Result want = core::solve(inst);
  for (int t : {1, 2, 8}) {
    core::Solver solver(core::Options::parallel(),
                        pram::ExecutionContext{}.with_threads(t).with_grain(64));
    EXPECT_EQ(solver.solve(inst).q, want.q) << "threads=" << t;
  }
}

// Two sessions with different contexts, running concurrently from two
// threads, must neither corrupt each other's labels nor leak work into each
// other's metrics sinks.  Work counts are deterministic for a fixed context,
// so each session must observe exactly the totals it observes when running
// alone.
TEST(Solver, ConcurrentSessionsWithDifferentContextsDoNotInterfere) {
  const auto insts = mixed_workload(12, 0xC0FFEE);
  std::vector<core::Result> expected;
  expected.reserve(insts.size());
  for (const auto& inst : insts) expected.push_back(core::solve(inst));

  const auto run_session = [&](int threads, std::size_t grain, pram::Metrics& sink,
                               int repeats, std::atomic<bool>& labels_ok) {
    core::Solver solver(core::Options::parallel(), pram::ExecutionContext{}
                                                       .with_threads(threads)
                                                       .with_grain(grain)
                                                       .with_metrics(&sink));
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < insts.size(); ++i) {
        if (solver.solve(insts[i]).q != expected[i].q) {
          labels_ok.store(false);
        }
      }
    }
  };

  // Solo baselines (deterministic per-context op totals).
  pram::Metrics solo_a, solo_b;
  std::atomic<bool> ok_solo{true};
  run_session(1, 4096, solo_a, 1, ok_solo);
  run_session(4, 64, solo_b, 1, ok_solo);
  ASSERT_TRUE(ok_solo.load());

  pram::Metrics m_a, m_b;
  std::atomic<bool> ok_a{true}, ok_b{true};
  constexpr int kRepeats = 3;
  std::thread ta([&] { run_session(1, 4096, m_a, kRepeats, ok_a); });
  std::thread tb([&] { run_session(4, 64, m_b, kRepeats, ok_b); });
  ta.join();
  tb.join();
  EXPECT_TRUE(ok_a.load()) << "session A produced wrong labels under concurrency";
  EXPECT_TRUE(ok_b.load()) << "session B produced wrong labels under concurrency";
  EXPECT_EQ(m_a.ops(), kRepeats * solo_a.ops()) << "session A's sink saw foreign work";
  EXPECT_EQ(m_b.ops(), kRepeats * solo_b.ops()) << "session B's sink saw foreign work";
}

TEST(Validate, NamesTheOffendingSizesAndIndex) {
  graph::Instance mismatched;
  mismatched.f = {0, 1, 2};
  mismatched.b = {0, 1};
  try {
    graph::validate(mismatched);
    FAIL() << "size mismatch must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("|b| = 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("|f| = 3"), std::string::npos) << msg;
  }

  graph::Instance out_of_range;
  out_of_range.f = {0, 1, 2, 99, 1, 98};
  out_of_range.b = {0, 0, 0, 0, 0, 0};
  try {
    graph::validate(out_of_range);
    FAIL() << "out-of-range f must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("f[3] = 99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 6)"), std::string::npos) << msg;
  }
}

TEST(Validate, SolveAndSolveBatchRejectMalformedInstances) {
  graph::Instance bad;
  bad.f = {0, 7};
  bad.b = {0, 0};
  core::Solver solver;
  EXPECT_THROW((void)solver.solve(bad), std::invalid_argument);
  EXPECT_THROW((void)core::solve(bad), std::invalid_argument);

  util::Rng rng(5);
  std::vector<graph::Instance> batch;
  batch.push_back(util::random_function(50, 2, rng));
  batch.push_back(bad);
  batch.push_back(util::random_function(50, 2, rng));
  EXPECT_THROW((void)solver.solve_batch(batch), std::invalid_argument);
}

TEST(Solver, ResultsAreCorrectPartitions) {
  const auto insts = mixed_workload(10, 0xCAFE);
  core::Solver solver;
  const auto batch = solver.solve_batch(insts);
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const auto report = core::verify_solution(insts[i], batch[i].result.q);
    EXPECT_TRUE(report.ok()) << "instance " << i << ": " << report.to_string();
  }
}

}  // namespace
}  // namespace sfcp
