// Serving throughput over real loopback TCP: a durable serve::Server
// (journal, fsync=epoch) on its own event-loop thread, driven by a
// serve::Client in the measured thread.
//
//   * BM_ServePipelinedEdits — one measured unit is a 1024-edit round sent
//     as 64-edit EDIT frames with a window of 8 in flight; acks (deferred to
//     the epoch flush) are collected as the window slides.  items_processed
//     counts edits, so the console rate is pipelined edits/sec — the number
//     the serving acceptance floor (>= 100k/s localized) reads.
//   * BM_ServeViewP99 — each iteration lands one acked edit frame and then
//     times a VIEW round trip; the p99 over all iterations is exported as
//     the p99_us counter (mean RTT is the iteration time itself).
//
// Both run the localized (repair-friendly hotspot) and uniform mixes.
// Recorded to BENCH_serve.json in CI and diffed by tools/bench_diff.py.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

constexpr std::size_t kNodes = std::size_t{1} << 15;
constexpr std::size_t kRounds = 64;  // pre-generated rounds, replayed cyclically
constexpr std::size_t kEditsPerRound = 1024;
constexpr std::size_t kFrameEdits = 64;  // edits per EDIT frame
constexpr std::size_t kWindow = 8;       // frames in flight

struct Workload {
  graph::Instance inst;
  std::vector<std::vector<inc::Edit>> rounds;
};

Workload make_workload(util::EditMix mix) {
  util::Rng rng(0x5e12 + static_cast<u64>(mix));
  Workload w;
  w.inst = util::random_function(kNodes, 4, rng);
  util::Rng srng(0x7a31 + static_cast<u64>(mix));
  const auto stream =
      util::random_edit_stream(w.inst, kRounds * kEditsPerRound, mix, 6, srng);
  w.rounds.resize(kRounds);
  for (std::size_t r = 0; r < kRounds; ++r) {
    const auto chunk = std::span(stream).subspan(r * kEditsPerRound, kEditsPerRound);
    w.rounds[r].assign(chunk.begin(), chunk.end());
  }
  return w;
}

const Workload& workload(util::EditMix mix) {
  static const Workload localized = make_workload(util::EditMix::LocalizedHotspot);
  static const Workload uniform = make_workload(util::EditMix::Uniform);
  return mix == util::EditMix::LocalizedHotspot ? localized : uniform;
}

/// Durable server on an ephemeral loopback port + connected client; the
/// journal lives in a per-process temp dir cleaned up on teardown.
class ServeFixture {
 public:
  explicit ServeFixture(const graph::Instance& inst, const std::string& engine_kind) {
    dir_ = std::filesystem::temp_directory_path() /
           ("sfcp_bench_serve_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    serve::ServerOptions opt;
    opt.journal_path = (dir_ / (engine_kind + ".wal")).string();
    opt.fsync = serve::FsyncPolicy::Epoch;
    server_ = std::make_unique<serve::Server>(engines().make(engine_kind, inst), opt);
    loop_ = std::thread([s = server_.get()] { s->run(); });
    try {
      client_ = serve::Client::connect("127.0.0.1", server_->port());
    } catch (...) {
      teardown_();
      throw;
    }
  }
  ~ServeFixture() { teardown_(); }

  serve::Client& client() { return client_; }

 private:
  void teardown_() {
    client_.close();
    if (server_) {
      server_->stop();
      loop_.join();
      server_.reset();
    }
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::unique_ptr<serve::Server> server_;
  std::thread loop_;
  serve::Client client_;
};

void BM_ServePipelinedEdits(benchmark::State& state, util::EditMix mix) {
  const Workload& w = workload(mix);
  ServeFixture fx(w.inst, "incremental");
  std::size_t round = 0;
  for (auto _ : state) {
    const std::vector<inc::Edit>& edits = w.rounds[round];
    const std::size_t frames = edits.size() / kFrameEdits;
    std::size_t sent = 0, acked = 0;
    while (acked < frames) {
      while (sent < frames && sent - acked < kWindow) {
        fx.client().send_edits(std::span(edits).subspan(sent * kFrameEdits, kFrameEdits));
        ++sent;
      }
      benchmark::DoNotOptimize(fx.client().await_edited());
      ++acked;
    }
    if (++round == kRounds) round = 0;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kEditsPerRound));
}

void BM_ServeViewP99(benchmark::State& state, util::EditMix mix) {
  const Workload& w = workload(mix);
  ServeFixture fx(w.inst, "incremental");
  std::vector<double> rtt_us;
  rtt_us.reserve(1 << 16);
  std::size_t round = 0, at = 0;
  for (auto _ : state) {
    // Keep real edit traffic flowing: one acked frame per measured VIEW.
    fx.client().apply(std::span(w.rounds[round]).subspan(at * kFrameEdits, kFrameEdits));
    if (++at == w.rounds[round].size() / kFrameEdits) {
      at = 0;
      if (++round == kRounds) round = 0;
    }
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fx.client().view().epoch);
    const auto t1 = std::chrono::steady_clock::now();
    rtt_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  if (!rtt_us.empty()) {
    std::sort(rtt_us.begin(), rtt_us.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(rtt_us.size()))) - 1;
    state.counters["p99_us"] = rtt_us[std::min(idx, rtt_us.size() - 1)];
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

const int kRegistered = [] {
  const std::pair<const char*, util::EditMix> mixes[] = {
      {"localized", util::EditMix::LocalizedHotspot},
      {"uniform", util::EditMix::Uniform},
  };
  for (const auto& [mix_name, mix] : mixes) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ServePipelinedEdits/") + mix_name).c_str(), BM_ServePipelinedEdits,
        mix)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((std::string("BM_ServeViewP99/") + mix_name).c_str(),
                                 BM_ServeViewP99, mix)
        ->Unit(benchmark::kMicrosecond);
  }
  return 0;
}();

}  // namespace
