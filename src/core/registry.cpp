#include "core/registry.hpp"

#include <stdexcept>
#include <utility>

namespace sfcp::core {

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

const StrategyInfo* StrategyRegistry::find(std::string_view name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Options& StrategyRegistry::at(std::string_view name) const {
  if (const StrategyInfo* e = find(name)) return e->options;
  std::string msg = "sfcp::registry(): unknown strategy \"";
  msg += name;
  msg += "\"; known:";
  for (const auto& e : entries_) {
    msg += ' ';
    msg += e.name;
  }
  throw std::out_of_range(msg);
}

void StrategyRegistry::add(StrategyInfo info) {
  for (auto& e : entries_) {
    if (e.name == info.name) {
      e = std::move(info);
      return;
    }
  }
  entries_.push_back(std::move(info));
}

namespace {

struct Dim {
  const char* slug;
  const char* label;
};

StrategyRegistry make_builtin_registry() {
  StrategyRegistry reg;

  const std::pair<graph::CycleDetectStrategy, Dim> detects[] = {
      {graph::CycleDetectStrategy::Sequential, {"seq", "sequential visited-walk"}},
      {graph::CycleDetectStrategy::FunctionPowers, {"powers", "f^N image by repeated squaring"}},
      {graph::CycleDetectStrategy::EulerTour, {"euler", "Euler-partition (paper §5)"}},
  };
  const std::pair<graph::CycleStructureStrategy, Dim> structures[] = {
      {graph::CycleStructureStrategy::Sequential, {"seq", "sequential visited-walk"}},
      {graph::CycleStructureStrategy::PointerJumping, {"jump", "pointer-jumping doubling"}},
  };
  const std::pair<TreeLabelStrategy, Dim> trees[] = {
      {TreeLabelStrategy::LevelSynchronous, {"level", "level-synchronous (O(n) work)"}},
      {TreeLabelStrategy::AncestorDoubling, {"double", "ancestor doubling (O(log n) depth)"}},
      {TreeLabelStrategy::SequentialDFS, {"dfs", "sequential DFS reference"}},
  };

  for (const auto& [cd, cd_dim] : detects) {
    for (const auto& [cst, cs_dim] : structures) {
      for (const auto& [tl, tl_dim] : trees) {
        StrategyInfo info;
        info.name = std::string(cd_dim.slug) + "-" + cs_dim.slug + "-" + tl_dim.slug;
        info.description = std::string("detect: ") + cd_dim.label + "; structure: " +
                           cs_dim.label + "; tree: " + tl_dim.label;
        info.options.cycle_detect = cd;
        info.options.cycle_structure = cst;
        info.options.tree_labeling.strategy = tl;
        reg.add(std::move(info));
      }
    }
  }

  reg.add({"parallel", "the paper's fully parallel pipeline (alias of euler-jump-level)",
           Options::parallel()});
  reg.add({"sequential", "linear-time sequential baseline (Paige-Tarjan-Bonic decomposition)",
           Options::sequential()});
  return reg;
}

}  // namespace

StrategyRegistry& registry() {
  static StrategyRegistry reg = make_builtin_registry();
  return reg;
}

}  // namespace sfcp::core
