// E1 — Theorem 5.1: the full SFCP solver's operation counts as n grows.
// The paper claims O(n log log n) operations; the table reports ops/n and
// ops/(n log2 n).  Under the claim, ops/n grows like log log n (nearly
// flat) while ops/(n log2 n) must SHRINK; an O(n log n) algorithm would
// keep the latter constant.
#include <cmath>
#include <iostream>

#include "core/coarsest_partition.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E1 (Theorem 5.1): parallel SFCP operation counts vs n\n"
            << "claim: O(n log log n) operations, O(log n) time on arbitrary CRCW PRAM\n\n";
  util::Table table({"n", "blocks", "ops", "ops/n", "ops/(n lg n)", "rounds", "ms"});
  util::Rng rng(42);
  for (int e = 14; e <= 21; ++e) {
    const std::size_t n = std::size_t{1} << e;
    const auto inst = util::random_function(n, 4, rng);
    pram::Metrics m;
    util::Timer timer;
    core::Result r;
    {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      r = core::solve(inst, core::Options::parallel());
    }
    const double ms = timer.millis();
    const double ops = static_cast<double>(m.ops());
    const double dn = static_cast<double>(n);
    table.add_row(n, r.num_blocks, m.ops(), ops / dn, ops / (dn * std::log2(dn)),
                  m.round_count(), ms);
    json.record("e1_sfcp", n, "parallel", pram::threads(), ms);
  }
  table.print();
  std::cout << "\n(ops/n nearly flat and ops/(n lg n) shrinking ==> sub-O(n log n) work,\n"
            << " consistent with the paper's O(n log log n) bound.)\n";
  return 0;
}
