#include "core/coarsest_partition.hpp"

#include <utility>

#include "prim/rename.hpp"
#include "prof/profile.hpp"

namespace sfcp::core {

namespace {
ViewCounters counters_of(const Result& r) {
  return ViewCounters{r.num_cycles, r.cycle_nodes, r.kept_tree_nodes, r.residual_tree_nodes};
}
}  // namespace

PartitionView Result::view(u64 epoch) const& {
  return PartitionView::from_canonical(q, num_blocks, epoch, counters_of(*this));
}

PartitionView Result::view(u64 epoch) && {
  return PartitionView::from_canonical(std::move(q), num_blocks, epoch, counters_of(*this));
}

Result PartitionView::to_result() const {
  Result r;
  const std::span<const u32> q = labels();
  r.q.assign(q.begin(), q.end());
  r.num_blocks = num_classes();
  const ViewCounters& c = counters();
  r.num_cycles = c.num_cycles;
  r.cycle_nodes = c.cycle_nodes;
  r.kept_tree_nodes = c.kept_tree_nodes;
  r.residual_tree_nodes = c.residual_tree_nodes;
  return r;
}

Options Options::parallel() { return Options{}; }

Options Options::sequential() {
  Options o;
  o.cycle_detect = graph::CycleDetectStrategy::Sequential;
  o.cycle_structure = graph::CycleStructureStrategy::Sequential;
  o.cycle_labeling.msp = strings::MspStrategy::Booth;
  o.cycle_labeling.parallel_period = false;
  o.tree_labeling.strategy = TreeLabelStrategy::SequentialDFS;
  o.tree_labeling.forest = graph::ForestStrategy::Sequential;
  return o;
}

Result solve(const graph::Instance& inst, const Options& opt) {
  SolveWorkspace ws;
  return solve(inst, opt, ws);
}

Result solve(const graph::Instance& inst, const Options& opt, SolveWorkspace& ws) {
  graph::validate(inst);
  Result result;
  const std::size_t n = inst.size();
  if (n == 0) return result;
  prof::Scope prof_solve("solve");

  // Step 1 (Section 5): mark the cycle nodes with the configured detector
  // (Euler tour by default, per the paper), then derive the full cycle
  // structure (leader, rank, contiguous arrangement).
  {
    prof::Scope s("cycle_detect");
    prof::charge_bytes(8 * n);  // read f, write on_cycle (one logical pass)
    graph::find_cycle_nodes_into(inst.f, opt.cycle_detect, ws.on_cycle);
  }
  {
    prof::Scope s("cycle_structure");
    prof::charge_bytes(16 * n);  // leader/rank/arrangement over all nodes
    graph::cycle_structure_with_flags_into(inst.f, ws.on_cycle, opt.cycle_structure, ws.cs);
  }

  // Step 2 (Section 3): Q-labels of cycle nodes.
  {
    prof::Scope s("cycle_label");
    prof::charge_bytes(8 * ws.cs.cycle_nodes.size());
    prof::charge_flops(2 * ws.cs.cycle_nodes.size());  // period + necklace compares
    label_cycles_into(inst, ws.cs, opt.cycle_labeling, ws.cl);
  }

  // Step 3 (Section 4): Q-labels of tree nodes.
  {
    prof::Scope s("tree_label");
    prof::charge_bytes(16 * n);  // forest build + signature passes
    prof::charge_flops(2 * n);
    label_trees_into(inst, ws.cs, ws.cl, opt.tree_labeling, ws.tl);
  }

  // Canonicalize to first-occurrence dense labels.
  prof::Scope prof_rename("rename");
  prof::charge_bytes(8 * n);  // read q, write dense labels
  auto canon = prim::canonicalize_labels(ws.tl.q);
  result.q = std::move(canon.labels);
  result.num_blocks = canon.num_classes;
  result.num_cycles = static_cast<u32>(ws.cs.num_cycles());
  result.cycle_nodes = static_cast<u32>(ws.cs.cycle_nodes.size());
  result.kept_tree_nodes = ws.tl.kept;
  result.residual_tree_nodes = ws.tl.residual;
  return result;
}

}  // namespace sfcp::core
