// Unit tests for instance (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Io, RoundTripStream) {
  util::Rng rng(2301);
  const auto inst = util::random_function(500, 4, rng);
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

TEST(Io, RoundTripEmpty) {
  graph::Instance inst;
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_TRUE(loaded.f.empty());
  EXPECT_TRUE(loaded.b.empty());
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("not-an-instance v1\n3\n0 1 2\n0 0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsWrongVersion) {
  std::stringstream ss("sfcp-instance v2\n1\n0\n0\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsTruncatedF) {
  std::stringstream ss("sfcp-instance v1\n3\n0 1\n");
  EXPECT_THROW(util::load_instance(ss), std::runtime_error);
}

TEST(Io, RejectsOutOfRangeFunction) {
  std::stringstream ss("sfcp-instance v1\n2\n0 5\n0 0\n");
  EXPECT_THROW(util::load_instance(ss), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  util::Rng rng(2307);
  const auto inst = util::random_function(100, 3, rng);
  const std::string path = ::testing::TempDir() + "/sfcp_io_test.txt";
  util::save_instance_file(path, inst);
  const auto loaded = util::load_instance_file(path);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(util::load_instance_file("/nonexistent/path/x.txt"), std::runtime_error);
}

TEST(Io, PaperExampleRoundTrip) {
  const auto inst = util::paper_example_2_2();
  std::stringstream ss;
  util::save_instance(ss, inst);
  const auto loaded = util::load_instance(ss);
  EXPECT_EQ(loaded.f, inst.f);
  EXPECT_EQ(loaded.b, inst.b);
}

}  // namespace
}  // namespace sfcp
