#include "strings/msp.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "prim/find_first.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"
#include "strings/period.hpp"

namespace sfcp::strings {

namespace {

// Lexicographic comparison of rotations starting at c1 < c2, examining at
// most `len` characters.  Returns the winning candidate; ties go to c1
// (valid whenever c2 - c1 <= len, by Lemma 3.3).
u32 duel(std::span<const u32> s, u32 c1, u32 c2, std::size_t len) {
  const std::size_t n = s.size();
  const std::size_t lc = std::min(len, n);
  const u32 d = prim::find_first_if(0, lc, [&](std::size_t l) {
    return s[(c1 + l) % n] != s[(c2 + l) % n];
  });
  if (d == kNone) return c1;
  return s[(c1 + d) % n] < s[(c2 + d) % n] ? c1 : c2;
}

}  // namespace

u32 msp_booth(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  // Booth's algorithm on the doubled string with a failure function.
  std::vector<i64> f(2 * n, -1);
  u32 k = 0;
  for (std::size_t j = 1; j < 2 * n; ++j) {
    const u32 sj = s[j % n];
    i64 i = f[j - k - 1];
    while (i != -1 && sj != s[(k + i + 1) % n]) {
      if (sj < s[(k + i + 1) % n]) k = static_cast<u32>(j - i - 1);
      i = f[static_cast<std::size_t>(i)];
    }
    if (sj != s[(k + i + 1) % n]) {
      if (sj < s[k % n]) k = static_cast<u32>(j);
      f[j - k] = -1;
    } else {
      f[j - k] = i + 1;
    }
  }
  pram::charge(4 * n);
  return k % static_cast<u32>(n);
}

u32 msp_duval(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  auto at = [&](std::size_t i) { return s[i % n]; };
  std::size_t a = 0;
  for (std::size_t b = 1; b < n; ++b) {
    for (std::size_t k = 0; k < n; ++k) {
      if (a + k == b || at(a + k) < at(b + k)) {
        if (k > 1) b += k - 1;
        break;
      }
      if (at(a + k) > at(b + k)) {
        a = b;
        break;
      }
    }
  }
  pram::charge(2 * n);
  return static_cast<u32>(a);
}

u32 msp_brute(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  u32 best = 0;
  for (u32 c = 1; c < n; ++c) {
    for (std::size_t l = 0; l < n; ++l) {
      const u32 x = s[(c + l) % n];
      const u32 y = s[(best + l) % n];
      if (x != y) {
        if (x < y) best = c;
        break;
      }
    }
  }
  return best;
}

u32 msp_simple(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  // Conceptually pad n to a power of two N; blocks of size 1 hold their own
  // index as candidate, blocks beyond n are empty (kNone).
  const std::size_t N = std::bit_ceil(n);
  std::vector<u32> cand(N);
  pram::parallel_for(0, N, [&](std::size_t i) {
    cand[i] = i < n ? static_cast<u32>(i) : kNone;
  });
  std::vector<u32> next_cand(N / 2);
  for (std::size_t width = 1; width < N; width <<= 1) {
    const std::size_t pairs = N / (2 * width);
    const std::size_t compare_len = 2 * width;
    const bool outer_parallel = pairs >= static_cast<std::size_t>(pram::threads());
    auto merge_one = [&](std::size_t t) {
      const u32 c1 = cand[2 * t];
      const u32 c2 = cand[2 * t + 1];
      if (c1 == kNone) {
        next_cand[t] = c2;
      } else if (c2 == kNone) {
        next_cand[t] = c1;
      } else {
        next_cand[t] = duel(s, c1, c2, compare_len);
      }
    };
    if (outer_parallel) {
      pram::parallel_for(0, pairs, merge_one);
    } else {
      for (std::size_t t = 0; t < pairs; ++t) merge_one(t);  // inner duel parallelizes
    }
    cand.assign(next_cand.begin(), next_cand.begin() + static_cast<std::ptrdiff_t>(pairs));
  }
  assert(cand.size() == 1 && cand[0] != kNone);
  return cand[0];
}

namespace {

struct Reduced {
  std::vector<u32> sym;  ///< current circular string (rank symbols)
  std::vector<u32> pos;  ///< original position of each current symbol
};

// One fold of Algorithm "efficient m.s.p." steps 1-3.  Returns true and the
// answer via `out` when a single candidate remains.
bool fold_once(Reduced& r, u32& out) {
  const std::size_t n = r.sym.size();
  const u32 m = prim::reduce_min<u32>(r.sym);
  const std::vector<u32> marks = prim::pack_index_if(n, [&](std::size_t j) {
    return r.sym[j] == m && r.sym[(j + n - 1) % n] != m;
  });
  if (marks.empty()) {
    // All symbols equal: every rotation is identical; smallest original
    // position wins.  (Unreachable for non-repeating input; kept for
    // robustness.)
    out = prim::reduce_min<u32>(r.pos);
    return true;
  }
  if (marks.size() == 1) {
    out = r.pos[marks[0]];
    return true;
  }
  const std::size_t k = marks.size();
  // Group t spans marks[t] .. marks[t+1]-1 (circularly); length >= 2.
  std::vector<u32> group_pairs(k);
  pram::parallel_for(0, k, [&](std::size_t t) {
    const u32 g = static_cast<u32>((marks[(t + 1) % k] + n - marks[t]) % n);
    group_pairs[t] = (g + 1) / 2;
  });
  std::vector<u32> off(k);
  const u32 total = prim::exclusive_scan<u32>(group_pairs, off);
  std::vector<u32> a(total), b(total), newpos(total);
  pram::parallel_for(0, k, [&](std::size_t t) {
    const u32 st = marks[t];
    const u32 g = static_cast<u32>((marks[(t + 1) % k] + n - st) % n);
    const u32 base = off[t];
    for (u32 q = 0; 2 * q < g; ++q) {
      const std::size_t i1 = (st + 2 * q) % n;
      a[base + q] = r.sym[i1];
      b[base + q] = (2 * q + 1 < g) ? r.sym[(st + 2 * q + 1) % n] : m;
      newpos[base + q] = r.pos[i1];
    }
  });
  // Order-preserving dense ranks of the pairs (step 3); this must be the
  // sorted renaming or lexicographic order would not survive.
  auto ranks = prim::rename_pairs_sorted(a, b);
  r.sym = std::move(ranks.labels);
  r.pos = std::move(newpos);
  return false;
}

}  // namespace

u32 msp_efficient(std::span<const u32> s) {
  const std::size_t n0 = s.size();
  if (n0 <= 1) return 0;
  Reduced r;
  r.sym.assign(s.begin(), s.end());
  r.pos.resize(n0);
  pram::parallel_for(0, n0, [&](std::size_t i) { r.pos[i] = static_cast<u32>(i); });
  const double lg = std::log2(static_cast<double>(n0) + 2.0);
  const std::size_t threshold =
      std::max<std::size_t>(64, static_cast<std::size_t>(static_cast<double>(n0) / lg));
  u32 answer = kNone;
  while (r.sym.size() > threshold) {
    if (fold_once(r, answer)) return answer;
  }
  const u32 j = msp_simple(r.sym);
  return r.pos[j];
}

u32 minimal_starting_point(std::span<const u32> s, MspStrategy strategy) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  switch (strategy) {
    case MspStrategy::Brute:
      return msp_brute(s);
    case MspStrategy::Booth:
      return msp_booth(s);
    case MspStrategy::Duval:
      return msp_duval(s);
    case MspStrategy::Simple:
    case MspStrategy::Efficient: {
      // The parallel algorithms assume a non-repeating string; reduce to the
      // smallest repeating prefix first (its m.s.p. is the overall m.s.p.).
      const u32 p = smallest_period_seq(s);
      std::span<const u32> prefix = s.subspan(0, p);
      return strategy == MspStrategy::Simple ? msp_simple(prefix) : msp_efficient(prefix);
    }
  }
  return msp_booth(s);
}

std::vector<u32> canonical_rotation(std::span<const u32> s, MspStrategy strategy) {
  const std::size_t n = s.size();
  std::vector<u32> out(n);
  if (n == 0) return out;
  const u32 j0 = minimal_starting_point(s, strategy);
  pram::parallel_for(0, n, [&](std::size_t i) { out[i] = s[(j0 + i) % n]; });
  return out;
}

}  // namespace sfcp::strings
