#include "core/partition_algebra.hpp"

#include <numeric>
#include <stdexcept>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"

namespace sfcp::core {

namespace {

void require_same_size(std::span<const u32> a, std::span<const u32> b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

// Union-find with path halving; used by partition_join.
struct UnionFind {
  std::vector<u32> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  u32 find(u32 x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void unite(u32 a, u32 b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

}  // namespace

std::vector<u32> canonical_partition(std::span<const u32> labels) {
  return prim::canonicalize_labels(labels).labels;
}

std::vector<u32> partition_meet(std::span<const u32> a, std::span<const u32> b) {
  require_same_size(a, b, "partition_meet");
  const auto renamed = prim::rename_pairs_sorted(a, b);
  return canonical_partition(renamed.labels);
}

std::vector<u32> partition_join(std::span<const u32> a, std::span<const u32> b) {
  require_same_size(a, b, "partition_join");
  const std::size_t n = a.size();
  UnionFind uf(n);
  // Link each element to the first representative of its a-block and its
  // b-block; the transitive closure of these links is the join.
  std::vector<u32> first_a(n, kNone), first_b(n, kNone);
  for (std::size_t x = 0; x < n; ++x) {
    if (a[x] >= n || b[x] >= n) {
      // Labels may be arbitrary u32s; remap through canonical form first.
      const auto ca = canonical_partition(a);
      const auto cb = canonical_partition(b);
      return partition_join(ca, cb);
    }
    if (first_a[a[x]] == kNone) {
      first_a[a[x]] = static_cast<u32>(x);
    } else {
      uf.unite(first_a[a[x]], static_cast<u32>(x));
    }
    if (first_b[b[x]] == kNone) {
      first_b[b[x]] = static_cast<u32>(x);
    } else {
      uf.unite(first_b[b[x]], static_cast<u32>(x));
    }
  }
  std::vector<u32> roots(n);
  for (std::size_t x = 0; x < n; ++x) roots[x] = uf.find(static_cast<u32>(x));
  pram::charge(2 * n);
  return canonical_partition(roots);
}

bool is_refinement_of(std::span<const u32> fine, std::span<const u32> coarse) {
  require_same_size(fine, coarse, "is_refinement_of");
  const std::size_t n = fine.size();
  const auto cf = canonical_partition(fine);
  // Every fine block must map into exactly one coarse label.
  std::vector<u32> image(n, kNone);
  for (std::size_t x = 0; x < n; ++x) {
    if (image[cf[x]] == kNone) {
      image[cf[x]] = coarse[x];
    } else if (image[cf[x]] != coarse[x]) {
      return false;
    }
  }
  pram::charge(n);
  return true;
}

std::vector<u32> pullback(std::span<const u32> labels, std::span<const u32> f) {
  require_same_size(labels, f, "pullback");
  const std::size_t n = f.size();
  for (std::size_t x = 0; x < n; ++x) {
    if (f[x] >= n) throw std::invalid_argument("pullback: f out of range");
  }
  std::vector<u32> pulled(n);
  pram::parallel_for(0, n, [&](std::size_t x) { pulled[x] = labels[f[x]]; });
  return canonical_partition(pulled);
}

std::vector<u32> refine_step(std::span<const u32> labels, std::span<const u32> f) {
  return partition_meet(labels, pullback(labels, f));
}

u32 block_count(std::span<const u32> canonical_labels) {
  u32 mx = 0;
  for (const u32 v : canonical_labels) mx = std::max(mx, v + 1);
  return canonical_labels.empty() ? 0 : mx;
}

}  // namespace sfcp::core
