#pragma once
// Concurrent insert-or-get hash table: the practical realization of the
// paper's BB[1..n, 1..n] arbitrary-CRCW table (Algorithm partition, §3.2).
//
// Semantics per round: every processor holding a key writes its proposal;
// an arbitrary single writer per key wins and everybody reading the key
// afterwards sees the winner's value.  The paper's own Remark notes the
// O(n^2) table can be shrunk; open addressing with CAS gives the same
// label-assignment semantics in O(capacity) space.
//
// Keys are arbitrary u64 except kReservedKey; values are u32 (positions).

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "pram/types.hpp"

namespace sfcp::prim {

/// SplitMix64 finalizer — well-distributed 64-bit hash.
inline u64 hash_u64(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class ConcurrentPairMap {
 public:
  static constexpr u64 kReservedKey = ~0ull;

  /// Capacity is sized for at most `max_items` distinct keys.  The probe
  /// sequence is salted with the session seed (pram::ExecutionContext), so
  /// an adversarial key set cannot pin every session to one collision
  /// chain; stored keys and insert-or-get semantics are salt-independent,
  /// and so are all canonicalized labellings built on top.
  explicit ConcurrentPairMap(std::size_t max_items, u64 salt = pram::session_seed())
      : salt_(salt) {
    std::size_t cap = 16;
    while (cap < 2 * max_items + 8) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    clear();
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Resets all slots to empty (sequential; used between rounds in tests —
  /// production rounds avoid it by salting keys with the round number).
  void clear() noexcept {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].key.store(kReservedKey, std::memory_order_relaxed);
      slots_[i].value.store(kNone, std::memory_order_relaxed);
    }
  }

  /// Inserts (key, value) if the key is absent; returns the value that is
  /// associated with the key afterwards (the arbitrary winner's value).
  u32 insert_or_get(u64 key, u32 value) noexcept {
    assert(key != kReservedKey && "key space exhausted sentinel");
    assert(value != kNone);
    pram::charge_crcw(1);
    std::size_t i = hash_u64(key ^ salt_) & mask_;
    for (;;) {
      u64 k = slots_[i].key.load(std::memory_order_acquire);
      if (k == key) return wait_value(i);
      if (k == kReservedKey) {
        u64 expected = kReservedKey;
        if (slots_[i].key.compare_exchange_strong(expected, key, std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          slots_[i].value.store(value, std::memory_order_release);
          return value;
        }
        if (expected == key) return wait_value(i);
      }
      i = (i + 1) & mask_;
    }
  }

  /// Lookup only; kNone if absent.
  u32 find(u64 key) const noexcept {
    assert(key != kReservedKey);
    std::size_t i = hash_u64(key ^ salt_) & mask_;
    for (;;) {
      u64 k = slots_[i].key.load(std::memory_order_acquire);
      if (k == key) return slots_[i].value.load(std::memory_order_acquire);
      if (k == kReservedKey) return kNone;
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::atomic<u64> key;
    std::atomic<u32> value;
  };

  u32 wait_value(std::size_t i) const noexcept {
    // The slot's key is published before its value; spin for the tiny
    // window between the two stores.
    u32 v;
    do {
      v = slots_[i].value.load(std::memory_order_acquire);
    } while (v == kNone);
    return v;
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  u64 salt_ = 0;
};

}  // namespace sfcp::prim
