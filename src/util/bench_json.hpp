#pragma once
// Machine-readable benchmark records: every bench/table target accepts
// `--json <path>` (or `--json=<path>`) and appends one JSON object per
// measured row to that file (JSON Lines), so perf trajectories can be
// recorded across commits:
//
//   {"name":"e1_sfcp","n":16384,"strategy":"parallel","threads":8,"ms":12.3}
//
// When the run carried a phase profile (SFCP_PROFILE builds with a
// profiler installed), the record additionally gets a flattened `profile`
// object keyed by scope path:
//
//   ...,"profile":{"serve/epoch_apply":{"ns":1234,"count":8,"flops":0,
//   "bytes":4096},...}}
//
// Table mains use BenchJson; google-benchmark targets get the flag from the
// shared bench/json_main.cpp reporter.  tools/profile_report.py renders the
// profile objects as a roofline table; tools/bench_diff.py diffs the phase
// times warn-only.

#include <string>
#include <utility>
#include <vector>

#include "pram/types.hpp"
#include "prof/profile.hpp"

namespace sfcp::util {

/// Appends one record to `path` (no-op when path is empty).  Throws
/// std::runtime_error when the file cannot be opened.
void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms);

/// Same, with the run's phase profile flattened into a `profile` object
/// (omitted entirely when the tree is empty, keeping the classic shape).
void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms,
                         const prof::ProfileTree& profile);

/// Same, additionally carrying the run's named counters (google-benchmark
/// state.counters — e.g. the fleet bench's warm_bytes / evictions) as a
/// `counters` object; omitted when empty, so the classic shape survives.
void append_bench_record(const std::string& path, const std::string& name, u64 n,
                         const std::string& strategy, int threads, double ms,
                         const prof::ProfileTree& profile,
                         const std::vector<std::pair<std::string, double>>& counters);

/// Extracts `--json <path>` / `--json=<path>` from argv (removing the
/// consumed arguments and updating argc); returns "" when absent.  A bare
/// trailing `--json` with no path exits with a usage error rather than
/// silently dropping the records the user asked for.
std::string consume_json_flag(int& argc, char** argv);

/// Argv-driven recorder for the standalone table printers.
class BenchJson {
 public:
  BenchJson(int& argc, char** argv) : path_(consume_json_flag(argc, argv)) {}
  explicit BenchJson(std::string path) : path_(std::move(path)) {}

  bool enabled() const noexcept { return !path_.empty(); }
  const std::string& path() const noexcept { return path_; }

  void record(const std::string& name, u64 n, const std::string& strategy, int threads,
              double ms) const {
    if (enabled()) append_bench_record(path_, name, n, strategy, threads, ms);
  }

  void record(const std::string& name, u64 n, const std::string& strategy, int threads,
              double ms, const prof::ProfileTree& profile) const {
    if (enabled()) append_bench_record(path_, name, n, strategy, threads, ms, profile);
  }

 private:
  std::string path_;
};

}  // namespace sfcp::util
