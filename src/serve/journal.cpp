#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace sfcp::serve {
namespace {

[[noreturn]] void fail_io(const std::string& path, const char* what) {
  throw std::runtime_error("serve::Journal: " + std::string(what) + " failed for '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

FsyncPolicy parse_fsync_policy(std::string_view name) {
  if (name == "always") return FsyncPolicy::Always;
  if (name == "epoch") return FsyncPolicy::Epoch;
  if (name == "off") return FsyncPolicy::Off;
  throw std::invalid_argument("unknown fsync policy '" + std::string(name) +
                              "' (expected always|epoch|off)");
}

std::string_view fsync_policy_name(FsyncPolicy p) noexcept {
  switch (p) {
    case FsyncPolicy::Always: return "always";
    case FsyncPolicy::Epoch: return "epoch";
    case FsyncPolicy::Off: return "off";
  }
  return "?";
}

std::span<const unsigned char, 8> Journal::magic_() const noexcept {
  return format_ == JournalFormat::Fleet ? util::fleet_journal_magic() : util::journal_magic();
}

Journal::Journal(std::string path, FsyncPolicy fsync, JournalFormat format)
    : path_(std::move(path)), fsync_(fsync), format_(format) {
  // Scan whatever is already there (stream reads are fine for the cold
  // recovery pass; the hot append path below uses the fd directly).
  u64 valid_bytes = 0;
  bool existing = false;
  {
    std::ifstream is(path_, std::ios::binary);
    if (is) {
      is.peek();
      if (!is.eof()) {
        existing = true;
        if (format_ == JournalFormat::Fleet) {
          util::FleetJournalScan scan = util::scan_fleet_journal(is);
          recovered_fleet_ = std::move(scan.records);
          torn_ = scan.torn;
          tear_error_ = std::move(scan.error);
          valid_bytes = scan.valid_bytes;
        } else {
          util::JournalScan scan = util::scan_journal(is);
          recovered_ = std::move(scan.records);
          torn_ = scan.torn;
          tear_error_ = std::move(scan.error);
          valid_bytes = scan.valid_bytes;
        }
      }
    }
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) fail_io(path_, "open");
  if (existing) {
    // Truncate the torn tail (no-op when intact) and append after the good
    // prefix.
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) fail_io(path_, "ftruncate");
    if (::lseek(fd_, 0, SEEK_END) < 0) fail_io(path_, "lseek");
    bytes_ = valid_bytes;
  } else {
    const auto magic = magic_();
    if (::write(fd_, magic.data(), magic.size()) !=
        static_cast<ssize_t>(magic.size())) {
      fail_io(path_, "write header");
    }
    bytes_ = magic.size();
    do_fsync_();
  }
}

Journal::~Journal() { close_(); }

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fsync_(other.fsync_),
      format_(other.format_),
      fd_(std::exchange(other.fd_, -1)),
      recovered_(std::move(other.recovered_)),
      recovered_fleet_(std::move(other.recovered_fleet_)),
      torn_(other.torn_),
      tear_error_(std::move(other.tear_error_)),
      bytes_(other.bytes_),
      appended_(other.appended_),
      fsyncs_(other.fsyncs_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close_();
    path_ = std::move(other.path_);
    fsync_ = other.fsync_;
    format_ = other.format_;
    fd_ = std::exchange(other.fd_, -1);
    recovered_ = std::move(other.recovered_);
    recovered_fleet_ = std::move(other.recovered_fleet_);
    torn_ = other.torn_;
    tear_error_ = std::move(other.tear_error_);
    bytes_ = other.bytes_;
    appended_ = other.appended_;
    fsyncs_ = other.fsyncs_;
  }
  return *this;
}

void Journal::close_() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::do_fsync_() {
  if (::fsync(fd_) != 0) fail_io(path_, "fsync");
  ++fsyncs_;
}

void Journal::append(const util::JournalRecord& rec) {
  append_framed_(util::encode_journal_record(rec));
}

void Journal::append(const util::FleetJournalRecord& rec) {
  append_framed_(util::encode_fleet_journal_record(rec));
}

void Journal::append_framed_(const std::string& framed) {
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t w = ::write(fd_, framed.data() + off, framed.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      // Roll the partial record back out of the file (ENOSPC and friends can
      // fail mid-record): leaving it would make later appends land after
      // garbage, and a recovery scan would tear here and silently discard
      // every record after it — including fsynced, acked ones.
      const int err = errno;
      if (::ftruncate(fd_, static_cast<off_t>(bytes_)) == 0) {
        (void)::lseek(fd_, 0, SEEK_END);
      }
      errno = err;
      fail_io(path_, "write");
    }
    off += static_cast<std::size_t>(w);
  }
  bytes_ += framed.size();
  ++appended_;
  if (fsync_ == FsyncPolicy::Always) do_fsync_();
}

void Journal::sync_epoch() {
  if (fsync_ == FsyncPolicy::Epoch) do_fsync_();
}

void Journal::reset() {
  const auto magic = magic_();
  if (::ftruncate(fd_, static_cast<off_t>(magic.size())) != 0) fail_io(path_, "ftruncate");
  if (::lseek(fd_, 0, SEEK_END) < 0) fail_io(path_, "lseek");
  bytes_ = magic.size();
  do_fsync_();
}

u64 Journal::replay(Engine& engine, u64* skipped) {
  const u64 floor = engine.epoch();
  u64 replayed = 0;
  for (const util::JournalRecord& rec : recovered_) {
    if (rec.epoch < floor) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    engine.apply(rec.edits);
    ++replayed;
  }
  recovered_.clear();
  recovered_.shrink_to_fit();
  return replayed;
}

}  // namespace sfcp::serve
