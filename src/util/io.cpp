#include "util/io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sfcp::util {

namespace {

constexpr const char* kMagic = "sfcp-instance";
constexpr const char* kVersionText = "v1";
// Binary magic: non-printable lead byte makes autodetection a one-byte peek
// and keeps binary files from ever parsing as text.
constexpr unsigned char kBinaryMagic[8] = {0x7f, 's', 'f', 'c', 'p', 'v', '2', '\n'};
// Caps bogus sizes from corrupt headers before we try to allocate.
constexpr u64 kMaxNodes = u64{1} << 31;

constexpr const char* kEditsMagic = "sfcp-edits";
constexpr const char* kEditsVersion = "v1";

void put_u32le(std::ostream& os, u32 v) {
  unsigned char buf[4] = {static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
                          static_cast<unsigned char>(v >> 16),
                          static_cast<unsigned char>(v >> 24)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

void put_u32le_array(std::ostream& os, std::span<const u32> a) {
  if constexpr (std::endian::native == std::endian::little) {
    os.write(reinterpret_cast<const char*>(a.data()),
             static_cast<std::streamsize>(a.size() * sizeof(u32)));
  } else {
    for (u32 v : a) put_u32le(os, v);
  }
}

u32 get_u32le(std::istream& is, const char* what) {
  unsigned char buf[4];
  if (!is.read(reinterpret_cast<char*>(buf), 4)) {
    throw std::runtime_error(std::string("load_instance: truncated ") + what);
  }
  return static_cast<u32>(buf[0]) | (static_cast<u32>(buf[1]) << 8) |
         (static_cast<u32>(buf[2]) << 16) | (static_cast<u32>(buf[3]) << 24);
}

void get_u32le_array(std::istream& is, std::span<u32> a, const char* what) {
  if constexpr (std::endian::native == std::endian::little) {
    if (!is.read(reinterpret_cast<char*>(a.data()),
                 static_cast<std::streamsize>(a.size() * sizeof(u32)))) {
      throw std::runtime_error(std::string("load_instance: truncated ") + what);
    }
  } else {
    for (u32& v : a) v = get_u32le(is, what);
  }
}

// Grows `out` in bounded chunks while reading, so a corrupt header claiming
// billions of elements fails with "truncated" once the payload runs out
// instead of attempting one giant up-front allocation.
void read_u32le_vector(std::istream& is, u64 n, std::vector<u32>& out, const char* what) {
  constexpr u64 kChunk = u64{1} << 20;
  out.clear();
  out.reserve(static_cast<std::size_t>(n < kChunk ? n : kChunk));
  while (out.size() < n) {
    const std::size_t prev = out.size();
    const std::size_t take = static_cast<std::size_t>(std::min<u64>(kChunk, n - prev));
    out.resize(prev + take);
    get_u32le_array(is, std::span<u32>(out).subspan(prev, take), what);
  }
}

graph::Instance load_instance_text(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersionText) {
    throw std::runtime_error("load_instance: bad header (expected 'sfcp-instance v1')");
  }
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("load_instance: missing size");
  if (n > kMaxNodes) throw std::runtime_error("load_instance: unreasonable size");
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (auto& v : inst.f) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated f array");
  }
  for (auto& v : inst.b) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated b array");
  }
  graph::validate(inst);
  return inst;
}

graph::Instance load_instance_binary(std::istream& is) {
  unsigned char magic[8];
  if (!is.read(reinterpret_cast<char*>(magic), 8) ||
      std::memcmp(magic, kBinaryMagic, 8) != 0) {
    throw std::runtime_error("load_instance: bad binary magic (expected sfcp-instance v2)");
  }
  const u32 n = get_u32le(is, "size");
  if (n > kMaxNodes) throw std::runtime_error("load_instance: unreasonable size");
  graph::Instance inst;
  read_u32le_vector(is, n, inst.f, "f array");
  read_u32le_vector(is, n, inst.b, "b array");
  graph::validate(inst);
  return inst;
}

}  // namespace

void save_instance(std::ostream& os, const graph::Instance& inst) {
  os << kMagic << ' ' << kVersionText << '\n' << inst.size() << '\n';
  for (std::size_t i = 0; i < inst.f.size(); ++i) {
    os << inst.f[i] << (i + 1 == inst.f.size() ? '\n' : ' ');
  }
  if (inst.f.empty()) os << '\n';
  for (std::size_t i = 0; i < inst.b.size(); ++i) {
    os << inst.b[i] << (i + 1 == inst.b.size() ? '\n' : ' ');
  }
  if (inst.b.empty()) os << '\n';
  if (!os) throw std::runtime_error("save_instance: write failed");
}

void save_instance_binary(std::ostream& os, const graph::Instance& inst) {
  if (inst.size() > kMaxNodes) throw std::runtime_error("save_instance_binary: too large");
  os.write(reinterpret_cast<const char*>(kBinaryMagic), 8);
  put_u32le(os, static_cast<u32>(inst.size()));
  put_u32le_array(os, inst.f);
  put_u32le_array(os, inst.b);
  if (!os) throw std::runtime_error("save_instance_binary: write failed");
}

graph::Instance load_instance(std::istream& is) {
  const int first = is.peek();
  if (first == std::char_traits<char>::eof()) {
    throw std::runtime_error("load_instance: empty input");
  }
  return first == kBinaryMagic[0] ? load_instance_binary(is) : load_instance_text(is);
}

void save_instance_file(const std::string& path, const graph::Instance& inst,
                        InstanceFormat format) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_instance_file: cannot open " + path);
  if (format == InstanceFormat::Binary) {
    save_instance_binary(os, inst);
  } else {
    save_instance(os, inst);
  }
}

graph::Instance load_instance_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_instance_file: cannot open " + path);
  return load_instance(is);
}

void save_edits(std::ostream& os, std::span<const inc::Edit> edits) {
  os << kEditsMagic << ' ' << kEditsVersion << '\n' << edits.size() << '\n';
  for (const inc::Edit& e : edits) {
    os << (e.kind == inc::Edit::Kind::SetF ? 'f' : 'b') << ' ' << e.node << ' ' << e.value
       << '\n';
  }
  if (!os) throw std::runtime_error("save_edits: write failed");
}

std::vector<inc::Edit> load_edits(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kEditsMagic || version != kEditsVersion) {
    throw std::runtime_error("load_edits: bad header (expected 'sfcp-edits v1')");
  }
  std::size_t m = 0;
  if (!(is >> m)) throw std::runtime_error("load_edits: missing count");
  if (m > kMaxNodes) throw std::runtime_error("load_edits: unreasonable count");
  std::vector<inc::Edit> edits;
  // The count is untrusted until the payload backs it up: cap the up-front
  // reservation and let push_back grow past it.
  edits.reserve(std::min<std::size_t>(m, std::size_t{1} << 20));
  for (std::size_t i = 0; i < m; ++i) {
    std::string op;
    u32 node = 0, value = 0;
    if (!(is >> op >> node >> value) || (op != "f" && op != "b")) {
      throw std::runtime_error("load_edits: truncated or malformed edit " + std::to_string(i));
    }
    edits.push_back(op == "f" ? inc::Edit::set_f(node, value) : inc::Edit::set_b(node, value));
  }
  return edits;
}

void save_edits_file(const std::string& path, std::span<const inc::Edit> edits) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_edits_file: cannot open " + path);
  save_edits(os, edits);
}

std::vector<inc::Edit> load_edits_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_edits_file: cannot open " + path);
  return load_edits(is);
}

}  // namespace sfcp::util
