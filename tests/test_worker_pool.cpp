// The persistent worker pool behind pram's parallel loops: coverage and
// exactly-once execution, slot→lane affinity, exception propagation,
// nested-parallelism rules (a pool worker is one PRAM processor), pool
// routing of parallel_for/parallel_blocks, and — the serving-path
// contract — shard repairs charging the same work/depth at threads=8 on
// the pool as at threads=1.
//
// The ParallelBlocksThreadLimit suite also runs as a dedicated ctest entry
// with OMP_THREAD_LIMIT=2 pinned (see CMakeLists.txt): before the `#pragma
// omp for` fix, parallel_blocks bound block b to omp_get_thread_num()==b
// and silently DROPPED blocks whenever the runtime delivered a smaller
// team than num_threads(nb) requested.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "pram/worker_pool.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(WorkerPool, FanRunsEveryIndexExactlyOnce) {
  pram::WorkerPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.fan(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, FanWorksAtWidthOne) {
  pram::WorkerPool pool(1);  // no workers: everything inline on the caller
  EXPECT_EQ(pool.width(), 1);
  std::vector<int> hits(100, 0);
  pool.fan(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(WorkerPool, SubmitWaitRunsEveryTask) {
  pram::WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  auto body = [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); };
  for (std::size_t i = 0; i < hits.size(); ++i) pool.submit(/*slot=*/i, body, i);
  pool.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(WorkerPool, SlotsKeepLaneAffinity) {
  // slot % width is a fixed lane and each worker lane is one thread, so the
  // same slot must always execute on the same thread across batches.
  pram::WorkerPool pool(3);  // lanes: worker 0, worker 1, caller
  constexpr std::size_t kSlots = 2;  // the two worker lanes
  std::vector<std::thread::id> first(kSlots), second(kSlots);
  auto record_first = [&](std::size_t s) { first[s] = std::this_thread::get_id(); };
  auto record_second = [&](std::size_t s) { second[s] = std::this_thread::get_id(); };
  for (std::size_t s = 0; s < kSlots; ++s) pool.submit(s, record_first, s);
  pool.wait();
  for (std::size_t s = 0; s < kSlots; ++s) pool.submit(s, record_second, s);
  pool.wait();
  for (std::size_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(first[s], second[s]) << "slot " << s << " hopped lanes";
    EXPECT_NE(first[s], std::this_thread::get_id()) << "worker slot ran on the caller";
  }
  EXPECT_NE(first[0], first[1]) << "distinct slots below width share a lane";
}

TEST(WorkerPool, CallerLaneTasksRunDuringWait) {
  pram::WorkerPool pool(2);  // slot 1 -> caller lane
  std::thread::id ran_on{};
  auto body = [&](std::size_t) { ran_on = std::this_thread::get_id(); };
  pool.submit(/*slot=*/1, body, 0);
  EXPECT_EQ(ran_on, std::thread::id{}) << "caller-lane task ran before wait()";
  pool.wait();
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(WorkerPool, WaitRethrowsFirstTaskException) {
  pram::WorkerPool pool(4);
  auto boom = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("task 3 failed");
  };
  for (std::size_t i = 0; i < 8; ++i) pool.submit(i, boom, i);
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error was consumed: the pool is reusable afterwards.
  std::atomic<int> ran{0};
  pool.fan(16, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerPool, FanRethrows) {
  pram::WorkerPool pool(4);
  EXPECT_THROW(pool.fan(100,
                        [&](std::size_t i) {
                          if (i == 42) throw std::invalid_argument("bad item");
                        }),
               std::invalid_argument);
}

TEST(WorkerPool, CallerLaneNestedRoundsRunInlineExactlyOnce) {
  // Regression: caller-lane tasks run under the submitting session's
  // context (pool installed, threads > 1), so before the in_pool_inline()
  // pin a nested parallel_for over a super-grain range dispatched
  // fan() -> wait() from INSIDE the outer wait()'s drain loop, replaying
  // already-run caller-lane tasks from index 0 (and re-entrantly re-running
  // the in-flight one).  Nested rounds must instead run serial inline,
  // exactly like on a worker.
  pram::WorkerPool pool(4);
  pram::ExecutionContext ctx;
  ctx.threads = 4;
  ctx.pool = &pool;
  pram::ScopedContext guard(&ctx);
  constexpr std::size_t kTasks = 6;
  constexpr std::size_t kInner = 5000;  // > default grain (2048)
  std::vector<int> hits(kTasks, 0);     // caller lane is serial: plain ints
  std::vector<long> sums(kTasks, 0);
  auto body = [&](std::size_t i) {
    ++hits[i];
    EXPECT_TRUE(pram::in_pool_inline()) << "inline pin missing on caller-lane task";
    EXPECT_EQ(pram::threads(), 1) << "nested rounds not pinned serial";
    long local = 0;  // safe only if the nested loop below stays serial
    pram::parallel_for(0, kInner, [&](std::size_t j) { local += static_cast<long>(j); });
    sums[i] = local;
  };
  // Slot 3 of a width-4 pool is the caller lane; 3 + 4*i stays on it.
  for (std::size_t i = 0; i < kTasks; ++i) pool.submit(3 + 4 * i, body, i);
  pool.wait();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i], 1) << "caller-lane task " << i << " replayed by a re-entrant wait()";
    EXPECT_EQ(sums[i], static_cast<long>(kInner) * (kInner - 1) / 2) << "task " << i;
  }
}

TEST(WorkerPool, WorkersAreOnePramProcessor) {
  // On a worker: on_pool_worker() is set, threads() pins to 1, and a nested
  // parallel_for runs serially (correct result, no oversubscription) — the
  // explicit inner-level rule for the shard fan-out.  Submitting to slots
  // 0..2 of a width-4 pool deterministically targets the 3 worker lanes.
  pram::WorkerPool pool(4);
  std::atomic<int> violations{0};
  std::atomic<int> checked{0};
  auto body = [&](std::size_t) {
    if (!pram::on_pool_worker() || pram::WorkerPool::lane() < 0 || pram::threads() != 1) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    long local = 0;  // safe: the nested loop below is serial on a worker
    pram::parallel_for(0, 1000, [&](std::size_t i) { local += static_cast<long>(i); });
    if (local != 999L * 1000L / 2) violations.fetch_add(1, std::memory_order_relaxed);
    checked.fetch_add(1, std::memory_order_relaxed);
  };
  for (std::size_t slot = 0; slot < 3; ++slot) pool.submit(slot, body, slot);
  pool.wait();
  EXPECT_EQ(checked.load(), 3);
  EXPECT_EQ(violations.load(), 0);
}

TEST(WorkerPool, ParallelForRoutesToPoolAndCharges) {
  pram::WorkerPool pool(4);
  pram::Metrics m;
  pram::ExecutionContext ctx;
  ctx.threads = 4;
  ctx.grain = 16;
  ctx.metrics = &m;
  ctx.pool = &pool;
  pram::ScopedContext guard(&ctx);
  constexpr std::size_t kN = 4096;
  std::vector<u32> out(kN, 0);
  pram::parallel_for(0, kN, [&](std::size_t i) { out[i] = static_cast<u32>(i) * 3; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], static_cast<u32>(i) * 3);
  EXPECT_EQ(m.round_count(), 1u);
  EXPECT_EQ(m.ops(), kN);
}

TEST(WorkerPool, ParallelBlocksOnPoolRunsEveryBlock) {
  pram::WorkerPool pool(8);
  pram::ExecutionContext ctx;
  ctx.threads = 8;
  ctx.grain = 4;
  ctx.pool = &pool;
  pram::ScopedContext guard(&ctx);
  constexpr std::size_t kN = 64;
  ASSERT_EQ(pram::num_blocks(kN), 8);
  std::vector<std::atomic<int>> block_hits(8);
  std::vector<std::atomic<int>> elem_hits(kN);
  pram::parallel_blocks(kN, [&](int b, std::size_t lo, std::size_t hi) {
    block_hits[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = lo; i < hi; ++i) elem_hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t b = 0; b < block_hits.size(); ++b) {
    ASSERT_EQ(block_hits[b].load(), 1) << "block " << b;
  }
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(elem_hits[i].load(), 1) << "element " << i;
}

// ---- parallel_blocks under a short-changed OpenMP team --------------------
//
// Also registered as ctest entry `parallel_blocks_thread_limit` with
// OMP_THREAD_LIMIT=2: the runtime then delivers at most 2 threads to the
// nb=8 region, and every block must still run (the pre-fix code dropped
// blocks 2..7).  Without the env pin the suite still verifies coverage.

TEST(ParallelBlocksThreadLimit, AllBlocksRunWithSmallTeam) {
  pram::ExecutionContext ctx;
  ctx.threads = 8;
  ctx.grain = 4;  // n=64 with grain 4 and 8 threads -> nb = 8
  pram::ScopedContext guard(&ctx);
  constexpr std::size_t kN = 64;
  ASSERT_EQ(pram::num_blocks(kN), 8);
  std::vector<std::atomic<int>> block_hits(8);
  std::vector<std::atomic<int>> elem_hits(kN);
  pram::parallel_blocks(kN, [&](int b, std::size_t lo, std::size_t hi) {
    block_hits[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = lo; i < hi; ++i) elem_hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t b = 0; b < block_hits.size(); ++b) {
    ASSERT_EQ(block_hits[b].load(), 1) << "block " << b << " dropped or repeated";
  }
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(elem_hits[i].load(), 1) << "element " << i;
}

TEST(ParallelBlocksThreadLimit, ScanStyleTwoPassStaysConsistent) {
  // The shape that made the bug fatal: a counting pass writing per-block
  // columns followed by a serial combine.  Dropped blocks leave zero
  // columns and a silently wrong total.
  pram::ExecutionContext ctx;
  ctx.threads = 8;
  ctx.grain = 8;
  pram::ScopedContext guard(&ctx);
  constexpr std::size_t kN = 64;
  const int nb = pram::num_blocks(kN);
  ASSERT_EQ(nb, 8);
  std::vector<u64> partial(static_cast<std::size_t>(nb), 0);
  pram::parallel_blocks(kN, [&](int b, std::size_t lo, std::size_t hi) {
    u64 s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    partial[static_cast<std::size_t>(b)] = s;
  });
  const u64 total = std::accumulate(partial.begin(), partial.end(), u64{0});
  EXPECT_EQ(total, u64{kN} * (kN - 1) / 2);
}

// ---- determinism of the pooled shard repair path --------------------------

graph::Instance component_row(std::size_t count, std::size_t size, u64 seed) {
  util::Rng rng(seed);
  graph::Instance inst;
  for (std::size_t j = 0; j < count; ++j) {
    const graph::Instance sub = util::random_function(size, 3, rng);
    const u32 off = static_cast<u32>(j * size);
    for (std::size_t i = 0; i < size; ++i) {
      inst.f.push_back(sub.f[i] + off);
      inst.b.push_back(sub.b[i]);
    }
  }
  return inst;
}

graph::Instance eight_components(u64 seed) { return component_row(8, 100, seed); }

/// set_b edits cycling through the components — shard-routable (never
/// cross-shard), and every batch of `count` dirties all shards, so each
/// apply exercises the pooled fan (not the single-dirty-shard fallback).
std::vector<inc::Edit> spread_edits(std::size_t count, u64 seed, std::size_t comps = 8,
                                    std::size_t size = 100) {
  util::Rng rng(seed);
  std::vector<inc::Edit> edits;
  edits.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const u32 node = static_cast<u32>((i % comps) * size) +
                     rng.below_u32(static_cast<u32>(size));
    edits.push_back(inc::Edit::set_b(node, rng.below_u32(5)));
  }
  return edits;
}

TEST(PoolDeterminism, ShardedChargesAndViewsMatchSingleThread) {
  // Satellite contract: with inner loops forced serial on pool workers, a
  // threads=8 pooled session must charge EXACTLY the rounds and operations
  // of a threads=1 session — and produce byte-identical canonical views.
  const graph::Instance inst = eight_components(42);
  const std::vector<inc::Edit> edits = spread_edits(96, 77);
  shard::ShardOptions sopt;
  sopt.shards = 8;

  pram::Metrics m1;
  pram::ExecutionContext ctx1;
  ctx1.threads = 1;
  ctx1.metrics = &m1;
  shard::ShardedEngine e1(graph::Instance(inst), core::Options::parallel(), ctx1, sopt);

  pram::WorkerPool pool(8);
  pram::Metrics m8;
  pram::ExecutionContext ctx8;
  ctx8.threads = 8;
  ctx8.metrics = &m8;
  shard::ShardedEngine e8(graph::Instance(inst), core::Options::parallel(), ctx8, sopt);
  e8.install_pool(&pool);

  // Compare the APPLY phase as deltas past construction: the constructor's
  // initial solve runs on the calling thread, where kernel selection (e.g.
  // cycle_labeling's outer_parallel crossover) legitimately keys off the
  // session width.  The contract under test is the repair fan — on pool
  // workers threads() pins to 1, so its charges must match threads=1.
  const u64 r1_0 = m1.round_count(), o1_0 = m1.ops();
  const u64 r8_0 = m8.round_count(), o8_0 = m8.ops();
  for (std::size_t i = 0; i < edits.size(); i += 8) {
    const std::size_t len = std::min<std::size_t>(8, edits.size() - i);
    e1.apply(std::span<const inc::Edit>(edits).subspan(i, len));
    e8.apply(std::span<const inc::Edit>(edits).subspan(i, len));
  }

  EXPECT_EQ(m1.round_count() - r1_0, m8.round_count() - r8_0)
      << "depth charge diverged under the pool";
  EXPECT_EQ(m1.ops() - o1_0, m8.ops() - o8_0) << "work charge diverged under the pool";

  const core::PartitionView v1 = e1.view();
  const core::PartitionView v8 = e8.view();
  ASSERT_EQ(v1.num_classes(), v8.num_classes());
  const std::span<const u32> q1 = v1.labels();
  const std::span<const u32> q8 = v8.labels();
  ASSERT_TRUE(std::equal(q1.begin(), q1.end(), q8.begin(), q8.end()))
      << "pooled canonical view diverged from single-threaded";
}

TEST(PoolDeterminism, SuperGrainCallerLaneRepairsMatchSingleThread) {
  // Regression at REALISTIC shard sizes: shards larger than the parallel
  // grain (2048) make a repair's inner rounds parallel-eligible, and with
  // pool width 2 shards 1 and 3 land on the CALLER lane, running inline
  // inside wait().  batch_rebuild_fraction = 0 forces every repair through
  // a full re-solve, guaranteeing super-grain inner rounds.  Before the
  // inline pin those rounds re-entered the pool from the drain loop and
  // replayed completed repair tasks (double-charging and corrupting shard
  // state); charges and views must match the threads=1 session exactly.
  constexpr std::size_t kComponents = 4;
  constexpr std::size_t kSize = 3000;  // > default grain of 2048
  const graph::Instance inst = component_row(kComponents, kSize, 11);
  const std::vector<inc::Edit> edits = spread_edits(32, 13, kComponents, kSize);
  shard::ShardOptions sopt;
  sopt.shards = kComponents;
  sopt.repair.batch_rebuild_fraction = 0.0;  // threshold 1: always rebuild

  pram::Metrics m1;
  pram::ExecutionContext ctx1;
  ctx1.threads = 1;
  ctx1.metrics = &m1;
  shard::ShardedEngine e1(graph::Instance(inst), core::Options::parallel(), ctx1, sopt);

  pram::WorkerPool pool(2);
  pram::Metrics m2;
  pram::ExecutionContext ctx2;
  ctx2.threads = 2;
  ctx2.metrics = &m2;
  // Pool installed from birth (not via install_pool afterwards): the
  // construction solve's super-grain rounds then route to the pool as
  // well, which doubles as TSan coverage — pool dispatch is condvar/atomic
  // based and fully sanitizer-visible, unlike libgomp's barriers.
  ctx2.pool = &pool;
  shard::ShardedEngine e2(graph::Instance(inst), core::Options::parallel(), ctx2, sopt);

  const u64 r1_0 = m1.round_count(), o1_0 = m1.ops();
  const u64 r2_0 = m2.round_count(), o2_0 = m2.ops();
  for (std::size_t i = 0; i < edits.size(); i += kComponents) {
    const std::size_t len = std::min<std::size_t>(kComponents, edits.size() - i);
    e1.apply(std::span<const inc::Edit>(edits).subspan(i, len));
    e2.apply(std::span<const inc::Edit>(edits).subspan(i, len));
  }
  EXPECT_EQ(m1.round_count() - r1_0, m2.round_count() - r2_0)
      << "depth charge diverged (task replayed or nested round forked)";
  EXPECT_EQ(m1.ops() - o1_0, m2.ops() - o2_0) << "work charge diverged under the pool";

  const core::PartitionView v1 = e1.view();
  const core::PartitionView v2 = e2.view();
  ASSERT_EQ(v1.num_classes(), v2.num_classes());
  const std::span<const u32> q1 = v1.labels();
  const std::span<const u32> q2 = v2.labels();
  ASSERT_TRUE(std::equal(q1.begin(), q1.end(), q2.begin(), q2.end()))
      << "super-grain pooled canonical view diverged from single-threaded";
}

TEST(PoolDeterminism, RepairErrorSurfacesFromPooledApply) {
  // An invalid edit throws from validation BEFORE the fan; a logic error
  // inside a pooled repair would surface from wait().  Either way apply()
  // must throw on the calling thread, pool or not.
  const graph::Instance inst = eight_components(7);
  pram::WorkerPool pool(4);
  pram::ExecutionContext ctx;
  ctx.threads = 4;
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), ctx, {});
  engine.install_pool(&pool);
  const inc::Edit bad = inc::Edit::set_f(5, 100000);  // target out of range
  EXPECT_THROW(engine.apply({&bad, 1}), std::invalid_argument);
  engine.set_b(5, 9);  // still serviceable
  const core::Result fresh = core::solve(engine.instance());
  const core::PartitionView v = engine.view();
  const std::span<const u32> q = v.labels();
  EXPECT_TRUE(std::equal(q.begin(), q.end(), fresh.q.begin(), fresh.q.end()));
}

}  // namespace
}  // namespace sfcp
