// Unit tests for the partition property checkers.
#include <gtest/gtest.h>

#include "core/coarsest_partition.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::count_blocks;
using core::is_refinement;
using core::is_stable;
using core::same_partition;
using core::verify_solution;

TEST(Verify, RefinementBasics) {
  std::vector<u32> b{1, 1, 2, 2};
  EXPECT_TRUE(is_refinement({{0, 1, 2, 3}}, b));   // singletons refine anything
  EXPECT_TRUE(is_refinement({{0, 0, 1, 1}}, b));   // equal partition
  EXPECT_FALSE(is_refinement({{0, 0, 0, 1}}, b));  // merges across B
}

TEST(Verify, StabilityBasics) {
  std::vector<u32> f{1, 0, 3, 2};
  EXPECT_TRUE(is_stable({{0, 0, 1, 1}}, f));
  EXPECT_TRUE(is_stable({{0, 1, 2, 3}}, f));
  // {0,2} in one block but images {1,3} split:
  EXPECT_FALSE(is_stable({{0, 1, 0, 2}}, f));
}

TEST(Verify, CountBlocks) {
  EXPECT_EQ(count_blocks(std::vector<u32>{}), 0u);
  EXPECT_EQ(count_blocks(std::vector<u32>{5, 5, 5}), 1u);
  EXPECT_EQ(count_blocks(std::vector<u32>{1, 2, 1, 3}), 3u);
}

TEST(Verify, SamePartitionIgnoresLabelValues) {
  EXPECT_TRUE(same_partition(std::vector<u32>{7, 7, 9}, std::vector<u32>{0, 0, 1}));
  EXPECT_FALSE(same_partition(std::vector<u32>{7, 8, 9}, std::vector<u32>{0, 0, 1}));
  EXPECT_FALSE(same_partition(std::vector<u32>{1, 1}, std::vector<u32>{1, 1, 1}));
}

TEST(Verify, ReportOnCorrectSolution) {
  util::Rng rng(1401);
  const auto inst = util::random_function(400, 3, rng);
  const auto r = core::solve(inst);
  const auto report = verify_solution(inst, r.q);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.blocks, report.oracle_blocks);
}

TEST(Verify, ReportCatchesOverMerge) {
  // All-one-block labelling is stable only in special cases; with distinct
  // B labels it violates refinement.
  graph::Instance inst{{1, 0}, {1, 2}};
  std::vector<u32> bogus{0, 0};
  const auto report = verify_solution(inst, bogus);
  EXPECT_FALSE(report.refines_b);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, ReportCatchesOverSplit) {
  // Singletons are always a stable refinement but rarely coarsest.
  graph::Instance inst{{0, 1}, {3, 3}};
  std::vector<u32> singletons{0, 1};
  const auto report = verify_solution(inst, singletons);
  EXPECT_TRUE(report.refines_b);
  EXPECT_TRUE(report.stable);
  EXPECT_FALSE(report.coarsest);
}

TEST(Verify, ReportCatchesInstability) {
  // 0 and 1 share a block but map to different blocks.
  graph::Instance inst{{2, 3, 2, 3}, {1, 1, 2, 3}};
  std::vector<u32> unstable{0, 0, 1, 2};
  const auto report = verify_solution(inst, unstable);
  EXPECT_FALSE(report.stable);
}

TEST(Verify, ToStringContainsFields) {
  core::VerifyReport r;
  r.blocks = 3;
  const auto s = r.to_string();
  EXPECT_NE(s.find("blocks=3"), std::string::npos);
  EXPECT_NE(s.find("stable=0"), std::string::npos);
}

}  // namespace
}  // namespace sfcp
