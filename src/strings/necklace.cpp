#include "strings/necklace.hpp"

#include <algorithm>
#include <unordered_map>

#include "pram/metrics.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"

namespace sfcp::strings {

u32 msp_shiloach(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n <= 1) return 0;
  // Two candidates i < j duel by extending a common match of length k;
  // a mismatch eliminates the loser together with the k positions behind
  // it (Lemma 3.3's sequential counterpart).  O(n) total comparisons.
  std::size_t i = 0, j = 1, k = 0;
  while (i < n && j < n && k < n) {
    const u32 a = s[(i + k) % n];
    const u32 b = s[(j + k) % n];
    if (a == b) {
      ++k;
      continue;
    }
    if (a > b) {
      i = i + k + 1;
      if (i == j) ++i;
    } else {
      j = j + k + 1;
      if (j == i) ++j;
    }
    k = 0;
  }
  pram::charge(2 * n);
  const std::size_t winner = std::min(i, j);
  // For repeating strings the duel may settle on a later equivalent
  // rotation; normalize to the smallest index with the same rotation.
  const u32 p = smallest_period_seq(s);
  return static_cast<u32>(winner % p);
}

std::vector<u32> canonical_necklace(std::span<const u32> s) {
  if (s.empty()) return {};
  const u32 p = smallest_period_seq(s);
  const auto prefix = s.subspan(0, p);
  const u32 m = msp_shiloach(prefix);
  std::vector<u32> out(p);
  for (u32 t = 0; t < p; ++t) out[t] = prefix[(m + t) % p];
  pram::charge(p);
  return out;
}

bool rotation_equivalent(std::span<const u32> a, std::span<const u32> b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  // Equal lengths + equal canonical forms (the canonical form's length is
  // the smallest period, so equal forms imply equal periods too).
  return canonical_necklace(a) == canonical_necklace(b);
}

NecklaceClasses necklace_classes(const StringList& list) {
  const std::size_t m = list.size();
  NecklaceClasses out;
  out.label.assign(m, 0);
  if (m == 0) return out;

  // Hash canonical necklaces; strings with equal canonical form share a
  // class.  (Period length is implied by the canonical form's length.)
  struct VecHash {
    std::size_t operator()(const std::vector<u32>& v) const noexcept {
      std::size_t h = 0x9e3779b97f4a7c15ull;
      for (const u32 x : v) h = (h ^ x) * 0x100000001b3ull;
      return h;
    }
  };
  std::unordered_map<std::vector<u32>, u32, VecHash> classes;
  classes.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto canon = canonical_necklace(list.view(i));
    const auto [it, inserted] =
        classes.emplace(std::move(canon), static_cast<u32>(classes.size()));
    out.label[i] = it->second;
  }
  out.count = static_cast<u32>(classes.size());
  return out;
}

u64 count_necklaces(u32 n, u32 k) {
  if (n == 0) return 1;  // the empty necklace
  auto phi = [](u32 x) {
    u32 result = x;
    for (u32 p = 2; p * p <= x; ++p) {
      if (x % p == 0) {
        while (x % p == 0) x /= p;
        result -= result / p;
      }
    }
    if (x > 1) result -= result / x;
    return result;
  };
  auto pow_u64 = [](u64 base, u32 exp) {
    u64 r = 1;
    for (u32 t = 0; t < exp; ++t) r *= base;
    return r;
  };
  u64 total = 0;
  for (u32 d = 1; d <= n; ++d) {
    if (n % d == 0) total += static_cast<u64>(phi(d)) * pow_u64(k, n / d);
  }
  return total / n;
}

}  // namespace sfcp::strings
