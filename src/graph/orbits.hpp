#pragma once
// Orbit analytics for functional graphs: per-node tail ("rho") lengths,
// eventual cycle membership, fast f^k(x) queries via binary lifting, and
// aggregate shape statistics.
//
// This extends the paper's pseudo-forest machinery (Sections 2, 4, 5) with
// the queries downstream applications keep asking of a single function:
// where does iteration from x land, after how many steps, and on which
// cycle?  The tail-length computation doubles as an independent witness for
// the tree-labelling levels of Section 4 (level(x) == tail_length(x)), which
// the tests exploit.

#include <span>
#include <vector>

#include "graph/cycle_structure.hpp"
#include "pram/types.hpp"

namespace sfcp::graph {

/// Per-node orbit data.  For x on a cycle: tail == 0, entry == x.
struct Orbits {
  std::vector<u32> tail;       ///< steps from x to the first cycle node
  std::vector<u32> entry;      ///< the first cycle node reached from x
  std::vector<u32> cycle_id;   ///< dense id of the cycle x eventually reaches
  std::vector<u32> cycle_len;  ///< its length

  std::size_t size() const { return tail.size(); }
  /// Rho length of x: tail + cycle, the orbit size of x under iteration.
  u32 rho(std::size_t x) const { return tail[x] + cycle_len[x]; }
};

/// Computes orbit data from a cycle structure: parallel pointer doubling on
/// tree edges, O(n log h) work where h is the deepest tail, O(log n) depth.
Orbits compute_orbits(std::span<const u32> f, const CycleStructure& cs);

/// Convenience overload that builds the cycle structure itself.
Orbits compute_orbits(std::span<const u32> f);

/// Binary-lifting table answering f^k(x) queries in O(log k) after
/// O(n log K) preprocessing, K = the largest supported exponent.
class IterationTable {
 public:
  /// Builds lift levels for exponents up to `max_k` (inclusive).
  IterationTable(std::span<const u32> f, u64 max_k);

  /// f^k(x); requires k <= max_k().
  u32 apply(u32 x, u64 k) const;

  u64 max_k() const { return max_k_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }

 private:
  std::vector<std::vector<u32>> levels_;  ///< levels_[j][x] = f^{2^j}(x)
  u64 max_k_ = 0;
};

/// Aggregate shape statistics of a functional graph.
struct OrbitStats {
  u32 num_cycles = 0;
  u32 cycle_nodes = 0;     ///< total nodes on cycles
  u32 max_cycle_len = 0;
  u32 max_tail = 0;        ///< deepest tree tail
  double mean_tail = 0.0;  ///< average tail length over all nodes
  u32 num_components = 0;  ///< == num_cycles (one cycle per pseudo-tree)
};

OrbitStats orbit_stats(std::span<const u32> f);

/// The orbit of x: x, f(x), f^2(x), ... until the cycle has been traversed
/// once (tail followed by one full cycle lap); O(rho(x)) sequential.
std::vector<u32> orbit_of(std::span<const u32> f, u32 x);

}  // namespace sfcp::graph
