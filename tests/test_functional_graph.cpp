// Unit tests for the functional-graph utilities.
#include <gtest/gtest.h>

#include "graph/functional_graph.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::indegrees;
using graph::Instance;
using graph::iterate_function;
using graph::validate;

TEST(Validate, AcceptsWellFormed) {
  Instance inst;
  inst.f = {1, 0};
  inst.b = {0, 0};
  EXPECT_NO_THROW(validate(inst));
}

TEST(Validate, RejectsSizeMismatch) {
  Instance inst;
  inst.f = {0, 1};
  inst.b = {0};
  EXPECT_THROW(validate(inst), std::invalid_argument);
}

TEST(Validate, RejectsOutOfRange) {
  Instance inst;
  inst.f = {0, 5};
  inst.b = {0, 0};
  EXPECT_THROW(validate(inst), std::invalid_argument);
}

TEST(IterateFunction, IdentityPower) {
  std::vector<u32> f{1, 2, 0};
  const auto f0 = iterate_function(f, 0);
  EXPECT_EQ(f0, (std::vector<u32>{0, 1, 2}));
}

TEST(IterateFunction, FirstPower) {
  std::vector<u32> f{1, 2, 0};
  EXPECT_EQ(iterate_function(f, 1), f);
}

TEST(IterateFunction, CycleWrapsAround) {
  std::vector<u32> f{1, 2, 0};  // 3-cycle
  EXPECT_EQ(iterate_function(f, 3), (std::vector<u32>{0, 1, 2}));
  EXPECT_EQ(iterate_function(f, 4), f);
}

TEST(IterateFunction, MatchesRepeatedApplication) {
  util::Rng rng(401);
  const auto inst = util::random_function(200, 3, rng);
  std::vector<u32> ref(200);
  for (u32 x = 0; x < 200; ++x) ref[x] = x;
  for (u64 k = 0; k <= 17; ++k) {
    EXPECT_EQ(iterate_function(inst.f, k), ref) << "k=" << k;
    for (u32 x = 0; x < 200; ++x) ref[x] = inst.f[ref[x]];
  }
}

TEST(Indegrees, SumsToN) {
  util::Rng rng(409);
  const auto inst = util::random_function(1000, 3, rng);
  const auto deg = indegrees(inst.f);
  u64 total = 0;
  for (const u32 d : deg) total += d;
  EXPECT_EQ(total, 1000u);
}

TEST(Indegrees, KnownSmallCase) {
  std::vector<u32> f{1, 1, 1, 0};
  EXPECT_EQ(indegrees(f), (std::vector<u32>{1, 3, 0, 0}));
}

}  // namespace
}  // namespace sfcp
