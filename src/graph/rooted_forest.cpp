#include "graph/rooted_forest.hpp"

#include <atomic>
#include <bit>
#include <cassert>

#include "graph/euler_tour.hpp"
#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "prim/integer_sort.hpp"
#include "prim/scan.hpp"

namespace sfcp::graph {

RootedForest build_rooted_forest(std::span<const u32> f, std::span<const u8> on_cycle) {
  const std::size_t n = f.size();
  RootedForest forest;
  forest.parent.assign(f.begin(), f.end());
  forest.is_root.assign(on_cycle.begin(), on_cycle.end());
  forest.roots = prim::pack_index_if(n, [&](std::size_t x) { return on_cycle[x] != 0; });
  // Tree nodes, stably sorted by parent: gives children lists with siblings
  // in ascending order (deterministic across strategies).
  const std::vector<u32> tree_nodes =
      prim::pack_index_if(n, [&](std::size_t x) { return on_cycle[x] == 0; });
  std::vector<u64> keys(tree_nodes.size());
  pram::parallel_for(0, tree_nodes.size(), [&](std::size_t i) { keys[i] = f[tree_nodes[i]]; });
  const std::vector<u32> order = prim::sort_order_by_key(keys, n > 0 ? n - 1 : 0);
  forest.child.resize(tree_nodes.size());
  pram::parallel_for(0, order.size(), [&](std::size_t i) {
    forest.child[i] = tree_nodes[order[i]];
  });
  // Offsets: counts per parent, then a scan.
  std::vector<u32> counts(n, 0);
  {
    std::vector<std::atomic<u32>> cnt(n);
    pram::parallel_for(0, n, [&](std::size_t v) { cnt[v].store(0, std::memory_order_relaxed); });
    pram::parallel_for(0, tree_nodes.size(), [&](std::size_t i) {
      cnt[f[tree_nodes[i]]].fetch_add(1, std::memory_order_relaxed);
    });
    pram::parallel_for(0, n, [&](std::size_t v) { counts[v] = cnt[v].load(std::memory_order_relaxed); });
  }
  forest.child_off.assign(n + 1, 0);
  const u32 total = prim::exclusive_scan<u32>(counts, std::span<u32>(forest.child_off).first(n));
  forest.child_off[n] = total;
  assert(total == forest.child.size());
  forest.sibling_index.assign(n, 0);
  pram::parallel_for(0, forest.child.size(), [&](std::size_t i) {
    forest.sibling_index[forest.child[i]] = static_cast<u32>(i) - forest.child_off[forest.parent[forest.child[i]]];
  });
  return forest;
}

namespace {

ForestLevels levels_sequential(const RootedForest& forest) {
  const std::size_t n = forest.size();
  ForestLevels out;
  out.level.assign(n, 0);
  out.root_of.assign(n, kNone);
  std::vector<u32> stack;
  for (const u32 r : forest.roots) {
    out.root_of[r] = r;
    stack.push_back(r);
    while (!stack.empty()) {
      const u32 v = stack.back();
      stack.pop_back();
      for (u32 i = forest.child_off[v]; i < forest.child_off[v + 1]; ++i) {
        const u32 c = forest.child[i];
        out.level[c] = out.level[v] + 1;
        out.root_of[c] = r;
        stack.push_back(c);
      }
    }
  }
  pram::charge(n);
  return out;
}

ForestLevels levels_euler(const RootedForest& forest) {
  const std::size_t n = forest.size();
  ForestLevels out;
  out.level.assign(n, 0);
  out.root_of.assign(n, kNone);
  const EulerTour tour = build_euler_tour(forest);
  const std::size_t T = tour.order.size();
  // +1 on a down-arc, -1 on an up-arc; the segmented prefix sum at a node's
  // down-arc is exactly its level.
  std::vector<i64> vals(T);
  pram::parallel_for(0, T, [&](std::size_t p) {
    vals[p] = EulerTour::is_down(tour.order[p]) ? 1 : -1;
  });
  std::vector<i64> pre(T);
  prim::segmented_inclusive_scan<i64>(vals, tour.seg_start, pre);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (forest.is_root[x]) {
      out.root_of[x] = static_cast<u32>(x);
      return;
    }
    out.level[x] = static_cast<u32>(pre[tour.pos[EulerTour::down_arc(static_cast<u32>(x))]]);
  });
  // Owning root: propagate the segment head's root with a segmented max
  // scan over (root id + 1) placed at segment heads.
  std::vector<i64> rootv(T, 0);
  pram::parallel_for(0, T, [&](std::size_t p) {
    if (tour.seg_start[p]) {
      rootv[p] = static_cast<i64>(forest.parent[EulerTour::arc_node(tour.order[p])]) + 1;
    }
  });
  // A copy-scan: within a segment only the head holds a value, so a
  // segmented running maximum propagates it.
  std::vector<i64> carried(T);
  {
    // reuse segmented sum scan on indicator trick: since only heads hold
    // values and all others are 0, max == sum within a segment prefix.
    prim::segmented_inclusive_scan<i64>(rootv, tour.seg_start, carried);
  }
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (forest.is_root[x]) return;
    out.root_of[x] =
        static_cast<u32>(carried[tour.pos[EulerTour::down_arc(static_cast<u32>(x))]] - 1);
  });
  return out;
}

ForestLevels levels_doubling(const RootedForest& forest) {
  const std::size_t n = forest.size();
  ForestLevels out;
  out.level.assign(n, 0);
  out.root_of.assign(n, kNone);
  if (n == 0) return out;
  std::vector<u32> jump(n), lvl(n), jump2(n), lvl2(n);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (forest.is_root[x]) {
      jump[x] = static_cast<u32>(x);
      lvl[x] = 0;
    } else {
      jump[x] = forest.parent[x];
      lvl[x] = 1;
    }
  });
  const int rounds = static_cast<int>(std::bit_width(static_cast<u64>(n - 1))) + 1;
  for (int r = 0; r < rounds; ++r) {
    pram::parallel_for(0, n, [&](std::size_t x) {
      lvl2[x] = lvl[x] + lvl[jump[x]];
      jump2[x] = jump[jump[x]];
    });
    lvl.swap(lvl2);
    jump.swap(jump2);
  }
  pram::parallel_for(0, n, [&](std::size_t x) {
    out.level[x] = lvl[x];
    out.root_of[x] = jump[x];
  });
  return out;
}

std::vector<i64> sums_sequential(const RootedForest& forest, std::span<const i64> vals) {
  const std::size_t n = forest.size();
  std::vector<i64> out(n, 0);
  std::vector<u32> stack;
  for (const u32 r : forest.roots) {
    out[r] = vals[r];
    stack.push_back(r);
    while (!stack.empty()) {
      const u32 v = stack.back();
      stack.pop_back();
      for (u32 i = forest.child_off[v]; i < forest.child_off[v + 1]; ++i) {
        const u32 c = forest.child[i];
        out[c] = out[v] + vals[c];
        stack.push_back(c);
      }
    }
  }
  pram::charge(n);
  return out;
}

std::vector<i64> sums_euler(const RootedForest& forest, std::span<const i64> vals) {
  const std::size_t n = forest.size();
  std::vector<i64> out(n, 0);
  const EulerTour tour = build_euler_tour(forest);
  const std::size_t T = tour.order.size();
  std::vector<i64> arc_vals(T);
  pram::parallel_for(0, T, [&](std::size_t p) {
    const u32 arc = tour.order[p];
    const u32 x = EulerTour::arc_node(arc);
    arc_vals[p] = EulerTour::is_down(arc) ? vals[x] : -vals[x];
  });
  std::vector<i64> pre(T);
  prim::segmented_inclusive_scan<i64>(arc_vals, tour.seg_start, pre);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (forest.is_root[x]) {
      out[x] = vals[x];
    } else {
      // The prefix at the down-arc covers the path root..x *excluding* the
      // root (roots have no down-arc); add the root's value explicitly.
      out[x] = pre[tour.pos[EulerTour::down_arc(static_cast<u32>(x))]];
    }
  });
  // Add the owning root's value to every tree node.
  const ForestLevels lv = levels_euler(forest);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (!forest.is_root[x]) out[x] += vals[lv.root_of[x]];
  });
  return out;
}

std::vector<i64> sums_doubling(const RootedForest& forest, std::span<const i64> vals) {
  const std::size_t n = forest.size();
  std::vector<i64> out(n, 0);
  if (n == 0) return out;
  std::vector<u32> jump(n), jump2(n);
  std::vector<i64> acc(n), acc2(n);
  pram::parallel_for(0, n, [&](std::size_t x) {
    acc[x] = vals[x];
    jump[x] = forest.is_root[x] ? kNone : forest.parent[x];
  });
  const int rounds = static_cast<int>(std::bit_width(static_cast<u64>(n - 1))) + 1;
  for (int r = 0; r < rounds; ++r) {
    pram::parallel_for(0, n, [&](std::size_t x) {
      if (jump[x] != kNone) {
        acc2[x] = acc[x] + acc[jump[x]];
        jump2[x] = jump[jump[x]];
      } else {
        acc2[x] = acc[x];
        jump2[x] = kNone;
      }
    });
    acc.swap(acc2);
    jump.swap(jump2);
  }
  pram::parallel_for(0, n, [&](std::size_t x) { out[x] = acc[x]; });
  return out;
}

}  // namespace

ForestLevels forest_levels(const RootedForest& forest, ForestStrategy strategy) {
  switch (strategy) {
    case ForestStrategy::Sequential:
      return levels_sequential(forest);
    case ForestStrategy::EulerTour:
      return levels_euler(forest);
    case ForestStrategy::AncestorDoubling:
      return levels_doubling(forest);
  }
  return levels_sequential(forest);
}

std::vector<i64> root_path_sums(const RootedForest& forest, std::span<const i64> vals,
                                ForestStrategy strategy) {
  switch (strategy) {
    case ForestStrategy::Sequential:
      return sums_sequential(forest, vals);
    case ForestStrategy::EulerTour:
      return sums_euler(forest, vals);
    case ForestStrategy::AncestorDoubling:
      return sums_doubling(forest, vals);
  }
  return sums_sequential(forest, vals);
}

}  // namespace sfcp::graph
