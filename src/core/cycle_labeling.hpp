#pragma once
// Q-labels of cycle nodes — Section 3, Algorithm "cycle node labeling".
//
// Per cycle: reduce the B-label string to its smallest repeating prefix
// (period p), rotate it to its minimal starting point, then group cycles
// with identical reduced strings (= cyclic-shift-equivalent label strings)
// with Algorithm "partition" (§3.2).  Nodes of equivalent cycles whose
// ranks agree modulo p (relative to the m.s.p.) share one Q-label.

#include <span>
#include <vector>

#include "graph/cycle_structure.hpp"
#include "graph/functional_graph.hpp"
#include "pram/types.hpp"
#include "strings/msp.hpp"

namespace sfcp::core {

enum class RenameBackend {
  Hashed,  ///< arbitrary-CRCW BB-table emulation (paper's Algorithm partition)
  Sorted,  ///< integer-sort based renaming (order-preserving; ablation A1)
};

struct CycleLabelingOptions {
  strings::MspStrategy msp = strings::MspStrategy::Efficient;
  bool parallel_period = false;  ///< doubling-rank period finder instead of KMP
  RenameBackend partition_backend = RenameBackend::Hashed;
};

struct CycleLabeling {
  /// Q-labels for cycle nodes (kNone elsewhere); values in [0, num_labels).
  std::vector<u32> q;
  u32 num_labels = 0;
  /// Per-cycle diagnostics (indexed by dense cycle id).
  std::vector<u32> period;     ///< smallest repeating prefix length
  std::vector<u32> msp;        ///< m.s.p. of the period prefix
  std::vector<u32> class_id;   ///< equivalence class (dense, first-occurrence order)
  u32 num_classes = 0;
};

CycleLabeling label_cycles(const graph::Instance& inst, const graph::CycleStructure& cs,
                           const CycleLabelingOptions& opt = {});

/// Workspace-reusing variant: rebuilds `out` in place, reusing its vectors'
/// capacity across calls.
void label_cycles_into(const graph::Instance& inst, const graph::CycleStructure& cs,
                       const CycleLabelingOptions& opt, CycleLabeling& out);

/// Algorithm "partition" (§3.2): k strings of common power-of-two length L,
/// stored flat (string i at [i*L, (i+1)*L)).  Returns one representative
/// label per string such that two strings get equal labels iff they are
/// equal; O(kL) work via tree-structured pair renaming with stride-doubling
/// participation.
std::vector<u32> partition_equal_strings(std::span<const u32> flat, std::size_t k, std::size_t L,
                                         RenameBackend backend = RenameBackend::Hashed);

}  // namespace sfcp::core
