// Shared main for every google-benchmark target: standard benchmark CLI
// plus `--json <path>`, which appends one {name, n, strategy, threads, ms}
// JSON-lines record per measured run (util/bench_json).  Linked instead of
// benchmark_main so perf trajectories can be captured uniformly.
//
// A process-wide prof::Profiler is installed for the whole run: in
// SFCP_PROFILE builds every record also carries the phase profile
// accumulated since the previous record (snapshot + reset per ReportRuns),
// which is how BENCH_*.json grows per-phase breakdowns for
// tools/profile_report.py.  In default builds the tree is empty and the
// record shape is unchanged.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "pram/config.hpp"
#include "prof/profile.hpp"
#include "util/bench_json.hpp"

namespace {

sfcp::prof::Profiler g_profiler;

// "BM_Sfcp/euler-jump-level/16384/0" -> name "BM_Sfcp", strategy
// "euler-jump-level", n 16384 (first numeric path segment).
void split_run_name(const std::string& full, std::string& name, std::string& strategy,
                    sfcp::u64& n) {
  name.clear();
  strategy.clear();
  n = 0;
  bool n_set = false;
  std::size_t start = 0;
  bool first = true;
  while (start <= full.size()) {
    std::size_t slash = full.find('/', start);
    if (slash == std::string::npos) slash = full.size();
    const std::string seg = full.substr(start, slash - start);
    if (first) {
      name = seg;
      first = false;
    } else if (!seg.empty() && seg.find_first_not_of("0123456789") == std::string::npos) {
      if (!n_set) {
        n = std::strtoull(seg.c_str(), nullptr, 10);
        n_set = true;
      }
    } else if (!seg.empty()) {
      if (!strategy.empty()) strategy += '/';
      strategy += seg;
    }
    start = slash + 1;
  }
}

class JsonAppendReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonAppendReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    // One snapshot per report: the tree covers everything this benchmark
    // family ran (warmup iterations included — per-call ns/count stays
    // meaningful, and relative phase shares are what the report reads).
    const sfcp::prof::ProfileTree profile = g_profiler.snapshot();
    g_profiler.reset();
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string name, strategy;
      sfcp::u64 n = 0;
      split_run_name(run.benchmark_name(), name, strategy, n);
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double ms = run.real_accumulated_time / iters * 1e3;
      std::vector<std::pair<std::string, double>> counters;
      counters.reserve(run.counters.size());
      for (const auto& [key, counter] : run.counters) {
        counters.emplace_back(key, counter.value);
      }
      // run.threads is google-benchmark's own threading (always 1 here);
      // what perf trajectories care about is the OpenMP budget the solver
      // ran under — the same value the table recorders log.
      sfcp::util::append_bench_record(path_, name, n, strategy, sfcp::pram::threads(), ms,
                                      profile, counters);
    }
  }

 private:
  std::string path_;
};

}  // namespace

int main(int argc, char** argv) {
  sfcp::prof::ScopedProfiler prof_guard(g_profiler);
  const std::string json_path = sfcp::util::consume_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonAppendReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}
