// Unit tests for rooted-forest construction, levels, owning roots and
// root-path sums across the three strategies.
#include <gtest/gtest.h>

#include "graph/cycle_structure.hpp"
#include "graph/rooted_forest.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::build_rooted_forest;
using graph::cycle_structure;
using graph::forest_levels;
using graph::ForestStrategy;
using graph::root_path_sums;
using graph::RootedForest;

const auto kAll = {ForestStrategy::Sequential, ForestStrategy::EulerTour,
                   ForestStrategy::AncestorDoubling};

RootedForest forest_of(const graph::Instance& inst) {
  const auto cs = cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  return build_rooted_forest(inst.f, cs.on_cycle);
}

TEST(RootedForestBuild, ChildrenAscendingAndComplete) {
  util::Rng rng(801);
  const auto inst = util::random_function(2000, 3, rng);
  const auto forest = forest_of(inst);
  std::size_t total_children = 0;
  for (u32 v = 0; v < forest.size(); ++v) {
    for (u32 i = forest.child_off[v]; i < forest.child_off[v + 1]; ++i) {
      const u32 c = forest.child[i];
      EXPECT_EQ(inst.f[c], v);
      EXPECT_FALSE(forest.is_root[c]);
      if (i + 1 < forest.child_off[v + 1]) EXPECT_LT(c, forest.child[i + 1]);
      EXPECT_EQ(forest.sibling_index[c], i - forest.child_off[v]);
      ++total_children;
    }
  }
  std::size_t tree_nodes = 0;
  for (u32 x = 0; x < forest.size(); ++x) tree_nodes += forest.is_root[x] ? 0 : 1;
  EXPECT_EQ(total_children, tree_nodes);
}

TEST(ForestLevelsTest, SimpleChain) {
  // 0 self-loop; 1 -> 0; 2 -> 1; 3 -> 2
  graph::Instance inst{{0, 0, 1, 2}, {0, 0, 0, 0}};
  const auto forest = forest_of(inst);
  for (auto strat : kAll) {
    const auto lv = forest_levels(forest, strat);
    EXPECT_EQ(lv.level, (std::vector<u32>{0, 1, 2, 3})) << static_cast<int>(strat);
    EXPECT_EQ(lv.root_of, (std::vector<u32>{0, 0, 0, 0}));
  }
}

TEST(ForestLevelsTest, TwoTrees) {
  // Cycle 0 <-> 1; 2 -> 0; 3 -> 1; 4 -> 3
  graph::Instance inst{{1, 0, 0, 1, 3}, {0, 0, 0, 0, 0}};
  const auto forest = forest_of(inst);
  for (auto strat : kAll) {
    const auto lv = forest_levels(forest, strat);
    EXPECT_EQ(lv.level, (std::vector<u32>{0, 0, 1, 1, 2}));
    EXPECT_EQ(lv.root_of, (std::vector<u32>{0, 1, 0, 1, 1}));
  }
}

TEST(ForestLevelsTest, StrategiesAgreeOnRandom) {
  util::Rng rng(809);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(1 + rng.below(3000), 3, rng);
    const auto forest = forest_of(inst);
    const auto ref = forest_levels(forest, ForestStrategy::Sequential);
    for (auto strat : {ForestStrategy::EulerTour, ForestStrategy::AncestorDoubling}) {
      const auto got = forest_levels(forest, strat);
      EXPECT_EQ(got.level, ref.level) << static_cast<int>(strat);
      EXPECT_EQ(got.root_of, ref.root_of) << static_cast<int>(strat);
    }
  }
}

TEST(RootPathSums, UnitValuesGiveLevelPlusRootValue) {
  util::Rng rng(811);
  const auto inst = util::random_function(1500, 3, rng);
  const auto forest = forest_of(inst);
  const auto lv = forest_levels(forest, ForestStrategy::Sequential);
  std::vector<i64> ones(forest.size(), 1);
  for (auto strat : kAll) {
    const auto sums = root_path_sums(forest, ones, strat);
    for (u32 x = 0; x < forest.size(); ++x) {
      if (forest.is_root[x]) {
        EXPECT_EQ(sums[x], 1) << "root " << x;
      } else {
        EXPECT_EQ(sums[x], static_cast<i64>(lv.level[x]) + 1) << "node " << x;
      }
    }
  }
}

TEST(RootPathSums, RandomValuesMatchSequential) {
  util::Rng rng(821);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = util::random_function(1 + rng.below(2500), 3, rng);
    const auto forest = forest_of(inst);
    std::vector<i64> vals(forest.size());
    for (auto& v : vals) v = static_cast<i64>(rng.below(19)) - 9;
    const auto ref = root_path_sums(forest, vals, ForestStrategy::Sequential);
    EXPECT_EQ(root_path_sums(forest, vals, ForestStrategy::EulerTour), ref);
    EXPECT_EQ(root_path_sums(forest, vals, ForestStrategy::AncestorDoubling), ref);
  }
}

TEST(RootPathSums, DeepPathNoOverflow) {
  util::Rng rng(823);
  const auto inst = util::long_tail(30000, 2, 2, rng);
  const auto forest = forest_of(inst);
  std::vector<i64> ones(forest.size(), 1);
  const auto ref = root_path_sums(forest, ones, ForestStrategy::Sequential);
  EXPECT_EQ(root_path_sums(forest, ones, ForestStrategy::EulerTour), ref);
  EXPECT_EQ(root_path_sums(forest, ones, ForestStrategy::AncestorDoubling), ref);
  EXPECT_EQ(*std::max_element(ref.begin(), ref.end()), 29999);
}

}  // namespace
}  // namespace sfcp
