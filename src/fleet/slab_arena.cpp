#include "fleet/slab_arena.hpp"

#include <bit>
#include <functional>
#include <new>
#include <thread>

#include "pram/execution_context.hpp"

namespace sfcp::fleet {

SlabArena::~SlabArena() { trim(); }

std::size_t SlabArena::class_of_(std::size_t bytes, std::size_t align) noexcept {
  if (align > alignof(std::max_align_t)) return kNumClasses;
  const std::size_t want = bytes < kMinBlock ? kMinBlock : std::bit_ceil(bytes);
  const std::size_t cls = static_cast<std::size_t>(std::countr_zero(want / kMinBlock));
  return cls < kNumClasses ? cls : kNumClasses;
}

std::size_t SlabArena::home_stripe_() noexcept {
  // Pool workers home by lane so a lane's evict/fault churn stays on one
  // stripe; everything else (the fleet caller, OpenMP team members) hashes
  // its thread id, which is stable per thread and spreads across stripes.
  const int lane = pram::pool_worker_lane();
  if (lane >= 0) return static_cast<std::size_t>(lane) & (kStripes - 1);
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kStripes - 1);
}

void* SlabArena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  const std::size_t cls = class_of_(bytes, align);
  if (cls == kNumClasses) {
    // Too big or too aligned to pool: exact pass-through to the heap.
    void* p = ::operator new(bytes, std::align_val_t(align));
    allocs_.fetch_add(1, std::memory_order_relaxed);
    live_blocks_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return p;
  }
  const std::size_t block = kMinBlock << cls;
  const std::size_t home = home_stripe_();
  for (std::size_t k = 0; k < kStripes; ++k) {
    Stripe& st = stripes_[(home + k) & (kStripes - 1)];
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.pool[cls].empty()) continue;
    void* p = st.pool[cls].back();
    st.pool[cls].pop_back();
    allocs_.fetch_add(1, std::memory_order_relaxed);
    reuses_.fetch_add(1, std::memory_order_relaxed);
    live_blocks_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_add(block, std::memory_order_relaxed);
    pooled_bytes_.fetch_sub(block, std::memory_order_relaxed);
    return p;
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  live_blocks_.fetch_add(1, std::memory_order_relaxed);
  live_bytes_.fetch_add(block, std::memory_order_relaxed);
  return ::operator new(block);
}

void SlabArena::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t cls = class_of_(bytes, align);
  if (cls == kNumClasses) {
    ::operator delete(p, std::align_val_t(align));
    frees_.fetch_add(1, std::memory_order_relaxed);
    live_blocks_.fetch_sub(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    return;
  }
  const std::size_t block = kMinBlock << cls;
  frees_.fetch_add(1, std::memory_order_relaxed);
  live_blocks_.fetch_sub(1, std::memory_order_relaxed);
  live_bytes_.fetch_sub(block, std::memory_order_relaxed);
  Stripe& st = stripes_[home_stripe_()];
  std::lock_guard<std::mutex> lock(st.mu);
  // push_back can throw bad_alloc in theory; a noexcept deallocate must not.
  try {
    st.pool[cls].push_back(p);
    pooled_bytes_.fetch_add(block, std::memory_order_relaxed);
  } catch (...) {
    ::operator delete(p);
  }
}

void SlabArena::trim() {
  for (Stripe& st : stripes_) {
    std::lock_guard<std::mutex> lock(st.mu);
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      auto& pool = st.pool[cls];
      if (pool.empty()) continue;
      pooled_bytes_.fetch_sub(pool.size() * (kMinBlock << cls), std::memory_order_relaxed);
      for (void* p : pool) ::operator delete(p);
      pool.clear();
      pool.shrink_to_fit();
    }
  }
}

SlabArena::Stats SlabArena::stats() const {
  Stats s;
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.pooled_bytes = pooled_bytes_.load(std::memory_order_relaxed);
  s.live_blocks = live_blocks_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.reuses = reuses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sfcp::fleet
