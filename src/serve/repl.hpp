#pragma once
// serve::repl — the shared serving-command dispatcher behind `sfcp_cli
// connect` and examples/incremental_server: one parser for every command
// that talks `sfcp-wire v1` through a serve::Client, so the two front ends
// cannot drift apart.  Front ends keep only their own lifecycle commands
// (gen/load/engine/... in incremental_server) and fall through here first.

#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "inc/edit.hpp"
#include "serve/client.hpp"

namespace sfcp::serve {

enum class ReplResult {
  Handled,  ///< the line was a serving command and was executed
  Quit,     ///< quit/exit
  Unknown,  ///< not a serving command — the caller's turn
};

struct ReplHooks {
  /// Called after the server acked a batch this dispatcher sent (setf /
  /// setb / edits); incremental_server mirrors the edits into its local
  /// instance copy so `save` stays accurate.
  std::function<void(std::span<const inc::Edit>)> on_edits;
};

/// Session state the dispatcher mutates across lines: against a fleet-mode
/// server, `instance <id>` selects the instance subsequent setf/setb/edits/
/// view/blocks commands route to (FLEET_EDIT/FLEET_VIEW frames), and
/// `instance off` returns to classic single-instance frames.
struct ReplState {
  bool fleet = false;  ///< an instance is selected; route through FLEET_*
  u64 instance = 0;
};

/// Prints the serving-command section of `help`.
void print_serve_help(std::ostream& out);

/// Executes one REPL line against the connected client.  Serving errors
/// (server Error frames, bad arguments) are printed to `out`, never thrown;
/// connection loss propagates as std::runtime_error so the caller can
/// reconnect or bail.  `state` (optional) enables the fleet routing
/// commands; without it `instance` reports unavailability.
ReplResult run_serve_command(Client& client, const std::string& line, std::ostream& out,
                             const ReplHooks& hooks = {}, ReplState* state = nullptr);

}  // namespace sfcp::serve
