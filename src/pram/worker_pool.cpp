#include "pram/worker_pool.hpp"

#include <algorithm>
#include <utility>

#include "pram/config.hpp"

namespace sfcp::pram {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Iterations each side spins before falling back to the condvar.  Small on
/// purpose: on an undersized machine (CI runners are often 1-2 cores) a
/// parked worker beats a spinning one.
constexpr int kSpinIters = 256;

/// Marks the scope where the coordinator runs a pool task inline (caller
/// lane inside wait(), ring-full/degenerate submit fallback, its share of a
/// fan).  Pins pram::threads() to 1 and makes submit/fan treat this thread
/// like a worker, so any parallel round the task runs nested — a shard
/// repair whose solver installs its own pool-carrying context and then
/// parallel_for's over a super-grain component — executes serially instead
/// of re-entering fan() -> wait() and re-draining caller_q_ mid-iteration.
/// TLS, not context sanitization, because tasks are free to install
/// arbitrary session contexts internally.
class InlineTaskGuard {
 public:
  InlineTaskGuard() noexcept { ++detail::tls_pool_inline; }
  ~InlineTaskGuard() { --detail::tls_pool_inline; }
  InlineTaskGuard(const InlineTaskGuard&) = delete;
  InlineTaskGuard& operator=(const InlineTaskGuard&) = delete;
};

}  // namespace

WorkerPool::WorkerPool(int threads) {
  const int t = threads > 0 ? threads : pram::threads();
  nworkers_ = std::max(0, t - 1);
  base_.threads = t;
  base_.pool = this;  // session_pool() on a worker resolves to its owner
}

WorkerPool::~WorkerPool() {
  // Finish whatever is in flight first: task envs live on caller stacks
  // and must not be touched after those frames unwind.  Errors no one
  // waited for are dropped (a destructor cannot throw).
  try {
    wait();
  } catch (...) {
  }
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
}

void WorkerPool::ensure_spawned_() {
  std::call_once(spawn_flag_, [this] {
    if (nworkers_ <= 0) return;
    lanes_.reserve(static_cast<std::size_t>(nworkers_));
    for (int w = 0; w < nworkers_; ++w) lanes_.push_back(std::make_unique<Lane>());
    threads_.reserve(static_cast<std::size_t>(nworkers_));
    for (int w = 0; w < nworkers_; ++w) threads_.emplace_back([this, w] { worker_main_(w); });
  });
}

void WorkerPool::worker_main_(int lane_idx) {
  detail::tls_pool_worker = true;
  detail::tls_pool_lane = lane_idx;
  // Install the pool's base context ONCE for the worker's lifetime; each
  // task then rebinds the submitting session's context, which is a pair of
  // pointer stores, not a re-registration (profiler thread buffers attach
  // lazily and persist).
  const ScopedContext base_guard(&base_);
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_idx)];
  for (;;) {
    Task t;
    if (try_pop_(lane, t)) {
      run_task_(t);
      continue;
    }
    bool got = false;
    for (int i = 0; i < kSpinIters && !got; ++i) {
      cpu_relax();
      got = try_pop_(lane, t);
    }
    if (got) {
      run_task_(t);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Park.  The seq_cst sleepers_ increment before the final emptiness
    // check pairs with submit()'s seq_cst tail store before its sleepers_
    // load: either the producer sees us (and notifies under the mutex), or
    // the predicate sees the task.  No lost wakeups.
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             lane.tail.load(std::memory_order_seq_cst) !=
                 lane.head.load(std::memory_order_relaxed);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void WorkerPool::run_task_(const Task& t) noexcept {
  try {
    const ScopedContext guard(t.ctx);  // null reverts to process defaults
    t.fn(t.env, t.arg);
  } catch (...) {
    record_error_(std::current_exception());
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(done_mu_);
    done_cv_.notify_all();
  }
}

bool WorkerPool::try_push_(Lane& lane, const Task& t) noexcept {
  const std::size_t tail = lane.tail.load(std::memory_order_relaxed);
  const std::size_t head = lane.head.load(std::memory_order_acquire);
  if (tail - head >= kRingCap) return false;
  lane.ring[tail & (kRingCap - 1)] = t;
  lane.tail.store(tail + 1, std::memory_order_seq_cst);
  return true;
}

bool WorkerPool::try_pop_(Lane& lane, Task& out) noexcept {
  const std::size_t head = lane.head.load(std::memory_order_relaxed);
  const std::size_t tail = lane.tail.load(std::memory_order_acquire);
  if (head == tail) return false;
  out = lane.ring[head & (kRingCap - 1)];
  lane.head.store(head + 1, std::memory_order_release);
  return true;
}

void WorkerPool::wake_sleepers_() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  sleep_cv_.notify_all();
}

void WorkerPool::record_error_(std::exception_ptr e) noexcept {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (!first_error_) first_error_ = std::move(e);
}

void WorkerPool::submit(std::size_t slot, RawFn fn, void* env, std::size_t arg) {
  ensure_spawned_();
  const Task t{fn, env, arg, current_context()};
  if (nworkers_ == 0 || on_worker() || in_pool_inline()) {
    // Degenerate width or nested use from inside a pool task (worker or
    // coordinator-inline): one PRAM processor — run inline, nested rounds
    // pinned serial.  Errors still surface at wait() for uniform semantics.
    try {
      const InlineTaskGuard inline_guard;
      t.fn(t.env, t.arg);
    } catch (...) {
      record_error_(std::current_exception());
    }
    return;
  }
  const int lane_of_slot = lane_of(slot);
  if (lane_of_slot == nworkers_) {
    caller_q_.push_back(t);  // the caller's own lane: runs inside wait()
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (!try_push_(*lanes_[static_cast<std::size_t>(lane_of_slot)], t)) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    // Ring full: run inline on the coordinator.  The inline pin keeps the
    // task's nested rounds from re-entering the pool mid-submission loop
    // (which would drain caller_q_ before the batch is fully enqueued).
    try {
      const InlineTaskGuard inline_guard;
      const ScopedContext guard(t.ctx);
      t.fn(t.env, t.arg);
    } catch (...) {
      record_error_(std::current_exception());
    }
    return;
  }
  wake_sleepers_();
}

void WorkerPool::wait() {
  // Run the caller lane while workers chew on theirs.  The drain advances a
  // MEMBER cursor, not a loop-local index: tasks run under the inline pin,
  // so they cannot legally re-enter wait(), but if one ever does anyway the
  // re-entrant drain continues from the cursor instead of replaying (and
  // re-entrantly double-running) tasks the outer drain already started.
  while (caller_pos_ < caller_q_.size()) {
    const Task t = caller_q_[caller_pos_++];
    try {
      const InlineTaskGuard inline_guard;
      const ScopedContext guard(t.ctx);
      t.fn(t.env, t.arg);
    } catch (...) {
      record_error_(std::current_exception());
    }
  }
  caller_q_.clear();
  caller_pos_ = 0;
  if (outstanding_.load(std::memory_order_acquire) != 0) {
    for (int i = 0; i < kSpinIters; ++i) {
      cpu_relax();
      if (outstanding_.load(std::memory_order_acquire) == 0) break;
    }
    if (outstanding_.load(std::memory_order_acquire) != 0) {
      std::unique_lock<std::mutex> lk(done_mu_);
      done_cv_.wait(lk, [&] { return outstanding_.load(std::memory_order_acquire) == 0; });
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::drain_fan_(void* env, std::size_t /*unused*/) {
  auto* job = static_cast<FanJob*>(env);
  for (;;) {
    const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    job->run(job->env, i);
  }
}

void WorkerPool::run_fan_(FanJob& job) {
  ensure_spawned_();
  if (nworkers_ == 0 || on_worker() || in_pool_inline()) {
    // One PRAM processor (degenerate width, a worker, or the coordinator
    // already inside an inline task): claim every item serially, nested
    // rounds pinned serial too.
    const InlineTaskGuard inline_guard;
    for (std::size_t i = 0; i < job.count; ++i) job.run(job.env, i);
    return;
  }
  const ExecutionContext* ctx = current_context();
  // One drain task per worker lane (capped by item count): each claims
  // items off the shared cursor until dry.  No per-item ring traffic.
  const int fanout =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(nworkers_), job.count));
  for (int w = 0; w < fanout; ++w) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    const Task t{&WorkerPool::drain_fan_, &job, 0, ctx};
    if (!try_push_(*lanes_[static_cast<std::size_t>(w)], t)) {
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // that lane is backlogged; the cursor covers its share
    }
  }
  wake_sleepers_();
  // The caller is a claimant too — one PRAM processor like the workers, so
  // its share runs under the inline pin.  It must not unwind past `job`
  // (stack-owned, workers still read it) on an exception, so capture and
  // let wait() rethrow after the barrier.
  try {
    const InlineTaskGuard inline_guard;
    drain_fan_(&job, 0);
  } catch (...) {
    record_error_(std::current_exception());
  }
  wait();
}

}  // namespace sfcp::pram
