// Microbenchmarks for the extension modules: Moore minimization, orbit
// analytics, necklace canonization and string matching — the APIs layered
// on top of the paper's core pipeline.
#include <benchmark/benchmark.h>

#include "core/moore.hpp"
#include "graph/orbits.hpp"
#include "strings/matching.hpp"
#include "strings/necklace.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

void BM_MooreMinimize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  core::MooreMachine m;
  m.next.resize(n);
  m.output.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    m.next[x] = rng.below(static_cast<u32>(n));
    m.output[x] = rng.below(2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize(m));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_MooreMinimize)->Range(1 << 12, 1 << 18);

void BM_OrbitStats(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n + 1);
  const auto inst = util::random_function(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::orbit_stats(inst.f));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_OrbitStats)->Range(1 << 12, 1 << 20);

void BM_IterationTableBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n + 2);
  const auto inst = util::random_function(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::IterationTable(inst.f, n));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_IterationTableBuild)->Range(1 << 12, 1 << 18);

void BM_CanonicalNecklace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n + 3);
  const auto s = util::random_string(n, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::canonical_necklace(s));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_CanonicalNecklace)->Range(1 << 12, 1 << 20);

template <strings::MatchStrategy S>
void BM_Match(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n + 4);
  const auto text = util::random_string(n, 2, rng);
  // Pattern sampled from the text: guaranteed hits, realistic overlaps.
  const std::size_t m = std::min<std::size_t>(32, n / 2);
  const std::vector<u32> pattern(text.begin() + static_cast<std::ptrdiff_t>(n / 3),
                                 text.begin() + static_cast<std::ptrdiff_t>(n / 3 + m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::find_occurrences(text, pattern, S));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_Match<strings::MatchStrategy::Kmp>)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_Match<strings::MatchStrategy::Z>)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_Match<strings::MatchStrategy::Parallel>)->Range(1 << 12, 1 << 18);

}  // namespace
