// Tests for the Graphviz DOT exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "core/coarsest_partition.hpp"
#include "util/dot_export.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using util::DotOptions;
using util::to_dot;

TEST(DotExport, ContainsAllNodesAndEdges) {
  graph::Instance inst{{1, 2, 0}, {5, 6, 7}};
  const auto dot = to_dot(inst);
  for (const char* frag : {"digraph sfcp", "n0", "n1", "n2", "n0 -> n1", "n1 -> n2", "n2 -> n0",
                           "B=5", "B=6", "B=7"}) {
    EXPECT_NE(dot.find(frag), std::string::npos) << "missing: " << frag;
  }
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, ClusersByQBlocks) {
  const auto inst = util::paper_example_2_2();
  const auto r = core::solve(inst);
  DotOptions opts;
  opts.cluster_by_q = true;
  const auto dot = to_dot(inst, r.q, opts);
  // Paper: 4 blocks -> 4 clusters.
  for (u32 c = 0; c < 4; ++c) {
    EXPECT_NE(dot.find("cluster_q" + std::to_string(c)), std::string::npos);
  }
  EXPECT_EQ(dot.find("cluster_q4"), std::string::npos);
}

TEST(DotExport, ClusterRequiresMatchingQ) {
  graph::Instance inst{{0, 0}, {1, 1}};
  DotOptions opts;
  opts.cluster_by_q = true;
  std::vector<u32> wrong{0};
  EXPECT_THROW(to_dot(inst, wrong, opts), std::invalid_argument);
}

TEST(DotExport, DeterministicAndParsesBalanced) {
  util::Rng rng(14001);
  const auto inst = util::random_function(50, 3, rng);
  const auto a = to_dot(inst);
  const auto b = to_dot(inst);
  EXPECT_EQ(a, b);
  // Structural sanity: balanced braces, one edge per node.
  EXPECT_EQ(std::count(a.begin(), a.end(), '{'), std::count(a.begin(), a.end(), '}'));
  EXPECT_EQ(static_cast<std::size_t>(std::count(a.begin(), a.end(), '>')), inst.size());
}

TEST(DotExport, EmptyInstance) {
  graph::Instance empty;
  const auto dot = to_dot(empty);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(DotExport, CustomGraphNameAndNoLabels) {
  graph::Instance inst{{0}, {9}};
  DotOptions opts;
  opts.graph_name = "fig1";
  opts.show_b_labels = false;
  const auto dot = to_dot(inst, {}, opts);
  EXPECT_NE(dot.find("digraph fig1"), std::string::npos);
  EXPECT_EQ(dot.find("B=9"), std::string::npos);
}

}  // namespace
}  // namespace sfcp
