#pragma once
// RepairDelta — the structured record of what one repair window changed,
// and the value that moves dirtiness through the serving stack.
//
// Every repair performed by inc::IncrementalSolver retracts and reassigns
// the raw labels of its dirty region; the delta accumulates that churn
// between two flush points (IncrementalSolver::take_delta or view()):
//
//   * nodes            — the nodes whose raw label may have changed, in
//                        repair order, deduplicated;
//   * classes_created  — raw labels that went from dead (population 0) at
//                        the window start to live at its end;
//   * classes_destroyed— raw labels that went live -> dead;
//   * classes_resized  — raw labels live at both ends whose membership was
//                        touched (their identity — signature or reduced
//                        cycle string — is provably unchanged, see
//                        incremental_solver.hpp, so consumers may skip
//                        them);
//   * full             — at least one edit in the window fell back to a
//                        whole-partition rebuild, which renames the entire
//                        label space: the per-node/per-class lists are
//                        meaningless and cleared, and the consumer must
//                        refresh from scratch.
//
// Consumers: core::PartitionView COW patch chains are built from
// delta.nodes (PartitionView::patched_from_delta); shard::ShardedEngine
// updates its cross-shard reconciliation maps from the created/destroyed
// lists, making merge maintenance O(dirty classes) instead of O(dirty
// shards); adaptive policies fit their crossovers from the per-delta cost
// observations (pram::CostModel).
//
// Kept dependency-free (std + pram/types only), like inc::Edit, so merge
// layers and tooling can speak deltas without pulling in the solver.

#include <cstddef>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::inc {

struct RepairDelta {
  u64 epoch = 0;        ///< solver epoch at the flush point
  u64 edits = 0;        ///< state-changing edits folded into the window
  u32 repairs = 0;      ///< edits served by the local repair path
  u32 rebuilds = 0;     ///< edits (or batches) served by a full re-solve
  u64 dirty_nodes = 0;  ///< total dirty-region size across the window
  bool full = false;    ///< whole-partition delta (lists below are cleared)

  // The lists are deduplicated and deterministically ordered (repair/touch
  // order for a given edit stream), but not sorted — consumers that need an
  // order impose their own.
  std::vector<u32> nodes;              ///< relabelled nodes, repair order
  std::vector<u32> classes_created;    ///< raw labels dead -> live over the window
  std::vector<u32> classes_destroyed;  ///< raw labels live -> dead over the window
  std::vector<u32> classes_resized;    ///< raw labels live -> live, membership touched

  /// No state-changing edit was folded in (lists are all empty too).
  bool empty() const noexcept { return edits == 0; }

  /// Classes a consumer has to look at (created + destroyed + resized).
  std::size_t touched_classes() const noexcept {
    return classes_created.size() + classes_destroyed.size() + classes_resized.size();
  }
};

/// What published views changed since a consumer last asked — the
/// notification-side projection of RepairDelta.  Incremental producers
/// accumulate the nodes each view()'s patch carried; a rebuild (or any
/// whole-partition refresh, including the construction view) downgrades the
/// window to `full`, after which the node list is meaningless and cleared.
/// Consumers map `nodes` to changed classes through the view that flushed
/// them (class_of per node, O(dirty)); on `full` they refresh everything.
/// Flushing (Engine::take_view_delta) resets the window.
struct ViewDelta {
  u64 epoch = 0;           ///< epoch of the most recent published view
  bool full = true;        ///< whole-partition refresh owed
  std::vector<u32> nodes;  ///< relabelled nodes since the last flush (unsorted,
                           ///< may repeat across windows; empty when full)
};

/// Lifetime totals over flushed deltas (monotonic; the delta-granular
/// sibling of EditStats, surfaced through sfcp::Engine::stats()).
struct DeltaStats {
  u64 windows = 0;            ///< deltas flushed (take_delta/view)
  u64 full = 0;               ///< flushed windows that were whole-partition
  u64 nodes = 0;              ///< relabelled nodes across flushed windows
  u64 classes_created = 0;    ///< created classes across flushed windows
  u64 classes_destroyed = 0;  ///< destroyed classes across flushed windows
  u64 classes_resized = 0;    ///< resized classes across flushed windows

  /// Aggregation across solvers (the sharded engine sums its shards).
  DeltaStats& operator+=(const DeltaStats& o) noexcept {
    windows += o.windows;
    full += o.full;
    nodes += o.nodes;
    classes_created += o.classes_created;
    classes_destroyed += o.classes_destroyed;
    classes_resized += o.classes_resized;
    return *this;
  }
};

}  // namespace sfcp::inc
