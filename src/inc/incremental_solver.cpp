#include "inc/incremental_solver.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "pram/metrics.hpp"
#include "prof/profile.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace sfcp::inc {

IncrementalSolver::IncrementalSolver(graph::Instance inst, core::Options opt,
                                     pram::ExecutionContext ctx, RepairPolicy policy)
    : inst_(std::move(inst)), solver_(opt, ctx), policy_(policy), alloc_(ctx.arena),
      q_(alloc_), sig_key_(alloc_), on_cycle_(alloc_), cycle_id_(alloc_), pop_(alloc_),
      cycle_pop_(alloc_) {
  // The construction solve doubles as the first rebuild-cost observation,
  // anchoring the full side of the adaptive fit before any edit arrives.
  const util::Timer timer;
  rebuild_();
  cost_fit_.observe_full(timer.nanos(), policy_.ewma_alpha);
}

IncrementalSolver::IncrementalSolver(graph::Instance inst, const core::Result& r,
                                     const core::SolveWorkspace& ws, core::Options opt,
                                     pram::ExecutionContext ctx, RepairPolicy policy)
    : inst_(std::move(inst)), solver_(opt, ctx), policy_(policy), alloc_(ctx.arena),
      q_(alloc_), sig_key_(alloc_), on_cycle_(alloc_), cycle_id_(alloc_), pop_(alloc_),
      cycle_pop_(alloc_) {
  graph::validate(inst_);
  if (r.q.size() != inst_.size()) {
    throw std::invalid_argument("IncrementalSolver: seed result size " +
                                std::to_string(r.q.size()) + " != instance size " +
                                std::to_string(inst_.size()));
  }
  // No solve, no timing: the caller already paid for it (typically inside
  // solve_batch), so there is no fresh rebuild-cost sample to anchor the
  // adaptive fit with — like load(), the fit converges from edits.
  seed_from_solve_(r, ws);
}

IncrementalSolver::IncrementalSolver(LoadTag, graph::Instance inst, core::Options opt,
                                     pram::ExecutionContext ctx, RepairPolicy policy)
    : inst_(std::move(inst)), solver_(opt, ctx), policy_(policy), alloc_(ctx.arena),
      q_(alloc_), sig_key_(alloc_), on_cycle_(alloc_), cycle_id_(alloc_), pop_(alloc_),
      cycle_pop_(alloc_) {}

core::PartitionView IncrementalSolver::view() const {
  if (!view_root_stale_ && last_view_epoch_ == epoch_) return last_view_;
  pram::ScopedContext guard(&solver_.context());
  const RepairDelta d = take_delta_(/*classify=*/false);
  const core::ViewCounters counters = view_counters();
  if (view_root_stale_ || d.full) {
    last_view_ = core::PartitionView::from_raw(std::vector<u32>(q_.begin(), q_.end()),
                                               next_label_, distinct_, epoch_, counters);
    view_delta_full_ = true;
    view_delta_nodes_.clear();
  } else {
    // Publish the flushed delta as a patch on the previous view: the
    // O(dirty) path.  The previous view itself is immutable — readers that
    // hold it keep the partition exactly as it was at its epoch.
    last_view_ = core::PartitionView::patched_from_delta(last_view_, d.nodes, q_, next_label_,
                                                         distinct_, epoch_, counters);
    if (!view_delta_full_) {
      view_delta_nodes_.insert(view_delta_nodes_.end(), d.nodes.begin(), d.nodes.end());
      if (view_delta_nodes_.size() >= inst_.size()) {
        view_delta_full_ = true;  // past n nodes a full refresh is cheaper
        view_delta_nodes_.clear();
      }
    }
  }
  view_root_stale_ = false;
  last_view_epoch_ = epoch_;
  return last_view_;
}

ViewDelta IncrementalSolver::take_view_delta() {
  ViewDelta d;
  d.epoch = last_view_epoch_;
  d.full = view_delta_full_;
  d.nodes = std::move(view_delta_nodes_);
  view_delta_nodes_.clear();
  view_delta_full_ = false;
  return d;
}

core::Result IncrementalSolver::snapshot() const { return view().to_result(); }

RepairDelta IncrementalSolver::take_delta() {
  RepairDelta d = take_delta_(/*classify=*/true);
  // The relabelled nodes leave with the caller, so the solver's own view
  // chain can no longer be patched forward: the next view() re-roots.
  if (!d.nodes.empty() || d.full) view_root_stale_ = true;
  return d;
}

RepairDelta IncrementalSolver::take_delta_(bool classify) const {
  prof::Scope prof_scope("inc/delta_flush");
  RepairDelta d = std::move(delta_);
  delta_ = RepairDelta{};
  d.epoch = epoch_;
  for (const u32 v : d.nodes) delta_mark_[v] = 0;
  // Classify the touched labels by their net population transition over
  // the window (see the header for why live-throughout labels carry no
  // reconciliation work).  The view path only needs the node list, so it
  // flushes with classify == false: the categories are counted for
  // delta_stats_ but the per-class vectors are never materialized.
  u64 created = 0, destroyed = 0, resized = 0;
  for (const u32 label : delta_touched_) {
    delta_touch_mark_[label] = 0;
    const bool live_before = delta_live_before_[label] != 0;
    const bool live_now = pop_[label] > 0;
    if (live_before && live_now) {
      ++resized;
      if (classify) d.classes_resized.push_back(label);
    } else if (live_now) {
      ++created;
      if (classify) d.classes_created.push_back(label);
    } else if (live_before) {
      ++destroyed;
      if (classify) d.classes_destroyed.push_back(label);
    }  // created-then-destroyed inside one window nets out to nothing
  }
  delta_touched_.clear();
  prof::charge_bytes(8 * d.nodes.size());
  if (!d.empty()) {
    ++delta_stats_.windows;
    if (d.full) ++delta_stats_.full;
    delta_stats_.nodes += d.nodes.size();
    delta_stats_.classes_created += created;
    delta_stats_.classes_destroyed += destroyed;
    delta_stats_.classes_resized += resized;
  }
  return d;
}

void IncrementalSolver::note_label_(u32 label, bool live_before) {
  if (delta_.full) return;  // a whole-partition window tracks no churn
  if (delta_touch_mark_[label]) return;
  delta_touch_mark_[label] = 1;
  delta_live_before_[label] = live_before ? 1 : 0;
  delta_touched_.push_back(label);
}

void IncrementalSolver::mark_full_delta_() {
  delta_.full = true;
  // Reset the marks here, not via the rebuild that usually follows, so the
  // nodes-in-delta <-> delta_mark_ invariant never depends on the caller.
  for (const u32 v : delta_.nodes) delta_mark_[v] = 0;
  delta_.nodes.clear();
  delta_.classes_created.clear();
  delta_.classes_destroyed.clear();
  delta_.classes_resized.clear();
  for (const u32 label : delta_touched_) delta_touch_mark_[label] = 0;
  delta_touched_.clear();
}

IncrementalSolver::CycleClassRef IncrementalSolver::cycle_class_of(u32 v) const {
  const u32 id = cycle_id_.at(v);
  if (id == kNone) {
    throw std::invalid_argument("IncrementalSolver::cycle_class_of: node " +
                                std::to_string(v) + " is not on a cycle");
  }
  const CycleRec& rec = cycles_.at(id);
  const CycleClass& cls = classes_.at(*rec.key);
  return CycleClassRef{std::span<const u32>(*rec.key), std::span<const u32>(cls.labels)};
}

void IncrementalSolver::validate_edit_(const Edit& e) const {
  validate_edit(e, inst_.size(), "IncrementalSolver");
}

void IncrementalSolver::set_f(u32 x, u32 y) {
  const Edit e = Edit::set_f(x, y);
  validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  apply_one_(e);
}

void IncrementalSolver::set_b(u32 x, u32 label) {
  const Edit e = Edit::set_b(x, label);
  validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  apply_one_(e);
}

void IncrementalSolver::apply(std::span<const Edit> edits) {
  for (const Edit& e : edits) validate_edit_(e);
  pram::ScopedContext guard(&solver_.context());
  const std::size_t n = inst_.size();
  if (n > 0 && edits.size() >= policy_.batch_rebuild_threshold(n)) {
    // The batch alone rivals the instance size: skip per-edit repair work
    // (including predecessor-list maintenance — rebuild_ reconstructs the
    // lists from scratch), apply the raw array updates and re-solve once.
    // Only state-changing edits advance the clock, matching the per-edit
    // path's no-op handling; an all-no-op batch skips the re-solve too.
    u64 changed = 0;
    for (const Edit& e : edits) {
      ++stats_.edits;
      if (apply_raw(e, inst_.f, inst_.b)) ++changed;
    }
    if (changed == 0) return;
    epoch_ += changed;
    ++stats_.rebuilds;
    mark_full_delta_();
    delta_.edits += changed;
    ++delta_.rebuilds;
    delta_.dirty_nodes += n;
    const util::Timer timer;
    rebuild_();
    const double ns = timer.nanos();
    cost_fit_.observe_full(ns, policy_.ewma_alpha);
    pram::charge_edit(false, n, static_cast<u64>(ns));
    return;
  }
  for (const Edit& e : edits) apply_one_(e);
}

void IncrementalSolver::raw_apply_(const Edit& e) {
  if (e.kind == Edit::Kind::SetF) {
    preds_.retarget(e.node, inst_.f[e.node], e.value);
    inst_.f[e.node] = e.value;
  } else {
    inst_.b[e.node] = e.value;
  }
}

void IncrementalSolver::apply_one_(const Edit& e) {
  ++stats_.edits;
  const bool noop = e.kind == Edit::Kind::SetF ? inst_.f[e.node] == e.value
                                               : inst_.b[e.node] == e.value;
  if (noop) return;
  const std::size_t n = inst_.size();
  bool within;
  {
    prof::Scope prof_scope("inc/dirty_region");
    within = graph::dirty_region(preds_, e.node, policy_.dirty_budget(n, cost_fit_), dirty_buf_);
    prof::charge_bytes(8 * dirty_buf_.size());  // BFS over preds_ + the region buffer
  }
  // Minting labels never reuses retired ones and pop_ grows with the label
  // space, so a long repair streak must occasionally compact via a rebuild
  // (which renames back to [0, blocks)).  Capping at ~4n keeps memory
  // proportional to the instance while amortizing the rebuild over >= 3n
  // minted labels.
  const u64 label_cap =
      std::min<u64>(kNone - 2, std::max<u64>(4 * static_cast<u64>(n), 4096));
  const bool labels_ok = static_cast<u64>(next_label_) + dirty_buf_.size() < label_cap;
  raw_apply_(e);
  ++epoch_;
  ++delta_.edits;
  if (within && labels_ok) {
    // Repairs run in the hundreds of nanoseconds, so even reading the clock
    // distorts them: sample every 8th repair for the cost fit instead of
    // timing all of them (rebuilds are rare and always timed).  The metrics
    // charge scales the sample back up so edit_repair_ns stays comparable
    // to the fully-timed edit_rebuild_ns.
    constexpr u64 kRepairSampleEvery = 8;
    const bool measure = (stats_.repairs % kRepairSampleEvery) == 0;
    double ns = 0.0;
    if (measure) {
      const util::Timer timer;
      repair_(e.node, dirty_buf_);
      const double sample = timer.nanos();
      cost_fit_.observe_unit(sample, dirty_buf_.size(), policy_.ewma_alpha);
      ns = sample * static_cast<double>(kRepairSampleEvery);
    } else {
      repair_(e.node, dirty_buf_);
    }
    // The relabelled region is the delta consumers (views, merge layers)
    // build on; a full window already owes them a whole-partition refresh.
    if (!delta_.full) {
      for (u32 v : dirty_buf_) {
        if (!delta_mark_[v]) {
          delta_mark_[v] = 1;
          delta_.nodes.push_back(v);
        }
      }
    }
    ++delta_.repairs;
    delta_.dirty_nodes += dirty_buf_.size();
    ++stats_.repairs;
    stats_.dirty_nodes += dirty_buf_.size();
    pram::charge_edit(true, dirty_buf_.size(), static_cast<u64>(ns));
  } else {
    ++stats_.rebuilds;
    mark_full_delta_();
    ++delta_.rebuilds;
    delta_.dirty_nodes += n;
    const util::Timer timer;
    rebuild_();
    const double ns = timer.nanos();
    cost_fit_.observe_full(ns, policy_.ewma_alpha);
    pram::charge_edit(false, n, static_cast<u64>(ns));
  }
}

u32 IncrementalSolver::fresh_label_() {
  pop_.push_back(0);
  cycle_pop_.push_back(0);
  delta_touch_mark_.push_back(0);
  delta_live_before_.push_back(0);
  return next_label_++;
}

// The kept/residual accounting rides on the label populations: a tree node
// is "kept" (shares a block with a cycle node, Lemma 4.1's marked-path
// criterion) exactly when its label has a live cycle holder, so kept_
// changes only when a tree node enters/leaves such a label or a label's
// cycle population transitions 0 <-> 1.
void IncrementalSolver::pop_inc_(u32 label, bool cycle) {
  note_label_(label, pop_[label] != 0);
  if (pop_[label]++ == 0) ++distinct_;
  if (cycle) {
    if (cycle_pop_[label]++ == 0) kept_ += pop_[label] - cycle_pop_[label];
  } else if (cycle_pop_[label] > 0) {
    ++kept_;
  }
}

void IncrementalSolver::pop_dec_(u32 label, bool cycle) {
  note_label_(label, true);  // decrementing implies the label was live
  if (--pop_[label] == 0) --distinct_;
  if (cycle) {
    if (--cycle_pop_[label] == 0) kept_ -= pop_[label];
  } else if (cycle_pop_[label] > 0) {
    --kept_;
  }
}

void IncrementalSolver::sig_remove_(u64 sig) {
  auto it = sigs_.find(sig);
  if (it == sigs_.end()) return;
  if (--it->second.refs == 0) sigs_.erase(it);
}

u32 IncrementalSolver::sig_assign_(u32 v) {
  const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
  auto [it, inserted] = sigs_.try_emplace(sig);
  if (inserted) it->second.label = fresh_label_();
  ++it->second.refs;
  sig_key_[v] = sig;
  return it->second.label;
}

void IncrementalSolver::destroy_cycle_(u32 id) {
  auto it = cycles_.find(id);
  auto cit = classes_.find(*it->second.key);
  if (--cit->second.refs == 0) classes_.erase(cit);
  live_cycle_nodes_ -= it->second.length;
  cycles_.erase(it);
  ++stats_.cycles_destroyed;
}

void IncrementalSolver::repair_(u32 x, std::span<const u32> dirty) {
  prof::Scope prof_scope("inc/repair");
  // Retract + cycle walk + class-map touch: ~3 passes over the region.
  prof::charge_bytes(24 * dirty.size());
  prof::charge_flops(3 * dirty.size());
  // Phase 1 — retract: every dirty node gives back its label population and
  // signature; the only cycle that can intersect the dirty set is x's own
  // (any cycle node reaching x must share x's cycle), so at most one class
  // reference is released.
  if (cycle_id_[x] != kNone) destroy_cycle_(cycle_id_[x]);
  for (u32 v : dirty) {
    pop_dec_(q_[v], on_cycle_[v] != 0);
    sig_remove_(sig_key_[v]);
    on_cycle_[v] = 0;
    cycle_id_[v] = kNone;
  }

  // Phase 2 — does the edited graph close a cycle through x?  Such a cycle
  // lies wholly inside the dirty set (each of its nodes reaches x), so a
  // forward walk of at most |dirty| steps either returns to x or rules the
  // cycle out.
  cyc_buf_.clear();
  cyc_buf_.push_back(x);
  u32 z = inst_.f[x];
  while (z != x && cyc_buf_.size() < dirty.size()) {
    cyc_buf_.push_back(z);
    z = inst_.f[z];
  }

  // Phase 3 — canonicalize and label the new cycle: reduce its B-string to
  // the smallest period, rotate to the minimal starting point, and match the
  // reduced string against the global class map, merging with any equivalent
  // cycle elsewhere in the graph (or minting a fresh label block).
  if (z == x) {
    const std::size_t len = cyc_buf_.size();
    str_buf_.resize(len);
    for (std::size_t i = 0; i < len; ++i) str_buf_[i] = inst_.b[cyc_buf_[i]];
    const u32 p = strings::smallest_period_seq(str_buf_);
    const u32 j0 = strings::minimal_starting_point(std::span<const u32>(str_buf_).first(p),
                                                   strings::MspStrategy::Booth);
    std::vector<u32> key(p);
    for (u32 t = 0; t < p; ++t) key[t] = str_buf_[(j0 + t) % p];
    auto [it, inserted] = classes_.try_emplace(std::move(key));
    CycleClass& cls = it->second;
    if (inserted) {
      cls.labels.resize(p);
      for (u32 t = 0; t < p; ++t) cls.labels[t] = fresh_label_();
    }
    ++cls.refs;
    const u32 id = next_cycle_id_++;
    cycles_.emplace(id, CycleRec{&it->first, static_cast<u32>(len)});
    for (std::size_t i = 0; i < len; ++i) {
      const u32 v = cyc_buf_[i];
      q_[v] = cls.labels[(static_cast<u32>(i % p) + p - j0) % p];
      pop_inc_(q_[v], true);
      on_cycle_[v] = 1;
      cycle_id_[v] = id;
    }
    live_cycle_nodes_ += len;
    ++stats_.cycles_created;
    // Signatures only once every cycle label is final (f of a cycle node is
    // the next cycle node).
    for (std::size_t i = 0; i < len; ++i) {
      const u32 v = cyc_buf_[i];
      const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
      auto [sit, fresh] = sigs_.try_emplace(sig);
      if (fresh) sit->second.label = q_[v];
      ++sit->second.refs;
      sig_key_[v] = sig;
    }
  }

  // Phase 4 — dirty tree nodes, in BFS layer order from x: f(v) is either
  // clean, on the new cycle, or an earlier layer, so its label is final and
  // the signature map realizes Q(v) = Q(u) <=> B(v)=B(u) ^ Q(f(v))=Q(f(u)).
  {
    prof::Scope prof_sigmap("sigmap_update");  // -> inc/repair/sigmap_update
    prof::charge_bytes(16 * dirty.size());     // sig probe + label/pop writes
    for (u32 v : dirty) {
      if (on_cycle_[v]) continue;
      q_[v] = sig_assign_(v);
      pop_inc_(q_[v], false);
    }
  }
  pram::charge(3 * dirty.size());
}

void IncrementalSolver::rebuild_() {
  prof::Scope prof_scope("inc/rebuild");  // nests the solver's solve/* phases
  const core::Result r = solver_.solve(inst_);
  // The solver's warm workspace still holds this solve's cycle structure —
  // exactly the scaffolding the class and signature maps are seeded from.
  seed_from_solve_(r, solver_.workspace());
}

void IncrementalSolver::seed_from_solve_(const core::Result& r,
                                         const core::SolveWorkspace& ws) {
  const std::size_t n = inst_.size();
  q_.assign(r.q.begin(), r.q.end());
  next_label_ = r.num_blocks;
  distinct_ = r.num_blocks;
  pop_.assign(next_label_, 0);
  for (u32 l : q_) ++pop_[l];
  cycle_pop_.assign(next_label_, 0);
  kept_ = 0;
  preds_.rebuild(inst_.f);
  sig_key_.assign(n, 0);
  cycle_id_.assign(n, kNone);
  sigs_.clear();
  classes_.clear();
  cycles_.clear();
  next_cycle_id_ = 0;
  live_cycle_nodes_ = 0;
  // A rebuild renames the whole label space, so neither the previous view
  // chain nor the accumulated class churn can seed anything incremental:
  // the current delta window is whole-partition and the next view starts a
  // fresh root.
  view_root_stale_ = true;
  delta_.full = true;
  delta_.nodes.clear();
  delta_touched_.clear();
  delta_touch_mark_.assign(next_label_, 0);
  delta_live_before_.assign(next_label_, 0);
  delta_mark_.assign(n, 0);
  if (n == 0) {
    on_cycle_.clear();
    return;
  }
  on_cycle_.assign(ws.cs.on_cycle.begin(), ws.cs.on_cycle.end());
  live_cycle_nodes_ = ws.cs.cycle_nodes.size();
  const std::size_t k = ws.cs.num_cycles();
  for (std::size_t c = 0; c < k; ++c) {
    const u32 len = ws.cs.cycle_length(c);
    const u32 p = ws.cl.period[c];
    const u32 j0 = ws.cl.msp[c];
    std::vector<u32> key(p);
    std::vector<u32> labels(p);
    for (u32 t = 0; t < p; ++t) {
      key[t] = inst_.b[ws.cs.node_at(c, (j0 + t) % p)];
      labels[t] = q_[ws.cs.node_at(c, (j0 + t) % len)];
    }
    auto [it, inserted] = classes_.try_emplace(std::move(key));
    if (inserted) it->second.labels = std::move(labels);
    ++it->second.refs;
    const u32 id = next_cycle_id_++;
    cycles_.emplace(id, CycleRec{&it->first, len});
    for (u32 rk = 0; rk < len; ++rk) cycle_id_[ws.cs.node_at(c, rk)] = id;
  }
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
    auto [it, inserted] = sigs_.try_emplace(sig);
    if (inserted) it->second.label = q_[v];
    ++it->second.refs;
    sig_key_[v] = sig;
  }
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    if (on_cycle_[v]) ++cycle_pop_[q_[v]];
  }
  for (u32 l = 0; l < next_label_; ++l) {
    if (cycle_pop_[l] > 0) kept_ += pop_[l] - cycle_pop_[l];
  }
  pram::charge(4 * n);
}

std::size_t IncrementalSolver::footprint_bytes() const noexcept {
  const auto vec = [](const auto& v) { return v.capacity() * sizeof(*v.data()); };
  std::size_t bytes = vec(inst_.f) + vec(inst_.b) + vec(q_) + vec(sig_key_) +
                      vec(on_cycle_) + vec(cycle_id_) + vec(pop_) + vec(cycle_pop_) +
                      vec(dirty_buf_) + vec(cyc_buf_) + vec(str_buf_) + vec(delta_mark_) +
                      vec(delta_touched_) + vec(delta_touch_mark_) +
                      vec(delta_live_before_) + vec(delta_.nodes) + vec(view_delta_nodes_);
  // Hash maps: per-entry payload plus a coarse node/bucket overhead; the
  // class map additionally owns its key and label vectors.
  bytes += sigs_.size() * (sizeof(u64) + sizeof(SigRec) + 16);
  bytes += cycles_.size() * (sizeof(u32) + sizeof(CycleRec) + 16);
  for (const auto& [key, cls] : classes_) {
    bytes += vec(key) + vec(cls.labels) + 48;
  }
  // Reverse adjacency: CSR offsets + one target slot per node.
  bytes += inst_.size() * 12;
  return bytes;
}

// ---- persistence: sfcp-checkpoint v1 (format doc in util/io.hpp) ---------

void IncrementalSolver::save(std::ostream& os) const {
  util::BinaryWriter w(os);
  w.put_bytes(util::checkpoint_magic().data(), 8);
  util::save_instance_binary(os, inst_);
  w.put_u64(epoch_);
  w.put_u32(next_label_);
  w.put_u32_array(q_);
  w.put_u32_array(cycle_id_);

  // Map sections are sorted so that equal engines write identical bytes.
  std::vector<const std::pair<const std::vector<u32>, CycleClass>*> classes;
  classes.reserve(classes_.size());
  for (const auto& kv : classes_) classes.push_back(&kv);
  std::sort(classes.begin(), classes.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::unordered_map<const std::vector<u32>*, u32> class_index;
  w.put_u32(static_cast<u32>(classes.size()));
  for (std::size_t i = 0; i < classes.size(); ++i) {
    class_index.emplace(&classes[i]->first, static_cast<u32>(i));
    w.put_u32(static_cast<u32>(classes[i]->first.size()));
    w.put_u32_array(classes[i]->first);
    w.put_u32_array(classes[i]->second.labels);
  }

  std::vector<std::pair<u32, const CycleRec*>> cycles;
  cycles.reserve(cycles_.size());
  for (const auto& [id, rec] : cycles_) cycles.emplace_back(id, &rec);
  std::sort(cycles.begin(), cycles.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.put_u32(static_cast<u32>(cycles.size()));
  for (const auto& [id, rec] : cycles) {
    w.put_u32(id);
    w.put_u32(class_index.at(rec->key));
    w.put_u32(rec->length);
  }
  w.put_u32(next_cycle_id_);

  std::vector<std::pair<u64, SigRec>> sigs(sigs_.begin(), sigs_.end());
  std::sort(sigs.begin(), sigs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.put_u32(static_cast<u32>(sigs.size()));
  for (const auto& [key, rec] : sigs) {
    w.put_u64(key);
    w.put_u32(rec.label);
    w.put_u32(rec.refs);
  }

  w.put_u64(stats_.edits);
  w.put_u64(stats_.repairs);
  w.put_u64(stats_.rebuilds);
  w.put_u64(stats_.dirty_nodes);
  w.put_u64(stats_.cycles_created);
  w.put_u64(stats_.cycles_destroyed);
  if (!os) throw std::runtime_error("IncrementalSolver::save: write failed");
}

IncrementalSolver IncrementalSolver::load(std::istream& is, core::Options opt,
                                          pram::ExecutionContext ctx, RepairPolicy policy) {
  util::BinaryReader r(is, "load_checkpoint");
  unsigned char magic[8];
  r.get_bytes(magic, 8, "magic");
  if (std::memcmp(magic, util::checkpoint_magic().data(), 8) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic (expected sfcp-checkpoint v1)");
  }
  return load_body(is, opt, ctx, policy);
}

IncrementalSolver IncrementalSolver::load_body(std::istream& is, core::Options opt,
                                               pram::ExecutionContext ctx, RepairPolicy policy) {
  util::BinaryReader r(is, "load_checkpoint");
  graph::Instance inst = util::load_instance(is);  // the embedded v2 section

  IncrementalSolver s(LoadTag{}, std::move(inst), opt, ctx, policy);
  const std::size_t n = s.inst_.size();
  const auto n32 = static_cast<u32>(n);
  s.epoch_ = r.get_u64("epoch");
  s.next_label_ = r.get_u32("label bound");
  // apply_one_ caps the live label space at max(4n, 4096); a bound beyond
  // that is corrupt and would otherwise size the per-label arrays in
  // finish_load_ to gigabytes before any consistency check fires.
  if (s.next_label_ > std::max<u64>(4 * static_cast<u64>(n), 4096)) {
    throw std::runtime_error("load_checkpoint: unreasonable label bound");
  }
  r.get_u32_vector(n, s.q_, "labels");
  for (u32 l : s.q_) {
    if (l >= s.next_label_) throw std::runtime_error("load_checkpoint: label out of range");
  }
  r.get_u32_vector(n, s.cycle_id_, "cycle ids");

  const u32 num_classes = r.get_u32("class count");
  if (num_classes > n32) throw std::runtime_error("load_checkpoint: unreasonable class count");
  std::vector<const std::vector<u32>*> class_keys;
  class_keys.reserve(num_classes);
  std::vector<u32> key, labels;
  for (u32 c = 0; c < num_classes; ++c) {
    const u32 p = r.get_u32("class period");
    if (p == 0 || p > n32) throw std::runtime_error("load_checkpoint: bad class period");
    r.get_u32_vector(p, key, "class key");
    r.get_u32_vector(p, labels, "class labels");
    for (u32 l : labels) {
      if (l >= s.next_label_) {
        throw std::runtime_error("load_checkpoint: class label out of range");
      }
    }
    auto [it, inserted] = s.classes_.try_emplace(key);
    if (!inserted) throw std::runtime_error("load_checkpoint: duplicate cycle class");
    it->second.labels = labels;
    class_keys.push_back(&it->first);
  }

  const u32 num_cycles = r.get_u32("cycle count");
  if (num_cycles > n32) throw std::runtime_error("load_checkpoint: unreasonable cycle count");
  for (u32 i = 0; i < num_cycles; ++i) {
    const u32 id = r.get_u32("cycle id");
    const u32 ci = r.get_u32("cycle class index");
    const u32 len = r.get_u32("cycle length");
    if (ci >= num_classes) throw std::runtime_error("load_checkpoint: cycle class index");
    const u32 p = static_cast<u32>(class_keys[ci]->size());
    if (len == 0 || len > n32 || len % p != 0) {
      throw std::runtime_error("load_checkpoint: bad cycle length");
    }
    auto [it, inserted] = s.cycles_.try_emplace(id, CycleRec{class_keys[ci], len});
    if (!inserted) throw std::runtime_error("load_checkpoint: duplicate cycle id");
    ++s.classes_.find(*class_keys[ci])->second.refs;
    s.live_cycle_nodes_ += len;
  }
  s.next_cycle_id_ = r.get_u32("next cycle id");

  const u32 num_sigs = r.get_u32("signature count");
  if (num_sigs > n32) throw std::runtime_error("load_checkpoint: unreasonable signature count");
  for (u32 i = 0; i < num_sigs; ++i) {
    const u64 sig = r.get_u64("signature key");
    SigRec rec;
    rec.label = r.get_u32("signature label");
    rec.refs = r.get_u32("signature refs");
    if (rec.label >= s.next_label_ || rec.refs == 0) {
      throw std::runtime_error("load_checkpoint: bad signature entry");
    }
    if (!s.sigs_.emplace(sig, rec).second) {
      throw std::runtime_error("load_checkpoint: duplicate signature");
    }
  }

  s.stats_.edits = r.get_u64("stats");
  s.stats_.repairs = r.get_u64("stats");
  s.stats_.rebuilds = r.get_u64("stats");
  s.stats_.dirty_nodes = r.get_u64("stats");
  s.stats_.cycles_created = r.get_u64("stats");
  s.stats_.cycles_destroyed = r.get_u64("stats");

  s.finish_load_();
  return s;
}

void IncrementalSolver::finish_load_() {
  const std::size_t n = inst_.size();
  // Per-cycle membership: every cycle id in cycle_id_ must name a live cycle
  // and each cycle's node count must match its recorded length.
  std::unordered_map<u32, u32> member_count;
  on_cycle_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (cycle_id_[v] == kNone) continue;
    if (!cycles_.count(cycle_id_[v])) {
      throw std::runtime_error("load_checkpoint: node references unknown cycle");
    }
    on_cycle_[v] = 1;
    ++member_count[cycle_id_[v]];
  }
  u64 counted = 0;
  for (const auto& [id, rec] : cycles_) {
    const auto it = member_count.find(id);
    if (it == member_count.end() || it->second != rec.length) {
      throw std::runtime_error("load_checkpoint: cycle length mismatch");
    }
    if (id >= next_cycle_id_) throw std::runtime_error("load_checkpoint: cycle id bound");
    counted += rec.length;
  }
  if (counted != live_cycle_nodes_) {
    throw std::runtime_error("load_checkpoint: cycle node count mismatch");
  }

  // Label populations and the kept/residual accounting.
  pop_.assign(next_label_, 0);
  cycle_pop_.assign(next_label_, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ++pop_[q_[v]];
    if (on_cycle_[v]) ++cycle_pop_[q_[v]];
  }
  distinct_ = 0;
  kept_ = 0;
  for (u32 l = 0; l < next_label_; ++l) {
    if (pop_[l] > 0) ++distinct_;
    if (cycle_pop_[l] > 0) kept_ += pop_[l] - cycle_pop_[l];
  }

  // Signatures: every node's (B, Q∘f) key must resolve to its own label, and
  // the stored refcounts must match the node population exactly.
  sig_key_.assign(n, 0);
  std::unordered_map<u64, u32> sig_count;
  for (u32 v = 0; v < static_cast<u32>(n); ++v) {
    const u64 sig = pack_pair(inst_.b[v], q_[inst_.f[v]]);
    const auto it = sigs_.find(sig);
    if (it == sigs_.end() || it->second.label != q_[v]) {
      throw std::runtime_error("load_checkpoint: inconsistent signature map");
    }
    sig_key_[v] = sig;
    ++sig_count[sig];
  }
  for (const auto& [sig, rec] : sigs_) {
    const auto it = sig_count.find(sig);
    if (it == sig_count.end() || it->second != rec.refs) {
      throw std::runtime_error("load_checkpoint: signature refcount mismatch");
    }
  }

  preds_.rebuild(inst_.f);
  view_root_stale_ = true;
  delta_ = RepairDelta{};
  delta_.full = true;  // a restored engine owes consumers a full refresh
  delta_touched_.clear();
  delta_touch_mark_.assign(next_label_, 0);
  delta_live_before_.assign(next_label_, 0);
  delta_mark_.assign(n, 0);
  pram::charge(4 * n);
}

void save_checkpoint_file(const std::string& path, const IncrementalSolver& solver) {
  util::atomic_write_file(path, [&](std::ostream& os) { solver.save(os); });
}

IncrementalSolver load_checkpoint_file(const std::string& path, core::Options opt,
                                       pram::ExecutionContext ctx, RepairPolicy policy) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint_file: cannot open " + path);
  return IncrementalSolver::load(is, opt, ctx, policy);
}

}  // namespace sfcp::inc
