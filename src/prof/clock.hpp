#pragma once
// prof::now_ns — THE monotonic clock of the repo.
//
// Every wall-time observation (profiler scopes, util::Timer, the
// nanosecond samples fed to pram::CostModel) reads this one steady_clock
// epoch, so a CostModel observation and a profile-tree node are directly
// comparable: same origin, same unit, no cross-clock skew.

#include <chrono>
#include <cstdint>

namespace sfcp::prof {

/// Nanoseconds on the process-wide monotonic clock.  Always compiled —
/// independent of SFCP_PROFILE — because cost sampling uses it too.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace sfcp::prof
