// Quickstart: solve the paper's worked instance (Example 2.2 / Fig. 1)
// end-to-end and print every intermediate the paper discusses.
//
//   $ ./quickstart
//
// The instance: 16 elements, f given by A_f, initial partition B given by
// A_B; the expected output is the paper's A_Q.
#include <iostream>

#include "sfcp.hpp"

int main() {
  using namespace sfcp;

  // ---- 1. Build the instance (paper Example 2.2, converted to 0-based).
  const graph::Instance inst = util::paper_example_2_2();
  std::cout << "Input (paper Example 2.2, 0-based)\n  A_f = ";
  for (const u32 v : inst.f) std::cout << v << ' ';
  std::cout << "\n  A_B = ";
  for (const u32 v : inst.b) std::cout << v << ' ';
  std::cout << "\n\n";

  // ---- 2. Step 1 of the paper: find the cycle nodes (Euler-tour method).
  const auto on_cycle = graph::find_cycle_nodes(inst.f, graph::CycleDetectStrategy::EulerTour);
  const auto cs = graph::cycle_structure_with_flags(inst.f, on_cycle,
                                                    graph::CycleStructureStrategy::PointerJumping);
  std::cout << "Cycle structure: " << cs.num_cycles() << " cycles of lengths";
  for (std::size_t c = 0; c < cs.num_cycles(); ++c) std::cout << ' ' << cs.cycle_length(c);
  std::cout << "  (Fig. 1: 12 and 4)\n";

  // ---- 3. Step 2: label the cycle nodes (Section 3).
  const auto cl = core::label_cycles(inst, cs);
  std::cout << "Cycle labelling: " << cl.num_classes << " equivalence class(es), "
            << cl.num_labels << " Q-labels on cycles\n";
  for (std::size_t c = 0; c < cs.num_cycles(); ++c) {
    std::cout << "  cycle " << c << ": period " << cl.period[c] << ", m.s.p. offset "
              << cl.msp[c] << ", class " << cl.class_id[c] << "\n";
  }

  // ---- 4. Full pipeline (Theorem 5.1) via the session API, with an
  // isolated work-accounting sink.
  pram::Metrics metrics;
  core::Solver solver(sfcp::registry().at("parallel"),
                      pram::ExecutionContext{}.with_metrics(&metrics));
  const core::Result result = solver.solve(inst);
  std::cout << "\nOutput\n  A_Q = ";
  for (const u32 q : result.q) std::cout << q << ' ';
  std::cout << "\n  blocks = " << result.num_blocks << " (paper: 4)\n"
            << "  work   = " << metrics.summary() << "\n";

  // ---- 5. Verify against the paper's stated A_Q and the oracle.
  const auto expected = util::paper_example_2_2_expected_q();
  const auto report = core::verify_solution(inst, result.q);
  std::cout << "\nVerification: " << report.to_string() << "\n"
            << "Matches paper's A_Q: " << (result.q == expected ? "yes" : "NO") << "\n";
  return result.q == expected && report.ok() ? 0 : 1;
}
