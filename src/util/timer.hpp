#pragma once
// Wall-clock timing helpers: Timer for the benchmark table printers, and
// the nanosecond observations the adaptive cost fits (pram::CostModel)
// are fed from.
//
// Timer reads prof::now_ns() — the SAME monotonic clock the phase
// profiler's scopes use — so a CostModel observation and a profile-tree
// node measure on one shared timebase and are directly comparable.

#include "prof/clock.hpp"

namespace sfcp::util {

class Timer {
 public:
  Timer() : start_(prof::now_ns()) {}

  void reset() { start_ = prof::now_ns(); }

  double nanos() const { return static_cast<double>(prof::now_ns() - start_); }

  double seconds() const { return nanos() * 1e-9; }

  double millis() const { return nanos() * 1e-6; }

 private:
  std::uint64_t start_;
};

}  // namespace sfcp::util
