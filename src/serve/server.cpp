#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "pram/config.hpp"
#include "pram/worker_pool.hpp"
#include "prof/profile.hpp"

namespace sfcp::serve {
namespace {

[[noreturn]] void fail_sys(const char* what) {
  throw std::runtime_error("serve::Server: " + std::string(what) + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) fail_sys("fcntl");
}

}  // namespace

// ---- Poller --------------------------------------------------------------
// Readiness notification behind one interface: epoll where available (the
// server's fd set outlives iterations, so registration amortizes), poll as
// the portable fallback (interest list rebuilt per wait — fine at fallback
// scale).

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

#ifdef __linux__

class Poller {
 public:
  Poller() {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) fail_sys("epoll_create1");
  }
  ~Poller() { ::close(epfd_); }

  void add(int fd) { ctl_(EPOLL_CTL_ADD, fd, EPOLLIN); }
  void set_write(int fd, bool on) { ctl_(EPOLL_CTL_MOD, fd, EPOLLIN | (on ? EPOLLOUT : 0u)); }
  void remove(int fd) {
    struct epoll_event ev {};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);  // fd may already be gone
  }

  void wait(int timeout_ms, std::vector<PollerEvent>& out) {
    struct epoll_event evs[64];
    int n;
    do {
      n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) fail_sys("epoll_wait");
    out.clear();
    for (int i = 0; i < n; ++i) {
      PollerEvent e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl_(int op, int fd, unsigned events) {
    struct epoll_event ev {};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) < 0) fail_sys("epoll_ctl");
  }
  int epfd_ = -1;
};

#else  // poll() fallback

class Poller {
 public:
  void add(int fd) { fds_.push_back({fd, false}); }
  void set_write(int fd, bool on) {
    for (auto& [f, w] : fds_) {
      if (f == fd) w = on;
    }
  }
  void remove(int fd) {
    std::erase_if(fds_, [fd](const auto& p) { return p.first == fd; });
  }

  void wait(int timeout_ms, std::vector<PollerEvent>& out) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, w] : fds_) {
      pfds.push_back({fd, static_cast<short>(POLLIN | (w ? POLLOUT : 0)), 0});
    }
    int n;
    do {
      n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) fail_sys("poll");
    out.clear();
    for (const struct pollfd& p : pfds) {
      if (p.revents == 0) continue;
      PollerEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::vector<std::pair<int, bool>> fds_;
};

#endif

// ---- connections ---------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  FrameSplitter in;
  std::string out;           ///< bytes awaiting the socket
  std::size_t out_off = 0;
  bool want_write = false;   ///< poller armed for writability
  bool subscribed = false;
  bool closing = false;      ///< marked dead; reaped at end of iteration
};

// ---- recovery ------------------------------------------------------------

std::unique_ptr<Engine> recover_engine(const std::string& checkpoint_path,
                                       std::string_view engine_name, graph::Instance inst,
                                       const core::Options& opt,
                                       const pram::ExecutionContext& ctx) {
  if (!checkpoint_path.empty() && std::filesystem::exists(checkpoint_path)) {
    std::ifstream is(checkpoint_path, std::ios::binary);
    if (!is) {
      throw std::runtime_error("serve::recover_engine: cannot open checkpoint '" +
                               checkpoint_path + "'");
    }
    return load_engine_checkpoint(is, opt, ctx).engine;
  }
  return engines().make(engine_name, std::move(inst), opt, ctx);
}

// ---- Server --------------------------------------------------------------

Server::Server(std::unique_ptr<Engine> engine, ServerOptions opt)
    : engine_(std::move(engine)), opt_(std::move(opt)) {
  if (engine_ == nullptr) throw std::invalid_argument("serve::Server: null engine");
  init_pool_();  // before replay, so recovery applies fan out too

  if (!opt_.journal_path.empty()) {
    if (opt_.checkpoint_path.empty()) opt_.checkpoint_path = opt_.journal_path + ".ckpt";
    journal_ = Journal(opt_.journal_path, opt_.fsync);
    durable_ = true;
    stats_.journal_tail_torn = journal_.tail_was_torn();
    stats_.recovered_records = journal_.replay(*engine_, &stats_.recovered_skipped);
    journal_.sync_epoch();
  }

  // Serve from a fresh snapshot; drain the delta the initial view produced
  // so the first real flush notifies only its own changes.
  served_view_ = engine_->view();
  (void)engine_->take_view_delta();

  init_net_();
}

Server::Server(std::unique_ptr<fleet::FleetEngine> fleet, ServerOptions opt)
    : fleet_(std::move(fleet)), opt_(std::move(opt)) {
  if (fleet_ == nullptr) throw std::invalid_argument("serve::Server: null fleet");
  init_pool_();  // before replay, so recovery applies fan out too

  if (!opt_.journal_path.empty()) {
    journal_ = Journal(opt_.journal_path, opt_.fsync, JournalFormat::Fleet);
    durable_ = true;
    stats_.journal_tail_torn = journal_.tail_was_torn();
    // Replay against per-instance epoch floors: the fleet answers epoch(id)
    // from warm engines or the epoch recorded at eviction (adopted spill
    // files fault in to find out).  Records whose instance cannot be
    // materialized any more (in-memory cold images lost with the process and
    // no factory installed) are counted as skipped, not fatal.
    for (const util::FleetJournalRecord& rec : journal_.take_recovered_fleet()) {
      try {
        if (rec.epoch < fleet_->epoch(rec.instance)) {
          ++stats_.recovered_skipped;
          continue;
        }
        fleet_->apply(rec.instance, rec.edits);
        ++stats_.recovered_records;
      } catch (const std::exception&) {
        ++stats_.recovered_skipped;
      }
    }
    journal_.sync_epoch();
  }

  init_net_();
}

void Server::init_pool_() {
  int width = opt_.pool_threads;
  if (width < 0) width = pram::threads();
  if (width <= 1) return;  // nothing to pool: the event loop is the 1 lane
  pool_ = std::make_unique<pram::WorkerPool>(width);
  if (engine_) engine_->install_pool(pool_.get());
  if (fleet_) fleet_->install_pool(pool_.get());
}

void Server::init_net_() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_sys("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve::Server: bad host '" + opt_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, opt_.backlog) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    fail_sys("bind/listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    fail_sys("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) < 0) fail_sys("pipe");
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  poller_ = std::make_unique<Poller>();
  poller_->add(listen_fd_);
  poller_->add(wake_read_fd_);
}

Server::~Server() {
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

ServeStats Server::stats() const noexcept {
  ServeStats s = stats_;
  if (durable_) {
    s.journal_records = journal_.appended_records();
    s.journal_bytes = journal_.bytes();
    s.journal_fsyncs = journal_.fsyncs();
    s.journal_failed = journal_failed_;
  }
  s.connections_open = conns_.size();
  return s;
}

void Server::run() {
  while (run_once(-1)) {
  }
}

bool Server::run_once(int timeout_ms) {
  if (stopping_.load(std::memory_order_relaxed)) return false;

  static thread_local std::vector<PollerEvent> events;
  poller_->wait(timeout_ms, events);

  for (const PollerEvent& ev : events) {
    if (ev.fd == listen_fd_) {
      if (ev.readable) accept_ready_();
      continue;
    }
    if (ev.fd == wake_read_fd_) {
      char buf[64];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
      continue;
    }
    Connection* c = find_(ev.fd);
    if (c == nullptr || c->closing) continue;
    if (ev.error) {
      c->closing = true;
      dead_fds_.push_back(c->fd);
      continue;
    }
    if (ev.readable) read_ready_(*c);
    if (ev.writable && !c->closing) write_ready_(*c);
  }

  // One epoch per iteration: everything accepted above lands together.
  flush();

  for (int fd : dead_fds_) close_connection_(fd);
  dead_fds_.clear();

  return !stopping_.load(std::memory_order_relaxed);
}

void Server::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const char b = 1;
  [[maybe_unused]] ssize_t r = ::write(wake_write_fd_, &b, 1);
}

// ---- socket plumbing -----------------------------------------------------

Server::Connection* Server::find_(int fd) noexcept {
  for (auto& c : conns_) {
    if (c->fd == fd) return c.get();
  }
  return nullptr;
}

void Server::accept_ready_() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion is persistent, and with level-triggered
        // polling the still-readable listen fd would spin the loop at full
        // CPU.  Deregister it; close_connection_ re-arms once a descriptor
        // frees up.
        accept_paused_ = true;
        poller_->remove(listen_fd_);
        return;
      }
      return;  // transient accept failures are not fatal to the server
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    append_magic(conn->out);  // our half of the handshake
    Connection& c = *conn;
    conns_.push_back(std::move(conn));
    poller_->add(fd);
    ++stats_.connections_accepted;
    flush_socket_(c);
  }
}

void Server::read_ready_(Connection& c) {
  char buf[65536];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.in.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // 0 = orderly shutdown; anything else = broken peer.  Either way stop
    // reading, but only mark the connection dead AFTER draining frames
    // already buffered: a client may legitimately pipeline EDITs and close
    // straight away, and those edits must still land.
    eof = true;
    break;
  }
  try {
    while (!c.closing) {
      std::optional<Frame> f = c.in.next();
      if (!f) break;
      handle_frame_(c, *f);
    }
  } catch (const std::exception& e) {
    // Framing is broken (bad magic, implausible length, malformed payload):
    // the byte stream can no longer be trusted, so report and drop the peer.
    send_error_(c, e.what());
    c.closing = true;
    dead_fds_.push_back(c.fd);
  }
  if (eof && !c.closing) {
    c.closing = true;
    dead_fds_.push_back(c.fd);
  }
}

void Server::write_ready_(Connection& c) { flush_socket_(c); }

void Server::send_frame_(Connection& c, FrameType type, std::string_view payload) {
  if (c.closing) return;
  append_frame(c.out, type, payload);
  ++stats_.frames_served;
  flush_socket_(c);
}

void Server::send_error_(Connection& c, std::string_view message) {
  if (c.closing) return;
  append_frame(c.out, FrameType::kError, encode_error(message));
  ++stats_.frames_served;
  flush_socket_(c);
}

void Server::flush_socket_(Connection& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::write(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        poller_->set_write(c.fd, true);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    c.closing = true;
    dead_fds_.push_back(c.fd);
    return;
  }
  c.out.clear();
  c.out_off = 0;
  if (c.want_write) {
    c.want_write = false;
    poller_->set_write(c.fd, false);
  }
}

void Server::close_connection_(int fd) {
  poller_->remove(fd);
  ::close(fd);
  std::erase_if(conns_, [fd](const auto& c) { return c->fd == fd; });
  std::erase_if(pending_acks_, [fd](const PendingAck& a) { return a.fd == fd; });
  if (accept_paused_) {
    // A descriptor just freed up: resume accepting.
    accept_paused_ = false;
    poller_->add(listen_fd_);
  }
}

// ---- protocol ------------------------------------------------------------

void Server::handle_frame_(Connection& c, const Frame& f) {
  // The two modes speak disjoint request sets (STATS is common): classic
  // frames address "the" engine, which a fleet server does not have, and
  // fleet frames address an instance id a classic server cannot route.
  if (fleet_ != nullptr) {
    if (f.type != FrameType::kFleetEdit && f.type != FrameType::kFleetView &&
        f.type != FrameType::kStats) {
      send_error_(c, std::string(frame_type_name(f.type)) +
                         " frame on a fleet server (use FleetEdit/FleetView/Stats)");
      return;
    }
  } else if (f.type == FrameType::kFleetEdit || f.type == FrameType::kFleetView) {
    send_error_(c, std::string(frame_type_name(f.type)) +
                       " frame on a single-instance server");
    return;
  }
  switch (f.type) {
    case FrameType::kFleetEdit: {
      FleetEditRequest req = decode_fleet_edit_request(f.payload);
      try {
        const std::size_t n = fleet_->instance_size(req.instance);
        for (const inc::Edit& e : req.edits) {
          inc::validate_edit(e, n, "serve::Server");
        }
      } catch (const std::exception& e) {
        ++stats_.edit_frames_rejected;
        send_error_(c, e.what());
        return;
      }
      if (!req.edits.empty()) {
        if (durable_) {
          if (journal_failed_) {
            ++stats_.edit_frames_rejected;
            send_error_(c, "journal unavailable, edits disabled: " + journal_error_);
            return;
          }
          try {
            prof::Scope prof_scope("serve/journal_append");
            const u64 before = journal_.bytes();
            journal_.append(util::FleetJournalRecord{req.instance,
                                                     fleet_->epoch(req.instance), req.edits});
            prof::charge_bytes(journal_.bytes() - before);
          } catch (const std::exception& e) {
            journal_failed_ = true;
            journal_error_ = e.what();
            ++stats_.edit_frames_rejected;
            send_error_(c, "journal unavailable, edits disabled: " + journal_error_);
            return;
          }
        }
        stats_.edits_accepted += req.edits.size();
        edits_since_checkpoint_ += req.edits.size();
        fleet_batch_.reserve(fleet_batch_.size() + req.edits.size());
        for (const inc::Edit& e : req.edits) fleet_batch_.push_back({req.instance, e});
      }
      pending_acks_.push_back(
          {c.fd, static_cast<u32>(req.edits.size()), /*fleet=*/true, req.instance});
      return;  // ack deferred to the epoch flush, carrying the instance epoch
    }
    case FrameType::kFleetView: {
      const u64 instance = decode_fleet_view_request(f.payload);
      flush();
      try {
        const core::PartitionView v = fleet_->view(instance);
        PayloadWriter w;
        w.put_u64(v.epoch());
        w.put_u32(static_cast<u32>(v.size()));
        w.put_u32(v.num_classes());
        send_frame_(c, FrameType::kViewInfo, w.str());
      } catch (const std::exception& e) {
        send_error_(c, e.what());
      }
      return;
    }
    case FrameType::kEdit: {
      std::vector<inc::Edit> edits = decode_edit_request(f.payload);
      try {
        for (const inc::Edit& e : edits) {
          inc::validate_edit(e, engine_->size(), "serve::Server");
        }
      } catch (const std::invalid_argument& e) {
        // Whole frame rejected before any journaling: accepted batches are
        // all-or-nothing, so the journal never carries a half-good frame.
        ++stats_.edit_frames_rejected;
        send_error_(c, e.what());
        return;
      }
      if (!edits.empty()) {
        if (durable_) {
          if (journal_failed_) {
            ++stats_.edit_frames_rejected;
            send_error_(c, "journal unavailable, edits disabled: " + journal_error_);
            return;
          }
          try {
            prof::Scope prof_scope("serve/journal_append");
            const u64 before = journal_.bytes();
            journal_.append(util::JournalRecord{engine_->epoch(), edits});
            prof::charge_bytes(journal_.bytes() - before);
          } catch (const std::exception& e) {
            // append() rolled the partial record back, so the log on disk is
            // intact — but the device is refusing writes (ENOSPC and
            // friends).  Durability can no longer be promised, so stop
            // accepting edits server-wide instead of treating this as a
            // broken connection: an acked edit must never outrun the log.
            journal_failed_ = true;
            journal_error_ = e.what();
            ++stats_.edit_frames_rejected;
            send_error_(c, "journal unavailable, edits disabled: " + journal_error_);
            return;
          }
        }
        stats_.edits_accepted += edits.size();
        edits_since_checkpoint_ += edits.size();
        batch_.insert(batch_.end(), edits.begin(), edits.end());
      }
      pending_acks_.push_back({c.fd, static_cast<u32>(edits.size())});
      return;  // ack deferred to the epoch flush
    }
    case FrameType::kView: {
      flush();
      PayloadWriter w;
      w.put_u64(served_view_.epoch());
      w.put_u32(static_cast<u32>(served_view_.size()));
      w.put_u32(served_view_.num_classes());
      send_frame_(c, FrameType::kViewInfo, w.str());
      return;
    }
    case FrameType::kClassOf: {
      PayloadReader r(f.payload);
      const u32 node = r.get_u32("node");
      r.expect_end("ClassOf frame");
      flush();
      if (node >= served_view_.size()) {
        send_error_(c, "node " + std::to_string(node) + " out of range (n = " +
                           std::to_string(served_view_.size()) + ")");
        return;
      }
      PayloadWriter w;
      w.put_u64(served_view_.epoch());
      w.put_u32(served_view_.class_of(node));
      send_frame_(c, FrameType::kClass, w.str());
      return;
    }
    case FrameType::kMembers: {
      PayloadReader r(f.payload);
      const u32 cls = r.get_u32("class id");
      r.expect_end("Members frame");
      flush();
      if (cls >= served_view_.num_classes()) {
        send_error_(c, "class " + std::to_string(cls) + " out of range (classes = " +
                           std::to_string(served_view_.num_classes()) + ")");
        return;
      }
      const std::span<const u32> members = served_view_.class_members(cls);
      PayloadWriter w;
      w.put_u64(served_view_.epoch());
      w.put_u32(static_cast<u32>(members.size()));
      for (u32 x : members) w.put_u32(x);
      send_frame_(c, FrameType::kMembersData, w.str());
      return;
    }
    case FrameType::kLabels: {
      flush();
      const std::span<const u32> labels = served_view_.labels();
      PayloadWriter w;
      w.put_u64(served_view_.epoch());
      w.put_u32(served_view_.num_classes());
      w.put_u32(static_cast<u32>(labels.size()));
      for (u32 l : labels) w.put_u32(l);
      send_frame_(c, FrameType::kLabelsData, w.str());
      return;
    }
    case FrameType::kStats: {
      flush();
      send_frame_(c, FrameType::kStatsData, encode_stats_());
      return;
    }
    case FrameType::kCheckpoint: {
      PayloadReader r(f.payload);
      const u32 len = r.get_u32("path length");
      const std::string path(r.get_bytes(len, "path"));
      r.expect_end("Checkpoint frame");
      flush();
      try {
        if (!do_checkpoint_(path)) {
          send_error_(c, engine_->checkpointable()
                             ? "no checkpoint path configured"
                             : "engine '" + std::string(engine_->kind()) +
                                   "' is not checkpointable");
          return;
        }
      } catch (const std::exception& e) {
        send_error_(c, e.what());
        return;
      }
      PayloadWriter w;
      w.put_u64(engine_->epoch());
      send_frame_(c, FrameType::kOk, w.str());
      return;
    }
    case FrameType::kSubscribe: {
      c.subscribed = true;
      PayloadWriter w;
      w.put_u64(served_view_.epoch());
      send_frame_(c, FrameType::kOk, w.str());
      return;
    }
    default:
      send_error_(c, "unexpected frame type " + std::string(frame_type_name(f.type)) +
                         " from client");
      return;
  }
}

// ---- epoch batching ------------------------------------------------------

void Server::flush() {
  if (fleet_ != nullptr) {
    if (!fleet_batch_.empty()) {
      {
        prof::Scope prof_scope("serve/epoch_apply");
        prof::charge_bytes(17 * fleet_batch_.size());  // instance + wire edit per entry
        fleet_->apply_batch(fleet_batch_);
      }
      fleet_batch_.clear();
      if (durable_) {
        prof::Scope prof_scope("serve/journal_fsync");
        journal_.sync_epoch();
      }
      ++stats_.epochs_flushed;
    }
  } else if (!batch_.empty()) {
    {
      prof::Scope prof_scope("serve/epoch_apply");
      prof::charge_bytes(9 * batch_.size());  // one wire edit record per entry
      engine_->apply(batch_);
    }
    batch_.clear();
    if (durable_) {
      prof::Scope prof_scope("serve/journal_fsync");
      journal_.sync_epoch();
    }
    ++stats_.epochs_flushed;
    inc::ViewDelta vd;
    {
      prof::Scope prof_scope("serve/view_advance");
      vd = refresh_served_view_();
    }
    {
      prof::Scope prof_scope("serve/notify");
      notify_subscribers_(vd);
    }
    maybe_autocheckpoint_();
  }
  if (!pending_acks_.empty()) {
    // Swap out first: send_frame_ can mark connections dead, and acks must
    // not re-enter this flush.
    std::vector<PendingAck> acks;
    acks.swap(pending_acks_);
    for (const PendingAck& a : acks) {
      Connection* c = find_(a.fd);
      if (c == nullptr || c->closing) continue;
      PayloadWriter w;
      // Fleet acks carry the addressed instance's epoch after the flush.
      w.put_u64(a.fleet ? fleet_->epoch(a.instance) : engine_->epoch());
      w.put_u32(a.accepted);
      send_frame_(*c, FrameType::kEdited, w.str());
    }
  }
}

inc::ViewDelta Server::refresh_served_view_() {
  served_view_ = engine_->view();
  return engine_->take_view_delta();
}

void Server::notify_subscribers_(const inc::ViewDelta& vd) {
  if (!vd.full && vd.nodes.empty()) return;  // no published change
  bool any = false;
  for (const auto& c : conns_) {
    if (c->subscribed && !c->closing) {
      any = true;
      break;
    }
  }
  if (!any) return;

  std::vector<u32> classes;
  if (!vd.full) {
    classes.reserve(vd.nodes.size());
    for (u32 x : vd.nodes) classes.push_back(served_view_.class_of(x));
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }
  const std::string payload = encode_notify(served_view_.epoch(), vd.full, classes);
  for (const auto& c : conns_) {
    if (c->subscribed && !c->closing) {
      send_frame_(*c, FrameType::kNotify, payload);
      prof::charge_bytes(payload.size());
      ++stats_.notifications_sent;
    }
  }
}

// ---- durability ----------------------------------------------------------

bool Server::checkpoint(const std::string& path) {
  flush();
  return do_checkpoint_(path);
}

bool Server::do_checkpoint_(const std::string& path) {
  // Fleet mode has no single global checkpoint; instances checkpoint
  // individually through warm/cold tiering (FleetConfig::spill_dir).
  if (fleet_ != nullptr) return false;
  const std::string target = path.empty() ? opt_.checkpoint_path : path;
  if (target.empty() || !engine_->checkpointable()) return false;
  // Durable write (fsync file + directory): the journal reset below must
  // never outrun the checkpoint on disk, or a crash loses every edit since
  // the previous checkpoint.
  util::atomic_write_file(
      target, [&](std::ostream& os) { engine_->save_checkpoint(os); }, /*durable=*/true);
  ++stats_.checkpoints_written;
  if (durable_ && target == opt_.checkpoint_path) {
    // The checkpoint now durably carries everything the log did.  A crash
    // between the two is safe: replay skips records the checkpoint absorbed
    // (their pre-batch epoch is below the checkpoint's).
    journal_.reset();
    edits_since_checkpoint_ = 0;
  }
  return true;
}

void Server::maybe_autocheckpoint_() {
  if (fleet_ != nullptr) return;
  if (opt_.checkpoint_every == 0 || edits_since_checkpoint_ < opt_.checkpoint_every) return;
  if (!engine_->checkpointable() || opt_.checkpoint_path.empty()) return;
  do_checkpoint_("");
}

// ---- stats ---------------------------------------------------------------

std::string Server::encode_stats_() const {
  const ServeStats sv = stats();
  if (fleet_ != nullptr) {
    const fleet::FleetStats fs = fleet_->stats();
    PayloadWriter w;
    const std::vector<std::pair<std::string_view, u64>> kv = {
        {"connections_open", sv.connections_open},
        {"connections_accepted", sv.connections_accepted},
        {"frames_served", sv.frames_served},
        {"edits_accepted", sv.edits_accepted},
        {"edit_frames_rejected", sv.edit_frames_rejected},
        {"epochs_flushed", sv.epochs_flushed},
        {"journal_records", sv.journal_records},
        {"journal_bytes", sv.journal_bytes},
        {"journal_fsyncs", sv.journal_fsyncs},
        {"recovered_records", sv.recovered_records},
        {"recovered_skipped", sv.recovered_skipped},
        {"journal_tail_torn", sv.journal_tail_torn ? 1u : 0u},
        {"journal_failed", sv.journal_failed ? 1u : 0u},
        {"fleet_instances", fs.instances},
        {"fleet_warm", fs.warm},
        {"fleet_cold", fs.cold},
        {"fleet_warm_bytes", fs.warm_bytes},
        {"fleet_routes", fs.routes},
        {"fleet_faults", fs.faults},
        {"fleet_evictions", fs.evictions},
        {"fleet_cold_batches", fs.cold_batches},
        {"fleet_batched_cold_instances", fs.batched_cold_instances},
        {"fleet_oversized_rejects", fs.oversized_rejects},
        {"fleet_edits", fs.edits},
        {"fleet_views", fs.views},
        {"fleet_arena_bytes", fs.arena_bytes},
        {"fleet_arena_blocks", fs.arena_blocks},
    };
    w.put_u32(static_cast<u32>(kv.size()));
    for (const auto& [key, value] : kv) {
      w.put_u8(static_cast<u8>(key.size()));
      w.put_bytes(key.data(), key.size());
      w.put_u64(value);
    }
    append_profile_section(w, prof::session_snapshot());
    return w.take();
  }
  const EngineStats es = engine_->serving_stats();
  PayloadWriter w;
  std::vector<std::pair<std::string_view, u64>> kv = {
      {"epoch", engine_->epoch()},
      {"n", engine_->size()},
      {"num_classes", served_view_.num_classes()},
      {"connections_open", sv.connections_open},
      {"connections_accepted", sv.connections_accepted},
      {"frames_served", sv.frames_served},
      {"edits_accepted", sv.edits_accepted},
      {"edit_frames_rejected", sv.edit_frames_rejected},
      {"epochs_flushed", sv.epochs_flushed},
      {"notifications_sent", sv.notifications_sent},
      {"checkpoints_written", sv.checkpoints_written},
      {"journal_records", sv.journal_records},
      {"journal_bytes", sv.journal_bytes},
      {"journal_fsyncs", sv.journal_fsyncs},
      {"recovered_records", sv.recovered_records},
      {"recovered_skipped", sv.recovered_skipped},
      {"journal_tail_torn", sv.journal_tail_torn ? 1u : 0u},
      {"journal_failed", sv.journal_failed ? 1u : 0u},
      {"engine_edits", es.edits.edits},
      {"engine_repairs", es.edits.repairs},
      {"engine_rebuilds", es.edits.rebuilds},
      {"delta_windows", es.deltas.windows},
      {"delta_full", es.deltas.full},
      {"shards", es.shards},
  };
  w.put_u32(static_cast<u32>(kv.size()));
  for (const auto& [key, value] : kv) {
    w.put_u8(static_cast<u8>(key.size()));
    w.put_bytes(key.data(), key.size());
    w.put_u64(value);
  }
  // Trailing, optional, and absent when empty: old clients that stop after
  // the counters never see it (see protocol.hpp).
  append_profile_section(w, es.profile);
  return w.take();
}

}  // namespace sfcp::serve
