#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sfcp::util {

namespace {

constexpr const char* kMagic = "sfcp-instance";
constexpr const char* kVersionText = "v1";
// Binary magic: non-printable lead byte makes autodetection a one-byte peek
// and keeps binary files from ever parsing as text.
constexpr unsigned char kBinaryMagic[8] = {0x7f, 's', 'f', 'c', 'p', 'v', '2', '\n'};
// Caps bogus sizes from corrupt headers before we try to allocate.
constexpr u64 kMaxNodes = u64{1} << 31;

constexpr const char* kEditsMagic = "sfcp-edits";
constexpr const char* kEditsVersion = "v1";

constexpr unsigned char kCheckpointMagicBytes[8] = {0x7f, 's', 'f', 'c', 'k', 'v', '1', '\n'};
constexpr unsigned char kCheckpointShardedMagicBytes[8] = {0x7f, 's', 'f', 'c',
                                                           'k', 's', '1', '\n'};
constexpr unsigned char kJournalMagicBytes[8] = {0x7f, 's', 'f', 'c', 'j', 'v', '1', '\n'};
constexpr unsigned char kFleetJournalMagicBytes[8] = {0x7f, 's', 'f', 'c', 'F', 'v', '1', '\n'};

// Journal record payload: epoch (8) + count (4) + count * (kind 1 + node 4
// + value 4); the length prefix and trailing CRC add 8 more framed bytes.
constexpr std::size_t kJournalPayloadHeader = 12;
// The fleet flavour prefixes the payload with the target instance id (u64).
constexpr std::size_t kFleetJournalPayloadHeader = 20;
constexpr std::size_t kJournalBytesPerEdit = 9;
// One record mirrors one accepted wire EDIT frame, whose payload is capped
// at 2^28 bytes — so larger length prefixes are corruption, not data, and
// are rejected before any allocation.
constexpr u64 kMaxJournalPayload = u64{1} << 28;

graph::Instance load_instance_text(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersionText) {
    throw std::runtime_error("load_instance: bad header (expected 'sfcp-instance v1')");
  }
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("load_instance: missing size");
  if (n > kMaxNodes) throw std::runtime_error("load_instance: unreasonable size");
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.resize(n);
  for (auto& v : inst.f) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated f array");
  }
  for (auto& v : inst.b) {
    if (!(is >> v)) throw std::runtime_error("load_instance: truncated b array");
  }
  graph::validate(inst);
  return inst;
}

graph::Instance load_instance_binary(std::istream& is) {
  unsigned char magic[8];
  if (!is.read(reinterpret_cast<char*>(magic), 8) ||
      std::memcmp(magic, kBinaryMagic, 8) != 0) {
    throw std::runtime_error("load_instance: bad binary magic (expected sfcp-instance v2)");
  }
  BinaryReader r(is, "load_instance");
  const u32 n = r.get_u32("size");
  if (n > kMaxNodes) throw std::runtime_error("load_instance: unreasonable size");
  graph::Instance inst;
  r.get_u32_vector(n, inst.f, "f array");
  r.get_u32_vector(n, inst.b, "b array");
  graph::validate(inst);
  return inst;
}

}  // namespace

namespace {

void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("atomic_write_file: cannot open " + path +
                             " for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("atomic_write_file: fsync failed for " + path + ": " +
                             std::strerror(err));
  }
}

}  // namespace

void atomic_write_file(const std::string& path, const std::function<void(std::ostream&)>& write,
                       bool durable) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    write(os);
    os.close();  // flush now, so buffered I/O errors surface before the rename
    if (os.fail()) throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    // Durability order: data must be on disk before the rename can make it
    // visible, and the rename itself only survives once the directory is
    // synced.
    if (durable) fsync_path(tmp, /*directory=*/false);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write_file: cannot rename " + tmp + " over " + path);
  }
  if (durable) {
    const std::size_t slash = path.find_last_of('/');
    fsync_path(slash == std::string::npos ? "." : path.substr(0, slash + 1),
               /*directory=*/true);
  }
}

// ---- binary primitives ---------------------------------------------------

std::span<const unsigned char, 8> checkpoint_magic() noexcept {
  return std::span<const unsigned char, 8>(kCheckpointMagicBytes);
}

std::span<const unsigned char, 8> checkpoint_sharded_magic() noexcept {
  return std::span<const unsigned char, 8>(kCheckpointShardedMagicBytes);
}

void BinaryWriter::put_u32(u32 v) {
  unsigned char buf[4] = {static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
                          static_cast<unsigned char>(v >> 16),
                          static_cast<unsigned char>(v >> 24)};
  os_.write(reinterpret_cast<const char*>(buf), 4);
}

void BinaryWriter::put_u64(u64 v) {
  put_u32(static_cast<u32>(v));
  put_u32(static_cast<u32>(v >> 32));
}

void BinaryWriter::put_u32_array(std::span<const u32> a) {
  if constexpr (std::endian::native == std::endian::little) {
    os_.write(reinterpret_cast<const char*>(a.data()),
              static_cast<std::streamsize>(a.size() * sizeof(u32)));
  } else {
    for (u32 v : a) put_u32(v);
  }
}

void BinaryWriter::put_bytes(const void* data, std::size_t len) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
}

void BinaryReader::fail_(const char* what) const {
  throw std::runtime_error(std::string(context_) + ": truncated " + what);
}

u32 BinaryReader::get_u32(const char* what) {
  unsigned char buf[4];
  if (!is_.read(reinterpret_cast<char*>(buf), 4)) fail_(what);
  return static_cast<u32>(buf[0]) | (static_cast<u32>(buf[1]) << 8) |
         (static_cast<u32>(buf[2]) << 16) | (static_cast<u32>(buf[3]) << 24);
}

u64 BinaryReader::get_u64(const char* what) {
  const u64 lo = get_u32(what);
  const u64 hi = get_u32(what);
  return lo | (hi << 32);
}

void BinaryReader::get_bytes(void* data, std::size_t len, const char* what) {
  if (!is_.read(static_cast<char*>(data), static_cast<std::streamsize>(len))) fail_(what);
}

// ---- edit journal (`sfcp-journal v1`) ------------------------------------

std::span<const unsigned char, 8> journal_magic() noexcept {
  return std::span<const unsigned char, 8>(kJournalMagicBytes);
}

namespace {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table built once.
struct Crc32Table {
  u32 t[256];
  Crc32Table() noexcept {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};

void put_le32(std::string& out, u32 v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

u32 get_le32(const unsigned char* p) noexcept {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

}  // namespace

u32 crc32(const void* data, std::size_t len) noexcept {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  u32 c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) c = table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string encode_journal_record(const JournalRecord& rec) {
  std::string payload;
  payload.reserve(kJournalPayloadHeader + kJournalBytesPerEdit * rec.edits.size());
  put_le32(payload, static_cast<u32>(rec.epoch));
  put_le32(payload, static_cast<u32>(rec.epoch >> 32));
  put_le32(payload, static_cast<u32>(rec.edits.size()));
  for (const inc::Edit& e : rec.edits) {
    payload.push_back(e.kind == inc::Edit::Kind::SetF ? '\x00' : '\x01');
    put_le32(payload, e.node);
    put_le32(payload, e.value);
  }
  std::string out;
  out.reserve(payload.size() + 8);
  put_le32(out, static_cast<u32>(payload.size()));
  out += payload;
  put_le32(out, crc32(payload.data(), payload.size()));
  return out;
}

void write_journal_header(std::ostream& os) {
  os.write(reinterpret_cast<const char*>(kJournalMagicBytes), 8);
  if (!os) throw std::runtime_error("write_journal_header: write failed");
}

void append_journal_record(std::ostream& os, const JournalRecord& rec) {
  const std::string bytes = encode_journal_record(rec);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("append_journal_record: write failed");
}

namespace {

u64 get_le64(const unsigned char* p) noexcept {
  return static_cast<u64>(get_le32(p)) | (static_cast<u64>(get_le32(p + 4)) << 32);
}

void put_le64(std::string& out, u64 v) {
  put_le32(out, static_cast<u32>(v));
  put_le32(out, static_cast<u32>(v >> 32));
}

void encode_edits(std::string& payload, std::span<const inc::Edit> edits) {
  put_le32(payload, static_cast<u32>(edits.size()));
  for (const inc::Edit& e : edits) {
    payload.push_back(e.kind == inc::Edit::Kind::SetF ? '\x00' : '\x01');
    put_le32(payload, e.node);
    put_le32(payload, e.value);
  }
}

std::string frame_record(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_le32(out, static_cast<u32>(payload.size()));
  out += payload;
  put_le32(out, crc32(payload.data(), payload.size()));
  return out;
}

// Decodes the count (u32 at `off`) + edit list tail of a record payload of
// total length `len`.  Returns the torn-tail reason, empty on success.
std::string decode_edits(const unsigned char* p, u32 len, std::size_t off,
                         std::vector<inc::Edit>& out) {
  const u32 count = get_le32(p + off);
  if (static_cast<u64>(len) != off + 4 + kJournalBytesPerEdit * static_cast<u64>(count)) {
    return "record length/count mismatch";
  }
  out.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const unsigned char* e = p + off + 4 + kJournalBytesPerEdit * i;
    switch (e[0]) {
      case 0:
        out.push_back(inc::Edit::set_f(get_le32(e + 1), get_le32(e + 5)));
        break;
      case 1:
        out.push_back(inc::Edit::set_b(get_le32(e + 1), get_le32(e + 5)));
        break;
      default:
        return "unknown edit kind in record";
    }
  }
  return {};
}

// Shared tolerant framing scan: reads [len][payload][crc] records after an
// already-consumed 8-byte header, handing each intact payload to `decode`
// (which returns a torn reason, empty on success).  Reports the good-prefix
// length + first tear into (valid_bytes, torn, error) — the common tail of
// both JournalScan flavours.
template <class Decode>
void scan_framed_records(std::istream& is, std::size_t min_payload, const Decode& decode,
                         u64& valid_bytes, bool& torn, std::string& error) {
  valid_bytes = 8;
  std::string payload;
  const auto tear = [&](const std::string& what) {
    torn = true;
    error = what + " at byte offset " + std::to_string(valid_bytes);
  };
  for (;;) {
    unsigned char len_buf[4];
    is.read(reinterpret_cast<char*>(len_buf), 4);
    const std::streamsize got = is.gcount();
    if (got == 0) break;  // clean end after the last whole record
    if (got < 4) {
      tear("truncated record length prefix");
      break;
    }
    const u32 len = get_le32(len_buf);
    if (len < min_payload || static_cast<u64>(len) > kMaxJournalPayload) {
      tear("implausible record length " + std::to_string(len));
      break;
    }
    payload.resize(len);
    is.read(payload.data(), static_cast<std::streamsize>(len));
    if (is.gcount() != static_cast<std::streamsize>(len)) {
      tear("record truncated mid-payload");
      break;
    }
    unsigned char crc_buf[4];
    is.read(reinterpret_cast<char*>(crc_buf), 4);
    if (is.gcount() != 4) {
      tear("record truncated mid-CRC");
      break;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
    if (get_le32(crc_buf) != crc32(p, len)) {
      tear("record CRC mismatch");
      break;
    }
    const std::string reason = decode(p, len);
    if (!reason.empty()) {
      tear(reason);
      break;
    }
    valid_bytes += 4 + static_cast<u64>(len) + 4;
  }
}

}  // namespace

JournalScan scan_journal(std::istream& is) {
  unsigned char magic[8];
  is.read(reinterpret_cast<char*>(magic), 8);
  if (is.gcount() != 8 || std::memcmp(magic, kJournalMagicBytes, 8) != 0) {
    throw std::runtime_error("scan_journal: bad header (expected sfcp-journal v1 magic)");
  }
  JournalScan scan;
  scan_framed_records(
      is, kJournalPayloadHeader,
      [&scan](const unsigned char* p, u32 len) -> std::string {
        JournalRecord rec;
        rec.epoch = get_le64(p);
        std::string reason = decode_edits(p, len, 8, rec.edits);
        if (reason.empty()) scan.records.push_back(std::move(rec));
        return reason;
      },
      scan.valid_bytes, scan.torn, scan.error);
  return scan;
}

std::vector<JournalRecord> load_journal(std::istream& is) {
  JournalScan scan = scan_journal(is);
  if (scan.torn) throw std::runtime_error("load_journal: " + scan.error);
  return std::move(scan.records);
}

// ---- fleet edit journal (`sfcp-fleet-journal v1`) ------------------------

std::span<const unsigned char, 8> fleet_journal_magic() noexcept {
  return std::span<const unsigned char, 8>(kFleetJournalMagicBytes);
}

std::string encode_fleet_journal_record(const FleetJournalRecord& rec) {
  std::string payload;
  payload.reserve(kFleetJournalPayloadHeader + kJournalBytesPerEdit * rec.edits.size());
  put_le64(payload, rec.instance);
  put_le64(payload, rec.epoch);
  encode_edits(payload, rec.edits);
  return frame_record(payload);
}

void write_fleet_journal_header(std::ostream& os) {
  os.write(reinterpret_cast<const char*>(kFleetJournalMagicBytes), 8);
  if (!os) throw std::runtime_error("write_fleet_journal_header: write failed");
}

void append_fleet_journal_record(std::ostream& os, const FleetJournalRecord& rec) {
  const std::string bytes = encode_fleet_journal_record(rec);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("append_fleet_journal_record: write failed");
}

FleetJournalScan scan_fleet_journal(std::istream& is) {
  unsigned char magic[8];
  is.read(reinterpret_cast<char*>(magic), 8);
  if (is.gcount() != 8 || std::memcmp(magic, kFleetJournalMagicBytes, 8) != 0) {
    throw std::runtime_error(
        "scan_fleet_journal: bad header (expected sfcp-fleet-journal v1 magic)");
  }
  FleetJournalScan scan;
  scan_framed_records(
      is, kFleetJournalPayloadHeader,
      [&scan](const unsigned char* p, u32 len) -> std::string {
        FleetJournalRecord rec;
        rec.instance = get_le64(p);
        rec.epoch = get_le64(p + 8);
        std::string reason = decode_edits(p, len, 16, rec.edits);
        if (reason.empty()) scan.records.push_back(std::move(rec));
        return reason;
      },
      scan.valid_bytes, scan.torn, scan.error);
  return scan;
}

void save_instance(std::ostream& os, const graph::Instance& inst) {
  os << kMagic << ' ' << kVersionText << '\n' << inst.size() << '\n';
  for (std::size_t i = 0; i < inst.f.size(); ++i) {
    os << inst.f[i] << (i + 1 == inst.f.size() ? '\n' : ' ');
  }
  if (inst.f.empty()) os << '\n';
  for (std::size_t i = 0; i < inst.b.size(); ++i) {
    os << inst.b[i] << (i + 1 == inst.b.size() ? '\n' : ' ');
  }
  if (inst.b.empty()) os << '\n';
  if (!os) throw std::runtime_error("save_instance: write failed");
}

void save_instance_binary(std::ostream& os, const graph::Instance& inst) {
  if (inst.size() > kMaxNodes) throw std::runtime_error("save_instance_binary: too large");
  BinaryWriter w(os);
  w.put_bytes(kBinaryMagic, 8);
  w.put_u32(static_cast<u32>(inst.size()));
  w.put_u32_array(inst.f);
  w.put_u32_array(inst.b);
  if (!os) throw std::runtime_error("save_instance_binary: write failed");
}

graph::Instance load_instance(std::istream& is) {
  const int first = is.peek();
  if (first == std::char_traits<char>::eof()) {
    throw std::runtime_error("load_instance: empty input");
  }
  return first == kBinaryMagic[0] ? load_instance_binary(is) : load_instance_text(is);
}

void save_instance_file(const std::string& path, const graph::Instance& inst,
                        InstanceFormat format) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_instance_file: cannot open " + path);
  if (format == InstanceFormat::Binary) {
    save_instance_binary(os, inst);
  } else {
    save_instance(os, inst);
  }
}

graph::Instance load_instance_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_instance_file: cannot open " + path);
  return load_instance(is);
}

void save_edits(std::ostream& os, std::span<const inc::Edit> edits) {
  os << kEditsMagic << ' ' << kEditsVersion << '\n' << edits.size() << '\n';
  for (const inc::Edit& e : edits) {
    os << (e.kind == inc::Edit::Kind::SetF ? 'f' : 'b') << ' ' << e.node << ' ' << e.value
       << '\n';
  }
  if (!os) throw std::runtime_error("save_edits: write failed");
}

std::vector<inc::Edit> load_edits(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kEditsMagic || version != kEditsVersion) {
    throw std::runtime_error("load_edits: bad header (expected 'sfcp-edits v1')");
  }
  std::size_t m = 0;
  if (!(is >> m)) throw std::runtime_error("load_edits: missing count");
  if (m > kMaxNodes) throw std::runtime_error("load_edits: unreasonable count");
  std::vector<inc::Edit> edits;
  // The count is untrusted until the payload backs it up: cap the up-front
  // reservation and let push_back grow past it.
  edits.reserve(std::min<std::size_t>(m, std::size_t{1} << 20));
  for (std::size_t i = 0; i < m; ++i) {
    std::string op;
    u32 node = 0, value = 0;
    if (!(is >> op >> node >> value) || (op != "f" && op != "b")) {
      throw std::runtime_error("load_edits: truncated or malformed edit " + std::to_string(i));
    }
    edits.push_back(op == "f" ? inc::Edit::set_f(node, value) : inc::Edit::set_b(node, value));
  }
  return edits;
}

void save_edits_file(const std::string& path, std::span<const inc::Edit> edits) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_edits_file: cannot open " + path);
  save_edits(os, edits);
}

std::vector<inc::Edit> load_edits_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_edits_file: cannot open " + path);
  return load_edits(is);
}

}  // namespace sfcp::util
